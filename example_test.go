package ucpc_test

import (
	"context"
	"fmt"

	"ucpc"
)

// exampleDataset builds two tight, well-separated groups of uncertain
// objects so the example output is deterministic.
func exampleDataset() ucpc.Dataset {
	var ds ucpc.Dataset
	for i := 0; i < 5; i++ {
		ds = append(ds, ucpc.NewNormalObject(i, []float64{float64(i) * 0.1, 0}, []float64{0.2, 0.2}, 0.95))
	}
	for i := 0; i < 5; i++ {
		ds = append(ds, ucpc.NewNormalObject(5+i, []float64{10 + float64(i)*0.1, 8}, []float64{0.2, 0.2}, 0.95))
	}
	return ds
}

// ExampleClusterer_Fit fits UCPC once and inspects the frozen model.
func ExampleClusterer_Fit() {
	clusterer := &ucpc.Clusterer{Algorithm: "UCPC", Config: ucpc.Config{Seed: 42}}
	model, err := clusterer.Fit(context.Background(), exampleDataset(), 2)
	if err != nil {
		panic(err)
	}
	sizes := model.Partition().Sizes()
	fmt.Println("clusters:", model.K())
	fmt.Println("sizes:", sizes[0], "and", sizes[1])
	fmt.Println("converged:", model.Report().Converged)
	// Output:
	// clusters: 2
	// sizes: 5 and 5
	// converged: true
}

// ExampleModel_Assign scores fresh uncertain objects against the frozen
// U-centroids of a fitted model — the serving path: no refit, the model is
// immutable and safe for concurrent Assign calls.
func ExampleModel_Assign() {
	ds := exampleDataset()
	model, err := (&ucpc.Clusterer{Config: ucpc.Config{Seed: 42}}).Fit(context.Background(), ds, 2)
	if err != nil {
		panic(err)
	}

	// Two fresh objects, one near each training group.
	fresh := ucpc.Dataset{
		ucpc.NewNormalObject(100, []float64{0.3, 0.1}, []float64{0.2, 0.2}, 0.95),
		ucpc.NewNormalObject(101, []float64{10.1, 7.9}, []float64{0.2, 0.2}, 0.95),
	}
	ids, err := model.Assign(context.Background(), fresh)
	if err != nil {
		panic(err)
	}
	train := model.Partition().Assign
	fmt.Println("first joins the cluster of object 0:", ids[0] == train[0])
	fmt.Println("second joins the cluster of object 5:", ids[1] == train[5])
	// Output:
	// first joins the cluster of object 0: true
	// second joins the cluster of object 5: true
}

// ExampleCluster is the one-shot compatibility path: a single call, no
// session, identical partitions to Clusterer.Fit with the same Options.
func ExampleCluster() {
	rep, err := ucpc.Cluster(exampleDataset(), 2, ucpc.Options{Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", rep.Partition.K)
	fmt.Println("noise:", rep.Partition.NoiseCount())
	// Output:
	// clusters: 2
	// noise: 0
}

// ExampleClusterer_FitFrom warm-starts a refit on grown data from an
// existing model instead of a fresh random initialization.
func ExampleClusterer_FitFrom() {
	ds := exampleDataset()
	clusterer := &ucpc.Clusterer{Algorithm: "UCPC", Config: ucpc.Config{Seed: 42}}
	model, err := clusterer.Fit(context.Background(), ds[:8], 2)
	if err != nil {
		panic(err)
	}
	warm, err := clusterer.FitFrom(context.Background(), model, ds)
	if err != nil {
		panic(err)
	}
	fmt.Println("refitted on", len(warm.Partition().Assign), "objects into", warm.K(), "clusters")
	// Output:
	// refitted on 10 objects into 2 clusters
}
