package ucpc_test

import (
	"bytes"
	"context"
	"fmt"

	"ucpc"
)

// Example_persistence fits a model, ships it through the versioned binary
// wire format with SaveModel/LoadModel, and serves assignments from the
// loaded copy — the train-here, serve-there workflow. The encoding is
// deterministic (one byte string per model), so saved artifacts can be
// diffed or content-addressed.
func Example_persistence() {
	ctx := context.Background()
	ds := make(ucpc.Dataset, 40)
	r := ucpc.NewRNG(7)
	for i := range ds {
		c := []float64{0, 0}
		if i%2 == 1 {
			c = []float64{10, 10}
		}
		c[0] += r.Normal(0, 0.4)
		c[1] += r.Normal(0, 0.4)
		ds[i] = ucpc.NewNormalObject(i, c, []float64{0.3, 0.3}, 0.95)
	}
	c := ucpc.Clusterer{Algorithm: "UCPC", Config: ucpc.Config{Seed: 42}}
	model, err := c.Fit(ctx, ds, 2)
	if err != nil {
		panic(err)
	}

	// "Save" to any io.Writer — a file, a network conn, here a buffer.
	var artifact bytes.Buffer
	if err := ucpc.SaveModel(&artifact, model); err != nil {
		panic(err)
	}

	// Elsewhere: load and serve. The loaded model assigns new objects
	// exactly as the original would; only the training ledger (per-object
	// partition) is not carried over.
	loaded, err := ucpc.LoadModel(&artifact)
	if err != nil {
		panic(err)
	}
	probes := ucpc.Dataset{
		ucpc.NewNormalObject(0, []float64{0.5, -0.5}, []float64{0.2, 0.2}, 0.95),
		ucpc.NewNormalObject(1, []float64{9.5, 10.5}, []float64{0.2, 0.2}, 0.95),
	}
	ids, err := loaded.Assign(ctx, probes)
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", loaded.Algorithm())
	fmt.Println("same cluster:", ids[0] == ids[1])
	// Output:
	// algorithm: UCPC
	// same cluster: false
}
