package ucpc_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"ucpc"
	"ucpc/internal/eval"
)

// streamBlobs builds n uncertain objects in 4 well-separated groups.
func streamBlobs(n int, seed uint64) ucpc.Dataset {
	r := ucpc.NewRNG(seed)
	ds := make(ucpc.Dataset, 0, n)
	for i := 0; i < n; i++ {
		g := i % 4
		c := []float64{12 * float64(g%2), 12 * float64(g/2)}
		c[0] += r.Normal(0, 0.8)
		c[1] += r.Normal(0, 0.8)
		o := ucpc.NewNormalObject(i, c, []float64{0.4, 0.4}, 0.95)
		o.Label = g
		ds = append(ds, o)
	}
	return ds
}

// TestStreamSnapshotAssignEquivalence is the snapshot-compatibility
// contract: a Snapshot is a regular Model, and scoring objects through it
// is byte-identical to scoring them through a batch-fit model with
// identical centroids. The warm-start path makes the centroids identical
// by construction (BeginFrom seeds the stream with the batch model's
// frozen state, and a pre-Observe Snapshot reproduces it bit for bit), so
// any divergence would be a defect in the snapshot plumbing or the shared
// assignment path.
func TestStreamSnapshotAssignEquivalence(t *testing.T) {
	ctx := context.Background()
	ds := streamBlobs(600, 11)
	batch, err := (&ucpc.Clusterer{Algorithm: "UCPC-Lloyd", Config: ucpc.Config{Seed: 7}}).Fit(ctx, ds, 4)
	if err != nil {
		t.Fatal(err)
	}

	sf, err := (&ucpc.StreamClusterer{Config: ucpc.StreamConfig{Seed: 7}}).BeginFrom(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sf.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Centroids byte-identical to the batch model's.
	bc, sc := batch.Centroids(), snap.Centroids()
	if len(bc) != len(sc) {
		t.Fatalf("centroid count %d vs %d", len(sc), len(bc))
	}
	for c := range bc {
		if bc[c].Var != sc[c].Var || bc[c].Size != sc[c].Size {
			t.Fatalf("cluster %d: Var/Size (%v, %d) vs (%v, %d)",
				c, sc[c].Var, sc[c].Size, bc[c].Var, bc[c].Size)
		}
		for j := range bc[c].Mean {
			if bc[c].Mean[j] != sc[c].Mean[j] {
				t.Fatalf("cluster %d dim %d: mean %v vs %v", c, j, sc[c].Mean[j], bc[c].Mean[j])
			}
		}
	}

	// Assign byte-identical on fresh objects.
	fresh := streamBlobs(900, 42)
	a1, err := batch.Assign(ctx, fresh)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := snap.Assign(ctx, fresh)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("object %d: snapshot assigns %d, batch model assigns %d", i, a2[i], a1[i])
		}
	}

	// First-principles cross-check: the snapshot's assignment is the exact
	// lowest-index argmin of ‖µ(o) − mean_c‖² + Var_c.
	for i, o := range fresh {
		best, bestD := 0, math.Inf(1)
		for c := range sc {
			var d float64
			for j, v := range o.Mean() {
				diff := v - sc[c].Mean[j]
				d += diff * diff
			}
			if d += sc[c].Var; d < bestD {
				best, bestD = c, d
			}
		}
		if a2[i] != best {
			t.Fatalf("object %d: snapshot assigns %d, first-principles argmin %d", i, a2[i], best)
		}
	}
}

// TestStreamColdFitQuality: a cold mini-batch fit on a separated stream
// recovers the reference grouping and stays within a few percent of the
// batch UCPC-Lloyd fit's internal quality.
func TestStreamColdFitQuality(t *testing.T) {
	ctx := context.Background()
	ds := streamBlobs(4000, 23)

	sc := &ucpc.StreamClusterer{Config: ucpc.StreamConfig{BatchSize: 256, Seed: 5}}
	sf, err := sc.Begin(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Feed in uneven portions to exercise the re-chunking.
	for lo := 0; lo < len(ds); lo += 700 {
		hi := lo + 700
		if hi > len(ds) {
			hi = len(ds)
		}
		if err := sf.Observe(ctx, ds[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := sf.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	assign, err := snap.Assign(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	p := ucpc.Partition{K: 4, Assign: assign}
	if ari := eval.AdjustedRandIndex(p, ds.Labels()); ari < 0.97 {
		t.Fatalf("stream fit ARI %v vs reference labels", ari)
	}

	batch, err := (&ucpc.Clusterer{Algorithm: "UCPC-Lloyd", Config: ucpc.Config{Seed: 5}}).Fit(ctx, ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Within 5% means "no worse than 5% below the batch fit": a stream fit
	// that lands in a better local optimum than the batch run is fine.
	sq := ucpc.Quality(ds, p)
	bq := ucpc.Quality(ds, batch.Partition())
	if sq < bq-0.05*math.Abs(bq) {
		t.Fatalf("stream quality %v vs batch quality %v: more than 5%% worse", sq, bq)
	}

	// The snapshot declares the batch counterpart, so FitFrom can take a
	// stream model into a full batch refinement.
	refit, err := (&ucpc.Clusterer{Config: ucpc.Config{Seed: 5}}).FitFrom(ctx, snap, ds)
	if err != nil {
		t.Fatal(err)
	}
	if refit.Algorithm() != "UCPC-Lloyd" || refit.K() != 4 {
		t.Fatalf("refit algorithm %q k %d", refit.Algorithm(), refit.K())
	}
}

// TestStreamErrors: the typed streaming failures surface through errors.Is.
func TestStreamErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := (&ucpc.StreamClusterer{}).Begin(ctx, 0); !errors.Is(err, ucpc.ErrBadK) {
		t.Fatalf("k=0: %v", err)
	}
	sf, err := (&ucpc.StreamClusterer{Config: ucpc.StreamConfig{BatchSize: 16, MaxBatches: 1}}).Begin(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Snapshot(); !errors.Is(err, ucpc.ErrStreamCold) {
		t.Fatalf("cold snapshot: %v", err)
	}
	ds := streamBlobs(64, 3)
	if err := sf.Observe(ctx, ds[:16]); err != nil {
		t.Fatal(err)
	}
	if err := sf.Observe(ctx, ds[16:32]); !errors.Is(err, ucpc.ErrStreamBudget) {
		t.Fatalf("budget: %v", err)
	}
	if err := sf.Observe(ctx, ucpc.Dataset{}); err != nil {
		t.Fatalf("empty observe: %v", err)
	}

	// Medoid models cannot seed a stream.
	med, err := (&ucpc.Clusterer{Algorithm: "UKmed", Config: ucpc.Config{Seed: 3}}).Fit(ctx, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&ucpc.StreamClusterer{}).BeginFrom(ctx, med); !errors.Is(err, ucpc.ErrWarmStartUnsupported) {
		t.Fatalf("medoid warm start: %v", err)
	}
}

// TestStreamConcurrentObserveSnapshot drives Observe from several
// goroutines while others take Snapshots and serve Assign calls — the
// serving-refresh pattern. Run under -race in CI.
func TestStreamConcurrentObserveSnapshot(t *testing.T) {
	ctx := context.Background()
	sf, err := (&ucpc.StreamClusterer{Config: ucpc.StreamConfig{BatchSize: 64, Seed: 9}}).Begin(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Observe(ctx, streamBlobs(256, 1)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < 8; b++ {
				if err := sf.Observe(ctx, streamBlobs(128, uint64(w*100+b+2))); err != nil {
					t.Errorf("observe: %v", err)
					return
				}
			}
		}(w)
	}
	probe := streamBlobs(64, 77)
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				snap, err := sf.Snapshot()
				if err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				if _, err := snap.Assign(ctx, probe); err != nil {
					t.Errorf("assign: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if want := int64(256 + 4*8*128); sf.Seen() != want {
		t.Fatalf("seen %d, want %d", sf.Seen(), want)
	}
}

// TestStreamObserveSteadyStateAllocs gates the hot path: once the resident
// window has warmed up, an Observe of one steady-size batch performs no
// heap allocations (Workers = 1; the pool spawn itself allocates).
func TestStreamObserveSteadyStateAllocs(t *testing.T) {
	ctx := context.Background()
	for _, mode := range []ucpc.PruneMode{ucpc.PruneOn, ucpc.PruneOff} {
		sf, err := (&ucpc.StreamClusterer{Config: ucpc.StreamConfig{
			BatchSize: 256, Workers: 1, Pruning: mode, Seed: 4,
		}}).Begin(ctx, 4)
		if err != nil {
			t.Fatal(err)
		}
		batch := streamBlobs(256, 8)
		for i := 0; i < 4; i++ { // warm-up: seed + capacity growth
			if err := sf.Observe(ctx, batch); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			if err := sf.Observe(ctx, batch); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("pruning %v: steady-state Observe allocates %v times per batch", mode, allocs)
		}
	}
}
