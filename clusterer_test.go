package ucpc_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"ucpc"
)

// blobs builds g well-separated groups of sz uncertain objects each.
func blobs(g, sz int, seed uint64) ucpc.Dataset {
	r := ucpc.NewRNG(seed)
	var ds ucpc.Dataset
	for b := 0; b < g; b++ {
		for i := 0; i < sz; i++ {
			c := []float64{20 * float64(b), 15 * float64(b%2)}
			c[0] += r.Normal(0, 0.5)
			c[1] += r.Normal(0, 0.5)
			o := ucpc.NewNormalObject(b*sz+i, c, []float64{0.3, 0.3}, 0.95)
			o.Label = b
			ds = append(ds, o)
		}
	}
	return ds
}

// TestRegistrySelfConsistent is the registry self-test: AlgorithmNames()
// must list exactly the registered factories (every name constructable, no
// extra construction paths), each constructed algorithm must report the
// name it was registered under, and the lineup order must match the paper.
func TestRegistrySelfConsistent(t *testing.T) {
	want := []string{"UCPC", "UCPC-Lloyd", "UCPC-Bisect", "UKM", "bUKM", "MinMax-BB", "VDBiP", "MMV", "UKmed", "UAHC", "FDB", "FOPT"}
	got := ucpc.AlgorithmNames()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AlgorithmNames() = %v, want %v", got, want)
	}
	for _, name := range got {
		alg, err := ucpc.NewAlgorithm(name, ucpc.Config{})
		if err != nil {
			t.Fatalf("NewAlgorithm(%q): %v", name, err)
		}
		if alg.Name() != name {
			t.Errorf("NewAlgorithm(%q).Name() = %q: registry name and algorithm name drifted", name, alg.Name())
		}
	}
	// The empty name is the documented UCPC default.
	alg, err := ucpc.NewAlgorithm("", ucpc.Config{})
	if err != nil || alg.Name() != "UCPC" {
		t.Fatalf(`NewAlgorithm("") = %v, %v; want UCPC`, alg, err)
	}
	if _, err := ucpc.NewAlgorithm("nope", ucpc.Config{}); err == nil {
		t.Fatal("NewAlgorithm accepted an unregistered name")
	}
}

// TestTypedValidationErrors exercises every typed error from both entry
// points (satellite: validate inputs up front, no panics or late failures).
func TestTypedValidationErrors(t *testing.T) {
	ds := blobs(2, 10, 3)
	cl := &ucpc.Clusterer{}
	ctx := context.Background()

	if _, err := cl.Fit(ctx, nil, 2); !errors.Is(err, ucpc.ErrEmptyDataset) {
		t.Errorf("Fit(nil ds) = %v, want ErrEmptyDataset", err)
	}
	if _, err := ucpc.Cluster(ucpc.Dataset{}, 2, ucpc.Options{}); !errors.Is(err, ucpc.ErrEmptyDataset) {
		t.Errorf("Cluster(empty ds) = %v, want ErrEmptyDataset", err)
	}
	for _, k := range []int{0, -3, len(ds) + 1} {
		if _, err := cl.Fit(ctx, ds, k); !errors.Is(err, ucpc.ErrBadK) {
			t.Errorf("Fit(k=%d) = %v, want ErrBadK", k, err)
		}
	}
	// Every registered algorithm must reject a bad k the same typed way —
	// except the density-based methods, for which k is only a calibration
	// hint (the historical contract): k > n stays legal, k < 1 does not.
	for _, name := range ucpc.AlgorithmNames() {
		_, err := ucpc.Cluster(ds, len(ds)+1, ucpc.Options{Algorithm: name})
		if name == "FDB" || name == "FOPT" {
			if err != nil {
				t.Errorf("%s: Cluster(k=n+1) = %v, want nil (k is a hint)", name, err)
			}
		} else if !errors.Is(err, ucpc.ErrBadK) {
			t.Errorf("%s: Cluster(k=n+1) = %v, want ErrBadK", name, err)
		}
		if _, err := ucpc.Cluster(ds, 0, ucpc.Options{Algorithm: name}); !errors.Is(err, ucpc.ErrBadK) {
			t.Errorf("%s: Cluster(k=0) = %v, want ErrBadK", name, err)
		}
	}
	mixed := append(append(ucpc.Dataset{}, ds[:4]...), ucpc.NewPointObject(99, []float64{1, 2, 3}))
	if _, err := cl.Fit(ctx, mixed, 2); !errors.Is(err, ucpc.ErrDimMismatch) {
		t.Errorf("Fit(mixed dims) = %v, want ErrDimMismatch", err)
	}

	model, err := cl.Fit(ctx, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Assign(ctx, ucpc.Dataset{ucpc.NewPointObject(0, []float64{1, 2, 3})}); !errors.Is(err, ucpc.ErrDimMismatch) {
		t.Errorf("Assign(wrong dims) = %v, want ErrDimMismatch", err)
	}
	if ids, err := model.Assign(ctx, ucpc.Dataset{}); err != nil || len(ids) != 0 || ids == nil {
		t.Errorf("Assign(empty) = %v, %v; want empty non-nil slice", ids, err)
	}
}

// TestClusterMatchesClusterer proves the compat wrapper: the one-shot
// Cluster and an explicit Clusterer.Fit produce identical partitions,
// objectives, and iteration counts for every algorithm and several seeds —
// and both match driving the registry-constructed algorithm by hand with
// the same seed, so no entry point smuggles in extra configuration.
func TestClusterMatchesClusterer(t *testing.T) {
	ds := blobs(3, 12, 7)
	for _, name := range ucpc.AlgorithmNames() {
		for _, seed := range []uint64{1, 42} {
			opt := ucpc.Options{Algorithm: name, Seed: seed}
			rep, err := ucpc.Cluster(ds, 3, opt)
			if err != nil {
				t.Fatalf("%s seed %d: Cluster: %v", name, seed, err)
			}
			cl := &ucpc.Clusterer{Algorithm: name, Config: ucpc.Config{Seed: seed}}
			model, err := cl.Fit(context.Background(), ds, 3)
			if err != nil {
				t.Fatalf("%s seed %d: Fit: %v", name, seed, err)
			}
			if !reflect.DeepEqual(rep.Partition, model.Partition()) {
				t.Errorf("%s seed %d: Cluster and Fit partitions differ", name, seed)
			}
			alg, err := ucpc.NewAlgorithm(name, ucpc.Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			raw, err := alg.Cluster(context.Background(), ds, 3, ucpc.NewRNG(seed))
			if err != nil {
				t.Fatalf("%s seed %d: raw: %v", name, seed, err)
			}
			if !reflect.DeepEqual(rep.Partition, raw.Partition) {
				t.Errorf("%s seed %d: wrapper partition differs from raw algorithm partition", name, seed)
			}
			if rep.Iterations != raw.Iterations {
				t.Errorf("%s seed %d: wrapper %d iterations vs raw %d", name, seed, rep.Iterations, raw.Iterations)
			}
			if !(math.IsNaN(rep.Objective) && math.IsNaN(raw.Objective)) && rep.Objective != raw.Objective {
				t.Errorf("%s seed %d: wrapper objective %v vs raw %v", name, seed, rep.Objective, raw.Objective)
			}
		}
	}
}

// TestSeedZeroMeansDefaultSeed locks the documented default-seed contract:
// Seed 0 and Seed DefaultSeed are the same run, and DefaultSeed is 1 (the
// historical behavior, now an explicit constant instead of a silent remap).
func TestSeedZeroMeansDefaultSeed(t *testing.T) {
	if ucpc.DefaultSeed != 1 {
		t.Fatalf("DefaultSeed = %d, want 1", ucpc.DefaultSeed)
	}
	ds := blobs(2, 12, 5)
	zero, err := ucpc.Cluster(ds, 2, ucpc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	def, err := ucpc.Cluster(ds, 2, ucpc.Options{Seed: ucpc.DefaultSeed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero.Partition, def.Partition) {
		t.Error("Seed 0 and Seed DefaultSeed produced different partitions")
	}
}

// TestFitCancellation: a context cancelled mid-run must surface as ctx.Err()
// promptly, for a pre-cancelled context and for one cancelled from the
// Progress callback during the first iteration.
func TestFitCancellation(t *testing.T) {
	ds := blobs(4, 25, 11)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range ucpc.AlgorithmNames() {
		cl := &ucpc.Clusterer{Algorithm: name}
		if _, err := cl.Fit(pre, ds, 4); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Fit with pre-cancelled ctx = %v, want context.Canceled", name, err)
		}
	}

	// Cancel from inside the run: the Progress callback fires after
	// iteration 1, the iteration-loop ctx check must stop the fit there.
	for _, name := range []string{"UCPC", "UCPC-Lloyd", "UKM", "MMV", "UKmed", "bUKM"} {
		ctx, cancelRun := context.WithCancel(context.Background())
		iters := 0
		cl := &ucpc.Clusterer{Algorithm: name, Config: ucpc.Config{
			Progress: func(ev ucpc.ProgressEvent) {
				iters = ev.Iteration
				cancelRun()
			},
		}}
		_, err := cl.Fit(ctx, ds, 4)
		cancelRun()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Fit cancelled mid-run = %v, want context.Canceled", name, err)
		}
		if iters > 1 {
			t.Errorf("%s: ran %d iterations after cancellation, want stop after 1", name, iters)
		}
	}
}

// TestAssignTrainingEquivalence is the assignment-equivalence satellite:
// for UCPC, UKM, and UKmed fitted to convergence on separated data,
// Model.Assign on the training set must reproduce the final Fit partition
// byte for byte (the frozen prototypes are exactly the converged state).
func TestAssignTrainingEquivalence(t *testing.T) {
	ds := blobs(3, 20, 17)
	for _, name := range []string{"UCPC", "UKM", "UKmed"} {
		for _, seed := range []uint64{1, 9, 33} {
			cl := &ucpc.Clusterer{Algorithm: name, Config: ucpc.Config{Seed: seed}}
			model, err := cl.Fit(context.Background(), ds, 3)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if !model.Report().Converged {
				t.Fatalf("%s seed %d: did not converge", name, seed)
			}
			got, err := model.Assign(context.Background(), ds)
			if err != nil {
				t.Fatalf("%s seed %d: Assign: %v", name, seed, err)
			}
			if !reflect.DeepEqual(got, model.Partition().Assign) {
				t.Errorf("%s seed %d: Assign(training set) differs from Fit partition", name, seed)
			}
		}
	}
}

// TestAssignAllNoiseModel: a density-based fit whose training partition is
// all noise has no winnable prototype, so Assign serves Noise — never a
// phantom empty cluster.
func TestAssignAllNoiseModel(t *testing.T) {
	// Four isolated objects: n <= FDBSCAN's default MinPts pins ε to 1,
	// the 10⁴-scale gaps make every distance probability 0, so no object
	// is a core and the whole training partition is noise.
	var ds ucpc.Dataset
	for i := 0; i < 4; i++ {
		ds = append(ds, ucpc.NewNormalObject(i, []float64{1e4 * float64(i), -3e3 * float64(i)}, []float64{0.1, 0.1}, 0.95))
	}
	model, err := (&ucpc.Clusterer{Algorithm: "FDB"}).Fit(context.Background(), ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if model.Partition().NoiseCount() != len(ds) {
		t.Fatalf("expected an all-noise training partition, got %v", model.Partition().Assign)
	}
	ids, err := model.Assign(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id != ucpc.Noise {
			t.Errorf("object %d assigned to %d, want Noise (model has no non-empty cluster)", i, id)
		}
	}
}

// TestModelCentroids checks the frozen prototypes against first principles.
func TestModelCentroids(t *testing.T) {
	ds := blobs(2, 15, 23)
	ctx := context.Background()

	ucpcModel, err := (&ucpc.Clusterer{Algorithm: "UCPC"}).Fit(ctx, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c, cent := range ucpcModel.Centroids() {
		total += cent.Size
		if cent.Medoid != -1 {
			t.Errorf("UCPC centroid %d has medoid %d, want -1", c, cent.Medoid)
		}
		if cent.Size == 0 || cent.Var <= 0 {
			t.Errorf("UCPC centroid %d: size %d, Var %v", c, cent.Size, cent.Var)
		}
		// Theorem 2: σ²(C̄) = |C|⁻² Σ σ²(o), recomputed independently.
		members := make([]int, 0)
		for i, a := range ucpcModel.Partition().Assign {
			if a == c {
				members = append(members, i)
			}
		}
		var sum float64
		for _, i := range members {
			sum += ds[i].TotalVar()
		}
		want := sum / float64(len(members)*len(members))
		if math.Abs(cent.Var-want) > 1e-12*(1+want) {
			t.Errorf("UCPC centroid %d: Var %v, want σ²(C̄) = %v", c, cent.Var, want)
		}
	}
	if total != len(ds) {
		t.Errorf("centroid sizes sum to %d, want %d", total, len(ds))
	}

	ukmModel, err := (&ucpc.Clusterer{Algorithm: "UKM"}).Fit(ctx, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c, cent := range ukmModel.Centroids() {
		if cent.Var != 0 {
			t.Errorf("UKM centroid %d: Var %v, want 0 (ED scoring)", c, cent.Var)
		}
	}

	medModel, err := (&ucpc.Clusterer{Algorithm: "UKmed"}).Fit(ctx, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c, cent := range medModel.Centroids() {
		if cent.Medoid < 0 || cent.Medoid >= len(ds) {
			t.Fatalf("UKmed centroid %d: medoid index %d out of range", c, cent.Medoid)
		}
		mu := ds[cent.Medoid].Mean()
		for j := range mu {
			if cent.Mean[j] != mu[j] {
				t.Errorf("UKmed centroid %d: Mean is not the medoid's µ", c)
				break
			}
		}
		if cent.Var != ds[cent.Medoid].TotalVar() {
			t.Errorf("UKmed centroid %d: Var %v, want medoid σ² %v", c, cent.Var, ds[cent.Medoid].TotalVar())
		}
	}
}

// TestFitFrom exercises the warm-start path: a model fitted on a sample
// refits on the full dataset without losing the learned structure, and the
// unsupported algorithms fail with the typed error.
func TestFitFrom(t *testing.T) {
	full := blobs(3, 30, 41)
	sample := append(append(append(ucpc.Dataset{}, full[:10]...), full[30:40]...), full[60:70]...)
	ctx := context.Background()

	for _, name := range []string{"UCPC", "UCPC-Lloyd", "UKM", "MMV", "UKmed"} {
		cl := &ucpc.Clusterer{Algorithm: name, Config: ucpc.Config{Seed: 3}}
		seedModel, err := cl.Fit(ctx, sample, 3)
		if err != nil {
			t.Fatalf("%s: fit sample: %v", name, err)
		}
		warm, err := cl.FitFrom(ctx, seedModel, full)
		if err != nil {
			t.Fatalf("%s: FitFrom: %v", name, err)
		}
		if warm.K() != 3 || len(warm.Partition().Assign) != len(full) {
			t.Fatalf("%s: warm model k=%d n=%d", name, warm.K(), len(warm.Partition().Assign))
		}
		if err := warm.Partition().Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Separated blobs: the warm refit must recover the reference
		// grouping exactly, like a cold fit would.
		if f := ucpc.FMeasure(warm.Partition(), full.Labels()); f != 1 {
			t.Errorf("%s: warm-start F-measure %v, want 1", name, f)
		}
	}

	for _, name := range []string{"UAHC", "FDB", "FOPT", "UCPC-Bisect", "bUKM"} {
		cl := &ucpc.Clusterer{Algorithm: name, Config: ucpc.Config{Seed: 3}}
		seedModel, err := cl.Fit(ctx, sample, 3)
		if err != nil {
			t.Fatalf("%s: fit sample: %v", name, err)
		}
		if _, err := cl.FitFrom(ctx, seedModel, full); !errors.Is(err, ucpc.ErrWarmStartUnsupported) {
			t.Errorf("%s: FitFrom = %v, want ErrWarmStartUnsupported", name, err)
		}
	}

	// Algorithm mismatch between clusterer and model is rejected.
	ucpcModel, err := (&ucpc.Clusterer{Algorithm: "UCPC"}).Fit(ctx, sample, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&ucpc.Clusterer{Algorithm: "UKM"}).FitFrom(ctx, ucpcModel, full); err == nil {
		t.Error("FitFrom accepted a model fitted with a different algorithm")
	}
}

// TestAssignFreshObjects: out-of-sample objects land in the geometrically
// correct cluster for every prototype kind.
func TestAssignFreshObjects(t *testing.T) {
	ds := blobs(3, 20, 29)
	ctx := context.Background()
	for _, name := range ucpc.AlgorithmNames() {
		cl := &ucpc.Clusterer{Algorithm: name, Config: ucpc.Config{Seed: 2}}
		model, err := cl.Fit(ctx, ds, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// One fresh object near each blob center.
		fresh := ucpc.Dataset{
			ucpc.NewNormalObject(1000, []float64{0.3, 0.2}, []float64{0.3, 0.3}, 0.95),
			ucpc.NewNormalObject(1001, []float64{20.2, 15.1}, []float64{0.3, 0.3}, 0.95),
			ucpc.NewNormalObject(1002, []float64{39.8, -0.1}, []float64{0.3, 0.3}, 0.95),
		}
		ids, err := model.Assign(ctx, fresh)
		if err != nil {
			t.Fatalf("%s: Assign: %v", name, err)
		}
		// Each fresh object must agree with the training assignment of its
		// blob (cluster ids are arbitrary but consistent). Density methods
		// may have labelled a blob as noise; skip those pairings.
		assign := model.Partition().Assign
		for b, id := range ids {
			trainID := assign[b*20] // first training object of blob b
			if trainID == ucpc.Noise {
				continue
			}
			if id != trainID {
				t.Errorf("%s: fresh object near blob %d assigned to %d, training blob is %d", name, b, id, trainID)
			}
		}
	}
}

// TestFitRejectsBadConfig checks that every fitting entry point validates
// its configuration up front with a typed ErrBadConfig.
func TestFitRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	ds := twoBlobs()
	c := ucpc.Clusterer{Config: ucpc.Config{Workers: -2}}
	if _, err := c.Fit(ctx, ds, 2); !errors.Is(err, ucpc.ErrBadConfig) {
		t.Fatalf("Fit(Workers: -2) = %v, want ErrBadConfig", err)
	}
	model, err := (&ucpc.Clusterer{Config: ucpc.Config{Seed: 4}}).Fit(ctx, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := ucpc.Clusterer{Config: ucpc.Config{MaxIter: -1}}
	if _, err := bad.FitFrom(ctx, model, ds); !errors.Is(err, ucpc.ErrBadConfig) {
		t.Fatalf("FitFrom(MaxIter: -1) = %v, want ErrBadConfig", err)
	}
	sc := ucpc.StreamClusterer{Config: ucpc.StreamConfig{Decay: 1.5}}
	if _, err := sc.Begin(ctx, 2); !errors.Is(err, ucpc.ErrBadConfig) {
		t.Fatalf("Begin(Decay: 1.5) = %v, want ErrBadConfig", err)
	}
	sh := ucpc.ShardedClusterer{Config: ucpc.StreamConfig{BatchSize: -3}, Shards: 2}
	if _, err := sh.Begin(ctx, 2); !errors.Is(err, ucpc.ErrBadConfig) {
		t.Fatalf("sharded Begin(BatchSize: -3) = %v, want ErrBadConfig", err)
	}
}
