package ucpc_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"ucpc"
)

// shardBlobs builds n objects around three well-separated sites, picking
// the site randomly per object so every shard of a partitioned stream sees
// every blob.
func shardBlobs(n int, seed uint64) ucpc.Dataset {
	r := ucpc.NewRNG(seed)
	sites := [][2]float64{{0, 0}, {14, 0}, {0, 14}}
	ds := make(ucpc.Dataset, n)
	for i := range ds {
		s := sites[r.Intn(len(sites))]
		c := []float64{s[0] + r.Normal(0, 0.6), s[1] + r.Normal(0, 0.6)}
		ds[i] = ucpc.NewNormalObject(i, c, []float64{0.3, 0.3}, 0.95)
	}
	return ds
}

// shardedQuality fits shardBlobs with P shards and returns the snapshot's
// quality Q over the training data (assignments served by the model).
func shardedQuality(t *testing.T, ds ucpc.Dataset, shards int) float64 {
	t.Helper()
	ctx := context.Background()
	sc := ucpc.ShardedClusterer{
		Config: ucpc.StreamConfig{BatchSize: 64, Seed: 17},
		Shards: shards,
	}
	fit, err := sc.Begin(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Feed in portions, as a real ingest loop would.
	for lo := 0; lo < len(ds); lo += 200 {
		hi := min(lo+200, len(ds))
		if err := fit.Observe(ctx, ds[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if fit.Seen() != int64(len(ds)) {
		t.Fatalf("Seen = %d, want %d", fit.Seen(), len(ds))
	}
	m, err := fit.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	asg, err := m.Assign(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	return ucpc.Quality(ds, ucpc.Partition{K: m.K(), Assign: asg})
}

// TestShardCountInvariance is the public quality gate behind the sharded
// fit: partitioning the same stream across 1, 2, or 4 shards must land on
// the same cluster structure — quality Q within 2% of the single-engine
// fit — because the merged statistics describe the same objects.
func TestShardCountInvariance(t *testing.T) {
	ds := shardBlobs(1200, 5)
	q1 := shardedQuality(t, ds, 1)
	if q1 <= 0 {
		t.Fatalf("single-shard Q = %v, want > 0 on separated blobs", q1)
	}
	for _, p := range []int{2, 4} {
		qp := shardedQuality(t, ds, p)
		if rel := math.Abs(qp-q1) / math.Abs(q1); rel > 0.02 {
			t.Errorf("P=%d quality %v vs P=1 quality %v: relative gap %v > 2%%", p, qp, q1, rel)
		}
	}
}

// TestShardedOneShardMatchesStream pins the P=1 compatibility contract at
// the public layer: a 1-shard ShardedClusterer is bit-identical to a
// StreamClusterer with the same configuration.
func TestShardedOneShardMatchesStream(t *testing.T) {
	ctx := context.Background()
	ds := shardBlobs(400, 9)
	cfg := ucpc.StreamConfig{BatchSize: 32, Seed: 23}

	sf, err := (&ucpc.StreamClusterer{Config: cfg}).Begin(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	shf, err := (&ucpc.ShardedClusterer{Config: cfg, Shards: 1}).Begin(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Observe(ctx, ds); err != nil {
		t.Fatal(err)
	}
	if err := shf.Observe(ctx, ds); err != nil {
		t.Fatal(err)
	}
	want, err := sf.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := shf.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wc, gc := want.Centroids(), got.Centroids()
	for c := range wc {
		for j := range wc[c].Mean {
			if gc[c].Mean[j] != wc[c].Mean[j] {
				t.Fatalf("centroid %d mean[%d]: sharded %v, stream %v (want bit-identical)",
					c, j, gc[c].Mean[j], wc[c].Mean[j])
			}
		}
	}
}

// TestShardedRemoteStats runs the cross-process story end to end at the
// public layer: a standalone StreamFit plays the remote worker, exports
// its statistics over the wire format, and a coordinator folds them into
// its snapshot.
func TestShardedRemoteStats(t *testing.T) {
	ctx := context.Background()
	local := shardBlobs(600, 31)
	remote := shardBlobs(600, 77)

	rf, err := (&ucpc.StreamClusterer{Config: ucpc.StreamConfig{BatchSize: 64, Seed: 40}}).Begin(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := rf.Observe(ctx, remote); err != nil {
		t.Fatal(err)
	}
	payload, err := rf.ExportStats()
	if err != nil {
		t.Fatal(err)
	}

	co, err := (&ucpc.ShardedClusterer{Config: ucpc.StreamConfig{BatchSize: 64, Seed: 17}, Shards: 2}).Begin(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Observe(ctx, local); err != nil {
		t.Fatal(err)
	}
	if err := co.AddRemoteStats(payload); err != nil {
		t.Fatal(err)
	}
	m, err := co.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sizes := 0
	for _, c := range m.Centroids() {
		sizes += c.Size
	}
	if sizes != len(local)+len(remote) {
		t.Fatalf("merged cluster sizes sum to %d, want %d", sizes, len(local)+len(remote))
	}
	if err := co.AddRemoteStats(payload[:10]); !errors.Is(err, ucpc.ErrBadModelFormat) {
		t.Fatalf("truncated payload accepted: %v", err)
	}
}

// TestShardedColdSnapshot checks the cold-start contract: a sharded fit
// that has seen nothing reports ErrStreamCold, and a negative shard count
// is rejected with ErrBadConfig.
func TestShardedColdSnapshot(t *testing.T) {
	ctx := context.Background()
	fit, err := (&ucpc.ShardedClusterer{Config: ucpc.StreamConfig{Seed: 1}, Shards: 2}).Begin(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fit.Snapshot(); !errors.Is(err, ucpc.ErrStreamCold) {
		t.Fatalf("cold Snapshot = %v, want ErrStreamCold", err)
	}
	if _, err := (&ucpc.ShardedClusterer{Shards: -1}).Begin(ctx, 3); !errors.Is(err, ucpc.ErrBadConfig) {
		t.Fatalf("Begin(Shards: -1) = %v, want ErrBadConfig", err)
	}
}
