package ucpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ucpc/internal/clustering"
)

// Model wire format — the serving surface of a fitted model (algorithm,
// prototype kind, configuration, per-cluster prototypes) in a versioned,
// deterministic binary encoding: one valid byte string per model, fixed
// field order, fixed-width little-endian scalars, float64 values written
// bit-exactly. Round-tripping is byte-identical, so payloads can be
// compared, cached, or content-addressed by hash. The training ledger
// (per-object partition, timings, pruning counters) is deliberately NOT
// serialized: a loaded model serves Assign and seeds FitFrom/BeginFrom,
// but Partition() reports an empty training assignment — persist the
// training report separately if you need it.
//
//	offset  size       field
//	0       4          magic "UCPM"
//	4       1          format version (1)
//	5       1          flags: bit0 = hasMembers, bit1 = medoids present
//	6       1          prototype kind
//	7       1          pruning mode
//	8       1          L, algorithm-name length
//	9       L          algorithm name (UTF-8)
//	+0      4          k       (uint32)
//	+4      4          dims    (uint32)
//	+8      4          workers (uint32)
//	+12     4          maxIter (uint32)
//	+16     8          seed    (uint64)
//	+24     4          iterations (uint32)
//	+28     8          objective (float64 bits; NaN preserved — some
//	                   methods define no objective)
//	+36     8·k·dims   means, row-major
//	·       8·k        adds (+Inf marks a memberless cluster)
//	·       8·k        sizes (uint64)
//	·       8·k        medoids (int64, −1 = none) — only when flag bit1
//
// Total length is enforced exactly; decoding rejects unknown magic
// (ErrBadModelFormat), unknown versions (ErrModelVersion), truncated or
// oversized input, out-of-range shape fields, and non-finite values where
// the format requires finite ones — without panicking and without
// allocating more than the input's own size implies.

// The typed wire-format errors; test with errors.Is. They follow the
// ErrBadK/ErrEmptyDataset sentinel style: every decode path wraps one of
// them with a message locating the defect.
var (
	// ErrBadModelFormat marks serialized input that is not a well-formed
	// model (or statistics) payload.
	ErrBadModelFormat = clustering.ErrBadModelFormat
	// ErrModelVersion marks a payload written by an incompatible (newer)
	// wire-format version.
	ErrModelVersion = clustering.ErrModelVersion
)

const (
	modelWireVersion = 1

	modelFlagMembers = 1 << 0
	modelFlagMedoids = 1 << 1

	// modelMaxSide caps k and dims; modelMaxFloats caps k·dims. Far above
	// any real model, they bound what a hostile length prefix can make the
	// decoder allocate.
	modelMaxSide   = 1 << 20
	modelMaxFloats = 1 << 24
	// modelMaxCount caps sizes and medoid indexes (2⁵³, the contiguous
	// integer range of float64 — sizes beyond it could not have come from
	// a real fit).
	modelMaxCount = 1 << 53
)

var modelMagic = [4]byte{'U', 'C', 'P', 'M'}

// modelWireLen returns the exact encoded size for the given shape.
func modelWireLen(algLen, k, dims int, medoids bool) int {
	n := 9 + algLen + 36 + 8*(k*dims+2*k)
	if medoids {
		n += 8 * k
	}
	return n
}

// MarshalBinary encodes the model in the versioned deterministic wire
// format above (encoding.BinaryMarshaler). It fails only when a field
// cannot be represented (an algorithm name longer than 255 bytes).
func (m *Model) MarshalBinary() ([]byte, error) {
	if len(m.algorithm) > 255 {
		return nil, fmt.Errorf("ucpc: algorithm name %d bytes long (format caps it at 255): %w",
			len(m.algorithm), ErrBadModelFormat)
	}
	var flags byte
	if m.hasMembers {
		flags |= modelFlagMembers
	}
	if m.medoids != nil {
		flags |= modelFlagMedoids
	}
	buf := make([]byte, 0, modelWireLen(len(m.algorithm), m.k, m.dims, m.medoids != nil))
	buf = append(buf, modelMagic[:]...)
	buf = append(buf, modelWireVersion, flags, byte(m.proto), byte(m.cfg.Pruning), byte(len(m.algorithm)))
	buf = append(buf, m.algorithm...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.dims))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(max(m.cfg.Workers, 0)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(max(m.cfg.MaxIter, 0)))
	buf = binary.LittleEndian.AppendUint64(buf, m.cfg.Seed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(max(m.report.Iterations, 0)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.report.Objective))
	for _, v := range m.means {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range m.adds {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, s := range m.sizes {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s))
	}
	for _, idx := range m.medoids {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(idx)))
	}
	return buf, nil
}

// UnmarshalBinary decodes a payload produced by MarshalBinary into m,
// replacing its state (encoding.BinaryUnmarshaler). Malformed input is
// rejected with a wrapped ErrBadModelFormat, an unknown format version
// with a wrapped ErrModelVersion; on error m is left unchanged.
func (m *Model) UnmarshalBinary(data []byte) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("ucpc: "+format+": %w", append(args, ErrBadModelFormat)...)
	}
	if len(data) < 9 {
		return bad("model payload truncated at %d bytes (header is 9)", len(data))
	}
	if [4]byte(data[:4]) != modelMagic {
		return bad("model payload has magic %q, want %q", data[:4], modelMagic[:])
	}
	if data[4] != modelWireVersion {
		return fmt.Errorf("ucpc: model payload has format version %d, this build reads %d: %w",
			data[4], modelWireVersion, ErrModelVersion)
	}
	flags, proto, pruning, algLen := data[5], data[6], data[7], int(data[8])
	if flags&^byte(modelFlagMembers|modelFlagMedoids) != 0 {
		return bad("model payload sets unknown flag bits %#x", flags)
	}
	if clustering.Prototype(proto) > clustering.ProtoMedoid {
		return bad("model payload declares unknown prototype kind %d", proto)
	}
	hasMedoids := flags&modelFlagMedoids != 0
	if hasMedoids != (clustering.Prototype(proto) == clustering.ProtoMedoid) {
		return bad("model payload medoid flag %v disagrees with prototype kind %d", hasMedoids, proto)
	}
	if PruneMode(pruning) > clustering.PruneOff {
		return bad("model payload declares unknown pruning mode %d", pruning)
	}
	if len(data) < 9+algLen+36 {
		return bad("model payload truncated at %d bytes (fixed fields need %d)", len(data), 9+algLen+36)
	}
	alg := string(data[9 : 9+algLen])
	off := 9 + algLen
	k := int(binary.LittleEndian.Uint32(data[off:]))
	dims := int(binary.LittleEndian.Uint32(data[off+4:]))
	if k < 1 || k > modelMaxSide || dims < 1 || dims > modelMaxSide || k*dims > modelMaxFloats {
		return bad("model payload declares shape k=%d dims=%d outside format limits", k, dims)
	}
	if want := modelWireLen(algLen, k, dims, hasMedoids); len(data) != want {
		return bad("model payload is %d bytes, shape k=%d dims=%d needs %d", len(data), k, dims, want)
	}
	cfg := Config{
		Workers: int(binary.LittleEndian.Uint32(data[off+8:])),
		MaxIter: int(binary.LittleEndian.Uint32(data[off+12:])),
		Pruning: PruneMode(pruning),
		Seed:    binary.LittleEndian.Uint64(data[off+16:]),
	}
	iterations := int(binary.LittleEndian.Uint32(data[off+24:]))
	objective := math.Float64frombits(binary.LittleEndian.Uint64(data[off+28:]))
	off += 36

	means := make([]float64, k*dims)
	for i := range means {
		means[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		if math.IsNaN(means[i]) || math.IsInf(means[i], 0) {
			return bad("model payload mean entry %d is %v", i, means[i])
		}
	}
	adds := make([]float64, k)
	for c := range adds {
		adds[c] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		// +Inf is the memberless-cluster marker; NaN and -Inf can never
		// come from a real fit.
		if math.IsNaN(adds[c]) || math.IsInf(adds[c], -1) {
			return bad("model payload additive term %d is %v", c, adds[c])
		}
	}
	sizes := make([]int, k)
	for c := range sizes {
		s := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if s > modelMaxCount {
			return bad("model payload cluster size %d out of range", s)
		}
		sizes[c] = int(s)
	}
	var medoids []int
	if hasMedoids {
		medoids = make([]int, k)
		for c := range medoids {
			idx := int64(binary.LittleEndian.Uint64(data[off:]))
			off += 8
			if idx < -1 || idx > modelMaxCount {
				return bad("model payload medoid index %d out of range", idx)
			}
			medoids[c] = int(idx)
		}
	}

	*m = Model{
		algorithm: alg,
		proto:     clustering.Prototype(proto),
		cfg:       cfg,
		k:         k,
		dims:      dims,
		report: &clustering.Report{
			Partition:  clustering.Partition{K: k, Assign: []int{}},
			Objective:  objective,
			Iterations: iterations,
		},
		means:      means,
		adds:       adds,
		sizes:      sizes,
		medoids:    medoids,
		hasMembers: flags&modelFlagMembers != 0,
	}
	return nil
}

// modelWireReadCap bounds how many bytes LoadModel will read: the largest
// size modelWireLen can describe within the format limits, rounded up.
const modelWireReadCap = 9 + 255 + 36 + 8*(modelMaxFloats+3*modelMaxSide) + 1

// SaveModel writes m's wire encoding (MarshalBinary) to w — the
// persistence convenience for checkpointing a fitted model or shipping it
// to a serving process.
func SaveModel(w io.Writer, m *Model) error {
	if m == nil {
		return fmt.Errorf("ucpc: SaveModel with nil model: %w", ErrBadModelFormat)
	}
	enc, err := m.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = w.Write(enc)
	return err
}

// LoadModel reads one wire-encoded model from r (everything until EOF must
// be the payload). Reading is capped at the format's maximum encodable
// size, so a hostile or corrupt source cannot force unbounded allocation;
// malformed payloads are rejected with wrapped ErrBadModelFormat /
// ErrModelVersion.
func LoadModel(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(io.LimitReader(r, modelWireReadCap))
	if err != nil {
		return nil, fmt.Errorf("ucpc: LoadModel: %w", err)
	}
	if len(data) >= modelWireReadCap {
		return nil, fmt.Errorf("ucpc: LoadModel input exceeds the format's maximum size: %w", ErrBadModelFormat)
	}
	m := new(Model)
	if err := m.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return m, nil
}
