// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark wraps the corresponding experiment at a CI-friendly
// scale; `cmd/uncbench` runs the same experiments at arbitrary scales and
// prints the paper-shaped tables. See EXPERIMENTS.md for recorded outputs.
package ucpc_test

import (
	"context"
	"testing"

	"ucpc"
	"ucpc/internal/experiments"
	"ucpc/internal/uncertain"
	"ucpc/internal/uncgen"
)

func benchConfig() experiments.Config {
	return experiments.Config{Seed: 11, Runs: 1, Scale: 0.02, MinObjects: 60}
}

// BenchmarkTable2 regenerates one dataset×pdf cell block of Table 2
// (accuracy, Θ and Q, all seven algorithms) per iteration.
func BenchmarkTable2Iris(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(context.Background(), benchConfig(), []string{"Iris"}, []uncgen.Model{uncgen.Uniform}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2AllModels covers the three pdf families on one dataset.
func BenchmarkTable2AllModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(context.Background(), benchConfig(), []string{"Glass"}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates two cluster-count rows of Table 3 (real
// microarray data, internal criterion Q).
func BenchmarkTable3Leukaemia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(context.Background(), benchConfig(), []string{"Leukaemia"}, []int{2, 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates one efficiency row of Figure 4 (all nine
// algorithms on one dataset).
func BenchmarkFig4Abalone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(context.Background(), benchConfig(), []string{"Abalone"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates a two-point slice of the Figure 5 scalability
// series on the KDD-shaped workload.
func BenchmarkFig5KDD(b *testing.B) {
	cfg := experiments.Config{Seed: 11, Runs: 1, Scale: 0.0002}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(context.Background(), cfg, []float64{0.5, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks on the algorithmic core ---------------------------

func benchDataset(n int) ucpc.Dataset {
	r := ucpc.NewRNG(3)
	ds := make(ucpc.Dataset, 0, n)
	for i := 0; i < n; i++ {
		g := i % 4
		c := []float64{8 * float64(g%2), 8 * float64(g/2)}
		c[0] += r.Normal(0, 1)
		c[1] += r.Normal(0, 1)
		o := ucpc.NewNormalObject(i, c, []float64{0.4, 0.4}, 0.95)
		o.Label = g
		ds = append(ds, o)
	}
	return ds
}

// BenchmarkUCPC measures the paper's algorithm end to end (n=800, k=4).
func BenchmarkUCPC(b *testing.B) {
	ds := benchDataset(800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ucpc.Cluster(ds, 4, ucpc.Options{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUKMeans measures the fastest competitor on the same workload.
func BenchmarkUKMeans(b *testing.B) {
	ds := benchDataset(800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ucpc.Cluster(ds, 4, ucpc.Options{Algorithm: "UKM", Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMVar measures the other closed-form competitor.
func BenchmarkMMVar(b *testing.B) {
	ds := benchDataset(800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ucpc.Cluster(ds, 4, ucpc.Options{Algorithm: "MMV", Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEED measures the Lemma 3 closed form (the inner loop of
// UK-medoids and the validity criteria).
func BenchmarkEED(b *testing.B) {
	ds := benchDataset(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ucpc.EED(ds[0], ds[1])
	}
}

// --- SoA moment store vs naive per-object baselines ---------------------
//
// The pair below compares an all-pairs ÊD sweep reading per-object moment
// slices (pointer-chasing baseline) against the same sweep over the flat
// structure-of-arrays Moments store. The store must be no slower; on real
// hardware the contiguous rows win through cache locality.

// BenchmarkEEDSweepNaive is the per-object baseline: n(n−1)/2 ÊD
// evaluations through Object pointers, using the same SqDist+totalVar
// closed form as the flat store so the pair isolates the memory layout.
func BenchmarkEEDSweepNaive(b *testing.B) {
	ds := benchDataset(500)
	objs := []*uncertain.Object(ds)
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		var acc float64
		for i := range objs {
			for j := i + 1; j < len(objs); j++ {
				acc += uncertain.EED(objs[i], objs[j])
			}
		}
		sinkFloat = acc
	}
}

// BenchmarkEEDSweepMoments is the same sweep over the flat Moments store.
func BenchmarkEEDSweepMoments(b *testing.B) {
	ds := benchDataset(500)
	mom := uncertain.MomentsOf(ds)
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		var acc float64
		n := mom.Len()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				acc += mom.EED(i, j)
			}
		}
		sinkFloat = acc
	}
}

var sinkFloat float64

// --- UCPC assignment step: serial vs parallel ---------------------------
//
// One full batch assignment round of the UCPC-Lloyd engine (every object
// re-scored against every U-centroid over the flat moment store), measured
// with a single worker and with the full GOMAXPROCS pool. Same seed, same
// partition — only the wall clock may differ.

func benchAssignmentWorkload() ucpc.Dataset {
	r := ucpc.NewRNG(17)
	const n, m = 8000, 8
	ds := make(ucpc.Dataset, 0, n)
	for i := 0; i < n; i++ {
		g := i % 8
		c := make([]float64, m)
		for j := range c {
			c[j] = 6*float64(g) + r.Normal(0, 1)
		}
		sig := make([]float64, m)
		for j := range sig {
			sig[j] = 0.4
		}
		ds = append(ds, ucpc.NewNormalObject(i, c, sig, 0.95))
	}
	return ds
}

func benchUCPCAssign(b *testing.B, workers int) {
	b.Helper()
	ds := benchAssignmentWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ucpc.Cluster(ds, 8, ucpc.Options{
			Algorithm: "UCPC-Lloyd", Seed: 5, MaxIter: 4, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkFloat = rep.Objective
	}
}

// BenchmarkUCPCAssignSerial runs the assignment rounds on one worker.
func BenchmarkUCPCAssignSerial(b *testing.B) { benchUCPCAssign(b, 1) }

// BenchmarkUCPCAssignParallel runs the same rounds on the full pool.
func BenchmarkUCPCAssignParallel(b *testing.B) { benchUCPCAssign(b, 0) }

// --- Bound-based pruning engine vs exhaustive scans ---------------------
//
// BenchmarkPrunedAssign measures the exact pruning engine against the
// bound-free baseline on the same multi-round assignment workloads. The
// partitions are identical by construction (see TestPruningExactness); the
// pruned variants must only be faster. `cmd/uncbench -exp bench` runs the
// same comparison and emits machine-readable BENCH_PR2.json for CI.
func BenchmarkPrunedAssign(b *testing.B) {
	ds := benchAssignmentWorkload()
	for _, alg := range []string{"UCPC-Lloyd", "UKM"} {
		for _, mode := range []struct {
			name string
			p    ucpc.PruneMode
		}{{"pruned", ucpc.PruneOn}, {"unpruned", ucpc.PruneOff}} {
			b.Run(alg+"/"+mode.name, func(b *testing.B) {
				var pruned, scanned int64
				for i := 0; i < b.N; i++ {
					rep, err := ucpc.Cluster(ds, 8, ucpc.Options{
						Algorithm: alg, Seed: 5, MaxIter: 12, Workers: 1, Pruning: mode.p,
					})
					if err != nil {
						b.Fatal(err)
					}
					sinkFloat = rep.Objective
					pruned += rep.PrunedCandidates
					scanned += rep.ScannedCandidates
				}
				if total := pruned + scanned; total > 0 {
					b.ReportMetric(float64(pruned)/float64(total), "pruned-frac")
				}
			})
		}
	}
}

// BenchmarkUCentroid measures U-centroid construction (Theorem 1 region +
// Lemma 5 moments) for a 100-object cluster.
func BenchmarkUCentroid(b *testing.B) {
	ds := benchDataset(100)
	members := []*ucpc.Object(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ucpc.NewUCentroid(members)
	}
}
