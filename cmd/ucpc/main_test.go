package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd drives run() and captures the streams.
func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeSeparableCSV writes a trivially separable two-cluster labeled CSV
// and returns its path.
func writeSeparableCSV(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "%.2f,%.2f,0\n", 1+0.01*float64(i), 2+0.01*float64(i))
	}
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "%.2f,%.2f,1\n", 50+0.01*float64(i), 60+0.01*float64(i))
	}
	path := filepath.Join(t.TempDir(), "sep.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestClusterSmoke runs the full pipeline on a separable dataset: the run
// must succeed, recover the two groups perfectly, report its pruning hit
// rate, and write one assignment row per object.
func TestClusterSmoke(t *testing.T) {
	in := writeSeparableCSV(t)
	assign := filepath.Join(t.TempDir(), "assign.csv")
	code, stdout, stderr := runCmd("-in", in, "-k", "2", "-labels", "-assign", assign)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"loaded 40 objects, 2 attributes",
		"algorithm:  UCPC",
		"clusters:   2 (noise: 0)",
		"F-measure:  1.0000",
		"pruning:",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	data, err := os.ReadFile(assign)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 40 {
		t.Errorf("assignment file has %d rows, want 40", lines)
	}
}

// TestProgressFlag: -progress streams per-iteration lines to stderr while
// the summary on stdout is unchanged.
func TestProgressFlag(t *testing.T) {
	in := writeSeparableCSV(t)
	code, stdout, stderr := runCmd("-in", in, "-k", "2", "-labels", "-progress")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "UCPC iter") || !strings.Contains(stderr, "moves") {
		t.Errorf("stderr missing per-iteration progress lines:\n%s", stderr)
	}
	if !strings.Contains(stdout, "F-measure:  1.0000") {
		t.Errorf("summary lost with -progress:\n%s", stdout)
	}
}

// TestTimeoutExpired: an already-expired -timeout makes the run fail with
// the context error instead of producing a partition.
func TestTimeoutExpired(t *testing.T) {
	in := writeSeparableCSV(t)
	code, stdout, stderr := runCmd("-in", in, "-k", "2", "-timeout", "1ns")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stdout: %s)", code, stdout)
	}
	if !strings.Contains(stderr, "deadline") {
		t.Errorf("stderr does not mention the deadline: %s", stderr)
	}
}

// TestPruningFlagEquivalence: -pruning off must reproduce the default
// run's assignment file byte for byte (the engine's exactness guarantee,
// observed through the CLI).
func TestPruningFlagEquivalence(t *testing.T) {
	in := writeSeparableCSV(t)
	dir := t.TempDir()
	aOn := filepath.Join(dir, "on.csv")
	aOff := filepath.Join(dir, "off.csv")
	if code, _, stderr := runCmd("-in", in, "-k", "2", "-labels", "-seed", "5", "-assign", aOn); code != 0 {
		t.Fatalf("pruning on: exit %d, stderr: %s", code, stderr)
	}
	if code, _, stderr := runCmd("-in", in, "-k", "2", "-labels", "-seed", "5", "-pruning", "off", "-assign", aOff); code != 0 {
		t.Fatalf("pruning off: exit %d, stderr: %s", code, stderr)
	}
	on, err := os.ReadFile(aOn)
	if err != nil {
		t.Fatal(err)
	}
	off, err := os.ReadFile(aOff)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(on, off) {
		t.Error("assignments differ between -pruning on and -pruning off")
	}
}

// TestExitCodes: malformed command lines must return non-zero and print
// usage to stderr (the pre-refactor binary could exit 0 on bad input).
func TestExitCodes(t *testing.T) {
	in := writeSeparableCSV(t)
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"missing required flags", []string{}, 2},
		{"missing k", []string{"-in", in}, 2},
		{"stray positional args", []string{"-in", in, "-k", "2", "junk"}, 2},
		{"bad model", []string{"-in", in, "-k", "2", "-model", "X"}, 2},
		{"bad pruning", []string{"-in", in, "-k", "2", "-pruning", "maybe"}, 2},
		{"missing file", []string{"-in", filepath.Join(t.TempDir(), "nope.csv"), "-k", "2"}, 1},
		{"bad algorithm", []string{"-in", in, "-k", "2", "-alg", "NOPE"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(tc.args...)
			if code != tc.code {
				t.Errorf("args %v: exit %d, want %d (stderr: %s)", tc.args, code, tc.code, stderr)
			}
			if stderr == "" {
				t.Errorf("args %v: nothing on stderr", tc.args)
			}
			if tc.code == 2 && !strings.Contains(stderr, "Usage") {
				t.Errorf("args %v: usage not printed (stderr: %s)", tc.args, stderr)
			}
		})
	}
}
