// Command ucpc clusters a CSV dataset with any of the implemented
// uncertain-data clustering algorithms.
//
// The input is CSV with one row per object: m numeric attribute columns,
// optionally followed by an integer class-label column (-labels). Since CSV
// rows are deterministic points, uncertainty is attached with the paper's
// generation strategy (§5.1) via -model; -model none clusters the points
// as-is (all algorithms degenerate to their classical counterparts).
//
// Usage:
//
//	ucpc -in data.csv -k 3 [-alg UCPC] [-model N] [-intensity 0.5]
//	     [-labels] [-seed 1] [-assign out.csv]
//
// The program prints the run summary (objective, iterations, time, and —
// when labels are available — the F-measure) and optionally writes the
// cluster assignment of every object to -assign.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"ucpc"
	"ucpc/internal/datasets"
	"ucpc/internal/eval"
	"ucpc/internal/rng"
	"ucpc/internal/uncgen"
)

func main() {
	var (
		in        = flag.String("in", "", "input CSV file (required)")
		k         = flag.Int("k", 0, "number of clusters (required)")
		alg       = flag.String("alg", "UCPC", "algorithm: UCPC|UKM|bUKM|MinMax-BB|VDBiP|MMV|UKmed|UAHC|FDB|FOPT")
		model     = flag.String("model", "N", "uncertainty model for plain CSV input: U|N|E|none")
		intensity = flag.Float64("intensity", 0.5, "uncertainty intensity relative to per-dim std")
		hasLabels = flag.Bool("labels", false, "last CSV column is an integer class label")
		uncsv     = flag.Bool("uncertain", false, "input is uncertain CSV (ucsv marginal tokens; see internal/datasets)")
		errcsv    = flag.Bool("errors", false, "input columns alternate value,stderr (Normal uncertainty per measurement)")
		seed      = flag.Uint64("seed", 1, "random seed")
		assignOut = flag.String("assign", "", "write object,cluster assignments to this CSV file")
	)
	flag.Parse()
	if *in == "" || *k <= 0 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	var ds ucpc.Dataset
	var labels []int
	labeled := *hasLabels
	switch {
	case *uncsv:
		ds, err = datasets.ReadUncertainCSV(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		labels = ds.Labels()
		labeled = allLabeled(labels)
		fmt.Printf("loaded %d uncertain objects, %d attributes\n", len(ds), ds.Dims())
	case *errcsv:
		ds, err = datasets.ReadErrorCSV(f, *hasLabels, 0.95)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		labels = ds.Labels()
		labeled = *hasLabels && allLabeled(labels)
		fmt.Printf("loaded %d measured objects (value±error), %d attributes\n", len(ds), ds.Dims())
	default:
		d, err := datasets.ReadCSV(f, *in, *hasLabels)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		labels = d.Labels
		fmt.Printf("loaded %d objects, %d attributes\n", len(d.Points), d.Dims())
		switch *model {
		case "none":
			ds = uncgen.AsPointObjects(d)
		case "U", "N", "E":
			var m uncgen.Model
			switch *model {
			case "U":
				m = uncgen.Uniform
			case "N":
				m = uncgen.Normal
			case "E":
				m = uncgen.Exponential
			}
			set := (&uncgen.Generator{Model: m, Intensity: *intensity}).Assign(d, rng.New(*seed^0xa11))
			ds = set.Objects(d)
			fmt.Printf("attached %s uncertainty (intensity %.2f, 95%% regions)\n", m, *intensity)
		default:
			fatalf("unknown model %q (valid: U, N, E, none)", *model)
		}
	}

	rep, err := ucpc.Cluster(ds, *k, ucpc.Options{Algorithm: *alg, Seed: *seed})
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("algorithm:  %s\n", *alg)
	fmt.Printf("clusters:   %d (noise: %d)\n", rep.Partition.K, rep.Partition.NoiseCount())
	fmt.Printf("iterations: %d (converged: %v)\n", rep.Iterations, rep.Converged)
	fmt.Printf("time:       %v online, %v offline\n", rep.Online, rep.Offline)
	fmt.Printf("objective:  %.6g\n", rep.Objective)
	fmt.Printf("quality Q:  %+.4f\n", eval.Quality(ds, rep.Partition))
	if labeled {
		fmt.Printf("F-measure:  %.4f\n", eval.FMeasure(rep.Partition, labels))
	}
	for c, size := range rep.Partition.Sizes() {
		fmt.Printf("  cluster %d: %d objects\n", c, size)
	}

	if *assignOut != "" {
		var b []byte
		for i, c := range rep.Partition.Assign {
			b = strconv.AppendInt(b, int64(i), 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(c), 10)
			b = append(b, '\n')
		}
		if err := os.WriteFile(*assignOut, b, 0o644); err != nil {
			fatalf("write %s: %v", *assignOut, err)
		}
		fmt.Printf("assignments written to %s\n", *assignOut)
	}
}

// allLabeled reports whether every object carries a non-negative label.
func allLabeled(labels []int) bool {
	for _, l := range labels {
		if l < 0 {
			return false
		}
	}
	return true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ucpc: "+format+"\n", args...)
	os.Exit(1)
}
