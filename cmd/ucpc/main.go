// Command ucpc clusters a CSV dataset with any of the implemented
// uncertain-data clustering algorithms.
//
// The input is CSV with one row per object: m numeric attribute columns,
// optionally followed by an integer class-label column (-labels). Since CSV
// rows are deterministic points, uncertainty is attached with the paper's
// generation strategy (§5.1) via -model; -model none clusters the points
// as-is (all algorithms degenerate to their classical counterparts).
//
// Usage:
//
//	ucpc -in data.csv -k 3 [-alg UCPC] [-model N] [-intensity 0.5]
//	     [-labels] [-seed 1] [-pruning on|off] [-assign out.csv]
//	     [-timeout 30s] [-progress]
//
// -timeout bounds the clustering wall clock (iterative methods stop
// promptly, mid-iteration, and the run exits non-zero); -progress streams
// one line per iteration (objective and move count) to stderr.
//
// The program prints the run summary (objective, iterations, time, pruning
// hit rate, and — when labels are available — the F-measure) and optionally
// writes the cluster assignment of every object to -assign.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ucpc"
	"ucpc/internal/datasets"
	"ucpc/internal/eval"
	"ucpc/internal/rng"
	"ucpc/internal/uncgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and status code, so tests can drive
// the binary without os/exec. Malformed command lines (flag errors, stray
// positional arguments, missing required flags) print usage to stderr and
// return 2; runtime failures return 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ucpc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "input CSV file (required)")
		k         = fs.Int("k", 0, "number of clusters (required)")
		alg       = fs.String("alg", "UCPC", "algorithm: UCPC|UKM|bUKM|MinMax-BB|VDBiP|MMV|UKmed|UAHC|FDB|FOPT")
		model     = fs.String("model", "N", "uncertainty model for plain CSV input: U|N|E|none")
		intensity = fs.Float64("intensity", 0.5, "uncertainty intensity relative to per-dim std")
		hasLabels = fs.Bool("labels", false, "last CSV column is an integer class label")
		uncsv     = fs.Bool("uncertain", false, "input is uncertain CSV (ucsv marginal tokens; see internal/datasets)")
		errcsv    = fs.Bool("errors", false, "input columns alternate value,stderr (Normal uncertainty per measurement)")
		seed      = fs.Uint64("seed", ucpc.DefaultSeed, "random seed")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget for the clustering run (0 = none)")
		progFlag  = fs.Bool("progress", false, "stream per-iteration progress (objective, moves) to stderr")
		pruning   = fs.String("pruning", "on", "exact bound-based pruning: on|off|auto (auto = on; results identical either way)")
		assignOut = fs.String("assign", "", "write object,cluster assignments to this CSV file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ucpc: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		fs.Usage()
		return 2
	}
	if *in == "" || *k <= 0 {
		fmt.Fprintln(stderr, "ucpc: -in and -k are required")
		fs.Usage()
		return 2
	}
	var prune ucpc.PruneMode
	switch *pruning {
	case "on", "auto":
		prune = ucpc.PruneOn
	case "off":
		prune = ucpc.PruneOff
	default:
		fmt.Fprintf(stderr, "ucpc: invalid -pruning %q (valid: on, off, auto)\n", *pruning)
		fs.Usage()
		return 2
	}

	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "ucpc: "+format+"\n", args...)
		return 1
	}

	f, err := os.Open(*in)
	if err != nil {
		return fail("%v", err)
	}
	var ds ucpc.Dataset
	var labels []int
	labeled := *hasLabels
	switch {
	case *uncsv:
		ds, err = datasets.ReadUncertainCSV(f)
		f.Close()
		if err != nil {
			return fail("%v", err)
		}
		labels = ds.Labels()
		labeled = allLabeled(labels)
		fmt.Fprintf(stdout, "loaded %d uncertain objects, %d attributes\n", len(ds), ds.Dims())
	case *errcsv:
		ds, err = datasets.ReadErrorCSV(f, *hasLabels, 0.95)
		f.Close()
		if err != nil {
			return fail("%v", err)
		}
		labels = ds.Labels()
		labeled = *hasLabels && allLabeled(labels)
		fmt.Fprintf(stdout, "loaded %d measured objects (value±error), %d attributes\n", len(ds), ds.Dims())
	default:
		d, err := datasets.ReadCSV(f, *in, *hasLabels)
		f.Close()
		if err != nil {
			return fail("%v", err)
		}
		labels = d.Labels
		fmt.Fprintf(stdout, "loaded %d objects, %d attributes\n", len(d.Points), d.Dims())
		switch *model {
		case "none":
			ds = uncgen.AsPointObjects(d)
		case "U", "N", "E":
			var m uncgen.Model
			switch *model {
			case "U":
				m = uncgen.Uniform
			case "N":
				m = uncgen.Normal
			case "E":
				m = uncgen.Exponential
			}
			set := (&uncgen.Generator{Model: m, Intensity: *intensity}).Assign(d, rng.New(*seed^0xa11))
			ds = set.Objects(d)
			fmt.Fprintf(stdout, "attached %s uncertainty (intensity %.2f, 95%% regions)\n", m, *intensity)
		default:
			fmt.Fprintf(stderr, "ucpc: unknown model %q (valid: U, N, E, none)\n", *model)
			fs.Usage()
			return 2
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	clusterer := &ucpc.Clusterer{
		Algorithm: *alg,
		Config:    ucpc.Config{Seed: *seed, Pruning: prune},
	}
	if *progFlag {
		clusterer.Config.Progress = func(ev ucpc.ProgressEvent) {
			fmt.Fprintf(stderr, "%s iter %3d: objective %.6g, %d moves\n",
				ev.Algorithm, ev.Iteration, ev.Objective, ev.Moves)
		}
	}
	fitted, err := clusterer.Fit(ctx, ds, *k)
	if err != nil {
		return fail("%v", err)
	}
	rep := fitted.Report()

	fmt.Fprintf(stdout, "algorithm:  %s\n", *alg)
	fmt.Fprintf(stdout, "clusters:   %d (noise: %d)\n", rep.Partition.K, rep.Partition.NoiseCount())
	fmt.Fprintf(stdout, "iterations: %d (converged: %v)\n", rep.Iterations, rep.Converged)
	fmt.Fprintf(stdout, "time:       %v online, %v offline\n", rep.Online, rep.Offline)
	fmt.Fprintf(stdout, "objective:  %.6g\n", rep.Objective)
	if total := rep.PrunedCandidates + rep.ScannedCandidates; total > 0 {
		fmt.Fprintf(stdout, "pruning:    %.1f%% of %d candidate pairs skipped\n",
			100*rep.PrunedFraction(), total)
	}
	fmt.Fprintf(stdout, "quality Q:  %+.4f\n", eval.Quality(ds, rep.Partition))
	if labeled {
		fmt.Fprintf(stdout, "F-measure:  %.4f\n", eval.FMeasure(rep.Partition, labels))
	}
	for c, size := range rep.Partition.Sizes() {
		fmt.Fprintf(stdout, "  cluster %d: %d objects\n", c, size)
	}

	if *assignOut != "" {
		var b []byte
		for i, c := range rep.Partition.Assign {
			b = strconv.AppendInt(b, int64(i), 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(c), 10)
			b = append(b, '\n')
		}
		if err := os.WriteFile(*assignOut, b, 0o644); err != nil {
			return fail("write %s: %v", *assignOut, err)
		}
		fmt.Fprintf(stdout, "assignments written to %s\n", *assignOut)
	}
	return 0
}

// allLabeled reports whether every object carries a non-negative label.
func allLabeled(labels []int) bool {
	for _, l := range labels {
		if l < 0 {
			return false
		}
	}
	return true
}
