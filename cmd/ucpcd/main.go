// Command ucpcd is the clustering-as-a-service daemon: an HTTP/JSON server
// over the public ucpc API with a multi-tenant model registry, streaming
// ingestion (bounded queues, 429 backpressure), atomic hot model swap,
// Prometheus-text /metrics, structured request logging, and graceful
// shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	ucpcd [-addr :8080] [-req-timeout 30s] [-fit-timeout 5m]
//	      [-queue 64] [-body-limit 33554432] [-grace 10s] [-quiet]
//	      [-state-dir DIR] [-snapshot-interval 30s]
//	      [-push-to URL] [-push-interval 5s] [-push-timeout 5s] [-push-source NAME]
//	      [-admission] [-p99-budget 250ms]
//
// With -state-dir the daemon is crash-safe: every tenant's spec, serving
// model, engine checkpoint, and statistics are snapshotted atomically on a
// timer, on every hot swap, and on SIGTERM (after the ingestion queues
// drain), and replayed on the next boot — corrupt snapshots are
// quarantined, never fatal. With -push-to the daemon federates: every
// stream tenant pushes its UCWS statistics to the coordinator URL under
// the -push-source key, with capped full-jitter retry backoff and a
// circuit breaker that degrades to local-only serving.
//
// With -admission every tenant starts under cost-model admission control:
// token buckets on assign and observe, sized from the measured per-object
// serving cost against the -p99-budget latency budget, shed excess load as
// 429 (with a priced Retry-After) and oversized batches as 413 — never
// 5xx. Individual tenants opt in or out with "admission": "on"/"off" in
// their spec or a PUT to /v1/tenants/{id}/limits.
//
// The endpoint table, payload formats, and metrics reference live in the
// README's "Serving daemon" section and the internal/serve package
// documentation. A minimal session:
//
//	ucpcd -addr :8080 &
//	curl -X POST localhost:8080/v1/tenants -d '{"id":"t1","algorithm":"UCPC","k":4}'
//	curl -X POST localhost:8080/v1/tenants/t1/observe -d '{"points":[[1,2],[9,8],...]}'
//	curl -X POST localhost:8080/v1/tenants/t1/snapshot
//	curl -X POST localhost:8080/v1/tenants/t1/assign -d '{"points":[[1.5,2.5]]}'
//	curl localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ucpc/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main with injectable streams, status code, and an optional
// external stop channel (tests close it in place of a signal), so tests can
// drive the daemon without os/exec. Malformed command lines print usage to
// stderr and return 2; runtime failures (unbindable address, failed drain)
// return 1.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("ucpcd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		reqTimeout = fs.Duration("req-timeout", 30*time.Second, "per-request context budget")
		fitTimeout = fs.Duration("fit-timeout", 5*time.Minute, "background FitFrom refresh budget")
		queue      = fs.Int("queue", 64, "per-tenant ingestion queue capacity, in observe payloads")
		bodyLimit  = fs.Int64("body-limit", 32<<20, "request body cap in bytes")
		grace      = fs.Duration("grace", 10*time.Second, "graceful shutdown drain budget")
		quiet      = fs.Bool("quiet", false, "suppress per-request structured logs")

		stateDir     = fs.String("state-dir", "", "crash-safe snapshot directory (empty = no persistence)")
		snapInterval = fs.Duration("snapshot-interval", 30*time.Second, "persistence timer period (with -state-dir)")
		pushTo       = fs.String("push-to", "", "coordinator base URL for federation pushes (empty = no pushing)")
		pushInterval = fs.Duration("push-interval", 5*time.Second, "steady-state federation push period")
		pushTimeout  = fs.Duration("push-timeout", 5*time.Second, "per-push request budget")
		pushSource   = fs.String("push-source", "", "stable source key for pushes (empty = host name)")
		admission    = fs.Bool("admission", false, "start tenants under cost-model admission control by default")
		p99Budget    = fs.Duration("p99-budget", 250*time.Millisecond, "per-request latency budget admission defends")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ucpcd: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		fs.Usage()
		return 2
	}
	if *reqTimeout <= 0 || *fitTimeout <= 0 || *grace <= 0 || *queue <= 0 || *bodyLimit <= 0 {
		fmt.Fprintln(stderr, "ucpcd: -req-timeout, -fit-timeout, -grace, -queue, and -body-limit must be positive")
		fs.Usage()
		return 2
	}
	if *snapInterval <= 0 || *pushInterval <= 0 || *pushTimeout <= 0 {
		fmt.Fprintln(stderr, "ucpcd: -snapshot-interval, -push-interval, and -push-timeout must be positive")
		fs.Usage()
		return 2
	}
	if *p99Budget <= 0 {
		fmt.Fprintln(stderr, "ucpcd: -p99-budget must be positive")
		fs.Usage()
		return 2
	}

	logDst := io.Writer(stderr)
	if *quiet {
		logDst = io.Discard
	}
	logger := slog.New(slog.NewJSONHandler(logDst, nil))

	srv, err := serve.New(serve.Config{
		RequestTimeout:   *reqTimeout,
		FitTimeout:       *fitTimeout,
		QueueChunks:      *queue,
		MaxBodyBytes:     *bodyLimit,
		Logger:           logger,
		StateDir:         *stateDir,
		SnapshotInterval: *snapInterval,
		PushTo:           *pushTo,
		PushInterval:     *pushInterval,
		PushTimeout:      *pushTimeout,
		PushSource:       *pushSource,
		Admission:        *admission,
		P99Budget:        *p99Budget,
	})
	if err != nil {
		fmt.Fprintf(stderr, "ucpcd: %v\n", err)
		return 1
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "ucpcd: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "ucpcd: listening on %s\n", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	select {
	case err := <-done:
		// Serve returned on its own: the listener died underneath us.
		if err != nil {
			fmt.Fprintf(stderr, "ucpcd: serve: %v\n", err)
			return 1
		}
		return 0
	case s := <-sig:
		fmt.Fprintf(stdout, "ucpcd: %v received, draining (budget %v)\n", s, *grace)
	case <-stop:
		fmt.Fprintf(stdout, "ucpcd: stop requested, draining (budget %v)\n", *grace)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "ucpcd: shutdown: %v\n", err)
		return 1
	}
	<-done
	fmt.Fprintln(stdout, "ucpcd: drained, bye")
	return 0
}
