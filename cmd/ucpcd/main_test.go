package main

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe for the daemon goroutine to write while
// the test polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestExitCodes: malformed command lines return 2 with usage on stderr;
// runtime failures (unbindable address) return 1 — the repo-wide run()
// convention.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"stray positional args", []string{"junk"}, 2},
		{"zero queue", []string{"-queue", "0"}, 2},
		{"negative grace", []string{"-grace", "-1s"}, 2},
		{"zero req timeout", []string{"-req-timeout", "0"}, 2},
		{"bad body limit", []string{"-body-limit", "-5"}, 2},
		{"unbindable address", []string{"-addr", "203.0.113.1:1"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run(tc.args, &out, &errb, nil)
			if code != tc.code {
				t.Errorf("args %v: exit %d, want %d (stderr: %s)", tc.args, code, tc.code, errb.String())
			}
			if errb.Len() == 0 {
				t.Errorf("args %v: nothing on stderr", tc.args)
			}
			if tc.code == 2 && !strings.Contains(errb.String(), "Usage") {
				t.Errorf("args %v: usage not printed (stderr: %s)", tc.args, errb.String())
			}
		})
	}
}

// TestDaemonSmoke boots the daemon on an ephemeral port through run(),
// walks one tenant through the lifecycle over real HTTP, and shuts it down
// through the test stop channel — the cmd-level end-to-end path.
func TestDaemonSmoke(t *testing.T) {
	stdout := &syncBuffer{}
	stderr := &syncBuffer{}
	stop := make(chan struct{})
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-quiet"}, stdout, stderr, stop)
	}()

	// Wait for the listen line and extract the bound address.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; stdout: %q stderr: %q", stdout.String(), stderr.String())
		}
		if s := stdout.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			addr = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	base := "http://" + addr

	post := func(path, body string, want int) string {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("POST %s: status %d, want %d (body: %s)", path, resp.StatusCode, want, b.String())
		}
		return b.String()
	}

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	post("/v1/tenants", `{"id":"smoke","algorithm":"UCPC","k":2,"seed":7}`, 201)
	var points strings.Builder
	points.WriteString(`{"points":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			points.WriteString(",")
		}
		fmt.Fprintf(&points, "[%d,%d]", i%2*20, i%2*20)
	}
	points.WriteString("]}")
	post("/v1/tenants/smoke/observe", points.String(), 202)

	// Snapshot may race the ingester: retry while the stream is cold.
	for i := 0; ; i++ {
		resp, err := http.Post(base+"/v1/tenants/smoke/snapshot", "application/json", nil)
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == 200 {
			break
		}
		if resp.StatusCode != 409 || i > 500 {
			t.Fatalf("snapshot: status %d after %d tries", resp.StatusCode, i)
		}
		time.Sleep(10 * time.Millisecond)
	}
	body := post("/v1/tenants/smoke/assign", `{"points":[[0,0],[20,20]]}`, 200)
	if !strings.Contains(body, "assign") {
		t.Fatalf("assign response missing assignment: %s", body)
	}

	if resp, err := http.Get(base + "/metrics"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("metrics: %v %v", resp, err)
	} else {
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		resp.Body.Close()
		if !strings.Contains(b.String(), "ucpcd_requests_total") {
			t.Fatalf("metrics output missing counters: %s", b.String())
		}
	}

	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exit %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after stop")
	}
	if !strings.Contains(stdout.String(), "drained, bye") {
		t.Errorf("graceful drain line missing from stdout: %q", stdout.String())
	}
}
