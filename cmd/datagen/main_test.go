package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd drives run() and captures the streams.
func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestListGolden pins the -list output to a golden file: the catalogue is
// static program output, so any drift is an intentional spec change.
func TestListGolden(t *testing.T) {
	code, stdout, stderr := runCmd("-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "list.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("-list output drifted from testdata/list.golden:\ngot:\n%s\nwant:\n%s", stdout, want)
	}
}

// TestGenerateCSVShapeAndDeterminism: a seeded generation emits a parseable
// CSV of the advertised shape, and the same command line reproduces it byte
// for byte.
func TestGenerateCSVShapeAndDeterminism(t *testing.T) {
	code, first, stderr := runCmd("-name", "Iris", "-scale", "0.2", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	rows, err := csv.NewReader(strings.NewReader(first)).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v", err)
	}
	if len(rows) != 30 { // 150 × 0.2
		t.Errorf("%d rows, want 30", len(rows))
	}
	for i, row := range rows {
		if len(row) != 5 { // 4 attributes + label
			t.Fatalf("row %d has %d columns, want 5", i, len(row))
		}
	}
	_, second, _ := runCmd("-name", "Iris", "-scale", "0.2", "-seed", "7")
	if first != second {
		t.Error("same seed produced different CSV bytes")
	}
	if !strings.Contains(stderr, "wrote 30 objects") {
		t.Errorf("summary line missing from stderr: %q", stderr)
	}
}

// TestOutFlagWritesFile covers the -out path.
func TestOutFlagWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "iris.csv")
	code, _, stderr := runCmd("-name", "Iris", "-scale", "0.1", "-out", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("-out file is empty")
	}
}

// TestExitCodes: malformed command lines must return non-zero and print
// usage to stderr (the pre-refactor binaries could exit 0 on bad input).
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"stray positional args", []string{"-name", "Iris", "extra"}, 2},
		{"missing name", []string{}, 2},
		{"unknown dataset", []string{"-name", "NoSuchSet"}, 1},
		{"unknown uncertain dataset", []string{"-name", "NoSuchSet", "-uncertain"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(tc.args...)
			if code != tc.code {
				t.Errorf("args %v: exit %d, want %d (stderr: %s)", tc.args, code, tc.code, stderr)
			}
			if stderr == "" {
				t.Errorf("args %v: nothing on stderr", tc.args)
			}
			if tc.code == 2 && !strings.Contains(stderr, "Usage") {
				t.Errorf("args %v: usage not printed on flag error (stderr: %s)", tc.args, stderr)
			}
		})
	}
}
