// Command datagen emits the synthetic datasets used by the experiments as
// CSV (attributes followed by an integer class label), so they can be
// inspected, re-used by cmd/ucpc, or fed to external tools.
//
// Usage:
//
//	datagen -name Iris [-scale 1] [-seed 1] [-out iris.csv]
//	datagen -name KDDCup99 -n 100000
//	datagen -list
//
// Valid names are the Table 1(a) benchmarks (Iris, Wine, Glass, Ecoli,
// Yeast, Image, Abalone, Letter) and KDDCup99. The microarray collections
// are inherently uncertain (they exist only as uncertain objects); export
// their expected values with -name Neuroblastoma|Leukaemia.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"ucpc"

	"ucpc/internal/datasets"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/uncgen"
)

// datasetsUncertain aliases the uncertain dataset type for local brevity.
type datasetsUncertain = uncertain.Dataset

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and status code, so tests can drive
// the binary without os/exec. Malformed command lines (flag errors, stray
// positional arguments, missing -name) print usage to stderr and return 2;
// runtime failures return 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name  = fs.String("name", "", "dataset name (see -list)")
		scale = fs.Float64("scale", 1, "fraction of the published size")
		seed  = fs.Uint64("seed", ucpc.DefaultSeed, "generator seed")
		n     = fs.Int("n", 0, "explicit object count (KDDCup99 only; overrides -scale)")
		out   = fs.String("out", "", "output file (default stdout)")
		uncsv = fs.Bool("uncertain", false, "emit uncertain CSV with marginal tokens (microarrays keep probe-level pdfs)")
		list  = fs.Bool("list", false, "list available datasets")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "datagen: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		fs.Usage()
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "benchmark datasets (Table 1a):")
		for _, s := range datasets.Benchmarks() {
			fmt.Fprintf(stdout, "  %-8s n=%-6d attrs=%-3d classes=%d\n", s.Name, s.N, s.Dims, s.Classes)
		}
		k := datasets.KDD()
		fmt.Fprintf(stdout, "  %-8s n=%-7d attrs=%-3d classes=%d\n", "KDDCup99", k.N, k.Dims, k.Classes)
		fmt.Fprintln(stdout, "microarray datasets (Table 1b, expected values exported):")
		for _, s := range datasets.Microarrays() {
			fmt.Fprintf(stdout, "  %-14s genes=%-6d arrays=%d\n", s.Name, s.Genes, s.Arrays)
		}
		return 0
	}
	if *name == "" {
		fmt.Fprintln(stderr, "datagen: -name is required (or -list)")
		fs.Usage()
		return 2
	}

	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "datagen: "+format+"\n", args...)
		return 1
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail("%v", err)
		}
		defer f.Close()
		w = f
	}

	if *uncsv {
		ds, err := buildUncertain(*name, *scale, *seed)
		if err != nil {
			return fail("%v", err)
		}
		if err := datasets.WriteUncertainCSV(w, ds); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stderr, "datagen: wrote %d uncertain objects × %d attributes\n",
			len(ds), ds.Dims())
		return 0
	}

	d, err := build(*name, *scale, *seed, *n)
	if err != nil {
		return fail("%v", err)
	}
	if err := datasets.WriteCSV(w, d); err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(stderr, "datagen: wrote %d objects × %d attributes (%d classes)\n",
		len(d.Points), d.Dims(), d.Classes)
	return 0
}

// buildUncertain materializes a dataset as uncertain objects: microarrays
// keep their inherent probe-level pdfs; benchmarks get Normal uncertainty
// attached with the paper's §5.1 generator.
func buildUncertain(name string, scale float64, seed uint64) (datasetsUncertain, error) {
	if spec, err := datasets.MicroarrayByName(name); err == nil {
		return datasets.GenerateMicroarray(spec, scale, seed), nil
	}
	if spec, err := datasets.BenchmarkByName(name); err == nil {
		d := datasets.Generate(spec, seed).Scale(scale)
		set := (&uncgen.Generator{Model: uncgen.Normal}).Assign(d, rng.New(seed^0xdead))
		return set.Objects(d), nil
	}
	return nil, fmt.Errorf("unknown dataset %q for -uncertain (try -list)", name)
}

func build(name string, scale float64, seed uint64, n int) (*datasets.Deterministic, error) {
	if name == "KDDCup99" {
		if n == 0 {
			n = int(float64(datasets.KDD().N) * scale)
		}
		return datasets.GenerateKDD(n, seed), nil
	}
	if spec, err := datasets.BenchmarkByName(name); err == nil {
		return datasets.Generate(spec, seed).Scale(scale), nil
	}
	if spec, err := datasets.MicroarrayByName(name); err == nil {
		ds := datasets.GenerateMicroarray(spec, scale, seed)
		out := &datasets.Deterministic{Name: name, Classes: spec.LatentGroups}
		for _, o := range ds {
			out.Points = append(out.Points, o.Mean())
			out.Labels = append(out.Labels, o.Label)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown dataset %q (try -list)", name)
}
