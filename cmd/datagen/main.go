// Command datagen emits the synthetic datasets used by the experiments as
// CSV (attributes followed by an integer class label), so they can be
// inspected, re-used by cmd/ucpc, or fed to external tools.
//
// Usage:
//
//	datagen -name Iris [-scale 1] [-seed 1] [-out iris.csv]
//	datagen -name KDDCup99 -n 100000
//	datagen -list
//
// Valid names are the Table 1(a) benchmarks (Iris, Wine, Glass, Ecoli,
// Yeast, Image, Abalone, Letter) and KDDCup99. The microarray collections
// are inherently uncertain (they exist only as uncertain objects); export
// their expected values with -name Neuroblastoma|Leukaemia.
package main

import (
	"flag"
	"fmt"
	"os"

	"ucpc/internal/datasets"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/uncgen"
)

// datasetsUncertain aliases the uncertain dataset type for local brevity.
type datasetsUncertain = uncertain.Dataset

func main() {
	var (
		name  = flag.String("name", "", "dataset name (see -list)")
		scale = flag.Float64("scale", 1, "fraction of the published size")
		seed  = flag.Uint64("seed", 1, "generator seed")
		n     = flag.Int("n", 0, "explicit object count (KDDCup99 only; overrides -scale)")
		out   = flag.String("out", "", "output file (default stdout)")
		uncsv = flag.Bool("uncertain", false, "emit uncertain CSV with marginal tokens (microarrays keep probe-level pdfs)")
		list  = flag.Bool("list", false, "list available datasets")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmark datasets (Table 1a):")
		for _, s := range datasets.Benchmarks() {
			fmt.Printf("  %-8s n=%-6d attrs=%-3d classes=%d\n", s.Name, s.N, s.Dims, s.Classes)
		}
		k := datasets.KDD()
		fmt.Printf("  %-8s n=%-7d attrs=%-3d classes=%d\n", "KDDCup99", k.N, k.Dims, k.Classes)
		fmt.Println("microarray datasets (Table 1b, expected values exported):")
		for _, s := range datasets.Microarrays() {
			fmt.Printf("  %-14s genes=%-6d arrays=%d\n", s.Name, s.Genes, s.Arrays)
		}
		return
	}
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}

	if *uncsv {
		ds, err := buildUncertain(*name, *scale, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		if err := datasets.WriteUncertainCSV(w, ds); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote %d uncertain objects × %d attributes\n",
			len(ds), ds.Dims())
		return
	}

	d, err := build(*name, *scale, *seed, *n)
	if err != nil {
		fatalf("%v", err)
	}
	if err := datasets.WriteCSV(w, d); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d objects × %d attributes (%d classes)\n",
		len(d.Points), d.Dims(), d.Classes)
}

// buildUncertain materializes a dataset as uncertain objects: microarrays
// keep their inherent probe-level pdfs; benchmarks get Normal uncertainty
// attached with the paper's §5.1 generator.
func buildUncertain(name string, scale float64, seed uint64) (datasetsUncertain, error) {
	if spec, err := datasets.MicroarrayByName(name); err == nil {
		return datasets.GenerateMicroarray(spec, scale, seed), nil
	}
	if spec, err := datasets.BenchmarkByName(name); err == nil {
		d := datasets.Generate(spec, seed).Scale(scale)
		set := (&uncgen.Generator{Model: uncgen.Normal}).Assign(d, rng.New(seed^0xdead))
		return set.Objects(d), nil
	}
	return nil, fmt.Errorf("unknown dataset %q for -uncertain (try -list)", name)
}

func build(name string, scale float64, seed uint64, n int) (*datasets.Deterministic, error) {
	if name == "KDDCup99" {
		if n == 0 {
			n = int(float64(datasets.KDD().N) * scale)
		}
		return datasets.GenerateKDD(n, seed), nil
	}
	if spec, err := datasets.BenchmarkByName(name); err == nil {
		return datasets.Generate(spec, seed).Scale(scale), nil
	}
	if spec, err := datasets.MicroarrayByName(name); err == nil {
		ds := datasets.GenerateMicroarray(spec, scale, seed)
		out := &datasets.Deterministic{Name: name, Classes: spec.LatentGroups}
		for _, o := range ds {
			out.Points = append(out.Points, o.Mean())
			out.Labels = append(out.Labels, o.Label)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown dataset %q (try -list)", name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
