package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ucpc/internal/experiments"
)

// runCmd drives run() and captures the streams.
func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// benchArgs is a bench-mode invocation small enough for the test suite.
var benchArgs = []string{"-exp", "bench", "-bn", "150", "-bk", "4", "-runs", "1"}

// TestBenchJSON: the bench mode emits a parseable BENCH_PR2 payload with
// every algorithm measured, pruning work recorded, and -out mirroring
// stdout.
func TestBenchJSON(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_PR2.json")
	args := append(append([]string{}, benchArgs...), "-json", "-out", outPath)
	code, stdout, stderr := runCmd(args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var res experiments.PruneBenchResult
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("stdout is not the JSON payload: %v\n%s", err, stdout)
	}
	if res.Bench != "PrunedAssign" {
		t.Errorf("bench name %q", res.Bench)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(res.Rows))
	}
	var gated, prunedSomething int
	for _, row := range res.Rows {
		if row.PrunedNsPerOp <= 0 || row.UnprunedNsPerOp <= 0 {
			t.Errorf("%s: non-positive timings %d/%d", row.Algorithm, row.PrunedNsPerOp, row.UnprunedNsPerOp)
		}
		if row.Gate {
			gated++
		}
		if row.PrunedFraction > 0 {
			prunedSomething++
		}
	}
	if gated == 0 {
		t.Error("no gate rows for the CI regression check")
	}
	if prunedSomething == 0 {
		t.Error("no algorithm recorded pruned work")
	}
	if res.CtxOverhead == nil {
		t.Fatal("payload missing the ctx_overhead section")
	}
	if res.CtxOverhead.Budget != 0.02 {
		t.Errorf("ctx overhead budget %v, want 0.02", res.CtxOverhead.Budget)
	}
	if res.CtxOverhead.ServingNsPerOp <= 0 || res.CtxOverhead.BaselineNsPerOp <= 0 {
		t.Errorf("non-positive ctx-overhead timings: %+v", res.CtxOverhead)
	}
	fileData, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(fileData) != stdout {
		t.Error("-out file differs from stdout payload")
	}
}

// TestBenchRendered: without -json the bench mode prints the table form.
func TestBenchRendered(t *testing.T) {
	code, stdout, stderr := runCmd(benchArgs...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"Pruning engine benchmark", "UCPC-Lloyd", "pruned-frac"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("rendered output missing %q:\n%s", want, stdout)
		}
	}
}

// TestTimeoutExpired: an already-expired -timeout aborts the experiment
// with a runtime failure (exit 1), not a usage error.
func TestTimeoutExpired(t *testing.T) {
	code, _, stderr := runCmd("-exp", "fig4", "-timeout", "1ns")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "deadline") {
		t.Errorf("stderr does not mention the deadline: %s", stderr)
	}
}

// TestExitCodes: malformed command lines return non-zero with usage on
// stderr.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"unknown experiment", []string{"-exp", "table9"}, 2},
		{"unknown model", []string{"-models", "Z"}, 2},
		{"stray positional args", []string{"-exp", "bench", "junk"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(tc.args...)
			if code != tc.code {
				t.Errorf("args %v: exit %d, want %d (stderr: %s)", tc.args, code, tc.code, stderr)
			}
			if stderr == "" {
				t.Errorf("args %v: nothing on stderr", tc.args)
			}
		})
	}
}
