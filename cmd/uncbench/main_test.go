package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ucpc/internal/experiments"
)

// runCmd drives run() and captures the streams.
func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// benchArgs is a bench-mode invocation small enough for the test suite.
var benchArgs = []string{"-exp", "bench", "-bn", "150", "-bk", "4", "-runs", "1"}

// TestBenchJSON: the bench mode emits a parseable BENCH_PR2 payload with
// every algorithm measured, pruning work recorded, and -out mirroring
// stdout.
func TestBenchJSON(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_PR2.json")
	args := append(append([]string{}, benchArgs...), "-json", "-out", outPath)
	code, stdout, stderr := runCmd(args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var res experiments.PruneBenchResult
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("stdout is not the JSON payload: %v\n%s", err, stdout)
	}
	if res.Bench != "PrunedAssign" {
		t.Errorf("bench name %q", res.Bench)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(res.Rows))
	}
	var gated, prunedSomething int
	for _, row := range res.Rows {
		if row.PrunedNsPerOp <= 0 || row.UnprunedNsPerOp <= 0 {
			t.Errorf("%s: non-positive timings %d/%d", row.Algorithm, row.PrunedNsPerOp, row.UnprunedNsPerOp)
		}
		if row.Gate {
			gated++
		}
		if row.PrunedFraction > 0 {
			prunedSomething++
		}
	}
	if gated == 0 {
		t.Error("no gate rows for the CI regression check")
	}
	if prunedSomething == 0 {
		t.Error("no algorithm recorded pruned work")
	}
	if res.CtxOverhead == nil {
		t.Fatal("payload missing the ctx_overhead section")
	}
	if res.CtxOverhead.Budget != 0.02 {
		t.Errorf("ctx overhead budget %v, want 0.02", res.CtxOverhead.Budget)
	}
	if res.CtxOverhead.ServingNsPerOp <= 0 || res.CtxOverhead.BaselineNsPerOp <= 0 {
		t.Errorf("non-positive ctx-overhead timings: %+v", res.CtxOverhead)
	}
	fileData, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(fileData) != stdout {
		t.Error("-out file differs from stdout payload")
	}
}

// TestBenchRendered: without -json the bench mode prints the table form.
func TestBenchRendered(t *testing.T) {
	code, stdout, stderr := runCmd(benchArgs...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"Pruning engine benchmark", "UCPC-Lloyd", "pruned-frac"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("rendered output missing %q:\n%s", want, stdout)
		}
	}
}

// TestTimeoutExpired: an already-expired -timeout aborts the experiment
// with a runtime failure (exit 1), not a usage error.
func TestTimeoutExpired(t *testing.T) {
	code, _, stderr := runCmd("-exp", "fig4", "-timeout", "1ns")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "deadline") {
		t.Errorf("stderr does not mention the deadline: %s", stderr)
	}
}

// TestExitCodes: malformed command lines return non-zero with usage on
// stderr.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"unknown experiment", []string{"-exp", "table9"}, 2},
		{"unknown model", []string{"-models", "Z"}, 2},
		{"stray positional args", []string{"-exp", "bench", "junk"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(tc.args...)
			if code != tc.code {
				t.Errorf("args %v: exit %d, want %d (stderr: %s)", tc.args, code, tc.code, stderr)
			}
			if stderr == "" {
				t.Errorf("args %v: nothing on stderr", tc.args)
			}
		})
	}
}

// TestBenchAllocsReported: every bench row carries the steady-state
// allocs_per_op measurement, and the engines hold the zero-allocation
// contract even on the small test workload.
func TestBenchAllocsReported(t *testing.T) {
	args := append(append([]string{}, benchArgs...), "-json")
	code, stdout, stderr := runCmd(args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var res experiments.PruneBenchResult
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.AllocsPerOp != 0 {
			t.Errorf("%s: %g allocs per steady-state pass, want 0", row.Algorithm, row.AllocsPerOp)
		}
	}
}

// TestBaselineCompare: -baseline passes against an equal-or-slower
// baseline, fails (exit 3, after writing output) against a much faster
// one, and errors cleanly (exit 1) on unreadable or malformed files.
func TestBaselineCompare(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "new.json")
	args := append(append([]string{}, benchArgs...), "-json", "-out", jsonPath)
	if code, _, stderr := runCmd(args...); code != 0 {
		t.Fatalf("bench exit %d, stderr: %s", code, stderr)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var res experiments.PruneBenchResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}

	write := func(name string, mutate func(*experiments.PruneBenchResult)) string {
		cp := res
		cp.Rows = append([]experiments.PruneBenchRow(nil), res.Rows...)
		mutate(&cp)
		enc, err := json.Marshal(&cp)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	slower := write("slower.json", func(r *experiments.PruneBenchResult) {
		for i := range r.Rows {
			r.Rows[i].PrunedNsPerOp *= 100
		}
	})
	faster := write("faster.json", func(r *experiments.PruneBenchResult) {
		for i := range r.Rows {
			r.Rows[i].PrunedNsPerOp = 1
		}
	})

	args = append(append([]string{}, benchArgs...), "-baseline", slower)
	if code, _, stderr := runCmd(args...); code != 0 {
		t.Errorf("vs slower baseline: exit %d, stderr: %s", code, stderr)
	}
	args = append(append([]string{}, benchArgs...), "-baseline", faster)
	code, stdout, stderr := runCmd(args...)
	if code != 3 {
		t.Errorf("vs faster baseline: exit %d, want 3 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "regression") {
		t.Errorf("stderr does not mention the regression: %s", stderr)
	}
	if !strings.Contains(stdout, "Pruning engine benchmark") {
		t.Error("output not written before the baseline gate failed")
	}
	args = append(append([]string{}, benchArgs...), "-baseline", filepath.Join(dir, "missing.json"))
	if code, _, _ := runCmd(args...); code != 1 {
		t.Errorf("missing baseline: exit %d, want 1", code)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	args = append(append([]string{}, benchArgs...), "-baseline", bad)
	if code, _, _ := runCmd(args...); code != 1 {
		t.Errorf("malformed baseline: exit %d, want 1", code)
	}
}

// TestServeSmoke: the serve mode boots the daemon, sustains assign load
// across a hot swap, provokes backpressure, and passes its own -check gates
// even on a deliberately tiny workload.
func TestServeSmoke(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "SERVE.json")
	code, stdout, stderr := runCmd("-exp", "serve", "-bn", "600", "-bk", "4",
		"-workers", "2", "-dur", "300ms", "-json", "-check", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var res experiments.ServeResult
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("stdout is not the JSON payload: %v\n%s", err, stdout)
	}
	if res.FailedAssigns != 0 {
		t.Errorf("%d failed assigns", res.FailedAssigns)
	}
	if res.VersionsObserved < 2 {
		t.Errorf("observed %d model versions, want >= 2 (hot swap under load)", res.VersionsObserved)
	}
	if res.Rejected429 < 1 || res.Rejected429 != res.QueueRejectedTotal {
		t.Errorf("backpressure: client 429s %d vs server rejections %d", res.Rejected429, res.QueueRejectedTotal)
	}
	if !res.ConservationOK {
		t.Errorf("conservation violated: %d requests vs %d responses", res.RequestsTotal, res.ResponsesTotal)
	}
	if res.AssignRequests == 0 || res.QPS <= 0 {
		t.Errorf("no load sustained: %+v", res)
	}
	if fileData, err := os.ReadFile(outPath); err != nil || string(fileData) != stdout {
		t.Errorf("-out file differs from stdout payload (err %v)", err)
	}
}

// TestDurableSmoke: the durable mode (in-process crash hook) persists a
// mid-stream snapshot, survives the crash/restart, rides out the flaky
// federation path, and passes its own -check gates on a tiny workload.
func TestDurableSmoke(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "DURABLE.json")
	code, stdout, stderr := runCmd("-exp", "durable", "-bn", "1500", "-bk", "3",
		"-json", "-check", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var res experiments.DurableResult
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("stdout is not the JSON payload: %v\n%s", err, stdout)
	}
	if res.Mode != "in-process" {
		t.Errorf("mode %q, want in-process without -daemon", res.Mode)
	}
	if res.PersistedAtKill <= 0 || res.RecoveredIngested < res.PersistedAtKill {
		t.Errorf("recovery offsets: persisted %d, resumed %d", res.PersistedAtKill, res.RecoveredIngested)
	}
	if res.RecoveryAssigns == 0 || res.RecoveryAssign5xx != 0 {
		t.Errorf("post-recovery serving: %d assigns, %d 5xx", res.RecoveryAssigns, res.RecoveryAssign5xx)
	}
	if !res.BreakerOpened || res.FaultsInjected == 0 || res.PushFailures == 0 {
		t.Errorf("fault injection unexercised: breaker=%v faults=%d push failures=%d",
			res.BreakerOpened, res.FaultsInjected, res.PushFailures)
	}
	if err := res.Check(); err != nil {
		t.Errorf("gates: %v", err)
	}
	if fileData, err := os.ReadFile(outPath); err != nil || string(fileData) != stdout {
		t.Errorf("-out file differs from stdout payload (err %v)", err)
	}
}

// TestProfilesWritten: -cpuprofile and -memprofile produce non-empty
// pprof files; unwritable paths exit 1.
func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	args := append(append([]string{}, benchArgs...), "-cpuprofile", cpu, "-memprofile", mem)
	if code, _, stderr := runCmd(args...); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	args = append(append([]string{}, benchArgs...), "-cpuprofile", filepath.Join(dir, "no", "such", "dir.pprof"))
	if code, _, _ := runCmd(args...); code != 1 {
		t.Errorf("unwritable cpuprofile: exit %d, want 1", code)
	}
	args = append(append([]string{}, benchArgs...), "-memprofile", filepath.Join(dir, "no", "such", "dir.pprof"))
	if code, _, _ := runCmd(args...); code != 1 {
		t.Errorf("unwritable memprofile: exit %d, want 1", code)
	}
}
