// Command uncbench regenerates the paper's evaluation artifacts: Table 2
// (accuracy on benchmark datasets), Table 3 (accuracy on real microarray
// data), Figure 4 (efficiency), and Figure 5 (scalability on the KDD Cup
// '99 workload).
//
// Usage:
//
//	uncbench -exp table2|table3|fig4|fig5|all [flags]
//
// Flags:
//
//	-scale f     dataset scale fraction (default 0.08; fig5 default 0.005,
//	             interpreted against the 4M-row KDD collection)
//	-runs n      repetitions averaged per measurement (paper: 50; default 3)
//	-seed n      master seed (default 1)
//	-datasets s  comma-separated dataset subset (table2/table3/fig4)
//	-models s    comma-separated pdf families for table2: U,N,E
//	-out path    also write the rendered output to a file
//	-v           progress lines on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ucpc/internal/experiments"
	"ucpc/internal/uncgen"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table2|table3|fig4|fig5|all")
		scale    = flag.Float64("scale", 0, "dataset scale fraction (0 = per-experiment default)")
		runs     = flag.Int("runs", 0, "runs averaged per measurement (0 = default 3)")
		seed     = flag.Uint64("seed", 1, "master seed")
		datasets = flag.String("datasets", "", "comma-separated dataset subset")
		models   = flag.String("models", "", "comma-separated pdf families (U,N,E)")
		out      = flag.String("out", "", "also write output to this file")
		csvOut   = flag.Bool("csv", false, "emit machine-readable CSV instead of rendered tables")
		verbose  = flag.Bool("v", false, "progress to stderr")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Runs: *runs, Scale: *scale}
	if *verbose {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}
	var mods []uncgen.Model
	if *models != "" {
		for _, s := range strings.Split(*models, ",") {
			switch strings.TrimSpace(s) {
			case "U":
				mods = append(mods, uncgen.Uniform)
			case "N":
				mods = append(mods, uncgen.Normal)
			case "E":
				mods = append(mods, uncgen.Exponential)
			default:
				fatalf("unknown model %q (valid: U, N, E)", s)
			}
		}
	}

	var b strings.Builder
	runTable2 := func() {
		res, err := experiments.Table2(cfg, names, mods)
		if err != nil {
			fatalf("table2: %v", err)
		}
		if *csvOut {
			b.WriteString(experiments.Table2CSV(res))
			return
		}
		b.WriteString(experiments.RenderTable2(res))
		b.WriteString("\n")
	}
	runTable3 := func() {
		res, err := experiments.Table3(cfg, names, nil)
		if err != nil {
			fatalf("table3: %v", err)
		}
		if *csvOut {
			b.WriteString(experiments.Table3CSV(res))
			return
		}
		b.WriteString(experiments.RenderTable3(res))
		b.WriteString("\n")
	}
	runFig4 := func() {
		res, err := experiments.Fig4(cfg, names)
		if err != nil {
			fatalf("fig4: %v", err)
		}
		if *csvOut {
			b.WriteString(experiments.Fig4CSV(res))
			return
		}
		b.WriteString(experiments.RenderFig4(res))
		b.WriteString("\nfastest-to-slowest per dataset:\n")
		for _, row := range res.Rows {
			b.WriteString("  " + experiments.SummarizeOrdering(row) + "\n")
		}
		b.WriteString("\n")
	}
	runFig5 := func() {
		res, err := experiments.Fig5(cfg, nil)
		if err != nil {
			fatalf("fig5: %v", err)
		}
		if *csvOut {
			b.WriteString(experiments.Fig5CSV(res))
			return
		}
		b.WriteString(experiments.RenderFig5(res))
		b.WriteString("\n")
	}

	switch *exp {
	case "table2":
		runTable2()
	case "table3":
		runTable3()
	case "fig4":
		runFig4()
	case "fig5":
		runFig5()
	case "all":
		runTable2()
		runTable3()
		runFig4()
		runFig5()
	default:
		fatalf("unknown experiment %q (valid: table2, table3, fig4, fig5, all)", *exp)
	}

	fmt.Print(b.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "uncbench: "+format+"\n", args...)
	os.Exit(1)
}
