// Command uncbench regenerates the paper's evaluation artifacts: Table 2
// (accuracy on benchmark datasets), Table 3 (accuracy on real microarray
// data), Figure 4 (efficiency), Figure 5 (scalability on the KDD Cup '99
// workload) — plus this repository's pruning-engine benchmark.
//
// Usage:
//
//	uncbench -exp table2|table3|fig4|fig5|bench|kernel|scale|shard|serve|durable|all [flags]
//
// Flags:
//
//	-scale f     dataset scale fraction (default 0.08; fig5 default 0.005,
//	             interpreted against the 4M-row KDD collection)
//	-runs n      repetitions averaged per measurement (paper: 50; default 3)
//	-seed n      master seed (default ucpc.DefaultSeed = 1)
//	-timeout d   wall-clock budget for the whole run (0 = none); on expiry
//	             the run stops promptly and exits non-zero
//	-datasets s  comma-separated dataset subset (table2/table3/fig4)
//	-models s    comma-separated pdf families for table2: U,N,E
//	-out path    also write the rendered output to a file
//	-csv         emit machine-readable CSV instead of rendered tables
//	-json        emit machine-readable JSON (bench mode only)
//	-check       bench mode: exit non-zero if a gated algorithm is slower
//	             with pruning than without, a steady-state sweep pass
//	             allocates, or the ctx-check budget is exceeded
//	-baseline f  bench mode: compare against a previous bench JSON and exit
//	             non-zero if any algorithm's pruned ns/op regressed by more
//	             than 10%
//	-bn n        bench mode: object count (default 2000);
//	             scale mode: streamed object count (default 1,000,000)
//	-bk n        bench mode: cluster count (default 16);
//	             scale mode: cluster count (default 23)
//	-batch n     scale/shard mode: streaming mini-batch size (default 8192)
//	-shards n    shard mode: parallel shard count (default 4)
//	-dur d       serve mode: assign load window (default 3s)
//	-workers n   bench/scale mode: worker-pool size (bench default 1)
//	-cpuprofile f  write a pprof CPU profile of the whole run to f
//	-memprofile f  write a pprof heap profile (post-run) to f
//	-v           progress lines on stderr
//
// The bench mode measures the exact bound-based pruning engine against the
// bound-free baseline, the steady-state allocations of every sweep pass,
// and the context-check overhead of the Model.Assign serving path; with
// -json it emits the BENCH_PR4.json payload CI archives for the
// performance trajectory:
//
//	uncbench -exp bench -json -out BENCH_PR5.json -check -baseline BENCH_PR4.json
//
// The kernel mode microbenchmarks the blocked flat kernels of internal/vec
// against the scalar baselines they replaced (ns per moment-store row,
// blocked and scalar passes interleaved in-process); with -json it emits
// the artifact CI archives next to the pruning bench JSON:
//
//	uncbench -exp kernel -json -out KERNEL_PR6.json
//
// The scale mode measures the out-of-core streaming path (StreamClusterer):
// it fits a KDD-shaped uncertain stream in mini-batches — one batch of
// moment rows resident at a time — and reports objects/sec, the resident
// moment-store footprint and its growth per 100k-object window, a peak-heap
// proxy, and the final quality against a batch UCPC-Lloyd fit on a 50k
// subsample; with -check it gates the ≤5% quality gap and the ≤64 MB/100k
// resident-growth contract:
//
//	uncbench -exp scale -bn 1000000 -json -check
//
// The shard mode measures the shard-parallel fit path (ShardedClusterer):
// it streams the same KDD-shaped workload through 1 shard and through
// -shards parallel shards, and reports both fits' ingest throughput and
// subsample quality; with -check it gates the ≤2% quality gap and the
// core-aware throughput floor (≥2.5× at 4 shards on a ≥4-core machine):
//
//	uncbench -exp shard -bn 1000000 -shards 4 -json -check
//
// The serve mode is the clustering-daemon load generator: it boots the
// internal/serve daemon (the engine behind cmd/ucpcd) on a loopback
// listener, ingests a KDD-shaped uncertain stream over the HTTP observe
// path, then drives -workers concurrent assign workers for -dur while a hot
// model swap lands mid-flight and a capacity-1 flood tenant provokes 429
// backpressure; a final overload phase drives a dedicated admission-enabled
// tenant open-loop at 3x its cost-model-derived capacity. With -check it
// gates zero failed assigns, the swap observed under load, 429 conservation
// against the server counter, the requests == Σ responses law, the p99/QPS
// serving floors, and the admission contracts: excess load sheds as 429
// (priced Retry-After) or 413 and never 5xx, the admitted traffic's serving
// p99 stays within the latency budget, the cost-model EWMA tracks a fresh
// measured window within 30%, and per-route attempts == admitted + shed
// (the payload CI archives as SERVE_PR10.json):
//
//	uncbench -exp serve -bn 10000 -workers 4 -dur 3s -json -out SERVE_PR10.json -check
//
// The durable mode is the daemon fault-injection gate: it persists a
// snapshot mid-stream, kills the daemon without warning (kill -9 of the
// -daemon binary, or the in-process crash hook when -daemon is empty),
// restarts it on the same state directory, and gates zero 5xx on
// post-recovery assigns plus recovered-model quality within 5% of a clean
// single-engine fit; it then routes three edge daemons' statistics pushes
// to one coordinator through an injected flaky path (500s, dropped
// connections, latency) and gates breaker engagement plus federated quality
// within 2% of the same reference:
//
//	uncbench -exp durable -daemon /tmp/ucpcd -json -out DURABLE_PR9.json -check
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ucpc"
	"ucpc/internal/experiments"
	"ucpc/internal/uncgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and status code, so tests can drive
// the binary without os/exec. Flag errors return 2 (usage already printed
// to stderr by the FlagSet); experiment failures return 1; a failed -check
// gate returns 3.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uncbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment: table2|table3|fig4|fig5|bench|all")
		scale    = fs.Float64("scale", 0, "dataset scale fraction (0 = per-experiment default)")
		runs     = fs.Int("runs", 0, "runs averaged per measurement (0 = default 3)")
		seed     = fs.Uint64("seed", ucpc.DefaultSeed, "master seed")
		timeout  = fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
		datasets = fs.String("datasets", "", "comma-separated dataset subset")
		models   = fs.String("models", "", "comma-separated pdf families (U,N,E)")
		out      = fs.String("out", "", "also write output to this file")
		csvOut   = fs.Bool("csv", false, "emit machine-readable CSV instead of rendered tables")
		jsonOut  = fs.Bool("json", false, "emit machine-readable JSON (bench mode)")
		check    = fs.Bool("check", false, "bench mode: fail if pruning regressed or a sweep pass allocates")
		baseline = fs.String("baseline", "", "bench mode: fail if pruned ns/op regressed >10% vs this bench JSON")
		benchN   = fs.Int("bn", 0, "bench/scale mode: object count (0 = per-mode default)")
		benchK   = fs.Int("bk", 0, "bench/scale mode: cluster count (0 = per-mode default)")
		batch    = fs.Int("batch", 0, "scale/shard mode: streaming mini-batch size (0 = default 8192)")
		shards   = fs.Int("shards", 0, "shard mode: parallel shard count (0 = default 4)")
		dur      = fs.Duration("dur", 0, "serve mode: assign load window (0 = default 3s)")
		daemon   = fs.String("daemon", "", "durable mode: path to a built ucpcd binary (empty = in-process crash hook)")
		workers  = fs.Int("workers", 0, "bench/scale mode: worker-pool size (0 = per-mode default)")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
		verbose  = fs.Bool("v", false, "progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "uncbench: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		fs.Usage()
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{Seed: *seed, Runs: *runs, Scale: *scale}
	var progress func(format string, args ...any)
	if *verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
		cfg.Progress = progress
	}

	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}
	var mods []uncgen.Model
	if *models != "" {
		for _, s := range strings.Split(*models, ",") {
			switch strings.TrimSpace(s) {
			case "U":
				mods = append(mods, uncgen.Uniform)
			case "N":
				mods = append(mods, uncgen.Normal)
			case "E":
				mods = append(mods, uncgen.Exponential)
			default:
				fmt.Fprintf(stderr, "uncbench: unknown model %q (valid: U, N, E)\n", s)
				return 2
			}
		}
	}

	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "uncbench: "+format+"\n", args...)
		return 1
	}

	// pprof evidence for perf PRs: the CPU profile brackets the whole run;
	// the heap profile is written after it (with a GC first, so it shows
	// retained state rather than transient garbage).
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		// Create the file up front so an unwritable path fails the run
		// (exit 1) instead of silently producing no profile; the heap
		// snapshot itself is written after the run.
		f, err := os.Create(*memProf)
		if err != nil {
			return fail("memprofile: %v", err)
		}
		defer func() {
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "uncbench: memprofile: %v\n", err)
			}
		}()
	}

	var b strings.Builder
	status := 0
	runTable2 := func() int {
		res, err := experiments.Table2(ctx, cfg, names, mods)
		if err != nil {
			return fail("table2: %v", err)
		}
		if *csvOut {
			b.WriteString(experiments.Table2CSV(res))
			return 0
		}
		b.WriteString(experiments.RenderTable2(res))
		b.WriteString("\n")
		return 0
	}
	runTable3 := func() int {
		res, err := experiments.Table3(ctx, cfg, names, nil)
		if err != nil {
			return fail("table3: %v", err)
		}
		if *csvOut {
			b.WriteString(experiments.Table3CSV(res))
			return 0
		}
		b.WriteString(experiments.RenderTable3(res))
		b.WriteString("\n")
		return 0
	}
	runFig4 := func() int {
		res, err := experiments.Fig4(ctx, cfg, names)
		if err != nil {
			return fail("fig4: %v", err)
		}
		if *csvOut {
			b.WriteString(experiments.Fig4CSV(res))
			return 0
		}
		b.WriteString(experiments.RenderFig4(res))
		b.WriteString("\nfastest-to-slowest per dataset:\n")
		for _, row := range res.Rows {
			b.WriteString("  " + experiments.SummarizeOrdering(row) + "\n")
		}
		b.WriteString("\n")
		return 0
	}
	runFig5 := func() int {
		res, err := experiments.Fig5(ctx, cfg, nil)
		if err != nil {
			return fail("fig5: %v", err)
		}
		if *csvOut {
			b.WriteString(experiments.Fig5CSV(res))
			return 0
		}
		b.WriteString(experiments.RenderFig5(res))
		b.WriteString("\n")
		return 0
	}
	runBench := func() int {
		res, err := experiments.PruneBench(ctx, experiments.PruneBenchConfig{
			N: *benchN, K: *benchK, Runs: *runs, Workers: *workers,
			Seed: *seed, Progress: progress,
		})
		if err != nil {
			return fail("bench: %v", err)
		}
		if *jsonOut {
			enc, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return fail("bench: %v", err)
			}
			b.Write(enc)
			b.WriteString("\n")
		} else {
			b.WriteString(experiments.RenderPruneBench(res))
		}
		if *check {
			if err := res.Check(); err != nil {
				fmt.Fprintf(stderr, "uncbench: %v\n", err)
				return 3
			}
		}
		if *baseline != "" {
			raw, err := os.ReadFile(*baseline)
			if err != nil {
				return fail("baseline: %v", err)
			}
			var base experiments.PruneBenchResult
			if err := json.Unmarshal(raw, &base); err != nil {
				return fail("baseline %s: %v", *baseline, err)
			}
			notice, err := res.CompareBaseline(&base, 0.10)
			if err != nil {
				fmt.Fprintf(stderr, "uncbench: %v (baseline %s)\n", err, *baseline)
				return 3
			}
			if notice != "" {
				fmt.Fprintf(stderr, "uncbench: %s (baseline %s)\n", notice, *baseline)
			}
		}
		return 0
	}

	runKernel := func() int {
		res := experiments.KernelBench(experiments.KernelBenchConfig{Seed: *seed})
		if *jsonOut {
			enc, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return fail("kernel: %v", err)
			}
			b.Write(enc)
			b.WriteString("\n")
		} else {
			b.WriteString(experiments.RenderKernelBench(res))
		}
		return 0
	}

	runScale := func() int {
		res, err := experiments.Scale(ctx, experiments.ScaleConfig{
			N: *benchN, K: *benchK, BatchSize: *batch,
			Workers: *workers, Seed: *seed, Progress: progress,
		})
		if err != nil {
			return fail("scale: %v", err)
		}
		if *jsonOut {
			enc, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return fail("scale: %v", err)
			}
			b.Write(enc)
			b.WriteString("\n")
		} else {
			b.WriteString(experiments.RenderScale(res))
		}
		if *check {
			if err := res.Check(); err != nil {
				fmt.Fprintf(stderr, "uncbench: %v\n", err)
				return 3
			}
		}
		return 0
	}

	runShard := func() int {
		res, err := experiments.Shard(ctx, experiments.ShardConfig{
			N: *benchN, K: *benchK, Shards: *shards, BatchSize: *batch,
			Seed: *seed, Progress: progress,
		})
		if err != nil {
			return fail("shard: %v", err)
		}
		if *jsonOut {
			enc, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return fail("shard: %v", err)
			}
			b.Write(enc)
			b.WriteString("\n")
		} else {
			b.WriteString(experiments.RenderShard(res))
		}
		if *check {
			if err := res.Check(); err != nil {
				fmt.Fprintf(stderr, "uncbench: %v\n", err)
				return 3
			}
		}
		return 0
	}

	runServe := func() int {
		res, err := experiments.Serve(ctx, experiments.ServeConfig{
			N: *benchN, K: *benchK, Workers: *workers, BatchSize: *batch,
			Duration: *dur, Seed: *seed, Progress: progress,
		})
		if err != nil {
			return fail("serve: %v", err)
		}
		if *jsonOut {
			enc, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return fail("serve: %v", err)
			}
			b.Write(enc)
			b.WriteString("\n")
		} else {
			b.WriteString(experiments.RenderServe(res))
		}
		if *check {
			if err := res.Check(); err != nil {
				fmt.Fprintf(stderr, "uncbench: %v\n", err)
				return 3
			}
		}
		return 0
	}

	runDurable := func() int {
		res, err := experiments.Durable(ctx, experiments.DurableConfig{
			N: *benchN, K: *benchK, BatchSize: *batch,
			Seed: *seed, DaemonBin: *daemon, Progress: progress,
		})
		if err != nil {
			return fail("durable: %v", err)
		}
		if *jsonOut {
			enc, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return fail("durable: %v", err)
			}
			b.Write(enc)
			b.WriteString("\n")
		} else {
			b.WriteString(experiments.RenderDurable(res))
		}
		if *check {
			if err := res.Check(); err != nil {
				fmt.Fprintf(stderr, "uncbench: %v\n", err)
				return 3
			}
		}
		return 0
	}

	switch *exp {
	case "table2":
		status = runTable2()
	case "table3":
		status = runTable3()
	case "fig4":
		status = runFig4()
	case "fig5":
		status = runFig5()
	case "bench":
		status = runBench()
	case "kernel":
		status = runKernel()
	case "scale":
		status = runScale()
	case "shard":
		status = runShard()
	case "serve":
		status = runServe()
	case "durable":
		status = runDurable()
	case "all":
		for _, f := range []func() int{runTable2, runTable3, runFig4, runFig5} {
			if status = f(); status != 0 {
				break
			}
		}
	default:
		fmt.Fprintf(stderr, "uncbench: unknown experiment %q (valid: table2, table3, fig4, fig5, bench, kernel, scale, shard, serve, durable, all)\n", *exp)
		return 2
	}
	if status != 0 && status != 3 {
		return status
	}

	fmt.Fprint(stdout, b.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			return fail("write %s: %v", *out, err)
		}
	}
	return status
}
