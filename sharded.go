package ucpc

import (
	"context"
	"fmt"
	"runtime"

	"ucpc/internal/clustering"
	"ucpc/internal/shard"
)

// Partitioner routes one observed object to a shard in [0, shards): seq is
// the object's global arrival sequence number (0-based), so the default
// round-robin rule is seq % shards. A partitioner must be deterministic in
// (o, seq) for reproducible fits; use a key-based rule (e.g. a hash of the
// object's id) when related objects should land on the same shard.
type Partitioner = shard.PartitionFunc

// ShardedClusterer is the shard-parallel counterpart of StreamClusterer: P
// independent mini-batch stream engines each consume a partition of the
// input, and Snapshot merges their weighted sufficient statistics —
// W_c, S_c, Ψ_c, Φ_c are additive, so per-shard sums combine by a
// deterministic tree reduction with greedy centroid matching reconciling
// each shard's cluster label order — into one global Model through the
// same weighted Theorem-2 read-out a single stream fit uses.
//
// Use it when one engine's ingest thread is the bottleneck: shards ingest
// concurrently, so throughput scales with cores (and, via
// ShardedFit.AddRemoteStats, across processes). For a single-threaded
// ingest path or strict arrival-order semantics, use StreamClusterer.
type ShardedClusterer struct {
	// Config is the per-shard streaming configuration. Shard i derives its
	// RNG stream from Config.Seed (shard 0 uses it verbatim, so a 1-shard
	// fit is bit-identical to a StreamClusterer fit).
	Config StreamConfig
	// Shards is the number of parallel engines P (0 = GOMAXPROCS; negative
	// is rejected by Begin). For P > 1 all shards are warm-started from one
	// shared seed-window fit and re-synchronized to the merged centroids
	// after every Observe; the fitted centroids still depend (mildly) on P
	// through batch composition, while remaining deterministic for fixed
	// (Config, Shards, Partitioner).
	Shards int
	// Partitioner routes objects to shards (nil = round-robin on the
	// arrival sequence).
	Partitioner Partitioner
}

// Begin opens a sharded streaming fit for k clusters, mirroring
// StreamClusterer.Begin: k < 1 returns a wrapped ErrBadK, an invalid
// Config a wrapped ErrBadConfig. ctx is reserved for symmetry with Fit
// (Begin itself does not block).
func (s *ShardedClusterer) Begin(ctx context.Context, k int) (*ShardedFit, error) {
	_ = clustering.Ctx(ctx)
	p := s.Shards
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	co, err := shard.New(k, p, s.Config, s.Partitioner)
	if err != nil {
		return nil, fmt.Errorf("ucpc: %w", err)
	}
	return &ShardedFit{co: co, cfg: s.Config}, nil
}

// ShardedFit is one in-progress shard-parallel fit. Observe calls serialize
// behind the coordinator lock (the per-shard ingest inside an Observe still
// runs concurrently); Snapshot can be taken from other goroutines at any
// time and never stops the stream.
type ShardedFit struct {
	co  *shard.Coordinator
	cfg StreamConfig
}

// Observe partitions objs across the shards and ingests every shard's
// portion concurrently, each through its own mini-batch engine (scored
// against that shard's current centroids, folded into its decayed
// statistics). Moment rows are copied; the caller may reuse or drop the
// objects afterwards.
//
// ctx is plumbed to each shard and checked between mini-batches; the first
// shard failure cancels the remaining shards' ingest for this call and is
// returned. Objects must match the fit's dimensionality (wrapped
// ErrDimMismatch otherwise); the per-shard MaxBatches budget applies shard
// by shard (wrapped ErrStreamBudget).
func (f *ShardedFit) Observe(ctx context.Context, objs Dataset) error {
	if err := f.co.Observe(ctx, objs); err != nil {
		return fmt.Errorf("ucpc: %w", err)
	}
	return nil
}

// AddRemoteStats folds an out-of-process shard's statistics into every
// subsequent Snapshot: payload is the versioned WStats wire format a remote
// shard produced (see the package documentation's wire-format section).
// Malformed payloads are rejected with wrapped ErrBadModelFormat /
// ErrModelVersion; a payload whose k differs from the fit's is rejected
// too. Remote statistics are merged as-shipped — they do not decay with
// later batches, so ship fresh payloads close to when you Snapshot.
func (f *ShardedFit) AddRemoteStats(payload []byte) error {
	if err := f.co.AddRemote(payload); err != nil {
		return fmt.Errorf("ucpc: %w", err)
	}
	return nil
}

// SetRemoteStats is the idempotent sibling of AddRemoteStats for periodic
// federation pushes: the payload is folded in under the stable source key,
// replacing whatever that source reported before, so an edge re-exporting
// its cumulative statistics every few seconds counts once — not once per
// push. Validation matches AddRemoteStats; an empty source key is rejected
// with wrapped ErrBadConfig.
func (f *ShardedFit) SetRemoteStats(source string, payload []byte) error {
	if err := f.co.SetRemote(source, payload); err != nil {
		return fmt.Errorf("ucpc: %w", err)
	}
	return nil
}

// Snapshot merges the ready shards' statistics — a deterministic pairwise
// tree reduction in shard order, with greedy centroid matching (globally
// closest pair first, ties to the lowest index) reconciling cluster
// correspondence before each pairwise add — and freezes the merged
// weighted U-centroids as a regular Model, served through the same pruned
// Model.Assign path as any other fit.
//
// Shards that have not yet observed k objects are merged-around: Snapshot
// uses what is ready, and a later Snapshot re-merges from scratch to pick
// up stragglers (per-shard statistics are tiny, so re-merging is
// microseconds). If no shard is ready at all it fails with a wrapped
// ErrStreamCold.
func (f *ShardedFit) Snapshot() (*Model, error) {
	fz, err := f.co.Merge()
	if err != nil {
		return nil, fmt.Errorf("ucpc: %w", err)
	}
	return modelFromFrozen(fz, f.cfg), nil
}

// Shards returns the number of local shard engines.
func (f *ShardedFit) Shards() int { return f.co.Shards() }

// Seen returns the total number of objects folded into any shard so far.
func (f *ShardedFit) Seen() int64 { return f.co.Seen() }

// Batches returns the total number of mini-batches processed across shards.
func (f *ShardedFit) Batches() int { return f.co.Batches() }

// ResidentBytes returns the summed high-water footprint of the shards'
// resident moment windows — the quantity that stays O(P·BatchSize·dims) as
// the stream grows.
func (f *ShardedFit) ResidentBytes() int64 { return f.co.ResidentBytes() }
