package ucpc_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"ucpc"
	"ucpc/internal/eval"
)

// Metamorphic invariance tests: known input transformations with known
// output relations, checked across 4 algorithms × 2 seeds. Unlike golden
// tests, these hold for *any* correct implementation, so they catch silent
// structural bugs (index mix-ups, order dependence, stale statistics) that
// value-level assertions cannot.
//
// The randomized initializations are order-dependent by construction (a
// permuted dataset draws a different random partition), so the permutation
// and duplication properties are checked through the warm-start path: both
// runs start from the same fitted model's frozen centroids, whose
// per-object assignment is order-covariant.

var (
	metamorphicAlgorithms = []string{"UCPC", "UCPC-Lloyd", "UKM", "MMV"}
	metamorphicSeeds      = []uint64{3, 17}
)

// metamorphicBlobs builds 4 well-separated uncertain groups, n objects.
func metamorphicBlobs(n int, seed uint64, shift []float64) ucpc.Dataset {
	r := ucpc.NewRNG(seed)
	ds := make(ucpc.Dataset, 0, n)
	for i := 0; i < n; i++ {
		g := i % 4
		c := []float64{14 * float64(g%2), 14 * float64(g/2), 3 * float64(g)}
		for j := range c {
			c[j] += r.Normal(0, 0.7)
			if shift != nil {
				c[j] += shift[j]
			}
		}
		o := ucpc.NewNormalObject(i, c, []float64{0.35, 0.35, 0.35}, 0.95)
		o.Label = g
		ds = append(ds, o)
	}
	return ds
}

// fitWarm fits alg on ds, then re-fits from the model's frozen centroids —
// the deterministic, order-covariant trajectory the invariance checks need.
func fitWarm(t *testing.T, alg string, seed uint64, ds ucpc.Dataset) (*ucpc.Model, *ucpc.Model) {
	t.Helper()
	ctx := context.Background()
	cl := &ucpc.Clusterer{Algorithm: alg, Config: ucpc.Config{Seed: seed}}
	base, err := cl.Fit(ctx, ds, 4)
	if err != nil {
		t.Fatalf("%s seed %d: fit: %v", alg, seed, err)
	}
	refit, err := cl.FitFrom(ctx, base, ds)
	if err != nil {
		t.Fatalf("%s seed %d: warm refit: %v", alg, seed, err)
	}
	return base, refit
}

func forEachCase(t *testing.T, body func(t *testing.T, alg string, seed uint64)) {
	for _, alg := range metamorphicAlgorithms {
		for _, seed := range metamorphicSeeds {
			t.Run(fmt.Sprintf("%s/seed%d", alg, seed), func(t *testing.T) {
				body(t, alg, seed)
			})
		}
	}
}

// TestMetamorphicPermutationInvariance: reordering the objects must not
// change the partition (up to cluster relabeling). Both runs warm-start
// from the same fitted model, so the only difference is object order; the
// adjusted Rand index between the two partitions (mapped back to the
// original object identity) must be exactly 1.
func TestMetamorphicPermutationInvariance(t *testing.T) {
	ctx := context.Background()
	forEachCase(t, func(t *testing.T, alg string, seed uint64) {
		ds := metamorphicBlobs(240, seed, nil)
		base, refit := fitWarm(t, alg, seed, ds)

		perm := ucpc.NewRNG(seed + 1000).Perm(len(ds))
		permuted := make(ucpc.Dataset, len(ds))
		for i, p := range perm {
			permuted[i] = ds[p]
		}
		cl := &ucpc.Clusterer{Algorithm: alg, Config: ucpc.Config{Seed: seed}}
		refitP, err := cl.FitFrom(ctx, base, permuted)
		if err != nil {
			t.Fatal(err)
		}
		// Map the permuted run's assignment back to original object order.
		labels := make([]int, len(ds))
		for i, p := range perm {
			labels[p] = refitP.Partition().Assign[i]
		}
		if ari := eval.AdjustedRandIndex(refit.Partition(), labels); math.Abs(ari-1) > 1e-12 {
			t.Fatalf("ARI %v after permutation, want exactly 1", ari)
		}
	})
}

// TestMetamorphicTranslationInvariance: translating every object by a
// constant vector leaves the UCPC/UKM/MMV objectives unchanged (they are
// functions of centered moments only) and the partition identical up to
// relabeling.
func TestMetamorphicTranslationInvariance(t *testing.T) {
	shift := []float64{250, -120, 75}
	forEachCase(t, func(t *testing.T, alg string, seed uint64) {
		ds := metamorphicBlobs(240, seed, nil)
		dsT := metamorphicBlobs(240, seed, shift) // same draws, shifted centers
		_, refit := fitWarm(t, alg, seed, ds)
		_, refitT := fitWarm(t, alg, seed, dsT)

		o1, o2 := refit.Report().Objective, refitT.Report().Objective
		if rel := math.Abs(o1-o2) / (math.Abs(o1) + 1); rel > 1e-6 {
			t.Fatalf("objective %v became %v under translation (rel %g)", o1, o2, rel)
		}
		if ari := eval.AdjustedRandIndex(refit.Partition(), refitT.Partition().Assign); math.Abs(ari-1) > 1e-12 {
			t.Fatalf("ARI %v after translation, want exactly 1", ari)
		}
	})
}

// TestMetamorphicDuplicateConsistency: duplicated objects are
// indistinguishable, so (a) a fitted model must assign both copies of every
// object to the same cluster, and (b) re-fitting on the duplicated dataset
// from that model must keep every duplicate pair co-assigned.
func TestMetamorphicDuplicateConsistency(t *testing.T) {
	ctx := context.Background()
	forEachCase(t, func(t *testing.T, alg string, seed uint64) {
		ds := metamorphicBlobs(240, seed, nil)
		base, _ := fitWarm(t, alg, seed, ds)

		dup := make(ucpc.Dataset, 0, 2*len(ds))
		dup = append(dup, ds...)
		dup = append(dup, ds...)

		assign, err := base.Assign(ctx, dup)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ds {
			if assign[i] != assign[i+len(ds)] {
				t.Fatalf("serving path split duplicate %d: %d vs %d", i, assign[i], assign[i+len(ds)])
			}
		}

		cl := &ucpc.Clusterer{Algorithm: alg, Config: ucpc.Config{Seed: seed}}
		refitD, err := cl.FitFrom(ctx, base, dup)
		if err != nil {
			t.Fatal(err)
		}
		a := refitD.Partition().Assign
		for i := range ds {
			if a[i] != a[i+len(ds)] {
				t.Fatalf("refit split duplicate %d: %d vs %d", i, a[i], a[i+len(ds)])
			}
		}
	})
}
