// Package vec provides small dense-vector and axis-aligned box utilities
// used throughout the uncertain-clustering code base.
//
// Vectors are plain []float64 slices; all functions treat their arguments as
// read-only unless documented otherwise. Dimensions of the operands must
// match; mismatches are programming errors and panic.
package vec

import (
	"fmt"
	"math"
)

// Vector is an m-dimensional point in Euclidean space.
type Vector = []float64

// New returns a zero vector of dimension m.
func New(m int) Vector { return make(Vector, m) }

// Clone returns a copy of v.
func Clone(v Vector) Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns x + y as a new vector.
func Add(x, y Vector) Vector {
	checkDims(x, y)
	out := make(Vector, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// AddInPlace sets x = x + y and returns x.
func AddInPlace(x, y Vector) Vector {
	checkDims(x, y)
	for i := range x {
		x[i] += y[i]
	}
	return x
}

// Sub returns x - y as a new vector.
func Sub(x, y Vector) Vector {
	checkDims(x, y)
	out := make(Vector, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// SubInPlace sets x = x - y and returns x.
func SubInPlace(x, y Vector) Vector {
	checkDims(x, y)
	for i := range x {
		x[i] -= y[i]
	}
	return x
}

// Scale returns c*x as a new vector.
func Scale(x Vector, c float64) Vector {
	out := make(Vector, len(x))
	for i := range x {
		out[i] = c * x[i]
	}
	return out
}

// ScaleInPlace sets x = c*x and returns x.
func ScaleInPlace(x Vector, c float64) Vector {
	for i := range x {
		x[i] *= c
	}
	return x
}

// Dot returns the inner product of x and y.
func Dot(x, y Vector) float64 {
	checkDims(x, y)
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance between x and y.
func SqDist(x, y Vector) float64 {
	checkDims(x, y)
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between x and y.
func Dist(x, y Vector) float64 { return math.Sqrt(SqDist(x, y)) }

// SqNorm returns the squared Euclidean norm of x.
func SqNorm(x Vector) float64 {
	var s float64
	for i := range x {
		s += x[i] * x[i]
	}
	return s
}

// Norm returns the Euclidean norm of x.
func Norm(x Vector) float64 { return math.Sqrt(SqNorm(x)) }

// Sum returns the sum of the components of x (the L1 norm for non-negative
// vectors; used for "global" variance, paper eq. 6).
func Sum(x Vector) float64 {
	var s float64
	for i := range x {
		s += x[i]
	}
	return s
}

// Mean returns the component-wise mean of the given vectors, or nil for an
// empty set (the defined zero value — there is no dimension to average
// over, and callers that forward possibly-empty slices should not have to
// guard against a panic).
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		return nil
	}
	out := make(Vector, len(vs[0]))
	for _, v := range vs {
		AddInPlace(out, v)
	}
	return ScaleInPlace(out, 1/float64(len(vs)))
}

// Equal reports whether x and y are identical component-wise.
func Equal(x, y Vector) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether |x[i]-y[i]| <= tol for all i.
func ApproxEqual(x, y Vector, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Abs(x[i]-y[i]) > tol {
			return false
		}
	}
	return true
}

// checkDims panics with a defined, diagnosable message on operand dimension
// mismatch — a programming error by the vec contract. Every binary vec
// operation funnels through it, so a mismatch can never surface as a bare
// index-out-of-range panic from inside a kernel loop.
func checkDims(x, y Vector) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: dimension mismatch: %d-vector vs %d-vector", len(x), len(y)))
	}
}
