package vec

import (
	"fmt"
	"math"
)

// Box is an axis-aligned m-dimensional rectangle [Lo[0],Hi[0]] × … ×
// [Lo[m-1],Hi[m-1]]. It is the domain-region representation used by the
// multivariate uncertainty model (paper Def. 1 with interval regions, as in
// Theorem 1) and the minimum bounding rectangle (MBR) used by the
// MinMax-BB and VDBiP pruning strategies.
type Box struct {
	Lo, Hi Vector
}

// NewBox returns a box with the given bounds. It panics if the dimensions
// disagree or any Lo component exceeds the corresponding Hi component.
func NewBox(lo, hi Vector) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("vec: box dimension mismatch %d vs %d", len(lo), len(hi)))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("vec: inverted box bounds on dim %d: [%g,%g]", i, lo[i], hi[i]))
		}
	}
	return Box{Lo: Clone(lo), Hi: Clone(hi)}
}

// Dims returns the dimensionality of the box.
func (b Box) Dims() int { return len(b.Lo) }

// Center returns the box midpoint.
func (b Box) Center() Vector {
	c := make(Vector, b.Dims())
	for i := range c {
		c[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return c
}

// Contains reports whether x lies inside the closed box.
func (b Box) Contains(x Vector) bool {
	if len(x) != b.Dims() {
		return false
	}
	for i := range x {
		if x[i] < b.Lo[i] || x[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest box containing both b and o.
func (b Box) Union(o Box) Box {
	if b.Dims() != o.Dims() {
		panic("vec: box union dimension mismatch")
	}
	lo := make(Vector, b.Dims())
	hi := make(Vector, b.Dims())
	for i := range lo {
		lo[i] = math.Min(b.Lo[i], o.Lo[i])
		hi[i] = math.Max(b.Hi[i], o.Hi[i])
	}
	return Box{Lo: lo, Hi: hi}
}

// MinSqDist returns the minimum squared Euclidean distance from point y to
// any point of the box (0 if y is inside). Used by MinMax-BB pruning.
func (b Box) MinSqDist(y Vector) float64 {
	var s float64
	for i := range y {
		switch {
		case y[i] < b.Lo[i]:
			d := b.Lo[i] - y[i]
			s += d * d
		case y[i] > b.Hi[i]:
			d := y[i] - b.Hi[i]
			s += d * d
		}
	}
	return s
}

// MaxSqDist returns the maximum squared Euclidean distance from point y to
// any point of the box (always attained at a corner). Used by MinMax-BB.
func (b Box) MaxSqDist(y Vector) float64 {
	var s float64
	for i := range y {
		dLo := math.Abs(y[i] - b.Lo[i])
		dHi := math.Abs(y[i] - b.Hi[i])
		d := math.Max(dLo, dHi)
		s += d * d
	}
	return s
}

// MaxLinear returns max_{x in box} w·x, the maximum of a linear functional
// over the box. The maximum of a separable linear function over a box is
// attained by picking, per dimension, the bound matching the sign of the
// coefficient. Used by the VDBiP bisector-side test.
func (b Box) MaxLinear(w Vector) float64 {
	var s float64
	for i := range w {
		if w[i] >= 0 {
			s += w[i] * b.Hi[i]
		} else {
			s += w[i] * b.Lo[i]
		}
	}
	return s
}

// MinLinear returns min_{x in box} w·x.
func (b Box) MinLinear(w Vector) float64 {
	var s float64
	for i := range w {
		if w[i] >= 0 {
			s += w[i] * b.Lo[i]
		} else {
			s += w[i] * b.Hi[i]
		}
	}
	return s
}

// Scale returns the box scaled by c about the origin (c >= 0).
func (b Box) Scale(c float64) Box {
	if c < 0 {
		panic("vec: negative box scale")
	}
	return Box{Lo: Scale(b.Lo, c), Hi: Scale(b.Hi, c)}
}

// Translate returns the box shifted by t.
func (b Box) Translate(t Vector) Box {
	return Box{Lo: Add(b.Lo, t), Hi: Add(b.Hi, t)}
}

// Volume returns the box volume (product of side lengths).
func (b Box) Volume() float64 {
	v := 1.0
	for i := range b.Lo {
		v *= b.Hi[i] - b.Lo[i]
	}
	return v
}

// SideLengths returns the per-dimension extents Hi-Lo.
func (b Box) SideLengths() Vector {
	s := make(Vector, b.Dims())
	for i := range s {
		s[i] = b.Hi[i] - b.Lo[i]
	}
	return s
}
