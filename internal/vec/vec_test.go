package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddSub(t *testing.T) {
	x := Vector{1, 2, 3}
	y := Vector{4, -1, 0.5}
	sum := Add(x, y)
	if !Equal(sum, Vector{5, 1, 3.5}) {
		t.Errorf("Add = %v", sum)
	}
	diff := Sub(sum, y)
	if !ApproxEqual(diff, x, 1e-12) {
		t.Errorf("Sub(Add(x,y),y) = %v, want %v", diff, x)
	}
}

func TestInPlaceOpsAlias(t *testing.T) {
	x := Vector{1, 2}
	got := AddInPlace(x, Vector{3, 4})
	if &got[0] != &x[0] {
		t.Error("AddInPlace did not return the receiver slice")
	}
	if !Equal(x, Vector{4, 6}) {
		t.Errorf("AddInPlace = %v", x)
	}
	SubInPlace(x, Vector{4, 6})
	if !Equal(x, Vector{0, 0}) {
		t.Errorf("SubInPlace = %v", x)
	}
}

func TestDotNormDist(t *testing.T) {
	x := Vector{3, 4}
	if Dot(x, x) != 25 {
		t.Errorf("Dot = %v", Dot(x, x))
	}
	if Norm(x) != 5 {
		t.Errorf("Norm = %v", Norm(x))
	}
	if SqDist(x, Vector{0, 0}) != 25 {
		t.Errorf("SqDist = %v", SqDist(x, Vector{0, 0}))
	}
	if Dist(Vector{0, 0}, Vector{0, 1}) != 1 {
		t.Errorf("Dist = %v", Dist(Vector{0, 0}, Vector{0, 1}))
	}
}

func TestMean(t *testing.T) {
	m := Mean([]Vector{{0, 0}, {2, 4}})
	if !Equal(m, Vector{1, 2}) {
		t.Errorf("Mean = %v", m)
	}
}

// The empty-set contract (Mean(nil) == nil) is covered by
// TestMeanEmptyReturnsNil in kernels_test.go.

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	Add(Vector{1}, Vector{1, 2})
}

func TestScaleAndSum(t *testing.T) {
	x := Scale(Vector{1, -2, 3}, 2)
	if !Equal(x, Vector{2, -4, 6}) {
		t.Errorf("Scale = %v", x)
	}
	if Sum(x) != 4 {
		t.Errorf("Sum = %v", Sum(x))
	}
}

// Property: squared distance is symmetric and non-negative, and
// ||x-y||² = ||x||² - 2x·y + ||y||².
func TestSqDistExpansionProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		// Fold unbounded quick inputs into a numerically safe range.
		a, b, c = clamp(a), clamp(b), clamp(c)
		x := Vector{a, b}
		y := Vector{c, a + b}
		lhs := SqDist(x, y)
		rhs := SqNorm(x) - 2*Dot(x, y) + SqNorm(y)
		return lhs >= 0 &&
			math.Abs(lhs-SqDist(y, x)) < 1e-9 &&
			math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// clamp maps an arbitrary float64 (including ±Inf/NaN from testing/quick)
// into [-1000, 1000] so products cannot overflow.
func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}

func TestCloneIndependent(t *testing.T) {
	x := Vector{1, 2}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Error("Clone shares backing array")
	}
}
