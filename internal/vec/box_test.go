package vec

import (
	"math"
	"testing"
	"testing/quick"

	"ucpc/internal/rng"
)

func TestBoxBasics(t *testing.T) {
	b := NewBox(Vector{0, 0}, Vector{2, 4})
	if !Equal(b.Center(), Vector{1, 2}) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.Volume() != 8 {
		t.Errorf("Volume = %v", b.Volume())
	}
	if !Equal(b.SideLengths(), Vector{2, 4}) {
		t.Errorf("SideLengths = %v", b.SideLengths())
	}
	if !b.Contains(Vector{1, 1}) || b.Contains(Vector{3, 1}) {
		t.Error("Contains is wrong")
	}
	if b.Contains(Vector{1}) {
		t.Error("Contains accepted wrong dimensionality")
	}
}

func TestBoxInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted box did not panic")
		}
	}()
	NewBox(Vector{1}, Vector{0})
}

func TestBoxUnion(t *testing.T) {
	a := NewBox(Vector{0, 0}, Vector{1, 1})
	b := NewBox(Vector{-1, 0.5}, Vector{0.5, 3})
	u := a.Union(b)
	if !Equal(u.Lo, Vector{-1, 0}) || !Equal(u.Hi, Vector{1, 3}) {
		t.Errorf("Union = %+v", u)
	}
}

func TestMinMaxSqDistInsidePoint(t *testing.T) {
	b := NewBox(Vector{0, 0}, Vector{2, 2})
	if d := b.MinSqDist(Vector{1, 1}); d != 0 {
		t.Errorf("MinSqDist inside = %v", d)
	}
	// farthest corner from (1,1) is any corner at squared distance 2
	if d := b.MaxSqDist(Vector{1, 1}); d != 2 {
		t.Errorf("MaxSqDist = %v", d)
	}
}

func TestMinSqDistOutside(t *testing.T) {
	b := NewBox(Vector{0, 0}, Vector{1, 1})
	if d := b.MinSqDist(Vector{3, 0.5}); d != 4 {
		t.Errorf("MinSqDist = %v, want 4", d)
	}
	if d := b.MaxSqDist(Vector{3, 0.5}); math.Abs(d-9.25) > 1e-12 {
		t.Errorf("MaxSqDist = %v, want 9.25", d)
	}
}

// Property: for random boxes and points, MinSqDist <= dist to any sampled
// point of the box <= MaxSqDist.
func TestMinMaxSqDistBracketProperty(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		lo := Vector{r.Uniform(-5, 5), r.Uniform(-5, 5), r.Uniform(-5, 5)}
		hi := Vector{lo[0] + r.Float64()*4, lo[1] + r.Float64()*4, lo[2] + r.Float64()*4}
		b := NewBox(lo, hi)
		y := Vector{r.Uniform(-10, 10), r.Uniform(-10, 10), r.Uniform(-10, 10)}
		minD, maxD := b.MinSqDist(y), b.MaxSqDist(y)
		if minD > maxD {
			t.Fatalf("min %v > max %v", minD, maxD)
		}
		for s := 0; s < 20; s++ {
			x := Vector{r.Uniform(lo[0], hi[0]), r.Uniform(lo[1], hi[1]), r.Uniform(lo[2], hi[2])}
			d := SqDist(x, y)
			if d < minD-1e-9 || d > maxD+1e-9 {
				t.Fatalf("sampled distance %v outside [%v,%v]", d, minD, maxD)
			}
		}
	}
}

// Property: MaxLinear/MinLinear bracket w·x for any x in the box.
func TestLinearBoundsProperty(t *testing.T) {
	f := func(w1, w2, c1, c2, e1, e2 float64) bool {
		w1, w2, c1, c2, e1, e2 = clamp(w1), clamp(w2), clamp(c1), clamp(c2), clamp(e1), clamp(e2)
		lo := Vector{math.Min(c1, c1+e1), math.Min(c2, c2+e2)}
		hi := Vector{math.Max(c1, c1+e1), math.Max(c2, c2+e2)}
		b := NewBox(lo, hi)
		w := Vector{w1, w2}
		mid := b.Center()
		v := Dot(w, mid)
		return b.MinLinear(w) <= v+1e-9 && v <= b.MaxLinear(w)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBoxScaleTranslate(t *testing.T) {
	b := NewBox(Vector{1, 2}, Vector{3, 4})
	s := b.Scale(2)
	if !Equal(s.Lo, Vector{2, 4}) || !Equal(s.Hi, Vector{6, 8}) {
		t.Errorf("Scale = %+v", s)
	}
	tr := b.Translate(Vector{-1, -2})
	if !Equal(tr.Lo, Vector{0, 0}) || !Equal(tr.Hi, Vector{2, 2}) {
		t.Errorf("Translate = %+v", tr)
	}
}
