package vec

// Blocked flat kernels for the row-major []float64 slabs the clustering hot
// loops stream through (the moment store's µ rows, the assignment engine's
// centroid blocks). Each kernel processes four elements per step with four
// independent accumulators — enough instruction-level parallelism to keep a
// scalar FPU pipeline full — and re-slices its operands once up front
// (`y = y[:len(x)]`) so the compiler proves every index in range and emits
// no bounds checks inside the loop (the gonum idiom). None of them allocate.
//
// The unrolled kernels sum in a different association order than a plain
// sequential loop, so their results may differ from Dot/SqDist in the last
// few ulps. Call sites that require bit-reproducibility across code paths
// must therefore use the same kernel on every path — which is how the
// pruning engines use them: both the pruned and the exhaustive scans score
// through the identical kernel, so partitions stay byte-identical with the
// bounds on or off.

// KernelVariant names the kernel implementation compiled into this build;
// the bench JSON header records it so cross-run comparisons know which
// inner loops produced the numbers.
const KernelVariant = "blocked-unroll4"

// DotBlock returns the inner product of x and y using four independent
// accumulators. Panics if len(y) < len(x); extra trailing elements of y are
// ignored (callers pass equal-length rows).
func DotBlock(x, y []float64) float64 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// SqDistBlock returns the squared Euclidean distance between x and y using
// four independent accumulators. Panics if len(y) < len(x).
func SqDistBlock(x, y []float64) float64 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		d0 := x[i] - y[i]
		d1 := x[i+1] - y[i+1]
		d2 := x[i+2] - y[i+2]
		d3 := x[i+3] - y[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(x); i++ {
		d := x[i] - y[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// SqNormBlock returns ‖x‖² with the same accumulation order as DotBlock(x, x).
func SqNormBlock(x []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * x[i]
		s1 += x[i+1] * x[i+1]
		s2 += x[i+2] * x[i+2]
		s3 += x[i+3] * x[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * x[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// DotRows fills dst[r] with DotBlock(x, rows[r*m:(r+1)*m]) for every
// complete m-sized row of rows and returns dst. len(dst) rows are computed;
// rows must hold at least len(dst)*m elements and m must equal len(x).
// A zero-length dst (or m == 0) is a no-op.
func DotRows(dst, x, rows []float64, m int) []float64 {
	if len(dst) == 0 || m == 0 {
		return dst
	}
	_ = rows[len(dst)*m-1]
	for r := range dst {
		dst[r] = DotBlock(x, rows[r*m:(r+1)*m])
	}
	return dst
}

// SqDistRows fills dst[r] with SqDistBlock(x, rows[r*m:(r+1)*m]) for every
// complete m-sized row of rows and returns dst; the same shape contract as
// DotRows.
func SqDistRows(dst, x, rows []float64, m int) []float64 {
	if len(dst) == 0 || m == 0 {
		return dst
	}
	_ = rows[len(dst)*m-1]
	for r := range dst {
		dst[r] = SqDistBlock(x, rows[r*m:(r+1)*m])
	}
	return dst
}

// ArgminRow returns the index and value of the smallest element of xs,
// breaking ties toward the lowest index (the engines' deterministic rule).
// An empty xs returns (-1, +Inf-free zero): index -1 and value 0.
func ArgminRow(xs []float64) (int, float64) {
	if len(xs) == 0 {
		return -1, 0
	}
	best, bestV := 0, xs[0]
	for i := 1; i < len(xs); i++ {
		if xs[i] < bestV {
			best, bestV = i, xs[i]
		}
	}
	return best, bestV
}
