package vec

import (
	"math"
	"testing"
)

// kernelLengths exercises every unroll shape: empty, sub-block lengths,
// exact multiples of the 4-wide step, and every tail remainder.
var kernelLengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 11, 12, 13, 15, 16, 17, 42, 64, 65}

func kernelVec(n int, seed float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		x := seed + float64(i)
		v[i] = math.Sin(x)*3 + math.Cos(2*x)
	}
	return v
}

// relClose compares kernel output against the sequential scalar reference:
// the blocked kernels reassociate the sum, so equality is up to a few ulps
// relative to the accumulated magnitude, not bitwise.
func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*(math.Abs(a)+math.Abs(b)+1)
}

func TestDotBlockMatchesScalar(t *testing.T) {
	for _, n := range kernelLengths {
		x, y := kernelVec(n, 0.3), kernelVec(n, 7.1)
		got := DotBlock(x, y)
		want := Dot(x, y)
		if !relClose(got, want) {
			t.Errorf("n=%d: DotBlock %g vs scalar %g", n, got, want)
		}
	}
}

func TestSqDistBlockMatchesScalar(t *testing.T) {
	for _, n := range kernelLengths {
		x, y := kernelVec(n, 1.9), kernelVec(n, 4.4)
		got := SqDistBlock(x, y)
		want := SqDist(x, y)
		if !relClose(got, want) {
			t.Errorf("n=%d: SqDistBlock %g vs scalar %g", n, got, want)
		}
		if SqDistBlock(x, x) != 0 {
			t.Errorf("n=%d: SqDistBlock(x,x) != 0", n)
		}
	}
}

func TestSqNormBlockMatchesDotBlock(t *testing.T) {
	for _, n := range kernelLengths {
		x := kernelVec(n, 2.2)
		// Same accumulation order by construction: bitwise equality.
		if got, want := SqNormBlock(x), DotBlock(x, x); got != want {
			t.Errorf("n=%d: SqNormBlock %g vs DotBlock(x,x) %g", n, got, want)
		}
	}
}

func TestRowKernels(t *testing.T) {
	for _, m := range kernelLengths {
		for _, rows := range []int{0, 1, 2, 5} {
			slab := kernelVec(rows*m, 0.7)
			x := kernelVec(m, 3.3)
			dd := DotRows(make([]float64, rows), x, slab, m)
			sd := SqDistRows(make([]float64, rows), x, slab, m)
			for r := 0; r < rows; r++ {
				row := slab[r*m : (r+1)*m]
				if got, want := dd[r], DotBlock(x, row); got != want {
					t.Errorf("m=%d row %d: DotRows %g vs DotBlock %g", m, r, got, want)
				}
				if got, want := sd[r], SqDistBlock(x, row); got != want {
					t.Errorf("m=%d row %d: SqDistRows %g vs SqDistBlock %g", m, r, got, want)
				}
			}
		}
	}
}

func TestArgminRow(t *testing.T) {
	cases := []struct {
		xs  []float64
		idx int
		val float64
	}{
		{nil, -1, 0},
		{[]float64{}, -1, 0},
		{[]float64{4}, 0, 4},
		{[]float64{3, 1, 2}, 1, 1},
		{[]float64{2, 1, 1, 5}, 1, 1}, // tie: lowest index wins
		{[]float64{math.Inf(1), 7}, 1, 7},
		{[]float64{-1, -1, -2, -2}, 2, -2},
	}
	for _, tc := range cases {
		idx, val := ArgminRow(tc.xs)
		if idx != tc.idx || val != tc.val {
			t.Errorf("ArgminRow(%v) = (%d, %g), want (%d, %g)", tc.xs, idx, val, tc.idx, tc.val)
		}
	}
}

// TestKernelZeroAllocs gates every kernel at zero heap allocations — they
// sit inside the assignment loops whose steady-state passes are gated
// allocation-free.
func TestKernelZeroAllocs(t *testing.T) {
	x, y := kernelVec(42, 0.1), kernelVec(42, 0.9)
	slab := kernelVec(5*42, 1.7)
	dst := make([]float64, 5)
	var sink float64
	for name, fn := range map[string]func(){
		"DotBlock":    func() { sink += DotBlock(x, y) },
		"SqDistBlock": func() { sink += SqDistBlock(x, y) },
		"SqNormBlock": func() { sink += SqNormBlock(x) },
		"DotRows":     func() { DotRows(dst, x, slab, 42) },
		"SqDistRows":  func() { SqDistRows(dst, x, slab, 42) },
		"ArgminRow":   func() { _, v := ArgminRow(dst); sink += v },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %g allocs per run, want 0", name, allocs)
		}
	}
	_ = sink
}

func TestMeanEmptyReturnsNil(t *testing.T) {
	if got := Mean(nil); got != nil {
		t.Errorf("Mean(nil) = %v, want nil", got)
	}
	if got := Mean([]Vector{}); got != nil {
		t.Errorf("Mean(empty) = %v, want nil", got)
	}
	// Non-empty unchanged.
	got := Mean([]Vector{{1, 3}, {3, 5}})
	if !Equal(got, Vector{2, 4}) {
		t.Errorf("Mean = %v, want [2 4]", got)
	}
}

func TestCheckDimsMessage(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Dot", func() { Dot(Vector{1}, Vector{1, 2}) }},
		{"SqDist", func() { SqDist(Vector{1, 2, 3}, Vector{1}) }},
		{"Add", func() { Add(Vector{1}, nil) }},
		{"Mean-ragged", func() { Mean([]Vector{{1, 2}, {1}}) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: no panic on dimension mismatch", tc.name)
					return
				}
				msg, ok := r.(string)
				if !ok {
					t.Errorf("%s: panic value %T, want the vec diagnostic string", tc.name, r)
					return
				}
				if want := "vec: dimension mismatch"; len(msg) < len(want) || msg[:len(want)] != want {
					t.Errorf("%s: panic %q lacks the vec diagnostic prefix", tc.name, msg)
				}
			}()
			tc.fn()
		}()
	}
}
