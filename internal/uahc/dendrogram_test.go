package uahc

import (
	"context"
	"strings"
	"testing"

	"ucpc/internal/rng"
)

func TestDendrogramNewick(t *testing.T) {
	r := rng.New(600)
	ds := separable(r, 2, 4, 2)
	_, merges, err := (&UAHC{}).ClusterWithDendrogram(context.Background(), ds, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDendrogram(len(ds), merges)
	if err != nil {
		t.Fatal(err)
	}
	nw := d.Newick()
	if !strings.HasSuffix(nw, ";") {
		t.Errorf("newick missing terminator: %q", nw)
	}
	// Every leaf index appears exactly once.
	for i := 0; i < len(ds); i++ {
		needle := strings.NewReplacer("(", " ", ")", " ", ",", " ", ":", " ").Replace(nw)
		count := 0
		for _, f := range strings.Fields(needle) {
			if f == itoa(i) {
				count++
			}
		}
		if count != 1 {
			t.Errorf("leaf %d appears %d times in %q", i, count, nw)
		}
	}
	// Balanced parentheses.
	depth := 0
	for _, c := range nw {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth < 0 {
			t.Fatalf("unbalanced newick: %q", nw)
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced newick: %q", nw)
	}
}

func itoa(i int) string {
	return string(rune('0' + i%10))
}

func TestDendrogramCutHeights(t *testing.T) {
	r := rng.New(700)
	ds := separable(r, 2, 5, 2)
	_, merges, err := (&UAHC{}).ClusterWithDendrogram(context.Background(), ds, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDendrogram(len(ds), merges)
	if err != nil {
		t.Fatal(err)
	}
	hs := d.CutHeights()
	if len(hs) != len(ds)-1 {
		t.Fatalf("%d heights for %d leaves", len(hs), len(ds))
	}
	// The final merge (joining the two groups) dominates.
	last := hs[len(hs)-1]
	for _, h := range hs[:len(hs)-1] {
		if h > last {
			t.Errorf("non-final height %v above final %v", h, last)
		}
	}
	if !strings.Contains(d.String(), "dendrogram over") {
		t.Error("String() header missing")
	}
}

func TestDendrogramWrongMergeCount(t *testing.T) {
	if _, err := NewDendrogram(5, nil); err == nil {
		t.Error("accepted empty merge list for 5 leaves")
	}
}
