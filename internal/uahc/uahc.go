// Package uahc implements an agglomerative hierarchical clustering
// algorithm for uncertain objects in the role of U-AHC (Gullo et al., ICDM
// 2008; paper ref. [9]).
//
// Substitution note (see DESIGN.md): the original U-AHC merges clusters via
// an information-theoretic similarity between uncertain cluster prototypes.
// Here the default linkage represents each cluster by its mixture-model
// prototype and merges the pair whose merge least increases the
// size-weighted prototype variance |C|·σ²(C_MM) — by Proposition 2 this is
// exactly the increase of the UK-means objective J_UK, i.e. a Ward-style
// criterion on uncertain prototypes. Classic single/complete/average
// linkages over the pairwise ÊD matrix are also provided. The asymptotics
// (quadratic space, near-quadratic time, orders of magnitude slower than
// the partitional methods) match the baseline's role in the paper's
// Figure 4.
package uahc

import (
	"context"
	"math"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/rng"
	"ucpc/internal/ukmedoids"
	"ucpc/internal/uncertain"
)

// Linkage selects the inter-cluster dissimilarity.
type Linkage int

const (
	// LinkagePrototype merges the pair minimizing the increase of the
	// size-weighted mixture-prototype variance (default; the U-AHC
	// stand-in).
	LinkagePrototype Linkage = iota
	// LinkageSingle uses min pairwise ÊD.
	LinkageSingle
	// LinkageComplete uses max pairwise ÊD.
	LinkageComplete
	// LinkageAverage uses mean pairwise ÊD.
	LinkageAverage
)

// UAHC is the agglomerative hierarchical algorithm.
type UAHC struct {
	Linkage Linkage
	// Workers sizes the worker pool of the off-line ÊD matrix build
	// (<= 0 means GOMAXPROCS).
	Workers int
}

// Name implements clustering.Algorithm.
func (a *UAHC) Name() string { return "UAHC" }

// Merge records one agglomeration step: clusters A and B (ids in the
// forest) merged at the given linkage distance.
type Merge struct {
	A, B int
	Dist float64
}

// Cluster merges bottom-up until k clusters remain.
func (a *UAHC) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	rep, _, err := a.ClusterWithDendrogram(ctx, ds, k, r)
	return rep, err
}

// ClusterWithDendrogram is Cluster plus the sequence of merges performed.
func (a *UAHC) ClusterWithDendrogram(ctx context.Context, ds uncertain.Dataset, k int, _ *rng.RNG) (*clustering.Report, []Merge, error) {
	ctx = clustering.Ctx(ctx)
	if err := ds.Validate(); err != nil {
		return nil, nil, err
	}
	n := len(ds)
	if err := clustering.ValidateK("uahc", k, n); err != nil {
		return nil, nil, err
	}

	// Off-line phase: the pairwise ÊD matrix for the classic linkages.
	offStart := time.Now()
	var dm *ukmedoids.DistMatrix
	if a.Linkage != LinkagePrototype {
		dm = ukmedoids.MatrixWorkers(ds, a.Workers)
	}
	offline := time.Since(offStart)

	start := time.Now()
	active := make([]bool, n)
	members := make([][]int, n)
	stats := make([]*core.Stats, n)
	for i := range ds {
		active[i] = true
		members[i] = []int{i}
		stats[i] = core.NewStatsOf([]*uncertain.Object{ds[i]})
	}

	// dist returns the current linkage distance between active clusters.
	dist := func(x, y int) float64 {
		switch a.Linkage {
		case LinkageSingle:
			best := math.Inf(1)
			for _, i := range members[x] {
				for _, j := range members[y] {
					if d := dm.At(i, j); d < best {
						best = d
					}
				}
			}
			return best
		case LinkageComplete:
			worst := math.Inf(-1)
			for _, i := range members[x] {
				for _, j := range members[y] {
					if d := dm.At(i, j); d > worst {
						worst = d
					}
				}
			}
			return worst
		case LinkageAverage:
			var sum float64
			for _, i := range members[x] {
				for _, j := range members[y] {
					sum += dm.At(i, j)
				}
			}
			return sum / float64(len(members[x])*len(members[y]))
		default: // LinkagePrototype: ΔJ_UK = Δ(|C|·σ²(C_MM)), Ward-style.
			merged := stats[x].Clone()
			for _, j := range members[y] {
				merged.Add(ds[j])
			}
			return merged.JUK() - stats[x].JUK() - stats[y].JUK()
		}
	}

	// Nearest-neighbor cache per active cluster.
	nn := make([]int, n)
	nnd := make([]float64, n)
	recomputeNN := func(x int) {
		nn[x], nnd[x] = -1, math.Inf(1)
		for y := 0; y < n; y++ {
			if y == x || !active[y] {
				continue
			}
			if d := dist(x, y); d < nnd[x] {
				nn[x], nnd[x] = y, d
			}
		}
	}
	for i := 0; i < n; i++ {
		recomputeNN(i)
	}

	merges := make([]Merge, 0, n-k)
	for remaining := n; remaining > k; remaining-- {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		// Global best pair from the NN cache.
		best, bestD := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if active[i] && nn[i] >= 0 && nnd[i] < bestD {
				best, bestD = i, nnd[i]
			}
		}
		other := nn[best]
		merges = append(merges, Merge{A: best, B: other, Dist: bestD})

		// Merge `other` into `best`.
		members[best] = append(members[best], members[other]...)
		for _, j := range members[other] {
			stats[best].Add(ds[j])
		}
		active[other] = false
		members[other] = nil
		stats[other] = nil

		// Refresh caches: the merged cluster and everyone who pointed at
		// either of the merged pair.
		recomputeNN(best)
		for i := 0; i < n; i++ {
			if !active[i] || i == best {
				continue
			}
			if nn[i] == best || nn[i] == other {
				recomputeNN(i)
			} else if d := dist(i, best); d < nnd[i] {
				nn[i], nnd[i] = best, d
			}
		}
	}

	assign := make([]int, n)
	cid := 0
	for x := 0; x < n; x++ {
		if !active[x] {
			continue
		}
		for _, i := range members[x] {
			assign[i] = cid
		}
		cid++
	}

	// Objective: total U-centroid compactness of the final partition
	// (comparable across hierarchical and partitional methods).
	objective := core.Objective(ds, assign, k)
	return &clustering.Report{
		Partition:  clustering.Partition{K: k, Assign: assign},
		Objective:  objective,
		Iterations: n - k,
		Converged:  true,
		Online:     time.Since(start),
		Offline:    offline,
	}, merges, nil
}
