package uahc

import (
	"context"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

func separable(r *rng.RNG, k, per, m int) uncertain.Dataset {
	var ds uncertain.Dataset
	id := 0
	for g := 0; g < k; g++ {
		for i := 0; i < per; i++ {
			ms := make([]dist.Distribution, m)
			for j := range ms {
				center := 15*float64(g) + r.Normal(0, 0.4)
				ms[j] = dist.NewTruncNormalCentral(center, 0.3, 0.95)
			}
			ds = append(ds, uncertain.NewObject(id, ms).WithLabel(g))
			id++
		}
	}
	return ds
}

func checkGroups(t *testing.T, ds uncertain.Dataset, assign []int, k int) {
	t.Helper()
	for g := 0; g < k; g++ {
		seen := map[int]bool{}
		for i, o := range ds {
			if o.Label == g {
				seen[assign[i]] = true
			}
		}
		if len(seen) != 1 {
			t.Errorf("group %d split across clusters %v", g, seen)
		}
	}
}

func TestUAHCAllLinkagesRecoverClusters(t *testing.T) {
	for _, link := range []Linkage{LinkagePrototype, LinkageSingle, LinkageComplete, LinkageAverage} {
		r := rng.New(100 + uint64(link))
		ds := separable(r, 3, 12, 2)
		rep, err := (&UAHC{Linkage: link}).Cluster(context.Background(), ds, 3, r)
		if err != nil {
			t.Fatalf("linkage %d: %v", link, err)
		}
		checkGroups(t, ds, rep.Partition.Assign, 3)
		if !rep.Partition.NonEmpty() {
			t.Errorf("linkage %d: empty cluster", link)
		}
	}
}

func TestDendrogramShape(t *testing.T) {
	r := rng.New(200)
	ds := separable(r, 2, 8, 2)
	rep, merges, err := (&UAHC{}).ClusterWithDendrogram(context.Background(), ds, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(merges) != len(ds)-1 {
		t.Errorf("%d merges for n=%d, k=1", len(merges), len(ds))
	}
	// Prototype (Ward-style) merge costs never go negative.
	for i, m := range merges {
		if m.Dist < -1e-9 {
			t.Errorf("merge %d has negative cost %v", i, m.Dist)
		}
	}
	// With k=1, everything lands in cluster 0.
	for i, c := range rep.Partition.Assign {
		if c != 0 {
			t.Errorf("object %d in cluster %d, want 0", i, c)
		}
	}
}

// The two well-separated groups must be the last to merge: the final merge
// cost dwarfs all earlier ones.
func TestSeparatedGroupsMergeLast(t *testing.T) {
	r := rng.New(300)
	ds := separable(r, 2, 10, 2)
	_, merges, err := (&UAHC{}).ClusterWithDendrogram(context.Background(), ds, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	last := merges[len(merges)-1].Dist
	for _, m := range merges[:len(merges)-1] {
		if m.Dist > last/10 {
			t.Errorf("non-final merge cost %v not well below final %v", m.Dist, last)
		}
	}
}

func TestUAHCKEqualsN(t *testing.T) {
	r := rng.New(400)
	ds := separable(r, 2, 3, 2)
	rep, err := (&UAHC{}).Cluster(context.Background(), ds, len(ds), r)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range rep.Partition.Assign {
		if seen[c] {
			t.Fatal("k=n must put every object in its own cluster")
		}
		seen[c] = true
	}
}

func TestUAHCValidation(t *testing.T) {
	r := rng.New(500)
	ds := separable(r, 2, 3, 2)
	if _, err := (&UAHC{}).Cluster(context.Background(), ds, 0, r); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := (&UAHC{}).Cluster(context.Background(), ds, len(ds)+1, r); err == nil {
		t.Error("k>n accepted")
	}
}

var _ clustering.Algorithm = (*UAHC)(nil)
