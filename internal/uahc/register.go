package uahc

import "ucpc/internal/clustering"

func init() {
	clustering.Register(clustering.Registration{
		Name: "UAHC", Rank: 100, Prototype: clustering.ProtoUCentroid,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &UAHC{Workers: cfg.Workers}
		},
	})
}
