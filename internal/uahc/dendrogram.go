package uahc

import (
	"fmt"
	"strconv"
	"strings"
)

// Dendrogram reconstructs the merge tree of a full agglomeration
// (ClusterWithDendrogram with k=1) for inspection and export.
type Dendrogram struct {
	n      int
	merges []Merge
}

// NewDendrogram wraps a complete merge sequence over n leaves. It returns
// an error when the sequence cannot be a full agglomeration (must contain
// exactly n−1 merges).
func NewDendrogram(n int, merges []Merge) (*Dendrogram, error) {
	if len(merges) != n-1 {
		return nil, fmt.Errorf("uahc: %d merges cannot agglomerate %d leaves (want %d)", len(merges), n, n-1)
	}
	return &Dendrogram{n: n, merges: merges}, nil
}

// Newick serializes the merge tree in Newick format, with leaves named by
// object index and branch lengths carrying each merge's linkage distance.
// The output is consumable by standard phylogeny/plotting tools.
func (d *Dendrogram) Newick() string {
	// Each cluster id maps to its current subtree string; merges fold B
	// into A (matching ClusterWithDendrogram's bookkeeping).
	trees := make(map[int]string, d.n)
	for i := 0; i < d.n; i++ {
		trees[i] = strconv.Itoa(i)
	}
	for _, m := range d.merges {
		dist := strconv.FormatFloat(m.Dist, 'g', 6, 64)
		trees[m.A] = "(" + trees[m.A] + ":" + dist + "," + trees[m.B] + ":" + dist + ")"
		delete(trees, m.B)
	}
	// Exactly one root remains.
	for _, t := range trees {
		return t + ";"
	}
	return ";"
}

// CutHeights returns the merge distances in agglomeration order — the
// heights at which a horizontal dendrogram cut changes the cluster count.
// Cutting between CutHeights[n-k-1] and CutHeights[n-k] yields k clusters.
func (d *Dendrogram) CutHeights() []float64 {
	hs := make([]float64, len(d.merges))
	for i, m := range d.merges {
		hs[i] = m.Dist
	}
	return hs
}

// String renders a compact text form: one line per merge.
func (d *Dendrogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dendrogram over %d leaves:\n", d.n)
	for i, m := range d.merges {
		fmt.Fprintf(&b, "  step %3d: %d ← %d at %.6g\n", i+1, m.A, m.B, m.Dist)
	}
	return b.String()
}
