package uncertain

import (
	"math"

	"ucpc/internal/rng"
	"ucpc/internal/vec"
)

// ED returns the expected squared Euclidean distance between uncertain
// object o and deterministic point y:
//
//	ED(o, y) = ∫ ‖x − y‖² f(x) dx = σ²(o) + ‖µ(o) − y‖²
//
// This is the closed form behind eq. (8) of the paper (Lee et al.'s
// "reducing UK-means to K-means" identity): the first term is the constant
// ED(o, µ(o)) = σ²(o), the second is the O(m) online part.
func ED(o *Object, y vec.Vector) float64 {
	return o.totalVar + vec.SqDist(o.mu, y)
}

// EED returns the squared expected distance ÊD between two uncertain
// objects (paper eq. 13, Lemma 3):
//
//	ÊD(o, o′) = Σ_j [(µ₂)_j(o) − 2 µ_j(o) µ_j(o′) + (µ₂)_j(o′)]
//	          = ‖µ(o) − µ(o′)‖² + σ²(o) + σ²(o′)
func EED(o, p *Object) float64 {
	return vec.SqDist(o.mu, p.mu) + o.totalVar + p.totalVar
}

// EEDLemma3 computes ÊD directly from the Lemma 3 component sum. It is
// algebraically identical to EED and exists so tests can cross-check the
// two readings of the formula.
func EEDLemma3(o, p *Object) float64 {
	var s float64
	for j := 0; j < o.Dims(); j++ {
		s += o.mu2[j] - 2*o.mu[j]*p.mu[j] + p.mu2[j]
	}
	return s
}

// Metric is a deterministic point-to-point distance. The basic UK-means is
// defined for an arbitrary metric d (paper §2.2, ED_d).
type Metric func(x, y vec.Vector) float64

// SqEuclidean is the squared Euclidean norm metric ‖x−y‖².
func SqEuclidean(x, y vec.Vector) float64 { return vec.SqDist(x, y) }

// Euclidean is the Euclidean metric ‖x−y‖.
func Euclidean(x, y vec.Vector) float64 { return vec.Dist(x, y) }

// EDSampled approximates ED_d(o, y) = ∫ d(x, y) f(x) dx by averaging the
// metric over the object's cached sample cloud. This is the expensive
// integral approximation used by the basic UK-means (§2.2); callers must
// have invoked EnsureSamples first.
func EDSampled(o *Object, y vec.Vector, d Metric) float64 {
	if len(o.samples) == 0 {
		panic("uncertain: EDSampled without a sample cloud (call EnsureSamples)")
	}
	var s float64
	for _, x := range o.samples {
		s += d(x, y)
	}
	return s / float64(len(o.samples))
}

// EEDSampled approximates ÊD(o, p) by a Monte Carlo double sum over the two
// cached sample clouds with the squared Euclidean metric. Used by tests to
// verify Lemma 3 and by the density-based algorithms' distance
// probabilities.
func EEDSampled(o, p *Object) float64 {
	if len(o.samples) == 0 || len(p.samples) == 0 {
		panic("uncertain: EEDSampled without sample clouds")
	}
	var s float64
	for _, x := range o.samples {
		for _, y := range p.samples {
			s += vec.SqDist(x, y)
		}
	}
	return s / float64(len(o.samples)*len(p.samples))
}

// DistProbability estimates P(d(o, p) ≤ eps) — the fuzzy distance used by
// FDBSCAN/FOPTICS — as the fraction of sample pairs within Euclidean
// distance eps. Pairs are matched index-to-index after an implicit random
// pairing (the clouds are i.i.d., so index pairing is an unbiased,
// O(S) estimator; pass full=true for the exact O(S²) double sum).
func DistProbability(o, p *Object, eps float64, full bool) float64 {
	so, sp := o.samples, p.samples
	if len(so) == 0 || len(sp) == 0 {
		panic("uncertain: DistProbability without sample clouds")
	}
	eps2 := eps * eps
	if !full {
		n := len(so)
		if len(sp) < n {
			n = len(sp)
		}
		cnt := 0
		for i := 0; i < n; i++ {
			if vec.SqDist(so[i], sp[i]) <= eps2 {
				cnt++
			}
		}
		return float64(cnt) / float64(n)
	}
	cnt := 0
	for _, x := range so {
		for _, y := range sp {
			if vec.SqDist(x, y) <= eps2 {
				cnt++
			}
		}
	}
	return float64(cnt) / float64(len(so)*len(sp))
}

// MaxPairwiseEED returns max_{o≠p} ÊD(o,p) over the dataset, used to
// normalize the intra/inter internal validity criteria into [0,1]
// (paper §5.1). For n > sampleCap objects the maximum is estimated on a
// deterministic subsample to keep the cost bounded; the normalizer only
// needs to be a dataset-wide constant.
func MaxPairwiseEED(ds Dataset, sampleCap int) float64 {
	idx := make([]int, len(ds))
	for i := range idx {
		idx[i] = i
	}
	if sampleCap > 0 && len(ds) > sampleCap {
		r := rng.New(uint64(len(ds)))
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		idx = idx[:sampleCap]
	}
	// Pack only the sampled objects so the sweep below scans contiguous
	// rows (and the O(n·m) packing cost tracks the sample, not the
	// dataset).
	sample := make(Dataset, len(idx))
	for i, id := range idx {
		sample[i] = ds[id]
	}
	mom := MomentsOf(sample)
	maxD := 0.0
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			if d := mom.EED(a, b); d > maxD {
				maxD = d
			}
		}
	}
	if maxD == 0 {
		return 1 // degenerate dataset; any constant normalizer works
	}
	return maxD
}

// EDMonteCarlo estimates ED(o, y) with n fresh samples (not the cached
// cloud). Test helper for verifying the closed form.
func EDMonteCarlo(o *Object, y vec.Vector, r *rng.RNG, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += vec.SqDist(o.Sample(r), y)
	}
	return s / float64(n)
}

// EEDMonteCarlo estimates ÊD(o, p) with n fresh independent sample pairs.
func EEDMonteCarlo(o, p *Object, r *rng.RNG, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += vec.SqDist(o.Sample(r), p.Sample(r))
	}
	return s / float64(n)
}

// NearestByEED returns the index in centers of the object minimizing
// ÊD(o, centers[i]) and that minimal value. It is the object-level
// counterpart of (*Moments).NearestByED for callers holding Objects rather
// than a flat moment store.
func NearestByEED(o *Object, centers []*Object) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, c := range centers {
		if d := EED(o, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
