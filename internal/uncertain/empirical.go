package uncertain

import (
	"fmt"

	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/vec"
)

// FromSamples builds an uncertain object from an empirical joint sample
// cloud — the fully general form of Definition 1, where the pdf f need not
// factor into independent marginals (dimensions may be correlated).
//
// The object's moments µ, µ₂, σ² are the cloud's empirical moments, its
// region is the cloud's bounding box, and Sample resamples the cloud
// uniformly. All closed-form machinery (ED of eq. 8, ÊD of Lemma 3, the
// Ψ/Φ/Υ statistics of Theorem 3) depends only on per-dimension first and
// second moments, so every clustering algorithm in this repository works
// on empirical objects unchanged — including correlation-carrying ones.
//
// The per-dimension marginals exposed by Marginal are the empirical
// (Discrete) projections; they reproduce the joint moments but not the
// joint dependence, which lives only in the stored cloud.
func FromSamples(id int, points []vec.Vector) *Object {
	if len(points) == 0 {
		panic("uncertain: FromSamples needs at least one point")
	}
	m := len(points[0])
	cols := make([][]float64, m)
	for j := range cols {
		cols[j] = make([]float64, len(points))
	}
	for i, p := range points {
		if len(p) != m {
			panic(fmt.Sprintf("uncertain: sample %d has dim %d, want %d", i, len(p), m))
		}
		for j := 0; j < m; j++ {
			cols[j][i] = p[j]
		}
	}
	ms := make([]dist.Distribution, m)
	for j := 0; j < m; j++ {
		ms[j] = dist.NewDiscrete(cols[j], nil)
	}
	o := NewObject(id, ms)
	// Preserve the joint dependence: the cached cloud holds the original
	// points (copied), and resampling draws whole rows, not per-dimension
	// independent values.
	o.samples = make([]vec.Vector, len(points))
	for i, p := range points {
		o.samples[i] = vec.Clone(p)
	}
	o.joint = true
	return o
}

// IsJoint reports whether the object carries an empirical joint cloud
// (built with FromSamples) whose dimensions may be correlated.
func (o *Object) IsJoint() bool { return o.joint }

// SampleJoint draws one realization. For joint empirical objects it
// resamples a full row of the original cloud (preserving correlations);
// for product-form objects it falls back to Sample.
func (o *Object) SampleJoint(r *rng.RNG) vec.Vector {
	if !o.joint || len(o.samples) == 0 {
		return o.Sample(r)
	}
	return vec.Clone(o.samples[r.Intn(len(o.samples))])
}

// Covariance returns the empirical covariance between dimensions a and b
// for joint objects (0 for product-form objects, whose dimensions are
// independent by construction).
func (o *Object) Covariance(a, b int) float64 {
	if a == b {
		return o.sigma2[a]
	}
	if !o.joint || len(o.samples) == 0 {
		return 0
	}
	var s float64
	for _, p := range o.samples {
		s += (p[a] - o.mu[a]) * (p[b] - o.mu[b])
	}
	return s / float64(len(o.samples))
}
