// Package uncertain implements the multivariate uncertain-object model of
// the paper (§2.1): an object o = (R, f) with an m-dimensional box domain
// region R and a pdf f over R. Objects carry per-dimension independent
// marginal distributions (exactly the representation produced by the
// paper's uncertainty generator, §5.1, and by probe-level microarray
// models), from which the expected value, second-order moment, and variance
// vectors (eq. 2–6) are available in closed form.
//
// An optional joint sample cloud supports the sample-based algorithms
// (basic UK-means, FDBSCAN, FOPTICS) and Monte Carlo verification of the
// closed forms.
package uncertain

import (
	"errors"
	"fmt"

	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/vec"
)

// ErrEmptyDataset marks a dataset with no objects. Dataset.Validate (and
// through it every clustering entry point) wraps this sentinel so callers
// can test errors.Is(err, ErrEmptyDataset).
var ErrEmptyDataset = errors.New("empty dataset")

// ErrDimMismatch marks objects of differing dimensionality, either within
// one dataset or between a fitted model and the objects scored against it.
var ErrDimMismatch = errors.New("dimensionality mismatch")

// Object is a multivariate uncertain object. Construct with NewObject or
// FromPoint; the moment caches make Objects immutable after construction
// (the sample cloud is the only mutable, lazily-filled field).
type Object struct {
	// ID identifies the object within its dataset.
	ID int
	// Label is an optional reference class for external validation;
	// -1 when unknown.
	Label int

	marginals []dist.Distribution
	region    vec.Box

	mu, mu2, sigma2 vec.Vector
	totalVar        float64

	samples []vec.Vector // optional cached realizations
	joint   bool         // samples form an empirical joint pdf (FromSamples)
}

// NewObject builds an uncertain object from per-dimension marginals.
// The domain region is the product of the marginal supports.
func NewObject(id int, marginals []dist.Distribution) *Object {
	if len(marginals) == 0 {
		panic("uncertain: object needs at least one dimension")
	}
	m := len(marginals)
	o := &Object{
		ID:        id,
		Label:     -1,
		marginals: marginals,
		mu:        make(vec.Vector, m),
		mu2:       make(vec.Vector, m),
		sigma2:    make(vec.Vector, m),
	}
	lo := make(vec.Vector, m)
	hi := make(vec.Vector, m)
	for j, d := range marginals {
		o.mu[j] = d.Mean()
		o.mu2[j] = d.SecondMoment()
		o.sigma2[j] = d.Var()
		o.totalVar += o.sigma2[j]
		lo[j], hi[j] = d.Support()
	}
	o.region = vec.Box{Lo: lo, Hi: hi}
	return o
}

// FromPoint builds a deterministic object (all marginals are point masses).
// Deterministic objects make the uncertain algorithms collapse to their
// classical counterparts, which the evaluation pipeline uses for Case 1
// (clustering the perturbed deterministic dataset D′).
func FromPoint(id int, x vec.Vector) *Object {
	ms := make([]dist.Distribution, len(x))
	for j, v := range x {
		ms[j] = dist.NewPointMass(v)
	}
	return NewObject(id, ms)
}

// WithLabel sets the reference class label and returns the object.
func (o *Object) WithLabel(label int) *Object {
	o.Label = label
	return o
}

// Dims returns the dimensionality m.
func (o *Object) Dims() int { return len(o.marginals) }

// Marginal returns the j-th marginal distribution.
func (o *Object) Marginal(j int) dist.Distribution { return o.marginals[j] }

// Region returns the domain region R of the object.
func (o *Object) Region() vec.Box { return o.region }

// Mean returns the expected-value vector µ(o) (eq. 2). The returned slice
// is shared; callers must not modify it.
func (o *Object) Mean() vec.Vector { return o.mu }

// SecondMoment returns the second-order moment vector µ₂(o) (eq. 2).
func (o *Object) SecondMoment() vec.Vector { return o.mu2 }

// VarVector returns the variance vector σ²(o) (eq. 3).
func (o *Object) VarVector() vec.Vector { return o.sigma2 }

// TotalVar returns the "global" scalar variance σ²(o) = Σ_j (σ²)_j (eq. 6).
func (o *Object) TotalVar() float64 { return o.totalVar }

// PDF evaluates the joint density f(x) = Π_j f_j(x_j) at x.
func (o *Object) PDF(x vec.Vector) float64 {
	if len(x) != o.Dims() {
		panic(fmt.Sprintf("uncertain: pdf point dim %d vs object dim %d", len(x), o.Dims()))
	}
	p := 1.0
	for j, d := range o.marginals {
		p *= d.PDF(x[j])
		if p == 0 {
			return 0
		}
	}
	return p
}

// Sample draws one realization x ∈ R of the object.
func (o *Object) Sample(r *rng.RNG) vec.Vector {
	x := make(vec.Vector, o.Dims())
	for j, d := range o.marginals {
		x[j] = d.Sample(r)
	}
	return x
}

// EnsureSamples fills (or refreshes, if n differs) the cached sample cloud
// with n realizations drawn from r, and returns the cloud. The cloud is the
// "set of statistical samples drawn from the pdf" used by the basic
// UK-means (§2.2) and the density-based algorithms. For empirical joint
// objects (FromSamples) the refreshed cloud is a bootstrap resample of the
// stored rows, preserving cross-dimension correlations.
func (o *Object) EnsureSamples(r *rng.RNG, n int) []vec.Vector {
	if len(o.samples) == n {
		return o.samples
	}
	fresh := make([]vec.Vector, n)
	for i := range fresh {
		if o.joint && len(o.samples) > 0 {
			fresh[i] = vec.Clone(o.samples[r.Intn(len(o.samples))])
		} else {
			fresh[i] = o.Sample(r)
		}
	}
	o.samples = fresh
	return o.samples
}

// Samples returns the cached sample cloud (nil if EnsureSamples was never
// called).
func (o *Object) Samples() []vec.Vector { return o.samples }

// DropSamples releases the cached cloud. For empirical joint objects this
// discards the joint information (moments remain exact); it is a
// programming error to drop and then expect joint resampling.
func (o *Object) DropSamples() {
	o.samples = nil
	o.joint = false
}

// IsDeterministic reports whether every marginal is a point mass
// (zero total variance).
func (o *Object) IsDeterministic() bool { return o.totalVar == 0 }

// String summarizes the object.
func (o *Object) String() string {
	return fmt.Sprintf("Object{id=%d m=%d σ²=%.4g}", o.ID, o.Dims(), o.totalVar)
}

// Dataset is an ordered collection of uncertain objects with a common
// dimensionality.
type Dataset []*Object

// Dims returns the dimensionality of the dataset's objects.
func (ds Dataset) Dims() int {
	if len(ds) == 0 {
		return 0
	}
	return ds[0].Dims()
}

// Labels returns the reference labels of all objects.
func (ds Dataset) Labels() []int {
	ls := make([]int, len(ds))
	for i, o := range ds {
		ls[i] = o.Label
	}
	return ls
}

// Means returns the expected-value vectors of all objects. The vectors are
// shared with the objects; callers must not modify them.
func (ds Dataset) Means() []vec.Vector {
	ms := make([]vec.Vector, len(ds))
	for i, o := range ds {
		ms[i] = o.Mean()
	}
	return ms
}

// EnsureSamples fills the sample cloud of every object with n realizations,
// using per-object substreams of r so the result is order-independent.
func (ds Dataset) EnsureSamples(r *rng.RNG, n int) {
	for i, o := range ds {
		o.EnsureSamples(r.Split(uint64(i)), n)
	}
}

// Validate checks that the dataset is non-empty and that all objects share
// one dimensionality, wrapping ErrEmptyDataset / ErrDimMismatch.
func (ds Dataset) Validate() error {
	if len(ds) == 0 {
		return fmt.Errorf("uncertain: %w", ErrEmptyDataset)
	}
	m := ds[0].Dims()
	for i, o := range ds {
		if o.Dims() != m {
			return fmt.Errorf("uncertain: object %d has dim %d, want %d: %w", i, o.Dims(), m, ErrDimMismatch)
		}
	}
	return nil
}
