package uncertain

import (
	"math"
	"testing"

	"ucpc/internal/rng"
	"ucpc/internal/vec"
)

func momentsDataset(n int) Dataset {
	ds := make(Dataset, n)
	for i := range ds {
		ds[i] = testObject(i)
	}
	return ds
}

func TestMomentsMatchesObjects(t *testing.T) {
	ds := momentsDataset(7)
	mo := MomentsOf(ds)
	if mo.Len() != 7 || mo.Dims() != 3 {
		t.Fatalf("shape %dx%d", mo.Len(), mo.Dims())
	}
	for i, o := range ds {
		if !vec.Equal(mo.Mu(i), o.Mean()) {
			t.Errorf("object %d: Mu row %v vs %v", i, mo.Mu(i), o.Mean())
		}
		if !vec.Equal(mo.Mu2(i), o.SecondMoment()) {
			t.Errorf("object %d: Mu2 row differs", i)
		}
		if !vec.Equal(mo.Sigma2(i), o.VarVector()) {
			t.Errorf("object %d: Sigma2 row differs", i)
		}
		if mo.TotalVar(i) != o.TotalVar() {
			t.Errorf("object %d: TotalVar %v vs %v", i, mo.TotalVar(i), o.TotalVar())
		}
	}
}

func TestMomentsEEDMatchesObjectEED(t *testing.T) {
	ds := momentsDataset(6)
	mo := MomentsOf(ds)
	for i := range ds {
		for j := range ds {
			want := EED(ds[i], ds[j])
			if got := mo.EED(i, j); math.Abs(got-want) > 1e-12*(1+want) {
				t.Fatalf("EED(%d,%d) flat %v vs object %v", i, j, got, want)
			}
		}
	}
}

func TestMomentsEDMatchesObjectED(t *testing.T) {
	ds := momentsDataset(5)
	mo := MomentsOf(ds)
	r := rng.New(31)
	for i := range ds {
		y := vec.Vector{r.Uniform(-5, 5), r.Uniform(-5, 5), r.Uniform(-5, 5)}
		want := ED(ds[i], y)
		if got := mo.ED(i, y); math.Abs(got-want) > 1e-12*(1+want) {
			t.Fatalf("ED(%d) flat %v vs object %v", i, got, want)
		}
	}
}

func TestMomentsNearestByED(t *testing.T) {
	ds := momentsDataset(4)
	mo := MomentsOf(ds)
	centers := [][]float64{ds[2].Mean(), ds[0].Mean(), ds[3].Mean()}
	for i := range ds {
		gotC, gotD := mo.NearestByED(i, centers)
		wantC, wantD := 0, ED(ds[i], centers[0])
		for c := 1; c < len(centers); c++ {
			if d := ED(ds[i], centers[c]); d < wantD {
				wantC, wantD = c, d
			}
		}
		if gotC != wantC || math.Abs(gotD-wantD) > 1e-12*(1+wantD) {
			t.Fatalf("object %d: nearest (%d, %v) vs (%d, %v)", i, gotC, gotD, wantC, wantD)
		}
	}
}

func TestMomentsRejectsMixedDims(t *testing.T) {
	ds := Dataset{testObject(0), FromPoint(1, vec.Vector{1})}
	defer func() {
		if recover() == nil {
			t.Error("MomentsOf accepted mixed dimensionality")
		}
	}()
	MomentsOf(ds)
}

func TestMomentsRowsAreViews(t *testing.T) {
	ds := momentsDataset(3)
	mo := MomentsOf(ds)
	// Rows are capped subslices: appending must not bleed into row i+1.
	row := mo.Mu(0)
	_ = append(row, 999)
	if mo.Mu(1)[0] == 999 {
		t.Error("append through a row view corrupted the next row")
	}
}
