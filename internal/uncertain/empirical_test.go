package uncertain

import (
	"math"
	"testing"

	"ucpc/internal/rng"
	"ucpc/internal/vec"
)

// correlatedCloud draws points with strong positive correlation between
// the two dimensions.
func correlatedCloud(r *rng.RNG, n int) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		z := r.Norm()
		pts[i] = vec.Vector{2 + z, -1 + 0.9*z + 0.1*r.Norm()}
	}
	return pts
}

func TestFromSamplesMoments(t *testing.T) {
	r := rng.New(1)
	pts := correlatedCloud(r, 5000)
	o := FromSamples(0, pts)
	// Empirical moments must match the cloud exactly.
	want := vec.Mean(pts)
	if !vec.ApproxEqual(o.Mean(), want, 1e-9) {
		t.Errorf("mean %v, want %v", o.Mean(), want)
	}
	var m2 float64
	for _, p := range pts {
		m2 += p[0] * p[0]
	}
	m2 /= float64(len(pts))
	if math.Abs(o.SecondMoment()[0]-m2) > 1e-9*(1+m2) {
		t.Errorf("µ₂[0] = %v, want %v", o.SecondMoment()[0], m2)
	}
}

func TestFromSamplesCovariance(t *testing.T) {
	r := rng.New(2)
	o := FromSamples(0, correlatedCloud(r, 5000))
	cov := o.Covariance(0, 1)
	if cov < 0.5 {
		t.Errorf("covariance %v, want strongly positive (~0.9)", cov)
	}
	if o.Covariance(0, 0) != o.VarVector()[0] {
		t.Error("Covariance(j,j) must equal the variance")
	}
	// Product-form objects report zero cross-covariance.
	p := testObject(1)
	if p.Covariance(0, 1) != 0 {
		t.Error("product-form object reported non-zero covariance")
	}
	if p.IsJoint() {
		t.Error("product-form object claims to be joint")
	}
}

func TestFromSamplesJointResampling(t *testing.T) {
	r := rng.New(3)
	o := FromSamples(0, correlatedCloud(r, 2000))
	if !o.IsJoint() {
		t.Fatal("not marked joint")
	}
	// Joint resampling preserves the correlation...
	var covJoint float64
	mu := o.Mean()
	const n = 20000
	for i := 0; i < n; i++ {
		x := o.SampleJoint(r)
		covJoint += (x[0] - mu[0]) * (x[1] - mu[1])
	}
	covJoint /= n
	if covJoint < 0.5 {
		t.Errorf("joint resampling lost correlation: %v", covJoint)
	}
	// ...while per-marginal sampling (product form) destroys it.
	var covIndep float64
	for i := 0; i < n; i++ {
		x := o.Sample(r)
		covIndep += (x[0] - mu[0]) * (x[1] - mu[1])
	}
	covIndep /= n
	if math.Abs(covIndep) > 0.15 {
		t.Errorf("independent sampling kept correlation: %v", covIndep)
	}
}

func TestFromSamplesEnsureSamplesBootstraps(t *testing.T) {
	r := rng.New(4)
	o := FromSamples(0, correlatedCloud(r, 500))
	cloud := o.EnsureSamples(r, 200)
	if len(cloud) != 200 {
		t.Fatalf("cloud size %d", len(cloud))
	}
	if !o.IsJoint() {
		t.Fatal("bootstrap dropped the joint flag")
	}
	// Bootstrap rows preserve correlation.
	mu := o.Mean()
	var cov float64
	for _, x := range cloud {
		cov += (x[0] - mu[0]) * (x[1] - mu[1])
	}
	cov /= float64(len(cloud))
	if cov < 0.4 {
		t.Errorf("bootstrap lost correlation: %v", cov)
	}
}

// The closed-form ÊD (Lemma 3) holds for joint objects too: it only needs
// per-dimension moments. Verify against Monte Carlo over joint draws.
func TestEEDJointObjects(t *testing.T) {
	r := rng.New(5)
	a := FromSamples(0, correlatedCloud(r, 3000))
	b := FromSamples(1, correlatedCloud(r, 3000))
	exact := EED(a, b)
	var mc float64
	const n = 100000
	for i := 0; i < n; i++ {
		mc += vec.SqDist(a.SampleJoint(r), b.SampleJoint(r))
	}
	mc /= n
	if math.Abs(exact-mc) > 0.05*(1+exact) {
		t.Errorf("EED %v vs joint MC %v", exact, mc)
	}
}

func TestFromSamplesRegionIsBoundingBox(t *testing.T) {
	pts := []vec.Vector{{0, 5}, {2, 1}, {-1, 3}}
	o := FromSamples(0, pts)
	reg := o.Region()
	if !vec.Equal(reg.Lo, vec.Vector{-1, 1}) || !vec.Equal(reg.Hi, vec.Vector{2, 5}) {
		t.Errorf("region %+v", reg)
	}
}

func TestFromSamplesRejectsBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":  func() { FromSamples(0, nil) },
		"ragged": func() { FromSamples(0, []vec.Vector{{1, 2}, {1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFromSamplesClusterable(t *testing.T) {
	// Joint objects must flow through the distance helpers used by all
	// algorithms.
	r := rng.New(6)
	a := FromSamples(0, correlatedCloud(r, 100))
	y := vec.Vector{0, 0}
	if d := ED(a, y); d <= 0 || math.IsNaN(d) {
		t.Errorf("ED = %v", d)
	}
	if i, _ := NearestByEED(a, []*Object{FromSamples(1, correlatedCloud(r, 50))}); i != 0 {
		t.Errorf("NearestByEED = %d", i)
	}
}
