package uncertain

import (
	"math"
	"testing"

	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/vec"
)

// testObject builds a 3-D object with one marginal of each family.
func testObject(id int) *Object {
	return NewObject(id, []dist.Distribution{
		dist.NewUniformAround(2, 1),
		dist.NewTruncNormalCentral(-1, 0.5, 0.95),
		dist.NewTruncExponentialMass(4, 1.5, 0.95),
	})
}

func TestObjectMoments(t *testing.T) {
	o := testObject(0)
	want := vec.Vector{2, -1, 4}
	if !vec.ApproxEqual(o.Mean(), want, 1e-9) {
		t.Errorf("Mean = %v, want %v", o.Mean(), want)
	}
	for j := 0; j < o.Dims(); j++ {
		m, m2, v := o.Mean()[j], o.SecondMoment()[j], o.VarVector()[j]
		if math.Abs(v-(m2-m*m)) > 1e-9 {
			t.Errorf("dim %d: σ² = %v but µ₂−µ² = %v", j, v, m2-m*m)
		}
	}
	if math.Abs(o.TotalVar()-vec.Sum(o.VarVector())) > 1e-12 {
		t.Error("TotalVar is not the sum of the variance vector")
	}
}

func TestObjectRegionMatchesSupports(t *testing.T) {
	o := testObject(0)
	r := o.Region()
	for j := 0; j < o.Dims(); j++ {
		lo, hi := o.Marginal(j).Support()
		if r.Lo[j] != lo || r.Hi[j] != hi {
			t.Errorf("dim %d: region [%v,%v] vs support [%v,%v]", j, r.Lo[j], r.Hi[j], lo, hi)
		}
	}
}

func TestObjectSampleInsideRegion(t *testing.T) {
	o := testObject(0)
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		x := o.Sample(r)
		if !o.Region().Contains(x) {
			t.Fatalf("sample %v outside region", x)
		}
	}
}

func TestObjectSampleMomentsMatchClosedForm(t *testing.T) {
	o := testObject(0)
	r := rng.New(7)
	const n = 100000
	sum := vec.New(o.Dims())
	sq := vec.New(o.Dims())
	for i := 0; i < n; i++ {
		x := o.Sample(r)
		for j := range x {
			sum[j] += x[j]
			sq[j] += x[j] * x[j]
		}
	}
	for j := 0; j < o.Dims(); j++ {
		mean := sum[j] / n
		m2 := sq[j] / n
		if math.Abs(mean-o.Mean()[j]) > 0.02 {
			t.Errorf("dim %d MC mean %v vs %v", j, mean, o.Mean()[j])
		}
		if math.Abs(m2-o.SecondMoment()[j]) > 0.05*(1+math.Abs(o.SecondMoment()[j])) {
			t.Errorf("dim %d MC µ₂ %v vs %v", j, m2, o.SecondMoment()[j])
		}
	}
}

func TestFromPointDeterministic(t *testing.T) {
	o := FromPoint(3, vec.Vector{1, 2, 3})
	if !o.IsDeterministic() {
		t.Error("point object not deterministic")
	}
	if o.TotalVar() != 0 {
		t.Errorf("TotalVar = %v", o.TotalVar())
	}
	if !vec.Equal(o.Mean(), vec.Vector{1, 2, 3}) {
		t.Errorf("Mean = %v", o.Mean())
	}
	r := rng.New(1)
	if !vec.Equal(o.Sample(r), vec.Vector{1, 2, 3}) {
		t.Error("deterministic sample differs from the point")
	}
}

func TestPDFProductForm(t *testing.T) {
	o := NewObject(0, []dist.Distribution{
		dist.NewUniform(0, 2),
		dist.NewUniform(0, 4),
	})
	// Inside: density = (1/2)·(1/4)
	if p := o.PDF(vec.Vector{1, 1}); math.Abs(p-0.125) > 1e-12 {
		t.Errorf("PDF inside = %v", p)
	}
	if p := o.PDF(vec.Vector{3, 1}); p != 0 {
		t.Errorf("PDF outside = %v", p)
	}
}

func TestEnsureSamplesCachesAndRefreshes(t *testing.T) {
	o := testObject(0)
	r := rng.New(11)
	s1 := o.EnsureSamples(r, 50)
	s2 := o.EnsureSamples(r, 50)
	if &s1[0] != &s2[0] {
		t.Error("EnsureSamples regenerated a cloud of the same size")
	}
	s3 := o.EnsureSamples(r, 100)
	if len(s3) != 100 {
		t.Errorf("refreshed cloud has %d samples", len(s3))
	}
	o.DropSamples()
	if o.Samples() != nil {
		t.Error("DropSamples did not clear the cloud")
	}
}

func TestDatasetValidate(t *testing.T) {
	ds := Dataset{testObject(0), testObject(1)}
	if err := ds.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	bad := Dataset{testObject(0), FromPoint(1, vec.Vector{1})}
	if err := bad.Validate(); err == nil {
		t.Error("mixed-dimension dataset accepted")
	}
	if err := (Dataset{}).Validate(); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestDatasetAccessors(t *testing.T) {
	a := testObject(0).WithLabel(2)
	b := testObject(1).WithLabel(0)
	ds := Dataset{a, b}
	if ds.Dims() != 3 {
		t.Errorf("Dims = %d", ds.Dims())
	}
	ls := ds.Labels()
	if ls[0] != 2 || ls[1] != 0 {
		t.Errorf("Labels = %v", ls)
	}
	if len(ds.Means()) != 2 {
		t.Error("Means length wrong")
	}
}
