package uncertain

import (
	"fmt"
	"math"

	"ucpc/internal/vec"
)

// Moments is a structure-of-arrays view of a Dataset's closed-form moments:
// the per-dimension expected values µ, raw second moments µ₂, and variances
// σ² of every object, packed into three contiguous row-major float64 slices
// (row i holds object i), plus the scalar total variances σ²(o) of eq. 6.
//
// The clustering hot paths — ÊD evaluations (Lemma 3), ED evaluations
// (eq. 8), the Ψ/Φ/S statistics updates of Corollary 1, and the per-
// iteration assignment loops — only ever need these numbers. Reading them
// from one flat allocation instead of chasing per-object pointers keeps the
// inner loops sequential in memory (hardware-prefetcher friendly) and makes
// the assignment step trivially parallelizable: workers index disjoint row
// ranges of immutable slices.
//
// A Moments view built by MomentsOf is immutable after construction and
// safe for concurrent readers. Objects are immutable too (their moment
// caches are fixed at construction), so a view never goes stale.
//
// A store built by NewMoments is *growable*: Append adds rows and Reset
// drops them while keeping the backing capacity, which is what the
// mini-batch streaming engine (internal/stream) uses to recycle one
// resident window across batches without per-batch allocations. A growable
// store is owned by a single writer; it must not be mutated while another
// goroutine reads it.
type Moments struct {
	n, m     int
	mu       []float64 // n*m, row-major
	mu2      []float64 // n*m, row-major
	sigma2   []float64 // n*m, row-major
	totalVar []float64 // n

	// Precomputed per-object scalars consumed by the incremental relocation
	// scoring engine (internal/core.RelocEngine): with these, a candidate
	// add/remove score needs only one µ(o)·S dot product beyond O(1) work —
	// and none at all when the dot is cached.
	muNorm2 []float64 // n, ‖µ(o_i)‖²
	muNorm  []float64 // n, ‖µ(o_i)‖
	mu2Tot  []float64 // n, Σ_j (µ₂)_j(o_i)
}

// NewMoments returns an empty, growable store for m-dimensional rows.
func NewMoments(m int) *Moments {
	if m <= 0 {
		panic(fmt.Sprintf("uncertain: NewMoments with dim %d", m))
	}
	return &Moments{m: m}
}

// Append packs o's moment vectors as the store's next row and returns that
// row's index. Rows keep their indices for the lifetime of the resident
// window (until Reset); growth is amortized allocation-free once the
// backing capacity has warmed up to the largest window seen.
func (mo *Moments) Append(o *Object) int {
	if o.Dims() != mo.m {
		panic(fmt.Sprintf("uncertain: Append object with dim %d, want %d", o.Dims(), mo.m))
	}
	i := mo.n
	mo.mu = append(mo.mu, o.mu...)
	mo.mu2 = append(mo.mu2, o.mu2...)
	mo.sigma2 = append(mo.sigma2, o.sigma2...)
	mo.totalVar = append(mo.totalVar, o.totalVar)
	nrm2 := vec.SqNormBlock(o.mu)
	var m2t float64
	for j := 0; j < mo.m; j++ {
		m2t += o.mu2[j]
	}
	mo.muNorm2 = append(mo.muNorm2, nrm2)
	mo.muNorm = append(mo.muNorm, math.Sqrt(nrm2))
	mo.mu2Tot = append(mo.mu2Tot, m2t)
	mo.n++
	return i
}

// Reset drops every resident row while keeping the backing capacity, so the
// next window's Appends reuse the same memory.
func (mo *Moments) Reset() {
	mo.n = 0
	mo.mu = mo.mu[:0]
	mo.mu2 = mo.mu2[:0]
	mo.sigma2 = mo.sigma2[:0]
	mo.totalVar = mo.totalVar[:0]
	mo.muNorm2 = mo.muNorm2[:0]
	mo.muNorm = mo.muNorm[:0]
	mo.mu2Tot = mo.mu2Tot[:0]
}

// Bytes returns the resident footprint of the backing arrays (capacity, not
// length) in bytes — the peak-RSS proxy the scale experiment reports for
// the streaming moment store.
func (mo *Moments) Bytes() int64 {
	c := cap(mo.mu) + cap(mo.mu2) + cap(mo.sigma2) +
		cap(mo.totalVar) + cap(mo.muNorm2) + cap(mo.muNorm) + cap(mo.mu2Tot)
	return int64(c) * 8
}

// MomentsOf packs the moment vectors of every object of ds into a fresh
// structure-of-arrays view. Cost: O(n·m) copies, three allocations.
func MomentsOf(ds Dataset) *Moments {
	n := len(ds)
	m := ds.Dims()
	// One backing slab for the three row stores and one for the scalar
	// columns: a view is built on every Cluster call's online path, and a
	// single zeroed allocation faults far fewer fresh pages than seven.
	// Full slice expressions keep the caps disjoint so Bytes() still sums
	// the true footprint.
	rows := make([]float64, 3*n*m)
	scal := make([]float64, 4*n)
	mo := &Moments{
		n:        n,
		m:        m,
		mu:       rows[0 : n*m : n*m],
		mu2:      rows[n*m : 2*n*m : 2*n*m],
		sigma2:   rows[2*n*m : 3*n*m : 3*n*m],
		totalVar: scal[0:n:n],
		muNorm2:  scal[n : 2*n : 2*n],
		muNorm:   scal[2*n : 3*n : 3*n],
		mu2Tot:   scal[3*n : 4*n : 4*n],
	}
	for i, o := range ds {
		if o.Dims() != m {
			panic(fmt.Sprintf("uncertain: MomentsOf object %d has dim %d, want %d", i, o.Dims(), m))
		}
		copy(mo.mu[i*m:(i+1)*m], o.mu)
		copy(mo.mu2[i*m:(i+1)*m], o.mu2)
		copy(mo.sigma2[i*m:(i+1)*m], o.sigma2)
		mo.totalVar[i] = o.totalVar
		nrm2 := vec.SqNormBlock(o.mu)
		var m2t float64
		for j := 0; j < m; j++ {
			m2t += o.mu2[j]
		}
		mo.muNorm2[i] = nrm2
		mo.muNorm[i] = math.Sqrt(nrm2)
		mo.mu2Tot[i] = m2t
	}
	return mo
}

// Len returns the number of objects n.
func (mo *Moments) Len() int { return mo.n }

// Dims returns the dimensionality m.
func (mo *Moments) Dims() int { return mo.m }

// Mu returns object i's expected-value row µ(o_i). The slice aliases the
// store; callers must not modify it.
func (mo *Moments) Mu(i int) []float64 { return mo.mu[i*mo.m : (i+1)*mo.m : (i+1)*mo.m] }

// Mu2 returns object i's second-moment row µ₂(o_i). Shared; do not modify.
func (mo *Moments) Mu2(i int) []float64 { return mo.mu2[i*mo.m : (i+1)*mo.m : (i+1)*mo.m] }

// Sigma2 returns object i's variance row σ²(o_i). Shared; do not modify.
func (mo *Moments) Sigma2(i int) []float64 { return mo.sigma2[i*mo.m : (i+1)*mo.m : (i+1)*mo.m] }

// TotalVar returns the scalar total variance σ²(o_i) = Σ_j (σ²)_j(o_i).
func (mo *Moments) TotalVar(i int) float64 { return mo.totalVar[i] }

// MuNorm2 returns ‖µ(o_i)‖², precomputed at construction.
func (mo *Moments) MuNorm2(i int) float64 { return mo.muNorm2[i] }

// MuNorm returns ‖µ(o_i)‖, precomputed at construction.
func (mo *Moments) MuNorm(i int) float64 { return mo.muNorm[i] }

// Mu2Tot returns the scalar raw second moment Σ_j (µ₂)_j(o_i), precomputed
// at construction.
func (mo *Moments) Mu2Tot(i int) float64 { return mo.mu2Tot[i] }

// MuDot returns the dot product µ(o_i)·y of object i's mean row with an
// arbitrary m-vector (the one O(m) term of the incremental Corollary-1
// scoring; everything else is precomputed scalars). Routed through the
// blocked kernel so every code path accumulates in the same order.
func (mo *Moments) MuDot(i int, y []float64) float64 {
	return vec.DotBlock(mo.mu[i*mo.m:(i+1)*mo.m], y)
}

// EED returns the squared expected distance ÊD(o_i, o_j) of Lemma 3,
// computed entirely from the flat store:
//
//	ÊD = ‖µ(o_i) − µ(o_j)‖² + σ²(o_i) + σ²(o_j)
func (mo *Moments) EED(i, j int) float64 {
	a := mo.mu[i*mo.m : (i+1)*mo.m]
	b := mo.mu[j*mo.m : (j+1)*mo.m]
	return vec.SqDistBlock(a, b) + mo.totalVar[i] + mo.totalVar[j]
}

// ED returns the expected squared distance ED(o_i, y) of eq. 8 to a
// deterministic point y.
func (mo *Moments) ED(i int, y []float64) float64 {
	return vec.SqDistBlock(mo.mu[i*mo.m:(i+1)*mo.m], y) + mo.totalVar[i]
}

// NearestByED returns the index in centers of the point minimizing
// ED(o_i, centers[c]) and that minimal value, breaking ties toward the
// lowest index so the result is order-deterministic.
func (mo *Moments) NearestByED(i int, centers [][]float64) (int, float64) {
	best, bestD := 0, mo.ED(i, centers[0])
	for c := 1; c < len(centers); c++ {
		if d := mo.ED(i, centers[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}
