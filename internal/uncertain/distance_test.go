package uncertain

import (
	"math"
	"testing"

	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/vec"
)

func TestEDClosedFormVsMonteCarlo(t *testing.T) {
	o := testObject(0)
	y := vec.Vector{0.5, 0.5, 0.5}
	exact := ED(o, y)
	mc := EDMonteCarlo(o, y, rng.New(3), 200000)
	if math.Abs(exact-mc) > 0.05*(1+exact) {
		t.Errorf("ED closed form %v vs MC %v", exact, mc)
	}
}

// Verifies the Lee et al. identity (paper eq. 8):
// ED(o, y) = ED(o, µ(o)) + ‖y − µ(o)‖², with ED(o, µ(o)) = σ²(o).
func TestEq8Identity(t *testing.T) {
	o := testObject(0)
	for _, y := range []vec.Vector{{0, 0, 0}, {2, -1, 4}, {-3, 7, 1.5}} {
		lhs := ED(o, y)
		rhs := ED(o, o.Mean()) + vec.SqDist(y, o.Mean())
		if math.Abs(lhs-rhs) > 1e-9*(1+lhs) {
			t.Errorf("eq. 8 violated at %v: %v vs %v", y, lhs, rhs)
		}
		if math.Abs(ED(o, o.Mean())-o.TotalVar()) > 1e-12 {
			t.Errorf("ED(o,µ) = %v, want σ² = %v", ED(o, o.Mean()), o.TotalVar())
		}
	}
}

func TestEEDLemma3Equivalence(t *testing.T) {
	a, b := testObject(0), NewObject(1, []dist.Distribution{
		dist.NewUniformAround(-2, 3),
		dist.NewTruncNormalCentral(4, 1, 0.95),
		dist.NewUniformAround(0, 0.1),
	})
	d1 := EED(a, b)
	d2 := EEDLemma3(a, b)
	if math.Abs(d1-d2) > 1e-9*(1+d1) {
		t.Errorf("EED %v vs Lemma 3 sum %v", d1, d2)
	}
}

func TestEEDVsMonteCarlo(t *testing.T) {
	a, b := testObject(0), testObject(1)
	exact := EED(a, b)
	mc := EEDMonteCarlo(a, b, rng.New(9), 200000)
	if math.Abs(exact-mc) > 0.05*(1+exact) {
		t.Errorf("EED closed form %v vs MC %v", exact, mc)
	}
}

func TestEEDSymmetricAndSelf(t *testing.T) {
	a, b := testObject(0), testObject(1)
	if EED(a, b) != EED(b, a) {
		t.Error("EED not symmetric")
	}
	// ÊD(o,o) = 2σ²(o): the expected squared distance between two
	// independent realizations of the same object.
	if math.Abs(EED(a, a)-2*a.TotalVar()) > 1e-12 {
		t.Errorf("EED(o,o) = %v, want %v", EED(a, a), 2*a.TotalVar())
	}
}

func TestEEDDeterministicReducesToSqDist(t *testing.T) {
	a := FromPoint(0, vec.Vector{1, 2})
	b := FromPoint(1, vec.Vector{4, 6})
	if d := EED(a, b); d != 25 {
		t.Errorf("EED between points = %v, want 25", d)
	}
}

func TestEDSampledApproximatesClosedForm(t *testing.T) {
	o := testObject(0)
	o.EnsureSamples(rng.New(21), 20000)
	y := vec.Vector{1, 1, 1}
	approx := EDSampled(o, y, SqEuclidean)
	exact := ED(o, y)
	if math.Abs(approx-exact) > 0.05*(1+exact) {
		t.Errorf("EDSampled %v vs exact %v", approx, exact)
	}
}

func TestEDSampledEuclideanMetric(t *testing.T) {
	// With the plain (non-squared) Euclidean metric there is no closed
	// form; check against an independent MC estimate.
	o := testObject(0)
	o.EnsureSamples(rng.New(22), 20000)
	y := vec.Vector{0, 0, 0}
	approx := EDSampled(o, y, Euclidean)
	r := rng.New(23)
	var mc float64
	const n = 50000
	for i := 0; i < n; i++ {
		mc += vec.Dist(o.Sample(r), y)
	}
	mc /= n
	if math.Abs(approx-mc) > 0.05*(1+mc) {
		t.Errorf("EDSampled(Euclidean) %v vs MC %v", approx, mc)
	}
}

func TestEDSampledWithoutCloudPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without sample cloud")
		}
	}()
	EDSampled(testObject(0), vec.Vector{0, 0, 0}, SqEuclidean)
}

func TestEEDSampledApproximatesClosedForm(t *testing.T) {
	a, b := testObject(0), testObject(1)
	a.EnsureSamples(rng.New(31), 300)
	b.EnsureSamples(rng.New(32), 300)
	approx := EEDSampled(a, b)
	exact := EED(a, b)
	if math.Abs(approx-exact) > 0.1*(1+exact) {
		t.Errorf("EEDSampled %v vs exact %v", approx, exact)
	}
}

func TestDistProbabilityExtremes(t *testing.T) {
	a := FromPoint(0, vec.Vector{0, 0})
	b := FromPoint(1, vec.Vector{3, 4})
	a.EnsureSamples(rng.New(1), 100)
	b.EnsureSamples(rng.New(2), 100)
	if p := DistProbability(a, b, 5.0, true); p != 1 {
		t.Errorf("P(d<=5) = %v, want 1 (distance is exactly 5)", p)
	}
	if p := DistProbability(a, b, 4.9, true); p != 0 {
		t.Errorf("P(d<=4.9) = %v, want 0", p)
	}
	if p := DistProbability(a, b, 5.0, false); p != 1 {
		t.Errorf("paired estimator P(d<=5) = %v, want 1", p)
	}
}

func TestDistProbabilityMonotoneInEps(t *testing.T) {
	a, b := testObject(0), testObject(1)
	a.EnsureSamples(rng.New(41), 400)
	b.EnsureSamples(rng.New(42), 400)
	prev := 0.0
	for _, eps := range []float64{0.1, 0.5, 1, 2, 4, 8, 16} {
		p := DistProbability(a, b, eps, true)
		if p < prev {
			t.Fatalf("P(d<=%v) = %v < previous %v", eps, p, prev)
		}
		prev = p
	}
	if prev != 1 {
		t.Errorf("P at large eps = %v, want 1", prev)
	}
}

func TestMaxPairwiseEED(t *testing.T) {
	ds := Dataset{
		FromPoint(0, vec.Vector{0, 0}),
		FromPoint(1, vec.Vector{1, 0}),
		FromPoint(2, vec.Vector{10, 0}),
	}
	if m := MaxPairwiseEED(ds, 0); m != 100 {
		t.Errorf("max pairwise EED = %v, want 100", m)
	}
	// With subsampling the value is still positive and bounded by the max.
	if m := MaxPairwiseEED(ds, 2); m <= 0 || m > 100 {
		t.Errorf("subsampled max = %v", m)
	}
}

func TestNearestByEED(t *testing.T) {
	o := FromPoint(0, vec.Vector{0, 0})
	centers := []*Object{
		FromPoint(1, vec.Vector{5, 0}),
		FromPoint(2, vec.Vector{1, 1}),
		FromPoint(3, vec.Vector{-4, 4}),
	}
	i, d := NearestByEED(o, centers)
	if i != 1 || d != 2 {
		t.Errorf("NearestByEED = (%d, %v), want (1, 2)", i, d)
	}
}
