package clustering

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a fresh, stateless-across-runs algorithm instance wired to
// the shared Config. Every registered method consumes the Config fields it
// understands (Workers, Pruning, MaxIter, Progress) and ignores the rest;
// Seed is consumed by the caller, which turns it into the *rng.RNG handed
// to Cluster.
type Factory func(cfg Config) Algorithm

// Prototype classifies how a fitted model of the algorithm represents its
// clusters for out-of-sample assignment (Model.Assign in the public API).
// All kinds score a fresh object o against cluster c with the same rule,
//
//	score(o, c) = ‖µ(o) − mean_c‖² + add_c  (+ σ²(o), constant in c),
//
// through the exact pruned assignment engine; the kind only determines how
// (mean_c, add_c) are frozen from the training partition.
type Prototype int

const (
	// ProtoUCentroid freezes the paper's U-centroid per cluster:
	// mean_c = |C|⁻¹Σµ(o), add_c = σ²(C̄_c) = |C|⁻²Σσ²(o) (Theorem 2),
	// so score(o,c) recovers ÊD(o, C̄_c) up to the constant σ²(o).
	ProtoUCentroid Prototype = iota
	// ProtoMean freezes the UK-means centroid point (eq. 7): mean_c is
	// the cluster mean, add_c = 0, so score(o,c) recovers ED(o, y_c) up
	// to the constant σ²(o).
	ProtoMean
	// ProtoMixture freezes the MMVar mixture-model centroid (Lemma 2):
	// mean_c = |C|⁻¹Σµ(o), add_c = σ²(C_MM), so score(o,c) recovers
	// ÊD(o, C_MM) up to the constant σ²(o).
	ProtoMixture
	// ProtoMedoid freezes the final medoid object of each cluster:
	// mean_c = µ(medoid_c), add_c = σ²(medoid_c), so score(o,c) recovers
	// ÊD(o, medoid_c) up to the constant σ²(o). Requires Report.Medoids.
	ProtoMedoid
)

// Registration describes one clustering method to the registry.
type Registration struct {
	// Name is the method's paper abbreviation ("UCPC", "UKM", ...). It is
	// the key accepted by NewAlgorithm and listed by AlgorithmNames.
	Name string
	// Rank orders AlgorithmNames (the paper's lineup order). Ties break
	// by name.
	Rank int
	// Prototype selects the frozen-centroid representation used for
	// out-of-sample assignment.
	Prototype Prototype
	// KIsHint marks the density-based methods for which k only calibrates
	// parameters (the cluster count is data-driven): validation then
	// requires k >= 1 but not k <= n.
	KIsHint bool
	// New constructs a fresh instance wired to a Config.
	New Factory
}

var registry = struct {
	sync.RWMutex
	byName map[string]Registration
}{byName: make(map[string]Registration)}

// Register records a clustering method. Each algorithm package registers
// itself from an init function, so the set of valid names and the set of
// constructable methods cannot drift apart. Register panics on an empty
// name, a nil factory, or a duplicate name — all programmer errors that
// must fail at process start, not at first use.
func Register(reg Registration) {
	if reg.Name == "" {
		panic("clustering: Register with empty name")
	}
	if reg.New == nil {
		panic(fmt.Sprintf("clustering: Register(%q) with nil factory", reg.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[reg.Name]; dup {
		panic(fmt.Sprintf("clustering: Register(%q) called twice", reg.Name))
	}
	registry.byName[reg.Name] = reg
}

// Lookup returns the registration for name. The empty name resolves to
// "UCPC", the paper's contribution and the library default.
func Lookup(name string) (Registration, bool) {
	if name == "" {
		name = "UCPC"
	}
	registry.RLock()
	defer registry.RUnlock()
	reg, ok := registry.byName[name]
	return reg, ok
}

// NewAlgorithm instantiates a registered method by its paper abbreviation
// ("" means "UCPC"), wiring cfg through the method's constructor.
func NewAlgorithm(name string, cfg Config) (Algorithm, error) {
	reg, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("clustering: unknown algorithm %q (valid: %v)", name, AlgorithmNames())
	}
	return reg.New(cfg), nil
}

// AlgorithmNames lists every registered method, ordered by Registration
// rank (the paper's lineup order). Exactly the names NewAlgorithm accepts.
func AlgorithmNames() []string {
	registry.RLock()
	regs := make([]Registration, 0, len(registry.byName))
	for _, reg := range registry.byName {
		regs = append(regs, reg)
	}
	registry.RUnlock()
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Rank != regs[j].Rank {
			return regs[i].Rank < regs[j].Rank
		}
		return regs[i].Name < regs[j].Name
	})
	names := make([]string, len(regs))
	for i, reg := range regs {
		names[i] = reg.Name
	}
	return names
}
