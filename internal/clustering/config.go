package clustering

import (
	"context"
	"fmt"
	"math"
)

// DefaultSeed is the seed used by every entry point when the caller leaves
// Config.Seed (or Options.Seed) at its zero value. Seed 0 itself is not a
// valid run seed — the deterministic RNG reserves it — so the zero value of
// a configuration explicitly means "use DefaultSeed". The cmd/ binaries
// default their -seed flags to this same constant, so a flagless CLI run
// and a zero-valued library run are the same run.
const DefaultSeed uint64 = 1

// Config is the run configuration shared by every clustering algorithm. It
// is threaded through each algorithm's registered constructor (see
// Register), so a single Config value has one meaning for every method —
// there is no per-algorithm field mapping to get wrong.
type Config struct {
	// Workers sizes the worker pool of the parallel phases (assignment
	// steps, distance-matrix builds). 0 means one worker per CPU
	// (GOMAXPROCS). Parallel phases only cover order-independent work, so
	// for a fixed Seed the resulting Partition is identical for every
	// Workers value.
	Workers int
	// Pruning toggles the exact bound-based pruning engine in the
	// assignment and relocation hot loops (default PruneAuto = on).
	// Pruning is provably exact: the partition is identical either way.
	Pruning PruneMode
	// MaxIter caps the iterations of iterative methods (0 = per-method
	// default, typically 100).
	MaxIter int
	// Seed drives all of the run's randomness. 0 means DefaultSeed; every
	// other value is used verbatim.
	Seed uint64
	// Progress, when non-nil, is invoked after every outer iteration of
	// the iterative methods with the pass index, the current objective
	// value (NaN where the method defines none), and the number of objects
	// that changed cluster during the pass. The callback runs on the
	// clustering goroutine: keep it cheap, and do not retain the event's
	// slices (there are none) or call back into the model.
	Progress ProgressFunc
}

// Validate checks the configuration for values no run could mean: negative
// counts and unknown enum values. Zero values are always valid (they mean
// "default"). Violations return a wrapped ErrBadConfig naming the field;
// every fitting entry point calls this before touching data.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("clustering: negative Workers %d: %w", c.Workers, ErrBadConfig)
	}
	if c.MaxIter < 0 {
		return fmt.Errorf("clustering: negative MaxIter %d: %w", c.MaxIter, ErrBadConfig)
	}
	if c.Pruning < PruneAuto || c.Pruning > PruneOff {
		return fmt.Errorf("clustering: unknown Pruning mode %d: %w", c.Pruning, ErrBadConfig)
	}
	return nil
}

// SeedOrDefault resolves Config.Seed: 0 means DefaultSeed.
func (c Config) SeedOrDefault() uint64 {
	if c.Seed == 0 {
		return DefaultSeed
	}
	return c.Seed
}

// StreamConfig configures the mini-batch streaming engine behind
// ucpc.StreamClusterer. Like Config, one StreamConfig value has a single
// meaning everywhere it is threaded.
type StreamConfig struct {
	// BatchSize is the mini-batch chunk size Observe splits its input
	// into (default 4096). Each chunk is scored against the current
	// centroids as one unit and then folded into the per-cluster
	// statistics.
	BatchSize int
	// Decay is the per-batch exponential forgetting rate in [0, 1):
	// before a batch is folded in, every cluster's sufficient statistics
	// are scaled by (1 − Decay). 0 means no forgetting — centroids
	// converge to the cumulative weighted mean, the classic mini-batch
	// k-means 1/n_c learning-rate schedule. Positive values bound the
	// effective memory to about 1/Decay batches, letting centroids track
	// drifting streams at the cost of extra variance.
	Decay float64
	// MaxBatches caps the number of mini-batches a stream fit ingests
	// over its lifetime (0 = unlimited). Once the cap is reached, Observe
	// rejects further input with a wrapped ErrStreamBudget.
	MaxBatches int
	// Workers sizes the per-batch assignment worker pool (0 = one worker
	// per CPU). As with Config.Workers, parallel phases cover only
	// order-independent work, so the fitted centroids are identical for
	// every worker count. The zero-allocation steady-state guarantee of
	// Observe holds for Workers = 1 (the pool spawn itself allocates).
	Workers int
	// Pruning toggles the exact bound-based first-pass pruning of the
	// per-batch assignment scans (default on; results identical either
	// way).
	Pruning PruneMode
	// Seed drives the k-means++ seeding of the initial centroids
	// (0 = DefaultSeed).
	Seed uint64
}

// Validate checks the streaming configuration: a negative BatchSize,
// MaxBatches, or Workers, an unknown Pruning mode, or a Decay outside
// [0, 1) returns a wrapped ErrBadConfig naming the field. Zero values are
// always valid (they mean "default").
func (c StreamConfig) Validate() error {
	if c.BatchSize < 0 {
		return fmt.Errorf("clustering: negative BatchSize %d: %w", c.BatchSize, ErrBadConfig)
	}
	if c.Decay < 0 || c.Decay >= 1 || math.IsNaN(c.Decay) {
		return fmt.Errorf("clustering: Decay %v outside [0, 1): %w", c.Decay, ErrBadConfig)
	}
	if c.MaxBatches < 0 {
		return fmt.Errorf("clustering: negative MaxBatches %d: %w", c.MaxBatches, ErrBadConfig)
	}
	if c.Workers < 0 {
		return fmt.Errorf("clustering: negative Workers %d: %w", c.Workers, ErrBadConfig)
	}
	if c.Pruning < PruneAuto || c.Pruning > PruneOff {
		return fmt.Errorf("clustering: unknown Pruning mode %d: %w", c.Pruning, ErrBadConfig)
	}
	return nil
}

// BatchSizeOrDefault resolves BatchSize: 0 means 4096.
func (c StreamConfig) BatchSizeOrDefault() int {
	if c.BatchSize <= 0 {
		return 4096
	}
	return c.BatchSize
}

// SeedOrDefault resolves Seed: 0 means DefaultSeed.
func (c StreamConfig) SeedOrDefault() uint64 {
	if c.Seed == 0 {
		return DefaultSeed
	}
	return c.Seed
}

// ProgressEvent is one per-iteration report of an iterative algorithm.
type ProgressEvent struct {
	// Algorithm is the reporting method's short name (e.g. "UCPC").
	Algorithm string
	// Iteration is the 1-based outer iteration (pass) index.
	Iteration int
	// Objective is the algorithm's own objective after the pass (NaN when
	// the method defines none, e.g. the sample-based basic UK-means).
	Objective float64
	// Moves is the number of objects that changed cluster during the pass.
	Moves int
}

// ProgressFunc observes per-iteration progress; see Config.Progress.
type ProgressFunc func(ProgressEvent)

// Emit invokes the callback if it is non-nil.
func (f ProgressFunc) Emit(algorithm string, iteration int, objective float64, moves int) {
	if f != nil {
		f(ProgressEvent{Algorithm: algorithm, Iteration: iteration, Objective: objective, Moves: moves})
	}
}

// Ctx normalizes a caller-supplied context: nil means context.Background(),
// so algorithm loops can check ctx.Err() unconditionally.
func Ctx(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}
