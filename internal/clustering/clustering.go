// Package clustering provides the machinery shared by all uncertain-data
// clustering algorithms in this repository: partition representation,
// initialization strategies, the common Algorithm interface consumed by the
// experiment harness, and run reports with the operation counters used to
// interpret the efficiency experiments (paper §5.2.2).
package clustering

import (
	"context"
	"fmt"
	"time"

	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// Noise is the assignment value used by density-based algorithms for
// objects not belonging to any cluster.
const Noise = -1

// Partition maps each object index to a cluster id in [0, K) (or Noise).
type Partition struct {
	K      int
	Assign []int
}

// NewPartition returns a partition of n objects with all assignments unset
// (Noise).
func NewPartition(n, k int) Partition {
	a := make([]int, n)
	for i := range a {
		a[i] = Noise
	}
	return Partition{K: k, Assign: a}
}

// Members returns the object indexes of each cluster. Noise objects are
// omitted.
func (p Partition) Members() [][]int {
	ms := make([][]int, p.K)
	for i, c := range p.Assign {
		if c >= 0 && c < p.K {
			ms[c] = append(ms[c], i)
		}
	}
	return ms
}

// Sizes returns the cardinality of each cluster.
func (p Partition) Sizes() []int {
	s := make([]int, p.K)
	for _, c := range p.Assign {
		if c >= 0 && c < p.K {
			s[c]++
		}
	}
	return s
}

// NoiseCount returns the number of unassigned (noise) objects.
func (p Partition) NoiseCount() int {
	n := 0
	for _, c := range p.Assign {
		if c == Noise {
			n++
		}
	}
	return n
}

// NonEmpty reports whether every cluster has at least one member.
func (p Partition) NonEmpty() bool {
	for _, s := range p.Sizes() {
		if s == 0 {
			return false
		}
	}
	return true
}

// Validate checks structural consistency.
func (p Partition) Validate() error {
	for i, c := range p.Assign {
		if c != Noise && (c < 0 || c >= p.K) {
			return fmt.Errorf("clustering: object %d assigned to invalid cluster %d (k=%d)", i, c, p.K)
		}
	}
	return nil
}

// Report is the outcome of one clustering run. Besides the partition it
// carries the counters needed by the efficiency/scalability experiments:
// wall-clock time of the online phase, iteration count, and the number of
// expensive expected-distance computations (the quantity the pruning
// methods MinMax-BB/VDBiP reduce).
type Report struct {
	Partition Partition
	// Objective is the final value of the algorithm's own objective
	// function (meaning differs per algorithm; NaN when undefined).
	Objective float64
	// Iterations is the number of outer iterations to convergence (I in
	// the paper's complexity formulas).
	Iterations int
	// Converged reports whether the algorithm reached its fixed point
	// before hitting the iteration cap.
	Converged bool
	// Online is the clustering time excluding any off-line precomputation
	// (the paper's Figure 4 methodology discards pruning-structure and
	// distance pre-computation times).
	Online time.Duration
	// Offline is the precomputation time (sample-cloud generation,
	// pairwise distance matrices, pruning structures).
	Offline time.Duration
	// EDComputations counts expensive expected-distance evaluations
	// performed online (sample-based integrals for bUKM and pruning
	// variants; pairwise ÊD lookups count as zero).
	EDComputations int64
	// PrunedCandidates counts candidate (object, centroid) pairs skipped
	// thanks to pruning.
	PrunedCandidates int64
	// ScannedCandidates counts candidate (object, centroid) pairs whose
	// distance (or objective delta) was actually evaluated. Together with
	// PrunedCandidates it yields the prune hit rate
	// PrunedCandidates / (PrunedCandidates + ScannedCandidates).
	ScannedCandidates int64
	// Medoids, for medoid-based methods, holds the dataset index of the
	// object representing each cluster at termination (nil for every other
	// method). These are the frozen prototypes a fitted model scores new
	// objects against.
	Medoids []int
}

// PrunedFraction returns the fraction of candidate pairs eliminated by the
// pruning engine, in [0, 1]; 0 when no candidates were counted.
func (r *Report) PrunedFraction() float64 {
	total := r.PrunedCandidates + r.ScannedCandidates
	if total == 0 {
		return 0
	}
	return float64(r.PrunedCandidates) / float64(total)
}

// Algorithm is a complete uncertain-data clustering method. Implementations
// must be safe for repeated Cluster calls; each call uses r for all of its
// randomness so runs are reproducible.
type Algorithm interface {
	// Name returns the short name used in experiment tables (e.g. "UCPC").
	Name() string
	// Cluster partitions ds into k groups. Density-based algorithms may
	// produce a different number of clusters and noise; k is then only a
	// hint used for parameter calibration.
	//
	// Iterative methods check ctx between iterations (and inside long
	// sweeps) and return ctx.Err() promptly after cancellation; a nil ctx
	// means context.Background(). Cancellation never corrupts state — the
	// run simply ends with the context's error instead of a Report.
	Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*Report, error)
}

// WarmStarter is implemented by the iterative methods that can resume from
// a caller-supplied initial assignment instead of their own initialization
// (the public API's FitFrom). init must satisfy ValidateInit; clusters left
// empty by init are repaired deterministically from r before iterating.
type WarmStarter interface {
	Algorithm
	ClusterFrom(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*Report, error)
}

// RandomPartition assigns each object to a uniform random cluster while
// guaranteeing that every cluster receives at least one object (the paper's
// Algorithm 1 starts from "an initial partition ... e.g., a random
// partition"). It panics if k > n or k <= 0.
func RandomPartition(n, k int, r *rng.RNG) []int {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("clustering: cannot split %d objects into %d clusters", n, k))
	}
	assign := make([]int, n)
	perm := r.Perm(n)
	// One seed object per cluster, remainder uniform.
	for c := 0; c < k; c++ {
		assign[perm[c]] = c
	}
	for i := k; i < n; i++ {
		assign[perm[i]] = r.Intn(k)
	}
	return assign
}

// RepairEmpty reassigns one random object into each empty cluster so every
// cluster is non-empty (donors are taken from clusters with >1 member).
// Used after k-means++ seeding and before warm-started relocation sweeps,
// which both require complete partitions. Requires k <= n.
func RepairEmpty(assign []int, k int, r *rng.RNG) []int {
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	for c := 0; c < k; c++ {
		for sizes[c] == 0 {
			i := r.Intn(len(assign))
			from := assign[i]
			if sizes[from] <= 1 {
				continue
			}
			sizes[from]--
			assign[i] = c
			sizes[c]++
		}
	}
	return assign
}

// KMeansPPCenters selects k initial centers among the objects' expected
// values with the k-means++ D² weighting, computed on ÊD so that object
// variance participates in seeding. Returns the chosen object indexes.
func KMeansPPCenters(ds uncertain.Dataset, k int, r *rng.RNG) []int {
	n := len(ds)
	if k <= 0 || k > n {
		panic(fmt.Sprintf("clustering: cannot pick %d centers from %d objects", k, n))
	}
	centers := make([]int, 0, k)
	first := r.Intn(n)
	centers = append(centers, first)
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = uncertain.EED(ds[i], ds[first])
	}
	for len(centers) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total <= 0 {
			// All remaining objects coincide with a center; pick uniformly.
			next = r.Intn(n)
		} else {
			target := r.Float64() * total
			acc := 0.0
			next = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		centers = append(centers, next)
		for i := range d2 {
			if d := uncertain.EED(ds[i], ds[next]); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

// AssignToNearestMeans returns, for each object, the index of the nearest
// center point by expected squared distance ED (closed form). centers are
// deterministic points.
func AssignToNearestMeans(ds uncertain.Dataset, centers []vec.Vector) []int {
	assign := make([]int, len(ds))
	for i, o := range ds {
		best, bestD := 0, uncertain.ED(o, centers[0])
		for c := 1; c < len(centers); c++ {
			if d := uncertain.ED(o, centers[c]); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	return assign
}

// MeansOf returns the centroid points (averages of expected values, the
// UK-means centroid of eq. 7) of each cluster of the partition. Empty
// clusters get a copy of the global mean.
func MeansOf(ds uncertain.Dataset, assign []int, k int) []vec.Vector {
	m := ds.Dims()
	centers := make([]vec.Vector, k)
	for c := range centers {
		centers[c] = vec.New(m)
	}
	meansInto(len(ds), func(i int) vec.Vector { return ds[i].Mean() }, assign, centers)
	return centers
}

// MeansOfMoments fills centers (k pre-allocated m-vectors, reusable across
// iterations) with the eq. 7 centroids read from the flat moment store.
// Same empty-cluster policy as MeansOf: a copy of the global mean.
func MeansOfMoments(mom *uncertain.Moments, assign []int, centers []vec.Vector) {
	meansInto(mom.Len(), mom.Mu, assign, centers)
}

// meansInto is the shared centroid-refresh policy behind MeansOf and
// MeansOfMoments: per-cluster averages of the µ rows served by mu, noise
// assignments (< 0) skipped, empty clusters set to the global mean of all
// n rows.
func meansInto(n int, mu func(i int) vec.Vector, assign []int, centers []vec.Vector) {
	counts := make([]int, len(centers))
	for c := range centers {
		for j := range centers[c] {
			centers[c][j] = 0
		}
	}
	for i := 0; i < n; i++ {
		c := assign[i]
		if c < 0 {
			continue
		}
		vec.AddInPlace(centers[c], mu(i))
		counts[c]++
	}
	var global vec.Vector
	for c := range centers {
		if counts[c] == 0 {
			if global == nil {
				global = vec.New(len(centers[c]))
				for i := 0; i < n; i++ {
					vec.AddInPlace(global, mu(i))
				}
				vec.ScaleInPlace(global, 1/float64(n))
			}
			copy(centers[c], global)
			continue
		}
		vec.ScaleInPlace(centers[c], 1/float64(counts[c]))
	}
}
