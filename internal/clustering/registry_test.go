package clustering

import (
	"context"
	"strings"
	"testing"

	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

type stubAlg struct{ name string }

func (s *stubAlg) Name() string { return s.name }
func (s *stubAlg) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*Report, error) {
	return &Report{Partition: NewPartition(len(ds), k)}, nil
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want message containing %q", r, want)
		}
	}()
	fn()
}

func TestRegisterValidation(t *testing.T) {
	factory := func(cfg Config) Algorithm { return &stubAlg{name: "stub-a"} }
	mustPanic(t, "empty name", func() { Register(Registration{New: factory}) })
	mustPanic(t, "nil factory", func() { Register(Registration{Name: "stub-nilfactory"}) })

	Register(Registration{Name: "stub-a", Rank: 9000, New: factory})
	mustPanic(t, "called twice", func() { Register(Registration{Name: "stub-a", Rank: 9001, New: factory}) })

	reg, ok := Lookup("stub-a")
	if !ok || reg.Rank != 9000 {
		t.Fatalf("Lookup(stub-a) = %+v, %v", reg, ok)
	}
	alg, err := NewAlgorithm("stub-a", Config{})
	if err != nil || alg.Name() != "stub-a" {
		t.Fatalf("NewAlgorithm(stub-a) = %v, %v", alg, err)
	}
	if _, err := NewAlgorithm("stub-unknown", Config{}); err == nil {
		t.Fatal("NewAlgorithm accepted an unregistered name")
	}

	// The stub (rank 9000) must sort last in the name list.
	names := AlgorithmNames()
	if names[len(names)-1] != "stub-a" {
		t.Fatalf("AlgorithmNames() = %v: rank ordering broken", names)
	}
}

func TestConfigSeedOrDefault(t *testing.T) {
	if got := (Config{}).SeedOrDefault(); got != DefaultSeed {
		t.Fatalf("zero Config seed resolves to %d, want DefaultSeed=%d", got, DefaultSeed)
	}
	if got := (Config{Seed: 77}).SeedOrDefault(); got != 77 {
		t.Fatalf("explicit seed resolves to %d, want 77", got)
	}
}

func TestProgressEmitNilSafe(t *testing.T) {
	var f ProgressFunc
	f.Emit("X", 1, 0, 0) // must not panic
	var got ProgressEvent
	f = func(ev ProgressEvent) { got = ev }
	f.Emit("UCPC", 3, 1.5, 7)
	want := ProgressEvent{Algorithm: "UCPC", Iteration: 3, Objective: 1.5, Moves: 7}
	if got != want {
		t.Fatalf("Emit delivered %+v, want %+v", got, want)
	}
}
