package clustering

// PruneMode selects whether an algorithm's assignment loops use the exact
// bound-based pruning engine (internal/core's Assigner, the RelocEngine's
// candidate bounds, and internal/ukmedoids' closed-form medoid filter).
//
// Pruning is *exact*: every skip is justified by a proven lower bound on the
// candidate's distance (or objective delta), so for a fixed seed the
// partition produced with pruning enabled is identical to the one produced
// with pruning disabled — only the amount of arithmetic differs. The
// cross-check tests assert this for every algorithm.
type PruneMode int

const (
	// PruneAuto is the zero value and means "pruning on" — the engine is
	// the default because it never changes results.
	PruneAuto PruneMode = iota
	// PruneOn forces pruning on (same behavior as PruneAuto; the explicit
	// value exists so configurations can be stated positively).
	PruneOn
	// PruneOff disables every bound test; all candidate distances are
	// evaluated. Used by the exactness cross-checks and for bound-free
	// baseline measurements.
	PruneOff
)

// Enabled reports whether the mode activates the pruning engine.
func (p PruneMode) Enabled() bool { return p != PruneOff }

// String implements fmt.Stringer for reports and JSON output.
func (p PruneMode) String() string {
	switch p {
	case PruneOff:
		return "off"
	case PruneOn:
		return "on"
	default:
		return "auto"
	}
}
