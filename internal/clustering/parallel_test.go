package clustering

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if w := Workers(3); w != 3 {
		t.Errorf("Workers(3) = %d", w)
	}
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := Workers(-5); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d", w)
	}
}

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		ParallelFor(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestParallelForDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 512
	run := func(workers int) []float64 {
		out := make([]float64, n)
		ParallelFor(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = float64(i) * 1.5
			}
		})
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, 13} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d differs at %d", workers, i)
			}
		}
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	called := false
	ParallelFor(0, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("body invoked for n=0")
	}
	sum := int32(0)
	ParallelFor(2, 16, func(lo, hi int) { atomic.AddInt32(&sum, int32(hi-lo)) })
	if sum != 2 {
		t.Errorf("n=2 covered %d indexes", sum)
	}
}

func TestParallelAny(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if ParallelAny(100, workers, func(lo, hi int) bool { return false }) {
			t.Errorf("workers=%d: all-false reduced to true", workers)
		}
		if !ParallelAny(100, workers, func(lo, hi int) bool { return lo <= 42 && 42 < hi }) {
			t.Errorf("workers=%d: single true lost", workers)
		}
	}
}
