package clustering

import (
	"testing"

	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

func testDataset(r *rng.RNG, n, m int) uncertain.Dataset {
	ds := make(uncertain.Dataset, n)
	for i := range ds {
		ms := make([]dist.Distribution, m)
		for j := range ms {
			ms[j] = dist.NewUniformAround(r.Uniform(-5, 5), 0.5)
		}
		ds[i] = uncertain.NewObject(i, ms)
	}
	return ds
}

func TestRandomPartitionNonEmpty(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(50)
		k := 1 + r.Intn(n)
		assign := RandomPartition(n, k, r)
		if len(assign) != n {
			t.Fatalf("len = %d, want %d", len(assign), n)
		}
		sizes := make([]int, k)
		for _, c := range assign {
			if c < 0 || c >= k {
				t.Fatalf("assignment %d out of range", c)
			}
			sizes[c]++
		}
		for c, s := range sizes {
			if s == 0 {
				t.Fatalf("trial %d: cluster %d empty (n=%d k=%d)", trial, c, n, k)
			}
		}
	}
}

func TestRandomPartitionPanics(t *testing.T) {
	r := rng.New(2)
	for _, bad := range [][2]int{{5, 0}, {5, 6}, {0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RandomPartition(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			RandomPartition(bad[0], bad[1], r)
		}()
	}
}

func TestKMeansPPCentersDistinctAndSpread(t *testing.T) {
	r := rng.New(3)
	// Two far groups: k-means++ must pick seeds from both.
	var ds uncertain.Dataset
	for i := 0; i < 10; i++ {
		ds = append(ds, uncertain.FromPoint(i, vec.Vector{float64(i % 2 * 100), 0}))
	}
	picked := KMeansPPCenters(ds, 2, r)
	if len(picked) != 2 {
		t.Fatalf("%d centers", len(picked))
	}
	if ds[picked[0]].Mean()[0] == ds[picked[1]].Mean()[0] {
		t.Error("k-means++ picked both seeds from the same group")
	}
}

func TestKMeansPPCentersDegenerate(t *testing.T) {
	r := rng.New(4)
	// All objects identical: seeding must still return k centers.
	var ds uncertain.Dataset
	for i := 0; i < 5; i++ {
		ds = append(ds, uncertain.FromPoint(i, vec.Vector{1, 1}))
	}
	picked := KMeansPPCenters(ds, 3, r)
	if len(picked) != 3 {
		t.Fatalf("%d centers on degenerate data", len(picked))
	}
}

func TestAssignToNearestMeans(t *testing.T) {
	ds := uncertain.Dataset{
		uncertain.FromPoint(0, vec.Vector{0, 0}),
		uncertain.FromPoint(1, vec.Vector{10, 10}),
		uncertain.FromPoint(2, vec.Vector{1, 1}),
	}
	centers := []vec.Vector{{0, 0}, {10, 10}}
	assign := AssignToNearestMeans(ds, centers)
	want := []int{0, 1, 0}
	for i := range want {
		if assign[i] != want[i] {
			t.Errorf("assign[%d] = %d, want %d", i, assign[i], want[i])
		}
	}
}

func TestMeansOf(t *testing.T) {
	ds := uncertain.Dataset{
		uncertain.FromPoint(0, vec.Vector{0, 0}),
		uncertain.FromPoint(1, vec.Vector{2, 2}),
		uncertain.FromPoint(2, vec.Vector{10, 0}),
	}
	means := MeansOf(ds, []int{0, 0, 1}, 2)
	if !vec.Equal(means[0], vec.Vector{1, 1}) {
		t.Errorf("cluster 0 mean %v", means[0])
	}
	if !vec.Equal(means[1], vec.Vector{10, 0}) {
		t.Errorf("cluster 1 mean %v", means[1])
	}
}

func TestMeansOfEmptyClusterGetsGlobalMean(t *testing.T) {
	ds := uncertain.Dataset{
		uncertain.FromPoint(0, vec.Vector{0, 0}),
		uncertain.FromPoint(1, vec.Vector{4, 4}),
	}
	means := MeansOf(ds, []int{0, 0}, 2)
	if !vec.Equal(means[1], vec.Vector{2, 2}) {
		t.Errorf("empty cluster mean %v, want global mean (2,2)", means[1])
	}
}

func TestMeansOfIgnoresNoise(t *testing.T) {
	ds := uncertain.Dataset{
		uncertain.FromPoint(0, vec.Vector{0, 0}),
		uncertain.FromPoint(1, vec.Vector{2, 2}),
		uncertain.FromPoint(2, vec.Vector{100, 100}),
	}
	means := MeansOf(ds, []int{0, 0, Noise}, 1)
	if !vec.Equal(means[0], vec.Vector{1, 1}) {
		t.Errorf("noise leaked into mean: %v", means[0])
	}
}

func TestPartitionAccessors(t *testing.T) {
	p := Partition{K: 3, Assign: []int{0, 1, 1, Noise, 2}}
	sizes := p.Sizes()
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 1 {
		t.Errorf("Sizes = %v", sizes)
	}
	if p.NoiseCount() != 1 {
		t.Errorf("NoiseCount = %d", p.NoiseCount())
	}
	if !p.NonEmpty() {
		t.Error("NonEmpty = false")
	}
	members := p.Members()
	if len(members[1]) != 2 || members[1][0] != 1 || members[1][1] != 2 {
		t.Errorf("Members[1] = %v", members[1])
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	bad := Partition{K: 2, Assign: []int{0, 5}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid assignment accepted")
	}
}

func TestNewPartitionAllNoise(t *testing.T) {
	p := NewPartition(4, 2)
	if p.NoiseCount() != 4 {
		t.Errorf("NoiseCount = %d", p.NoiseCount())
	}
	if p.NonEmpty() {
		t.Error("empty partition reported non-empty")
	}
}

func TestKMeansPPSeedsNearEDAssignments(t *testing.T) {
	r := rng.New(9)
	ds := testDataset(r, 30, 3)
	idx := KMeansPPCenters(ds, 4, r)
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= len(ds) {
			t.Fatalf("seed index %d out of range", i)
		}
		seen[i] = true
	}
	if len(seen) < 2 {
		t.Error("seeding collapsed onto one object")
	}
}
