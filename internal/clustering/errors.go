package clustering

import (
	"errors"
	"fmt"
)

// ErrBadK marks a cluster count outside [1, n]. Every algorithm validates k
// up front and wraps this sentinel, so callers can test errors.Is(err,
// ErrBadK) regardless of which method produced the failure.
var ErrBadK = errors.New("k out of range")

// ErrWarmStartUnsupported marks an algorithm that cannot resume from an
// initial assignment (FitFrom in the public API): the single-shot methods
// (UAHC, FDBSCAN, FOPTICS), the sample-based UK-means variants, and the
// divisive UCPC-Bisect.
var ErrWarmStartUnsupported = errors.New("algorithm does not support warm starts")

// ErrStreamBudget marks a stream fit whose StreamConfig.MaxBatches budget
// is exhausted: Observe rejects the batch that would exceed the cap.
var ErrStreamBudget = errors.New("stream batch budget exhausted")

// ErrStreamCold marks a stream fit that has not yet observed enough objects
// to seed its k centroids; Snapshot cannot freeze a model before that.
var ErrStreamCold = errors.New("stream has not observed k objects yet")

// ErrBadConfig marks a configuration with an out-of-range field (negative
// Workers, Decay outside [0, 1), an unknown PruneMode, ...). Every entry
// point validates its configuration up front and wraps this sentinel.
var ErrBadConfig = errors.New("invalid configuration")

// ErrBadModelFormat marks wire-format input (a serialized Model or WStats
// payload) that is not a well-formed encoding: wrong magic, truncated or
// oversized body, out-of-range shape fields, or non-finite values where the
// format requires finite ones. Decoders reject such input without panicking
// and without unbounded allocation.
var ErrBadModelFormat = errors.New("malformed model wire format")

// ErrModelVersion marks wire-format input whose magic is recognized but
// whose format-version byte is not one this build can decode — the payload
// was written by an incompatible (newer) library version.
var ErrModelVersion = errors.New("unsupported model wire-format version")

// ValidateK returns a wrapped ErrBadK unless 1 <= k <= n. prefix names the
// reporting algorithm in the message.
func ValidateK(prefix string, k, n int) error {
	if k <= 0 || k > n {
		return fmt.Errorf("%s: k=%d for n=%d: %w", prefix, k, n, ErrBadK)
	}
	return nil
}

// ValidateInit checks a warm-start assignment: one entry per object, every
// entry a cluster id in [0, k). (Noise entries are not valid starting
// points; callers assign noise objects before warm-starting.)
func ValidateInit(prefix string, init []int, n, k int) error {
	if len(init) != n {
		return fmt.Errorf("%s: warm-start assignment has %d entries for n=%d objects", prefix, len(init), n)
	}
	for i, c := range init {
		if c < 0 || c >= k {
			return fmt.Errorf("%s: warm-start assignment maps object %d to invalid cluster %d (k=%d)", prefix, i, c, k)
		}
	}
	return nil
}
