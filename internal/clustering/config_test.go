package clustering

import (
	"errors"
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{Workers: 4, MaxIter: 10, Pruning: PruneOff, Seed: 9},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{Workers: -1},
		{MaxIter: -5},
		{Pruning: PruneMode(9)},
		{Pruning: PruneMode(-1)},
	}
	for _, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Validate(%+v) = %v, want ErrBadConfig", c, err)
		}
	}
}

func TestStreamConfigValidate(t *testing.T) {
	good := []StreamConfig{
		{},
		{BatchSize: 64, Decay: 0.5, MaxBatches: 3, Workers: 2, Pruning: PruneOn, Seed: 7},
		{Decay: 0.999},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []StreamConfig{
		{BatchSize: -1},
		{Decay: -0.1},
		{Decay: 1},
		{Decay: math.NaN()},
		{MaxBatches: -1},
		{Workers: -2},
		{Pruning: PruneMode(3)},
	}
	for _, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Validate(%+v) = %v, want ErrBadConfig", c, err)
		}
	}
}
