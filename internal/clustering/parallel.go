package clustering

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values > 0 are taken as-is,
// anything else means "one worker per available CPU" (GOMAXPROCS). Every
// parallel code path in the repository sizes its pool through this function
// so that Options.Workers has one meaning everywhere.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelFor runs body over the disjoint chunks of [0, n) using up to
// `workers` goroutines and blocks until all chunks complete. Chunks are
// contiguous index ranges, so each worker streams through adjacent rows of
// any structure-of-arrays store — the access pattern the Moments layout is
// designed for.
//
// Determinism contract: body(lo, hi) must only write state indexed by
// i ∈ [lo, hi) and must not read state written by other chunks. Under that
// contract the overall result is bit-identical for every worker count
// (including 1), which is what lets Options.Workers vary freely without
// changing a seeded run's partition.
func ParallelFor(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelAny runs body like ParallelFor and reports whether any chunk
// returned true (a parallel OR-reduction, used by assignment steps to
// detect "did anything move this iteration").
func ParallelAny(n, workers int, body func(lo, hi int) bool) bool {
	if n <= 0 {
		return false
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return body(0, n)
	}
	chunk := (n + workers - 1) / workers
	results := make([]bool, (n+chunk-1)/chunk)
	var wg sync.WaitGroup
	slot := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			results[slot] = body(lo, hi)
		}(slot, lo, hi)
		slot++
	}
	wg.Wait()
	for _, r := range results {
		if r {
			return true
		}
	}
	return false
}
