// Package persist is the crash-safe snapshot store behind the serving
// daemon's durability layer: one directory per tenant holding the tenant
// spec, the latest serving model (UCPM), the latest engine checkpoint
// (UCPM), and the latest exported statistics (UCWS), each wrapped in a
// CRC-framed record and written atomically (temp file + fsync + rename,
// manifest last), so a `kill -9` at any instant leaves either the previous
// complete snapshot or the new complete snapshot on disk — never a torn
// one.
//
// Layout under the state directory:
//
//	<dir>/tenants/<id>/manifest.ucsf   versioned manifest (JSON in a frame)
//	<dir>/tenants/<id>/model.ucsf      installed serving model (UCPM in a frame)
//	<dir>/tenants/<id>/engine.ucsf     engine checkpoint (UCPM in a frame)
//	<dir>/tenants/<id>/stats.ucsf      exported statistics (UCWS in a frame)
//	<dir>/quarantine/<id>.<nanos>/     snapshots that failed to decode
//
// Every file is one frame:
//
//	offset  size  field
//	0       4     magic "UCSF"
//	4       1     frame version (1)
//	5       1     payload kind (1 manifest, 2 model, 3 stats)
//	6       8     payload length (uint64 LE)
//	14      4     CRC32-C of the payload (uint32 LE)
//	18      n     payload
//
// Total length is enforced exactly; ReadFrame rejects bad magic, unknown
// versions, kind mismatches, truncated or oversized input, and checksum
// failures with a wrapped ErrCorrupt naming the defect. Decoding never
// panics and never allocates more than the input's own size implies.
//
// The manifest is written last: the data files it references are already
// durable when it lands, so a reader that trusts the manifest always finds
// frames at least as new as it. A crash between data-file rename and
// manifest rename leaves the old manifest pointing at newer data files —
// still self-consistent, because every frame validates independently.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"
)

// ErrCorrupt marks a snapshot file (or directory) that is not a complete,
// checksum-valid record — a torn write, truncation, bit rot, or manual
// tampering. Every decode path wraps it with the offending file path;
// callers quarantine rather than fail startup.
var ErrCorrupt = errors.New("corrupt snapshot")

const (
	frameVersion = 1
	frameHeader  = 18
	// frameMaxPayload bounds what a hostile length prefix can make ReadFrame
	// buffer (the UCPM read cap is ~160 MiB; 256 MiB clears it with room).
	frameMaxPayload = 256 << 20
)

// Frame payload kinds.
const (
	KindManifest byte = 1
	KindModel    byte = 2
	KindStats    byte = 3
)

var (
	frameMagic = [4]byte{'U', 'C', 'S', 'F'}
	crcTable   = crc32.MakeTable(crc32.Castagnoli)
	idPattern  = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)
)

// EncodeFrame wraps payload in the CRC frame.
func EncodeFrame(kind byte, payload []byte) []byte {
	buf := make([]byte, frameHeader, frameHeader+len(payload))
	copy(buf, frameMagic[:])
	buf[4] = frameVersion
	buf[5] = kind
	binary.LittleEndian.PutUint64(buf[6:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[14:], crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// DecodeFrame validates a frame of the expected kind and returns its
// payload. Malformed input fails with a wrapped ErrCorrupt.
func DecodeFrame(kind byte, data []byte) ([]byte, error) {
	if len(data) < frameHeader {
		return nil, fmt.Errorf("persist: frame truncated at %d bytes (header is %d): %w",
			len(data), frameHeader, ErrCorrupt)
	}
	if [4]byte(data[:4]) != frameMagic {
		return nil, fmt.Errorf("persist: frame has magic %q, want %q: %w", data[:4], frameMagic[:], ErrCorrupt)
	}
	if data[4] != frameVersion {
		return nil, fmt.Errorf("persist: frame version %d, this build reads %d: %w",
			data[4], frameVersion, ErrCorrupt)
	}
	if data[5] != kind {
		return nil, fmt.Errorf("persist: frame kind %d, want %d: %w", data[5], kind, ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(data[6:])
	if n > frameMaxPayload {
		return nil, fmt.Errorf("persist: frame declares %d-byte payload (cap %d): %w",
			n, frameMaxPayload, ErrCorrupt)
	}
	if uint64(len(data)-frameHeader) != n {
		return nil, fmt.Errorf("persist: frame carries %d payload bytes, header declares %d: %w",
			len(data)-frameHeader, n, ErrCorrupt)
	}
	payload := data[frameHeader:]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(data[14:]); got != want {
		return nil, fmt.Errorf("persist: frame checksum %08x, header declares %08x: %w", got, want, ErrCorrupt)
	}
	return payload, nil
}

// Manifest is the versioned per-tenant index, serialized as JSON inside a
// KindManifest frame. The Has* flags say which data files the snapshot
// includes; a referenced file that is missing or fails its frame check
// makes the whole snapshot corrupt.
type Manifest struct {
	Version       int             `json:"version"`
	ID            string          `json:"id"`
	Spec          json.RawMessage `json:"spec"`
	ModelVersion  int64           `json:"model_version"`
	Seen          int64           `json:"seen"`
	SavedUnixNano int64           `json:"saved_unix_nano"`
	HasModel      bool            `json:"has_model"`
	HasEngine     bool            `json:"has_engine"`
	HasStats      bool            `json:"has_stats"`
}

const manifestVersion = 1

// TenantSnapshot is one tenant's recoverable state: the opaque spec the
// serving layer wrote (persist does not interpret it), the wire-encoded
// serving model and engine checkpoint (UCPM), and the exported statistics
// (UCWS). Nil byte slices mean "not part of this snapshot".
type TenantSnapshot struct {
	ID            string
	Spec          json.RawMessage
	ModelVersion  int64
	Seen          int64
	SavedUnixNano int64
	Model         []byte
	Engine        []byte
	Stats         []byte
}

// Store is one state directory. Methods are safe for use from one
// goroutine per tenant id; concurrent Save calls for the same id must be
// serialized by the caller (the daemon holds a per-tenant persist lock).
type Store struct {
	dir string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty state directory")
	}
	for _, sub := range []string{tenantsDirName, quarantineDirName} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("persist: open state dir: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

const (
	tenantsDirName    = "tenants"
	quarantineDirName = "quarantine"

	manifestFile = "manifest.ucsf"
	modelFile    = "model.ucsf"
	engineFile   = "engine.ucsf"
	statsFile    = "stats.ucsf"
)

func (s *Store) tenantDir(id string) string {
	return filepath.Join(s.dir, tenantsDirName, id)
}

// Save writes snap atomically: each data file via temp + fsync + rename,
// the manifest last, and the tenant directory fsynced so the renames are
// durable. Data files absent from snap are removed (after the manifest no
// longer references them, a stale file is harmless, but removing keeps the
// directory an exact mirror of the snapshot).
func (s *Store) Save(snap *TenantSnapshot) error {
	if !idPattern.MatchString(snap.ID) {
		return fmt.Errorf("persist: tenant id %q must match %s", snap.ID, idPattern)
	}
	dir := s.tenantDir(snap.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	files := []struct {
		name    string
		kind    byte
		payload []byte
	}{
		{modelFile, KindModel, snap.Model},
		{engineFile, KindModel, snap.Engine},
		{statsFile, KindStats, snap.Stats},
	}
	for _, f := range files {
		path := filepath.Join(dir, f.name)
		if f.payload == nil {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("persist: %w", err)
			}
			continue
		}
		if err := writeFileAtomic(path, EncodeFrame(f.kind, f.payload)); err != nil {
			return err
		}
	}
	man := Manifest{
		Version:       manifestVersion,
		ID:            snap.ID,
		Spec:          snap.Spec,
		ModelVersion:  snap.ModelVersion,
		Seen:          snap.Seen,
		SavedUnixNano: snap.SavedUnixNano,
		HasModel:      snap.Model != nil,
		HasEngine:     snap.Engine != nil,
		HasStats:      snap.Stats != nil,
	}
	if man.SavedUnixNano == 0 {
		man.SavedUnixNano = time.Now().UnixNano()
	}
	raw, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("persist: encode manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestFile), EncodeFrame(KindManifest, raw)); err != nil {
		return err
	}
	return syncDir(dir)
}

// Load reads and validates the tenant's snapshot. A missing tenant returns
// os.ErrNotExist (wrapped); a present-but-undecodable one returns a wrapped
// ErrCorrupt naming the offending file — the caller's cue to Quarantine.
func (s *Store) Load(id string) (*TenantSnapshot, error) {
	dir := s.tenantDir(id)
	raw, err := readFrameFile(filepath.Join(dir, manifestFile), KindManifest)
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("persist: %s: manifest JSON: %v: %w",
			filepath.Join(dir, manifestFile), err, ErrCorrupt)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("persist: %s: manifest version %d, this build reads %d: %w",
			filepath.Join(dir, manifestFile), man.Version, manifestVersion, ErrCorrupt)
	}
	if man.ID != id {
		return nil, fmt.Errorf("persist: %s: manifest names tenant %q, directory is %q: %w",
			filepath.Join(dir, manifestFile), man.ID, id, ErrCorrupt)
	}
	if len(man.Spec) == 0 || string(man.Spec) == "null" {
		return nil, fmt.Errorf("persist: %s: manifest carries no tenant spec: %w",
			filepath.Join(dir, manifestFile), ErrCorrupt)
	}
	snap := &TenantSnapshot{
		ID:            man.ID,
		Spec:          man.Spec,
		ModelVersion:  man.ModelVersion,
		Seen:          man.Seen,
		SavedUnixNano: man.SavedUnixNano,
	}
	read := func(name string, kind byte, dst *[]byte, present bool) error {
		if !present {
			return nil
		}
		payload, err := readFrameFile(filepath.Join(dir, name), kind)
		if err != nil {
			return err
		}
		*dst = payload
		return nil
	}
	if err := read(modelFile, KindModel, &snap.Model, man.HasModel); err != nil {
		return nil, err
	}
	if err := read(engineFile, KindModel, &snap.Engine, man.HasEngine); err != nil {
		return nil, err
	}
	if err := read(statsFile, KindStats, &snap.Stats, man.HasStats); err != nil {
		return nil, err
	}
	return snap, nil
}

// IDs lists the tenant ids with a snapshot directory, sorted. Directories
// are listed, not validated — Load decides whether each one is usable.
func (s *Store) IDs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, tenantsDirName))
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && idPattern.MatchString(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Remove deletes the tenant's snapshot directory (tenant deletion).
func (s *Store) Remove(id string) error {
	if !idPattern.MatchString(id) {
		return fmt.Errorf("persist: tenant id %q must match %s", id, idPattern)
	}
	if err := os.RemoveAll(s.tenantDir(id)); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// Quarantine moves the tenant's snapshot directory aside —
// <dir>/quarantine/<id>.<nanos> — so a corrupt snapshot never blocks
// startup and stays available for inspection. Returns the new path.
func (s *Store) Quarantine(id string) (string, error) {
	if !idPattern.MatchString(id) {
		return "", fmt.Errorf("persist: tenant id %q must match %s", id, idPattern)
	}
	dst := filepath.Join(s.dir, quarantineDirName, fmt.Sprintf("%s.%d", id, time.Now().UnixNano()))
	if err := os.Rename(s.tenantDir(id), dst); err != nil {
		return "", fmt.Errorf("persist: quarantine %q: %w", id, err)
	}
	return dst, syncDir(filepath.Join(s.dir, quarantineDirName))
}

// readFrameFile reads one framed file, mapping read errors and frame
// defects onto ErrCorrupt with the path (except a missing manifest, which
// surfaces os.ErrNotExist so callers can tell "no snapshot" from "bad
// snapshot").
func readFrameFile(path string, kind byte) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) && filepath.Base(path) == manifestFile {
			return nil, fmt.Errorf("persist: %s: %w", path, os.ErrNotExist)
		}
		return nil, fmt.Errorf("persist: %s: %v: %w", path, err, ErrCorrupt)
	}
	payload, err := DecodeFrame(kind, data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}

// writeFileAtomic writes data to path via a temp file in the same
// directory, fsyncs it, and renames it into place — the atomic-replace
// idiom every snapshot file goes through. Stale ".tmp" leftovers from a
// crash mid-write are simply overwritten next time (and never match the
// frame file names Load reads).
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so completed renames survive power loss.
// Filesystems that reject directory fsync (some CI overlays) are tolerated:
// the rename itself is still atomic, only its durability window widens.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) &&
		!strings.Contains(err.Error(), "invalid argument") {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}
