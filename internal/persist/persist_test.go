package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func sampleSnap() *TenantSnapshot {
	return &TenantSnapshot{
		ID:            "t1",
		Spec:          json.RawMessage(`{"id":"t1","k":3}`),
		ModelVersion:  7,
		Seen:          12345,
		SavedUnixNano: 42,
		Model:         []byte("UCPM-model-bytes"),
		Engine:        []byte("UCPM-engine-bytes"),
		Stats:         []byte("UCWS-stats-bytes"),
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleSnap()
	if err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("t1")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.ModelVersion != want.ModelVersion ||
		got.Seen != want.Seen || got.SavedUnixNano != want.SavedUnixNano {
		t.Fatalf("scalar fields round-tripped to %+v", got)
	}
	if !bytes.Equal(got.Spec, want.Spec) || !bytes.Equal(got.Model, want.Model) ||
		!bytes.Equal(got.Engine, want.Engine) || !bytes.Equal(got.Stats, want.Stats) {
		t.Fatalf("payloads round-tripped to %+v", got)
	}

	ids, err := st.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "t1" {
		t.Fatalf("IDs() = %v, want [t1]", ids)
	}
}

func TestSaveOmitsAndRemovesAbsentFiles(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(sampleSnap()); err != nil {
		t.Fatal(err)
	}
	// Second save drops the model and stats: the files must disappear and
	// Load must report them nil.
	snap := sampleSnap()
	snap.Model, snap.Stats = nil, nil
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("t1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != nil || got.Stats != nil || got.Engine == nil {
		t.Fatalf("after partial save: model=%v stats=%v engine=%v", got.Model, got.Stats, got.Engine)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), "tenants", "t1", modelFile)); !os.IsNotExist(err) {
		t.Fatalf("model file should be removed, stat err = %v", err)
	}
}

func TestLoadMissingTenantIsNotExist(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("ghost"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing tenant: %v, want os.ErrNotExist", err)
	}
}

func TestRemoveAndQuarantine(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(sampleSnap()); err != nil {
		t.Fatal(err)
	}
	dst, err := st.Quarantine("t1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Fatalf("quarantined dir missing: %v", err)
	}
	if _, err := st.Load("t1"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("after quarantine Load = %v, want os.ErrNotExist", err)
	}

	if err := st.Save(sampleSnap()); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("t1"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("after remove Load = %v, want os.ErrNotExist", err)
	}
}

// TestFrameDecodeDefects drives DecodeFrame through the defect matrix:
// every truncation point, a flipped bit in every region (magic, version,
// kind, length, checksum, payload), and trailing garbage must all be
// rejected with ErrCorrupt — never a panic, never a silent success.
func TestFrameDecodeDefects(t *testing.T) {
	payload := []byte("the payload under test")
	frame := EncodeFrame(KindModel, payload)

	if got, err := DecodeFrame(KindModel, frame); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("clean frame: %q, %v", got, err)
	}

	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeFrame(KindModel, frame[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: %v, want ErrCorrupt", cut, err)
		}
	}
	for i := 0; i < len(frame); i++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), frame...)
			mut[i] ^= bit
			if _, err := DecodeFrame(KindModel, mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip at byte %d (mask %#x): %v, want ErrCorrupt", i, bit, err)
			}
		}
	}
	if _, err := DecodeFrame(KindModel, append(append([]byte(nil), frame...), 0xff)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: %v, want ErrCorrupt", err)
	}
	if _, err := DecodeFrame(KindStats, frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("kind mismatch: %v, want ErrCorrupt", err)
	}
}

// TestLoadCorruptSnapshots is the table-driven corrupt-manifest restore
// matrix: each case damages one on-disk file of a valid snapshot and Load
// must answer a wrapped ErrCorrupt that names the damaged path.
func TestLoadCorruptSnapshots(t *testing.T) {
	cases := []struct {
		name   string
		damage func(t *testing.T, dir string) string // returns the file expected in the error
	}{
		{"truncated manifest", func(t *testing.T, dir string) string {
			return truncate(t, filepath.Join(dir, manifestFile), 10)
		}},
		{"bit-flipped manifest payload", func(t *testing.T, dir string) string {
			return flipByte(t, filepath.Join(dir, manifestFile), frameHeader+2)
		}},
		{"manifest JSON not an object", func(t *testing.T, dir string) string {
			path := filepath.Join(dir, manifestFile)
			writeRaw(t, path, EncodeFrame(KindManifest, []byte("[]garbage")))
			return path
		}},
		{"manifest wrong tenant id", func(t *testing.T, dir string) string {
			path := filepath.Join(dir, manifestFile)
			man := Manifest{Version: manifestVersion, ID: "other", Spec: json.RawMessage(`{}`)}
			raw, _ := json.Marshal(man)
			writeRaw(t, path, EncodeFrame(KindManifest, raw))
			return path
		}},
		{"manifest future version", func(t *testing.T, dir string) string {
			path := filepath.Join(dir, manifestFile)
			man := Manifest{Version: 99, ID: "t1", Spec: json.RawMessage(`{}`)}
			raw, _ := json.Marshal(man)
			writeRaw(t, path, EncodeFrame(KindManifest, raw))
			return path
		}},
		{"manifest missing spec", func(t *testing.T, dir string) string {
			path := filepath.Join(dir, manifestFile)
			man := Manifest{Version: manifestVersion, ID: "t1"}
			raw, _ := json.Marshal(man)
			writeRaw(t, path, EncodeFrame(KindManifest, raw))
			return path
		}},
		{"referenced model file missing", func(t *testing.T, dir string) string {
			path := filepath.Join(dir, modelFile)
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
			return path
		}},
		{"truncated model frame", func(t *testing.T, dir string) string {
			return truncate(t, filepath.Join(dir, modelFile), frameHeader+3)
		}},
		{"bit-flipped stats payload", func(t *testing.T, dir string) string {
			return flipByte(t, filepath.Join(dir, statsFile), frameHeader)
		}},
		{"engine frame wrong kind", func(t *testing.T, dir string) string {
			path := filepath.Join(dir, engineFile)
			writeRaw(t, path, EncodeFrame(KindStats, []byte("wrong kind")))
			return path
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Save(sampleSnap()); err != nil {
				t.Fatal(err)
			}
			wantPath := tc.damage(t, filepath.Join(st.Dir(), "tenants", "t1"))
			_, err = st.Load("t1")
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load after %s: %v, want ErrCorrupt", tc.name, err)
			}
			if wantPath != "" && !bytes.Contains([]byte(err.Error()), []byte(wantPath)) {
				t.Fatalf("error %q does not name the damaged file %q", err, wantPath)
			}
			// A corrupt snapshot quarantines cleanly and stops being listed.
			if _, err := st.Quarantine("t1"); err != nil {
				t.Fatal(err)
			}
			ids, err := st.IDs()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 0 {
				t.Fatalf("IDs after quarantine = %v, want none", ids)
			}
		})
	}
}

// TestStaleTmpFilesAreIgnored: leftovers of a crash mid-write (the ".tmp"
// names) must not disturb a later Save/Load cycle.
func TestStaleTmpFilesAreIgnored(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(sampleSnap()); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(st.Dir(), "tenants", "t1")
	for _, name := range []string{manifestFile, modelFile} {
		writeRaw(t, filepath.Join(dir, name+".tmp"), []byte("torn half-write"))
	}
	if _, err := st.Load("t1"); err != nil {
		t.Fatalf("Load with stale tmp files: %v", err)
	}
	if err := st.Save(sampleSnap()); err != nil {
		t.Fatalf("Save over stale tmp files: %v", err)
	}
}

func TestBadTenantIDs(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "a/b", "..", "x y", "a.b"} {
		if err := st.Save(&TenantSnapshot{ID: id, Spec: json.RawMessage(`{}`)}); err == nil {
			t.Fatalf("Save(%q) accepted a bad id", id)
		}
		if err := st.Remove(id); err == nil {
			t.Fatalf("Remove(%q) accepted a bad id", id)
		}
		if _, err := st.Quarantine(id); err == nil {
			t.Fatalf("Quarantine(%q) accepted a bad id", id)
		}
	}
}

func truncate(t *testing.T, path string, n int) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n > len(data) {
		t.Fatalf("truncate %d beyond %d bytes", n, len(data))
	}
	writeRaw(t, path, data[:n])
	return path
}

func flipByte(t *testing.T, path string, i int) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if i >= len(data) {
		t.Fatalf("flip at %d beyond %d bytes", i, len(data))
	}
	data[i] ^= 0x40
	writeRaw(t, path, data)
	return path
}

func writeRaw(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTripSizes(t *testing.T) {
	for _, n := range []int{0, 1, 17, 4096} {
		payload := bytes.Repeat([]byte{0xab}, n)
		got, err := DecodeFrame(KindStats, EncodeFrame(KindStats, payload))
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("size %d: %v (len %d)", n, err, len(got))
		}
	}
}

func ExampleEncodeFrame() {
	frame := EncodeFrame(KindStats, []byte("payload"))
	payload, err := DecodeFrame(KindStats, frame)
	fmt.Println(string(payload), err)
	// Output: payload <nil>
}
