package stream

import (
	"context"
	"errors"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// blobs returns n uncertain objects in g well-separated Gaussian groups.
func blobs(n, g int, seed uint64) uncertain.Dataset {
	r := rng.New(seed)
	ds := make(uncertain.Dataset, n)
	for i := range ds {
		c := i % g
		ms := []dist.Distribution{
			dist.NewTruncNormalCentral(10*float64(c%2)+r.Normal(0, 0.6), 0.3, 0.95),
			dist.NewTruncNormalCentral(10*float64(c/2)+r.Normal(0, 0.6), 0.3, 0.95),
			dist.NewUniformAround(float64(c)+r.Normal(0, 0.3), 0.5),
		}
		ds[i] = uncertain.NewObject(i, ms).WithLabel(c)
	}
	return ds
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(0, clustering.StreamConfig{}); !errors.Is(err, clustering.ErrBadK) {
		t.Fatalf("k=0: err %v, want ErrBadK", err)
	}
	if _, err := New(2, clustering.StreamConfig{Decay: 1.0}); err == nil {
		t.Fatal("decay 1.0 accepted")
	}
	if _, err := New(2, clustering.StreamConfig{Decay: -0.1}); err == nil {
		t.Fatal("negative decay accepted")
	}
	if _, err := New(2, clustering.StreamConfig{MaxBatches: -1}); err == nil {
		t.Fatal("negative MaxBatches accepted")
	}
	if _, err := NewFrom(2, 0, nil, nil, nil, clustering.StreamConfig{}); err == nil {
		t.Fatal("warm start with dim 0 accepted")
	}
	if _, err := NewFrom(2, 3, make([]float64, 5), make([]float64, 2), make([]float64, 2),
		clustering.StreamConfig{}); err == nil {
		t.Fatal("warm start with mis-sized means accepted")
	}
}

func TestEngineColdStartAndBudget(t *testing.T) {
	ctx := context.Background()
	e, err := New(4, clustering.StreamConfig{BatchSize: 32, MaxBatches: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); !errors.Is(err, clustering.ErrStreamCold) {
		t.Fatalf("cold snapshot: err %v, want ErrStreamCold", err)
	}
	ds := blobs(200, 4, 1)

	// Fewer than k objects: still cold.
	if err := e.Observe(ctx, ds[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); !errors.Is(err, clustering.ErrStreamCold) {
		t.Fatalf("2 < k objects: err %v, want ErrStreamCold", err)
	}
	if e.Batches() != 0 || e.Seen() != 0 {
		t.Fatalf("buffered objects counted: batches %d seen %d", e.Batches(), e.Seen())
	}

	// Crossing k seeds and processes the buffered window as batch 1.
	if err := e.Observe(ctx, ds[2:40]); err != nil {
		t.Fatal(err)
	}
	if e.Batches() != 2 || e.Seen() != 40 {
		// 2+32 rows in batch 1 (buffer + first full chunk)... the input
		// splits as [2 buffered + 32] then [6]: 2 batches, 40 objects.
		t.Fatalf("after 40 objects: batches %d seen %d", e.Batches(), e.Seen())
	}
	fz, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fz.K != 4 || fz.Dims != 3 || fz.Seen != 40 {
		t.Fatalf("snapshot %+v", fz)
	}

	// MaxBatches = 3: one more batch fits, then the budget trips.
	if err := e.Observe(ctx, ds[40:72]); err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(ctx, ds[72:104]); !errors.Is(err, clustering.ErrStreamBudget) {
		t.Fatalf("beyond budget: err %v, want ErrStreamBudget", err)
	}
	if e.Batches() != 3 {
		t.Fatalf("budget overshoot: %d batches", e.Batches())
	}
}

func TestEngineDimMismatch(t *testing.T) {
	ctx := context.Background()
	e, _ := New(2, clustering.StreamConfig{})
	if err := e.Observe(ctx, blobs(10, 2, 1)); err != nil {
		t.Fatal(err)
	}
	bad := uncertain.Dataset{uncertain.FromPoint(0, []float64{1, 2})}
	if err := e.Observe(ctx, bad); !errors.Is(err, uncertain.ErrDimMismatch) {
		t.Fatalf("dim mismatch: err %v", err)
	}
}

// TestEnginePruningExactness: the per-batch box-filtered first pass must
// produce bit-identical centroids to the exhaustive scan — pruning is
// exact on the streaming path too.
func TestEnginePruningExactness(t *testing.T) {
	ctx := context.Background()
	ds := blobs(1500, 4, 9)
	var frozen [2]*Frozen
	for i, mode := range []clustering.PruneMode{clustering.PruneOn, clustering.PruneOff} {
		e, err := New(4, clustering.StreamConfig{BatchSize: 128, Pruning: mode, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(ds); lo += 300 { // uneven re-chunking on purpose
			hi := lo + 300
			if hi > len(ds) {
				hi = len(ds)
			}
			if err := e.Observe(ctx, ds[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		frozen[i], err = e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range frozen[0].Means {
		if frozen[0].Means[i] != frozen[1].Means[i] {
			t.Fatalf("mean %d: pruned %v vs exhaustive %v", i, frozen[0].Means[i], frozen[1].Means[i])
		}
	}
	for c := range frozen[0].Adds {
		if frozen[0].Adds[c] != frozen[1].Adds[c] {
			t.Fatalf("add %d: pruned %v vs exhaustive %v", c, frozen[0].Adds[c], frozen[1].Adds[c])
		}
	}
}

// TestEngineWorkerInvariance: the per-batch assignment fan-out covers only
// order-independent work, so the fitted centroids are bit-identical for
// every worker count.
func TestEngineWorkerInvariance(t *testing.T) {
	ctx := context.Background()
	ds := blobs(1000, 4, 13)
	var base *Frozen
	for _, w := range []int{1, 2, 5, 0} {
		e, err := New(4, clustering.StreamConfig{BatchSize: 200, Workers: w, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Observe(ctx, ds); err != nil {
			t.Fatal(err)
		}
		fz, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = fz
			continue
		}
		for i := range base.Means {
			if base.Means[i] != fz.Means[i] {
				t.Fatalf("workers=%d: mean %d differs", w, i)
			}
		}
	}
}

// TestEngineResidentWindowBounded: streaming n objects must not grow the
// resident store beyond one batch window — the out-of-core contract.
func TestEngineResidentWindowBounded(t *testing.T) {
	ctx := context.Background()
	e, _ := New(4, clustering.StreamConfig{BatchSize: 100})
	ds := blobs(3000, 4, 21)
	var afterFirst int64
	for lo := 0; lo < len(ds); lo += 100 {
		if err := e.Observe(ctx, ds[lo:lo+100]); err != nil {
			t.Fatal(err)
		}
		if lo == 0 {
			afterFirst = e.ResidentBytes()
		}
	}
	if got := e.ResidentBytes(); got > afterFirst {
		t.Fatalf("resident store grew from %d to %d bytes over 30 batches", afterFirst, got)
	}
	if want := int64(3000 - 100); e.Base() != want {
		t.Fatalf("base %d, want %d (stable global row indices)", e.Base(), want)
	}
	if e.Seen() != 3000 || e.Batches() != 30 {
		t.Fatalf("seen %d batches %d", e.Seen(), e.Batches())
	}
}

// TestEngineDecayTracksDrift: with forgetting, centroids follow a stream
// whose groups move; without it they stay near the historical average.
func TestEngineDecayTracksDrift(t *testing.T) {
	ctx := context.Background()
	mk := func(center float64, n int, seed uint64) uncertain.Dataset {
		r := rng.New(seed)
		ds := make(uncertain.Dataset, n)
		for i := range ds {
			ms := []dist.Distribution{
				dist.NewTruncNormalCentral(center+r.Normal(0, 0.2), 0.2, 0.95),
			}
			ds[i] = uncertain.NewObject(i, ms)
		}
		return ds
	}
	fit := func(decay float64) float64 {
		e, err := New(1, clustering.StreamConfig{BatchSize: 50, Decay: decay})
		if err != nil {
			t.Fatal(err)
		}
		// 10 batches at 0, then 10 batches at 10: the group moved.
		for b := 0; b < 10; b++ {
			if err := e.Observe(ctx, mk(0, 50, uint64(b+1))); err != nil {
				t.Fatal(err)
			}
		}
		for b := 0; b < 10; b++ {
			if err := e.Observe(ctx, mk(10, 50, uint64(100+b))); err != nil {
				t.Fatal(err)
			}
		}
		fz, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return fz.Means[0]
	}
	noForget := fit(0)
	forget := fit(0.5)
	if math.Abs(noForget-5) > 1 {
		t.Fatalf("cumulative mean %v, want ≈ 5 (historical average)", noForget)
	}
	if forget < 9 {
		t.Fatalf("decayed mean %v, want ≈ 10 (tracking the drifted group)", forget)
	}
}

// TestEngineShortStreamSnapshotSeeds: a stream shorter than one seeding
// window (but with at least k objects) is seeded on demand by Snapshot.
func TestEngineShortStreamSnapshotSeeds(t *testing.T) {
	ctx := context.Background()
	e, _ := New(4, clustering.StreamConfig{BatchSize: 4096})
	ds := blobs(60, 4, 5)
	// Feed one object at a time: far below the window, never auto-seeds.
	for _, o := range ds {
		if err := e.Observe(ctx, uncertain.Dataset{o}); err != nil {
			t.Fatal(err)
		}
	}
	fz, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fz.Seen != 60 || fz.Batches != 1 {
		t.Fatalf("snapshot-seeded stream: seen %d batches %d", fz.Seen, fz.Batches)
	}
	total := 0
	for _, s := range fz.Sizes {
		total += s
	}
	if total != 60 {
		t.Fatalf("window members %d, want 60", total)
	}
	if fz.Objective < 0 {
		t.Fatalf("objective %v negative", fz.Objective)
	}
}

// TestEngineWarmRevivesMemberlessCluster: a warm start from a model with a
// memberless (+Inf add) cluster must not keep that cluster dead — the
// first batches park it on a worst-served object, after which the stream
// can feed it.
func TestEngineWarmRevivesMemberlessCluster(t *testing.T) {
	ctx := context.Background()
	k, m := 2, 2
	// Cluster 0 lives at the origin; cluster 1 is memberless.
	means := []float64{0, 0, 100, 100}
	adds := []float64{0.5, math.Inf(1)}
	weights := []float64{50, 0}
	e, err := NewFrom(k, m, means, adds, weights, clustering.StreamConfig{BatchSize: 25})
	if err != nil {
		t.Fatal(err)
	}
	// Two well-separated groups, one far from the seeded cluster.
	r := rng.New(3)
	ds := make(uncertain.Dataset, 100)
	for i := range ds {
		c := 100 * float64(i%2)
		ds[i] = uncertain.NewObject(i, []dist.Distribution{
			dist.NewUniformAround(c+r.Normal(0, 0.5), 0.5),
			dist.NewUniformAround(c+r.Normal(0, 0.5), 0.5),
		})
	}
	if err := e.Observe(ctx, ds); err != nil {
		t.Fatal(err)
	}
	fz, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fz.Weights[1] <= 0 {
		t.Fatalf("memberless cluster never revived: weights %v", fz.Weights)
	}
	if math.IsInf(fz.Adds[1], 1) {
		t.Fatalf("revived cluster still carries an infinite additive term")
	}
}

// TestEngineWarmSeedObjectiveSane: the objective estimate of a pure warm
// seed counts the seed's variance mass and is never wildly negative (a
// zero Φ seed used to report huge negative objectives).
func TestEngineWarmSeedObjectiveSane(t *testing.T) {
	k, m := 2, 2
	means := []float64{50, -30, 80, 90} // far from the origin on purpose
	adds := []float64{0.25, 0.5}
	weights := []float64{100, 40}
	e, err := NewFrom(k, m, means, adds, weights, clustering.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Seed J contribution per cluster is Ψ(1 + 1/W) with Ψ = add·W².
	want := adds[0]*100*100*(1+1.0/100) + adds[1]*40*40*(1+1.0/40)
	if rel := math.Abs(fz.Objective-want) / (want + 1); rel > 1e-9 {
		t.Fatalf("warm-seed objective %v, want %v", fz.Objective, want)
	}
}

// TestEngineWarmSeedExact: a warm-started engine snapshots its seed state
// bit for bit before any batch, and keeps memberless clusters inert.
func TestEngineWarmSeedExact(t *testing.T) {
	k, m := 3, 2
	means := []float64{0.1, 0.2, 7.7, -3.3, 5, 5}
	adds := []float64{0.25, 0.125, math.Inf(1)}
	weights := []float64{10, 3, 0}
	e, err := NewFrom(k, m, means, adds, weights, clustering.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := range means {
		if fz.Means[i] != means[i] {
			t.Fatalf("mean %d: %v != seed %v", i, fz.Means[i], means[i])
		}
	}
	for c := range adds {
		if fz.Adds[c] != adds[c] {
			t.Fatalf("add %d: %v != seed %v", c, fz.Adds[c], adds[c])
		}
	}
	if fz.Sizes[0] != 10 || fz.Sizes[1] != 3 || fz.Sizes[2] != 0 {
		t.Fatalf("sizes %v", fz.Sizes)
	}
	if !fz.HasMembers {
		t.Fatal("warm seed lost membership")
	}
}
