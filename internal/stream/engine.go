// Package stream implements the chunked mini-batch fitting engine behind
// ucpc.StreamClusterer: an online UCPC variant for datasets that do not fit
// in one in-memory pass.
//
// The engine owns one *resident window* — a growable structure-of-arrays
// moment store (uncertain.NewMoments) that is refilled with each mini-batch
// and recycled between batches — so the resident footprint is O(BatchSize·m)
// regardless of how many objects stream through. Each batch is scored
// against the current centroids through the exact pruned assignment engine
// (core.Assigner, rebound to the fresh window with Rebind), then folded
// into per-cluster weighted sufficient statistics (core.WStats) with an
// optional per-batch exponential forgetting factor. The centroid read-out
//
//	mean_c = S_c/W_c,  add_c = Ψ_c/W_c²
//
// is the weighted Theorem-2 U-centroid, and with Decay = 0 the update
// schedule is exactly the mini-batch k-means 1/n_c decaying learning rate:
// a batch of b_c fresh members moves centroid c by the fraction
// b_c/(n_c + b_c) toward the batch mean.
//
// An Engine is safe for concurrent use: Observe calls serialize behind one
// mutex, and Snapshot returns an independent frozen copy of the centroid
// state.
package stream

import (
	"context"
	"fmt"
	"math"
	"sync"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/eval"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// Engine is the mini-batch fitting core. Construct with New (cold start:
// the seeding window picks the better of two refined restarts) or NewFrom
// (warm start from a frozen model's centroid state).
type Engine struct {
	mu  sync.Mutex
	k   int
	m   int // 0 until the first Observe fixes the dimensionality
	cfg clustering.StreamConfig
	bs  int // resolved batch size
	r   *rng.RNG

	store  *uncertain.Moments // resident window, recycled per batch
	base   int64              // global index of resident row 0 (stable ids)
	assign []int              // per-row scratch, reused across batches
	asg    *core.Assigner
	ws     *core.WStats

	// seedObjs buffers the seeding window's objects (references only,
	// objects are immutable) so the restart selection can score both
	// refined candidates with the paper's internal validity criterion;
	// released as soon as seeding completes.
	seedObjs uncertain.Dataset

	// means/adds are the authoritative centroid state the next batch is
	// scored against. They are rewritten from ws after every processed
	// batch but *copied verbatim* at warm-start seeding, so a snapshot
	// taken before any batch reproduces the seed model's centroids bit for
	// bit (re-deriving mean = (mean·w)/w from the statistics would round
	// differently).
	means, adds []float64

	seeded     bool // centroids initialized (k-means++ done or warm seed)
	hasMembers bool
	seen       int64
	batches    int
	maxBytes   int64 // high-water resident store footprint
}

// New returns a cold-start engine for k clusters. The dimensionality is
// fixed by the first observed object; as soon as k objects have been
// observed, the first window is refined to a Lloyd fixed point from both
// a random partition and a k-means++ seeding, and the candidate scoring
// higher on the internal validity criterion Q becomes the initial
// centroid state (see seedResident).
func New(k int, cfg clustering.StreamConfig) (*Engine, error) {
	if k < 1 {
		return nil, fmt.Errorf("stream: k=%d: %w", k, clustering.ErrBadK)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	return &Engine{
		k:   k,
		cfg: cfg,
		bs:  cfg.BatchSizeOrDefault(),
		r:   rng.New(cfg.SeedOrDefault()),
	}, nil
}

// NewFrom returns a warm-start engine seeded with a frozen model's centroid
// state: means (flat k×m), adds (k additive variance terms, +Inf marking
// memberless clusters), and weights (k effective training cardinalities).
// Clusters with positive weight and a finite additive term are folded into
// the statistics as if their members had been observed (W = weight,
// Ψ = add·weight²). Memberless clusters keep their frozen state — a
// pre-Observe Snapshot reproduces the model bit for bit — and are revived
// by the first processed batch: the reseed rule parks them on the batch's
// worst-served object, giving them a finite additive term so the stream
// can feed them.
func NewFrom(k, m int, means, adds, weights []float64, cfg clustering.StreamConfig) (*Engine, error) {
	e, err := New(k, cfg)
	if err != nil {
		return nil, err
	}
	if m < 1 {
		return nil, fmt.Errorf("stream: warm start with dim %d", m)
	}
	if len(means) != k*m || len(adds) != k || len(weights) != k {
		return nil, fmt.Errorf("stream: warm start state sized %d/%d/%d for k=%d m=%d",
			len(means), len(adds), len(weights), k, m)
	}
	e.bind(m)
	copy(e.means, means)
	copy(e.adds, adds)
	for c := 0; c < k; c++ {
		w := weights[c]
		if w > 0 && !math.IsInf(adds[c], 1) {
			e.ws.SeedCluster(c, means[c*m:(c+1)*m], w, adds[c]*w*w)
			e.hasMembers = true
		}
	}
	e.seeded = true
	return e, nil
}

// bind allocates the dimension-dependent state once m is known.
func (e *Engine) bind(m int) {
	e.m = m
	e.store = uncertain.NewMoments(m)
	e.means = make([]float64, e.k*m)
	e.adds = make([]float64, e.k)
	e.ws = core.NewWStats(e.k, m)
	e.asg = core.NewAssigner(e.store, e.k, e.cfg.Pruning.Enabled())
}

// Observe ingests a batch of uncertain objects: the input is split into
// mini-batches of StreamConfig.BatchSize, and each is scored against the
// current centroids and folded into the decayed statistics. Observe copies
// what it needs (moment rows) into the resident window — the caller may
// reuse or drop the objects afterwards.
//
// Observe calls serialize: concurrent callers are safe but block one
// another. ctx is checked between mini-batches. In steady state (after the
// resident window's capacity has warmed up to the largest batch seen)
// Observe performs no heap allocations when Workers is 1.
func (e *Engine) Observe(ctx context.Context, objs uncertain.Dataset) error {
	ctx = clustering.Ctx(ctx)
	if len(objs) == 0 {
		return nil
	}
	if err := objs.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.m == 0 {
		e.bind(objs.Dims())
	} else if objs.Dims() != e.m {
		return fmt.Errorf("stream: object dim %d vs stream dim %d: %w",
			objs.Dims(), e.m, uncertain.ErrDimMismatch)
	}
	for lo := 0; lo < len(objs); lo += e.bs {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + e.bs
		if hi > len(objs) {
			hi = len(objs)
		}
		if err := e.ingest(objs[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// ingest buffers or processes one mini-batch chunk under the engine lock.
func (e *Engine) ingest(chunk uncertain.Dataset) error {
	if e.cfg.MaxBatches > 0 && e.batches >= e.cfg.MaxBatches {
		return fmt.Errorf("stream: %d mini-batches ingested: %w", e.batches, clustering.ErrStreamBudget)
	}
	if !e.seeded {
		// Cold start: buffer rows until a full seeding window (one
		// BatchSize, and at least k) is resident, then seed and process
		// the whole buffered window as the first batch. Callers feeding
		// small portions — even one object at a time — therefore seed
		// from the same window a single big Observe would have used; a
		// stream shorter than one window is seeded on demand by Snapshot.
		for _, o := range chunk {
			e.store.Append(o)
		}
		e.seedObjs = append(e.seedObjs, chunk...)
		if e.store.Len() < e.k || e.store.Len() < e.bs {
			return nil
		}
		e.seedResident()
		return nil
	}
	e.base += int64(e.store.Len())
	e.store.Reset()
	for _, o := range chunk {
		e.store.Append(o)
	}
	e.step()
	return nil
}

// seedResident initializes the centroids from the seeding window with a
// best-of-two restart: the window is refined to a Lloyd fixed point from
// (a) a uniform random partition (the paper's Algorithm-1 default — all
// centroids start near the window mean and split along the data's
// density, which wins on heavily skewed streams) and (b) k-means++ point
// seeding on ÊD (spread-out seeds, which wins on well-separated
// small-k data), and the state scoring higher on the paper's internal
// validity criterion Q = inter − intra (eval.Quality, §5.1) over the
// window is kept. Q — not the objective Σ_C J(C) — is the selector
// because J always prefers the finest carve of the dominant mass (on a
// heavily skewed stream, splitting one dominant blob k ways has lower J
// than resolving the actual group structure), while Q also rewards
// separation; the two refined candidates are fixed points of the same
// objective, so the selection only breaks the init-dependence tie. A
// single-visit stream can never undo a bad start, making the extra
// handful of passes over one window the cheapest insurance available.
// Runs once per cold-start engine, so its scratch may allocate.
func (e *Engine) seedResident() {
	n, m := e.store.Len(), e.m
	e.seeded = true

	// Attempt (a): random partition.
	assign := clustering.RandomPartition(n, e.k, e.r)
	e.ws.Zero()
	e.ws.AddAssigned(e.store, assign)
	e.ws.CentersInto(e.means, e.adds)
	e.refineSeed()
	qRand := eval.Quality(e.seedObjs, clustering.Partition{K: e.k, Assign: e.assign[:n]})
	bestWS := core.NewWStats(e.k, m)
	bestWS.CopyFrom(e.ws)
	bestMeans := append([]float64(nil), e.means...)
	bestAdds := append([]float64(nil), e.adds...)

	// Attempt (b): k-means++ on ÊD — a singleton cluster's U-centroid is
	// the object itself, so mean = µ(o) and add = σ²(o).
	for c, i := range e.kmppRows() {
		copy(e.means[c*m:(c+1)*m], e.store.Mu(i))
		e.adds[c] = e.store.TotalVar(i)
	}
	e.refineSeed()
	if qRand >= eval.Quality(e.seedObjs, clustering.Partition{K: e.k, Assign: e.assign[:n]}) {
		e.ws.CopyFrom(bestWS)
		copy(e.means, bestMeans)
		copy(e.adds, bestAdds)
	}
	e.seedObjs = nil

	e.hasMembers = true
	e.seen += int64(n)
	e.batches++
	if b := e.store.Bytes(); b > e.maxBytes {
		e.maxBytes = b
	}
}

// kmppRows picks k seeding rows from the resident window with the
// k-means++ D² weighting on ÊD (mirroring clustering.KMeansPPCenters on
// the flat store).
func (e *Engine) kmppRows() []int {
	mom, n := e.store, e.store.Len()
	rows := make([]int, 0, e.k)
	first := e.r.Intn(n)
	rows = append(rows, first)
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = mom.EED(i, first)
	}
	for len(rows) < e.k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total <= 0 {
			next = e.r.Intn(n)
		} else {
			target := e.r.Float64() * total
			acc := 0.0
			next = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		rows = append(rows, next)
		for i := range d2 {
			if d := mom.EED(i, next); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return rows
}

// refineMaxIter caps the seed-refinement Lloyd iterations. The window is
// one mini-batch, so even the cap costs about as much as a handful of
// ordinary batches; in practice the fixed point arrives much earlier.
const refineMaxIter = 25

// refineSeed iterates the assignment/update cycle over the seeding window
// to a fixed point (capped at refineMaxIter) — UCPC-Lloyd on the window,
// starting from the centroid state currently installed in means/adds. A
// single-visit mini-batch stream never revisits an object, so centroid
// quality is bounded by how good the centroids already are when an object
// flies by; refining the first window to convergence is the cheap step
// that closes most of the gap to a full batch fit on stationary streams.
// Runs only during seeding, so its scratch may allocate.
func (e *Engine) refineSeed() {
	n := e.store.Len()
	if cap(e.assign) < n {
		e.assign = append(e.assign[:cap(e.assign)], make([]int, n-cap(e.assign))...)
	}
	assign := e.assign[:n]
	prev := make([]int, n)
	stable := false
	for t := 0; t < refineMaxIter; t++ {
		e.asg.Rebind()
		e.asg.SetCenters(e.means, e.adds)
		for i := range assign {
			assign[i] = -1
		}
		e.asg.Assign(assign, e.cfg.Workers)
		if stable && t > 0 {
			same := true
			for i := range assign {
				if assign[i] != prev[i] {
					same = false
					break
				}
			}
			if same {
				// means/adds already reflect this assignment (they were
				// computed from the identical previous one).
				break
			}
		}
		copy(prev, assign)
		e.ws.Zero()
		e.ws.AddAssigned(e.store, assign)
		e.ws.CentersInto(e.means, e.adds)
		// Clusters that won nothing are repositioned onto the window's
		// worst-served objects (the batch Lloyd empty-cluster rule). A
		// streaming fit has no later chance to revive a dead cluster, and
		// with heavily skewed streams several k-means++ seeds routinely
		// end up shadowed — without this, effective k shrinks for the
		// whole run.
		stable = e.reseedStarved(assign) == 0
	}
}

// reseedStarved repositions every zero-weight cluster onto the resident
// row farthest from its own assigned centroid (position-only: the row's
// statistics stay with its current cluster until the next assignment pass
// captures them). Rows are claimed through assign so two starved clusters
// never land on the same object. Returns the number of reseeds.
func (e *Engine) reseedStarved(assign []int) int {
	n, m := e.store.Len(), e.m
	count := 0
	for c := 0; c < e.k; c++ {
		if e.ws.Weight(c) > 0 {
			continue
		}
		far, farD := -1, -1.0
		for i := 0; i < n; i++ {
			co := assign[i]
			// Donors need at least two members so a reseed cannot starve
			// another cluster (and a just-claimed row has weight 0 < 2).
			if co < 0 || e.ws.Weight(co) < 2 {
				continue
			}
			mu := e.store.Mu(i)
			row := e.means[co*m : (co+1)*m]
			var d float64
			for j, v := range mu {
				diff := v - row[j]
				d += diff * diff
			}
			if d > farD {
				far, farD = i, d
			}
		}
		if far < 0 {
			continue
		}
		copy(e.means[c*m:(c+1)*m], e.store.Mu(far))
		e.adds[c] = e.store.TotalVar(far)
		assign[far] = c
		count++
	}
	return count
}

// step processes the resident window as one mini-batch: score against the
// pre-update centroids, fold into the decayed statistics, refresh the
// centroid read-out.
func (e *Engine) step() {
	n := e.store.Len()
	if n == 0 {
		return
	}
	e.asg.Rebind()
	e.asg.SetCenters(e.means, e.adds)
	if cap(e.assign) < n {
		e.assign = append(e.assign[:cap(e.assign)], make([]int, n-cap(e.assign))...)
	}
	assign := e.assign[:n]
	for i := range assign {
		assign[i] = -1
	}
	e.asg.Assign(assign, e.cfg.Workers)

	if e.cfg.Decay > 0 {
		e.ws.Scale(1 - e.cfg.Decay)
	}
	e.ws.AddAssigned(e.store, assign)
	e.ws.CentersInto(e.means, e.adds)
	// Revive clusters that have never been fed (zero statistical weight —
	// e.g. a warm start from a model with memberless prototypes, whose
	// +Inf additive term would otherwise keep them dead forever): park
	// them on this batch's worst-served object so they can start winning
	// from the next batch. Position-only and allocation-free; clusters
	// with any weight, however decayed, are never touched.
	e.reseedStarved(assign)
	e.hasMembers = true
	e.seen += int64(n)
	e.batches++
	if b := e.store.Bytes(); b > e.maxBytes {
		e.maxBytes = b
	}
}

// Frozen is an independent snapshot of the engine's centroid state, ready
// to be wrapped into a serving model.
type Frozen struct {
	K, Dims       int
	Means         []float64 // k*dims, row-major (copy)
	Adds          []float64 // k additive variance terms (copy)
	Sizes         []int     // rounded effective weights
	Weights       []float64 // exact effective weights (copy)
	HasMembers    bool
	Seen          int64
	Batches       int
	Objective     float64 // weighted Theorem-3 objective estimate
	ResidentBytes int64   // high-water resident moment-store footprint
}

// Snapshot freezes the current centroid state. A cold stream that has
// buffered at least k objects (but less than a full seeding window) is
// seeded on demand, so short streams still snapshot; with fewer than k
// objects observed it fails with a wrapped ErrStreamCold. Warm-started
// streams snapshot immediately.
func (e *Engine) Snapshot() (*Frozen, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.seeded {
		if e.store == nil || e.store.Len() < e.k {
			return nil, fmt.Errorf("stream: %w", clustering.ErrStreamCold)
		}
		e.seedResident()
	}
	fz := &Frozen{
		K:             e.k,
		Dims:          e.m,
		Means:         append([]float64(nil), e.means...),
		Adds:          append([]float64(nil), e.adds...),
		Sizes:         make([]int, e.k),
		Weights:       make([]float64, e.k),
		HasMembers:    e.hasMembers,
		Seen:          e.seen,
		Batches:       e.batches,
		Objective:     e.ws.EstimateJ(),
		ResidentBytes: e.maxBytes,
	}
	e.ws.Sizes(fz.Sizes)
	for c := 0; c < e.k; c++ {
		fz.Weights[c] = e.ws.Weight(c)
	}
	return fz, nil
}

// Stats is an independent copy of an engine's mergeable state: the weighted
// sufficient statistics plus the authoritative frozen centroid read-out
// (means/adds keep the engine's exact bits, including the positions of
// zero-weight clusters that the statistics alone cannot reproduce). A Stats
// value is what a shard ships to its coordinator — WS serializes through
// core's versioned wire format when the shard lives in another process.
type Stats struct {
	WS         *core.WStats
	Means      []float64 // k*m, row-major (copy)
	Adds       []float64 // k additive variance terms (copy)
	HasMembers bool
	Seen       int64
	Batches    int
}

// ExportStats freezes the engine's mergeable state. Like Snapshot, a cold
// engine that has buffered at least k objects is seeded on demand; with
// fewer it fails with a wrapped ErrStreamCold (the coordinator treats such
// a shard as not ready and merges without it).
func (e *Engine) ExportStats() (*Stats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.seeded {
		if e.store == nil || e.store.Len() < e.k {
			return nil, fmt.Errorf("stream: %w", clustering.ErrStreamCold)
		}
		e.seedResident()
	}
	ws := core.NewWStats(e.k, e.m)
	ws.CopyFrom(e.ws)
	return &Stats{
		WS:         ws,
		Means:      append([]float64(nil), e.means...),
		Adds:       append([]float64(nil), e.adds...),
		HasMembers: e.hasMembers,
		Seen:       e.seen,
		Batches:    e.batches,
	}, nil
}

// SyncCenters replaces the engine's authoritative centroid read-out — the
// positions and additive terms the next mini-batch is scored against —
// leaving the accumulated statistics untouched. The shard coordinator
// broadcasts globally merged centroids between ingest rounds with it:
// per-shard statistics keep accounting for exactly the shard's own
// objects, while assignments follow the global structure. The shard's next
// processed batch refreshes the read-out from its own statistics again
// (CentersInto skips zero-weight clusters, so a synced position survives
// on clusters the shard has never fed).
func (e *Engine) SyncCenters(means, adds []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.seeded || e.m == 0 {
		return fmt.Errorf("stream: %w", clustering.ErrStreamCold)
	}
	if len(means) != e.k*e.m || len(adds) != e.k {
		return fmt.Errorf("stream: sync state sized %d/%d for k=%d m=%d",
			len(means), len(adds), e.k, e.m)
	}
	copy(e.means, means)
	copy(e.adds, adds)
	return nil
}

// Seen returns the number of objects folded into the statistics so far.
func (e *Engine) Seen() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seen
}

// Batches returns the number of mini-batches processed so far.
func (e *Engine) Batches() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.batches
}

// Base returns the global index of the first resident row: rows keep
// stable global identities base+i across the stream even though the
// resident window is recycled.
func (e *Engine) Base() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.base
}

// ResidentBytes returns the high-water footprint of the resident moment
// store — the scale experiment's peak-RSS proxy for the streaming path.
func (e *Engine) ResidentBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.store == nil {
		return 0
	}
	b := e.store.Bytes()
	if e.maxBytes > b {
		b = e.maxBytes
	}
	return b
}
