package uncgen

import (
	"math"
	"testing"

	"ucpc/internal/datasets"
	"ucpc/internal/rng"
)

func smallDataset() *datasets.Deterministic {
	spec, _ := datasets.BenchmarkByName("Iris")
	return datasets.Generate(spec, 33).Scale(0.4)
}

func TestAssignPinsMeans(t *testing.T) {
	d := smallDataset()
	for _, model := range Models() {
		g := &Generator{Model: model}
		set := g.Assign(d, rng.New(1))
		for i, row := range set.PDFs {
			for j, f := range row {
				if math.Abs(f.Mean()-d.Points[i][j]) > 1e-6 {
					t.Fatalf("%v: pdf mean %v, want %v (point %d dim %d)",
						model, f.Mean(), d.Points[i][j], i, j)
				}
				if f.Var() <= 0 {
					t.Fatalf("%v: zero-variance pdf at (%d,%d)", model, i, j)
				}
			}
		}
	}
}

func TestAssignFiniteRegions(t *testing.T) {
	d := smallDataset()
	for _, model := range Models() {
		set := (&Generator{Model: model}).Assign(d, rng.New(2))
		for _, row := range set.PDFs {
			for _, f := range row {
				lo, hi := f.Support()
				if math.IsInf(lo, 0) || math.IsInf(hi, 0) || lo >= hi {
					t.Fatalf("%v: non-finite support [%v,%v]", model, lo, hi)
				}
			}
		}
	}
}

func TestPerturbChangesPointsKeepsLabels(t *testing.T) {
	d := smallDataset()
	set := (&Generator{Model: Normal}).Assign(d, rng.New(3))
	p := set.Perturb(d, rng.New(4))
	if len(p.Points) != len(d.Points) {
		t.Fatal("size changed")
	}
	changed := 0
	for i := range d.Points {
		if p.Labels[i] != d.Labels[i] {
			t.Fatal("labels changed")
		}
		for j := range d.Points[i] {
			if p.Points[i][j] != d.Points[i][j] {
				changed++
			}
		}
	}
	if changed == 0 {
		t.Error("perturbation left every coordinate unchanged")
	}
}

// Perturbation is unbiased: averaged over many draws, the perturbed value
// recovers the original point.
func TestPerturbUnbiased(t *testing.T) {
	d := smallDataset()
	set := (&Generator{Model: Exponential}).Assign(d, rng.New(5))
	const reps = 400
	sum := make([]float64, len(d.Points))
	for rep := 0; rep < reps; rep++ {
		p := set.Perturb(d, rng.New(uint64(100+rep)))
		for i := range p.Points {
			sum[i] += p.Points[i][0]
		}
	}
	for i := range d.Points {
		avg := sum[i] / reps
		sd := math.Sqrt(set.PDFs[i][0].Var() / reps)
		if math.Abs(avg-d.Points[i][0]) > 6*sd+1e-9 {
			t.Fatalf("point %d: perturbed mean %v vs original %v (6σ=%v)",
				i, avg, d.Points[i][0], 6*sd)
		}
	}
}

// The MCMC perturbation must target the same distribution as direct Monte
// Carlo: compare first/second moments across repetitions for one point.
func TestPerturbMCMCMatchesMonteCarlo(t *testing.T) {
	d := smallDataset()
	set := (&Generator{Model: Normal}).Assign(d, rng.New(6))
	const reps = 3000
	var mcSum, mcSq, mhSum, mhSq float64
	for rep := 0; rep < reps; rep++ {
		mc := set.Perturb(d, rng.New(uint64(1000+rep)))
		mh := set.PerturbMCMC(d, rng.New(uint64(9000+rep)), 40)
		mcSum += mc.Points[0][0]
		mcSq += mc.Points[0][0] * mc.Points[0][0]
		mhSum += mh.Points[0][0]
		mhSq += mh.Points[0][0] * mh.Points[0][0]
	}
	mcMean, mhMean := mcSum/reps, mhSum/reps
	mcVar := mcSq/reps - mcMean*mcMean
	mhVar := mhSq/reps - mhMean*mhMean
	sd := math.Sqrt(set.PDFs[0][0].Var())
	if math.Abs(mcMean-mhMean) > 0.2*sd {
		t.Errorf("MC mean %v vs MCMC mean %v (sd %v)", mcMean, mhMean, sd)
	}
	if mhVar < mcVar/3 || mhVar > mcVar*3 {
		t.Errorf("MC var %v vs MCMC var %v", mcVar, mhVar)
	}
}

func TestObjectsCase2(t *testing.T) {
	d := smallDataset()
	set := (&Generator{Model: Uniform}).Assign(d, rng.New(7))
	ds := set.Objects(d)
	if len(ds) != len(d.Points) {
		t.Fatal("size mismatch")
	}
	for i, o := range ds {
		if o.Label != d.Labels[i] {
			t.Fatal("label mismatch")
		}
		// Expected value of the uncertain object equals the original point.
		for j := 0; j < o.Dims(); j++ {
			if math.Abs(o.Mean()[j]-d.Points[i][j]) > 1e-6 {
				t.Fatalf("object %d dim %d mean %v, want %v", i, j, o.Mean()[j], d.Points[i][j])
			}
		}
		if o.TotalVar() <= 0 {
			t.Fatal("uncertain object with zero variance")
		}
	}
}

func TestAsPointObjects(t *testing.T) {
	d := smallDataset()
	ds := AsPointObjects(d)
	for i, o := range ds {
		if !o.IsDeterministic() {
			t.Fatal("point object not deterministic")
		}
		if o.Label != d.Labels[i] {
			t.Fatal("label mismatch")
		}
	}
}

func TestModelStrings(t *testing.T) {
	if Uniform.String() != "U" || Normal.String() != "N" || Exponential.String() != "E" {
		t.Error("model abbreviations wrong")
	}
	if Model(99).String() != "?" {
		t.Error("unknown model string")
	}
}

func TestIntensityScalesVariance(t *testing.T) {
	d := smallDataset()
	low := (&Generator{Model: Normal, Intensity: 0.1}).Assign(d, rng.New(8))
	high := (&Generator{Model: Normal, Intensity: 1.0}).Assign(d, rng.New(8))
	var lowVar, highVar float64
	for i := range low.PDFs {
		for j := range low.PDFs[i] {
			lowVar += low.PDFs[i][j].Var()
			highVar += high.PDFs[i][j].Var()
		}
	}
	if highVar < 10*lowVar {
		t.Errorf("intensity scaling weak: %v vs %v", lowVar, highVar)
	}
}
