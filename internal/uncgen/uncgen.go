// Package uncgen implements the paper's uncertainty-generation strategy
// (§5.1). Given a deterministic dataset D, it assigns every point w a pdf
// f_w with expected value exactly w and randomly chosen spread parameters,
// then derives:
//
//   - Case 1: a perturbed deterministic dataset D′, obtained by replacing
//     each point with one realization of its pdf, sampled either by plain
//     Monte Carlo or by Markov-Chain Monte Carlo (Metropolis–Hastings) —
//     the two methods the paper names;
//   - Case 2: an uncertain dataset D″ whose objects carry the pdfs
//     restricted to the region holding most (95 %) of their probability
//     mass.
//
// Uniform, Normal, and Exponential families are supported, "as they are
// commonly encountered in real uncertain data scenarios" (§5.1).
package uncgen

import (
	"fmt"
	"math"

	"ucpc/internal/datasets"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// Model is the pdf family assigned to the data points.
type Model int

const (
	// Uniform assigns f_w = Uniform centered at w with random width.
	Uniform Model = iota
	// Normal assigns f_w = Normal(w, σ) with random σ, truncated to its
	// central mass for Case 2.
	Normal
	// Exponential assigns a shifted Exponential with random rate whose
	// (truncated) mean is pinned at w.
	Exponential
)

// String returns the table abbreviation used in the paper (U/N/E).
func (m Model) String() string {
	switch m {
	case Uniform:
		return "U"
	case Normal:
		return "N"
	case Exponential:
		return "E"
	default:
		return "?"
	}
}

// Models lists all supported families in the paper's Table 2 order.
func Models() []Model { return []Model{Uniform, Normal, Exponential} }

// Generator assigns pdfs to deterministic points.
type Generator struct {
	// Model selects the pdf family.
	Model Model
	// Mass is the probability mass retained inside each object's domain
	// region (0 = the paper's example value 0.95).
	Mass float64
	// Intensity scales the random spread parameters relative to the
	// per-dimension standard deviation of the dataset (0 = default 0.5).
	// Each attribute's spread parameter is drawn uniformly from
	// (0.1, 1] · Intensity · std_j, realizing the paper's "all other
	// parameters were randomly chosen".
	Intensity float64
}

// PDFSet is the per-point, per-dimension pdf assignment f_w for a dataset.
type PDFSet struct {
	Model Model
	PDFs  [][]dist.Distribution // [point][dim]
}

// resolved returns the Mass and Intensity with defaults applied.
func (g *Generator) resolved() (mass, intensity float64) {
	mass = g.Mass
	if mass == 0 {
		mass = 0.95
	}
	intensity = g.Intensity
	if intensity == 0 {
		intensity = 0.5
	}
	return mass, intensity
}

// Assign builds the pdf f_w for every point of d, with µ(f_w) = w exactly.
func (g *Generator) Assign(d *datasets.Deterministic, r *rng.RNG) *PDFSet {
	std := d.PerDimStd()
	set := &PDFSet{Model: g.Model, PDFs: make([][]dist.Distribution, len(d.Points))}
	for i, p := range d.Points {
		set.PDFs[i] = g.AssignPoint(p, std, r)
	}
	return set
}

// AssignPoint builds the pdf row f_w for a single point, with µ(f_w) = w
// exactly, scaling the random spread parameters by the given per-dimension
// data spread std. This is the streaming entry point: chunk generators
// (cmd/uncbench -exp scale) attach uncertainty record by record with a
// known spread instead of materializing a whole Deterministic dataset for
// PerDimStd. Assign is AssignPoint over every point, so the two paths draw
// identical pdfs for identical RNG states.
func (g *Generator) AssignPoint(p vec.Vector, std vec.Vector, r *rng.RNG) []dist.Distribution {
	mass, intensity := g.resolved()
	row := make([]dist.Distribution, len(p))
	for j := range p {
		scale := r.Uniform(0.1, 1.0) * intensity * std[j]
		if scale <= 0 {
			scale = 1e-6
		}
		switch g.Model {
		case Uniform:
			// Width so that the uniform's std is `scale`:
			// std = width/√12.
			row[j] = dist.NewUniformAround(p[j], scale*3.4641016151377544)
		case Normal:
			row[j] = dist.NewTruncNormalCentral(p[j], scale, mass)
		case Exponential:
			// Rate so the exponential's std 1/λ is `scale`.
			row[j] = dist.NewTruncExponentialMass(p[j], 1/scale, mass)
		default:
			panic(fmt.Sprintf("uncgen: unknown model %d", g.Model))
		}
	}
	return row
}

// Perturb produces the Case-1 dataset D′ by classic Monte Carlo sampling:
// each attribute of each point is replaced by one draw from its pdf.
func (s *PDFSet) Perturb(d *datasets.Deterministic, r *rng.RNG) *datasets.Deterministic {
	out := &datasets.Deterministic{Name: d.Name + "'", Classes: d.Classes}
	out.Points = make([]vec.Vector, len(d.Points))
	out.Labels = append([]int(nil), d.Labels...)
	for i := range d.Points {
		p := make(vec.Vector, len(s.PDFs[i]))
		for j, f := range s.PDFs[i] {
			p[j] = f.Sample(r)
		}
		out.Points[i] = p
	}
	return out
}

// PerturbMCMC produces D′ by Markov-Chain Monte Carlo: an independent
// Metropolis–Hastings random walk per attribute, targeting f_w through
// density evaluations only (burn-in `steps` moves, Gaussian proposal scaled
// to the pdf's own standard deviation). Functionally equivalent to Perturb
// but exercising the MCMC path the paper mentions.
func (s *PDFSet) PerturbMCMC(d *datasets.Deterministic, r *rng.RNG, steps int) *datasets.Deterministic {
	if steps <= 0 {
		steps = 32
	}
	out := &datasets.Deterministic{Name: d.Name + "'", Classes: d.Classes}
	out.Points = make([]vec.Vector, len(d.Points))
	out.Labels = append([]int(nil), d.Labels...)
	for i := range d.Points {
		p := make(vec.Vector, len(s.PDFs[i]))
		for j, f := range s.PDFs[i] {
			p[j] = metropolis(f, d.Points[i][j], steps, r)
		}
		out.Points[i] = p
	}
	return out
}

// metropolis runs a 1-D Metropolis–Hastings chain targeting f, started at
// the pdf's mean (x0), and returns the state after the given steps.
func metropolis(f dist.Distribution, x0 float64, steps int, r *rng.RNG) float64 {
	sd := f.Var()
	if sd > 0 {
		sd = math.Sqrt(sd)
	} else {
		return x0 // point mass
	}
	x := x0
	px := f.PDF(x)
	if px == 0 {
		// Mean may sit on a zero-density point for exotic pdfs; nudge
		// into the support.
		lo, hi := f.Support()
		x = (lo + hi) / 2
		px = f.PDF(x)
	}
	for t := 0; t < steps; t++ {
		cand := x + r.Normal(0, sd)
		pc := f.PDF(cand)
		if pc <= 0 {
			continue
		}
		if pc >= px || r.Float64() < pc/px {
			x, px = cand, pc
		}
	}
	return x
}

// Objects produces the Case-2 uncertain dataset D″: one uncertain object
// per point carrying the assigned (mass-truncated) pdfs and the reference
// label.
func (s *PDFSet) Objects(d *datasets.Deterministic) uncertain.Dataset {
	ds := make(uncertain.Dataset, len(d.Points))
	for i := range d.Points {
		ds[i] = uncertain.NewObject(i, s.PDFs[i]).WithLabel(d.Labels[i])
	}
	return ds
}

// AsPointObjects converts a deterministic dataset into point-mass uncertain
// objects so that the uncertain algorithms can cluster Case-1 data
// unchanged (they collapse to their classical counterparts).
func AsPointObjects(d *datasets.Deterministic) uncertain.Dataset {
	ds := make(uncertain.Dataset, len(d.Points))
	for i, p := range d.Points {
		ds[i] = uncertain.FromPoint(i, p).WithLabel(d.Labels[i])
	}
	return ds
}
