package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"ucpc"
	"ucpc/internal/core"
	"ucpc/internal/persist"
)

// ErrCorruptSnapshot marks a persisted tenant snapshot that failed its
// checksum, framing, or decode validation — the typed error handlers map to
// 503 and boot-time restore answers with quarantine + a healthz degraded
// state. Errors wrap the offending file path.
var ErrCorruptSnapshot = persist.ErrCorrupt

// persistAll snapshots every dirty tenant, returning the first failure
// (after trying the rest). A failure flips healthz to degraded until the
// next clean pass.
func (s *Server) persistAll() error {
	var first error
	for _, t := range s.reg.list() {
		if err := s.persistTenant(t); err != nil {
			s.metrics.snapshotFailures.Add(1)
			s.logger.Error("snapshot failed", "tenant", t.id, "error", err)
			if first == nil {
				first = err
			}
		}
	}
	if first != nil {
		s.setPersistFailure(fmt.Sprintf("persist: %v", first))
		return first
	}
	s.setPersistFailure("")
	return nil
}

// persistTenant writes one tenant's snapshot through the store's atomic
// write path. Unchanged tenants (same ingested count and model version as
// the last durable snapshot) are skipped. The snapshot carries the creation
// spec, the installed serving model verbatim, an engine checkpoint (the
// current stream centroids frozen as a UCPM model — the BeginFrom seed for
// restart), and the exported UCWS statistics; a cold engine simply omits
// the checkpoint and statistics.
//
// The manifest's Seen is the tenant's ingested counter — every object the
// ingester has folded into the fitter — not the engine's own Seen, which
// lags while a cold engine buffers toward its seeding window and resets to
// zero on a warm start. fit.Snapshot() seeds a buffering engine on demand,
// so the checkpoint always covers everything the counter claims.
func (s *Server) persistTenant(t *tenant) error {
	if s.store == nil {
		return nil
	}
	t.persistMu.Lock()
	defer t.persistMu.Unlock()
	fit := t.snapshotFit()
	seen := t.ingested.Load()
	version := t.version.Load()
	if t.lastSaveNano.Load() != 0 &&
		seen == t.persistedSeen.Load() && version == t.persistedVersion.Load() {
		return nil
	}
	spec, err := json.Marshal(t.spec)
	if err != nil {
		return fmt.Errorf("serve: encode tenant %q spec: %w", t.id, err)
	}
	snap := &persist.TenantSnapshot{
		ID:            t.id,
		Spec:          spec,
		ModelVersion:  version,
		Seen:          seen,
		SavedUnixNano: time.Now().UnixNano(),
	}
	if m := t.model.Load(); m != nil {
		if snap.Model, err = m.MarshalBinary(); err != nil {
			return fmt.Errorf("serve: encode tenant %q model: %w", t.id, err)
		}
	}
	if checkpoint, err := fit.Snapshot(); err == nil {
		if snap.Engine, err = checkpoint.MarshalBinary(); err != nil {
			return fmt.Errorf("serve: encode tenant %q engine checkpoint: %w", t.id, err)
		}
	} else if !errors.Is(err, ucpc.ErrStreamCold) {
		return fmt.Errorf("serve: checkpoint tenant %q: %w", t.id, err)
	}
	if exporter, ok := fit.(interface{ ExportStats() ([]byte, error) }); ok {
		if stats, err := exporter.ExportStats(); err == nil {
			snap.Stats = stats
		} else if !errors.Is(err, ucpc.ErrStreamCold) {
			return fmt.Errorf("serve: export tenant %q statistics: %w", t.id, err)
		}
	}
	if err := s.store.Save(snap); err != nil {
		return err
	}
	t.persistedSeen.Store(seen)
	t.persistedVersion.Store(version)
	t.lastSaveNano.Store(snap.SavedUnixNano)
	s.metrics.snapshots.Add(1)
	return nil
}

// restore replays the state directory on boot: every recoverable tenant
// resumes serving from its persisted model with ingestion warm-started,
// every corrupt or partial snapshot is quarantined and recorded as a
// healthz degraded reason — a damaged disk never prevents startup.
func (s *Server) restore() {
	ids, err := s.store.IDs()
	if err != nil {
		s.addBootDegraded(fmt.Sprintf("restore: %v", err))
		s.logger.Error("restore: listing snapshots failed", "error", err)
		return
	}
	for _, id := range ids {
		snap, err := s.store.Load(id)
		if err == nil {
			err = s.restoreTenant(snap)
		}
		if err == nil {
			s.metrics.tenantsRestored.Add(1)
			s.logger.Info("tenant restored", "tenant", id)
			continue
		}
		if errors.Is(err, os.ErrNotExist) {
			continue // directory without a manifest: a tenant that never persisted
		}
		s.metrics.tenantsQuarantined.Add(1)
		s.addBootDegraded(fmt.Sprintf("tenant %s quarantined: %v", id, err))
		if dst, qerr := s.store.Quarantine(id); qerr == nil {
			s.logger.Error("corrupt snapshot quarantined", "tenant", id, "moved_to", dst, "error", err)
		} else {
			s.logger.Error("corrupt snapshot could not be quarantined", "tenant", id,
				"error", err, "quarantine_error", qerr)
		}
	}
}

// restoreTenant rebuilds one tenant from its snapshot: the spec recreates
// the engines, the persisted serving model is reinstalled verbatim at its
// persisted version, and — for stream tenants — ingestion is warm-started
// from the engine checkpoint via BeginFrom (falling back to the serving
// model, and to a cold engine when neither supports a warm start). Decode
// failures come back wrapping ErrCorruptSnapshot so the caller quarantines.
func (s *Server) restoreTenant(snap *persist.TenantSnapshot) error {
	var spec TenantSpec
	if err := json.Unmarshal(snap.Spec, &spec); err != nil {
		return fmt.Errorf("serve: tenant %q snapshot spec: %v: %w", snap.ID, err, ErrCorruptSnapshot)
	}
	if spec.ID != snap.ID {
		return fmt.Errorf("serve: snapshot %q carries spec for tenant %q: %w",
			snap.ID, spec.ID, ErrCorruptSnapshot)
	}
	var model *ucpc.Model
	if snap.Model != nil {
		model = new(ucpc.Model)
		if err := model.UnmarshalBinary(snap.Model); err != nil {
			return fmt.Errorf("serve: tenant %q snapshot model: %v: %w", snap.ID, err, ErrCorruptSnapshot)
		}
	}
	var checkpoint *ucpc.Model
	if snap.Engine != nil {
		checkpoint = new(ucpc.Model)
		if err := checkpoint.UnmarshalBinary(snap.Engine); err != nil {
			return fmt.Errorf("serve: tenant %q engine checkpoint: %v: %w", snap.ID, err, ErrCorruptSnapshot)
		}
	}
	if snap.Stats != nil {
		// Validate now so bit rot in the statistics file surfaces as a boot
		// quarantine, not a failed merge later.
		if _, err := core.UnmarshalWStats(snap.Stats); err != nil {
			return fmt.Errorf("serve: tenant %q snapshot statistics: %v: %w", snap.ID, err, ErrCorruptSnapshot)
		}
	}
	t, err := newTenant(spec, s.cfg.QueueChunks, s.metrics, s.admissionDefaults())
	if err != nil {
		return fmt.Errorf("serve: tenant %q snapshot spec rejected: %v: %w", snap.ID, err, ErrCorruptSnapshot)
	}
	if model != nil {
		t.model.Store(model)
	}
	t.version.Store(snap.ModelVersion)
	if spec.Shards == 0 {
		warm := checkpoint
		if warm == nil {
			warm = model
		}
		if warm != nil {
			fit, err := (&ucpc.StreamClusterer{Config: t.scfg}).BeginFrom(context.Background(), warm)
			if err == nil {
				t.mu.Lock()
				t.fit = fit
				t.mu.Unlock()
			} else {
				// A model that cannot seed a warm start (e.g. no members) is
				// not corruption: serve from it cold and keep ingesting.
				s.logger.Warn("warm start unavailable, engine restarts cold",
					"tenant", snap.ID, "error", err)
			}
		}
	}
	// The ingested counter resumes from the snapshot so it stays monotonic
	// across restarts (the warm-started engine's own Seen restarts at zero —
	// recovered mass lives in the checkpoint weights, not its counter).
	t.ingested.Store(snap.Seen)
	t.persistedSeen.Store(snap.Seen)
	t.persistedVersion.Store(snap.ModelVersion)
	t.lastSaveNano.Store(snap.SavedUnixNano)
	if !s.reg.add(t) {
		t.closeQueue()
		return fmt.Errorf("serve: tenant %q restored twice", snap.ID)
	}
	s.startPush(t)
	return nil
}
