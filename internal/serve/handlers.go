package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"ucpc"
	"ucpc/internal/datasets"
	"ucpc/internal/dist"
)

// errBadRequest marks client-side request defects (malformed JSON, invalid
// tenant specs, unknown algorithm names); every handler maps it to 400.
var errBadRequest = errors.New("bad request")

// httpStatus maps the library's typed errors onto HTTP status codes: input
// defects are 400, state conflicts (cold stream, no model, warm-start
// impossibility) are 409, exhausted budgets are 429, and an expired
// per-request budget is 503. Everything unrecognized is a 500.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, errBadRequest),
		errors.Is(err, ucpc.ErrBadK),
		errors.Is(err, ucpc.ErrBadConfig),
		errors.Is(err, ucpc.ErrDimMismatch),
		errors.Is(err, ucpc.ErrEmptyDataset),
		errors.Is(err, ucpc.ErrBadModelFormat),
		errors.Is(err, ucpc.ErrModelVersion),
		errors.Is(err, datasets.ErrMalformed):
		return http.StatusBadRequest
	case errors.Is(err, ucpc.ErrStreamCold),
		errors.Is(err, ucpc.ErrWarmStartUnsupported),
		errors.Is(err, errNoModel),
		errors.Is(err, errBusy):
		return http.StatusConflict
	case errors.Is(err, ucpc.ErrStreamBudget):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrCorruptSnapshot),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

var (
	// errNoModel marks serving requests against a tenant that has not
	// installed a model yet (no snapshot, fit, or upload has happened).
	errNoModel = errors.New("no model installed (snapshot, fit, or upload one first)")
	// errBusy marks a refresh rejected because one is already running.
	errBusy = errors.New("a refresh is already running")
)

// objectsPayload is the JSON object container shared by the observe, fit,
// assign, and refresh endpoints. Objects carry full marginal distributions
// as ucsv tokens (the hardened datasets parser decodes them); points are
// plain vectors turned into deterministic objects. Both may appear in one
// payload; objects come first in the resulting dataset order.
type objectsPayload struct {
	Objects []objectJSON `json:"objects,omitempty"`
	Points  [][]float64  `json:"points,omitempty"`
}

// objectJSON is one uncertain object: per-dimension marginal tokens
// ("P:x", "U:lo:hi", "N:mu:sigma:lo:hi", "E:rate:shift:T", "D:x:w:…") and
// an optional class label.
type objectJSON struct {
	Marginals []string `json:"marginals"`
	Label     *int     `json:"label,omitempty"`
}

// dataset decodes the payload into a ucpc.Dataset.
func (p *objectsPayload) dataset() (ucpc.Dataset, error) {
	n := len(p.Objects) + len(p.Points)
	if n == 0 {
		return nil, fmt.Errorf("serve: payload carries no objects: %w", errBadRequest)
	}
	ds := make(ucpc.Dataset, 0, n)
	for i, o := range p.Objects {
		if len(o.Marginals) == 0 {
			return nil, fmt.Errorf("serve: object %d has no marginals: %w", i, errBadRequest)
		}
		ms := make([]dist.Distribution, len(o.Marginals))
		for j, tok := range o.Marginals {
			d, err := datasets.ParseMarginal(tok)
			if err != nil {
				return nil, fmt.Errorf("serve: object %d dim %d: %w", i, j, err)
			}
			ms[j] = d
		}
		obj := ucpc.NewObject(len(ds), ms)
		if o.Label != nil {
			obj.Label = *o.Label
		} else {
			obj.Label = -1
		}
		ds = append(ds, obj)
	}
	for i, x := range p.Points {
		if len(x) == 0 {
			return nil, fmt.Errorf("serve: point %d is empty: %w", i, errBadRequest)
		}
		for j, v := range x {
			if v != v || v > 1e308 || v < -1e308 {
				return nil, fmt.Errorf("serve: point %d dim %d is not finite: %w", i, j, errBadRequest)
			}
		}
		o := ucpc.NewPointObject(len(ds), x)
		o.Label = -1
		ds = append(ds, o)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// tenantInfo is the JSON shape of one tenant on the read surface.
type tenantInfo struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm"`
	K         int    `json:"k"`
	Shards    int    `json:"shards,omitempty"`

	HasModel     bool    `json:"has_model"`
	ModelVersion int64   `json:"model_version"`
	Swaps        int64   `json:"swaps"`
	ModelK       int     `json:"model_k,omitempty"`
	Iterations   int     `json:"iterations,omitempty"`
	Objective    float64 `json:"objective,omitempty"`

	Ingested      int64  `json:"ingested_objects"`
	Queued        int64  `json:"queued_objects"`
	StreamSeen    int64  `json:"stream_seen"`
	StreamBatches int    `json:"stream_batches"`
	Refreshing    bool   `json:"refreshing,omitempty"`
	IngestError   string `json:"last_ingest_error,omitempty"`
	RefreshError  string `json:"last_refresh_error,omitempty"`

	// Durability/federation surface (zero unless the daemon has a state
	// dir / push target respectively).
	PersistedSeen     int64  `json:"persisted_seen,omitempty"`
	LastSnapshotNanos int64  `json:"last_snapshot_unix_nano,omitempty"`
	PushSuccess       int64  `json:"push_success,omitempty"`
	PushFailures      int64  `json:"push_failures,omitempty"`
	PushBreakerOpen   bool   `json:"push_breaker_open,omitempty"`
	LastPushSeen      int64  `json:"last_push_seen,omitempty"`
	PushError         string `json:"last_push_error,omitempty"`
}

func (t *tenant) info() tenantInfo {
	info := tenantInfo{
		ID: t.id, Algorithm: t.alg, K: t.k, Shards: t.shards,
		ModelVersion: t.version.Load(),
		Swaps:        t.swaps.Load(),
		Ingested:     t.ingested.Load(),
		Queued:       t.queued.Load(),
		Refreshing:   t.refreshing.Load(),
		IngestError:  t.lastIngestError(),
		RefreshError: t.lastRefreshError(),

		PersistedSeen:     t.persistedSeen.Load(),
		LastSnapshotNanos: t.lastSaveNano.Load(),
		PushSuccess:       t.pushSuccess.Load(),
		PushFailures:      t.pushFailures.Load(),
		PushBreakerOpen:   t.breakerOpen.Load(),
		LastPushSeen:      t.lastPushSeen.Load(),
		PushError:         t.lastPushError(),
	}
	fit := t.snapshotFit()
	info.StreamSeen = fit.Seen()
	info.StreamBatches = fit.Batches()
	if m := t.model.Load(); m != nil {
		info.HasModel = true
		info.ModelK = m.K()
		rep := m.Report()
		info.Iterations = rep.Iterations
		if rep.Objective == rep.Objective { // omit NaN (json cannot carry it)
			info.Objective = rep.Objective
		}
	}
	return info
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr renders err as {"error": "..."} with its mapped status.
func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatus(err), map[string]string{"error": err.Error()})
}

// decodeBody decodes the request body as JSON into v, with the server's
// body-size cap applied.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("serve: body exceeds %d bytes: %w", tooBig.Limit, errBadRequest)
		}
		return fmt.Errorf("serve: malformed JSON body: %v: %w", err, errBadRequest)
	}
	return nil
}

// tenantOr404 resolves the {id} path value, answering 404 itself when the
// tenant does not exist.
func (s *Server) tenantOr404(w http.ResponseWriter, r *http.Request) (*tenant, bool) {
	id := r.PathValue("id")
	t, ok := s.reg.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown tenant %q", id)})
		return nil, false
	}
	return t, true
}

// handleCreateTenant: POST /v1/tenants.
func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var spec TenantSpec
	if err := s.decodeBody(w, r, &spec); err != nil {
		writeErr(w, err)
		return
	}
	t, err := newTenant(spec, s.cfg.QueueChunks, s.metrics, s.admissionDefaults())
	if err != nil {
		writeErr(w, err)
		return
	}
	if !s.reg.add(t) {
		t.closeQueue()
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("tenant %q already exists", spec.ID)})
		return
	}
	s.startPush(t)
	if s.store != nil {
		// Persist the spec right away so a crash before the first timer tick
		// still recovers the tenant (empty — but existing, with its config).
		if err := s.persistTenant(t); err != nil {
			s.logger.Error("initial snapshot failed", "tenant", t.id, "error", err)
		}
	}
	s.logger.Info("tenant created", "tenant", t.id, "algorithm", t.alg, "k", t.k, "shards", t.shards)
	writeJSON(w, http.StatusCreated, t.info())
}

// handleListTenants: GET /v1/tenants.
func (s *Server) handleListTenants(w http.ResponseWriter, _ *http.Request) {
	ts := s.reg.list()
	infos := make([]tenantInfo, len(ts))
	for i, t := range ts {
		infos[i] = t.info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": infos})
}

// handleGetTenant: GET /v1/tenants/{id}.
func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tenantOr404(w, r); ok {
		writeJSON(w, http.StatusOK, t.info())
	}
}

// handleDeleteTenant: DELETE /v1/tenants/{id}. The ingester drains what is
// already queued in the background; new requests see 404 immediately.
func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.reg.remove(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown tenant %q", id)})
		return
	}
	t.closeQueue()
	if s.store != nil {
		if err := s.store.Remove(id); err != nil {
			s.logger.Error("removing persisted state failed", "tenant", id, "error", err)
		}
	}
	s.logger.Info("tenant deleted", "tenant", id)
	w.WriteHeader(http.StatusNoContent)
}

// handleObserve: POST /v1/tenants/{id}/observe — streaming ingestion. The
// payload is parsed synchronously (malformed input stays a 400 on this
// request) and then handed to the tenant's bounded queue; a full queue is
// explicit backpressure: 429 with Retry-After, and the payload is dropped.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOr404(w, r)
	if !ok {
		return
	}
	var payload objectsPayload
	if err := s.decodeBody(w, r, &payload); err != nil {
		writeErr(w, err)
		return
	}
	ds, err := payload.dataset()
	if err != nil {
		writeErr(w, err)
		return
	}
	if dec := t.adm.admit(routeObserve, len(ds), t.queued.Load()); dec.verdict != admitOK {
		writeShed(w, t.id, "observe", dec)
		return
	}
	if !t.enqueue(ds) {
		s.metrics.queueRejected.Add(1)
		// Price the backpressure: how long the ingester needs to drain the
		// queued objects at the measured per-object ingest cost.
		retry := retryAfterSeconds(t.adm.queueRetryAfter(t.queued.Load()))
		w.Header().Set("Retry-After", fmt.Sprint(retry))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": fmt.Sprintf("tenant %q ingestion queue is full", t.id)})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"queued_objects": t.queued.Load(),
		"accepted":       len(ds),
	})
}

// handleFit: POST /v1/tenants/{id}/fit — synchronous batch fit of the
// posted objects with the tenant's algorithm and Config, installed as the
// serving model on success. Runs under the request context, so the
// per-request timeout bounds the fit.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOr404(w, r)
	if !ok {
		return
	}
	var payload objectsPayload
	if err := s.decodeBody(w, r, &payload); err != nil {
		writeErr(w, err)
		return
	}
	ds, err := payload.dataset()
	if err != nil {
		writeErr(w, err)
		return
	}
	clusterer := &ucpc.Clusterer{Algorithm: t.alg, Config: t.cfg}
	model, err := clusterer.Fit(r.Context(), ds, t.k)
	if err != nil {
		writeErr(w, err)
		return
	}
	version := t.install(model, s.metrics)
	s.pokeSnapshot()
	s.logger.Info("model fitted", "tenant", t.id, "objects", len(ds), "version", version)
	writeJSON(w, http.StatusOK, t.info())
}

// handleSnapshot: POST /v1/tenants/{id}/snapshot — freeze the stream
// engine's current centroids as a Model and hot-swap it in. The stream
// keeps running; a cold stream (fewer than k objects ingested) is 409.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOr404(w, r)
	if !ok {
		return
	}
	model, err := t.snapshotFit().Snapshot()
	if err != nil {
		writeErr(w, err)
		return
	}
	version := t.install(model, s.metrics)
	s.pokeSnapshot()
	s.logger.Info("model swapped", "tenant", t.id, "source", "snapshot", "version", version)
	writeJSON(w, http.StatusOK, t.info())
}

// refreshRequest is the body of POST /v1/tenants/{id}/refresh. With mode
// "stream" the tenant's ingestion engine is re-begun warm from the current
// serving model (BeginFrom). Otherwise the posted objects are refit in the
// background with FitFrom (warm-started batch refit) and hot-swapped in
// when done; the response is 202 immediately — serving never blocks.
type refreshRequest struct {
	Mode string `json:"mode,omitempty"`
	objectsPayload
}

// handleRefresh: POST /v1/tenants/{id}/refresh.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOr404(w, r)
	if !ok {
		return
	}
	var req refreshRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	cur := t.model.Load()
	if cur == nil {
		writeErr(w, fmt.Errorf("serve: tenant %q: %w", t.id, errNoModel))
		return
	}
	switch req.Mode {
	case "stream":
		if t.shards != 0 {
			writeErr(w, fmt.Errorf("serve: tenant %q is sharded; stream refresh requires a stream tenant: %w",
				t.id, errBadRequest))
			return
		}
		fit, err := (&ucpc.StreamClusterer{Config: t.scfg}).BeginFrom(r.Context(), cur)
		if err != nil {
			writeErr(w, err)
			return
		}
		t.mu.Lock()
		t.fit = fit
		t.mu.Unlock()
		s.logger.Info("stream re-begun from serving model", "tenant", t.id)
		writeJSON(w, http.StatusOK, t.info())
	case "", "batch":
		ds, err := req.dataset()
		if err != nil {
			writeErr(w, err)
			return
		}
		if !t.refreshing.CompareAndSwap(false, true) {
			writeErr(w, fmt.Errorf("serve: tenant %q: %w", t.id, errBusy))
			return
		}
		go func() {
			defer t.refreshing.Store(false)
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.FitTimeout)
			defer cancel()
			clusterer := &ucpc.Clusterer{Algorithm: t.alg, Config: t.cfg}
			model, err := clusterer.FitFrom(ctx, cur, ds)
			if err != nil {
				msg := err.Error()
				t.refreshErr.Store(&msg)
				s.logger.Error("background refresh failed", "tenant", t.id, "error", msg)
				return
			}
			version := t.install(model, s.metrics)
			s.pokeSnapshot()
			s.logger.Info("model swapped", "tenant", t.id, "source", "refresh", "version", version)
		}()
		writeJSON(w, http.StatusAccepted, map[string]any{"status": "refreshing", "objects": len(ds)})
	default:
		writeErr(w, fmt.Errorf("serve: unknown refresh mode %q (valid: stream, batch): %w", req.Mode, errBadRequest))
	}
}

// handleAssign: POST /v1/tenants/{id}/assign — the serving path. Objects
// are scored against the frozen model behind the atomic pointer through the
// concurrency-safe Model.Assign; the request context (with the server's
// per-request timeout) cancels long batches.
func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOr404(w, r)
	if !ok {
		return
	}
	// The cost model meters the whole serving path — parse through Assign —
	// so the bucket sizing reflects what a request actually costs the box.
	// wallStart is the same span on the real clock: it feeds the latency
	// histogram, the figure the admission layer's budget is judged against.
	entry := t.adm.now()
	wallStart := time.Now()
	var payload objectsPayload
	if err := s.decodeBody(w, r, &payload); err != nil {
		writeErr(w, err)
		return
	}
	ds, err := payload.dataset()
	if err != nil {
		writeErr(w, err)
		return
	}
	dec := t.adm.admit(routeAssign, len(ds), 0)
	if dec.verdict != admitOK {
		writeShed(w, t.id, "assign", dec)
		return
	}
	defer t.adm.exit(routeAssign, len(ds))
	model := t.model.Load()
	if model == nil {
		writeErr(w, fmt.Errorf("serve: tenant %q: %w", t.id, errNoModel))
		return
	}
	assign, err := model.Assign(r.Context(), ds)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Only uncontended requests sample the cost model: a request admitted
	// into an empty pipeline measures true service time, while a contended
	// wall time folds co-runners' queueing into the estimate. Under
	// saturation the estimate simply freezes at its last clean value.
	if dec.conc == 1 {
		t.adm.observeCost(routeAssign, len(ds), t.adm.now().Sub(entry))
	}
	s.metrics.assignLatency.observe(time.Since(wallStart).Seconds())
	s.metrics.assignBatch.observe(float64(len(ds)))
	s.metrics.assignObjects.Add(int64(len(ds)))
	writeJSON(w, http.StatusOK, map[string]any{
		"assign":        assign,
		"model_version": t.version.Load(),
		"k":             model.K(),
	})
}

// writeShed renders an admission refusal: 429 with a Retry-After priced
// from the bucket refill deficit (plus queue drain on the observe path), or
// 413 with the largest admissible batch. Admission never sheds with 5xx.
func writeShed(w http.ResponseWriter, tenantID, route string, dec decision) {
	switch dec.verdict {
	case shed429:
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(dec.retryAfter)))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": fmt.Sprintf("tenant %q: %s rate limit exceeded", tenantID, route)})
	case shed413:
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
			"error":             fmt.Sprintf("tenant %q: batch exceeds the %s admission burst", tenantID, route),
			"max_batch_objects": dec.maxBatch,
		})
	}
}

// handleGetModel: GET /v1/tenants/{id}/model — the serving model in the
// versioned UCPM wire format (SaveModel), for checkpointing or shipping to
// another daemon.
func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOr404(w, r)
	if !ok {
		return
	}
	model := t.model.Load()
	if model == nil {
		writeErr(w, fmt.Errorf("serve: tenant %q: %w", t.id, errNoModel))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Model-Version", fmt.Sprint(t.version.Load()))
	if err := ucpc.SaveModel(w, model); err != nil {
		s.logger.Error("model download failed mid-write", "tenant", t.id, "error", err)
	}
}

// handlePutModel: PUT /v1/tenants/{id}/model — upload a UCPM payload
// (LoadModel) and hot-swap it in as the serving model.
func (s *Server) handlePutModel(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOr404(w, r)
	if !ok {
		return
	}
	model, err := ucpc.LoadModel(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeErr(w, err)
		return
	}
	version := t.install(model, s.metrics)
	s.pokeSnapshot()
	s.logger.Info("model swapped", "tenant", t.id, "source", "upload", "version", version)
	writeJSON(w, http.StatusOK, t.info())
}

// handleGetStats: GET /v1/tenants/{id}/stats — the stream engine's current
// weighted sufficient statistics in the versioned UCWS wire format, the
// payload a remote daemon imports with POST …/stats. Stream tenants only.
func (s *Server) handleGetStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOr404(w, r)
	if !ok {
		return
	}
	exporter, ok := t.snapshotFit().(interface{ ExportStats() ([]byte, error) })
	if !ok {
		writeErr(w, fmt.Errorf("serve: tenant %q is sharded; stats export requires a stream tenant: %w",
			t.id, errBadRequest))
		return
	}
	payload, err := exporter.ExportStats()
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(payload)
}

// handlePostStats: POST /v1/tenants/{id}/stats — fold a remote shard's
// UCWS statistics payload into every subsequent snapshot of a sharded
// tenant. Without a query parameter the payload is *added*
// (ShardedFit.AddRemoteStats — one-shot shipments). With ?source=<key> it
// *replaces* that source's previous payload (ShardedFit.SetRemoteStats) —
// the shape the federation push loop uses, so an edge re-pushing its
// cumulative statistics every few seconds is counted exactly once.
func (s *Server) handlePostStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOr404(w, r)
	if !ok {
		return
	}
	fit := t.snapshotFit()
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeErr(w, fmt.Errorf("serve: reading stats payload: %v: %w", err, errBadRequest))
		return
	}
	if source := r.URL.Query().Get("source"); source != "" {
		keyed, ok := fit.(interface{ SetRemoteStats(string, []byte) error })
		if !ok {
			writeErr(w, fmt.Errorf("serve: tenant %q is a stream tenant; stats import requires shards >= 1: %w",
				t.id, errBadRequest))
			return
		}
		if err := keyed.SetRemoteStats(source, payload); err != nil {
			writeErr(w, err)
			return
		}
		s.logger.Info("remote statistics replaced", "tenant", t.id, "source", source, "bytes", len(payload))
		writeJSON(w, http.StatusOK, map[string]string{"status": "merged", "source": source})
		return
	}
	importer, ok := fit.(interface{ AddRemoteStats([]byte) error })
	if !ok {
		writeErr(w, fmt.Errorf("serve: tenant %q is a stream tenant; stats import requires shards >= 1: %w",
			t.id, errBadRequest))
		return
	}
	if err := importer.AddRemoteStats(payload); err != nil {
		writeErr(w, err)
		return
	}
	s.logger.Info("remote statistics merged", "tenant", t.id, "bytes", len(payload))
	writeJSON(w, http.StatusOK, map[string]string{"status": "merged"})
}
