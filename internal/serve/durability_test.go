package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ucpc/internal/persist"
)

// newDurableServer mounts a daemon with a state dir (and any extra config)
// on httptest, without the automatic closeAll cleanup — durability tests
// manage shutdown/abort themselves.
func newDurableServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getBody fetches path and returns status and body text.
func getBody(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestRestoreRoundTrip: a daemon with a state dir persists a tenant with a
// served model; a second daemon on the same directory resumes serving that
// model at the same version, with ingestion warm-started from the engine
// checkpoint.
func TestRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, Config{StateDir: dir, SnapshotInterval: time.Hour})
	do(t, "POST", ts1.URL+"/v1/tenants", `{"id":"t1","k":2,"seed":3}`, 201, nil)
	do(t, "POST", ts1.URL+"/v1/tenants/t1/observe", pointsBody(400, 1), 202, nil)
	waitIngested(t, ts1.URL+"/v1/tenants/t1", 400)
	var info tenantInfo
	do(t, "POST", ts1.URL+"/v1/tenants/t1/snapshot", "", 200, &info)
	if info.ModelVersion != 1 {
		t.Fatalf("model version %d, want 1", info.ModelVersion)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newDurableServer(t, Config{StateDir: dir, SnapshotInterval: time.Hour})
	if got := s2.metrics.tenantsRestored.Load(); got != 1 {
		t.Fatalf("tenants restored = %d, want 1", got)
	}
	var rec tenantInfo
	do(t, "GET", ts2.URL+"/v1/tenants/t1", "", 200, &rec)
	if !rec.HasModel || rec.ModelVersion != 1 {
		t.Fatalf("recovered tenant: has_model=%v version=%d, want model at version 1",
			rec.HasModel, rec.ModelVersion)
	}
	if rec.Ingested != 400 {
		t.Fatalf("recovered tenant ingested counter = %d, want 400 resumed from the manifest", rec.Ingested)
	}
	// Warm start: a snapshot succeeds immediately on the recovered engine
	// without a single new observation — a cold engine would answer 409
	// (ErrStreamCold). The warm engine's own Seen counter restarts at zero
	// by design (recovered mass lives in the checkpoint weights).
	var resnap tenantInfo
	do(t, "POST", ts2.URL+"/v1/tenants/t1/snapshot", "", 200, &resnap)
	if resnap.ModelVersion != 2 {
		t.Fatalf("post-restore snapshot installed version %d, want 2", resnap.ModelVersion)
	}
	// Serving resumes from the recovered model — and keeps ingesting.
	var assign struct {
		Assign []int `json:"assign"`
	}
	do(t, "POST", ts2.URL+"/v1/tenants/t1/assign", pointsBody(16, 2), 200, &assign)
	if len(assign.Assign) != 16 {
		t.Fatalf("assign served %d labels, want 16", len(assign.Assign))
	}
	do(t, "POST", ts2.URL+"/v1/tenants/t1/observe", pointsBody(64, 3), 202, nil)
	waitIngested(t, ts2.URL+"/v1/tenants/t1", 400+64)
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownPersistsAfterDrain is the satellite-1 regression: payloads
// accepted (202) immediately before Shutdown must appear in the final
// snapshot — the SIGTERM snapshot is taken after the ingestion queue
// drains, so no trailing observes are lost between drain and persist.
func TestShutdownPersistsAfterDrain(t *testing.T) {
	dir := t.TempDir()
	// SnapshotInterval is an hour: the ONLY snapshot covering the late
	// payloads is the final one Shutdown takes.
	s, ts := newDurableServer(t, Config{StateDir: dir, SnapshotInterval: time.Hour})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"t1","k":2,"seed":3}`, 201, nil)
	const total = 6 * 200
	for i := 0; i < 6; i++ {
		do(t, "POST", ts.URL+"/v1/tenants/t1/observe", pointsBody(200, int64(i)), 202, nil)
	}
	// No waitIngested: the payloads may still be queued when Shutdown runs.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	store, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.Load("t1")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seen != total {
		t.Fatalf("final snapshot carries seen=%d, want %d (queued observes lost between drain and persist)",
			snap.Seen, total)
	}
}

// TestCorruptSnapshotQuarantined: a bit-flipped snapshot file must not
// prevent boot — the tenant is quarantined, healthz reports degraded, and
// the typed error maps to 503.
func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, Config{StateDir: dir, SnapshotInterval: time.Hour})
	do(t, "POST", ts1.URL+"/v1/tenants", `{"id":"good","k":2,"seed":3}`, 201, nil)
	do(t, "POST", ts1.URL+"/v1/tenants", `{"id":"bad","k":2,"seed":3}`, 201, nil)
	for _, id := range []string{"good", "bad"} {
		do(t, "POST", ts1.URL+"/v1/tenants/"+id+"/observe", pointsBody(300, 7), 202, nil)
		waitIngested(t, ts1.URL+"/v1/tenants/"+id, 300)
		do(t, "POST", ts1.URL+"/v1/tenants/"+id+"/snapshot", "", 200, nil)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte in the bad tenant's persisted model.
	path := filepath.Join(dir, "tenants", "bad", "model.ucsf")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newDurableServer(t, Config{StateDir: dir, SnapshotInterval: time.Hour})
	if got := s2.metrics.tenantsQuarantined.Load(); got != 1 {
		t.Fatalf("tenants quarantined = %d, want 1", got)
	}
	do(t, "GET", ts2.URL+"/v1/tenants/good", "", 200, nil)
	resp, err := http.Get(ts2.URL + "/v1/tenants/bad")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt tenant answered %d, want 404 (quarantined)", resp.StatusCode)
	}
	// The snapshot directory moved to quarantine.
	entries, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v; want exactly 1", len(entries), err)
	}
	// healthz is degraded, serving keeps working.
	hresp, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after quarantine: %d, want 503 degraded", hresp.StatusCode)
	}
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptSnapshotStatusMapping(t *testing.T) {
	err := fmt.Errorf("serve: %s: %w", "tenants/x/model.ucsf", ErrCorruptSnapshot)
	if got := httpStatus(err); got != http.StatusServiceUnavailable {
		t.Fatalf("httpStatus(ErrCorruptSnapshot) = %d, want 503", got)
	}
	if !errors.Is(err, persist.ErrCorrupt) {
		t.Fatal("ErrCorruptSnapshot must alias persist.ErrCorrupt")
	}
}

// TestAbortRecovery: the in-process crash hook discards everything after
// the last durable snapshot; a restart on the same directory serves assigns
// from the recovered model with zero 5xx.
func TestAbortRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, Config{StateDir: dir, SnapshotInterval: time.Hour})
	do(t, "POST", ts1.URL+"/v1/tenants", `{"id":"t1","k":2,"seed":3}`, 201, nil)
	do(t, "POST", ts1.URL+"/v1/tenants/t1/observe", pointsBody(400, 1), 202, nil)
	waitIngested(t, ts1.URL+"/v1/tenants/t1", 400)
	do(t, "POST", ts1.URL+"/v1/tenants/t1/snapshot", "", 200, nil) // pokes the snapshot loop
	waitPersisted(t, s1, "t1", 400)
	// More ingestion after the last snapshot — crashed away, by design.
	do(t, "POST", ts1.URL+"/v1/tenants/t1/observe", pointsBody(200, 2), 202, nil)
	s1.Abort()

	s2, ts2 := newDurableServer(t, Config{StateDir: dir, SnapshotInterval: time.Hour})
	var rec tenantInfo
	do(t, "GET", ts2.URL+"/v1/tenants/t1", "", 200, &rec)
	if !rec.HasModel {
		t.Fatal("recovered tenant has no model")
	}
	for i := 0; i < 20; i++ {
		resp, err := http.Post(ts2.URL+"/v1/tenants/t1/assign", "application/json", strings.NewReader(pointsBody(8, int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("post-recovery assign %d answered %d", i, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// waitPersisted polls until the tenant's durable snapshot covers at least
// n objects.
func waitPersisted(t *testing.T, s *Server, id string, n int64) {
	t.Helper()
	tn, ok := s.reg.get(id)
	if !ok {
		t.Fatalf("tenant %q not registered", id)
	}
	deadline := time.Now().Add(15 * time.Second)
	for tn.persistedSeen.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("tenant %q persisted seen stuck at %d, want >= %d", id, tn.persistedSeen.Load(), n)
		}
		s.pokeSnapshot()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPushLoopBreaker: a flaky coordinator opens the circuit breaker after
// the failure threshold; its recovery closes the breaker and the edge's
// statistics land under its source key.
func TestPushLoopBreaker(t *testing.T) {
	// Coordinator: a sharded tenant accepting keyed stats imports, wrapped
	// in a fault injector that fails everything until healed.
	coord, coordTS := newDurableServer(t, Config{})
	do(t, "POST", coordTS.URL+"/v1/tenants", `{"id":"fleet","k":2,"seed":3,"shards":1}`, 201, nil)
	var failing atomic.Bool
	failing.Store(true)
	var faults atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			faults.Add(1)
			http.Error(w, "injected fault", http.StatusInternalServerError)
			return
		}
		coord.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(proxy.Close)

	edge, edgeTS := newDurableServer(t, Config{
		PushTo:       proxy.URL,
		PushInterval: 5 * time.Millisecond,
		PushTimeout:  2 * time.Second,
		PushSource:   "edge0",
	})
	do(t, "POST", edgeTS.URL+"/v1/tenants", `{"id":"fleet","k":2,"seed":3}`, 201, nil)
	do(t, "POST", edgeTS.URL+"/v1/tenants/fleet/observe", pointsBody(300, 5), 202, nil)
	waitIngested(t, edgeTS.URL+"/v1/tenants/fleet", 300)

	et, _ := edge.reg.get("fleet")
	deadline := time.Now().Add(20 * time.Second)
	for !et.breakerOpen.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened (failures so far: %d)", et.pushFailures.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if et.pushFailures.Load() < pushBreakerThreshold {
		t.Fatalf("breaker open after %d failures, threshold is %d", et.pushFailures.Load(), pushBreakerThreshold)
	}

	// Heal the coordinator: the half-open probe must close the breaker and
	// deliver the edge's full view.
	failing.Store(false)
	for et.breakerOpen.Load() || et.lastPushSeen.Load() < 300 {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after heal (last push seen %d)", et.lastPushSeen.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The coordinator can snapshot a model from the pushed statistics alone.
	var info tenantInfo
	do(t, "POST", coordTS.URL+"/v1/tenants/fleet/snapshot", "", 200, &info)
	if !info.HasModel {
		t.Fatal("coordinator snapshot installed no model")
	}
	if faults.Load() == 0 {
		t.Fatal("fault injector was never exercised")
	}

	// Metrics surface the journey: failures counted, breaker now closed.
	_, metricsText := getBody(t, edgeTS.URL, "/metrics")
	if !strings.Contains(metricsText, "ucpcd_push_failures_total") ||
		!strings.Contains(metricsText, "ucpcd_push_breaker_open 0") {
		t.Fatalf("metrics missing push series after recovery:\n%s", metricsText)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := edge.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := coord.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestKeyedStatsReplace: POST …/stats?source=X replaces X's previous
// payload — the coordinator's merged weight counts each source once.
func TestKeyedStatsReplace(t *testing.T) {
	coord, coordTS := newDurableServer(t, Config{})
	do(t, "POST", coordTS.URL+"/v1/tenants", `{"id":"fleet","k":2,"seed":3,"shards":1}`, 201, nil)

	edge, edgeTS := newDurableServer(t, Config{})
	do(t, "POST", edgeTS.URL+"/v1/tenants", `{"id":"fleet","k":2,"seed":3}`, 201, nil)
	do(t, "POST", edgeTS.URL+"/v1/tenants/fleet/observe", pointsBody(300, 5), 202, nil)
	waitIngested(t, edgeTS.URL+"/v1/tenants/fleet", 300)

	push := func() {
		resp, err := http.Get(edgeTS.URL + "/v1/tenants/fleet/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		req, err := http.NewRequest("POST", coordTS.URL+"/v1/tenants/fleet/stats?source=edge0", resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		presp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer presp.Body.Close()
		if presp.StatusCode != 200 {
			t.Fatalf("keyed stats push answered %d", presp.StatusCode)
		}
	}
	push()
	push()
	push()

	var info tenantInfo
	do(t, "POST", coordTS.URL+"/v1/tenants/fleet/snapshot", "", 200, &info)
	// Merged weight = 300 once, not 900: StreamSeen reports only local
	// engines, so read the objective surface instead — the snapshot must
	// exist and the model must carry exactly the one source's mass. The
	// precise weight check lives in internal/shard's TestSetRemoteReplaces;
	// here it is enough that repeated pushes kept the snapshot valid.
	if !info.HasModel {
		t.Fatal("coordinator snapshot installed no model")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := edge.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := coord.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDurabilityMetricsExposed: the new series appear on /metrics with the
// names the ISSUE pins down.
func TestDurabilityMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	s, ts := newDurableServer(t, Config{StateDir: dir, SnapshotInterval: time.Hour, PushTo: "http://127.0.0.1:1", PushInterval: time.Hour})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"t1","k":2,"seed":3}`, 201, nil)
	_, metricsText := getBody(t, ts.URL, "/metrics")
	for _, series := range []string{
		"ucpcd_push_failures_total",
		"ucpcd_push_breaker_open",
		"ucpcd_snapshot_age_seconds",
		"ucpcd_snapshots_total",
		"ucpcd_snapshot_failures_total",
		"ucpcd_tenants_restored",
		"ucpcd_tenants_quarantined",
		"ucpcd_push_success_total",
		"ucpcd_tenant_persisted_seen_objects",
	} {
		if !strings.Contains(metricsText, series) {
			t.Fatalf("metrics missing series %s:\n%s", series, metricsText)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestTenantJSONRoundTrip: the spec written into the manifest restores a
// tenant with identical configuration.
func TestSpecRoundTripThroughManifest(t *testing.T) {
	spec := TenantSpec{ID: "t9", Algorithm: "UCPC", K: 4, Workers: 2, MaxIter: 9,
		Seed: 11, Pruning: "off", BatchSize: 128, Decay: 0.5, MaxBatches: 100, QueueChunks: 7}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back TenantSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != spec {
		t.Fatalf("spec round-trip: %+v != %+v", back, spec)
	}
}
