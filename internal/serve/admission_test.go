package serve

// The deterministic admission harness: every shed/admit decision in these
// tests is driven by a fake clock and a hand-fed cost model, so refill math,
// auto sizing, Retry-After pricing, and mode transitions are table-testable
// without a single sleep. CI runs this package under -race; the conservation
// property test is where admission earns that flag.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ucpc"
)

// fakeClock is a manually advanced clock safe for concurrent readers.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// feedCost pins route r's EWMA to exactly nsPerObject (one sample sets the
// EWMA directly).
func feedCost(a *admission, r route, nsPerObject float64) {
	a.observeCost(r, 1, time.Duration(nsPerObject))
}

func TestTokenBucketFakeClock(t *testing.T) {
	clk := newFakeClock()
	b := &tokenBucket{rate: 10, burst: 20} // 10 objects/sec, cap 20

	// First touch initializes a full bucket.
	if ok, _ := b.take(clk.now(), 20); !ok {
		t.Fatal("fresh bucket should cover a full burst")
	}
	// Empty now: a take of 5 must wait 5/10 = 500ms.
	ok, wait := b.take(clk.now(), 5)
	if ok || wait != 500*time.Millisecond {
		t.Fatalf("empty bucket: ok=%v wait=%v, want refusal with 500ms", ok, wait)
	}
	// 300ms refills 3 tokens — still short by 2, wait 200ms.
	clk.advance(300 * time.Millisecond)
	ok, wait = b.take(clk.now(), 5)
	if ok || wait != 200*time.Millisecond {
		t.Fatalf("partial refill: ok=%v wait=%v, want refusal with 200ms", ok, wait)
	}
	// The refused take consumed nothing: 200ms more covers it exactly.
	clk.advance(200 * time.Millisecond)
	if ok, _ := b.take(clk.now(), 5); !ok {
		t.Fatal("bucket should cover 5 after 500ms at rate 10")
	}
	// Refill never exceeds burst.
	clk.advance(time.Hour)
	tokens, _, _ := b.level(clk.now())
	if tokens != 20 {
		t.Fatalf("tokens = %v after an hour, want capped at burst 20", tokens)
	}
	// A zero-rate bucket reports an hour, not a division by zero.
	b.resize(clk.now(), 0, 20)
	b.take(clk.now(), 20)
	if ok, wait := b.take(clk.now(), 1); ok || wait != time.Hour {
		t.Fatalf("zero-rate refusal: ok=%v wait=%v, want 1h", ok, wait)
	}
}

func TestTokenBucketResizeKeepsAccrual(t *testing.T) {
	clk := newFakeClock()
	b := &tokenBucket{rate: 10, burst: 100}
	b.take(clk.now(), 100) // init + drain
	clk.advance(time.Second)
	b.resize(clk.now(), 1000, 5) // accrued 10 at the old rate, clamped to new burst
	tokens, rate, burst := b.level(clk.now())
	if tokens != 5 || rate != 1000 || burst != 5 {
		t.Fatalf("after resize: tokens=%v rate=%v burst=%v, want 5/1000/5", tokens, rate, burst)
	}
}

// TestAdmissionAutoSizing drives the auto-mode decision table with a fixed
// cost model: 1ms/object against a 100ms budget gives maxBatch 100 and
// rate 0.6 × 1000 = 600 objects/sec.
func TestAdmissionAutoSizing(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(modeAuto, 100*time.Millisecond, nil, clk.now)

	// Cold model: everything is admitted (nothing to size from).
	if d := a.admit(routeAssign, 1_000_000, 0); d.verdict != admitOK {
		t.Fatalf("cold admit verdict = %v, want admitOK", d.verdict)
	}
	a.exit(routeAssign, 1_000_000)

	feedCost(a, routeAssign, float64(time.Millisecond)) // 1ms/object

	// Oversize: a batch beyond budget/cost can never finish in budget.
	d := a.admit(routeAssign, 101, 0)
	if d.verdict != shed413 || d.maxBatch != 100 {
		t.Fatalf("oversize: verdict=%v maxBatch=%d, want shed413 with 100", d.verdict, d.maxBatch)
	}

	// A full-burst batch through an empty pipeline is admissible.
	d = a.admit(routeAssign, 100, 0)
	if d.verdict != admitOK || d.conc != 1 {
		t.Fatalf("burst admit: verdict=%v conc=%d, want admitOK conc 1", d.verdict, d.conc)
	}
	a.exit(routeAssign, 100)

	// The bucket is now empty: the next batch sheds 429 with the refill wait
	// (deficit 50 at 600 objects/sec ≈ 83.3ms).
	d = a.admit(routeAssign, 50, 0)
	if d.verdict != shed429 {
		t.Fatalf("drained bucket: verdict=%v, want shed429", d.verdict)
	}
	deficit := 50.0
	if got, want := d.retryAfter, time.Duration(deficit/600.0*float64(time.Second)); got != want {
		t.Fatalf("retryAfter = %v, want %v", got, want)
	}

	// Advancing the fake clock past the deficit admits it — no sleeps.
	clk.advance(100 * time.Millisecond)
	if d = a.admit(routeAssign, 50, 0); d.verdict != admitOK {
		t.Fatalf("post-refill admit verdict = %v, want admitOK", d.verdict)
	}
	a.exit(routeAssign, 50)
}

// TestAdmissionInflightGate pins the standing-queue bound: admitted work
// that has not exited blocks further admissions past a quarter of maxBatch,
// and a lone request through an empty pipeline is always admissible.
func TestAdmissionInflightGate(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(modeAuto, 100*time.Millisecond, nil, clk.now)
	feedCost(a, routeAssign, float64(time.Millisecond)) // maxBatch 100, cap 25

	// First request enters the pipeline (10 objects in flight).
	if d := a.admit(routeAssign, 10, 0); d.verdict != admitOK || d.conc != 1 {
		t.Fatalf("first admit: %+v", d)
	}
	// Second stacks to 20 — still under the 25-object cap — at conc 2.
	if d := a.admit(routeAssign, 10, 0); d.verdict != admitOK || d.conc != 2 {
		t.Fatalf("second admit: %+v", d)
	}
	// Third would stack 30 > 25: shed 429 priced at the backlog drain time
	// (20 objects × 1ms).
	d := a.admit(routeAssign, 10, 0)
	if d.verdict != shed429 || d.retryAfter != 20*time.Millisecond {
		t.Fatalf("inflight shed: verdict=%v retryAfter=%v, want shed429 20ms", d.verdict, d.retryAfter)
	}
	// Draining the pipeline reopens it (the bucket refills on the fake clock).
	a.exit(routeAssign, 10)
	a.exit(routeAssign, 10)
	clk.advance(time.Second)
	if d := a.admit(routeAssign, 10, 0); d.verdict != admitOK || d.conc != 1 {
		t.Fatalf("post-drain admit: %+v", d)
	}
	a.exit(routeAssign, 10)

	// The lone-request exception: a full-burst batch with nothing in flight
	// must pass the gate even though it exceeds the cap on its own.
	clk.advance(time.Second)
	if d := a.admit(routeAssign, 100, 0); d.verdict != admitOK {
		t.Fatalf("lone full-burst admit: %+v", d)
	}
	a.exit(routeAssign, 100)
}

// TestAdmissionObserveQueuePricing pins the observe-path Retry-After: the
// shed price includes the queued backlog at the ingest cost estimate.
func TestAdmissionObserveQueuePricing(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(modeAuto, 100*time.Millisecond, nil, clk.now)
	feedCost(a, routeObserve, float64(time.Millisecond)) // 1ms/object ingest

	// Drain the observe bucket (maxBatch 100).
	if d := a.admit(routeObserve, 100, 0); d.verdict != admitOK {
		t.Fatalf("observe drain: %+v", d)
	}
	// A shed with 40 queued objects prices bucket deficit + 40ms of drain.
	d := a.admit(routeObserve, 50, 40)
	if d.verdict != shed429 {
		t.Fatalf("observe shed: %+v", d)
	}
	deficit := 50.0
	bucketWait := time.Duration(deficit / 600.0 * float64(time.Second))
	if got, want := d.retryAfter, bucketWait+40*time.Millisecond; got != want {
		t.Fatalf("queued retryAfter = %v, want %v", got, want)
	}

	// queueRetryAfter prices a queue-full rejection the same way, and falls
	// back to one second when the cost model is cold.
	if got := a.queueRetryAfter(40); got != 40*time.Millisecond {
		t.Fatalf("queueRetryAfter(40) = %v, want 40ms", got)
	}
	cold := newAdmission(modeAuto, 100*time.Millisecond, nil, clk.now)
	if got := cold.queueRetryAfter(40); got != time.Second {
		t.Fatalf("cold queueRetryAfter = %v, want 1s", got)
	}
}

func TestAdmissionManualAndOffModes(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(modeOff, 100*time.Millisecond, nil, clk.now)
	feedCost(a, routeAssign, float64(time.Millisecond))

	// Off mode admits everything, however absurd, but still counts.
	if d := a.admit(routeAssign, 1_000_000, 0); d.verdict != admitOK {
		t.Fatalf("off-mode admit: %+v", d)
	}
	a.exit(routeAssign, 1_000_000)

	// Manual limits: rate 100 objects/sec, burst 30.
	if err := a.applyLimits(limitsRequest{Mode: "manual",
		AssignRateObjectsPerSec: 100, AssignBurstObjects: 30}); err != nil {
		t.Fatal(err)
	}
	if d := a.admit(routeAssign, 31, 0); d.verdict != shed413 || d.maxBatch != 30 {
		t.Fatalf("manual oversize: %+v", d)
	}
	if d := a.admit(routeAssign, 30, 0); d.verdict != admitOK {
		t.Fatalf("manual burst admit: %+v", d)
	}
	a.exit(routeAssign, 30)
	d := a.admit(routeAssign, 10, 0)
	if d.verdict != shed429 || d.retryAfter != 100*time.Millisecond {
		t.Fatalf("manual drained: verdict=%v retryAfter=%v, want shed429 100ms", d.verdict, d.retryAfter)
	}
	// The observe route was left at rate 0 = unlimited.
	if d := a.admit(routeObserve, 1_000_000, 0); d.verdict != admitOK {
		t.Fatalf("manual unlimited observe: %+v", d)
	}
	// Back to auto: sizing returns to the cost model, but accrued tokens
	// carry across the transition (the manual burst of 30 caps them — no
	// free refill from flipping modes), so a batch within that carry-over is
	// admitted and a full auto burst is not yet.
	if err := a.applyLimits(limitsRequest{Mode: "auto"}); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Second)
	if d := a.admit(routeAssign, 100, 0); d.verdict != shed429 {
		t.Fatalf("auto restore should not mint tokens past the manual burst: %+v", d)
	}
	if d := a.admit(routeAssign, 25, 0); d.verdict != admitOK {
		t.Fatalf("auto restored: %+v", d)
	}
	a.exit(routeAssign, 25)
	// One refill interval later the full auto burst is admissible again.
	clk.advance(time.Second)
	if d := a.admit(routeAssign, 100, 0); d.verdict != admitOK {
		t.Fatalf("auto refilled: %+v", d)
	}
	a.exit(routeAssign, 100)
}

func TestApplyLimitsValidation(t *testing.T) {
	cases := []struct {
		name string
		req  limitsRequest
		ok   bool
	}{
		{"auto", limitsRequest{Mode: "auto"}, true},
		{"off", limitsRequest{Mode: "off"}, true},
		{"manual", limitsRequest{Mode: "manual", AssignRateObjectsPerSec: 10}, true},
		{"unknown mode", limitsRequest{Mode: "sometimes"}, false},
		{"empty mode", limitsRequest{}, false},
		{"negative rate", limitsRequest{Mode: "manual", AssignRateObjectsPerSec: -1}, false},
		{"NaN burst", limitsRequest{Mode: "manual", AssignBurstObjects: math.NaN()}, false},
		{"Inf rate", limitsRequest{Mode: "manual", ObserveRateObjectsPerSec: math.Inf(1)}, false},
		{"override without manual", limitsRequest{Mode: "auto", AssignRateObjectsPerSec: 10}, false},
		{"override in off", limitsRequest{Mode: "off", ObserveBurstObjects: 5}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := newAdmission(modeAuto, 0, nil, newFakeClock().now)
			err := a.applyLimits(tc.req)
			if tc.ok && err != nil {
				t.Fatalf("applyLimits(%+v) = %v, want ok", tc.req, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("applyLimits(%+v) accepted, want error", tc.req)
			}
		})
	}

	// A manual rate with burst 0 defaults the burst to one second of rate.
	a := newAdmission(modeAuto, 0, nil, newFakeClock().now)
	if err := a.applyLimits(limitsRequest{Mode: "manual", AssignRateObjectsPerSec: 40}); err != nil {
		t.Fatal(err)
	}
	if d := a.admit(routeAssign, 41, 0); d.verdict != shed413 || d.maxBatch != 40 {
		t.Fatalf("defaulted burst: %+v, want shed413 with maxBatch 40", d)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-time.Second, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{90 * time.Second, 90},
		{2 * time.Hour, 3600},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestCostModelReweigh pins the scanned-candidate work proxy: installing a
// model that scans twice the candidates doubles the EWMA before any request
// against it is measured, and the scale is clamped to [1/4, 4].
func TestCostModelReweigh(t *testing.T) {
	var c costModel
	c.observe(1, 1000*time.Nanosecond)
	c.reweigh(2) // first weight: records, never scales (no previous weight)
	if ewma, _ := c.estimate(); ewma != 1000 {
		t.Fatalf("ewma after first reweigh = %v, want unchanged 1000", ewma)
	}
	c.reweigh(4) // 2 → 4 doubles the work per object
	if ewma, _ := c.estimate(); ewma != 2000 {
		t.Fatalf("ewma after 2x reweigh = %v, want 2000", ewma)
	}
	c.reweigh(0.1) // 4 → 0.1 is a 40x drop, clamped to 1/4
	if ewma, _ := c.estimate(); ewma != 500 {
		t.Fatalf("ewma after clamped shrink = %v, want 500", ewma)
	}
	c.reweigh(40) // 0.1 → 40 is 400x, clamped to 4
	if ewma, _ := c.estimate(); ewma != 2000 {
		t.Fatalf("ewma after clamped growth = %v, want 2000", ewma)
	}
	// Garbage weights are ignored outright.
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		c.reweigh(w)
	}
	if ewma, _ := c.estimate(); ewma != 2000 {
		t.Fatalf("ewma after garbage weights = %v, want 2000", ewma)
	}

	// onInstall derives the weight from the pruning report: scan fraction ×
	// k. 25 scanned of 100 candidates at k=8 is weight 2; a later model
	// scanning everything (weight 8) costs 4x.
	clk := newFakeClock()
	a := newAdmission(modeAuto, 0, nil, clk.now)
	feedCost(a, routeAssign, 1000)
	a.onInstall(&ucpc.Report{ScannedCandidates: 25, PrunedCandidates: 75}, 8)
	a.onInstall(&ucpc.Report{ScannedCandidates: 100, PrunedCandidates: 0}, 8)
	if ewma, _ := a.routes[routeAssign].cost.estimate(); ewma != 4000 {
		t.Fatalf("ewma after full-scan install = %v, want 4000", ewma)
	}
	// Nil reports and degenerate counters change nothing.
	a.onInstall(nil, 8)
	a.onInstall(&ucpc.Report{}, 8)
	a.onInstall(&ucpc.Report{ScannedCandidates: 1}, 0)
	if ewma, _ := a.routes[routeAssign].cost.estimate(); ewma != 4000 {
		t.Fatalf("ewma after degenerate installs = %v, want 4000", ewma)
	}
}

// TestCostModelEWMAConvergence holds the EWMA to the accuracy contract the
// experiment gates: against steady samples it converges onto the exact
// measured mean well within 30%.
func TestCostModelEWMAConvergence(t *testing.T) {
	var c costModel
	// A noisy warmup, then steady 2000ns/object samples.
	c.observe(1, 9000*time.Nanosecond)
	for i := 0; i < 40; i++ {
		c.observe(10, 20_000*time.Nanosecond)
	}
	ewma, _ := c.estimate()
	measured, _ := c.measured()
	if ratio := ewma / measured; ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("EWMA %v strayed beyond 30%% of measured %v (ratio %.3f)", ewma, measured, ratio)
	}
}

// TestAdmissionConservationProperty is the conservation law under arbitrary
// interleaving: many goroutines hammer admit/exit with mixed batch sizes,
// modes flip concurrently, and at the end every attempt is accounted for as
// exactly one of admitted / shed429 / shed413 — per route, nothing lost,
// nothing double-counted. Run under -race this is also the data-race gate
// for the admission core.
func TestAdmissionConservationProperty(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(modeAuto, 10*time.Millisecond, nil, clk.now)
	feedCost(a, routeAssign, float64(50*time.Microsecond))
	feedCost(a, routeObserve, float64(50*time.Microsecond))

	const (
		workers     = 8
		perWorker   = 500
		modeFlips   = 100
		clockJitter = time.Millisecond
	)
	var wg sync.WaitGroup
	var admitted, s429, s413 [routeCount]atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := routeAssign
			if w%2 == 1 {
				r = routeObserve
			}
			for i := 0; i < perWorker; i++ {
				n := 1 + (w*perWorker+i)%400 // mixed sizes, some oversize
				d := a.admit(r, n, int64(i%3))
				switch d.verdict {
				case admitOK:
					admitted[r].Add(1)
					if d.conc < 1 {
						t.Errorf("admitted conc = %d, want >= 1", d.conc)
					}
					a.exit(r, n)
				case shed429:
					s429[r].Add(1)
				case shed413:
					s413[r].Add(1)
				}
			}
		}(w)
	}
	// Mode churn and clock advances race the workers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reqs := []limitsRequest{
			{Mode: "manual", AssignRateObjectsPerSec: 1000, AssignBurstObjects: 50},
			{Mode: "off"},
			{Mode: "auto"},
		}
		for i := 0; i < modeFlips; i++ {
			if err := a.applyLimits(reqs[i%len(reqs)]); err != nil {
				t.Errorf("applyLimits: %v", err)
			}
			clk.advance(clockJitter)
		}
	}()
	wg.Wait()

	for r := route(0); r < routeCount; r++ {
		ra := &a.routes[r]
		attempts := ra.attempts.Load()
		sum := ra.admitted.Load() + ra.shed429c.Load() + ra.shed413c.Load()
		if attempts != sum {
			t.Errorf("route %s: attempts %d != admitted+shed %d", routeNames[r], attempts, sum)
		}
		if ra.admitted.Load() != admitted[r].Load() ||
			ra.shed429c.Load() != s429[r].Load() || ra.shed413c.Load() != s413[r].Load() {
			t.Errorf("route %s: counters (%d/%d/%d) disagree with caller tallies (%d/%d/%d)",
				routeNames[r], ra.admitted.Load(), ra.shed429c.Load(), ra.shed413c.Load(),
				admitted[r].Load(), s429[r].Load(), s413[r].Load())
		}
		if in := ra.inflightObjects.Load(); in != 0 {
			t.Errorf("route %s: %d objects still in flight after drain", routeNames[r], in)
		}
		if in := ra.inflightReqs.Load(); in != 0 {
			t.Errorf("route %s: %d requests still in flight after drain", routeNames[r], in)
		}
	}
}

// TestAdmissionConservationHTTP drives the same law end to end: an
// admission-enabled tenant hammered over HTTP with mixed batch sizes, then
// both conservation laws checked on the daemon's own surfaces — per-route
// attempts == admitted + shed on /limits, requests == Σ responses on
// /metrics — and every shed carries its degraded-mode contract (429 with a
// well-formed Retry-After, 413 with the admissible maximum, never 5xx).
// The daemon runs on a fake clock pinned in place, so the manual bucket
// never refills: exactly one burst's worth of objects is admitted and every
// decision is deterministic regardless of box speed.
func TestAdmissionConservationHTTP(t *testing.T) {
	clk := newFakeClock()
	_, ts := newTestServer(t, Config{Admission: true, P99Budget: 5 * time.Millisecond, clock: clk.now})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"adm","k":2,"seed":7,"admission":"on"}`, 201, nil)
	base := ts.URL + "/v1/tenants/adm"
	do(t, "POST", base+"/fit", pointsBody(200, 1), 200, nil)

	// Cold auto mode admits the first assign; manual limits then pin the
	// bucket (the pinned fake clock would keep wall-time cost samples at
	// zero, leaving auto mode cold forever).
	do(t, "POST", base+"/assign", pointsBody(4, 2), 200, nil)
	do(t, "PUT", base+"/limits",
		`{"mode":"manual","assign_rate_objects_per_sec":2000,"assign_burst_objects":100}`, 200, nil)

	var wg sync.WaitGroup
	var got5xx atomic.Int64
	sizes := []int{1, 4, 16, 400, 4000}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body := pointsBody(sizes[(w+i)%len(sizes)], int64(w*100+i))
				resp, err := http.Post(base+"/assign", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("assign: %v", err)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == 200:
				case resp.StatusCode == http.StatusTooManyRequests:
					if ra := resp.Header.Get("Retry-After"); ra == "" {
						t.Errorf("429 without Retry-After")
					}
				case resp.StatusCode == http.StatusRequestEntityTooLarge:
					var shed struct {
						MaxBatch int `json:"max_batch_objects"`
					}
					if json.Unmarshal(raw, &shed) != nil || shed.MaxBatch < 1 {
						t.Errorf("413 without max_batch_objects: %s", raw)
					}
				case resp.StatusCode >= 500:
					got5xx.Add(1)
				default:
					t.Errorf("assign: unexpected status %d (%s)", resp.StatusCode, raw)
				}
			}
		}(w)
	}
	wg.Wait()
	if got5xx.Load() != 0 {
		t.Fatalf("%d sheds surfaced as 5xx; degraded mode must stay 4xx", got5xx.Load())
	}

	var lim limitsInfo
	do(t, "GET", base+"/limits", "", 200, &lim)
	for _, rl := range []routeLimits{lim.Assign, lim.Observe} {
		if rl.AttemptsTotal != rl.AdmittedTotal+rl.Shed429Total+rl.Shed413Total {
			t.Fatalf("admission conservation violated on /limits: %+v", rl)
		}
	}
	if lim.Assign.Shed413Total == 0 {
		t.Fatal("no 413 sheds — the 4000-object batches never exceeded maxBatch")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	requests, responses := int64(-1), int64(0)
	attempts, accounted := map[string]int64{}, map[string]int64{}
	for _, line := range strings.Split(string(raw), "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, "ucpcd_requests_total %d", &v); err == nil {
			requests = v
		}
		var class string
		if _, err := fmt.Sscanf(line, "ucpcd_responses_total{class=%q} %d", &class, &v); err == nil {
			responses += v
		}
		var rt, code string
		if _, err := fmt.Sscanf(line, "ucpcd_admission_attempts_total{route=%q} %d", &rt, &v); err == nil {
			attempts[rt] = v
		}
		if _, err := fmt.Sscanf(line, "ucpcd_admitted_total{route=%q} %d", &rt, &v); err == nil {
			accounted[rt] += v
		}
		if n, err := fmt.Sscanf(line, "ucpcd_shed_total{route=%q,code=%q} %d", &rt, &code, &v); err == nil && n == 3 {
			accounted[rt] += v
		}
	}
	if requests < 0 || requests != responses {
		t.Fatalf("request conservation violated: %d requests vs %d responses", requests, responses)
	}
	for rt, att := range attempts {
		if att != accounted[rt] {
			t.Fatalf("daemon-wide admission conservation violated on route %s: %d attempts, %d accounted",
				rt, att, accounted[rt])
		}
	}
}

// TestCostModelAccuracyInProcess is the satellite accuracy gate as a unit
// test: a synthetic tenant with pruning disabled (every candidate scanned —
// the steadiest per-object serving cost), driven sequentially so every
// sample is uncontended, must hold its EWMA within 30% of the exact
// measured mean the daemon tracks alongside it.
func TestCostModelAccuracyInProcess(t *testing.T) {
	_, ts := newTestServer(t, Config{Admission: true})
	do(t, "POST", ts.URL+"/v1/tenants",
		`{"id":"acc","k":3,"seed":11,"pruning":"off","admission":"on"}`, 201, nil)
	base := ts.URL + "/v1/tenants/acc"
	do(t, "POST", base+"/fit", pointsBody(300, 1), 200, nil)

	body := pointsBody(64, 2)
	for i := 0; i < 30; i++ {
		do(t, "POST", base+"/assign", body, 200, nil)
	}

	var lim limitsInfo
	do(t, "GET", base+"/limits", "", 200, &lim)
	if lim.Assign.CostSamples < 10 {
		t.Fatalf("only %d cost samples after 30 sequential assigns", lim.Assign.CostSamples)
	}
	if lim.Assign.CostNsPerObject <= 0 || lim.Assign.MeasuredNsPerObject <= 0 {
		t.Fatalf("cost model empty: %+v", lim.Assign)
	}
	ratio := lim.Assign.CostNsPerObject / lim.Assign.MeasuredNsPerObject
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("EWMA %.0f ns/object strayed beyond 30%% of measured %.0f (ratio %.3f)",
			lim.Assign.CostNsPerObject, lim.Assign.MeasuredNsPerObject, ratio)
	}
	// Auto sizing must reflect that estimate on the GET surface.
	if lim.Mode != "auto" || lim.Assign.RateObjectsPerSec <= 0 || lim.Assign.MaxBatchObjects < 1 {
		t.Fatalf("auto limits not derived from the cost model: %+v", lim.Assign)
	}
}

// TestLimitsHTTPValidation pins the control surface's error contract.
func TestLimitsHTTPValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"lv","k":2,"seed":3}`, 201, nil)
	base := ts.URL + "/v1/tenants/lv"

	do(t, "GET", ts.URL+"/v1/tenants/nope/limits", "", 404, nil)
	do(t, "PUT", base+"/limits", `{"mode":"sometimes"}`, 400, nil)
	do(t, "PUT", base+"/limits", `{"mode":"auto","assign_rate_objects_per_sec":10}`, 400, nil)
	do(t, "PUT", base+"/limits", `{"mode":"manual","assign_rate_objects_per_sec":-1}`, 400, nil)
	do(t, "PUT", base+"/limits", `not json`, 400, nil)

	// A tenant created without admission (server default off) reports mode
	// "off", and a PUT flips it live.
	var lim limitsInfo
	do(t, "GET", base+"/limits", "", 200, &lim)
	if lim.Mode != "off" {
		t.Fatalf("default mode = %q, want off", lim.Mode)
	}
	do(t, "PUT", base+"/limits", `{"mode":"manual","assign_rate_objects_per_sec":5,"assign_burst_objects":8}`, 200, &lim)
	if lim.Mode != "manual" || lim.Assign.BurstObjects != 8 {
		t.Fatalf("manual PUT result: %+v", lim)
	}
	// An invalid tenant spec admission value is rejected at creation.
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"bad","k":2,"admission":"maybe"}`, 400, nil)
}
