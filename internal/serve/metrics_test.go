package serve

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h histogram
	h.bounds = []float64{1, 5, 10}
	h.init()
	for _, v := range []float64{0.5, 1, 3, 7, 10, 42} {
		h.observe(v)
	}
	// Bucket occupancy: (-inf,1]=2 (0.5 and the boundary value 1),
	// (1,5]=1, (5,10]=2 (7 and the boundary 10), (10,inf)=1.
	var b strings.Builder
	h.write(&b, "x")
	text := b.String()
	for _, line := range []string{
		`x_bucket{le="1"} 2`,
		`x_bucket{le="5"} 3`,
		`x_bucket{le="10"} 5`,
		`x_bucket{le="+Inf"} 6`,
		`x_sum 63.5`,
		`x_count 6`,
	} {
		if !strings.Contains(text, line) {
			t.Errorf("missing %q in:\n%s", line, text)
		}
	}
}

// TestHistogramConcurrent hammers observe from many goroutines: the count,
// the +Inf cumulative bucket, and the CAS-looped sum must all agree. Run
// under -race this also proves the hot path is lock-free-safe.
func TestHistogramConcurrent(t *testing.T) {
	var h histogram
	h.bounds = []float64{1, 2, 4}
	h.init()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.observe(float64(i % 5))
			}
		}(w)
	}
	wg.Wait()
	if got := h.count.Load(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != workers*per {
		t.Fatalf("bucket total = %d, want %d", cum, workers*per)
	}
	wantSum := float64(workers) * per / 5 * (0 + 1 + 2 + 3 + 4)
	if got := math.Float64frombits(h.sum.Load()); got != wantSum {
		t.Fatalf("sum = %g, want %g", got, wantSum)
	}
}

func TestFinishConservation(t *testing.T) {
	m := newMetrics()
	statuses := []int{200, 201, 202, 204, 301, 400, 404, 409, 429, 500, 503, 100}
	for _, s := range statuses {
		m.finish(s)
	}
	if got := m.requests.Load(); got != int64(len(statuses)) {
		t.Fatalf("requests = %d, want %d", got, len(statuses))
	}
	var sum int64
	for i := range m.responses {
		sum += m.responses[i].Load()
	}
	if sum != m.requests.Load() {
		t.Fatalf("Σ responses %d != requests %d", sum, m.requests.Load())
	}
	// 1xx clamps into the 2xx class, >5xx into 5xx: nothing is dropped.
	if got := m.responses[0].Load(); got != 5 { // 200,201,202,204,100
		t.Errorf("2xx class = %d, want 5", got)
	}
	if got := m.responses[2].Load(); got != 4 { // 400,404,409,429
		t.Errorf("4xx class = %d, want 4", got)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:              "1.5",
		math.Inf(1):      "+Inf",
		math.Inf(-1):     "-Inf",
		0.0005:           "0.0005",
		12345678.9101112: "1.23456789101112e+07",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}
