package serve

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// metrics is the daemon-wide instrumentation state, exported at /metrics in
// the Prometheus text exposition format. Everything is lock-free atomics so
// the serving hot path (Assign) pays a handful of atomic adds per request;
// per-tenant model counters (iterations, objective, pruning) are not stored
// here at all — they are read from each tenant's live state at scrape time
// by Server.writeMetrics, so a scrape always reflects the currently
// installed models.
type metrics struct {
	start time.Time

	// requests counts every HTTP request the daemon finished handling;
	// responses[class] splits the same events by status class (2xx..5xx).
	// The two are incremented together, so on a quiesced server
	// requests == Σ responses — the conservation law the serve bench gates.
	requests  atomic.Int64
	responses [4]atomic.Int64 // index 0 = 2xx, 1 = 3xx, 2 = 4xx, 3 = 5xx

	// queueRejected counts observe payloads bounced with 429 because a
	// tenant's bounded ingestion queue was full (the backpressure signal).
	queueRejected atomic.Int64
	// ingested counts objects folded into any tenant's stream engine.
	ingested atomic.Int64
	// swaps counts atomic model installs (snapshot, fit, refresh, upload).
	swaps atomic.Int64
	// assignObjects counts objects served through Model.Assign.
	assignObjects atomic.Int64

	// Durability layer: completed/failed snapshot writes, tenants replayed
	// and quarantined at boot.
	snapshots          atomic.Int64
	snapshotFailures   atomic.Int64
	tenantsRestored    atomic.Int64
	tenantsQuarantined atomic.Int64
	// Federation layer: accepted and failed statistics pushes across all
	// tenants (the breaker gauge is derived live in handleMetrics).
	pushSuccess  atomic.Int64
	pushFailures atomic.Int64

	// Admission control, per route (index by the route constants). Every
	// admission decision increments attempts and exactly one of admitted /
	// shed429 / shed413, so attempts == admitted + Σ shed — the admission
	// conservation law gated by the serve bench. Admission sheds are
	// deliberately separate from queueRejected (queue-full backpressure).
	admAttempts [routeCount]atomic.Int64
	admAdmitted [routeCount]atomic.Int64
	admShed429  [routeCount]atomic.Int64
	admShed413  [routeCount]atomic.Int64

	assignLatency histogram
	assignBatch   histogram
}

func newMetrics() *metrics {
	m := &metrics{start: time.Now()}
	m.assignLatency.bounds = []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
	}
	m.assignLatency.init()
	m.assignBatch.bounds = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}
	m.assignBatch.init()
	return m
}

// finish records one completed request with its response status.
func (m *metrics) finish(status int) {
	class := status/100 - 2
	if class < 0 {
		class = 0
	}
	if class > 3 {
		class = 3
	}
	m.responses[class].Add(1)
	m.requests.Add(1)
}

// histogram is a fixed-bucket Prometheus histogram: counts[i] is the number
// of observations ≤ bounds[i], counts[len(bounds)] the +Inf bucket. The sum
// is kept as float64 bits behind a CAS loop so Observe stays lock-free.
type histogram struct {
	bounds []float64
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

func (h *histogram) init() {
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// write renders the histogram in the text exposition format under name.
func (h *histogram) write(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var responseClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// write renders the daemon-wide counters; the Server appends the per-tenant
// series behind it.
func (m *metrics) write(w io.Writer) {
	fmt.Fprintf(w, "# TYPE ucpcd_uptime_seconds gauge\nucpcd_uptime_seconds %s\n",
		formatFloat(time.Since(m.start).Seconds()))
	fmt.Fprintf(w, "# TYPE ucpcd_requests_total counter\nucpcd_requests_total %d\n", m.requests.Load())
	fmt.Fprintf(w, "# TYPE ucpcd_responses_total counter\n")
	for i, class := range responseClasses {
		fmt.Fprintf(w, "ucpcd_responses_total{class=%q} %d\n", class, m.responses[i].Load())
	}
	fmt.Fprintf(w, "# TYPE ucpcd_queue_rejected_total counter\nucpcd_queue_rejected_total %d\n", m.queueRejected.Load())
	fmt.Fprintf(w, "# TYPE ucpcd_ingested_objects_total counter\nucpcd_ingested_objects_total %d\n", m.ingested.Load())
	fmt.Fprintf(w, "# TYPE ucpcd_swaps_total counter\nucpcd_swaps_total %d\n", m.swaps.Load())
	fmt.Fprintf(w, "# TYPE ucpcd_assign_objects_total counter\nucpcd_assign_objects_total %d\n", m.assignObjects.Load())
	fmt.Fprintf(w, "# TYPE ucpcd_snapshots_total counter\nucpcd_snapshots_total %d\n", m.snapshots.Load())
	fmt.Fprintf(w, "# TYPE ucpcd_snapshot_failures_total counter\nucpcd_snapshot_failures_total %d\n", m.snapshotFailures.Load())
	fmt.Fprintf(w, "# TYPE ucpcd_tenants_restored counter\nucpcd_tenants_restored %d\n", m.tenantsRestored.Load())
	fmt.Fprintf(w, "# TYPE ucpcd_tenants_quarantined counter\nucpcd_tenants_quarantined %d\n", m.tenantsQuarantined.Load())
	fmt.Fprintf(w, "# TYPE ucpcd_push_success_total counter\nucpcd_push_success_total %d\n", m.pushSuccess.Load())
	fmt.Fprintf(w, "# TYPE ucpcd_push_failures_total counter\nucpcd_push_failures_total %d\n", m.pushFailures.Load())
	fmt.Fprintf(w, "# TYPE ucpcd_admission_attempts_total counter\n")
	for r, name := range routeNames {
		fmt.Fprintf(w, "ucpcd_admission_attempts_total{route=%q} %d\n", name, m.admAttempts[r].Load())
	}
	fmt.Fprintf(w, "# TYPE ucpcd_admitted_total counter\n")
	for r, name := range routeNames {
		fmt.Fprintf(w, "ucpcd_admitted_total{route=%q} %d\n", name, m.admAdmitted[r].Load())
	}
	fmt.Fprintf(w, "# TYPE ucpcd_shed_total counter\n")
	for r, name := range routeNames {
		fmt.Fprintf(w, "ucpcd_shed_total{route=%q,code=\"429\"} %d\n", name, m.admShed429[r].Load())
		fmt.Fprintf(w, "ucpcd_shed_total{route=%q,code=\"413\"} %d\n", name, m.admShed413[r].Load())
	}
	m.assignLatency.write(w, "ucpcd_assign_latency_seconds")
	m.assignBatch.write(w, "ucpcd_assign_batch_objects")
}
