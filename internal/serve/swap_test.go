package serve

// The -race layer: concurrent serving against atomic hot swaps, and graceful
// shutdown draining both in-flight HTTP requests and queued ingestion. CI
// runs this package under -race; these tests are where that flag earns its
// keep.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentAssignDuringSwap serves assigns from many goroutines while
// the model underneath is hot-swapped as fast as the fitter can produce new
// models. The gate is the tentpole's promise: zero failed requests — every
// assign lands on either the old or the new model, never on a torn one.
func TestConcurrentAssignDuringSwap(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"hot","k":2,"seed":21}`, 201, nil)
	base := ts.URL + "/v1/tenants/hot"
	do(t, "POST", base+"/fit", pointsBody(120, 1), 200, nil)

	stop := make(chan struct{})
	var failed, served atomic.Int64
	var wg sync.WaitGroup
	const readers = 8
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := pointsBody(16, int64(100+w))
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/assign", "application/json", strings.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					failed.Add(1)
				} else {
					served.Add(1)
				}
			}
		}(w)
	}

	// Swap as fast as fits complete, mixing the two install paths (batch fit
	// and stream snapshot) for at least 5 swaps.
	swaps := 0
	do(t, "POST", base+"/observe", pointsBody(150, 2), 202, nil)
	waitIngested(t, base, 150)
	for swaps < 5 {
		do(t, "POST", base+"/fit", pointsBody(120, int64(10+swaps)), 200, nil)
		do(t, "POST", base+"/snapshot", "", 200, nil)
		swaps += 2
	}
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d assigns failed during hot swaps (%d served)", failed.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no assigns served while swapping")
	}
	var info tenantInfo
	do(t, "GET", base, "", 200, &info)
	if info.Swaps < 6 { // initial fit + ≥5 loop swaps
		t.Fatalf("swaps = %d, want >= 6", info.Swaps)
	}
}

// TestShutdownDrains exercises graceful shutdown end to end over a real
// listener: every accepted observe payload must be folded into the stream
// engine before Shutdown returns, and requests in flight when Shutdown is
// called must complete with 200.
func TestShutdownDrains(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Count requests the server has started reading, so the test can prove
	// the assigns below are genuinely in flight before Shutdown begins.
	var active atomic.Int64
	s.http.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateActive {
			active.Add(1)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	do(t, "POST", base+"/v1/tenants", `{"id":"d1","k":2,"seed":31}`, 201, nil)
	tbase := base + "/v1/tenants/d1"
	const chunks, per = 20, 100
	for i := 0; i < chunks; i++ {
		do(t, "POST", tbase+"/observe", pointsBody(per, int64(i)), 202, nil)
	}
	do(t, "POST", tbase+"/fit", pointsBody(100, 99), 200, nil)

	// Launch assigns that are still in flight when Shutdown starts.
	baseline := active.Load()
	var inflight sync.WaitGroup
	inflightErr := make(chan error, 4)
	for w := 0; w < 4; w++ {
		inflight.Add(1)
		go func(w int) {
			defer inflight.Done()
			resp, err := http.Post(tbase+"/assign", "application/json",
				strings.NewReader(pointsBody(500, int64(w))))
			if err != nil {
				inflightErr <- fmt.Errorf("in-flight assign: %w", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				inflightErr <- fmt.Errorf("in-flight assign: status %d", resp.StatusCode)
			}
		}(w)
	}

	// Do not pull the listener until the server has started reading all four
	// assigns; Shutdown then has real in-flight requests to wait for.
	waitDeadline := time.Now().Add(10 * time.Second)
	for active.Load() < baseline+4 {
		if time.Now().After(waitDeadline) {
			t.Fatalf("only %d of 4 assigns reached the server", active.Load()-baseline)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve returned %v after clean shutdown", err)
	}
	inflight.Wait()
	close(inflightErr)
	for err := range inflightErr {
		t.Error(err)
	}

	// Shutdown has returned, so the ingester must have folded every accepted
	// object — nothing accepted with a 202 may be silently dropped.
	tn, ok := s.reg.get("d1")
	if !ok {
		t.Fatal("tenant gone after shutdown")
	}
	if got := tn.ingested.Load(); got != chunks*per {
		t.Fatalf("ingested %d of %d accepted objects after drain", got, chunks*per)
	}
	if tn.queued.Load() != 0 {
		t.Fatalf("queue still holds %d objects after drain", tn.queued.Load())
	}
	if tn.lastIngestError() != "" {
		t.Fatalf("ingest error during drain: %s", tn.lastIngestError())
	}

	// The daemon is down: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestDeleteDuringObserve races tenant deletion against observes: handlers
// must see either a 202, a 404, or a 429 — never a panic from enqueueing on
// a closed queue (the qmu/qclosed contract).
func TestDeleteDuringObserve(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for round := 0; round < 10; round++ {
		id := fmt.Sprintf("r%d", round)
		do(t, "POST", ts.URL+"/v1/tenants", `{"id":"`+id+`","k":2}`, 201, nil)
		base := ts.URL + "/v1/tenants/" + id
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					resp, err := http.Post(base+"/observe", "application/json",
						strings.NewReader(pointsBody(20, int64(w*10+i))))
					if err != nil {
						t.Errorf("observe during delete: %v", err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case 202, 404, 429:
					default:
						t.Errorf("observe during delete: status %d", resp.StatusCode)
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest("DELETE", base, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("delete: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		wg.Wait()
	}
}

// TestLimitsPutDuringSwapAndAssign races the admission control surface
// against everything it guards: assign workers hammer an admission-enabled
// tenant while one goroutine cycles the limits through manual, off, and
// auto, and hot model swaps land underneath. The gates are the degraded-mode
// promise — every response is 200, 429, or 413, never 5xx — and the
// admission conservation law still holding on the quiesced /limits surface.
func TestLimitsPutDuringSwapAndAssign(t *testing.T) {
	_, ts := newTestServer(t, Config{Admission: true, P99Budget: 20 * time.Millisecond})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"lim","k":2,"seed":33,"admission":"on"}`, 201, nil)
	base := ts.URL + "/v1/tenants/lim"
	do(t, "POST", base+"/fit", pointsBody(120, 1), 200, nil)

	stop := make(chan struct{})
	var got5xx, badStatus, served atomic.Int64
	var wg sync.WaitGroup
	const readers = 6
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := pointsBody(8+8*(w%3), int64(200+w))
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/assign", "application/json", strings.NewReader(body))
				if err != nil {
					badStatus.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == 200:
					served.Add(1)
				case resp.StatusCode == 429 || resp.StatusCode == 413:
					// shed: the admission contract under churn
				case resp.StatusCode >= 500:
					got5xx.Add(1)
				default:
					badStatus.Add(1)
				}
			}
		}(w)
	}

	// One goroutine churns the limits; the main goroutine lands hot swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		bodies := []string{
			`{"mode":"manual","assign_rate_objects_per_sec":500,"assign_burst_objects":64}`,
			`{"mode":"off"}`,
			`{"mode":"auto"}`,
			`{"mode":"manual","assign_rate_objects_per_sec":50,"assign_burst_objects":8}`,
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req, err := http.NewRequest("PUT", base+"/limits", strings.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				t.Errorf("PUT limits: %v", err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("PUT limits: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("PUT limits: status %d", resp.StatusCode)
				return
			}
		}
	}()
	for swaps := 0; swaps < 4; swaps++ {
		do(t, "POST", base+"/fit", pointsBody(120, int64(40+swaps)), 200, nil)
	}
	close(stop)
	wg.Wait()

	if got5xx.Load() != 0 {
		t.Fatalf("%d responses were 5xx during limits churn; shedding must stay 4xx", got5xx.Load())
	}
	if badStatus.Load() != 0 {
		t.Fatalf("%d responses were outside the 200/429/413 contract", badStatus.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no assigns served while limits churned")
	}

	var lim limitsInfo
	do(t, "GET", base+"/limits", "", 200, &lim)
	for _, rl := range []routeLimits{lim.Assign, lim.Observe} {
		if rl.AttemptsTotal != rl.AdmittedTotal+rl.Shed429Total+rl.Shed413Total {
			t.Fatalf("admission conservation violated after churn: %+v", rl)
		}
	}
}
