package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"ucpc"
)

// Federation push loop: every stream tenant of a daemon configured with
// PushTo runs one background goroutine that periodically exports its UCWS
// statistics and POSTs them to the coordinator's matching tenant under the
// daemon's PushSource key (…/stats?source=<key>), where each push replaces
// the source's previous one — cumulative statistics are counted exactly
// once no matter how often they are re-shipped.
//
// Failure handling is classic edge-collector hygiene: each attempt runs
// under a PushTimeout context; a failed attempt backs off exponentially
// with full jitter (delay uniform in (0, min(interval·2^failures, 16·
// interval)]); pushBreakerThreshold consecutive failures open a circuit
// breaker (ucpcd_push_breaker_open) that declares the tenant degraded to
// local-only serving — the capped backoff cadence doubles as the breaker's
// half-open probe, and the first success closes it again. The loop never
// touches the ingestion path: a dead coordinator costs one goroutine a
// timeout per probe, nothing else.

// pushBreakerThreshold is the consecutive-failure count that opens the
// circuit breaker.
const pushBreakerThreshold = 5

// pushBackoffCap caps the exponential backoff, in multiples of
// Config.PushInterval.
const pushBackoffCap = 16

// errPushCold marks a push skipped because the engine has nothing to
// export yet — not a failure, just "try again next interval".
var errPushCold = errors.New("nothing to push yet")

// startPush launches the tenant's federation push loop, when the server is
// configured to push and the tenant is a stream tenant (sharded tenants
// are coordinators — they receive pushes, they do not send them).
func (s *Server) startPush(t *tenant) {
	if s.cfg.PushTo == "" || t.shards != 0 {
		return
	}
	s.loopWG.Add(1)
	go s.pushLoop(t)
}

// pushLoop is one tenant's push goroutine: steady PushInterval cadence on
// success, capped full-jitter exponential backoff on failure, breaker
// bookkeeping around the threshold. Exits on server shutdown/abort or
// tenant deletion.
func (s *Server) pushLoop(t *tenant) {
	defer s.loopWG.Done()
	interval := s.cfg.PushInterval
	rng := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(len(t.id))))
	failures := 0
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-s.stopLoops:
			return
		case <-t.stopPush:
			return
		case <-timer.C:
		}
		err := s.pushOnce(t)
		switch {
		case err == nil:
			if t.breakerOpen.CompareAndSwap(true, false) {
				s.logger.Info("push breaker closed", "tenant", t.id, "target", s.cfg.PushTo)
			}
			failures = 0
			timer.Reset(interval)
		case errors.Is(err, errPushCold):
			timer.Reset(interval)
		default:
			failures++
			t.pushFailures.Add(1)
			s.metrics.pushFailures.Add(1)
			msg := err.Error()
			t.pushErr.Store(&msg)
			if failures == pushBreakerThreshold {
				t.breakerOpen.Store(true)
				s.logger.Warn("push breaker open — degrading to local-only serving",
					"tenant", t.id, "target", s.cfg.PushTo, "consecutive_failures", failures)
			}
			timer.Reset(pushBackoff(rng, interval, failures))
		}
	}
}

// pushBackoff computes the post-failure delay: full jitter over the capped
// exponential ceiling, i.e. uniform in (0, min(interval·2^failures,
// 16·interval)]. Full jitter (rather than jittering around the ceiling)
// decorrelates a fleet of edges that all lost the same coordinator, so its
// recovery is not greeted by a synchronized thundering herd.
func pushBackoff(rng *rand.Rand, interval time.Duration, failures int) time.Duration {
	shift := failures
	if shift > 10 {
		shift = 10 // 2^10 already clears any sane cap; avoid overflow
	}
	ceiling := interval << shift
	if maxDelay := pushBackoffCap * interval; ceiling > maxDelay {
		ceiling = maxDelay
	}
	return time.Duration(rng.Int63n(int64(ceiling))) + time.Millisecond
}

// pushOnce exports the tenant's statistics and ships them to the
// coordinator under a PushTimeout context. On acceptance it records the
// tenant's ingested count at export time (lastPushSeen) — "everything up
// to here is on the coordinator". The counter is read before the export:
// every object it covers has completed Observe, so the export (which seeds
// a still-buffering engine on demand) necessarily includes it.
func (s *Server) pushOnce(t *tenant) error {
	fit := t.snapshotFit()
	exporter, ok := fit.(interface{ ExportStats() ([]byte, error) })
	if !ok {
		return errPushCold
	}
	seen := t.ingested.Load()
	payload, err := exporter.ExportStats()
	if errors.Is(err, ucpc.ErrStreamCold) {
		return errPushCold
	}
	if err != nil {
		return err
	}
	target := strings.TrimSuffix(s.cfg.PushTo, "/") + "/v1/tenants/" + t.id +
		"/stats?source=" + url.QueryEscape(s.cfg.PushSource)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, strings.NewReader(string(payload)))
	if err != nil {
		return fmt.Errorf("serve: push request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.pushClient.Do(req)
	if err != nil {
		return fmt.Errorf("serve: push to %s: %w", s.cfg.PushTo, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("serve: push to %s: coordinator answered %d: %s",
			s.cfg.PushTo, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	t.pushSuccess.Add(1)
	s.metrics.pushSuccess.Add(1)
	t.lastPushSeen.Store(seen)
	return nil
}
