package serve

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ucpc"
)

// fitter is the streaming-ingestion surface shared by ucpc.StreamFit and
// ucpc.ShardedFit: a tenant holds exactly one of the two (Shards == 0 vs
// Shards >= 1) and the ingester drives it through this interface. The extra
// capabilities — ExportStats on a stream fit, AddRemoteStats on a sharded
// fit — are reached by type assertion in the stats handlers.
type fitter interface {
	Observe(ctx context.Context, objs ucpc.Dataset) error
	Snapshot() (*ucpc.Model, error)
	Seen() int64
	Batches() int
}

// TenantSpec is the JSON body of POST /v1/tenants: the tenant id, the
// algorithm (validated against the shared algorithm registry — the same
// names ucpc.AlgorithmNames lists), the cluster count, and the per-tenant
// run configuration. Zero values mean the library defaults throughout.
type TenantSpec struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm,omitempty"`
	K         int    `json:"k"`
	// Workers/MaxIter/Seed/Pruning populate the tenant's ucpc.Config (batch
	// fits, FitFrom refreshes, Model.Assign serving).
	Workers int    `json:"workers,omitempty"`
	MaxIter int    `json:"max_iter,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Pruning is "on", "off", or "" (= on; results are identical either
	// way, only the amount of distance arithmetic differs).
	Pruning string `json:"pruning,omitempty"`
	// BatchSize/Decay/MaxBatches populate the tenant's ucpc.StreamConfig
	// (the observe ingestion path).
	BatchSize  int     `json:"batch_size,omitempty"`
	Decay      float64 `json:"decay,omitempty"`
	MaxBatches int     `json:"max_batches,omitempty"`
	// Shards selects the ingestion engine: 0 = a single StreamClusterer
	// engine (supports GET stats export), >= 1 = a ShardedClusterer
	// coordinator with that many local shards (supports POST stats import
	// from remote UCWS payloads).
	Shards int `json:"shards,omitempty"`
	// QueueChunks overrides the server's bounded ingestion-queue capacity
	// for this tenant, counted in observe payloads (0 = server default).
	QueueChunks int `json:"queue_chunks,omitempty"`
	// Admission is "on", "off", or "" (= the server default set by the
	// -admission flag). "on" starts the tenant in auto mode: token buckets
	// on assign and observe sized from the measured per-object cost against
	// the daemon's latency budget.
	Admission string `json:"admission,omitempty"`
}

var tenantIDPattern = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// config resolves the spec into the tenant's batch and stream configs.
func (s TenantSpec) config() (ucpc.Config, ucpc.StreamConfig, error) {
	var prune ucpc.PruneMode
	switch s.Pruning {
	case "", "on", "auto":
		prune = ucpc.PruneOn
	case "off":
		prune = ucpc.PruneOff
	default:
		return ucpc.Config{}, ucpc.StreamConfig{},
			fmt.Errorf("serve: invalid pruning %q (valid: on, off): %w", s.Pruning, errBadRequest)
	}
	cfg := ucpc.Config{Workers: s.Workers, MaxIter: s.MaxIter, Seed: s.Seed, Pruning: prune}
	scfg := ucpc.StreamConfig{
		BatchSize: s.BatchSize, Decay: s.Decay, MaxBatches: s.MaxBatches,
		Workers: s.Workers, Seed: s.Seed, Pruning: prune,
	}
	if err := cfg.Validate(); err != nil {
		return cfg, scfg, err
	}
	return cfg, scfg, scfg.Validate()
}

// tenant is one isolated clustering session: a frozen serving model behind
// an atomic pointer (readers never block, swaps are one pointer store), a
// streaming ingestion engine fed by a bounded queue, and the counters the
// /metrics endpoint exports.
type tenant struct {
	id     string
	alg    string
	k      int
	shards int
	cfg    ucpc.Config
	scfg   ucpc.StreamConfig
	// spec is the exact creation spec, retained so persistence can write it
	// into the snapshot manifest and restore can rebuild the tenant from it.
	spec TenantSpec

	// model is the serving model; nil until the first snapshot/fit/upload.
	// version counts installs, swaps mirrors it for the metrics surface.
	model   atomic.Pointer[ucpc.Model]
	version atomic.Int64
	swaps   atomic.Int64

	// mu guards fit (the pointer — the engines themselves are
	// concurrency-safe) and refresh bookkeeping.
	mu  sync.Mutex
	fit fitter

	// refreshing marks one in-flight background FitFrom; concurrent
	// refreshes are rejected with 409. refreshErr keeps the most recent
	// background-refresh failure for the tenant-info surface.
	refreshing atomic.Bool
	refreshErr atomic.Pointer[string]

	// queue is the bounded ingestion queue: observe handlers enqueue
	// payloads without blocking (full queue = 429) and the per-tenant
	// ingester goroutine drains it into the stream engine. qmu serializes
	// enqueue against close so Delete can never panic a handler.
	queue     chan ucpc.Dataset
	qmu       sync.RWMutex
	qclosed   bool
	queued    atomic.Int64 // objects currently waiting in queue
	ingested  atomic.Int64 // objects folded into the stream engine
	done      chan struct{}
	ingestErr atomic.Pointer[string]

	// Persistence bookkeeping (used only when the server has a state dir).
	// persistMu serializes snapshot writes for this tenant; the persisted*
	// atomics record what the last durable snapshot contained so unchanged
	// tenants are skipped, and lastSaveNano feeds snapshot_age_seconds.
	persistMu        sync.Mutex
	persistedSeen    atomic.Int64
	persistedVersion atomic.Int64
	lastSaveNano     atomic.Int64

	// adm is the tenant's admission-control state (cost models, token
	// buckets, conservation counters); always non-nil, possibly in off mode.
	adm *admission

	// Federation push bookkeeping (used only when the server has a push
	// target). stopPush ends the tenant's push loop on deletion; the
	// counters feed /metrics and the tenant-info surface, and lastPushSeen
	// is the engine's Seen at the moment of the last accepted push.
	stopPush     chan struct{}
	pushSuccess  atomic.Int64
	pushFailures atomic.Int64
	breakerOpen  atomic.Bool
	lastPushSeen atomic.Int64
	pushErr      atomic.Pointer[string]
}

// admissionDefaults carries the server-level admission configuration into
// newTenant: whether tenants default to auto mode, the latency budget the
// buckets defend, and the clock (time.Now outside tests).
type admissionDefaults struct {
	enabled bool
	budget  time.Duration
	now     func() time.Time
}

// newTenant builds the tenant and starts its ingester goroutine.
func newTenant(spec TenantSpec, queueChunks int, m *metrics, admDefaults admissionDefaults) (*tenant, error) {
	if !tenantIDPattern.MatchString(spec.ID) {
		return nil, fmt.Errorf("serve: tenant id %q must match %s: %w",
			spec.ID, tenantIDPattern, errBadRequest)
	}
	mode := modeOff
	switch spec.Admission {
	case "on", "auto":
		mode = modeAuto
	case "off":
	case "":
		if admDefaults.enabled {
			mode = modeAuto
		}
	default:
		return nil, fmt.Errorf("serve: tenant %q: invalid admission %q (valid: on, off): %w",
			spec.ID, spec.Admission, errBadRequest)
	}
	if spec.K < 1 {
		return nil, fmt.Errorf("serve: tenant %q: k %d: %w", spec.ID, spec.K, ucpc.ErrBadK)
	}
	if spec.Shards < 0 {
		return nil, fmt.Errorf("serve: tenant %q: negative shards %d: %w", spec.ID, spec.Shards, ucpc.ErrBadConfig)
	}
	if spec.QueueChunks < 0 {
		return nil, fmt.Errorf("serve: tenant %q: negative queue_chunks %d: %w", spec.ID, spec.QueueChunks, ucpc.ErrBadConfig)
	}
	cfg, scfg, err := spec.config()
	if err != nil {
		return nil, err
	}
	if _, err := ucpc.NewAlgorithm(spec.Algorithm, cfg); err != nil {
		return nil, fmt.Errorf("%w: %w", err, errBadRequest)
	}
	var fit fitter
	if spec.Shards == 0 {
		fit, err = (&ucpc.StreamClusterer{Config: scfg}).Begin(context.Background(), spec.K)
	} else {
		fit, err = (&ucpc.ShardedClusterer{Config: scfg, Shards: spec.Shards}).Begin(context.Background(), spec.K)
	}
	if err != nil {
		return nil, err
	}
	if spec.QueueChunks > 0 {
		queueChunks = spec.QueueChunks
	}
	t := &tenant{
		id: spec.ID, alg: spec.Algorithm, k: spec.K, shards: spec.Shards,
		cfg: cfg, scfg: scfg, spec: spec,
		fit:      fit,
		adm:      newAdmission(mode, admDefaults.budget, m, admDefaults.now),
		queue:    make(chan ucpc.Dataset, queueChunks),
		done:     make(chan struct{}),
		stopPush: make(chan struct{}),
	}
	go t.ingest(m)
	return t, nil
}

// install atomically publishes m as the tenant's serving model — the hot
// swap. In-flight Assign calls keep using the model they loaded; new calls
// see the new one. Never blocks.
func (t *tenant) install(m *ucpc.Model, mx *metrics) int64 {
	t.model.Store(m)
	t.swaps.Add(1)
	mx.swaps.Add(1)
	// Re-weight the assign cost model from the new model's pruning counters
	// before any request against it is measured.
	t.adm.onInstall(m.Report(), t.k)
	return t.version.Add(1)
}

// enqueue hands one observe payload to the ingester without blocking:
// false means the bounded queue is full (or the tenant is deleted) and the
// caller must answer 429.
func (t *tenant) enqueue(ds ucpc.Dataset) bool {
	t.qmu.RLock()
	defer t.qmu.RUnlock()
	if t.qclosed {
		return false
	}
	select {
	case t.queue <- ds:
		t.queued.Add(int64(len(ds)))
		return true
	default:
		return false
	}
}

// ingest is the tenant's single ingester goroutine: it drains the queue
// into the stream engine until the queue is closed (tenant deletion or
// server shutdown), then signals done. An Observe failure is recorded for
// the tenant-info and metrics surfaces and does not stop the ingester —
// later payloads may be well-formed again.
func (t *tenant) ingest(m *metrics) {
	defer close(t.done)
	for ds := range t.queue {
		t.mu.Lock()
		fit := t.fit
		t.mu.Unlock()
		start := t.adm.now()
		err := fit.Observe(context.Background(), ds)
		t.adm.observeCost(routeObserve, len(ds), t.adm.now().Sub(start))
		t.queued.Add(-int64(len(ds)))
		if err != nil {
			msg := err.Error()
			t.ingestErr.Store(&msg)
			continue
		}
		t.ingested.Add(int64(len(ds)))
		m.ingested.Add(int64(len(ds)))
	}
}

// closeQueue stops the ingester after it drains what is already queued and
// ends the tenant's federation push loop. Safe to call more than once.
func (t *tenant) closeQueue() {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	if !t.qclosed {
		t.qclosed = true
		close(t.queue)
		close(t.stopPush)
	}
}

// snapshotFit returns the current stream engine.
func (t *tenant) snapshotFit() fitter {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fit
}

// lastIngestError returns the most recent Observe failure message ("" when
// none).
func (t *tenant) lastIngestError() string {
	if p := t.ingestErr.Load(); p != nil {
		return *p
	}
	return ""
}

// lastPushError returns the most recent federation-push failure message
// ("" when none).
func (t *tenant) lastPushError() string {
	if p := t.pushErr.Load(); p != nil {
		return *p
	}
	return ""
}

// lastRefreshError returns the most recent background-refresh failure
// message ("" when none).
func (t *tenant) lastRefreshError() string {
	if p := t.refreshErr.Load(); p != nil {
		return *p
	}
	return ""
}

// registry is the multi-tenant model registry: id → tenant.
type registry struct {
	mu      sync.RWMutex
	tenants map[string]*tenant
}

func newRegistry() *registry { return &registry{tenants: make(map[string]*tenant)} }

func (r *registry) get(id string) (*tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[id]
	return t, ok
}

// add registers t; false means the id is taken.
func (r *registry) add(t *tenant) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tenants[t.id]; dup {
		return false
	}
	r.tenants[t.id] = t
	return true
}

// remove unregisters and returns the tenant; the caller closes its queue.
func (r *registry) remove(id string) (*tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	if ok {
		delete(r.tenants, id)
	}
	return t, ok
}

// list returns the tenants sorted by id.
func (r *registry) list() []*tenant {
	r.mu.RLock()
	ts := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	r.mu.RUnlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
	return ts
}

// closeAll closes every tenant's queue and waits for the ingesters to
// drain, honoring ctx — the tenant half of graceful shutdown.
func (r *registry) closeAll(ctx context.Context) error {
	for _, t := range r.list() {
		t.closeQueue()
	}
	for _, t := range r.list() {
		select {
		case <-t.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
