package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ucpc"
)

// newTestServer mounts a fresh daemon on httptest. Tests that need to reach
// inside (tenant internals, registry) use the returned *Server directly.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.reg.closeAll(ctx); err != nil {
			t.Errorf("closeAll: %v", err)
		}
	})
	return s, ts
}

// do issues one request and decodes the JSON body (when out != nil).
func do(t *testing.T, method, url, body string, want int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d (body: %s)", method, url, resp.StatusCode, want, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
}

// pointsBody builds {"points": [...]} with n points on two separated blobs.
func pointsBody(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString(`{"points":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		base := float64(i%2) * 30
		fmt.Fprintf(&b, "[%.4f,%.4f]", base+rng.Float64(), base+rng.Float64())
	}
	b.WriteString("]}")
	return b.String()
}

// waitIngested polls the tenant until at least n objects are folded in.
func waitIngested(t *testing.T, url string, n int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var info tenantInfo
		do(t, "GET", url, "", 200, &info)
		if info.Ingested >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant never ingested %d objects (at %d, last error %q)",
				n, info.Ingested, info.IngestError)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTenantLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var info tenantInfo
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"alpha","k":3,"seed":11}`, 201, &info)
	if info.ID != "alpha" || info.K != 3 || info.HasModel {
		t.Fatalf("create info: %+v", info)
	}
	// Duplicate id conflicts.
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"alpha","k":3}`, 409, nil)
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"beta","k":2,"shards":2}`, 201, nil)

	var list struct {
		Tenants []tenantInfo `json:"tenants"`
	}
	do(t, "GET", ts.URL+"/v1/tenants", "", 200, &list)
	if len(list.Tenants) != 2 || list.Tenants[0].ID != "alpha" || list.Tenants[1].ID != "beta" {
		t.Fatalf("list: %+v", list.Tenants)
	}

	do(t, "GET", ts.URL+"/v1/tenants/alpha", "", 200, &info)
	do(t, "DELETE", ts.URL+"/v1/tenants/alpha", "", 204, nil)
	do(t, "GET", ts.URL+"/v1/tenants/alpha", "", 404, nil)
	do(t, "DELETE", ts.URL+"/v1/tenants/alpha", "", 404, nil)
}

func TestCreateTenantValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := []string{
		`{"id":"","k":2}`,                     // empty id
		`{"id":"has space","k":2}`,            // illegal id characters
		`{"id":"x","k":0}`,                    // k < 1
		`{"id":"x","k":2,"algorithm":"nope"}`, // unknown algorithm
		`{"id":"x","k":2,"pruning":"maybe"}`,  // invalid pruning mode
		`{"id":"x","k":2,"shards":-1}`,        // negative shards
		`{"id":"x","k":2,"queue_chunks":-1}`,  // negative queue override
		`{"id":"x","k":2,"max_iter":-3}`,      // Config.Validate rejects
		`not json`,                            // malformed body
	}
	for _, body := range bad {
		do(t, "POST", ts.URL+"/v1/tenants", body, 400, nil)
	}
}

func TestObserveSnapshotAssign(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"t1","k":2,"seed":5}`, 201, nil)
	base := ts.URL + "/v1/tenants/t1"

	// Serving before any model exists is a 409, not a 500.
	do(t, "POST", base+"/assign", `{"points":[[1,1]]}`, 409, nil)
	// Snapshot of a cold stream is a 409 too.
	do(t, "POST", base+"/snapshot", "", 409, nil)

	var ack struct {
		Accepted int `json:"accepted"`
	}
	do(t, "POST", base+"/observe", pointsBody(200, 1), 202, &ack)
	if ack.Accepted != 200 {
		t.Fatalf("accepted %d objects, want 200", ack.Accepted)
	}
	waitIngested(t, base, 200)

	var info tenantInfo
	do(t, "POST", base+"/snapshot", "", 200, &info)
	if !info.HasModel || info.ModelVersion != 1 || info.ModelK != 2 {
		t.Fatalf("snapshot info: %+v", info)
	}

	var res struct {
		Assign       []int `json:"assign"`
		ModelVersion int64 `json:"model_version"`
		K            int   `json:"k"`
	}
	do(t, "POST", base+"/assign", `{"points":[[0.5,0.5],[30.5,30.5],[0.2,0.8]]}`, 200, &res)
	if len(res.Assign) != 3 || res.ModelVersion != 1 || res.K != 2 {
		t.Fatalf("assign response: %+v", res)
	}
	// The two blobs are 30 apart: same-blob objects share a cluster, the
	// cross-blob object does not.
	if res.Assign[0] != res.Assign[2] || res.Assign[0] == res.Assign[1] {
		t.Fatalf("assignment does not separate the blobs: %v", res.Assign)
	}
}

func TestObserveValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"t1","k":2}`, 201, nil)
	base := ts.URL + "/v1/tenants/t1"
	bad := []string{
		`{}`,                                    // no objects at all
		`{"points":[[]]}`,                       // empty point
		`{"points":[[1,2],[3]]}`,                // dimension mismatch
		`{"objects":[{"marginals":[]}]}`,        // object with no marginals
		`{"objects":[{"marginals":["Z:1"]}]}`,   // unknown marginal token
		`{"objects":[{"marginals":["U:5:1"]}]}`, // inverted uniform support
	}
	for _, body := range bad {
		do(t, "POST", base+"/observe", body, 400, nil)
	}
	do(t, "POST", ts.URL+"/v1/tenants/ghost/observe", `{"points":[[1,2]]}`, 404, nil)
}

// TestObserveUncertainObjects drives full marginal-token objects — the ucsv
// distribution grammar over HTTP — through observe, snapshot, and assign.
func TestObserveUncertainObjects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"u1","k":2,"seed":3}`, 201, nil)
	base := ts.URL + "/v1/tenants/u1"

	var b strings.Builder
	b.WriteString(`{"objects":[`)
	for i := 0; i < 120; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		shift := float64(i%2) * 40
		fmt.Fprintf(&b, `{"marginals":["U:%.1f:%.1f","N:%.1f:1:%.1f:%.1f"],"label":%d}`,
			shift, shift+2, shift+1, shift-3, shift+5, i%2)
	}
	b.WriteString("]}")
	do(t, "POST", base+"/observe", b.String(), 202, nil)
	waitIngested(t, base, 120)
	do(t, "POST", base+"/snapshot", "", 200, nil)

	var res struct {
		Assign []int `json:"assign"`
	}
	do(t, "POST", base+"/assign",
		`{"objects":[{"marginals":["U:0:2","N:1:1:-3:5"]},{"marginals":["U:40:42","N:41:1:37:45"]}]}`,
		200, &res)
	if len(res.Assign) != 2 || res.Assign[0] == res.Assign[1] {
		t.Fatalf("uncertain assign: %v", res.Assign)
	}
}

func TestFitSynchronous(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"t1","k":2,"seed":9}`, 201, nil)
	base := ts.URL + "/v1/tenants/t1"

	var info tenantInfo
	do(t, "POST", base+"/fit", pointsBody(100, 2), 200, &info)
	if !info.HasModel || info.ModelVersion != 1 || info.Iterations < 1 {
		t.Fatalf("fit info: %+v", info)
	}
	do(t, "POST", base+"/fit", `{}`, 400, nil)
	// A second fit bumps the version: the hot swap.
	do(t, "POST", base+"/fit", pointsBody(100, 3), 200, &info)
	if info.ModelVersion != 2 || info.Swaps != 2 {
		t.Fatalf("second fit info: %+v", info)
	}
}

// TestBackpressure fills a capacity-1 ingestion queue deterministically: the
// test holds the tenant mutex, which parks the ingester after it takes the
// first payload off the queue, so the second payload fills the queue and the
// third must bounce with 429 + Retry-After.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"bp","k":2,"queue_chunks":1}`, 201, nil)
	base := ts.URL + "/v1/tenants/bp"
	tn, ok := s.reg.get("bp")
	if !ok {
		t.Fatal("tenant bp not registered")
	}

	tn.mu.Lock()
	do(t, "POST", base+"/observe", pointsBody(10, 1), 202, nil)
	// Wait for the ingester to pull payload 1 off the queue and park on mu.
	deadline := time.Now().Add(5 * time.Second)
	for len(tn.queue) != 0 {
		if time.Now().After(deadline) {
			tn.mu.Unlock()
			t.Fatal("ingester never picked up the first payload")
		}
		time.Sleep(time.Millisecond)
	}
	do(t, "POST", base+"/observe", pointsBody(10, 2), 202, nil) // fills the queue

	req, _ := http.NewRequest("POST", base+"/observe", strings.NewReader(pointsBody(10, 3)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tn.mu.Unlock()
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tn.mu.Unlock()
	if resp.StatusCode != 429 {
		t.Fatalf("full queue answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.metrics.queueRejected.Load(); got != 1 {
		t.Errorf("queueRejected = %d, want 1", got)
	}
	// The accepted payloads still land once the ingester resumes.
	waitIngested(t, base, 20)
}

func TestModelDownloadUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"src","k":2,"seed":4}`, 201, nil)
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"dst","k":2,"seed":4}`, 201, nil)
	do(t, "POST", ts.URL+"/v1/tenants/src/fit", pointsBody(80, 6), 200, nil)

	// Download the UCPM payload.
	resp, err := http.Get(ts.URL + "/v1/tenants/src/model")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("model download: %d (%s)", resp.StatusCode, payload)
	}
	if resp.Header.Get("X-Model-Version") != "1" {
		t.Errorf("X-Model-Version = %q", resp.Header.Get("X-Model-Version"))
	}
	if _, err := ucpc.LoadModel(bytes.NewReader(payload)); err != nil {
		t.Fatalf("downloaded payload does not load: %v", err)
	}

	// Upload it into the second tenant and serve from it.
	req, _ := http.NewRequest("PUT", ts.URL+"/v1/tenants/dst/model", bytes.NewReader(payload))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("model upload: %d (%s)", resp.StatusCode, body)
	}
	do(t, "POST", ts.URL+"/v1/tenants/dst/assign", `{"points":[[0,0]]}`, 200, nil)

	// Garbage payloads are 400, and no-model downloads are 409.
	req, _ = http.NewRequest("PUT", ts.URL+"/v1/tenants/dst/model", strings.NewReader("not a model"))
	resp, _ = http.DefaultClient.Do(req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage model upload: %d, want 400", resp.StatusCode)
	}
	do(t, "GET", ts.URL+"/v1/tenants/dst/model", "", 200, nil)
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"empty","k":2}`, 201, nil)
	resp, _ = http.Get(ts.URL + "/v1/tenants/empty/model")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Fatalf("no-model download: %d, want 409", resp.StatusCode)
	}
}

// TestStatsFederation ships UCWS statistics from a stream tenant (the edge)
// into a sharded tenant (the coordinator) — the distributed-fit path over
// HTTP.
func TestStatsFederation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"edge","k":2,"seed":8}`, 201, nil)
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"coord","k":2,"seed":8,"shards":2}`, 201, nil)

	do(t, "POST", ts.URL+"/v1/tenants/edge/observe", pointsBody(150, 7), 202, nil)
	waitIngested(t, ts.URL+"/v1/tenants/edge", 150)

	resp, err := http.Get(ts.URL + "/v1/tenants/edge/stats")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(payload) == 0 {
		t.Fatalf("stats export: %d, %d bytes", resp.StatusCode, len(payload))
	}

	resp, err = http.Post(ts.URL+"/v1/tenants/coord/stats", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stats import: %d (%s)", resp.StatusCode, body)
	}

	// The coordinator can snapshot and serve purely from remote statistics.
	do(t, "POST", ts.URL+"/v1/tenants/coord/snapshot", "", 200, nil)
	do(t, "POST", ts.URL+"/v1/tenants/coord/assign", `{"points":[[0.5,0.5]]}`, 200, nil)

	// Capability mismatches are 400s: sharded tenants cannot export, stream
	// tenants cannot import.
	resp, _ = http.Get(ts.URL + "/v1/tenants/coord/stats")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("sharded stats export: %d, want 400", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/v1/tenants/edge/stats", "application/octet-stream", bytes.NewReader(payload))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("stream stats import: %d, want 400", resp.StatusCode)
	}
}

func TestRefresh(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"t1","k":2,"seed":12}`, 201, nil)
	base := ts.URL + "/v1/tenants/t1"

	// Refresh without a serving model is a 409.
	do(t, "POST", base+"/refresh", pointsBody(50, 1), 409, nil)
	do(t, "POST", base+"/fit", pointsBody(100, 2), 200, nil)

	// Unknown mode is a 400.
	do(t, "POST", base+"/refresh", `{"mode":"psychic"}`, 400, nil)

	// Background batch refresh: 202 now, version bump when it lands.
	do(t, "POST", base+"/refresh", pointsBody(100, 3), 202, nil)
	deadline := time.Now().Add(15 * time.Second)
	for {
		var info tenantInfo
		do(t, "GET", base, "", 200, &info)
		if info.ModelVersion >= 2 {
			break
		}
		if info.RefreshError != "" {
			t.Fatalf("background refresh failed: %s", info.RefreshError)
		}
		if time.Now().After(deadline) {
			t.Fatalf("background refresh never landed: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stream mode re-begins the ingestion engine warm from the serving model:
	// a snapshot is possible immediately, without re-feeding k objects.
	do(t, "POST", base+"/refresh", `{"mode":"stream"}`, 200, nil)
	var info tenantInfo
	do(t, "POST", base+"/snapshot", "", 200, &info)
	if info.ModelVersion < 3 {
		t.Fatalf("post-stream-refresh snapshot info: %+v", info)
	}

	// Sharded tenants reject stream mode.
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"sh","k":2,"shards":2}`, 201, nil)
	do(t, "POST", ts.URL+"/v1/tenants/sh/fit", pointsBody(60, 4), 200, nil)
	do(t, "POST", ts.URL+"/v1/tenants/sh/refresh", `{"mode":"stream"}`, 400, nil)
}

func TestRequestTimeout(t *testing.T) {
	// A one-nanosecond request budget expires before any fit makes progress:
	// the typed context error must surface as 503, not 500.
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	// Tenant creation does not consult the request context after parsing.
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"t1","k":2}`, 201, nil)
	do(t, "POST", ts.URL+"/v1/tenants/t1/fit", pointsBody(100, 1), 503, nil)
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"t1","k":2}`, 201, nil)
	do(t, "POST", ts.URL+"/v1/tenants/t1/observe", pointsBody(500, 1), 400, nil)
}

// TestMetricsEndpoint checks the exposition contains the advertised series
// and that the request/response conservation law holds on a quiesced server.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do(t, "POST", ts.URL+"/v1/tenants", `{"id":"m1","k":2,"seed":2}`, 201, nil)
	do(t, "POST", ts.URL+"/v1/tenants/m1/fit", pointsBody(80, 1), 200, nil)
	do(t, "POST", ts.URL+"/v1/tenants/m1/assign", `{"points":[[1,1],[2,2]]}`, 200, nil)
	do(t, "GET", ts.URL+"/v1/tenants/ghost", "", 404, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)

	for _, series := range []string{
		"ucpcd_uptime_seconds",
		"ucpcd_requests_total",
		`ucpcd_responses_total{class="2xx"}`,
		`ucpcd_responses_total{class="4xx"}`,
		"ucpcd_queue_rejected_total",
		"ucpcd_ingested_objects_total",
		"ucpcd_swaps_total 1",
		"ucpcd_assign_objects_total 2",
		"ucpcd_assign_latency_seconds_bucket",
		"ucpcd_assign_latency_seconds_count 1",
		"ucpcd_assign_batch_objects_sum 2",
		"ucpcd_tenants 1",
		`ucpcd_tenant_swaps_total{tenant="m1"} 1`,
		`ucpcd_tenant_model_version{tenant="m1"} 1`,
		`ucpcd_tenant_model_iterations{tenant="m1"}`,
		`ucpcd_tenant_model_objective{tenant="m1"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q", series)
		}
	}

	// Conservation: requests_total == sum over classes of responses_total.
	// The /metrics request itself is counted only after its handler returns,
	// so the scrape sees a consistent snapshot of all earlier requests.
	requests, responses := parseConservation(t, text)
	if requests != responses {
		t.Errorf("conservation violated: requests_total %d != Σ responses_total %d\n%s",
			requests, responses, text)
	}
}

// parseConservation extracts requests_total and the responses_total sum.
func parseConservation(t *testing.T, text string) (int64, int64) {
	t.Helper()
	var requests, responses int64
	for _, line := range strings.Split(text, "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, "ucpcd_requests_total %d", &v); err == nil {
			requests = v
		}
		if strings.HasPrefix(line, "ucpcd_responses_total{") {
			fields := strings.Fields(line)
			if len(fields) == 2 {
				if _, err := fmt.Sscanf(fields[1], "%d", &v); err == nil {
					responses += v
				}
			}
		}
	}
	return requests, responses
}
