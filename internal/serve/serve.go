// Package serve is the clustering-as-a-service daemon behind cmd/ucpcd: an
// HTTP/JSON server exposing the full lifecycle of the public ucpc API over
// a multi-tenant model registry.
//
// Each tenant is one isolated clustering session — an algorithm from the
// shared registry, a per-tenant Config/StreamConfig, a streaming ingestion
// engine (StreamClusterer, or ShardedClusterer for tenants that merge
// remote UCWS statistics), and a frozen serving model behind an atomic
// pointer. The serving path (POST …/assign) reads that pointer and scores
// objects through the concurrency-safe Model.Assign; model installs
// (snapshot, batch fit, background FitFrom refresh, UCPM upload) are one
// atomic pointer store, so readers never block and never see a torn model —
// the fit-once/assign-many split of the paper's Theorem 1, deployed as the
// serve-while-refitting shape the ROADMAP's "millions of users" north star
// asks for.
//
// Production plumbing, end to end: per-request timeouts via context
// propagation into every library call, bounded per-tenant ingestion queues
// with explicit 429 backpressure, graceful shutdown that drains in-flight
// requests and queued ingestion, structured request logging (log/slog),
// and a Prometheus-text /metrics endpoint exporting request/response
// conservation counters, serving histograms (assign latency, batch sizes),
// swap counts, queue depths, and each tenant's model counters
// (iterations, objective, pruning) read live at scrape time.
//
//	POST   /v1/tenants              create a tenant (TenantSpec)
//	GET    /v1/tenants              list tenants
//	GET    /v1/tenants/{id}         tenant info
//	DELETE /v1/tenants/{id}         delete (ingester drains in background)
//	POST   /v1/tenants/{id}/observe enqueue objects for streaming ingestion (202; 429 = queue full)
//	POST   /v1/tenants/{id}/fit     synchronous batch fit + hot swap
//	POST   /v1/tenants/{id}/snapshot freeze stream centroids + hot swap
//	POST   /v1/tenants/{id}/refresh  background FitFrom refit (202) or stream re-begin (mode=stream)
//	POST   /v1/tenants/{id}/assign  serve objects against the frozen model
//	GET    /v1/tenants/{id}/model   download the UCPM model payload
//	PUT    /v1/tenants/{id}/model   upload a UCPM payload + hot swap
//	GET    /v1/tenants/{id}/stats   export UCWS statistics (stream tenants)
//	POST   /v1/tenants/{id}/stats   import remote UCWS statistics (sharded tenants)
//	GET    /metrics                 Prometheus text exposition
//	GET    /healthz                 liveness
package serve

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"
)

// Config is the daemon configuration; the zero value is production-safe
// defaults throughout.
type Config struct {
	// RequestTimeout bounds each request's context (0 = 30s). Long batch
	// fits that exceed it fail with 503 rather than holding a connection.
	RequestTimeout time.Duration
	// FitTimeout bounds background FitFrom refreshes (0 = 5m).
	FitTimeout time.Duration
	// QueueChunks is the default per-tenant ingestion-queue capacity,
	// counted in observe payloads (0 = 64). A full queue answers 429.
	QueueChunks int
	// MaxBodyBytes caps request bodies (0 = 32 MiB).
	MaxBodyBytes int64
	// Logger receives structured request and lifecycle logs (nil = text
	// logs to io.Discard; cmd/ucpcd wires a JSON handler on stderr).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.FitTimeout == 0 {
		c.FitTimeout = 5 * time.Minute
	}
	if c.QueueChunks == 0 {
		c.QueueChunks = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the daemon: registry + handlers + metrics behind one
// http.Handler, plus lifecycle management (Serve, Shutdown).
type Server struct {
	cfg     Config
	logger  *slog.Logger
	reg     *registry
	metrics *metrics
	handler http.Handler
	http    *http.Server
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		logger:  cfg.Logger,
		reg:     newRegistry(),
		metrics: newMetrics(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/tenants", s.handleCreateTenant)
	mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	mux.HandleFunc("GET /v1/tenants/{id}", s.handleGetTenant)
	mux.HandleFunc("DELETE /v1/tenants/{id}", s.handleDeleteTenant)
	mux.HandleFunc("POST /v1/tenants/{id}/observe", s.handleObserve)
	mux.HandleFunc("POST /v1/tenants/{id}/fit", s.handleFit)
	mux.HandleFunc("POST /v1/tenants/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/tenants/{id}/refresh", s.handleRefresh)
	mux.HandleFunc("POST /v1/tenants/{id}/assign", s.handleAssign)
	mux.HandleFunc("GET /v1/tenants/{id}/model", s.handleGetModel)
	mux.HandleFunc("PUT /v1/tenants/{id}/model", s.handlePutModel)
	mux.HandleFunc("GET /v1/tenants/{id}/stats", s.handleGetStats)
	mux.HandleFunc("POST /v1/tenants/{id}/stats", s.handlePostStats)
	s.handler = s.instrument(mux)
	s.http = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the fully instrumented handler — the surface tests mount
// on httptest.Server.
func (s *Server) Handler() http.Handler { return s.handler }

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps the mux with the shared middleware: the per-request
// timeout context, the status capture feeding the request/response
// conservation counters, and one structured log line per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.metrics.finish(sw.status)
		s.logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

// handleMetrics: GET /metrics — daemon-wide counters and histograms, then
// the per-tenant series read live from the registry (queue depth gauges,
// swap counts, and the installed model's iteration/objective/pruning
// counters from its Report).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w)
	tenants := s.reg.list()
	fmt.Fprintf(w, "# TYPE ucpcd_tenants gauge\nucpcd_tenants %d\n", len(tenants))
	if len(tenants) == 0 {
		return
	}
	var depth int64
	for _, t := range tenants {
		depth += t.queued.Load()
	}
	fmt.Fprintf(w, "# TYPE ucpcd_queue_depth_objects gauge\nucpcd_queue_depth_objects %d\n", depth)
	writeSeries := func(name, typ string, value func(t *tenant) (string, bool)) {
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		for _, t := range tenants {
			if v, ok := value(t); ok {
				fmt.Fprintf(w, "%s{tenant=%q} %s\n", name, t.id, v)
			}
		}
	}
	writeSeries("ucpcd_tenant_queue_depth_objects", "gauge", func(t *tenant) (string, bool) {
		return fmt.Sprint(t.queued.Load()), true
	})
	writeSeries("ucpcd_tenant_ingested_objects_total", "counter", func(t *tenant) (string, bool) {
		return fmt.Sprint(t.ingested.Load()), true
	})
	writeSeries("ucpcd_tenant_swaps_total", "counter", func(t *tenant) (string, bool) {
		return fmt.Sprint(t.swaps.Load()), true
	})
	writeSeries("ucpcd_tenant_model_version", "gauge", func(t *tenant) (string, bool) {
		return fmt.Sprint(t.version.Load()), true
	})
	writeSeries("ucpcd_tenant_stream_seen_objects", "gauge", func(t *tenant) (string, bool) {
		return fmt.Sprint(t.snapshotFit().Seen()), true
	})
	writeSeries("ucpcd_tenant_model_iterations", "gauge", func(t *tenant) (string, bool) {
		m := t.model.Load()
		if m == nil {
			return "", false
		}
		return fmt.Sprint(m.Report().Iterations), true
	})
	writeSeries("ucpcd_tenant_model_objective", "gauge", func(t *tenant) (string, bool) {
		m := t.model.Load()
		if m == nil {
			return "", false
		}
		return formatFloat(m.Report().Objective), true
	})
	writeSeries("ucpcd_tenant_model_pruned_candidates_total", "counter", func(t *tenant) (string, bool) {
		m := t.model.Load()
		if m == nil {
			return "", false
		}
		return fmt.Sprint(m.Report().PrunedCandidates), true
	})
	writeSeries("ucpcd_tenant_model_scanned_candidates_total", "counter", func(t *tenant) (string, bool) {
		m := t.model.Load()
		if m == nil {
			return "", false
		}
		return fmt.Sprint(m.Report().ScannedCandidates), true
	})
}

// Serve accepts connections on l until Shutdown. It returns the
// http.Server error (http.ErrServerClosed after a clean Shutdown is
// swallowed — a clean exit returns nil).
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the daemon gracefully: stop accepting, wait for in-flight
// requests (http.Server.Shutdown), then close every tenant's ingestion
// queue and wait for the ingesters to fold what was already accepted. ctx
// bounds the whole drain.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.http.Shutdown(ctx); err != nil {
		return err
	}
	return s.reg.closeAll(ctx)
}
