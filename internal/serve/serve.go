// Package serve is the clustering-as-a-service daemon behind cmd/ucpcd: an
// HTTP/JSON server exposing the full lifecycle of the public ucpc API over
// a multi-tenant model registry.
//
// Each tenant is one isolated clustering session — an algorithm from the
// shared registry, a per-tenant Config/StreamConfig, a streaming ingestion
// engine (StreamClusterer, or ShardedClusterer for tenants that merge
// remote UCWS statistics), and a frozen serving model behind an atomic
// pointer. The serving path (POST …/assign) reads that pointer and scores
// objects through the concurrency-safe Model.Assign; model installs
// (snapshot, batch fit, background FitFrom refresh, UCPM upload) are one
// atomic pointer store, so readers never block and never see a torn model —
// the fit-once/assign-many split of the paper's Theorem 1, deployed as the
// serve-while-refitting shape the ROADMAP's "millions of users" north star
// asks for.
//
// Production plumbing, end to end: per-request timeouts via context
// propagation into every library call, bounded per-tenant ingestion queues
// with explicit 429 backpressure, graceful shutdown that drains in-flight
// requests and queued ingestion, structured request logging (log/slog),
// and a Prometheus-text /metrics endpoint exporting request/response
// conservation counters, serving histograms (assign latency, batch sizes),
// swap counts, queue depths, and each tenant's model counters
// (iterations, objective, pruning) read live at scrape time.
//
//	POST   /v1/tenants              create a tenant (TenantSpec)
//	GET    /v1/tenants              list tenants
//	GET    /v1/tenants/{id}         tenant info
//	DELETE /v1/tenants/{id}         delete (ingester drains in background)
//	POST   /v1/tenants/{id}/observe enqueue objects for streaming ingestion (202; 429 = queue full)
//	POST   /v1/tenants/{id}/fit     synchronous batch fit + hot swap
//	POST   /v1/tenants/{id}/snapshot freeze stream centroids + hot swap
//	POST   /v1/tenants/{id}/refresh  background FitFrom refit (202) or stream re-begin (mode=stream)
//	POST   /v1/tenants/{id}/assign  serve objects against the frozen model
//	GET    /v1/tenants/{id}/model   download the UCPM model payload
//	PUT    /v1/tenants/{id}/model   upload a UCPM payload + hot swap
//	GET    /v1/tenants/{id}/stats   export UCWS statistics (stream tenants)
//	POST   /v1/tenants/{id}/stats   import remote UCWS statistics (sharded tenants)
//	GET    /v1/tenants/{id}/limits  admission state: mode, buckets, cost estimates
//	PUT    /v1/tenants/{id}/limits  switch admission mode / set manual rate+burst
//	GET    /metrics                 Prometheus text exposition
//	GET    /healthz                 liveness
//
// Admission control (admission.go) sits in front of the assign and observe
// handlers: per-tenant token buckets sized from a measured-cost EWMA against
// the daemon's latency budget shed excess load as 429/413 — never 5xx —
// with Retry-After derived from the bucket refill deficit and queue depth.
package serve

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"ucpc/internal/persist"
)

// Config is the daemon configuration; the zero value is production-safe
// defaults throughout.
type Config struct {
	// RequestTimeout bounds each request's context (0 = 30s). Long batch
	// fits that exceed it fail with 503 rather than holding a connection.
	RequestTimeout time.Duration
	// FitTimeout bounds background FitFrom refreshes (0 = 5m).
	FitTimeout time.Duration
	// QueueChunks is the default per-tenant ingestion-queue capacity,
	// counted in observe payloads (0 = 64). A full queue answers 429.
	QueueChunks int
	// MaxBodyBytes caps request bodies (0 = 32 MiB).
	MaxBodyBytes int64
	// Logger receives structured request and lifecycle logs (nil = text
	// logs to io.Discard; cmd/ucpcd wires a JSON handler on stderr).
	Logger *slog.Logger

	// StateDir enables crash-safe tenant persistence: every tenant's spec,
	// serving model (UCPM), engine checkpoint, and exported statistics
	// (UCWS) are written atomically under this directory (internal/persist)
	// on a timer, on every hot swap, and on graceful shutdown, and replayed
	// on boot — corrupt or torn snapshots are quarantined, never fatal.
	// Empty disables persistence.
	StateDir string
	// SnapshotInterval is the persistence timer period (0 = 30s). Only
	// meaningful with StateDir.
	SnapshotInterval time.Duration
	// PushTo enables the federation push loop: the base URL of a
	// coordinator daemon (e.g. "http://coordinator:8080"); every stream
	// tenant's UCWS statistics are pushed to the coordinator's matching
	// tenant id under the PushSource key. Empty disables pushing.
	PushTo string
	// PushInterval is the steady-state push period (0 = 5s). On failure
	// the loop backs off exponentially with full jitter, capped at 16×
	// this interval.
	PushInterval time.Duration
	// PushTimeout bounds each push request's context (0 = 5s).
	PushTimeout time.Duration
	// PushSource is the stable source key pushes are filed under on the
	// coordinator — each push *replaces* the previous one from the same
	// source, so cumulative statistics are never double-counted (0 = the
	// host name, or "edge" if that fails).
	PushSource string

	// Admission starts every tenant in auto admission mode (cost-model
	// sized token buckets on assign and observe) unless its spec says
	// otherwise. False leaves admission off by default; individual tenants
	// can still opt in with "admission": "on" or a limits PUT.
	Admission bool
	// P99Budget is the per-request latency budget admission defends
	// (0 = 250ms): auto mode sizes each bucket so an admitted batch can
	// finish within it at the measured per-object cost.
	P99Budget time.Duration

	// clock overrides time.Now for deterministic admission tests.
	clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.FitTimeout == 0 {
		c.FitTimeout = 5 * time.Minute
	}
	if c.QueueChunks == 0 {
		c.QueueChunks = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.PushInterval == 0 {
		c.PushInterval = 5 * time.Second
	}
	if c.PushTimeout == 0 {
		c.PushTimeout = 5 * time.Second
	}
	if c.PushSource == "" {
		if host, err := os.Hostname(); err == nil && host != "" {
			c.PushSource = host
		} else {
			c.PushSource = "edge"
		}
	}
	if c.P99Budget == 0 {
		c.P99Budget = 250 * time.Millisecond
	}
	if c.clock == nil {
		c.clock = time.Now
	}
	return c
}

// admissionDefaults resolves the server-level admission configuration
// handed to every newTenant call.
func (s *Server) admissionDefaults() admissionDefaults {
	return admissionDefaults{enabled: s.cfg.Admission, budget: s.cfg.P99Budget, now: s.cfg.clock}
}

// Server is the daemon: registry + handlers + metrics behind one
// http.Handler, plus lifecycle management (Serve, Shutdown) and, when
// configured, the durability layer (snapshot loop over a persist.Store)
// and the federation push loops.
type Server struct {
	cfg     Config
	logger  *slog.Logger
	reg     *registry
	metrics *metrics
	handler http.Handler
	http    *http.Server

	// store is the crash-safe snapshot store (nil when StateDir is empty).
	store *persist.Store
	// pushClient runs the federation pushes (per-request contexts carry
	// the timeout).
	pushClient *http.Client

	// Background-loop lifecycle: the snapshot loop and every push loop
	// select on stopLoops and register on loopWG, so Shutdown (and the
	// crash-simulation Abort) can stop them and wait for in-flight work.
	stopLoops chan struct{}
	stopOnce  sync.Once
	loopWG    sync.WaitGroup
	// kick wakes the snapshot loop early after a hot swap (capacity 1; a
	// pending kick coalesces installs).
	kick chan struct{}

	// degraded holds the healthz degraded-state reasons: quarantines from
	// boot-time restore (permanent until restart) and the most recent
	// persist failure (cleared by the next clean snapshot pass).
	degradedMu     sync.Mutex
	bootDegraded   []string
	persistFailure string
}

// New builds a Server from cfg. With a StateDir it opens the snapshot
// store, replays every recoverable tenant (quarantining corrupt snapshots
// and recording them in the healthz degraded state instead of failing
// boot), and starts the snapshot timer; an unusable state directory is the
// only fatal condition.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		logger:     cfg.Logger,
		reg:        newRegistry(),
		metrics:    newMetrics(),
		pushClient: &http.Client{},
		stopLoops:  make(chan struct{}),
		kick:       make(chan struct{}, 1),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/tenants", s.handleCreateTenant)
	mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	mux.HandleFunc("GET /v1/tenants/{id}", s.handleGetTenant)
	mux.HandleFunc("DELETE /v1/tenants/{id}", s.handleDeleteTenant)
	mux.HandleFunc("POST /v1/tenants/{id}/observe", s.handleObserve)
	mux.HandleFunc("POST /v1/tenants/{id}/fit", s.handleFit)
	mux.HandleFunc("POST /v1/tenants/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/tenants/{id}/refresh", s.handleRefresh)
	mux.HandleFunc("POST /v1/tenants/{id}/assign", s.handleAssign)
	mux.HandleFunc("GET /v1/tenants/{id}/model", s.handleGetModel)
	mux.HandleFunc("PUT /v1/tenants/{id}/model", s.handlePutModel)
	mux.HandleFunc("GET /v1/tenants/{id}/stats", s.handleGetStats)
	mux.HandleFunc("POST /v1/tenants/{id}/stats", s.handlePostStats)
	mux.HandleFunc("GET /v1/tenants/{id}/limits", s.handleGetLimits)
	mux.HandleFunc("PUT /v1/tenants/{id}/limits", s.handlePutLimits)
	s.handler = s.instrument(mux)
	s.http = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if cfg.StateDir != "" {
		store, err := persist.Open(cfg.StateDir)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.store = store
		s.restore()
		s.loopWG.Add(1)
		go s.snapshotLoop()
	}
	return s, nil
}

// handleHealthz: GET /healthz — 200 "ok" when fully healthy, 503
// "degraded: …" when boot-time restore quarantined snapshots or the latest
// persistence pass failed (serving itself keeps running either way).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	s.degradedMu.Lock()
	reasons := append([]string(nil), s.bootDegraded...)
	if s.persistFailure != "" {
		reasons = append(reasons, s.persistFailure)
	}
	s.degradedMu.Unlock()
	if len(reasons) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded: %s\n", strings.Join(reasons, "; "))
		return
	}
	fmt.Fprintln(w, "ok")
}

// addBootDegraded records a permanent (until restart) degraded reason.
func (s *Server) addBootDegraded(reason string) {
	s.degradedMu.Lock()
	s.bootDegraded = append(s.bootDegraded, reason)
	s.degradedMu.Unlock()
}

// setPersistFailure records (or, with "", clears) the transient persist
// degraded reason.
func (s *Server) setPersistFailure(reason string) {
	s.degradedMu.Lock()
	s.persistFailure = reason
	s.degradedMu.Unlock()
}

// pokeSnapshot wakes the snapshot loop (non-blocking; a pending wake-up
// coalesces). Called after every model install so hot swaps hit disk
// promptly instead of waiting out the timer.
func (s *Server) pokeSnapshot() {
	if s.store == nil {
		return
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// snapshotLoop persists dirty tenants every SnapshotInterval, and early
// whenever pokeSnapshot signals a hot swap.
func (s *Server) snapshotLoop() {
	defer s.loopWG.Done()
	ticker := time.NewTicker(s.cfg.SnapshotInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopLoops:
			return
		case <-ticker.C:
		case <-s.kick:
		}
		s.persistAll()
	}
}

// Handler returns the fully instrumented handler — the surface tests mount
// on httptest.Server.
func (s *Server) Handler() http.Handler { return s.handler }

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps the mux with the shared middleware: the per-request
// timeout context, the status capture feeding the request/response
// conservation counters, and one structured log line per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.metrics.finish(sw.status)
		s.logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

// handleMetrics: GET /metrics — daemon-wide counters and histograms, then
// the per-tenant series read live from the registry (queue depth gauges,
// swap counts, and the installed model's iteration/objective/pruning
// counters from its Report).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w)
	tenants := s.reg.list()
	fmt.Fprintf(w, "# TYPE ucpcd_tenants gauge\nucpcd_tenants %d\n", len(tenants))
	var breakersOpen int
	for _, t := range tenants {
		if t.breakerOpen.Load() {
			breakersOpen++
		}
	}
	fmt.Fprintf(w, "# TYPE ucpcd_push_breaker_open gauge\nucpcd_push_breaker_open %d\n", breakersOpen)
	if s.store != nil {
		// snapshot_age_seconds is the staleness of the *oldest* persisted
		// tenant — the daemon-wide recovery-point objective.
		age := 0.0
		for _, t := range tenants {
			last := t.lastSaveNano.Load()
			if last == 0 {
				continue
			}
			if a := time.Since(time.Unix(0, last)).Seconds(); a > age {
				age = a
			}
		}
		fmt.Fprintf(w, "# TYPE ucpcd_snapshot_age_seconds gauge\nucpcd_snapshot_age_seconds %s\n", formatFloat(age))
	}
	if len(tenants) == 0 {
		return
	}
	var depth int64
	for _, t := range tenants {
		depth += t.queued.Load()
	}
	fmt.Fprintf(w, "# TYPE ucpcd_queue_depth_objects gauge\nucpcd_queue_depth_objects %d\n", depth)
	writeSeries := func(name, typ string, value func(t *tenant) (string, bool)) {
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		for _, t := range tenants {
			if v, ok := value(t); ok {
				fmt.Fprintf(w, "%s{tenant=%q} %s\n", name, t.id, v)
			}
		}
	}
	writeSeries("ucpcd_tenant_queue_depth_objects", "gauge", func(t *tenant) (string, bool) {
		return fmt.Sprint(t.queued.Load()), true
	})
	writeSeries("ucpcd_tenant_ingested_objects_total", "counter", func(t *tenant) (string, bool) {
		return fmt.Sprint(t.ingested.Load()), true
	})
	writeSeries("ucpcd_tenant_swaps_total", "counter", func(t *tenant) (string, bool) {
		return fmt.Sprint(t.swaps.Load()), true
	})
	writeSeries("ucpcd_tenant_model_version", "gauge", func(t *tenant) (string, bool) {
		return fmt.Sprint(t.version.Load()), true
	})
	writeSeries("ucpcd_tenant_stream_seen_objects", "gauge", func(t *tenant) (string, bool) {
		return fmt.Sprint(t.snapshotFit().Seen()), true
	})
	if s.cfg.PushTo != "" {
		writeSeries("ucpcd_tenant_push_success_total", "counter", func(t *tenant) (string, bool) {
			return fmt.Sprint(t.pushSuccess.Load()), true
		})
		writeSeries("ucpcd_tenant_push_failures_total", "counter", func(t *tenant) (string, bool) {
			return fmt.Sprint(t.pushFailures.Load()), true
		})
		writeSeries("ucpcd_tenant_push_breaker_open", "gauge", func(t *tenant) (string, bool) {
			if t.breakerOpen.Load() {
				return "1", true
			}
			return "0", true
		})
		writeSeries("ucpcd_tenant_last_push_seen_objects", "gauge", func(t *tenant) (string, bool) {
			return fmt.Sprint(t.lastPushSeen.Load()), true
		})
	}
	if s.store != nil {
		writeSeries("ucpcd_tenant_persisted_seen_objects", "gauge", func(t *tenant) (string, bool) {
			return fmt.Sprint(t.persistedSeen.Load()), true
		})
	}
	writeSeries("ucpcd_tenant_model_iterations", "gauge", func(t *tenant) (string, bool) {
		m := t.model.Load()
		if m == nil {
			return "", false
		}
		return fmt.Sprint(m.Report().Iterations), true
	})
	writeSeries("ucpcd_tenant_model_objective", "gauge", func(t *tenant) (string, bool) {
		m := t.model.Load()
		if m == nil {
			return "", false
		}
		return formatFloat(m.Report().Objective), true
	})
	writeSeries("ucpcd_tenant_model_pruned_candidates_total", "counter", func(t *tenant) (string, bool) {
		m := t.model.Load()
		if m == nil {
			return "", false
		}
		return fmt.Sprint(m.Report().PrunedCandidates), true
	})
	writeSeries("ucpcd_tenant_model_scanned_candidates_total", "counter", func(t *tenant) (string, bool) {
		m := t.model.Load()
		if m == nil {
			return "", false
		}
		return fmt.Sprint(m.Report().ScannedCandidates), true
	})
	// Admission series carry a route label, so they use their own writer
	// instead of writeSeries.
	writeAdmSeries := func(name, typ string, value func(ra *routeAdmission, now time.Time) (string, bool)) {
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		for _, t := range tenants {
			now := t.adm.now()
			for r, route := range routeNames {
				if v, ok := value(&t.adm.routes[r], now); ok {
					fmt.Fprintf(w, "%s{tenant=%q,route=%q} %s\n", name, t.id, route, v)
				}
			}
		}
	}
	writeAdmSeries("ucpcd_tenant_admission_attempts_total", "counter", func(ra *routeAdmission, _ time.Time) (string, bool) {
		return fmt.Sprint(ra.attempts.Load()), true
	})
	writeAdmSeries("ucpcd_tenant_admitted_total", "counter", func(ra *routeAdmission, _ time.Time) (string, bool) {
		return fmt.Sprint(ra.admitted.Load()), true
	})
	writeAdmSeries("ucpcd_tenant_cost_ns_per_object", "gauge", func(ra *routeAdmission, _ time.Time) (string, bool) {
		est, ok := ra.cost.estimate()
		if !ok {
			return "", false
		}
		return formatFloat(est), true
	})
	writeAdmSeries("ucpcd_tenant_bucket_tokens", "gauge", func(ra *routeAdmission, now time.Time) (string, bool) {
		tokens, _, _ := ra.bucket.level(now)
		return formatFloat(tokens), true
	})
	writeAdmSeries("ucpcd_tenant_bucket_rate_objects_per_sec", "gauge", func(ra *routeAdmission, now time.Time) (string, bool) {
		_, rate, _ := ra.bucket.level(now)
		return formatFloat(rate), true
	})
	writeAdmSeries("ucpcd_tenant_bucket_burst_objects", "gauge", func(ra *routeAdmission, now time.Time) (string, bool) {
		_, _, burst := ra.bucket.level(now)
		return formatFloat(burst), true
	})
	fmt.Fprintf(w, "# TYPE ucpcd_tenant_shed_total counter\n")
	for _, t := range tenants {
		for r, route := range routeNames {
			ra := &t.adm.routes[r]
			fmt.Fprintf(w, "ucpcd_tenant_shed_total{tenant=%q,route=%q,code=\"429\"} %d\n", t.id, route, ra.shed429c.Load())
			fmt.Fprintf(w, "ucpcd_tenant_shed_total{tenant=%q,route=%q,code=\"413\"} %d\n", t.id, route, ra.shed413c.Load())
		}
	}
}

// Serve accepts connections on l until Shutdown. It returns the
// http.Server error (http.ErrServerClosed after a clean Shutdown is
// swallowed — a clean exit returns nil).
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the daemon gracefully: stop accepting, wait for in-flight
// requests (http.Server.Shutdown), close every tenant's ingestion queue and
// wait for the ingesters to fold what was already accepted, stop the
// background loops, and only then — after the drain, so no trailing observe
// is lost between drain and persist — take the final snapshot of every
// tenant. ctx bounds the whole drain.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.http.Shutdown(ctx); err != nil {
		return err
	}
	if err := s.reg.closeAll(ctx); err != nil {
		return err
	}
	s.stopOnce.Do(func() { close(s.stopLoops) })
	s.loopWG.Wait()
	if s.store != nil {
		if err := s.persistAll(); err != nil {
			return err
		}
	}
	return nil
}

// Abort simulates a crash for fault-injection tests: background loops stop
// without a final snapshot, the listener is torn down without draining, and
// ingestion queues close so goroutines exit — but nothing in memory reaches
// disk, exactly like a kill -9. After Abort returns, no goroutine of this
// server touches the state directory again, so a replacement Server may
// safely reopen it.
func (s *Server) Abort() {
	s.stopOnce.Do(func() { close(s.stopLoops) })
	s.loopWG.Wait()
	_ = s.http.Close()
	for _, t := range s.reg.list() {
		t.closeQueue()
	}
}
