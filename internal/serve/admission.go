package serve

// Cost-model admission control: the daemon defends its serving latency
// budget the way an inference server defends SLOs — by refusing work it
// cannot finish in time, explicitly and cheaply, instead of letting
// overload turn into latency collapse and 5xx.
//
// Three pieces, all per tenant and per route (assign, observe):
//
//   - A cost model: an EWMA over the measured per-object serving cost
//     (handler wall time / objects for assign, ingester Observe wall time /
//     objects for observe). The estimate is re-weighted whenever a model
//     install changes the per-object EED work — the pruning engine's
//     Report.ScannedCandidates/PrunedCandidates counters meter exactly the
//     candidate evaluations Gullo & Tagarelli's assignment performs, so the
//     scan fraction × k is a work proxy that moves the estimate *before*
//     the first slow request is observed.
//
//   - A token bucket denominated in objects. In auto mode it is sized from
//     the cost estimate against the daemon's latency budget: refill rate =
//     utilization × (1e9 / cost ns) objects/sec (the sustained throughput
//     the box can carry with headroom), burst = budget / cost (the largest
//     batch that can finish inside the p99 budget at all). Manual limits
//     set via PUT /v1/tenants/{id}/limits freeze rate and burst directly.
//
//   - Degraded-mode responses that never become 5xx: a batch larger than
//     the burst can never finish in budget and is rejected 413 up front; a
//     batch the bucket cannot cover right now is shed 429 with Retry-After
//     derived from the bucket's refill deficit plus the ingestion queue
//     depth priced at the current cost estimate.
//
// Every admission decision increments exactly one of admitted / shed —
// attempts == admitted + shed429 + shed413 per route is the admission
// conservation law, gated alongside the existing requests == Σ responses
// law. The clock is injected (newAdmission's now func) so refill and shed
// decisions are table-testable without sleeps.

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ucpc"
)

// route indexes the two admission-controlled request paths.
type route int

const (
	routeAssign route = iota
	routeObserve
	routeCount
)

var routeNames = [routeCount]string{"assign", "observe"}

// admission modes. Off admits everything (counted, never shed); auto sizes
// the buckets from the cost model; manual uses operator-set rate/burst.
const (
	modeOff int32 = iota
	modeAuto
	modeManual
)

var modeNames = map[int32]string{modeOff: "off", modeAuto: "auto", modeManual: "manual"}

// admissionUtilization is the fraction of the measured serving capacity
// auto mode admits. The headroom absorbs what the uncontended cost samples
// cannot see — connection handling, response writes, co-located clients —
// and the queueing that builds even below saturation.
const admissionUtilization = 0.6

// verdicts of one admission decision.
type verdict int

const (
	admitOK verdict = iota
	shed429
	shed413
)

// decision is the outcome of admission.admit for one request.
type decision struct {
	verdict verdict
	// retryAfter accompanies shed429: the time until the bucket can cover
	// the batch, plus the queue drain time on the observe path.
	retryAfter time.Duration
	// maxBatch accompanies shed413: the largest admissible batch.
	maxBatch int
	// conc is the number of in-flight requests including this one at the
	// moment of an admitted assign (>= 1). The handler feeds the cost model
	// only from conc == 1 samples — a request admitted into an empty
	// pipeline measures true service time, while a contended sample folds
	// co-runners' queueing into the estimate and destabilizes the bucket
	// (overstated cost collapses capacity; corrections that divide by
	// concurrency overshoot the other way and over-admit).
	conc int64
}

// costModel tracks the EWMA ns/object estimate for one route, the exact
// running totals the accuracy gate compares it against, and the
// scanned-candidate work weight of the currently installed model.
type costModel struct {
	mu      sync.Mutex
	alpha   float64 // EWMA smoothing (0 = costAlpha default)
	ewma    float64 // ns per object; 0 until the first sample
	samples int64
	totalNs float64 // Σ observed nanoseconds, for measured()
	totalN  int64   // Σ observed objects
	weight  float64 // scan-fraction × k of the installed model (0 = unknown)
}

const costAlpha = 0.2

// observe folds one measured (objects, duration) sample into the EWMA.
func (c *costModel) observe(objects int, d time.Duration) {
	if objects <= 0 || d <= 0 {
		return
	}
	perObj := float64(d.Nanoseconds()) / float64(objects)
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.alpha
	if a == 0 {
		a = costAlpha
	}
	if c.samples == 0 {
		c.ewma = perObj
	} else {
		c.ewma += a * (perObj - c.ewma)
	}
	c.samples++
	c.totalNs += float64(d.Nanoseconds())
	c.totalN += int64(objects)
}

// estimate returns the EWMA ns/object; ok is false until a sample lands.
func (c *costModel) estimate() (nsPerObj float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ewma, c.samples > 0
}

// measured returns the exact mean ns/object over every sample — the
// reference the cost-model accuracy gates hold the EWMA to.
func (c *costModel) measured() (nsPerObj float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.totalN == 0 {
		return 0, false
	}
	return c.totalNs / float64(c.totalN), true
}

// snapshot returns (ewma, samples, totalNs, totalObjects) in one lock hold
// for the limits surface.
func (c *costModel) stats() (ewma float64, samples int64, totalNs float64, totalN int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ewma, c.samples, c.totalNs, c.totalN
}

// reweigh records the installed model's scanned-candidate work weight
// (scan fraction × k) and pre-scales the EWMA by the weight ratio, clamped
// to [1/4, 4] — a model that scans twice the candidates per object costs
// about twice as much to serve, and admission should know before the first
// request against it is measured.
func (c *costModel) reweigh(weight float64) {
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.weight > 0 && c.samples > 0 {
		scale := weight / c.weight
		if scale < 0.25 {
			scale = 0.25
		}
		if scale > 4 {
			scale = 4
		}
		c.ewma *= scale
	}
	c.weight = weight
}

// tokenBucket is a monotonic-clock token bucket denominated in objects.
// The caller supplies now so tests drive it with a fake clock.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	rate   float64 // objects per second
	burst  float64 // token cap; also the largest admissible batch
	last   time.Time
}

// refillLocked advances the bucket to now at the current rate.
func (b *tokenBucket) refillLocked(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		b.tokens = b.burst
		return
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		b.last = now
	}
}

// resize updates rate and burst (refilling first at the old rate so no
// accrued tokens are lost or invented), clamping tokens to the new burst. A
// bucket that has never been touched starts full at the new burst — the
// refill path must not initialize it against the stale zero burst.
func (b *tokenBucket) resize(now time.Time, rate, burst float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
		b.rate, b.burst = rate, burst
		b.tokens = burst
		return
	}
	b.refillLocked(now)
	b.rate, b.burst = rate, burst
	if b.tokens > burst {
		b.tokens = burst
	}
}

// take refills to now and tries to consume n tokens. On refusal nothing is
// consumed and wait is the refill time until n tokens are available.
func (b *tokenBucket) take(now time.Time, n float64) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	if b.rate <= 0 {
		return false, time.Hour
	}
	deficit := n - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// level reports (tokens-as-of-now, rate, burst) for the gauges.
func (b *tokenBucket) level(now time.Time) (tokens, rate, burst float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	return b.tokens, b.rate, b.burst
}

// routeAdmission is one route's admission state: its cost model, its
// bucket, and the conservation counters.
type routeAdmission struct {
	cost   costModel
	bucket tokenBucket

	// inflightObjects/inflightReqs track admitted work that has not finished
	// serving yet (assign route only). A rate bucket alone cannot bound
	// latency: a bursty client can stack budget-multiples of admitted work
	// into a standing queue, so admission also refuses to let the in-flight
	// backlog exceed a fraction of the budget-worth of objects.
	inflightObjects atomic.Int64
	inflightReqs    atomic.Int64

	attempts atomic.Int64
	admitted atomic.Int64
	shed429c atomic.Int64
	shed413c atomic.Int64
}

// admission is one tenant's admission-control state.
type admission struct {
	// now is the injected clock (time.Now in production).
	now func() time.Time
	// budget is the daemon-wide serving latency budget auto mode defends.
	budget time.Duration
	// m receives the daemon-wide admitted/shed counters (nil in unit tests
	// that exercise the admission core alone).
	m *metrics

	mu     sync.Mutex
	mode   int32
	routes [routeCount]routeAdmission
}

// newAdmission builds the tenant admission state. mode is modeOff, modeAuto
// or modeManual; budget 0 falls back to the package default used by
// Config.withDefaults.
func newAdmission(mode int32, budget time.Duration, m *metrics, now func() time.Time) *admission {
	if now == nil {
		now = time.Now
	}
	if budget <= 0 {
		budget = 250 * time.Millisecond
	}
	return &admission{now: now, budget: budget, m: m, mode: mode}
}

func (a *admission) currentMode() int32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mode
}

// maxBatchFor is the largest batch that can finish within the latency
// budget at the given per-object cost.
func (a *admission) maxBatchFor(costNs float64) float64 {
	mb := float64(a.budget.Nanoseconds()) / costNs
	if mb < 1 {
		mb = 1
	}
	return mb
}

// admit decides one request of n objects on route r. queued is the current
// ingestion queue depth in objects (0 on the assign path); it prices the
// Retry-After of observe sheds. Exactly one of admitted / shed429 / shed413
// is incremented — the admission conservation law.
func (a *admission) admit(r route, n int, queued int64) decision {
	ra := &a.routes[r]
	ra.attempts.Add(1)
	if a.m != nil {
		a.m.admAttempts[r].Add(1)
	}
	ok := func() decision {
		ra.admitted.Add(1)
		if a.m != nil {
			a.m.admAdmitted[r].Add(1)
		}
		d := decision{verdict: admitOK, conc: 1}
		if r == routeAssign {
			// Enter the in-flight accounting; the handler MUST pair every
			// admitted assign with exit(), on success and failure alike.
			ra.inflightObjects.Add(int64(n))
			d.conc = ra.inflightReqs.Add(1)
		}
		return d
	}
	reject429 := func(wait time.Duration, est float64) decision {
		ra.shed429c.Add(1)
		if a.m != nil {
			a.m.admShed429[r].Add(1)
		}
		if queued > 0 && est > 0 {
			wait += time.Duration(float64(queued) * est)
		}
		return decision{verdict: shed429, retryAfter: wait}
	}
	reject413 := func(maxBatch float64) decision {
		ra.shed413c.Add(1)
		if a.m != nil {
			a.m.admShed413[r].Add(1)
		}
		return decision{verdict: shed413, maxBatch: int(maxBatch)}
	}

	a.mu.Lock()
	mode := a.mode
	a.mu.Unlock()
	switch mode {
	case modeOff:
		return ok()
	case modeManual:
		now := a.now()
		_, rate, burst := ra.bucket.level(now)
		if rate <= 0 {
			return ok() // unlimited route
		}
		if float64(n) > burst {
			return reject413(burst)
		}
		est, _ := a.routes[r].cost.estimate()
		if dec, shed := a.inflightGate(r, n, burst, est, reject429); shed {
			return dec
		}
		if taken, wait := ra.bucket.take(now, float64(n)); !taken {
			return reject429(wait, est)
		}
		return ok()
	default: // modeAuto
		est, known := ra.cost.estimate()
		if !known || est <= 0 {
			return ok() // cold: nothing to size from yet
		}
		maxBatch := a.maxBatchFor(est)
		if float64(n) > maxBatch {
			return reject413(maxBatch)
		}
		// The standing-queue bound: at most a quarter budget-worth of
		// admitted objects outstanding, so the drain time of everything in
		// flight — the latency the newest admitted request inherits — stays
		// inside the budget even when the client bursts and contention
		// stretches real service times past the uncontended estimate.
		if dec, shed := a.inflightGate(r, n, maxBatch/4, est, reject429); shed {
			return dec
		}
		now := a.now()
		ra.bucket.resize(now, admissionUtilization*float64(time.Second)/est, maxBatch)
		if taken, wait := ra.bucket.take(now, float64(n)); !taken {
			return reject429(wait, est)
		}
		return ok()
	}
}

// inflightGate refuses an assign whose admission would push the in-flight
// backlog past capObjects (a lone request is always allowed through so a
// full-burst batch with an empty pipeline stays admissible). The wait is
// the drain time of the current backlog at the cost estimate.
func (a *admission) inflightGate(r route, n int, capObjects, est float64,
	reject429 func(time.Duration, float64) decision) (decision, bool) {
	if r != routeAssign {
		return decision{}, false
	}
	in := a.routes[r].inflightObjects.Load()
	if in > 0 && float64(in)+float64(n) > capObjects {
		return reject429(time.Duration(float64(in)*est), est), true
	}
	return decision{}, false
}

// exit releases one admitted assign from the in-flight accounting. Every
// admitOK decision on the assign route must be paired with exactly one exit
// once the request finishes, whatever its outcome.
func (a *admission) exit(r route, n int) {
	if r != routeAssign {
		return
	}
	a.routes[r].inflightObjects.Add(int64(-n))
	a.routes[r].inflightReqs.Add(-1)
}

// observeCost feeds one measured serving sample into route r's cost model.
func (a *admission) observeCost(r route, objects int, d time.Duration) {
	a.routes[r].cost.observe(objects, d)
}

// onInstall re-weights the assign cost model from the installed model's
// pruning counters: scan fraction × k meters the EED evaluations one object
// costs on the serving path.
func (a *admission) onInstall(rep *ucpc.Report, k int) {
	if rep == nil || k <= 0 {
		return
	}
	total := rep.PrunedCandidates + rep.ScannedCandidates
	if total <= 0 {
		return
	}
	weight := float64(rep.ScannedCandidates) / float64(total) * float64(k)
	a.routes[routeAssign].cost.reweigh(weight)
}

// queueRetryAfter prices a queue-full 429 on the observe path: the queued
// objects at the current ingest cost estimate (1s when the model is cold).
func (a *admission) queueRetryAfter(queued int64) time.Duration {
	est, ok := a.routes[routeObserve].cost.estimate()
	if !ok || est <= 0 || queued <= 0 {
		return time.Second
	}
	return time.Duration(float64(queued) * est)
}

// retryAfterSeconds renders a Retry-After value: integral seconds, at least
// 1, capped at an hour.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	if s > 3600 {
		s = 3600
	}
	return s
}

// routeLimits is the per-route half of the limits surface.
type routeLimits struct {
	RateObjectsPerSec float64 `json:"rate_objects_per_sec"`
	BurstObjects      float64 `json:"burst_objects"`
	Tokens            float64 `json:"tokens"`
	MaxBatchObjects   int     `json:"max_batch_objects"`

	CostNsPerObject     float64 `json:"cost_ns_per_object"`
	MeasuredNsPerObject float64 `json:"measured_ns_per_object"`
	CostSamples         int64   `json:"cost_samples"`
	CostTotalNs         float64 `json:"cost_total_ns"`
	CostTotalObjects    int64   `json:"cost_total_objects"`

	AttemptsTotal int64 `json:"attempts_total"`
	AdmittedTotal int64 `json:"admitted_total"`
	Shed429Total  int64 `json:"shed_429_total"`
	Shed413Total  int64 `json:"shed_413_total"`
}

// limitsInfo is the JSON shape of GET/PUT /v1/tenants/{id}/limits.
type limitsInfo struct {
	Tenant      string      `json:"tenant"`
	Mode        string      `json:"mode"`
	P99BudgetMs float64     `json:"p99_budget_ms"`
	Assign      routeLimits `json:"assign"`
	Observe     routeLimits `json:"observe"`
}

// limits renders the current admission state.
func (a *admission) limits(tenantID string) limitsInfo {
	info := limitsInfo{
		Tenant:      tenantID,
		Mode:        modeNames[a.currentMode()],
		P99BudgetMs: float64(a.budget.Nanoseconds()) / 1e6,
	}
	now := a.now()
	fill := func(r route) routeLimits {
		ra := &a.routes[r]
		tokens, rate, burst := ra.bucket.level(now)
		ewma, samples, totalNs, totalN := ra.cost.stats()
		rl := routeLimits{
			RateObjectsPerSec: rate,
			BurstObjects:      burst,
			Tokens:            tokens,
			MaxBatchObjects:   int(burst),
			CostNsPerObject:   ewma,
			CostSamples:       samples,
			CostTotalNs:       totalNs,
			CostTotalObjects:  totalN,
			AttemptsTotal:     ra.attempts.Load(),
			AdmittedTotal:     ra.admitted.Load(),
			Shed429Total:      ra.shed429c.Load(),
			Shed413Total:      ra.shed413c.Load(),
		}
		if totalN > 0 {
			rl.MeasuredNsPerObject = totalNs / float64(totalN)
		}
		// In auto mode the bucket lags the estimate by one admit; report the
		// sizing the next request will see so GET reflects the cost model.
		if a.currentMode() == modeAuto && samples > 0 && ewma > 0 {
			rl.RateObjectsPerSec = admissionUtilization * float64(time.Second) / ewma
			mb := a.maxBatchFor(ewma)
			rl.BurstObjects = mb
			rl.MaxBatchObjects = int(mb)
		}
		return rl
	}
	info.Assign = fill(routeAssign)
	info.Observe = fill(routeObserve)
	return info
}

// limitsRequest is the JSON body of PUT /v1/tenants/{id}/limits.
type limitsRequest struct {
	Mode                     string  `json:"mode"`
	AssignRateObjectsPerSec  float64 `json:"assign_rate_objects_per_sec,omitempty"`
	AssignBurstObjects       float64 `json:"assign_burst_objects,omitempty"`
	ObserveRateObjectsPerSec float64 `json:"observe_rate_objects_per_sec,omitempty"`
	ObserveBurstObjects      float64 `json:"observe_burst_objects,omitempty"`
}

// applyLimits validates and applies one PUT body. Manual rates of 0 leave
// that route unlimited; a manual burst of 0 defaults to one second of rate.
func (a *admission) applyLimits(req limitsRequest) error {
	var mode int32
	switch req.Mode {
	case "auto":
		mode = modeAuto
	case "off":
		mode = modeOff
	case "manual":
		mode = modeManual
	default:
		return fmt.Errorf("serve: unknown admission mode %q (valid: auto, manual, off): %w",
			req.Mode, errBadRequest)
	}
	vals := []float64{
		req.AssignRateObjectsPerSec, req.AssignBurstObjects,
		req.ObserveRateObjectsPerSec, req.ObserveBurstObjects,
	}
	for _, v := range vals {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("serve: admission rates and bursts must be finite and non-negative: %w", errBadRequest)
		}
	}
	if mode != modeManual {
		for _, v := range vals {
			if v != 0 {
				return fmt.Errorf("serve: rate/burst overrides require mode \"manual\": %w", errBadRequest)
			}
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mode = mode
	if mode == modeManual {
		now := a.now()
		set := func(r route, rate, burst float64) {
			if rate > 0 && burst == 0 {
				burst = math.Max(rate, 1)
			}
			a.routes[r].bucket.resize(now, rate, burst)
		}
		set(routeAssign, req.AssignRateObjectsPerSec, req.AssignBurstObjects)
		set(routeObserve, req.ObserveRateObjectsPerSec, req.ObserveBurstObjects)
	}
	return nil
}

// handleGetLimits: GET /v1/tenants/{id}/limits — the admission control
// surface: mode, budget, per-route bucket sizing, cost estimates, and the
// conservation counters.
func (s *Server) handleGetLimits(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tenantOr404(w, r); ok {
		writeJSON(w, http.StatusOK, t.adm.limits(t.id))
	}
}

// handlePutLimits: PUT /v1/tenants/{id}/limits — switch admission mode
// (auto / manual / off) and, in manual mode, set per-route rate and burst
// directly. Responds with the resulting limits.
func (s *Server) handlePutLimits(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOr404(w, r)
	if !ok {
		return
	}
	var req limitsRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := t.adm.applyLimits(req); err != nil {
		writeErr(w, err)
		return
	}
	s.logger.Info("admission limits updated", "tenant", t.id, "mode", req.Mode)
	writeJSON(w, http.StatusOK, t.adm.limits(t.id))
}
