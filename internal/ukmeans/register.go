package ukmeans

import "ucpc/internal/clustering"

// The UK-means family self-registers with the shared algorithm registry.
// The sample-based variants keep their published configurations (metric,
// pruning strategy, cluster-shift) fixed; the shared Config only sizes
// MaxIter for them, while the fast UK-means also consumes Workers, the
// exact pruning engine toggle, and Progress.
func init() {
	clustering.Register(clustering.Registration{
		Name: "UKM", Rank: 40, Prototype: clustering.ProtoMean,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &UKMeans{MaxIter: cfg.MaxIter, Workers: cfg.Workers, Pruning: cfg.Pruning, Progress: cfg.Progress}
		},
	})
	clustering.Register(clustering.Registration{
		Name: "bUKM", Rank: 50, Prototype: clustering.ProtoMean,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &Basic{MaxIter: cfg.MaxIter, Progress: cfg.Progress}
		},
	})
	clustering.Register(clustering.Registration{
		Name: "MinMax-BB", Rank: 60, Prototype: clustering.ProtoMean,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &Basic{MaxIter: cfg.MaxIter, Prune: PruneMinMaxBB, ClusterShift: true, Progress: cfg.Progress}
		},
	})
	clustering.Register(clustering.Registration{
		Name: "VDBiP", Rank: 70, Prototype: clustering.ProtoMean,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &Basic{MaxIter: cfg.MaxIter, Prune: PruneVDBiP, ClusterShift: true, Progress: cfg.Progress}
		},
	})
}
