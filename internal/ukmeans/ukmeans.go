// Package ukmeans implements the UK-means family of algorithms for
// clustering uncertain objects (paper §2.2):
//
//   - UKMeans: the fast variant of Lee et al. [14] that reduces UK-means to
//     K-means via the expected-distance identity ED(o,c) = ED(o,µ(o)) +
//     ‖c−µ(o)‖² (eq. 8), with O(I·k·n·m) online complexity.
//   - Basic: the basic UK-means of Chau et al. [4] that approximates the
//     expected distance ED_d(o,c) by averaging a metric over a sample cloud
//     drawn from each object's pdf, with O(I·S·k·n·m) complexity.
//   - MinMaxBB and VDBiP: pruning wrappers around Basic that avoid
//     redundant expected-distance computations using MBR min/max-distance
//     bounds [16] and Voronoi bisector tests [11] respectively, both
//     tightened with the cluster-shift technique [17].
package ukmeans

import (
	"fmt"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// UKMeans is the fast UK-means of Lee et al. [14]. Because the expensive
// term ED(o, µ(o)) = σ²(o) is constant across candidate centroids, the
// online phase degenerates to Lloyd's K-means over the objects' expected
// values; the objective it minimizes is J_UK (paper eq. 9).
//
// The assignment step reads the flat Moments store and fans out over a
// worker pool through the exact pruning engine (core.Assigner): since
// ED(o,c) = σ²(o) + ‖µ(o) − c‖² and σ²(o) is constant across centroids,
// the argmin is a pure Euclidean nearest-center query, the best case for
// Hamerly-style bounds. Each object's decision is independent, so the
// partition for a given seed is identical for every worker count and for
// pruning on vs. off.
type UKMeans struct {
	// MaxIter caps Lloyd iterations (0 = default 100).
	MaxIter int
	// Workers sizes the assignment worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Pruning toggles the exact bound-based assignment pruning (default
	// on). Results are identical either way.
	Pruning clustering.PruneMode
}

// Name implements clustering.Algorithm.
func (u *UKMeans) Name() string { return "UKM" }

// Cluster runs the fast UK-means.
func (u *UKMeans) Cluster(ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	if err := validate(ds, k); err != nil {
		return nil, err
	}
	maxIter := u.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	workers := clustering.Workers(u.Workers)
	start := time.Now()

	n := len(ds)
	mom := uncertain.MomentsOf(ds)
	centers := initialCenters(ds, k, r)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	eng := core.NewAssigner(mom, k, u.Pruning.Enabled())
	iterations, converged := 0, false
	for iterations < maxIter {
		iterations++
		// argmin_c ED(o, c) = argmin_c σ²(o)+‖µ(o)−c‖² (eq. 8): a pure
		// nearest-center query (no additive terms), pruned exactly.
		eng.SetCenterVecs(centers, nil)
		if !eng.Assign(assign, workers) {
			converged = true
			break
		}
		// Centroid refresh (eq. 7) from the flat store, reusing the
		// centers allocation.
		clustering.MeansOfMoments(mom, assign, centers)
	}

	var objective float64
	for i := 0; i < n; i++ {
		objective += mom.ED(i, centers[assign[i]])
	}
	pruned, scanned := eng.Counters()
	return &clustering.Report{
		Partition:         clustering.Partition{K: k, Assign: assign},
		Objective:         objective,
		Iterations:        iterations,
		Converged:         converged,
		Online:            time.Since(start),
		PrunedCandidates:  pruned,
		ScannedCandidates: scanned,
	}, nil
}

// initialCenters seeds k centroid points from the expected values of
// k-means++-selected objects.
func initialCenters(ds uncertain.Dataset, k int, r *rng.RNG) []vec.Vector {
	idx := clustering.KMeansPPCenters(ds, k, r)
	centers := make([]vec.Vector, k)
	for c, i := range idx {
		centers[c] = vec.Clone(ds[i].Mean())
	}
	return centers
}

func validate(ds uncertain.Dataset, k int) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if k <= 0 || k > len(ds) {
		return fmt.Errorf("ukmeans: k=%d out of range for n=%d", k, len(ds))
	}
	return nil
}
