// Package ukmeans implements the UK-means family of algorithms for
// clustering uncertain objects (paper §2.2):
//
//   - UKMeans: the fast variant of Lee et al. [14] that reduces UK-means to
//     K-means via the expected-distance identity ED(o,c) = ED(o,µ(o)) +
//     ‖c−µ(o)‖² (eq. 8), with O(I·k·n·m) online complexity.
//   - Basic: the basic UK-means of Chau et al. [4] that approximates the
//     expected distance ED_d(o,c) by averaging a metric over a sample cloud
//     drawn from each object's pdf, with O(I·S·k·n·m) complexity.
//   - MinMaxBB and VDBiP: pruning wrappers around Basic that avoid
//     redundant expected-distance computations using MBR min/max-distance
//     bounds [16] and Voronoi bisector tests [11] respectively, both
//     tightened with the cluster-shift technique [17].
package ukmeans

import (
	"context"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// UKMeans is the fast UK-means of Lee et al. [14]. Because the expensive
// term ED(o, µ(o)) = σ²(o) is constant across candidate centroids, the
// online phase degenerates to Lloyd's K-means over the objects' expected
// values; the objective it minimizes is J_UK (paper eq. 9).
//
// The assignment step reads the flat Moments store and fans out over a
// worker pool through the exact pruning engine (core.Assigner): since
// ED(o,c) = σ²(o) + ‖µ(o) − c‖² and σ²(o) is constant across centroids,
// the argmin is a pure Euclidean nearest-center query, the best case for
// Hamerly-style bounds. Each object's decision is independent, so the
// partition for a given seed is identical for every worker count and for
// pruning on vs. off.
type UKMeans struct {
	// MaxIter caps Lloyd iterations (0 = default 100).
	MaxIter int
	// Workers sizes the assignment worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Pruning toggles the exact bound-based assignment pruning (default
	// on). Results are identical either way.
	Pruning clustering.PruneMode
	// Progress, when non-nil, observes every Lloyd round with the J_UK
	// objective and the number of objects that changed cluster; both are
	// computed only when the callback is set.
	Progress clustering.ProgressFunc
}

// Name implements clustering.Algorithm.
func (u *UKMeans) Name() string { return "UKM" }

// Cluster runs the fast UK-means.
func (u *UKMeans) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	return u.cluster(ctx, ds, k, nil, r)
}

// ClusterFrom implements clustering.WarmStarter: the first assignment step
// scores against the centroids (eq. 7) of the given partition instead of
// k-means++ seeds.
func (u *UKMeans) ClusterFrom(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	if err := clustering.ValidateInit("ukmeans", init, len(ds), k); err != nil {
		return nil, err
	}
	return u.cluster(ctx, ds, k, init, r)
}

func (u *UKMeans) cluster(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	ctx = clustering.Ctx(ctx)
	if err := validate(ds, k); err != nil {
		return nil, err
	}
	maxIter := u.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	workers := clustering.Workers(u.Workers)
	start := time.Now()

	n := len(ds)
	mom := uncertain.MomentsOf(ds)
	var centers []vec.Vector
	assign := make([]int, n)
	if init != nil {
		// Warm start: repair empty clusters first (the WarmStarter
		// contract — every cluster starts with at least one member), then
		// score against the centroids of the repaired partition.
		warm := clustering.RepairEmpty(append([]int(nil), init...), k, r)
		centers = make([]vec.Vector, k)
		for c := range centers {
			centers[c] = vec.New(mom.Dims())
		}
		clustering.MeansOfMoments(mom, warm, centers)
		copy(assign, warm)
	} else {
		centers = initialCenters(ds, k, r)
		for i := range assign {
			assign[i] = -1
		}
	}
	eng := core.NewAssigner(mom, k, u.Pruning.Enabled())
	var prev []int // pre-round snapshot, kept only for Progress
	if u.Progress != nil {
		prev = make([]int, n)
	}
	iterations, converged := 0, false
	for iterations < maxIter {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iterations++
		// argmin_c ED(o, c) = argmin_c σ²(o)+‖µ(o)−c‖² (eq. 8): a pure
		// nearest-center query (no additive terms), pruned exactly.
		eng.SetCenterVecs(centers, nil)
		if prev != nil {
			copy(prev, assign)
		}
		changed := eng.Assign(assign, workers)
		if prev != nil {
			moves := 0
			var obj float64
			for i := range assign {
				if assign[i] != prev[i] {
					moves++
				}
				obj += mom.ED(i, centers[assign[i]])
			}
			u.Progress.Emit(u.Name(), iterations, obj, moves)
		}
		if !changed {
			converged = true
			break
		}
		// Centroid refresh (eq. 7) from the flat store, reusing the
		// centers allocation.
		clustering.MeansOfMoments(mom, assign, centers)
	}

	var objective float64
	for i := 0; i < n; i++ {
		objective += mom.ED(i, centers[assign[i]])
	}
	pruned, scanned := eng.Counters()
	return &clustering.Report{
		Partition:         clustering.Partition{K: k, Assign: assign},
		Objective:         objective,
		Iterations:        iterations,
		Converged:         converged,
		Online:            time.Since(start),
		PrunedCandidates:  pruned,
		ScannedCandidates: scanned,
	}, nil
}

// initialCenters seeds k centroid points from the expected values of
// k-means++-selected objects.
func initialCenters(ds uncertain.Dataset, k int, r *rng.RNG) []vec.Vector {
	idx := clustering.KMeansPPCenters(ds, k, r)
	centers := make([]vec.Vector, k)
	for c, i := range idx {
		centers[c] = vec.Clone(ds[i].Mean())
	}
	return centers
}

func validate(ds uncertain.Dataset, k int) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	return clustering.ValidateK("ukmeans", k, len(ds))
}
