package ukmeans

import (
	"context"
	"math"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// Pruning selects the candidate-pruning strategy used by the basic
// UK-means assignment step.
type Pruning int

const (
	// PruneNone computes the expected distance to every candidate
	// centroid (the basic UK-means of Chau et al. [4]).
	PruneNone Pruning = iota
	// PruneMinMaxBB prunes candidates whose MBR-based lower bound
	// exceeds the smallest upper bound (MinMax-BB, Ngai et al. [16]).
	PruneMinMaxBB
	// PruneVDBiP prunes candidates dominated in a Voronoi bisector test
	// against another candidate (VDBiP, Kao et al. [11]).
	PruneVDBiP
)

// MetricKind selects the deterministic point metric d used inside the
// expected distance ED_d. The two kinds cover the uncertain-clustering
// literature: Euclidean (used by the pruning papers [11,16,17]; satisfies
// the triangle inequality needed by cluster-shift) and squared Euclidean
// (used by Lee et al.'s reduction [14]).
type MetricKind int

const (
	// MetricEuclidean is d(x,y) = ‖x−y‖.
	MetricEuclidean MetricKind = iota
	// MetricSqEuclidean is d(x,y) = ‖x−y‖².
	MetricSqEuclidean
)

func (m MetricKind) fn() uncertain.Metric {
	if m == MetricSqEuclidean {
		return uncertain.SqEuclidean
	}
	return uncertain.Euclidean
}

// triangle reports whether the metric satisfies the triangle inequality
// (required by the cluster-shift bounds).
func (m MetricKind) triangle() bool { return m == MetricEuclidean }

// boxBounds returns min/max of d(x, c) over x in the box, in metric units.
func (m MetricKind) boxBounds(box vec.Box, c vec.Vector) (lo, hi float64) {
	minSq, maxSq := box.MinSqDist(c), box.MaxSqDist(c)
	if m == MetricSqEuclidean {
		return minSq, maxSq
	}
	return math.Sqrt(minSq), math.Sqrt(maxSq)
}

// Basic is the basic (sample-based) UK-means and its pruning variants. The
// expected distance ED_d(o, c) = ∫ d(x,c) f(x) dx is approximated by
// averaging the metric over each object's sample cloud, which is the
// expensive integral the paper identifies as "a major bottleneck" (§2.2).
type Basic struct {
	// MaxIter caps Lloyd iterations (0 = default 100).
	MaxIter int
	// Samples is the per-object sample-cloud size S (0 = default 48).
	Samples int
	// Metric is the deterministic point metric d (default Euclidean, as
	// in the pruning literature).
	Metric MetricKind
	// Prune selects the pruning strategy.
	Prune Pruning
	// ClusterShift, when true, tightens bounds across iterations using
	// the centroid-movement technique of Ngai et al. [17]. It is ignored
	// for metrics without the triangle inequality.
	ClusterShift bool
	// Progress, when non-nil, observes every Lloyd round with the number
	// of objects that changed cluster. The sample-based objective is too
	// expensive to recompute per round, so the event's Objective is NaN.
	Progress clustering.ProgressFunc
}

// Name implements clustering.Algorithm.
func (b *Basic) Name() string {
	switch b.Prune {
	case PruneMinMaxBB:
		return "MinMax-BB"
	case PruneVDBiP:
		return "VDBiP"
	default:
		return "bUKM"
	}
}

// Cluster runs the (possibly pruned) basic UK-means.
func (b *Basic) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	ctx = clustering.Ctx(ctx)
	if err := validate(ds, k); err != nil {
		return nil, err
	}
	maxIter := b.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	samples := b.Samples
	if samples == 0 {
		samples = 48
	}
	metric := b.Metric.fn()
	shift := b.ClusterShift && b.Metric.triangle()

	// Off-line phase: sample clouds and MBRs (the paper's Figure 4
	// methodology excludes this from the clustering time).
	offStart := time.Now()
	ds.EnsureSamples(r.Split(0xbadc0de), samples)
	boxes := make([]vec.Box, len(ds))
	for i, o := range ds {
		boxes[i] = o.Region()
	}
	offline := time.Since(offStart)

	start := time.Now()
	n := len(ds)
	centers := initialCenters(ds, k, r)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	var edComputations, pruned int64
	// Cluster-shift state: last exact ED per (object, centroid), the
	// cumulative drift of each centroid, and the drift value at the time
	// each ED was stored, so the bound uses exactly the movement since
	// storage.
	var lastED, edDrift [][]float64
	var edValid [][]bool
	drift := make([]float64, k)
	if shift {
		lastED = make([][]float64, n)
		edDrift = make([][]float64, n)
		edValid = make([][]bool, n)
		for i := range lastED {
			lastED[i] = make([]float64, k)
			edDrift[i] = make([]float64, k)
			edValid[i] = make([]bool, k)
		}
	}

	alive := make([]bool, k)
	lb := make([]float64, k)
	ub := make([]float64, k)
	var bis *bisectors

	iterations, converged := 0, false
	for iterations < maxIter {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iterations++
		moves := 0
		if b.Prune == PruneVDBiP {
			// The Voronoi bisector hyperplanes depend only on the
			// centroids, so they are built once per iteration.
			bis = newBisectors(centers)
		}
		for i, o := range ds {
			if i%1024 == 0 && i > 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			// Bound computation (cheap, O(k·m)).
			for c := 0; c < k; c++ {
				alive[c] = true
				lb[c], ub[c] = b.Metric.boxBounds(boxes[i], centers[c])
				if shift && edValid[i][c] {
					// Triangle inequality: |ED(o,c_now) − ED(o,c_stored)|
					// ≤ centroid movement since the ED was stored.
					moved := drift[c] - edDrift[i][c]
					if l := lastED[i][c] - moved; l > lb[c] {
						lb[c] = l
					}
					if u := lastED[i][c] + moved; u < ub[c] {
						ub[c] = u
					}
				}
			}
			switch b.Prune {
			case PruneMinMaxBB:
				pruned += pruneMinMax(lb, ub, alive)
			case PruneVDBiP:
				pruned += bis.prune(boxes[i], alive)
				pruned += pruneMinMax(lb, ub, alive)
			}

			// Expensive expected distances for the survivors.
			best, bestD := -1, 0.0
			aliveCount, lastAlive := 0, -1
			for c := 0; c < k; c++ {
				if alive[c] {
					aliveCount++
					lastAlive = c
				}
			}
			if aliveCount == 1 {
				// Sole survivor: assignment needs no integral at all.
				best = lastAlive
			} else {
				for c := 0; c < k; c++ {
					if !alive[c] {
						continue
					}
					d := uncertain.EDSampled(o, centers[c], metric)
					edComputations++
					if shift {
						lastED[i][c] = d
						edDrift[i][c] = drift[c]
						edValid[i][c] = true
					}
					if best == -1 || d < bestD {
						best, bestD = c, d
					}
				}
			}
			if assign[i] != best {
				assign[i] = best
				moves++
			}
		}
		b.Progress.Emit(b.Name(), iterations, math.NaN(), moves)
		if moves == 0 {
			converged = true
			break
		}
		newCenters := clustering.MeansOf(ds, assign, k)
		if shift {
			for c := 0; c < k; c++ {
				drift[c] += vec.Dist(newCenters[c], centers[c])
			}
		}
		centers = newCenters
	}

	var objective float64
	for i, o := range ds {
		objective += uncertain.EDSampled(o, centers[assign[i]], metric)
	}
	return &clustering.Report{
		Partition:        clustering.Partition{K: k, Assign: assign},
		Objective:        objective,
		Iterations:       iterations,
		Converged:        converged,
		Online:           time.Since(start),
		Offline:          offline,
		EDComputations:   edComputations,
		PrunedCandidates: pruned,
	}, nil
}

// pruneMinMax disables candidates whose lower bound exceeds the smallest
// upper bound among the still-alive candidates (MinMax-BB core rule).
func pruneMinMax(lb, ub []float64, alive []bool) int64 {
	minUB := math.Inf(1)
	for c := range ub {
		if alive[c] && ub[c] < minUB {
			minUB = ub[c]
		}
	}
	var count int64
	for c := range lb {
		if alive[c] && lb[c] > minUB {
			alive[c] = false
			count++
		}
	}
	return count
}

// bisectors caches the Voronoi bisector hyperplanes between every pair of
// centroids for one iteration: candidate j is dominated by candidate i for
// a box when max_{x∈box} w_ij·x < rhs_ij, with w_ij = 2(c_j−c_i) and
// rhs_ij = ‖c_j‖² − ‖c_i‖². Point-wise dominance implies expected-distance
// dominance for any non-decreasing metric of the Euclidean distance, so the
// test is sound for both metric kinds.
type bisectors struct {
	k   int
	w   []vec.Vector // w[i*k+j]
	rhs []float64
}

// newBisectors precomputes the hyperplanes for the current centroids.
func newBisectors(centers []vec.Vector) *bisectors {
	k := len(centers)
	b := &bisectors{k: k, w: make([]vec.Vector, k*k), rhs: make([]float64, k*k)}
	norms := make([]float64, k)
	for i, c := range centers {
		norms[i] = vec.SqNorm(c)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			w := vec.Sub(centers[j], centers[i])
			vec.ScaleInPlace(w, 2)
			b.w[i*k+j] = w
			b.rhs[i*k+j] = norms[j] - norms[i]
		}
	}
	return b
}

// prune marks candidates dominated under the bisector test for the given
// object box. Returns the number pruned.
func (b *bisectors) prune(box vec.Box, alive []bool) int64 {
	var count int64
	for j := 0; j < b.k; j++ {
		if !alive[j] {
			continue
		}
		for i := 0; i < b.k && alive[j]; i++ {
			if i == j || !alive[i] {
				continue
			}
			idx := i*b.k + j
			if box.MaxLinear(b.w[idx]) < b.rhs[idx] {
				alive[j] = false
				count++
			}
		}
	}
	return count
}
