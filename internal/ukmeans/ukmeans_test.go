package ukmeans

import (
	"context"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// separable builds k well-separated uncertain groups.
func separable(r *rng.RNG, k, per, m int) uncertain.Dataset {
	var ds uncertain.Dataset
	id := 0
	for g := 0; g < k; g++ {
		for i := 0; i < per; i++ {
			ms := make([]dist.Distribution, m)
			for j := range ms {
				center := 12*float64(g) + r.Normal(0, 0.4)
				ms[j] = dist.NewTruncNormalCentral(center, 0.3, 0.95)
			}
			ds = append(ds, uncertain.NewObject(id, ms).WithLabel(g))
			id++
		}
	}
	return ds
}

func sameGrouping(t *testing.T, ds uncertain.Dataset, assign []int, k int) {
	t.Helper()
	for g := 0; g < k; g++ {
		seen := map[int]bool{}
		for i, o := range ds {
			if o.Label == g {
				seen[assign[i]] = true
			}
		}
		if len(seen) != 1 {
			t.Errorf("true group %d split across clusters %v", g, seen)
		}
	}
}

func TestUKMeansRecoversClusters(t *testing.T) {
	r := rng.New(10)
	ds := separable(r, 3, 25, 3)
	rep, err := (&UKMeans{}).Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Error("no convergence")
	}
	sameGrouping(t, ds, rep.Partition.Assign, 3)
}

// The fast UK-means objective must equal Σ ED(o, centroid) recomputed from
// the final partition's centroids (Lemma 1 consistency).
func TestUKMeansObjectiveConsistent(t *testing.T) {
	r := rng.New(20)
	ds := separable(r, 2, 20, 2)
	rep, err := (&UKMeans{}).Cluster(context.Background(), ds, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	centers := clustering.MeansOf(ds, rep.Partition.Assign, 2)
	var want float64
	for i, o := range ds {
		want += uncertain.ED(o, centers[rep.Partition.Assign[i]])
	}
	if math.Abs(rep.Objective-want) > 1e-9*(1+want) {
		t.Errorf("objective %v vs recomputed %v", rep.Objective, want)
	}
}

// Equivalence: with the squared Euclidean metric and a large sample cloud,
// the basic UK-means converges to the same grouping as the fast UK-means
// (Lee et al.'s reduction).
func TestBasicFastEquivalence(t *testing.T) {
	r := rng.New(30)
	ds := separable(r, 3, 15, 2)
	fast, err := (&UKMeans{}).Cluster(context.Background(), ds, 3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	basic, err := (&Basic{Metric: MetricSqEuclidean, Samples: 256}).Cluster(context.Background(), ds, 3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// Compare groupings up to cluster relabeling via co-membership.
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			a := fast.Partition.Assign[i] == fast.Partition.Assign[j]
			b := basic.Partition.Assign[i] == basic.Partition.Assign[j]
			if a != b {
				t.Fatalf("objects %d,%d grouped differently: fast %v, basic %v", i, j, a, b)
			}
		}
	}
}

// Pruning soundness: MinMax-BB and VDBiP must produce exactly the same
// assignments as the exhaustive basic UK-means for the same seed.
func TestPruningEquivalence(t *testing.T) {
	r := rng.New(40)
	ds := separable(r, 4, 12, 2)
	base, err := (&Basic{Prune: PruneNone, Samples: 32}).Cluster(context.Background(), ds, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []*Basic{
		{Prune: PruneMinMaxBB, Samples: 32},
		{Prune: PruneMinMaxBB, Samples: 32, ClusterShift: true},
		{Prune: PruneVDBiP, Samples: 32},
		{Prune: PruneVDBiP, Samples: 32, ClusterShift: true},
	} {
		rep, err := cfg.Cluster(context.Background(), ds, 4, rng.New(9))
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		for i := range ds {
			if rep.Partition.Assign[i] != base.Partition.Assign[i] {
				t.Fatalf("%s(shift=%v): object %d assigned to %d, exhaustive gives %d",
					cfg.Name(), cfg.ClusterShift, i, rep.Partition.Assign[i], base.Partition.Assign[i])
			}
		}
		if rep.EDComputations >= base.EDComputations {
			t.Errorf("%s(shift=%v): %d ED computations, exhaustive needed %d — no pruning benefit",
				cfg.Name(), cfg.ClusterShift, rep.EDComputations, base.EDComputations)
		}
		if rep.PrunedCandidates == 0 {
			t.Errorf("%s: pruned-candidate counter is zero", cfg.Name())
		}
	}
}

// Cluster-shift must strictly reduce ED computations versus plain MinMax-BB
// on a workload with several iterations.
func TestClusterShiftReducesWork(t *testing.T) {
	r := rng.New(50)
	ds := separable(r, 5, 30, 3)
	plain, err := (&Basic{Prune: PruneMinMaxBB, Samples: 16}).Cluster(context.Background(), ds, 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := (&Basic{Prune: PruneMinMaxBB, Samples: 16, ClusterShift: true}).Cluster(context.Background(), ds, 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if shifted.EDComputations > plain.EDComputations {
		t.Errorf("cluster-shift increased ED computations: %d vs %d",
			shifted.EDComputations, plain.EDComputations)
	}
}

func TestBasicRecoversClusters(t *testing.T) {
	r := rng.New(60)
	ds := separable(r, 3, 15, 2)
	rep, err := (&Basic{Samples: 24}).Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	sameGrouping(t, ds, rep.Partition.Assign, 3)
	if rep.EDComputations == 0 {
		t.Error("basic UK-means reported zero expected-distance computations")
	}
	if rep.Offline <= 0 {
		t.Error("offline phase not timed")
	}
}

func TestUKMeansDeterministicForSeed(t *testing.T) {
	r := rng.New(70)
	ds := separable(r, 2, 20, 2)
	a, _ := (&UKMeans{}).Cluster(context.Background(), ds, 2, rng.New(5))
	b, _ := (&UKMeans{}).Cluster(context.Background(), ds, 2, rng.New(5))
	for i := range a.Partition.Assign {
		if a.Partition.Assign[i] != b.Partition.Assign[i] {
			t.Fatal("same seed, different result")
		}
	}
}

func TestValidation(t *testing.T) {
	r := rng.New(80)
	ds := separable(r, 2, 5, 2)
	if _, err := (&UKMeans{}).Cluster(context.Background(), ds, 0, r); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := (&UKMeans{}).Cluster(context.Background(), ds, 11, r); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := (&Basic{}).Cluster(context.Background(), uncertain.Dataset{}, 1, r); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestNames(t *testing.T) {
	if (&UKMeans{}).Name() != "UKM" {
		t.Error("UKMeans name")
	}
	if (&Basic{}).Name() != "bUKM" {
		t.Error("basic name")
	}
	if (&Basic{Prune: PruneMinMaxBB}).Name() != "MinMax-BB" {
		t.Error("minmax name")
	}
	if (&Basic{Prune: PruneVDBiP}).Name() != "VDBiP" {
		t.Error("vdbip name")
	}
}

func TestMetricKinds(t *testing.T) {
	x := []float64{0, 0}
	y := []float64{3, 4}
	if d := MetricEuclidean.fn()(x, y); d != 5 {
		t.Errorf("euclidean = %v", d)
	}
	if d := MetricSqEuclidean.fn()(x, y); d != 25 {
		t.Errorf("sq euclidean = %v", d)
	}
	if !MetricEuclidean.triangle() || MetricSqEuclidean.triangle() {
		t.Error("triangle flags wrong")
	}
}

var (
	_ clustering.Algorithm = (*UKMeans)(nil)
	_ clustering.Algorithm = (*Basic)(nil)
)
