package ukmedoids

import (
	"context"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
)

// benchState builds a converged-ish medoid state over a bench-shaped
// dataset for the pass micro-benchmarks.
func benchState(b *testing.B, n, k int) (*DistMatrix, [][]int, []int, []int) {
	b.Helper()
	ds := separable(rng.New(7), k, (n+k-1)/k, 8)
	dm := Matrix(ds)
	medoids := clustering.KMeansPPCenters(ds, k, rng.New(3))
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	var ctr Counters
	if _, err := AssignPass(context.Background(), dm, medoids, make([]int, k), assign, false, &ctr); err != nil {
		b.Fatal(err)
	}
	return dm, (clustering.Partition{K: k, Assign: assign}).Members(), medoids, assign
}

func benchUpdateMedoids(b *testing.B, pruning bool) {
	dm, members, medoids, _ := benchState(b, 1200, 12)
	var ctr Counters
	scratch := make([]int, len(medoids))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, medoids)
		UpdateMedoids(dm, members, scratch, pruning, &ctr)
	}
}

func BenchmarkUpdateMedoidsPruned(b *testing.B)   { benchUpdateMedoids(b, true) }
func BenchmarkUpdateMedoidsUnpruned(b *testing.B) { benchUpdateMedoids(b, false) }
