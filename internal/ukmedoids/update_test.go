package ukmedoids

import (
	"context"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// TestUpdaterMatchesExhaustive: the closed-form König–Huygens filter must
// select exactly the medoids of the exhaustive O(|C|²) scan, for random
// partitions of noisy data across seeds.
func TestUpdaterMatchesExhaustive(t *testing.T) {
	for _, seed := range []uint64{1, 42, 977} {
		r := rng.New(seed)
		ds := separable(r, 4, 30, 3)
		dm := Matrix(ds)
		n := len(ds)
		for trial := 0; trial < 5; trial++ {
			k := 2 + trial
			assign := clustering.RandomPartition(n, k, rng.New(seed+uint64(trial)*13))
			members := (clustering.Partition{K: k, Assign: assign}).Members()
			seedMedoids := make([]int, k)
			for c := range seedMedoids {
				seedMedoids[c] = -1
			}
			var ctrOn, ctrOff Counters
			pruned := append([]int(nil), seedMedoids...)
			plain := append([]int(nil), seedMedoids...)
			upd := NewUpdater(dm)
			upd.Update(members, pruned, true, &ctrOn)
			upd.Update(members, plain, false, &ctrOff)
			for c := range plain {
				if pruned[c] != plain[c] {
					t.Fatalf("seed %d trial %d cluster %d: filtered medoid %d vs exhaustive %d",
						seed, trial, c, pruned[c], plain[c])
				}
			}
			if ctrOn.Pruned == 0 {
				t.Errorf("seed %d trial %d: filter pruned nothing", seed, trial)
			}
			if ctrOff.Pruned != 0 {
				t.Errorf("seed %d trial %d: exhaustive scan reports pruning", seed, trial)
			}
		}
	}
}

// TestUpdaterDegenerateTies: duplicate zero-variance objects make several
// candidates share the exact minimal cost; the filter must still pick the
// exhaustive scan's winner (the lowest-index minimum).
func TestUpdaterDegenerateTies(t *testing.T) {
	mk := func(id int, x float64) *uncertain.Object {
		return uncertain.NewObject(id, []dist.Distribution{dist.NewPointMass(x), dist.NewPointMass(x)})
	}
	// Objects 0-3 identical, 4-5 identical elsewhere: every cluster member
	// of the first group ties exactly.
	ds := uncertain.Dataset{mk(0, 1), mk(1, 1), mk(2, 1), mk(3, 1), mk(4, 9), mk(5, 9)}
	dm := Matrix(ds)
	members := [][]int{{0, 1, 2, 3}, {4, 5}}
	for _, start := range [][]int{{-1, -1}, {3, 5}, {2, 4}} {
		var ctr Counters
		pruned := append([]int(nil), start...)
		plain := append([]int(nil), start...)
		NewUpdater(dm).Update(members, pruned, true, &ctr)
		NewUpdater(dm).Update(members, plain, false, &ctr)
		for c := range plain {
			if pruned[c] != plain[c] {
				t.Fatalf("start %v cluster %d: filtered medoid %d vs exhaustive %d", start, c, pruned[c], plain[c])
			}
		}
	}
}

// TestMedoidSweepZeroAllocs gates the zero-allocation contract of the
// UK-medoids online sweeps: at convergence, an assignment pass plus a
// medoid update through the preallocated engines allocates nothing.
func TestMedoidSweepZeroAllocs(t *testing.T) {
	ds := separable(rng.New(3), 4, 25, 3)
	rep, err := (&UKMedoids{Workers: 1}).Cluster(context.Background(), ds, 4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	dm := Matrix(ds)
	assign := append([]int(nil), rep.Partition.Assign...)
	medoids := append([]int(nil), rep.Medoids...)
	lastEval := append([]int(nil), rep.Medoids...)
	members := rep.Partition.Members()
	upd := NewUpdater(dm)
	var ctr Counters
	ctx := context.Background()
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := AssignPass(ctx, dm, medoids, lastEval, assign, true, &ctr); err != nil {
			t.Fatal(err)
		}
		upd.Update(members, medoids, true, &ctr)
	})
	if allocs != 0 {
		t.Errorf("%g allocs per steady-state medoid sweep, want 0", allocs)
	}
}
