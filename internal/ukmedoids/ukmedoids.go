// Package ukmedoids implements UK-medoids (Gullo, Ponti, Tagarelli,
// SUM 2008; paper ref. [7]): a PAM-style partitional algorithm for
// uncertain objects in which every cluster is represented by one of its own
// members (the medoid) and proximity is the squared expected distance ÊD
// between uncertain objects.
//
// The pairwise ÊD matrix is precomputed in an off-line phase (the paper's
// Figure 4 methodology excludes "distance pre-computation" from clustering
// time); the online swap phase is then pure matrix lookups.
package ukmedoids

import (
	"context"
	"math"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// UKMedoids is the uncertain K-medoids algorithm.
type UKMedoids struct {
	// MaxIter caps assignment/update rounds (0 = default 100).
	MaxIter int
	// Workers sizes the worker pool of the off-line ÊD matrix build
	// (<= 0 means GOMAXPROCS).
	Workers int
	// Pruning toggles candidate filtering on the distance-matrix rows
	// (default on): the assignment step skips clusters whose medoid did
	// not move since the object's last evaluation (auto-disabled for the
	// rest of the run if a pass where it was applicable pruned nothing —
	// then it is pure overhead), and the medoid update abandons candidates
	// once their partial cost reaches the best, tested per batch of row
	// entries so the branch stays out of the innermost accumulation.
	// Both filters are exact — partial sums of the non-negative ÊD row
	// entries are monotone in the shared summation order — so the
	// partition is identical either way.
	Pruning clustering.PruneMode
	// Progress, when non-nil, observes every round with the medoid-cost
	// objective and the number of objects that changed cluster.
	Progress clustering.ProgressFunc
}

// Name implements clustering.Algorithm.
func (a *UKMedoids) Name() string { return "UKmed" }

// Cluster partitions ds into k clusters around object medoids.
func (a *UKMedoids) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	return a.cluster(ctx, ds, k, nil, r)
}

// ClusterFrom implements clustering.WarmStarter: the initial medoids are
// the cost-minimizing members of the given partition's clusters instead of
// k-means++ seeds. Empty init clusters are repaired from r first, so every
// cluster has a medoid.
func (a *UKMedoids) ClusterFrom(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	if err := clustering.ValidateInit("ukmedoids", init, len(ds), k); err != nil {
		return nil, err
	}
	return a.cluster(ctx, ds, k, init, r)
}

func (a *UKMedoids) cluster(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	ctx = clustering.Ctx(ctx)
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := len(ds)
	if err := clustering.ValidateK("ukmedoids", k, n); err != nil {
		return nil, err
	}
	maxIter := a.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}

	// Off-line phase: full pairwise ÊD matrix, O(n²·m).
	offStart := time.Now()
	dm := MatrixWorkers(ds, a.Workers)
	offline := time.Since(offStart)

	start := time.Now()
	pruning := a.Pruning.Enabled()
	updater := NewUpdater(dm)
	var ctr Counters
	var medoids []int
	assign := make([]int, n)
	if init != nil {
		warm := clustering.RepairEmpty(append([]int(nil), init...), k, r)
		medoids = make([]int, k)
		for c := range medoids {
			medoids[c] = -1
		}
		var scratch Counters
		updater.Update((clustering.Partition{K: k, Assign: warm}).Members(), medoids, pruning, &scratch)
	} else {
		medoids = clustering.KMeansPPCenters(ds, k, r)
	}
	for i := range assign {
		assign[i] = -1
	}
	// lastEval[c] is the medoid of cluster c at the previous assignment
	// pass (-1 = never evaluated); see AssignPass.
	lastEval := make([]int, k)
	for c := range lastEval {
		lastEval[c] = -1
	}

	// rowFilter starts as the pruning flag and auto-disables: once a pass
	// in which the filter was genuinely applicable — at least one medoid
	// stable since the previous pass, so the per-candidate compares were
	// actually paid — prunes nothing, every later pass would re-pay that
	// overhead for the same zero savings, so it is switched off for the
	// remainder of the run. Passes with no stable medoid (e.g. the churn
	// right after seeding, when the first update replaces every medoid)
	// don't count against the filter: they cost one integer compare per
	// object and carry no evidence. The decision depends only on
	// deterministic counters, and the filter is exact, so the partition is
	// identical with the filter on, off, or auto-disabled mid-run.
	rowFilter := pruning

	iterations, converged := 0, false
	for iterations < maxIter {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iterations++
		// A prune needs an object's own medoid stable AND some other
		// stable medoid to skip, so the filter is only applicable — and
		// only judged — when at least two medoids held still and at
		// least one stable medoid leads a non-empty cluster (an empty
		// cluster's medoid is trivially stable but owns no objects, so
		// its stability proves nothing about the filter's usefulness).
		applicable := false
		if rowFilter {
			stable, stableOwned := 0, false
			for c := 0; c < k; c++ {
				if medoids[c] == lastEval[c] {
					stable++
				}
			}
			if stable >= 2 {
				for i := 0; i < n && !stableOwned; i++ {
					if a0 := assign[i]; a0 >= 0 && medoids[a0] == lastEval[a0] {
						stableOwned = true
					}
				}
			}
			applicable = stable >= 2 && stableOwned
		}
		prunedBefore := ctr.Pruned
		moves, err := AssignPass(ctx, dm, medoids, lastEval, assign, rowFilter, &ctr)
		if err != nil {
			return nil, err
		}
		if rowFilter && applicable && ctr.Pruned == prunedBefore {
			rowFilter = false
		}
		copy(lastEval, medoids)
		if a.Progress != nil {
			var obj float64
			for i := 0; i < n; i++ {
				obj += dm.At(i, medoids[assign[i]])
			}
			a.Progress.Emit(a.Name(), iterations, obj, moves)
		}
		if moves == 0 {
			converged = true
			break
		}
		updater.Update((clustering.Partition{K: k, Assign: assign}).Members(), medoids, pruning, &ctr)
	}

	var objective float64
	for i := 0; i < n; i++ {
		objective += dm.At(i, medoids[assign[i]])
	}
	return &clustering.Report{
		Partition:         clustering.Partition{K: k, Assign: assign},
		Objective:         objective,
		Iterations:        iterations,
		Converged:         converged,
		Online:            time.Since(start),
		Offline:           offline,
		PrunedCandidates:  ctr.Pruned,
		ScannedCandidates: ctr.Scanned,
		Medoids:           append([]int(nil), medoids...),
	}, nil
}

// Counters accumulates (pruned, scanned) candidate-pair counts across the
// UK-medoids sweep passes.
type Counters struct {
	Pruned, Scanned int64
}

// AssignPass reassigns every object to its nearest medoid by ÊD
// (ties to the lowest cluster index, the plain scan's strict-< rule) and
// reports how many objects changed cluster. It is one online sweep of the
// PAM loop: pure matrix-row lookups, no heap allocations.
//
// lastEval[c] is cluster c's medoid at the previous pass (-1 = never
// evaluated). With rowFilter, an object whose own medoid is unchanged skips
// every other unchanged medoid: the previous pass already proved them
// lexicographically worse — (distance, index) ascending — so only clusters
// whose medoid moved need a fresh lookup. The filter is exact; it only
// skips lookups whose outcome is known.
func AssignPass(ctx context.Context, dm *DistMatrix, medoids, lastEval, assign []int, rowFilter bool, ctr *Counters) (int, error) {
	n, k := len(assign), len(medoids)
	moves := 0
	var pruned, scanned int64
	for i := 0; i < n; i++ {
		if i%4096 == 0 && i > 0 {
			if err := ctx.Err(); err != nil {
				ctr.Pruned += pruned
				ctr.Scanned += scanned
				return moves, err
			}
		}
		var best int
		var bestD float64
		if a0 := assign[i]; rowFilter && a0 >= 0 && medoids[a0] == lastEval[a0] {
			best, bestD = a0, dm.At(i, medoids[a0])
			scanned++
			for c := 0; c < k; c++ {
				if c == a0 {
					continue
				}
				if medoids[c] == lastEval[c] {
					pruned++
					continue
				}
				scanned++
				if d := dm.At(i, medoids[c]); d < bestD || (d == bestD && c < best) {
					best, bestD = c, d
				}
			}
		} else {
			best, bestD = 0, dm.At(i, medoids[0])
			for c := 1; c < k; c++ {
				if d := dm.At(i, medoids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			scanned += int64(k)
		}
		if assign[i] != best {
			assign[i] = best
			moves++
		}
	}
	ctr.Pruned += pruned
	ctr.Scanned += scanned
	return moves, nil
}

// updateSlack is the relative safety margin of the closed-form medoid
// filter, anchored on the gross (pre-cancellation) magnitudes of the sums
// it compares — ~10⁴ coarser than the worst-case accumulated rounding of
// either scoring path, so a borderline candidate is always verified by the
// exact matrix scan rather than dropped.
const updateSlack = 1e-9

// Updater runs the medoid-update step with preallocated scratch, so
// steady-state sweeps perform no heap allocations.
type Updater struct {
	dm     *DistMatrix
	mean   []float64
	scores []float64
	kept   []int
}

// NewUpdater returns an update engine over dm.
func NewUpdater(dm *DistMatrix) *Updater {
	return &Updater{
		dm:     dm,
		mean:   make([]float64, dm.mom.Dims()),
		scores: make([]float64, dm.n),
		kept:   make([]int, 0, dm.n),
	}
}

// Update makes the member minimizing the summed ÊD to its peers the new
// medoid of each cluster (empty clusters keep their previous medoid).
//
// The exhaustive scan walks each cluster's members in ascending index order
// summing full matrix rows and keeps the first strict minimum — its winner
// is the lexicographic minimum over (cost, index), at O(|C|²) lookups per
// cluster. With pruning, the scan is filtered through the König–Huygens
// decomposition of the medoid cost: since every entry is the Lemma-3 form
// ÊD(x, o) = ‖µ(x) − µ(o)‖² + σ²(x) + σ²(o),
//
//	cost(x) = Σ_{o∈C} ÊD(x, o)
//	        = |C|·( ‖µ(x) − mean(C)‖² + σ²(x) ) + K_C
//
// where mean(C) and K_C do not depend on the candidate x. One O(|C|·m)
// scoring pass therefore ranks all candidates exactly up to floating-point
// rounding; only candidates whose score lies within a small slack of the
// minimum are verified with real matrix-row sums, and the winner among
// those is selected by the same lexicographic rule as the exhaustive scan.
// The plain winner always survives the filter (the slack over-covers the
// rounding of both scoring paths), so the selected medoids are identical
// with pruning on or off. The work drops from O(|C|²) to O(|C|·m) plus a
// handful of row sums — this is what fixed the PR3 regression, where the
// per-entry early-abandon cost more than the lookups it saved (0.95×).
func (u *Updater) Update(members [][]int, medoids []int, pruning bool, ctr *Counters) {
	var pruned, scanned int64
	mom := u.dm.mom
	m := len(u.mean)
	for c, ms := range members {
		if len(ms) == 0 {
			continue
		}
		cands := ms
		if pruning && len(ms) > 1 {
			nC := float64(len(ms))
			// Closed-form scoring pass: cluster mean, then per-candidate
			// score ‖µ(x) − mean‖² + σ²(x) (the |C|·score + K_C constant
			// offsets cancel in comparisons and only enter the slack).
			mean := u.mean
			for j := 0; j < m; j++ {
				mean[j] = 0
			}
			var normSum, varSum float64
			for _, o := range ms {
				mu := mom.Mu(o)
				for j := 0; j < m; j++ {
					mean[j] += mu[j]
				}
				normSum += mom.MuNorm2(o)
				varSum += mom.TotalVar(o)
			}
			var meanNorm2 float64
			for j := 0; j < m; j++ {
				mean[j] /= nC
				meanNorm2 += mean[j] * mean[j]
			}
			minScore := math.Inf(1)
			for mi, cand := range ms {
				s := u.score(cand, mean)
				u.scores[mi] = s
				if s < minScore {
					minScore = s
				}
			}
			// Gross-magnitude slack anchor: covers the rounding of the
			// closed-form evaluation (including the Σ‖µ‖² − |C|‖mean‖²
			// cancellation for off-center data) and of the |C|-term matrix
			// row sums it stands in for.
			slack := updateSlack * (nC*minScore + normSum + nC*meanNorm2 + varSum + 1)
			u.kept = u.kept[:0]
			for mi, cand := range ms {
				if nC*(u.scores[mi]-minScore) <= slack {
					u.kept = append(u.kept, cand)
				}
			}
			pruned += int64(len(ms)-len(u.kept)) * int64(len(ms))
			cands = u.kept
		}
		bestIdx, bestCost := medoids[c], math.Inf(1)
		for _, cand := range cands {
			var cost float64
			for _, other := range ms {
				cost += u.dm.At(cand, other)
			}
			scanned += int64(len(ms))
			if cost < bestCost {
				bestIdx, bestCost = cand, cost
			}
		}
		medoids[c] = bestIdx
	}
	ctr.Pruned += pruned
	ctr.Scanned += scanned
}

// score returns ‖µ(cand) − mean‖² + σ²(cand), the candidate-dependent part
// of the König–Huygens medoid cost.
func (u *Updater) score(cand int, mean []float64) float64 {
	mu := u.dm.mom.Mu(cand)
	var d2 float64
	for j, v := range mu {
		diff := v - mean[j]
		d2 += diff * diff
	}
	return d2 + u.dm.mom.TotalVar(cand)
}

// UpdateMedoids is a convenience wrapper around Updater.Update for one-off
// calls (the warm-start medoid seeding).
func UpdateMedoids(dm *DistMatrix, members [][]int, medoids []int, pruning bool, ctr *Counters) {
	NewUpdater(dm).Update(members, medoids, pruning, ctr)
}

// DistMatrix is a symmetric pairwise distance matrix stored as the upper
// triangle (including the diagonal) in row-major order. rowBase caches the
// per-row offsets so that the At hot path (the innermost loop of every
// medoid sweep) is a table lookup and an add instead of two multiplies.
type DistMatrix struct {
	n       int
	data    []float64
	rowBase []int // rowBase[i] + j indexes entry (i, j) for i <= j
	// mom is the flat moment store the entries were computed from; the
	// medoid update's closed-form filter scores candidates against it.
	mom *uncertain.Moments
}

// Matrix computes the pairwise ÊD matrix of the dataset using the Lemma 3
// closed form, reading the flat Moments store and fanning the rows over
// the full worker pool (every entry is independent, so the result does not
// depend on the worker count).
func Matrix(ds uncertain.Dataset) *DistMatrix {
	return MatrixWorkers(ds, 0)
}

// MatrixWorkers is Matrix with an explicit worker-pool size (<= 0 means
// GOMAXPROCS). Row i of the upper triangle holds n−i entries, so the work
// items are the balanced pairs (t, n−1−t): each pair costs ~n+1 entries,
// keeping the chunks of the parallel loop even while writes stay disjoint.
func MatrixWorkers(ds uncertain.Dataset, workers int) *DistMatrix {
	n := len(ds)
	mom := uncertain.MomentsOf(ds)
	m := &DistMatrix{n: n, data: make([]float64, n*(n+1)/2), rowBase: make([]int, n), mom: mom}
	for i := 0; i < n; i++ {
		// Row i starts after i rows of lengths n, n-1, …, n-i+1, and its
		// first entry is (i, i): base = i·n − i·(i−1)/2 − i.
		m.rowBase[i] = i*n - i*(i-1)/2 - i
	}
	fillRow := func(i int) {
		row := m.data[m.index(i, i) : m.index(i, n-1)+1]
		for j := i; j < n; j++ {
			row[j-i] = mom.EED(i, j)
		}
	}
	clustering.ParallelFor((n+1)/2, workers, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			fillRow(t)
			if mirror := n - 1 - t; mirror != t {
				fillRow(mirror)
			}
		}
	})
	return m
}

func (m *DistMatrix) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return m.rowBase[i] + j
}

// At returns ÊD(ds[i], ds[j]).
func (m *DistMatrix) At(i, j int) float64 { return m.data[m.index(i, j)] }

// N returns the number of objects.
func (m *DistMatrix) N() int { return m.n }
