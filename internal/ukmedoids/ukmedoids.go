// Package ukmedoids implements UK-medoids (Gullo, Ponti, Tagarelli,
// SUM 2008; paper ref. [7]): a PAM-style partitional algorithm for
// uncertain objects in which every cluster is represented by one of its own
// members (the medoid) and proximity is the squared expected distance ÊD
// between uncertain objects.
//
// The pairwise ÊD matrix is precomputed in an off-line phase (the paper's
// Figure 4 methodology excludes "distance pre-computation" from clustering
// time); the online swap phase is then pure matrix lookups.
package ukmedoids

import (
	"context"
	"math"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// UKMedoids is the uncertain K-medoids algorithm.
type UKMedoids struct {
	// MaxIter caps assignment/update rounds (0 = default 100).
	MaxIter int
	// Workers sizes the worker pool of the off-line ÊD matrix build
	// (<= 0 means GOMAXPROCS).
	Workers int
	// Pruning toggles candidate filtering on the distance-matrix rows
	// (default on): the assignment step skips clusters whose medoid did
	// not move since the object's last evaluation, and the medoid update
	// abandons candidates as soon as their partial cost exceeds the best.
	// Both filters are exact — partial sums of the non-negative ÊD row
	// entries are monotone in the shared summation order — so the
	// partition is identical either way.
	Pruning clustering.PruneMode
	// Progress, when non-nil, observes every round with the medoid-cost
	// objective and the number of objects that changed cluster.
	Progress clustering.ProgressFunc
}

// Name implements clustering.Algorithm.
func (a *UKMedoids) Name() string { return "UKmed" }

// Cluster partitions ds into k clusters around object medoids.
func (a *UKMedoids) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	return a.cluster(ctx, ds, k, nil, r)
}

// ClusterFrom implements clustering.WarmStarter: the initial medoids are
// the cost-minimizing members of the given partition's clusters instead of
// k-means++ seeds. Empty init clusters are repaired from r first, so every
// cluster has a medoid.
func (a *UKMedoids) ClusterFrom(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	if err := clustering.ValidateInit("ukmedoids", init, len(ds), k); err != nil {
		return nil, err
	}
	return a.cluster(ctx, ds, k, init, r)
}

func (a *UKMedoids) cluster(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	ctx = clustering.Ctx(ctx)
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := len(ds)
	if err := clustering.ValidateK("ukmedoids", k, n); err != nil {
		return nil, err
	}
	maxIter := a.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}

	// Off-line phase: full pairwise ÊD matrix, O(n²·m).
	offStart := time.Now()
	dm := MatrixWorkers(ds, a.Workers)
	offline := time.Since(offStart)

	start := time.Now()
	pruning := a.Pruning.Enabled()
	var medoids []int
	assign := make([]int, n)
	if init != nil {
		warm := clustering.RepairEmpty(append([]int(nil), init...), k, r)
		medoids = make([]int, k)
		for c := range medoids {
			medoids[c] = -1
		}
		var scratch int64
		updateMedoids(dm, (clustering.Partition{K: k, Assign: warm}).Members(), medoids, pruning, &scratch, &scratch)
	} else {
		medoids = clustering.KMeansPPCenters(ds, k, r)
	}
	for i := range assign {
		assign[i] = -1
	}
	// lastEval[c] is the medoid of cluster c at the previous assignment
	// pass (-1 = never evaluated). If an object's own medoid is unchanged,
	// the previous pass already proved every other unchanged medoid
	// lexicographically worse — (distance, index) ascending — so only
	// clusters whose medoid moved need a fresh matrix lookup.
	lastEval := make([]int, k)
	for c := range lastEval {
		lastEval[c] = -1
	}
	var pruned, scanned int64

	iterations, converged := 0, false
	for iterations < maxIter {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iterations++
		moves := 0
		// Assignment: nearest medoid by ÊD, ties to the lowest cluster
		// index (the plain scan's strict-< rule gives exactly that).
		for i := 0; i < n; i++ {
			if i%4096 == 0 && i > 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			var best int
			var bestD float64
			if a0 := assign[i]; pruning && a0 >= 0 && medoids[a0] == lastEval[a0] {
				best, bestD = a0, dm.At(i, medoids[a0])
				scanned++
				for c := 0; c < k; c++ {
					if c == a0 {
						continue
					}
					if medoids[c] == lastEval[c] {
						pruned++
						continue
					}
					scanned++
					if d := dm.At(i, medoids[c]); d < bestD || (d == bestD && c < best) {
						best, bestD = c, d
					}
				}
			} else {
				best, bestD = 0, dm.At(i, medoids[0])
				for c := 1; c < k; c++ {
					if d := dm.At(i, medoids[c]); d < bestD {
						best, bestD = c, d
					}
				}
				scanned += int64(k)
			}
			if assign[i] != best {
				assign[i] = best
				moves++
			}
		}
		copy(lastEval, medoids)
		if a.Progress != nil {
			var obj float64
			for i := 0; i < n; i++ {
				obj += dm.At(i, medoids[assign[i]])
			}
			a.Progress.Emit(a.Name(), iterations, obj, moves)
		}
		if moves == 0 {
			converged = true
			break
		}
		updateMedoids(dm, (clustering.Partition{K: k, Assign: assign}).Members(), medoids, pruning, &pruned, &scanned)
	}

	var objective float64
	for i := 0; i < n; i++ {
		objective += dm.At(i, medoids[assign[i]])
	}
	return &clustering.Report{
		Partition:         clustering.Partition{K: k, Assign: assign},
		Objective:         objective,
		Iterations:        iterations,
		Converged:         converged,
		Online:            time.Since(start),
		Offline:           offline,
		PrunedCandidates:  pruned,
		ScannedCandidates: scanned,
		Medoids:           append([]int(nil), medoids...),
	}, nil
}

// updateMedoids makes the member minimizing the summed ÊD to its peers the
// new medoid of each cluster (empty clusters keep their previous medoid).
// With pruning, candidates are abandoned as soon as their partial cost
// reaches the best cost: the row entries are non-negative and summed in the
// same order as the exhaustive scan, so the final cost could not have been
// smaller.
func updateMedoids(dm *DistMatrix, members [][]int, medoids []int, pruning bool, pruned, scanned *int64) {
	for c, ms := range members {
		if len(ms) == 0 {
			continue
		}
		bestIdx, bestCost := medoids[c], math.Inf(1)
		for _, cand := range ms {
			var cost float64
			abandoned := false
			for oi, other := range ms {
				cost += dm.At(cand, other)
				if pruning && cost >= bestCost {
					*pruned += int64(len(ms) - oi - 1)
					*scanned += int64(oi + 1)
					abandoned = true
					break
				}
			}
			if abandoned {
				continue
			}
			*scanned += int64(len(ms))
			if cost < bestCost {
				bestIdx, bestCost = cand, cost
			}
		}
		medoids[c] = bestIdx
	}
}

// DistMatrix is a symmetric pairwise distance matrix stored as the upper
// triangle (including the diagonal) in row-major order.
type DistMatrix struct {
	n    int
	data []float64
}

// Matrix computes the pairwise ÊD matrix of the dataset using the Lemma 3
// closed form, reading the flat Moments store and fanning the rows over
// the full worker pool (every entry is independent, so the result does not
// depend on the worker count).
func Matrix(ds uncertain.Dataset) *DistMatrix {
	return MatrixWorkers(ds, 0)
}

// MatrixWorkers is Matrix with an explicit worker-pool size (<= 0 means
// GOMAXPROCS). Row i of the upper triangle holds n−i entries, so the work
// items are the balanced pairs (t, n−1−t): each pair costs ~n+1 entries,
// keeping the chunks of the parallel loop even while writes stay disjoint.
func MatrixWorkers(ds uncertain.Dataset, workers int) *DistMatrix {
	n := len(ds)
	mom := uncertain.MomentsOf(ds)
	m := &DistMatrix{n: n, data: make([]float64, n*(n+1)/2)}
	fillRow := func(i int) {
		row := m.data[m.index(i, i) : m.index(i, n-1)+1]
		for j := i; j < n; j++ {
			row[j-i] = mom.EED(i, j)
		}
	}
	clustering.ParallelFor((n+1)/2, workers, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			fillRow(t)
			if mirror := n - 1 - t; mirror != t {
				fillRow(mirror)
			}
		}
	})
	return m
}

func (m *DistMatrix) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Row i starts after i rows of lengths n, n-1, …, n-i+1.
	return i*m.n - i*(i-1)/2 + (j - i)
}

// At returns ÊD(ds[i], ds[j]).
func (m *DistMatrix) At(i, j int) float64 { return m.data[m.index(i, j)] }

// N returns the number of objects.
func (m *DistMatrix) N() int { return m.n }
