package ukmedoids

import (
	"context"
	"testing"

	"ucpc/internal/datasets"
	"ucpc/internal/rng"
	"ucpc/internal/uncgen"
)

// kddState reproduces the uncbench workload state (n=2000, k=16, seed 1)
// at convergence, for realistic pass micro-benchmarks.
func kddState(b *testing.B) (*DistMatrix, [][]int, []int, []int) {
	b.Helper()
	d := datasets.GenerateKDD(2000, 1)
	set := (&uncgen.Generator{Model: uncgen.Normal, Intensity: 1.0}).Assign(d, rng.New(1^0xbe))
	ds := set.Objects(d)
	rep, err := (&UKMedoids{Workers: 1}).Cluster(context.Background(), ds, 16, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	dm := Matrix(ds)
	assign := append([]int(nil), rep.Partition.Assign...)
	return dm, rep.Partition.Members(), append([]int(nil), rep.Medoids...), assign
}

func benchKDDUpdate(b *testing.B, pruning bool) {
	dm, members, medoids, _ := kddState(b)
	var ctr Counters
	scratch := make([]int, len(medoids))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, medoids)
		UpdateMedoids(dm, members, scratch, pruning, &ctr)
	}
}

func BenchmarkKDDUpdatePruned(b *testing.B)   { benchKDDUpdate(b, true) }
func BenchmarkKDDUpdateUnpruned(b *testing.B) { benchKDDUpdate(b, false) }
