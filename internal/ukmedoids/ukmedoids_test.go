package ukmedoids

import (
	"context"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

func separable(r *rng.RNG, k, per, m int) uncertain.Dataset {
	var ds uncertain.Dataset
	id := 0
	for g := 0; g < k; g++ {
		for i := 0; i < per; i++ {
			ms := make([]dist.Distribution, m)
			for j := range ms {
				center := 12*float64(g) + r.Normal(0, 0.4)
				ms[j] = dist.NewTruncNormalCentral(center, 0.3, 0.95)
			}
			ds = append(ds, uncertain.NewObject(id, ms).WithLabel(g))
			id++
		}
	}
	return ds
}

func TestMatrixSymmetricConsistent(t *testing.T) {
	r := rng.New(1)
	ds := separable(r, 2, 10, 3)
	dm := Matrix(ds)
	if dm.N() != len(ds) {
		t.Fatalf("N = %d", dm.N())
	}
	for i := 0; i < len(ds); i++ {
		for j := 0; j < len(ds); j++ {
			want := uncertain.EED(ds[i], ds[j])
			if got := dm.At(i, j); math.Abs(got-want) > 1e-12*(1+want) {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, got, want)
			}
			if dm.At(i, j) != dm.At(j, i) {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestUKMedoidsRecoversClusters(t *testing.T) {
	r := rng.New(2)
	ds := separable(r, 3, 15, 2)
	rep, err := (&UKMedoids{}).Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Error("no convergence")
	}
	for g := 0; g < 3; g++ {
		seen := map[int]bool{}
		for i, o := range ds {
			if o.Label == g {
				seen[rep.Partition.Assign[i]] = true
			}
		}
		if len(seen) != 1 {
			t.Errorf("group %d split: %v", g, seen)
		}
	}
}

// Medoid optimality: at convergence no member of a cluster has a smaller
// summed ÊD to its peers than the chosen medoid... we verify the weaker
// invariant that every object is assigned to its nearest medoid.
func TestAssignmentsNearestMedoid(t *testing.T) {
	r := rng.New(3)
	ds := separable(r, 3, 12, 2)
	rep, err := (&UKMedoids{}).Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	dm := Matrix(ds)
	// Recover medoids: per cluster, the member minimizing summed ÊD.
	members := rep.Partition.Members()
	medoids := make([]int, len(members))
	for c, ms := range members {
		best, bestCost := -1, math.Inf(1)
		for _, cand := range ms {
			var cost float64
			for _, o := range ms {
				cost += dm.At(cand, o)
			}
			if cost < bestCost {
				best, bestCost = cand, cost
			}
		}
		medoids[c] = best
	}
	for i := range ds {
		assigned := rep.Partition.Assign[i]
		dAssigned := dm.At(i, medoids[assigned])
		for c := range medoids {
			if dm.At(i, medoids[c]) < dAssigned-1e-9 {
				t.Fatalf("object %d: medoid %d closer than assigned %d", i, c, assigned)
			}
		}
	}
}

func TestUKMedoidsOfflinePhaseTimed(t *testing.T) {
	r := rng.New(4)
	ds := separable(r, 2, 20, 3)
	rep, err := (&UKMedoids{}).Cluster(context.Background(), ds, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offline <= 0 {
		t.Error("offline phase not recorded")
	}
}

func TestUKMedoidsValidation(t *testing.T) {
	r := rng.New(5)
	ds := separable(r, 2, 5, 2)
	if _, err := (&UKMedoids{}).Cluster(context.Background(), ds, 0, r); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := (&UKMedoids{}).Cluster(context.Background(), ds, len(ds)+1, r); err == nil {
		t.Error("k>n accepted")
	}
}

func TestDistMatrixIndexing(t *testing.T) {
	// 3-object matrix: verify the triangular layout covers all pairs.
	ds := uncertain.Dataset{
		uncertain.FromPoint(0, []float64{0}),
		uncertain.FromPoint(1, []float64{1}),
		uncertain.FromPoint(2, []float64{3}),
	}
	dm := Matrix(ds)
	cases := map[[2]int]float64{
		{0, 0}: 0, {0, 1}: 1, {0, 2}: 9,
		{1, 1}: 0, {1, 2}: 4, {2, 2}: 0,
	}
	for pair, want := range cases {
		if got := dm.At(pair[0], pair[1]); got != want {
			t.Errorf("At(%d,%d) = %v, want %v", pair[0], pair[1], got, want)
		}
	}
}

var _ clustering.Algorithm = (*UKMedoids)(nil)
