package ukmedoids

import "ucpc/internal/clustering"

func init() {
	clustering.Register(clustering.Registration{
		Name: "UKmed", Rank: 90, Prototype: clustering.ProtoMedoid,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &UKMedoids{MaxIter: cfg.MaxIter, Workers: cfg.Workers, Pruning: cfg.Pruning, Progress: cfg.Progress}
		},
	})
}
