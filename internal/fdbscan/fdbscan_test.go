package fdbscan

import (
	"context"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

func denseGroups(r *rng.RNG, k, per int) uncertain.Dataset {
	var ds uncertain.Dataset
	id := 0
	for g := 0; g < k; g++ {
		for i := 0; i < per; i++ {
			ms := []dist.Distribution{
				dist.NewTruncNormalCentral(20*float64(g)+r.Normal(0, 0.5), 0.2, 0.95),
				dist.NewTruncNormalCentral(20*float64(g)+r.Normal(0, 0.5), 0.2, 0.95),
			}
			ds = append(ds, uncertain.NewObject(id, ms).WithLabel(g))
			id++
		}
	}
	return ds
}

func TestFDBSCANFindsDenseGroups(t *testing.T) {
	r := rng.New(1)
	ds := denseGroups(r, 3, 20)
	rep, err := (&FDBSCAN{}).Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partition.K < 2 {
		t.Fatalf("found %d clusters, want >= 2", rep.Partition.K)
	}
	// No cluster may span two true groups.
	groupOf := map[int]int{}
	for i, o := range ds {
		c := rep.Partition.Assign[i]
		if c == clustering.Noise {
			continue
		}
		if g, ok := groupOf[c]; ok && g != o.Label {
			t.Fatalf("cluster %d spans groups %d and %d", c, g, o.Label)
		}
		groupOf[c] = o.Label
	}
}

func TestFDBSCANIsolatedNoise(t *testing.T) {
	r := rng.New(2)
	ds := denseGroups(r, 2, 15)
	// One far-away isolated object.
	lone := uncertain.NewObject(len(ds), []dist.Distribution{
		dist.NewTruncNormalCentral(500, 0.2, 0.95),
		dist.NewTruncNormalCentral(500, 0.2, 0.95),
	}).WithLabel(2)
	ds = append(ds, lone)
	rep, err := (&FDBSCAN{}).Cluster(context.Background(), ds, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Partition.Assign[len(ds)-1]; got != clustering.Noise {
		t.Errorf("isolated object assigned to cluster %d, want noise", got)
	}
}

func TestFDBSCANExplicitEps(t *testing.T) {
	r := rng.New(3)
	ds := denseGroups(r, 2, 15)
	rep, err := (&FDBSCAN{Eps: 3.0, MinPts: 3}).Cluster(context.Background(), ds, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partition.K != 2 {
		t.Errorf("eps=3: found %d clusters, want 2", rep.Partition.K)
	}
	if rep.Partition.NoiseCount() > len(ds)/4 {
		t.Errorf("too much noise: %d of %d", rep.Partition.NoiseCount(), len(ds))
	}
}

func TestFDBSCANHugeEpsOneCluster(t *testing.T) {
	r := rng.New(4)
	ds := denseGroups(r, 2, 10)
	rep, err := (&FDBSCAN{Eps: 1e6}).Cluster(context.Background(), ds, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partition.K != 1 || rep.Partition.NoiseCount() != 0 {
		t.Errorf("huge eps: K=%d noise=%d, want one full cluster",
			rep.Partition.K, rep.Partition.NoiseCount())
	}
}

func TestFDBSCANTinyEpsAllNoise(t *testing.T) {
	r := rng.New(5)
	ds := denseGroups(r, 2, 10)
	rep, err := (&FDBSCAN{Eps: 1e-9}).Cluster(context.Background(), ds, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partition.NoiseCount() != len(ds) {
		t.Errorf("tiny eps: %d noise of %d", rep.Partition.NoiseCount(), len(ds))
	}
}

func TestFDBSCANEmptyDataset(t *testing.T) {
	r := rng.New(6)
	if _, err := (&FDBSCAN{}).Cluster(context.Background(), uncertain.Dataset{}, 1, r); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestCalibrateEpsPositive(t *testing.T) {
	r := rng.New(7)
	ds := denseGroups(r, 2, 10)
	if eps := calibrateEps(ds, 4); eps <= 0 {
		t.Errorf("calibrated eps = %v", eps)
	}
}

var _ clustering.Algorithm = (*FDBSCAN)(nil)
