// Package fdbscan implements FDBSCAN (Kriegel & Pfeifle, KDD 2005; paper
// ref. [12]): density-based clustering of uncertain objects using fuzzy
// distance probabilities.
//
// Substitution note (see DESIGN.md): the published algorithm computes
// distance probabilities P(d(o,o′) ≤ ε) from the object pdfs; here they are
// estimated from per-object sample clouds (the same Monte Carlo machinery
// the basic UK-means uses), which preserves both the clustering semantics
// and the characteristic quadratic cost that places FDBSCAN orders of
// magnitude behind the partitional methods in the paper's Figure 4.
package fdbscan

import (
	"context"
	"math"
	"sort"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

func init() {
	clustering.Register(clustering.Registration{
		Name: "FDB", Rank: 110, Prototype: clustering.ProtoUCentroid, KIsHint: true,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &FDBSCAN{}
		},
	})
}

// FDBSCAN is the fuzzy density-based clustering algorithm.
type FDBSCAN struct {
	// Eps is the fuzzy distance threshold ε (0 = auto-calibrated from the
	// distance distribution; see calibrateEps).
	Eps float64
	// MinPts is the minimum expected number of ε-neighbors for a core
	// object (0 = default 4).
	MinPts int
	// Samples is the per-object sample-cloud size (0 = default 8, small
	// clouds as in the original paper's lens approximations).
	Samples int
	// ReachProb is the minimum distance probability for an object to be
	// directly density-reachable from a core object (0 = default 0.3).
	ReachProb float64
}

// Name implements clustering.Algorithm.
func (a *FDBSCAN) Name() string { return "FDB" }

// Cluster runs FDBSCAN. k is used only to calibrate ε when Eps is zero;
// the number of produced clusters is data-driven and unassigned objects
// keep the Noise label.
func (a *FDBSCAN) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	ctx = clustering.Ctx(ctx)
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := len(ds)
	minPts := a.MinPts
	if minPts == 0 {
		minPts = 4
	}
	samples := a.Samples
	if samples == 0 {
		samples = 8
	}
	reachProb := a.ReachProb
	if reachProb == 0 {
		reachProb = 0.3
	}

	offStart := time.Now()
	ds.EnsureSamples(r.Split(0xfdb), samples)
	eps := a.Eps
	if eps == 0 {
		eps = calibrateEps(ds, minPts)
	}
	offline := time.Since(offStart)

	start := time.Now()
	// Fuzzy distance probabilities and expected neighbor counts.
	prob := make([][]float64, n)
	for i := range prob {
		prob[i] = make([]float64, n)
	}
	expected := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for j := i + 1; j < n; j++ {
			p := uncertain.DistProbability(ds[i], ds[j], eps, true)
			prob[i][j], prob[j][i] = p, p
			expected[i] += p
			expected[j] += p
		}
	}
	core := make([]bool, n)
	for i := range core {
		core[i] = expected[i] >= float64(minPts)
	}

	// Expansion: BFS from unvisited core objects.
	assign := make([]int, n)
	for i := range assign {
		assign[i] = clustering.Noise
	}
	cid := 0
	queue := make([]int, 0, n)
	for seed := 0; seed < n; seed++ {
		if !core[seed] || assign[seed] != clustering.Noise {
			continue
		}
		assign[seed] = cid
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if !core[cur] {
				continue // border objects do not expand
			}
			for j := 0; j < n; j++ {
				if assign[j] != clustering.Noise || prob[cur][j] < reachProb {
					continue
				}
				assign[j] = cid
				queue = append(queue, j)
			}
		}
		cid++
	}

	if cid == 0 {
		cid = 1 // keep Partition well-formed when everything is noise
	}
	return &clustering.Report{
		Partition:  clustering.Partition{K: cid, Assign: assign},
		Objective:  math.NaN(),
		Iterations: 1,
		Converged:  true,
		Online:     time.Since(start),
		Offline:    offline,
	}, nil
}

// calibrateEps picks ε as the median over objects of the distance to the
// MinPts-th nearest neighbor, measured between expected values — the
// classic k-dist heuristic lifted to uncertain objects.
func calibrateEps(ds uncertain.Dataset, minPts int) float64 {
	n := len(ds)
	if n <= minPts {
		return 1
	}
	kd := make([]float64, 0, n)
	dists := make([]float64, n)
	for i := 0; i < n; i++ {
		dists = dists[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d := math.Sqrt(uncertain.EED(ds[i], ds[j]))
			dists = append(dists, d)
		}
		sort.Float64s(dists)
		idx := minPts - 1
		if idx >= len(dists) {
			idx = len(dists) - 1
		}
		kd = append(kd, dists[idx])
	}
	sort.Float64s(kd)
	return kd[len(kd)/2]
}
