// Package dist is the repository's distribution subsystem: univariate
// marginal distributions with exact closed-form moments, the building block
// of the paper's uncertain-object model (§2.1). An uncertain object carries
// one Distribution per dimension; everything the clustering machinery needs
// — the expected-value vector µ, the second-order moment vector µ₂, and the
// variance vector σ² of eq. 2–6 — is read off the marginals in O(1) per
// dimension, which is what makes the U-centroid criterion J(C) (Theorem 3)
// and the O(m) relocation step (Corollary 1) computable without sampling.
//
// Seven families are provided, covering the paper's uncertainty generator
// (Uniform, truncated Normal, truncated Exponential, §5.1), degenerate
// objects (PointMass), empirical marginals (Discrete), and the untruncated
// Normal/Exponential used by the ucsv serialization format.
//
// All families are small value types: they are cheap to copy, usable as
// type-switch cases, and safe to share between goroutines. Sampling is
// driven exclusively by the caller's *rng.RNG, so runs are reproducible.
package dist

import "ucpc/internal/rng"

// Distribution is a univariate probability distribution with exact
// closed-form moments.
//
// PDF returns a density for continuous families and a probability mass for
// atomic families (PointMass, Discrete); the clustering algorithms only
// ever compare densities of the same family, so the two readings never mix
// in a meaningful way.
type Distribution interface {
	// Mean returns the expected value E[X].
	Mean() float64
	// SecondMoment returns the raw second moment E[X²].
	SecondMoment() float64
	// Var returns the variance E[X²] − E[X]².
	Var() float64
	// Support returns the smallest interval [lo, hi] with P(X ∈ [lo,hi]) = 1.
	// Unbounded families return ±Inf endpoints.
	Support() (lo, hi float64)
	// Sample draws one realization using r as the only randomness source.
	Sample(r *rng.RNG) float64
	// PDF evaluates the density (or probability mass) at x.
	PDF(x float64) float64
	// CDF returns P(X ≤ x).
	CDF(x float64) float64
	// Quantile returns the p-quantile inf{x : CDF(x) ≥ p} for p ∈ [0, 1].
	Quantile(p float64) float64
}
