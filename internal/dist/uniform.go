package dist

import (
	"fmt"

	"ucpc/internal/rng"
)

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns the Uniform distribution on [lo, hi]. It panics if
// hi < lo.
func NewUniform(lo, hi float64) Uniform {
	if hi < lo {
		panic(fmt.Sprintf("dist: Uniform with hi %v < lo %v", hi, lo))
	}
	return Uniform{Lo: lo, Hi: hi}
}

// NewUniformAround returns the Uniform distribution centered at center with
// total width width, i.e. on [center−width/2, center+width/2]. It panics if
// width < 0.
func NewUniformAround(center, width float64) Uniform {
	if width < 0 {
		panic(fmt.Sprintf("dist: UniformAround with negative width %v", width))
	}
	return Uniform{Lo: center - width/2, Hi: center + width/2}
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// SecondMoment returns (Lo² + Lo·Hi + Hi²)/3.
func (u Uniform) SecondMoment() float64 {
	return (u.Lo*u.Lo + u.Lo*u.Hi + u.Hi*u.Hi) / 3
}

// Var returns (Hi−Lo)²/12.
func (u Uniform) Var() float64 {
	w := u.Hi - u.Lo
	return w * w / 12
}

// Support returns [Lo, Hi].
func (u Uniform) Support() (float64, float64) { return u.Lo, u.Hi }

// Sample draws uniformly from [Lo, Hi).
func (u Uniform) Sample(r *rng.RNG) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// PDF returns 1/(Hi−Lo) inside the support, 0 outside.
func (u Uniform) PDF(x float64) float64 {
	if x < u.Lo || x > u.Hi || u.Hi == u.Lo {
		if u.Hi == u.Lo && x == u.Lo {
			return 1 // degenerate uniform behaves like a point mass
		}
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

// CDF returns the linear ramp between Lo and Hi.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		if u.Hi == u.Lo && x == u.Lo {
			return 1
		}
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Quantile returns Lo + p·(Hi−Lo), clamping p to [0, 1].
func (u Uniform) Quantile(p float64) float64 {
	p = clamp01(p)
	return u.Lo + p*(u.Hi-u.Lo)
}

// PointMass is the degenerate distribution concentrated at X.
type PointMass struct {
	X float64
}

// NewPointMass returns the degenerate distribution at x.
func NewPointMass(x float64) PointMass { return PointMass{X: x} }

// Mean returns X.
func (p PointMass) Mean() float64 { return p.X }

// SecondMoment returns X².
func (p PointMass) SecondMoment() float64 { return p.X * p.X }

// Var returns 0.
func (p PointMass) Var() float64 { return 0 }

// Support returns [X, X].
func (p PointMass) Support() (float64, float64) { return p.X, p.X }

// Sample returns X without consuming randomness.
func (p PointMass) Sample(*rng.RNG) float64 { return p.X }

// PDF returns the probability mass: 1 at X, 0 elsewhere.
func (p PointMass) PDF(x float64) float64 {
	if x == p.X {
		return 1
	}
	return 0
}

// CDF returns the unit step at X.
func (p PointMass) CDF(x float64) float64 {
	if x < p.X {
		return 0
	}
	return 1
}

// Quantile returns X for every p.
func (p PointMass) Quantile(float64) float64 { return p.X }

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
