package dist

import (
	"math"
	"testing"

	"ucpc/internal/rng"
)

// Compile-time interface compliance for every family.
var (
	_ Distribution = Uniform{}
	_ Distribution = PointMass{}
	_ Distribution = Normal{}
	_ Distribution = TruncNormal{}
	_ Distribution = Exponential{}
	_ Distribution = TruncExponential{}
	_ Distribution = Discrete{}
)

// families returns one representative of every family, including awkward
// parameterizations (negative means, tight truncations, duplicate atoms).
func families() map[string]Distribution {
	return map[string]Distribution{
		"uniform":          NewUniform(-3, 7),
		"uniform-around":   NewUniformAround(-2.5, 4),
		"point":            NewPointMass(4.25),
		"normal":           NewNormal(-1.5, 2.25),
		"trunc-normal":     NewTruncNormal(2, 1.5, 0, 3),
		"trunc-normal-c":   NewTruncNormalCentral(-4, 0.8, 0.95),
		"exponential":      NewExponential(1.75, -2),
		"trunc-exp":        NewTruncExponential(0.6, 1, 5),
		"trunc-exp-mass":   NewTruncExponentialMass(-3, 1.5, 0.95),
		"discrete-uniform": NewDiscrete([]float64{3, -1, 0.5, 3}, nil),
		"discrete-weights": NewDiscrete([]float64{-2, 0, 2}, []float64{1, 2, 5}),
	}
}

// TestMomentsAgainstMonteCarlo cross-checks every family's closed-form
// Mean/SecondMoment/Var against a Monte Carlo estimate over Sample.
func TestMomentsAgainstMonteCarlo(t *testing.T) {
	const n = 200000
	for name, d := range families() {
		r := rng.New(42)
		var sum, sq float64
		for i := 0; i < n; i++ {
			x := d.Sample(r)
			sum += x
			sq += x * x
		}
		mcMean := sum / n
		mcM2 := sq / n
		scale := 1 + math.Abs(d.Mean()) + math.Sqrt(math.Max(d.Var(), 0))
		if diff := math.Abs(mcMean - d.Mean()); diff > 0.02*scale {
			t.Errorf("%s: MC mean %v vs closed form %v", name, mcMean, d.Mean())
		}
		if diff := math.Abs(mcM2 - d.SecondMoment()); diff > 0.05*(1+math.Abs(d.SecondMoment())) {
			t.Errorf("%s: MC µ₂ %v vs closed form %v", name, mcM2, d.SecondMoment())
		}
		if v := d.Var(); math.Abs(v-(d.SecondMoment()-d.Mean()*d.Mean())) > 1e-9*(1+math.Abs(v)) {
			t.Errorf("%s: Var %v inconsistent with µ₂−µ² = %v", name, v, d.SecondMoment()-d.Mean()*d.Mean())
		}
		if v := d.Var(); v < 0 {
			t.Errorf("%s: negative variance %v", name, v)
		}
	}
}

// TestSamplesInsideSupport verifies every draw lands in [Support()].
func TestSamplesInsideSupport(t *testing.T) {
	for name, d := range families() {
		r := rng.New(7)
		lo, hi := d.Support()
		if lo > hi {
			t.Fatalf("%s: inverted support [%v, %v]", name, lo, hi)
		}
		for i := 0; i < 5000; i++ {
			x := d.Sample(r)
			if x < lo || x > hi {
				t.Fatalf("%s: sample %v outside support [%v, %v]", name, x, lo, hi)
			}
		}
	}
}

// TestQuantileCDFRoundTrip checks CDF(Quantile(p)) ≈ p for continuous
// families, and the Galois-connection version Quantile(CDF(x)) ≤ x ≤
// right-continuity for atomic ones.
func TestQuantileCDFRoundTrip(t *testing.T) {
	ps := []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}
	for name, d := range families() {
		switch d.(type) {
		case PointMass, Discrete:
			// Atomic families: Quantile(p) must be an atom with
			// CDF(atom) ≥ p and CDF(atom⁻) < p.
			for _, p := range ps {
				x := d.Quantile(p)
				if c := d.CDF(x); c < p-1e-12 {
					t.Errorf("%s: CDF(Quantile(%v)) = %v < p", name, p, c)
				}
				if c := d.CDF(x - 1e-9); c >= p && p > c-1 { // left limit below p
					t.Errorf("%s: Quantile(%v) = %v is not minimal (CDF(x⁻) = %v)", name, p, x, c)
				}
			}
		default:
			for _, p := range ps {
				x := d.Quantile(p)
				if c := d.CDF(x); math.Abs(c-p) > 1e-9 {
					t.Errorf("%s: CDF(Quantile(%v)) = %v", name, p, c)
				}
			}
		}
	}
}

// TestCDFMonotone checks the CDF is non-decreasing from 0 to 1 over a grid
// spanning the support.
func TestCDFMonotone(t *testing.T) {
	for name, d := range families() {
		lo, hi := d.Support()
		loBounded, hiBounded := !math.IsInf(lo, -1), !math.IsInf(hi, 1)
		if !loBounded {
			lo = d.Mean() - 10*math.Sqrt(d.Var()+1)
		}
		if !hiBounded {
			hi = d.Mean() + 10*math.Sqrt(d.Var()+1)
		}
		prev := -1.0
		for i := 0; i <= 200; i++ {
			x := lo + (hi-lo)*float64(i)/200
			c := d.CDF(x)
			if c < prev-1e-12 {
				t.Fatalf("%s: CDF decreases at %v: %v -> %v", name, x, prev, c)
			}
			if c < -1e-12 || c > 1+1e-12 {
				t.Fatalf("%s: CDF(%v) = %v outside [0,1]", name, x, c)
			}
			prev = c
		}
		if c := d.CDF(hi + 1); hiBounded && c != 1 {
			t.Errorf("%s: CDF beyond support = %v", name, c)
		}
		if c := d.CDF(lo - 1); loBounded && c != 0 {
			t.Errorf("%s: CDF below support = %v", name, c)
		}
	}
}

// TestPDFIntegratesToOne numerically integrates the density of the
// continuous families over their (effective) support.
func TestPDFIntegratesToOne(t *testing.T) {
	for name, d := range families() {
		switch d.(type) {
		case PointMass, Discrete:
			continue
		}
		lo, hi := d.Support()
		if math.IsInf(lo, -1) {
			lo = d.Mean() - 12*math.Sqrt(d.Var())
		}
		if math.IsInf(hi, 1) {
			hi = d.Mean() + 12*math.Sqrt(d.Var())
		}
		const steps = 20000
		w := (hi - lo) / steps
		var integral float64
		for i := 0; i < steps; i++ {
			integral += d.PDF(lo+(float64(i)+0.5)*w) * w
		}
		if math.Abs(integral-1) > 1e-3 {
			t.Errorf("%s: PDF integrates to %v", name, integral)
		}
	}
}

// TestExactMeans pins the constructors that promise an exact mean.
func TestExactMeans(t *testing.T) {
	cases := []struct {
		name string
		d    Distribution
		want float64
	}{
		{"uniform-around", NewUniformAround(3.5, 2), 3.5},
		{"trunc-normal-central", NewTruncNormalCentral(-1.25, 0.7, 0.95), -1.25},
		{"trunc-exp-mass", NewTruncExponentialMass(4, 1.5, 0.95), 4},
		{"trunc-exp-mass-neg", NewTruncExponentialMass(-2.5, 0.4, 0.9), -2.5},
		{"point", NewPointMass(9), 9},
	}
	for _, c := range cases {
		if got := c.d.Mean(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Mean = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestTruncNormalCentralMass verifies the truncation interval captures the
// requested central mass of the parent Normal.
func TestTruncNormalCentralMass(t *testing.T) {
	for _, mass := range []float64{0.5, 0.9, 0.95, 0.99} {
		tn := NewTruncNormalCentral(2, 1.5, mass)
		parent := NewNormal(2, 1.5)
		got := parent.CDF(tn.Hi) - parent.CDF(tn.Lo)
		if math.Abs(got-mass) > 1e-9 {
			t.Errorf("mass %v: interval captures %v", mass, got)
		}
	}
}

// TestTruncExponentialMassWindow verifies the T window of the mass
// constructor captures the requested mass of the parent Exponential.
func TestTruncExponentialMassWindow(t *testing.T) {
	for _, mass := range []float64{0.5, 0.9, 0.95, 0.99} {
		te := NewTruncExponentialMass(1, 2, mass)
		parent := NewExponential(2, te.Shift)
		got := parent.CDF(te.Shift + te.T)
		if math.Abs(got-mass) > 1e-9 {
			t.Errorf("mass %v: window captures %v", mass, got)
		}
	}
}

// TestStdQuantileAccuracy probes Φ⁻¹ against Φ across the unit interval,
// including deep tails.
func TestStdQuantileAccuracy(t *testing.T) {
	n := NewNormal(0, 1)
	for _, p := range []float64{1e-12, 1e-9, 1e-6, 1e-3, 0.02425, 0.3, 0.5, 0.7, 0.97575, 1 - 1e-6, 1 - 1e-9} {
		z := n.Quantile(p)
		if back := n.CDF(z); math.Abs(back-p) > 1e-12*(1+p/1e-6) && math.Abs(back-p)/p > 1e-9 {
			t.Errorf("Φ(Φ⁻¹(%v)) = %v", p, back)
		}
	}
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Error("Normal quantile endpoints not ±Inf")
	}
}

// TestDiscreteBasics pins Discrete bookkeeping: sorted atoms, weights,
// exact moments, N.
func TestDiscreteBasics(t *testing.T) {
	d := NewDiscrete([]float64{2, -1, 5}, []float64{1, 1, 2})
	if d.N() != 3 {
		t.Fatalf("N = %d", d.N())
	}
	if lo, hi := d.Support(); lo != -1 || hi != 5 {
		t.Errorf("Support = [%v, %v]", lo, hi)
	}
	wantMean := (-1.0 + 2.0 + 2*5.0) / 4
	if math.Abs(d.Mean()-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", d.Mean(), wantMean)
	}
	if p := d.PDF(5); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("PDF(5) = %v", p)
	}
	if p := d.PDF(1.5); p != 0 {
		t.Errorf("PDF off-atom = %v", p)
	}
	if c := d.CDF(2); math.Abs(c-0.5) > 1e-12 {
		t.Errorf("CDF(2) = %v", c)
	}
	// Duplicate atoms accumulate mass.
	dup := NewDiscrete([]float64{1, 1, 3}, nil)
	if p := dup.PDF(1); math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("duplicate-atom PDF = %v", p)
	}
}

// TestConstructorPanics verifies the guard rails.
func TestConstructorPanics(t *testing.T) {
	cases := map[string]func(){
		"uniform-inverted":    func() { NewUniform(2, 1) },
		"uniform-neg-width":   func() { NewUniformAround(0, -1) },
		"normal-neg-sigma":    func() { NewNormal(0, -1) },
		"truncnorm-bad-sigma": func() { NewTruncNormal(0, 0, -1, 1) },
		"truncnorm-bad-box":   func() { NewTruncNormal(0, 1, 1, 1) },
		"truncnorm-bad-mass":  func() { NewTruncNormalCentral(0, 1, 1) },
		"exp-bad-rate":        func() { NewExponential(0, 0) },
		"truncexp-bad-rate":   func() { NewTruncExponential(-1, 0, 1) },
		"truncexp-bad-window": func() { NewTruncExponential(1, 0, 0) },
		"truncexp-bad-mass":   func() { NewTruncExponentialMass(0, 1, 0) },
		"discrete-empty":      func() { NewDiscrete(nil, nil) },
		"discrete-mismatch":   func() { NewDiscrete([]float64{1}, []float64{1, 2}) },
		"discrete-neg-weight": func() { NewDiscrete([]float64{1}, []float64{-1}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestSamplingDeterminism: same seed, same stream.
func TestSamplingDeterminism(t *testing.T) {
	for name, d := range families() {
		a, b := rng.New(99), rng.New(99)
		for i := 0; i < 100; i++ {
			if d.Sample(a) != d.Sample(b) {
				t.Fatalf("%s: non-deterministic sampling", name)
			}
		}
	}
}

func BenchmarkTruncNormalSample(b *testing.B) {
	d := NewTruncNormalCentral(0, 1, 0.95)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(r)
	}
}

func BenchmarkStdQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = stdQuantile(float64(i%1000+1) / 1001)
	}
}
