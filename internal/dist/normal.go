package dist

import (
	"fmt"
	"math"

	"ucpc/internal/rng"
)

// stdPDF is the standard normal density φ(z).
func stdPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// stdCDF is the standard normal distribution function Φ(z), computed from
// the complementary error function for full tail accuracy.
func stdCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// stdQuantile is Φ⁻¹(p): Acklam's rational approximation (relative error
// < 1.2e-9 over (0,1)) polished with one Halley step against stdCDF, which
// brings the result to near machine precision.
func stdQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	)
	var z float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		z = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		z = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		z = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step: e = Φ(z) − p, u = e/φ(z),
	// z ← z − u/(1 + z·u/2).
	e := stdCDF(z) - p
	u := e / stdPDF(z)
	return z - u/(1+z*u/2)
}

// Normal is the (untruncated) Normal distribution with mean Mu and standard
// deviation Sigma.
type Normal struct {
	Mu, Sigma float64
}

// NewNormal returns Normal(mu, sigma²). It panics if sigma < 0.
func NewNormal(mu, sigma float64) Normal {
	if sigma < 0 {
		panic(fmt.Sprintf("dist: Normal with negative sigma %v", sigma))
	}
	return Normal{Mu: mu, Sigma: sigma}
}

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// SecondMoment returns Mu² + Sigma².
func (n Normal) SecondMoment() float64 { return n.Mu*n.Mu + n.Sigma*n.Sigma }

// Var returns Sigma².
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// Support returns (−Inf, +Inf).
func (n Normal) Support() (float64, float64) { return math.Inf(-1), math.Inf(1) }

// Sample draws via the generator's Box–Muller transform.
func (n Normal) Sample(r *rng.RNG) float64 { return r.Normal(n.Mu, n.Sigma) }

// PDF returns the Gaussian density at x.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma == 0 {
		if x == n.Mu {
			return 1
		}
		return 0
	}
	return stdPDF((x-n.Mu)/n.Sigma) / n.Sigma
}

// CDF returns Φ((x−Mu)/Sigma).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma == 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return stdCDF((x - n.Mu) / n.Sigma)
}

// Quantile returns Mu + Sigma·Φ⁻¹(p).
func (n Normal) Quantile(p float64) float64 {
	if n.Sigma == 0 {
		return n.Mu
	}
	return n.Mu + n.Sigma*stdQuantile(clamp01(p))
}

// TruncNormal is a Normal(Mu, Sigma²) restricted and renormalized to
// [Lo, Hi].
type TruncNormal struct {
	Mu, Sigma float64
	Lo, Hi    float64
}

// NewTruncNormal returns Normal(mu, sigma²) truncated to [lo, hi]. It
// panics if sigma <= 0 or hi <= lo.
func NewTruncNormal(mu, sigma, lo, hi float64) TruncNormal {
	if sigma <= 0 {
		panic(fmt.Sprintf("dist: TruncNormal with non-positive sigma %v", sigma))
	}
	if hi <= lo {
		panic(fmt.Sprintf("dist: TruncNormal with hi %v <= lo %v", hi, lo))
	}
	return TruncNormal{Mu: mu, Sigma: sigma, Lo: lo, Hi: hi}
}

// NewTruncNormalCentral returns Normal(mu, sigma²) truncated to the
// symmetric interval holding its central mass (e.g. 0.95), so the truncated
// mean remains exactly mu. It panics if sigma <= 0 or mass ∉ (0, 1).
func NewTruncNormalCentral(mu, sigma, mass float64) TruncNormal {
	if mass <= 0 || mass >= 1 {
		panic(fmt.Sprintf("dist: TruncNormalCentral with mass %v outside (0,1)", mass))
	}
	z := stdQuantile((1 + mass) / 2)
	return NewTruncNormal(mu, sigma, mu-z*sigma, mu+z*sigma)
}

// bounds returns the standardized truncation points α, β and the captured
// mass Z = Φ(β) − Φ(α).
func (t TruncNormal) bounds() (alpha, beta, z float64) {
	alpha = (t.Lo - t.Mu) / t.Sigma
	beta = (t.Hi - t.Mu) / t.Sigma
	return alpha, beta, stdCDF(beta) - stdCDF(alpha)
}

// Mean returns Mu + Sigma·(φ(α)−φ(β))/Z (the standard truncated-normal
// closed form).
func (t TruncNormal) Mean() float64 {
	alpha, beta, z := t.bounds()
	return t.Mu + t.Sigma*(stdPDF(alpha)-stdPDF(beta))/z
}

// Var returns Sigma²·[1 + (αφ(α)−βφ(β))/Z − ((φ(α)−φ(β))/Z)²].
func (t TruncNormal) Var() float64 {
	alpha, beta, z := t.bounds()
	pa, pb := stdPDF(alpha), stdPDF(beta)
	d := (pa - pb) / z
	return t.Sigma * t.Sigma * (1 + (alpha*pa-beta*pb)/z - d*d)
}

// SecondMoment returns Var + Mean².
func (t TruncNormal) SecondMoment() float64 {
	m := t.Mean()
	return t.Var() + m*m
}

// Support returns [Lo, Hi].
func (t TruncNormal) Support() (float64, float64) { return t.Lo, t.Hi }

// Sample draws by inverse-CDF transform, which stays exact in the tails and
// consumes exactly one uniform variate per draw.
func (t TruncNormal) Sample(r *rng.RNG) float64 {
	return t.Quantile(r.Float64())
}

// PDF returns the renormalized Gaussian density inside [Lo, Hi].
func (t TruncNormal) PDF(x float64) float64 {
	if x < t.Lo || x > t.Hi {
		return 0
	}
	_, _, z := t.bounds()
	return stdPDF((x-t.Mu)/t.Sigma) / (t.Sigma * z)
}

// CDF returns (Φ((x−Mu)/Sigma) − Φ(α))/Z clamped to [0, 1].
func (t TruncNormal) CDF(x float64) float64 {
	if x <= t.Lo {
		return 0
	}
	if x >= t.Hi {
		return 1
	}
	alpha, _, z := t.bounds()
	return (stdCDF((x-t.Mu)/t.Sigma) - stdCDF(alpha)) / z
}

// Quantile returns Mu + Sigma·Φ⁻¹(Φ(α) + p·Z), clamped to [Lo, Hi].
func (t TruncNormal) Quantile(p float64) float64 {
	p = clamp01(p)
	alpha, _, z := t.bounds()
	x := t.Mu + t.Sigma*stdQuantile(stdCDF(alpha)+p*z)
	// Guard the endpoints against floating-point spill.
	if x < t.Lo {
		return t.Lo
	}
	if x > t.Hi {
		return t.Hi
	}
	return x
}
