package dist

import (
	"fmt"
	"math"

	"ucpc/internal/rng"
)

// Exponential is the shifted Exponential distribution: X = Shift + Y with
// Y ~ Exp(Rate), supported on [Shift, +Inf).
type Exponential struct {
	Rate, Shift float64
}

// NewExponential returns the Exponential with the given rate, shifted to
// start at shift. It panics if rate <= 0.
func NewExponential(rate, shift float64) Exponential {
	if rate <= 0 {
		panic(fmt.Sprintf("dist: Exponential with non-positive rate %v", rate))
	}
	return Exponential{Rate: rate, Shift: shift}
}

// Mean returns Shift + 1/Rate.
func (e Exponential) Mean() float64 { return e.Shift + 1/e.Rate }

// SecondMoment returns E[(Shift+Y)²] = Shift² + 2·Shift/Rate + 2/Rate².
func (e Exponential) SecondMoment() float64 {
	return e.Shift*e.Shift + 2*e.Shift/e.Rate + 2/(e.Rate*e.Rate)
}

// Var returns 1/Rate².
func (e Exponential) Var() float64 { return 1 / (e.Rate * e.Rate) }

// Support returns [Shift, +Inf).
func (e Exponential) Support() (float64, float64) { return e.Shift, math.Inf(1) }

// Sample draws by inverse CDF through the generator's Exp stream.
func (e Exponential) Sample(r *rng.RNG) float64 {
	return e.Shift + r.Exp()/e.Rate
}

// PDF returns Rate·e^{−Rate·(x−Shift)} for x ≥ Shift.
func (e Exponential) PDF(x float64) float64 {
	if x < e.Shift {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*(x-e.Shift))
}

// CDF returns 1 − e^{−Rate·(x−Shift)}.
func (e Exponential) CDF(x float64) float64 {
	if x <= e.Shift {
		return 0
	}
	return -math.Expm1(-e.Rate * (x - e.Shift))
}

// Quantile returns Shift − ln(1−p)/Rate.
func (e Exponential) Quantile(p float64) float64 {
	p = clamp01(p)
	if p == 1 {
		return math.Inf(1)
	}
	return e.Shift - math.Log1p(-p)/e.Rate
}

// TruncExponential is a shifted Exponential restricted and renormalized to
// the window [Shift, Shift+T]: X = Shift + Y with Y ~ Exp(Rate) conditioned
// on Y ≤ T.
type TruncExponential struct {
	Rate, Shift, T float64
}

// NewTruncExponential returns the shifted Exponential with the given rate
// truncated to [shift, shift+T]. It panics if rate <= 0 or T <= 0.
func NewTruncExponential(rate, shift, T float64) TruncExponential {
	if rate <= 0 {
		panic(fmt.Sprintf("dist: TruncExponential with non-positive rate %v", rate))
	}
	if T <= 0 {
		panic(fmt.Sprintf("dist: TruncExponential with non-positive window %v", T))
	}
	return TruncExponential{Rate: rate, Shift: shift, T: T}
}

// NewTruncExponentialMass returns a shifted Exponential with the given
// rate, truncated to its lower `mass` quantiles (T = −ln(1−mass)/rate) and
// shifted so that the truncated mean is exactly mean. This is the paper's
// §5.1 Exponential uncertainty model: the object's expected value is pinned
// at the original data point while the domain region stays finite. It
// panics if rate <= 0 or mass ∉ (0, 1).
func NewTruncExponentialMass(mean, rate, mass float64) TruncExponential {
	if mass <= 0 || mass >= 1 {
		panic(fmt.Sprintf("dist: TruncExponentialMass with mass %v outside (0,1)", mass))
	}
	T := -math.Log1p(-mass) / rate
	// Mean of Exp(rate) conditioned on Y ≤ T: 1/rate − T·(1−mass)/mass.
	meanY := 1/rate - T*(1-mass)/mass
	return NewTruncExponential(rate, mean-meanY, T)
}

// mass returns the captured probability M = 1 − e^{−Rate·T}.
func (t TruncExponential) mass() float64 { return -math.Expm1(-t.Rate * t.T) }

// meanY returns E[Y | Y ≤ T] for Y ~ Exp(Rate).
func (t TruncExponential) meanY() float64 {
	m := t.mass()
	return 1/t.Rate - t.T*(1-m)/m
}

// Mean returns Shift + E[Y | Y ≤ T].
func (t TruncExponential) Mean() float64 { return t.Shift + t.meanY() }

// SecondMoment returns E[(Shift+Y)²] with Y the truncated exponential part.
func (t TruncExponential) SecondMoment() float64 {
	my := t.meanY()
	m2 := t.secondMomentY()
	return t.Shift*t.Shift + 2*t.Shift*my + m2
}

// secondMomentY returns E[Y² | Y ≤ T]:
//
//	[2/λ² − e^{−λT}(T² + 2T/λ + 2/λ²)] / M
func (t TruncExponential) secondMomentY() float64 {
	l := t.Rate
	m := t.mass()
	return (2/(l*l) - (1-m)*(t.T*t.T+2*t.T/l+2/(l*l))) / m
}

// Var returns E[Y²|Y≤T] − E[Y|Y≤T]².
func (t TruncExponential) Var() float64 {
	my := t.meanY()
	return t.secondMomentY() - my*my
}

// Support returns [Shift, Shift+T].
func (t TruncExponential) Support() (float64, float64) { return t.Shift, t.Shift + t.T }

// Sample draws by inverse-CDF transform (one uniform variate per draw).
func (t TruncExponential) Sample(r *rng.RNG) float64 {
	return t.Quantile(r.Float64())
}

// PDF returns the renormalized exponential density inside the window.
func (t TruncExponential) PDF(x float64) float64 {
	y := x - t.Shift
	if y < 0 || y > t.T {
		return 0
	}
	return t.Rate * math.Exp(-t.Rate*y) / t.mass()
}

// CDF returns (1 − e^{−Rate·(x−Shift)})/M clamped to [0, 1].
func (t TruncExponential) CDF(x float64) float64 {
	y := x - t.Shift
	if y <= 0 {
		return 0
	}
	if y >= t.T {
		return 1
	}
	return -math.Expm1(-t.Rate*y) / t.mass()
}

// Quantile returns Shift − ln(1 − p·M)/Rate, clamped to the support.
func (t TruncExponential) Quantile(p float64) float64 {
	p = clamp01(p)
	y := -math.Log1p(-p*t.mass()) / t.Rate
	if y > t.T {
		y = t.T
	}
	return t.Shift + y
}
