package dist

import (
	"fmt"
	"sort"

	"ucpc/internal/rng"
)

// Discrete is a finite atomic distribution: probability weight w_i on
// support point x_i. It backs empirical marginals (objects built from
// sample clouds) and the "D:" tokens of the ucsv serialization.
//
// The atoms are stored sorted ascending; the moments are exact weighted
// sums. Construct with NewDiscrete — the zero value is unusable.
type Discrete struct {
	xs []float64 // sorted ascending
	cw []float64 // cumulative weights; cw[len-1] == 1
	mu float64
	m2 float64
}

// NewDiscrete returns the atomic distribution with the given support points
// and weights. A nil or empty weights slice means uniform 1/n weights.
// Weights need not be normalized (they are rescaled to sum to 1) but must
// be non-negative with a positive sum. It panics on empty xs, mismatched
// lengths, or invalid weights.
func NewDiscrete(xs, ws []float64) Discrete {
	n := len(xs)
	if n == 0 {
		panic("dist: Discrete with no support points")
	}
	if ws != nil && len(ws) != n {
		panic(fmt.Sprintf("dist: Discrete with %d points but %d weights", n, len(ws)))
	}
	type atom struct{ x, w float64 }
	atoms := make([]atom, n)
	var total float64
	for i, x := range xs {
		w := 1.0
		if ws != nil {
			w = ws[i]
			if w < 0 {
				panic(fmt.Sprintf("dist: Discrete with negative weight %v", w))
			}
		}
		atoms[i] = atom{x: x, w: w}
		total += w
	}
	if total <= 0 {
		panic("dist: Discrete with zero total weight")
	}
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].x < atoms[j].x })

	d := Discrete{
		xs: make([]float64, n),
		cw: make([]float64, n),
	}
	acc := 0.0
	for i, a := range atoms {
		w := a.w / total
		d.xs[i] = a.x
		acc += w
		d.cw[i] = acc
		d.mu += w * a.x
		d.m2 += w * a.x * a.x
	}
	d.cw[n-1] = 1 // absorb accumulation error so CDF tops out exactly at 1
	return d
}

// N returns the number of stored atoms (duplicates count separately).
func (d Discrete) N() int { return len(d.xs) }

// Mean returns Σ w_i·x_i.
func (d Discrete) Mean() float64 { return d.mu }

// SecondMoment returns Σ w_i·x_i².
func (d Discrete) SecondMoment() float64 { return d.m2 }

// Var returns the exact weighted variance.
func (d Discrete) Var() float64 { return d.m2 - d.mu*d.mu }

// Support returns [min x_i, max x_i].
func (d Discrete) Support() (float64, float64) { return d.xs[0], d.xs[len(d.xs)-1] }

// Sample draws an atom by inverse CDF (one uniform variate per draw).
func (d Discrete) Sample(r *rng.RNG) float64 {
	u := r.Float64()
	i := sort.Search(len(d.cw), func(i int) bool { return d.cw[i] > u })
	if i == len(d.xs) {
		i--
	}
	return d.xs[i]
}

// weight returns the probability mass of atom i.
func (d Discrete) weight(i int) float64 {
	if i == 0 {
		return d.cw[0]
	}
	return d.cw[i] - d.cw[i-1]
}

// PDF returns the total probability mass at exactly x (0 off the atoms).
func (d Discrete) PDF(x float64) float64 {
	i := sort.SearchFloat64s(d.xs, x)
	var p float64
	for ; i < len(d.xs) && d.xs[i] == x; i++ {
		p += d.weight(i)
	}
	return p
}

// CDF returns Σ_{x_i ≤ x} w_i.
func (d Discrete) CDF(x float64) float64 {
	// First index with xs[i] > x; cumulative weight of everything before.
	i := sort.Search(len(d.xs), func(i int) bool { return d.xs[i] > x })
	if i == 0 {
		return 0
	}
	return d.cw[i-1]
}

// Quantile returns the smallest atom x with CDF(x) ≥ p.
func (d Discrete) Quantile(p float64) float64 {
	p = clamp01(p)
	i := sort.Search(len(d.cw), func(i int) bool { return d.cw[i] >= p })
	if i == len(d.xs) {
		i--
	}
	return d.xs[i]
}
