package foptics

import (
	"context"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

func denseGroups(r *rng.RNG, k, per int) uncertain.Dataset {
	var ds uncertain.Dataset
	id := 0
	for g := 0; g < k; g++ {
		for i := 0; i < per; i++ {
			ms := []dist.Distribution{
				dist.NewTruncNormalCentral(20*float64(g)+r.Normal(0, 0.5), 0.2, 0.95),
				dist.NewTruncNormalCentral(20*float64(g)+r.Normal(0, 0.5), 0.2, 0.95),
			}
			ds = append(ds, uncertain.NewObject(id, ms).WithLabel(g))
			id++
		}
	}
	return ds
}

func TestFOPTICSSeparatedGroups(t *testing.T) {
	r := rng.New(1)
	ds := denseGroups(r, 3, 15)
	rep, err := (&FOPTICS{}).Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	// No extracted cluster may span two true groups.
	groupOf := map[int]int{}
	for i, o := range ds {
		c := rep.Partition.Assign[i]
		if c == clustering.Noise {
			continue
		}
		if g, ok := groupOf[c]; ok && g != o.Label {
			t.Fatalf("cluster %d spans groups %d and %d", c, g, o.Label)
		}
		groupOf[c] = o.Label
	}
	if rep.Partition.K < 2 {
		t.Errorf("extracted %d clusters, want close to 3", rep.Partition.K)
	}
}

func TestOrderingCoversAllObjects(t *testing.T) {
	r := rng.New(2)
	ds := denseGroups(r, 2, 10)
	ds.EnsureSamples(r.Split(1), 8)
	dm, err := fuzzyDistances(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := computeOrdering(context.Background(), len(ds), 4, func(i, j int) float64 { return dm[i][j] })
	if err != nil {
		t.Fatal(err)
	}
	if len(ord.Order) != len(ds) {
		t.Fatalf("ordering visits %d of %d objects", len(ord.Order), len(ds))
	}
	seen := make([]bool, len(ds))
	for _, i := range ord.Order {
		if seen[i] {
			t.Fatalf("object %d visited twice", i)
		}
		seen[i] = true
	}
}

// Reachability of objects inside a dense group must be far below the jump
// onto the next group: the ordering separates groups by construction.
func TestReachabilityPlotHasJumps(t *testing.T) {
	r := rng.New(3)
	ds := denseGroups(r, 2, 12)
	ds.EnsureSamples(r.Split(1), 8)
	dm, err := fuzzyDistances(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := computeOrdering(context.Background(), len(ds), 4, func(i, j int) float64 { return dm[i][j] })
	if err != nil {
		t.Fatal(err)
	}
	var maxReach, secondMax float64
	for _, rd := range ord.Reach {
		if math.IsInf(rd, 1) {
			continue
		}
		if rd > maxReach {
			maxReach, secondMax = rd, maxReach
		} else if rd > secondMax {
			secondMax = rd
		}
	}
	// The single inter-group jump should dominate everything else.
	if maxReach < 5*secondMax {
		t.Errorf("no clear reachability jump: max %v, second %v", maxReach, secondMax)
	}
}

func TestFuzzyDistanceSymmetryAndSelf(t *testing.T) {
	r := rng.New(4)
	ds := denseGroups(r, 2, 6)
	ds.EnsureSamples(r.Split(1), 8)
	dm, err := fuzzyDistances(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dm {
		if dm[i][i] != 0 {
			t.Errorf("self distance %v", dm[i][i])
		}
		for j := range dm {
			if dm[i][j] != dm[j][i] {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
			if dm[i][j] < 0 {
				t.Errorf("negative distance at (%d,%d)", i, j)
			}
		}
	}
}

func TestExtractKDegenerate(t *testing.T) {
	// All-infinite reachability (n=1 walk seeds only).
	ord := &Ordering{
		Order: []int{0, 1},
		Reach: []float64{math.Inf(1), math.Inf(1)},
		CoreDist: []float64{
			1, 1,
		},
	}
	assign, clusters := ExtractK(ord, 2, 2)
	if clusters < 1 || len(assign) != 2 {
		t.Errorf("degenerate extraction: %d clusters, assign %v", clusters, assign)
	}
}

func TestFOPTICSSmallDataset(t *testing.T) {
	r := rng.New(5)
	ds := denseGroups(r, 1, 3)
	rep, err := (&FOPTICS{}).Cluster(context.Background(), ds, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Partition.Assign) != 3 {
		t.Error("wrong assignment length")
	}
}

var _ clustering.Algorithm = (*FOPTICS)(nil)
