// Package foptics implements FOPTICS (Kriegel & Pfeifle, ICDM 2005; paper
// ref. [13]): hierarchical density-based cluster ordering of uncertain
// objects, plus a threshold-based extraction step that turns the ordering
// into a flat partition.
//
// Substitution note (see DESIGN.md): fuzzy distances between uncertain
// objects are estimated as the mean Euclidean distance over paired samples
// of the two objects' clouds, replacing the original paper's closed-form
// lens computations while preserving the algorithm's structure and its
// quadratic cost profile.
package foptics

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

func init() {
	clustering.Register(clustering.Registration{
		Name: "FOPT", Rank: 120, Prototype: clustering.ProtoUCentroid, KIsHint: true,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &FOPTICS{}
		},
	})
}

// FOPTICS is the fuzzy OPTICS algorithm.
type FOPTICS struct {
	// MinPts is the density parameter (0 = default 4).
	MinPts int
	// Samples is the per-object cloud size (0 = default 8).
	Samples int
}

// Name implements clustering.Algorithm.
func (a *FOPTICS) Name() string { return "FOPT" }

// Ordering is the OPTICS output: the visit order with per-position
// reachability and core distances.
type Ordering struct {
	Order     []int
	Reach     []float64 // reachability distance of Order[i] (Inf for seeds)
	CoreDist  []float64 // core distance of Order[i]
	Distances func(i, j int) float64
}

// Cluster computes the cluster ordering and extracts the flat partition
// whose cluster count is closest to k.
func (a *FOPTICS) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	ctx = clustering.Ctx(ctx)
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := len(ds)
	minPts := a.MinPts
	if minPts == 0 {
		minPts = 4
	}
	if minPts >= n {
		minPts = n - 1
	}
	if minPts < 1 {
		return nil, fmt.Errorf("foptics: dataset too small (n=%d)", n)
	}
	samples := a.Samples
	if samples == 0 {
		samples = 8
	}

	// Off-line: clouds and the fuzzy distance matrix.
	offStart := time.Now()
	ds.EnsureSamples(r.Split(0xf0b7), samples)
	dm, err := fuzzyDistances(ctx, ds)
	if err != nil {
		return nil, err
	}
	offline := time.Since(offStart)

	start := time.Now()
	ord, err := computeOrdering(ctx, n, minPts, func(i, j int) float64 { return dm[i][j] })
	if err != nil {
		return nil, err
	}
	assign, clusters := ExtractK(ord, k, n)
	online := time.Since(start)

	if clusters == 0 {
		clusters = 1
	}
	return &clustering.Report{
		Partition:  clustering.Partition{K: clusters, Assign: assign},
		Objective:  math.NaN(),
		Iterations: 1,
		Converged:  true,
		Online:     online,
		Offline:    offline,
	}, nil
}

// fuzzyDistances estimates E[d(o_i, o_j)] (Euclidean) by averaging over
// paired cloud samples.
func fuzzyDistances(ctx context.Context, ds uncertain.Dataset) ([][]float64, error) {
	n := len(ds)
	dm := make([][]float64, n)
	for i := range dm {
		dm[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		si := ds[i].Samples()
		for j := i + 1; j < n; j++ {
			sj := ds[j].Samples()
			s := len(si)
			if len(sj) < s {
				s = len(sj)
			}
			var acc float64
			for t := 0; t < s; t++ {
				acc += vec.Dist(si[t], sj[t])
			}
			d := acc / float64(s)
			dm[i][j], dm[j][i] = d, d
		}
	}
	return dm, nil
}

// computeOrdering is the standard OPTICS loop (no spatial index, O(n²)),
// parameterized by a distance oracle.
func computeOrdering(ctx context.Context, n, minPts int, dist func(i, j int) float64) (*Ordering, error) {
	coreDist := make([]float64, n)
	tmp := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tmp = tmp[:0]
		for j := 0; j < n; j++ {
			if j != i {
				tmp = append(tmp, dist(i, j))
			}
		}
		sort.Float64s(tmp)
		coreDist[i] = tmp[minPts-1]
	}

	processed := make([]bool, n)
	reach := make([]float64, n)
	for i := range reach {
		reach[i] = math.Inf(1)
	}
	order := make([]int, 0, n)
	orderReach := make([]float64, 0, n)
	orderCore := make([]float64, 0, n)

	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		// Seed a new walk.
		cur := start
		curReach := math.Inf(1)
		for cur >= 0 {
			if len(order)%256 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			processed[cur] = true
			order = append(order, cur)
			orderReach = append(orderReach, curReach)
			orderCore = append(orderCore, coreDist[cur])
			// Update reachabilities of unprocessed objects.
			for j := 0; j < n; j++ {
				if processed[j] {
					continue
				}
				rd := math.Max(coreDist[cur], dist(cur, j))
				if rd < reach[j] {
					reach[j] = rd
				}
			}
			// Next: unprocessed object with smallest reachability.
			next, nextReach := -1, math.Inf(1)
			for j := 0; j < n; j++ {
				if !processed[j] && reach[j] < nextReach {
					next, nextReach = j, reach[j]
				}
			}
			cur, curReach = next, nextReach
		}
	}
	return &Ordering{Order: order, Reach: orderReach, CoreDist: orderCore}, nil
}

// ExtractK extracts a flat clustering from the ordering by scanning
// candidate reachability thresholds and keeping the one whose cluster count
// is closest to k (ties prefer fewer noise objects). Objects whose
// reachability and core distance both exceed the threshold become noise.
func ExtractK(ord *Ordering, k, n int) (assign []int, clusters int) {
	// Candidate thresholds: quantiles of the finite reachability values.
	finite := make([]float64, 0, n)
	for _, rd := range ord.Reach {
		if !math.IsInf(rd, 1) {
			finite = append(finite, rd)
		}
	}
	if len(finite) == 0 {
		// Single walk with no reachable pairs: everything in one cluster.
		assign = make([]int, n)
		return assign, 1
	}
	sort.Float64s(finite)
	candidates := make([]float64, 0, 64)
	for q := 1; q <= 64; q++ {
		idx := (len(finite) - 1) * q / 64
		candidates = append(candidates, finite[idx]*1.0000001)
	}

	bestAssign := make([]int, n)
	bestClusters := -1
	bestScore := math.Inf(1)
	cur := make([]int, n)
	for _, t := range candidates {
		c, noise := cutAt(ord, t, cur)
		score := math.Abs(float64(c-k)) + float64(noise)/float64(4*n)
		if c > 0 && score < bestScore {
			bestScore = score
			bestClusters = c
			copy(bestAssign, cur)
		}
	}
	if bestClusters < 0 {
		// Degenerate: one big cluster.
		for i := range bestAssign {
			bestAssign[i] = 0
		}
		bestClusters = 1
	}
	return bestAssign, bestClusters
}

// cutAt assigns cluster ids by walking the ordering with threshold t.
func cutAt(ord *Ordering, t float64, assign []int) (clusters, noise int) {
	for i := range assign {
		assign[i] = clustering.Noise
	}
	cid := -1
	for pos, obj := range ord.Order {
		if ord.Reach[pos] > t {
			if ord.CoreDist[pos] <= t {
				cid++
				assign[obj] = cid
			} else {
				noise++
			}
			continue
		}
		if cid < 0 {
			cid = 0
		}
		assign[obj] = cid
	}
	return cid + 1, noise
}
