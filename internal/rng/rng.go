// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by every stochastic component of the repository
// (uncertainty generation, Monte Carlo integration, sample-based clustering,
// dataset synthesis).
//
// The core generator is SplitMix64 (Steele, Lea, Flood; "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014), chosen because it is tiny,
// fast, passes BigCrush when used as a 64-bit stream, and — crucially for
// reproducible experiments — supports cheap deterministic splitting so that
// every dataset/object/run gets an independent stream derived from a single
// experiment seed.
package rng

import "math"

// RNG is a deterministic pseudo-random generator. The zero value is a valid
// generator seeded with 0; use New for explicit seeding.
type RNG struct {
	state uint64
	// cached second Box-Muller variate
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Split returns a new generator whose stream is a deterministic function of
// the parent's seed and the given stream label, without disturbing the
// parent's own sequence.
func (r *RNG) Split(label uint64) *RNG {
	// Mix the label through the SplitMix64 finalizer against the current
	// state so that distinct labels give uncorrelated streams.
	z := r.state + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits mapped to [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly 0 or 1.
// Useful as input to inverse-CDF transforms that diverge at the endpoints.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection-free enough for our n; modulo bias is
	// negligible for n ≪ 2^64 but we use the widening-multiply trick anyway.
	return int((r.Uint64() >> 1) % uint64(n)) // keep it simple and portable
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Norm returns a standard Normal sample via the Box–Muller transform
// (polar-free form; the second variate is cached).
func (r *RNG) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	u1 := r.Float64Open()
	u2 := r.Float64()
	radius := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	r.gauss = radius * math.Sin(theta)
	r.hasGauss = true
	return radius * math.Cos(theta)
}

// Normal returns a Normal(mu, sigma) sample.
func (r *RNG) Normal(mu, sigma float64) float64 { return mu + sigma*r.Norm() }

// Exp returns a standard Exponential(rate=1) sample via inverse CDF.
func (r *RNG) Exp() float64 { return -math.Log(r.Float64Open()) }

// Exponential returns an Exponential sample with the given rate (mean 1/rate).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	return r.Exp() / rate
}
