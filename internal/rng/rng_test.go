package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split streams with different labels coincide")
	}
	// Splitting must not advance the parent stream.
	p1 := New(7)
	if parent.Uint64() != p1.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split(5)
	b := New(9).Split(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		u := r.Float64()
		sum += u
		sq += u * u
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(17)
	const n = 200000
	const rate = 2.5
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := r.Exponential(rate)
		if x < 0 {
			t.Fatalf("negative exponential sample %v", x)
		}
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("exp mean = %v, want ~%v", mean, 1/rate)
	}
	if math.Abs(variance-1/(rate*rate)) > 0.02 {
		t.Errorf("exp variance = %v, want ~%v", variance, 1/(rate*rate))
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(19)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v]++
	}
	for v := 0; v < 7; v++ {
		if seen[v] == 0 {
			t.Errorf("Intn never produced %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPerm(t *testing.T) {
	r := New(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleEmptyAndSingle(t *testing.T) {
	r := New(29)
	r.Shuffle(0, func(i, j int) { t.Fatal("swap called for n=0") })
	r.Shuffle(1, func(i, j int) { t.Fatal("swap called for n=1") })
}

func TestUniformRange(t *testing.T) {
	r := New(31)
	for i := 0; i < 1000; i++ {
		u := r.Uniform(-3, 5)
		if u < -3 || u >= 5 {
			t.Fatalf("Uniform(-3,5) = %v out of range", u)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
