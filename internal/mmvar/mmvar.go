// Package mmvar implements the MMVar algorithm (Gullo, Ponti, Tagarelli,
// ICDM 2010; paper §2.3): partitional clustering of uncertain objects that
// minimizes Σ_C J_MM(C), where J_MM(C) = σ²(C_MM) is the variance of the
// cluster's mixture-model centroid C_MM = (∪R, |C|⁻¹Σf).
//
// Like UCPC, MMVar is a local-search relocation heuristic with O(I·k·n·m)
// complexity; by Proposition 2 its objective equals J_UK(C)/|C|, which this
// implementation exploits through the shared closed-form cluster statistics.
package mmvar

import (
	"context"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// MMVar is the mixture-model variance minimization algorithm.
type MMVar struct {
	// MaxIter caps relocation passes (0 = default 100).
	MaxIter int
	// MinImprove is the minimum relative decrease for a relocation
	// (0 = 1e-12), guarding termination against floating-point jitter.
	MinImprove float64
	// Pruning toggles the exact bound-based pruning of the relocation
	// candidate scans (core.RelocEngine). Default on; by Proposition 2 the
	// J_MM add-score decomposes like UCPC's, so the same O(1) lower bounds
	// apply and the partition is identical either way.
	Pruning clustering.PruneMode
	// Progress, when non-nil, observes every pass with the objective
	// Σ_C J_MM(C) and the number of relocations applied.
	Progress clustering.ProgressFunc
}

// Name implements clustering.Algorithm.
func (a *MMVar) Name() string { return "MMV" }

// Cluster partitions ds into k clusters by mixture-variance minimization.
func (a *MMVar) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	return a.cluster(ctx, ds, k, nil, r)
}

// ClusterFrom implements clustering.WarmStarter: the relocation passes
// start from the given assignment (empty clusters repaired from r) instead
// of a random partition.
func (a *MMVar) ClusterFrom(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	if err := clustering.ValidateInit("mmvar", init, len(ds), k); err != nil {
		return nil, err
	}
	return a.cluster(ctx, ds, k, init, r)
}

func (a *MMVar) cluster(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	ctx = clustering.Ctx(ctx)
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n, m := len(ds), ds.Dims()
	if err := clustering.ValidateK("mmvar", k, n); err != nil {
		return nil, err
	}
	maxIter := a.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	minImprove := a.MinImprove
	if minImprove == 0 {
		minImprove = 1e-12
	}
	start := time.Now()

	// Flat moment store: the relocation passes below only read these
	// contiguous rows (the J_MM scoring needs µ and µ₂ alone).
	mom := uncertain.MomentsOf(ds)
	var assign []int
	if init != nil {
		assign = clustering.RepairEmpty(append([]int(nil), init...), k, r)
	} else {
		assign = clustering.RandomPartition(n, k, r)
	}
	stats := make([]*core.Stats, k)
	for c := range stats {
		stats[c] = core.NewStats(m)
	}
	for i := 0; i < n; i++ {
		stats[assign[i]].AddRow(mom.Mu(i), mom.Mu2(i), mom.Sigma2(i))
	}

	// The relocation passes run on the shared incremental-statistics engine
	// (core.RelocEngine): by Proposition 2 the J_MM scores reduce to the
	// same per-cluster scalars as UCPC's, so candidate evaluation is O(1)
	// on a dot-cache hit and the objective is maintained by applied deltas.
	eng := core.NewRelocEngine(core.RelocMMVar, mom, stats, a.Pruning.Enabled())
	iterations, converged := 0, false
	for iterations < maxIter {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iterations++
		moves, err := eng.Pass(ctx, assign, minImprove)
		if err != nil {
			return nil, err
		}
		a.Progress.Emit(a.Name(), iterations, eng.Objective(), moves)
		if moves == 0 {
			converged = true
			break
		}
	}

	pruned, scanned := eng.Counters()
	return &clustering.Report{
		Partition:         clustering.Partition{K: k, Assign: assign},
		Objective:         eng.Objective(),
		Iterations:        iterations,
		Converged:         converged,
		Online:            time.Since(start),
		PrunedCandidates:  pruned,
		ScannedCandidates: scanned,
	}, nil
}

// Centroid is the MMVar mixture-model centroid C_MM of a cluster: an
// uncertain object whose region is the union of the member regions and
// whose pdf is the average of the member pdfs (paper eq. 10).
type Centroid struct {
	members []*uncertain.Object
	region  vec.Box
	mu, mu2 vec.Vector
}

// NewCentroid builds the mixture centroid of a non-empty cluster.
func NewCentroid(members []*uncertain.Object) *Centroid {
	if len(members) == 0 {
		panic("mmvar: centroid of empty cluster")
	}
	m := members[0].Dims()
	n := float64(len(members))
	c := &Centroid{
		members: members,
		region:  members[0].Region(),
		mu:      vec.New(m),
		mu2:     vec.New(m),
	}
	for i, o := range members {
		if i > 0 {
			c.region = c.region.Union(o.Region())
		}
		vec.AddInPlace(c.mu, o.Mean())
		vec.AddInPlace(c.mu2, o.SecondMoment())
	}
	// Lemma 2: µ(C_MM) = |C|⁻¹Σµ(o), µ₂(C_MM) = |C|⁻¹Σµ₂(o).
	vec.ScaleInPlace(c.mu, 1/n)
	vec.ScaleInPlace(c.mu2, 1/n)
	return c
}

// Region returns the union region R_MM.
func (c *Centroid) Region() vec.Box { return c.region }

// Mean returns µ(C_MM). Shared slice; do not modify.
func (c *Centroid) Mean() vec.Vector { return c.mu }

// SecondMoment returns µ₂(C_MM). Shared slice; do not modify.
func (c *Centroid) SecondMoment() vec.Vector { return c.mu2 }

// TotalVar returns σ²(C_MM) = Σ_j [(µ₂)_j − µ_j²], the MMVar cluster
// compactness J_MM (paper eq. 11).
func (c *Centroid) TotalVar() float64 {
	var v float64
	for j := range c.mu {
		v += c.mu2[j] - c.mu[j]*c.mu[j]
	}
	return v
}

// PDF evaluates the mixture density f_MM(x) = |C|⁻¹ Σ f_o(x).
func (c *Centroid) PDF(x vec.Vector) float64 {
	var p float64
	for _, o := range c.members {
		p += o.PDF(x)
	}
	return p / float64(len(c.members))
}

// Sample draws one realization of the mixture: pick a member uniformly,
// then sample it.
func (c *Centroid) Sample(r *rng.RNG) vec.Vector {
	return c.members[r.Intn(len(c.members))].Sample(r)
}
