package mmvar

import "ucpc/internal/clustering"

func init() {
	clustering.Register(clustering.Registration{
		Name: "MMV", Rank: 80, Prototype: clustering.ProtoMixture,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &MMVar{MaxIter: cfg.MaxIter, Pruning: cfg.Pruning, Progress: cfg.Progress}
		},
	})
}
