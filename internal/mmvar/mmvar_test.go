package mmvar

import (
	"context"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

func separable(r *rng.RNG, k, per, m int) uncertain.Dataset {
	var ds uncertain.Dataset
	id := 0
	for g := 0; g < k; g++ {
		for i := 0; i < per; i++ {
			ms := make([]dist.Distribution, m)
			for j := range ms {
				center := 12*float64(g) + r.Normal(0, 0.4)
				ms[j] = dist.NewTruncNormalCentral(center, 0.3, 0.95)
			}
			ds = append(ds, uncertain.NewObject(id, ms).WithLabel(g))
			id++
		}
	}
	return ds
}

func randomObjects(r *rng.RNG, n, m int) []*uncertain.Object {
	objs := make([]*uncertain.Object, n)
	for i := range objs {
		ms := make([]dist.Distribution, m)
		for j := range ms {
			ms[j] = dist.NewUniformAround(r.Uniform(-5, 5), 0.2+r.Float64())
		}
		objs[i] = uncertain.NewObject(i, ms)
	}
	return objs
}

// MMVar is a local search from a random partition; like the real algorithm
// it can land in local optima, so we require the best of a few restarts to
// recover the well-separated groups (mirrors the paper's multi-run
// averaging methodology).
func TestMMVarRecoversClusters(t *testing.T) {
	r := rng.New(10)
	ds := separable(r, 3, 20, 2)
	recovered := false
	for seed := uint64(0); seed < 5 && !recovered; seed++ {
		rep, err := (&MMVar{}).Cluster(context.Background(), ds, 3, rng.New(100+seed))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Converged {
			t.Error("no convergence")
		}
		recovered = true
		for g := 0; g < 3; g++ {
			seen := map[int]bool{}
			for i, o := range ds {
				if o.Label == g {
					seen[rep.Partition.Assign[i]] = true
				}
			}
			if len(seen) != 1 {
				recovered = false
			}
		}
	}
	if !recovered {
		t.Error("no restart recovered the separated groups")
	}
}

// Centroid moments must satisfy Lemma 2 and the TotalVar must equal the
// closed-form J_MM from the shared statistics.
func TestCentroidLemma2(t *testing.T) {
	r := rng.New(20)
	objs := randomObjects(r, 8, 3)
	c := NewCentroid(objs)
	n := float64(len(objs))
	wantMu := vec.New(3)
	wantM2 := vec.New(3)
	for _, o := range objs {
		vec.AddInPlace(wantMu, o.Mean())
		vec.AddInPlace(wantM2, o.SecondMoment())
	}
	vec.ScaleInPlace(wantMu, 1/n)
	vec.ScaleInPlace(wantM2, 1/n)
	if !vec.ApproxEqual(c.Mean(), wantMu, 1e-12) {
		t.Errorf("µ(C_MM) = %v, want %v", c.Mean(), wantMu)
	}
	if !vec.ApproxEqual(c.SecondMoment(), wantM2, 1e-12) {
		t.Errorf("µ₂(C_MM) = %v, want %v", c.SecondMoment(), wantM2)
	}
	s := core.NewStatsOf(objs)
	if math.Abs(c.TotalVar()-s.JMM()) > 1e-9*(1+s.JMM()) {
		t.Errorf("σ²(C_MM) = %v vs J_MM = %v", c.TotalVar(), s.JMM())
	}
}

// Mixture sampling must reproduce the mixture moments.
func TestCentroidSampleMoments(t *testing.T) {
	r := rng.New(30)
	objs := randomObjects(r, 5, 2)
	c := NewCentroid(objs)
	const n = 200000
	sum := vec.New(2)
	sq := vec.New(2)
	for i := 0; i < n; i++ {
		x := c.Sample(r)
		for j := range x {
			sum[j] += x[j]
			sq[j] += x[j] * x[j]
		}
	}
	for j := 0; j < 2; j++ {
		if math.Abs(sum[j]/n-c.Mean()[j]) > 0.03 {
			t.Errorf("dim %d: MC mean %v vs %v", j, sum[j]/n, c.Mean()[j])
		}
		if math.Abs(sq[j]/n-c.SecondMoment()[j]) > 0.05*(1+math.Abs(c.SecondMoment()[j])) {
			t.Errorf("dim %d: MC µ₂ %v vs %v", j, sq[j]/n, c.SecondMoment()[j])
		}
	}
}

// Mixture pdf integrates to 1 over the union region (2-D grid).
func TestCentroidPDFIntegrates(t *testing.T) {
	r := rng.New(40)
	objs := randomObjects(r, 3, 2)
	c := NewCentroid(objs)
	reg := c.Region()
	const steps = 300
	hx := (reg.Hi[0] - reg.Lo[0]) / steps
	hy := (reg.Hi[1] - reg.Lo[1]) / steps
	var integral float64
	for i := 0; i < steps; i++ {
		for j := 0; j < steps; j++ {
			x := vec.Vector{reg.Lo[0] + (float64(i)+0.5)*hx, reg.Lo[1] + (float64(j)+0.5)*hy}
			integral += c.PDF(x) * hx * hy
		}
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("mixture pdf integrates to %v", integral)
	}
}

// MMVar objective decreases monotonically (it is a local search like UCPC).
func TestMMVarMonotone(t *testing.T) {
	r := rng.New(50)
	ds := uncertain.Dataset(randomObjects(r, 50, 2))
	var history []float64
	alg := &MMVar{Progress: func(ev clustering.ProgressEvent) { history = append(history, ev.Objective) }}
	rep, err := alg.Cluster(context.Background(), ds, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Error("no convergence")
	}
	for i := 1; i < len(history); i++ {
		if history[i] > history[i-1]+1e-9*(1+math.Abs(history[i-1])) {
			t.Fatalf("objective increased at pass %d", i)
		}
	}
}

// Proposition 2 at the algorithm level: for any partition, the MMVar total
// objective equals Σ_C J_UK(C)/|C|.
func TestMMVarObjectiveProp2(t *testing.T) {
	r := rng.New(60)
	ds := uncertain.Dataset(randomObjects(r, 30, 2))
	rep, err := (&MMVar{}).Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	members := rep.Partition.Members()
	var want float64
	for _, ms := range members {
		objs := make([]*uncertain.Object, len(ms))
		for i, idx := range ms {
			objs[i] = ds[idx]
		}
		s := core.NewStatsOf(objs)
		want += s.JUK() / float64(len(ms))
	}
	if math.Abs(rep.Objective-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("objective %v vs Σ J_UK/|C| = %v", rep.Objective, want)
	}
}

func TestMMVarValidation(t *testing.T) {
	r := rng.New(70)
	ds := uncertain.Dataset(randomObjects(r, 5, 2))
	if _, err := (&MMVar{}).Cluster(context.Background(), ds, 0, r); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := (&MMVar{}).Cluster(context.Background(), ds, 6, r); err == nil {
		t.Error("k>n accepted")
	}
}

func TestCentroidEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty centroid")
		}
	}()
	NewCentroid(nil)
}

var _ clustering.Algorithm = (*MMVar)(nil)
