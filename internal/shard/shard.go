// Package shard implements the shard-parallel fitting coordinator behind
// ucpc.ShardedClusterer: P independent mini-batch stream engines
// (internal/stream) each consume a partition of the input, and a
// coordinator merges their weighted sufficient statistics (core.WStats)
// into one global centroid state.
//
// The design rests on the paper's Theorem-2/Theorem-3 read-out: every
// quantity a fit needs — centroid means S_c/W_c, additive variance terms
// Ψ_c/W_c², the objective estimate — is a function of *additive* per-cluster
// sums, so per-shard sums merge by plain addition. Addition is only
// meaningful when the shards describe the same cluster structure, which
// rests on four mechanisms:
//
//   - Broadcast alignment. Independent seeding would let every shard
//     converge to its own local optimum, and merging unrelated optima
//     averages structure away. So (for P > 1) the coordinator buffers the
//     first seed window, fits it once with the base seed, and warm-starts
//     every shard engine from the resulting centroids — positions only,
//     with zero statistical mass, so merged weights still account for
//     exactly the observed objects.
//
//   - Parameter-server re-sync. After every ingest round (for P > 1) the
//     coordinator tree-reduces the shards' statistics and broadcasts the
//     merged centroid read-out back to every engine (Engine.SyncCenters),
//     so the next round's assignments on every shard score against
//     globally informed positions instead of each shard's drifting local
//     trajectory. Only the scoring centers are synchronized — each
//     shard's statistics stay its own partition's sums, so the merge
//     still accounts for every object exactly once.
//
//   - Cluster correspondence. Each shard labels its k clusters in its own
//     arbitrary order. Before adding, the coordinator reconciles labels by
//     greedy centroid matching on the read-out means (globally smallest
//     pairwise distance first, ties broken toward the lowest index pair —
//     deterministic), so shards that discovered the same structure merge
//     structure-to-structure.
//
//   - Determinism under stragglers. Merging is a deterministic pairwise
//     tree reduction over the shard list in index order. A merge may run
//     with any subset of shards ready (the others contribute nothing yet);
//     because every merge re-reduces from the per-shard statistics — the
//     reduction over k·(m+3) scalars per shard costs microseconds — a late
//     shard is incorporated by simply merging again, and the final result
//     never depends on arrival order.
//
// Shards may live in other processes: AddRemote accepts a shard's
// statistics in the versioned WStats wire format (core.UnmarshalWStats)
// and folds it into every subsequent merge.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/stream"
	"ucpc/internal/uncertain"
)

// PartitionFunc routes one observed object to a shard in [0, shards). seq
// is the object's global arrival sequence number (0-based), so the default
// round-robin rule is simply seq % shards. A partitioner must be
// deterministic in (o, seq) for reproducible fits.
type PartitionFunc func(o *uncertain.Object, seq int64, shards int) int

// RoundRobin is the default partitioner: object seq goes to shard
// seq % shards, which spreads any arrival order evenly.
func RoundRobin(_ *uncertain.Object, seq int64, shards int) int {
	return int(seq % int64(shards))
}

// seedStride dissociates the per-shard RNG streams: shard i runs on
// seed + i·seedStride (an odd 64-bit constant, so the walk never collides
// with itself within any realistic shard count). Shard 0 keeps the base
// seed unchanged — a 1-shard coordinator is bit-identical to a single
// stream engine on the same configuration.
const seedStride = 0x9E3779B97F4A7C15

// Coordinator fans observed objects out to P stream engines and merges
// their statistics on demand. Observe calls serialize behind one mutex
// (the per-shard ingest inside an Observe still runs in parallel).
type Coordinator struct {
	mu   sync.Mutex
	k, p int
	cfg  clustering.StreamConfig
	part PartitionFunc

	engines []*stream.Engine
	bufs    []uncertain.Dataset // per-shard partition buffers, recycled
	seq     int64               // global arrival sequence

	// Broadcast alignment (P > 1 only): shards must track the same cluster
	// structure for their statistics to merge structure-to-structure, so
	// the coordinator routes the whole first seed window through shard 0
	// alone — which runs the base seed, so it replays a standalone
	// engine's seeding and early trajectory bit for bit — and then
	// warm-starts every other engine from shard 0's exported centroids,
	// positions only with zero statistical mass, so merged weights still
	// account for exactly the observed objects. Until the window is full,
	// observed objects wait in pending (arrival order; routes are still
	// computed eagerly so partitioner misbehavior surfaces immediately).
	aligned bool
	pending uncertain.Dataset

	remotes     []*core.WStats          // out-of-process shard statistics, arrival order
	remoteKeyed map[string]*core.WStats // keyed remote statistics, replaced per source
}

// New returns a coordinator for k clusters over `shards` engines. part nil
// means RoundRobin. Shard i runs on the base seed advanced by i·seedStride,
// so shard RNG streams are disjoint but the whole fit is reproducible from
// one StreamConfig.
func New(k, shards int, cfg clustering.StreamConfig, part PartitionFunc) (*Coordinator, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: %d shards: %w", shards, clustering.ErrBadConfig)
	}
	if part == nil {
		part = RoundRobin
	}
	co := &Coordinator{
		k:       k,
		p:       shards,
		cfg:     cfg,
		part:    part,
		engines: make([]*stream.Engine, shards),
		bufs:    make([]uncertain.Dataset, shards),
	}
	base := cfg.SeedOrDefault()
	for i := range co.engines {
		scfg := cfg
		scfg.Seed = base + uint64(i)*seedStride
		if scfg.Seed == 0 { // the RNG reserves seed 0
			scfg.Seed = clustering.DefaultSeed
		}
		eng, err := stream.New(k, scfg)
		if err != nil {
			return nil, err
		}
		co.engines[i] = eng
	}
	// A 1-shard coordinator needs no broadcast alignment — its only engine
	// seeds itself exactly like a standalone stream engine (bit-identical).
	co.aligned = shards == 1
	return co, nil
}

// Shards returns the number of local shard engines.
func (co *Coordinator) Shards() int { return co.p }

// Observe partitions objs across the shards and ingests every shard's
// portion concurrently. ctx is plumbed to each shard's engine (which checks
// it between mini-batches); the first shard failure cancels the remaining
// shards' ingest and is returned (lowest shard index wins when several fail
// together, so the reported error is deterministic).
func (co *Coordinator) Observe(ctx context.Context, objs uncertain.Dataset) error {
	ctx = clustering.Ctx(ctx)
	if len(objs) == 0 {
		return nil
	}
	if err := objs.Validate(); err != nil {
		return err
	}
	co.mu.Lock()
	defer co.mu.Unlock()

	if !co.aligned {
		// Buffer toward the broadcast seed window, routes computed (and
		// discarded — the window is consumed centrally by shard 0) so
		// partitioner misbehavior surfaces immediately. Arrivals beyond
		// the window fall through to the normal fan-out below once
		// alignment has run, so the sequential prefix stays one window
		// long no matter how large the first Observe call is.
		for len(objs) > 0 && len(co.pending) < co.alignWindow() {
			if _, err := co.routeLocked(objs[0]); err != nil {
				return err
			}
			co.pending = append(co.pending, objs[0])
			objs = objs[1:]
		}
		if len(co.pending) < co.alignWindow() {
			return nil
		}
		if err := co.alignLocked(ctx); err != nil {
			return err
		}
		if len(objs) == 0 {
			return nil
		}
	}

	for i := range co.bufs {
		co.bufs[i] = co.bufs[i][:0]
	}
	for _, o := range objs {
		s, err := co.routeLocked(o)
		if err != nil {
			return err
		}
		co.bufs[s] = append(co.bufs[s], o)
	}
	return co.runLocked(ctx)
}

// routeLocked assigns the next arrival to a shard, advancing the global
// sequence number; an out-of-range route is rejected as ErrBadConfig.
func (co *Coordinator) routeLocked(o *uncertain.Object) (int, error) {
	s := co.part(o, co.seq, co.p)
	if s < 0 || s >= co.p {
		return 0, fmt.Errorf("shard: partitioner routed object %d to shard %d of %d: %w",
			co.seq, s, co.p, clustering.ErrBadConfig)
	}
	co.seq++
	return s, nil
}

// alignWindow is the broadcast seed-window size: one mini-batch, and never
// fewer than k objects.
func (co *Coordinator) alignWindow() int {
	if bs := co.cfg.BatchSizeOrDefault(); bs > co.k {
		return bs
	}
	return co.k
}

// alignLocked performs the broadcast alignment: shard 0 — which runs the
// base seed, so it is bit-identical to a standalone engine on the same
// configuration — consumes the buffered seed window (replaying exactly the
// best-of-two seeding and Lloyd window refinement a single engine runs on
// its first window, and keeping the refined statistics), and every other
// shard engine is then warm-started from shard 0's exported centroids with
// zero statistical mass. From here on every shard scores arrivals against
// the same structure, so the per-shard statistics describe corresponding
// clusters and the merge is structure-to-structure instead of averaging
// unrelated local optima.
//
// That shard 0 keeps the window's refined statistics — rather than every
// shard re-scoring the window in one pass from zero mass — matters: with
// cumulative (Decay 0) statistics the early trajectory dominates the final
// read-out, and discarding the refinement bakes a permanent quality
// deficit into the fan-out. The sequential prefix is exactly one window,
// so the fan-out's Amdahl ceiling stays high.
func (co *Coordinator) alignLocked(ctx context.Context) error {
	if err := co.engines[0].Observe(ctx, co.pending); err != nil {
		return fmt.Errorf("shard 0: %w", err)
	}
	st, err := co.engines[0].ExportStats()
	if err != nil {
		return err
	}
	m := st.WS.Dims()
	zero := make([]float64, co.k)
	base := co.cfg.SeedOrDefault()
	for i := 1; i < co.p; i++ {
		ecfg := co.cfg
		ecfg.Seed = base + uint64(i)*seedStride
		if ecfg.Seed == 0 { // the RNG reserves seed 0
			ecfg.Seed = clustering.DefaultSeed
		}
		eng, err := stream.NewFrom(co.k, m, st.Means, st.Adds, zero, ecfg)
		if err != nil {
			return err
		}
		co.engines[i] = eng
	}
	co.aligned = true
	co.pending = nil
	return nil
}

// runLocked drains the partition buffers into the shard engines, all
// shards ingesting concurrently.
func (co *Coordinator) runLocked(ctx context.Context) error {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, co.p)
	var wg sync.WaitGroup
	for i := 0; i < co.p; i++ {
		if len(co.bufs[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := co.engines[i].Observe(sctx, co.bufs[i]); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				cancel()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if co.p > 1 {
		return co.syncLocked()
	}
	return nil
}

// AddRemote folds an out-of-process shard's statistics — a payload produced
// by core.WStats.MarshalBinary on the remote side — into every subsequent
// merge. The payload is decoded and validated up front (wrapped
// ErrBadModelFormat / ErrModelVersion on malformed input) and must match
// the coordinator's k; its dimensionality fixes the coordinator's if no
// local shard has observed anything yet, and must match otherwise.
func (co *Coordinator) AddRemote(payload []byte) error {
	ws, err := core.UnmarshalWStats(payload)
	if err != nil {
		return err
	}
	if ws.K() != co.k {
		return fmt.Errorf("shard: remote statistics carry k=%d, coordinator fits k=%d: %w",
			ws.K(), co.k, clustering.ErrBadModelFormat)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, prev := range co.remotes {
		if prev.Dims() != ws.Dims() {
			return fmt.Errorf("shard: remote statistics dim %d vs %d: %w",
				ws.Dims(), prev.Dims(), uncertain.ErrDimMismatch)
		}
		break
	}
	co.remotes = append(co.remotes, ws)
	return nil
}

// SetRemote folds an out-of-process shard's statistics under a stable
// source key, *replacing* whatever that source reported before. This is
// the idempotent sibling of AddRemote for periodic federation pushes: an
// edge that re-exports its cumulative statistics every few seconds must
// not be counted once per push, so each push supersedes the previous one.
// Validation matches AddRemote (k must match; dims must agree with every
// other operand).
func (co *Coordinator) SetRemote(source string, payload []byte) error {
	if source == "" {
		return fmt.Errorf("shard: empty remote source key: %w", clustering.ErrBadConfig)
	}
	ws, err := core.UnmarshalWStats(payload)
	if err != nil {
		return err
	}
	if ws.K() != co.k {
		return fmt.Errorf("shard: remote statistics carry k=%d, coordinator fits k=%d: %w",
			ws.K(), co.k, clustering.ErrBadModelFormat)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, prev := range co.remotes {
		if prev.Dims() != ws.Dims() {
			return fmt.Errorf("shard: remote statistics dim %d vs %d: %w",
				ws.Dims(), prev.Dims(), uncertain.ErrDimMismatch)
		}
		break
	}
	for _, prev := range co.remoteKeyed {
		if prev.Dims() != ws.Dims() {
			return fmt.Errorf("shard: remote statistics dim %d vs %d: %w",
				ws.Dims(), prev.Dims(), uncertain.ErrDimMismatch)
		}
		break
	}
	if co.remoteKeyed == nil {
		co.remoteKeyed = make(map[string]*core.WStats)
	}
	co.remoteKeyed[source] = ws
	return nil
}

// node is one merge-tree operand: statistics plus the authoritative
// centroid read-out (frozen positions survive for zero-weight clusters,
// which the statistics alone cannot place).
type node struct {
	ws          *core.WStats
	means, adds []float64
}

// nodeOf wraps a shard's exported state. Remote shards have no frozen
// read-out, so their node derives means/adds from the statistics (dead
// clusters sit at the origin with an infinite additive term and never
// attract a match ahead of a live cluster).
func nodeOf(ws *core.WStats, means, adds []float64) *node {
	k, m := ws.K(), ws.Dims()
	n := &node{ws: ws}
	if means != nil {
		n.means = append([]float64(nil), means...)
		n.adds = append([]float64(nil), adds...)
		return n
	}
	n.means = make([]float64, k*m)
	n.adds = make([]float64, k)
	for c := 0; c < k; c++ {
		n.adds[c] = math.Inf(1)
	}
	ws.CentersInto(n.means, n.adds)
	return n
}

// mergeNodes folds right into left under the greedy centroid
// correspondence and refreshes left's read-out. left is mutated and
// returned.
func mergeNodes(left, right *node) *node {
	onto := matchClusters(left, right)
	left.ws.MergeMapped(right.ws, onto)
	// Refresh the read-out: clusters with merged weight keep the exact
	// S/W read-out; weightless clusters keep left's frozen position (or
	// adopt right's, when only right has one — e.g. left never revived a
	// dead cluster that right re-seeded position-only).
	for c := 0; c < left.ws.K(); c++ {
		if left.ws.Weight(c) > 0 {
			continue
		}
		if math.IsInf(left.adds[c], 1) {
			for rc, d := range onto {
				if d == c && !math.IsInf(right.adds[rc], 1) {
					copy(left.means[c*left.ws.Dims():(c+1)*left.ws.Dims()], right.means[rc*left.ws.Dims():(rc+1)*left.ws.Dims()])
					left.adds[c] = right.adds[rc]
					break
				}
			}
		}
	}
	left.ws.CentersInto(left.means, left.adds)
	return left
}

// matchClusters computes the cluster correspondence onto[c] = left slot for
// right's cluster c, by greedy matching on squared distance between the
// nodes' centroid means: the globally closest unmatched (left, right) pair
// is fixed first, ties broken toward the lowest left index, then the lowest
// right index — fully deterministic. Pairs where either side has no weight
// score +Inf and are matched last, by the same index rule, so dead clusters
// absorb dead clusters instead of displacing live structure.
func matchClusters(left, right *node) []int {
	k, m := left.ws.K(), left.ws.Dims()
	cost := make([]float64, k*k) // cost[l*k+r]
	for l := 0; l < k; l++ {
		for r := 0; r < k; r++ {
			if left.ws.Weight(l) <= 0 || right.ws.Weight(r) <= 0 {
				cost[l*k+r] = math.Inf(1)
				continue
			}
			var d float64
			lm, rm := left.means[l*m:(l+1)*m], right.means[r*m:(r+1)*m]
			for j := 0; j < m; j++ {
				diff := lm[j] - rm[j]
				d += diff * diff
			}
			cost[l*k+r] = d
		}
	}
	onto := make([]int, k)
	usedL := make([]bool, k)
	usedR := make([]bool, k)
	for step := 0; step < k; step++ {
		bestL, bestR, bestD := -1, -1, math.Inf(1)
		for l := 0; l < k; l++ {
			if usedL[l] {
				continue
			}
			for r := 0; r < k; r++ {
				if usedR[r] {
					continue
				}
				if d := cost[l*k+r]; d < bestD {
					bestL, bestR, bestD = l, r, d
				}
			}
		}
		if bestL < 0 {
			// Only +Inf pairs remain: pair leftover indexes in order.
			for l := 0; l < k; l++ {
				if usedL[l] {
					continue
				}
				for r := 0; r < k; r++ {
					if !usedR[r] {
						onto[r] = l
						usedL[l], usedR[r] = true, true
						break
					}
				}
			}
			break
		}
		onto[bestR] = bestL
		usedL[bestL], usedR[bestR] = true, true
	}
	return onto
}

// Merge tree-reduces the ready shards' statistics into one global centroid
// state. Local shards that are still cold (fewer than k objects observed)
// are skipped — merge what's ready; a later Merge call re-reduces from
// scratch and picks them up. With no ready shard at all it fails with a
// wrapped ErrStreamCold.
//
// The reduction is a deterministic pairwise tree over the operand list
// (local shards in index order, then remote payloads in arrival order):
// rounds of merging operand 2i+1 into operand 2i. Identical operand states
// produce identical results regardless of when each shard became ready.
func (co *Coordinator) Merge() (*stream.Frozen, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	// A stream shorter than one seed window never filled the broadcast
	// alignment buffer: align on demand from whatever is buffered, the
	// same way a single engine seeds on demand when snapshotted early.
	if !co.aligned && len(co.pending) >= co.k {
		if err := co.alignLocked(context.Background()); err != nil {
			return nil, err
		}
	}
	return co.mergeLocked()
}

// rootLocked collects the ready shards' states (local engines in index
// order, then remote payloads in arrival order) and tree-reduces them to
// one root node, returning it with the summed seen/batches counters.
func (co *Coordinator) rootLocked() (root *node, seen int64, batches int, hasMembers bool, err error) {
	var nodes []*node
	for _, eng := range co.engines {
		st, err := eng.ExportStats()
		if err != nil {
			// A cold shard is "not ready": merge without it. Anything else
			// is a real failure.
			if errors.Is(err, clustering.ErrStreamCold) {
				continue
			}
			return nil, 0, 0, false, err
		}
		nodes = append(nodes, nodeOf(st.WS, st.Means, st.Adds))
		seen += st.Seen
		batches += st.Batches
		hasMembers = hasMembers || st.HasMembers
	}
	for _, ws := range co.remotes {
		cp := core.NewWStats(ws.K(), ws.Dims())
		cp.CopyFrom(ws)
		nodes = append(nodes, nodeOf(cp, nil, nil))
		hasMembers = true
	}
	if len(co.remoteKeyed) > 0 {
		keys := make([]string, 0, len(co.remoteKeyed))
		for key := range co.remoteKeyed {
			keys = append(keys, key)
		}
		sort.Strings(keys) // deterministic operand order regardless of push arrival
		for _, key := range keys {
			ws := co.remoteKeyed[key]
			cp := core.NewWStats(ws.K(), ws.Dims())
			cp.CopyFrom(ws)
			nodes = append(nodes, nodeOf(cp, nil, nil))
			hasMembers = true
		}
	}
	if len(nodes) == 0 {
		return nil, 0, 0, false, fmt.Errorf("shard: no shard has observed %d objects yet: %w", co.k, clustering.ErrStreamCold)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i].ws.Dims() != nodes[0].ws.Dims() {
			return nil, 0, 0, false, fmt.Errorf("shard: shard dim %d vs %d: %w",
				nodes[i].ws.Dims(), nodes[0].ws.Dims(), uncertain.ErrDimMismatch)
		}
	}

	for len(nodes) > 1 {
		next := nodes[:0:len(nodes)]
		for i := 0; i < len(nodes); i += 2 {
			if i+1 < len(nodes) {
				nodes[i] = mergeNodes(nodes[i], nodes[i+1])
			}
			next = append(next, nodes[i])
		}
		nodes = next
	}
	return nodes[0], seen, batches, hasMembers, nil
}

// syncLocked broadcasts the merged centroid read-out back to every shard
// engine — the parameter-server step run after each ingest round, so all
// shards score their next batches against globally informed positions
// instead of drifting on their own trajectories.
func (co *Coordinator) syncLocked() error {
	root, _, _, _, err := co.rootLocked()
	if err != nil {
		return err
	}
	for _, eng := range co.engines {
		if err := eng.SyncCenters(root.means, root.adds); err != nil {
			return err
		}
	}
	return nil
}

func (co *Coordinator) mergeLocked() (*stream.Frozen, error) {
	root, seen, batches, hasMembers, err := co.rootLocked()
	if err != nil {
		return nil, err
	}

	k, m := root.ws.K(), root.ws.Dims()
	fz := &stream.Frozen{
		K:             k,
		Dims:          m,
		Means:         append([]float64(nil), root.means...),
		Adds:          append([]float64(nil), root.adds...),
		Sizes:         make([]int, k),
		Weights:       make([]float64, k),
		HasMembers:    hasMembers,
		Seen:          seen,
		Batches:       batches,
		Objective:     root.ws.EstimateJ(),
		ResidentBytes: co.residentLocked(),
	}
	root.ws.Sizes(fz.Sizes)
	for c := 0; c < k; c++ {
		fz.Weights[c] = root.ws.Weight(c)
	}
	return fz, nil
}

// Seen returns the total number of objects folded into any shard so far
// (objects still buffered by cold shards are not counted).
func (co *Coordinator) Seen() int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	var total int64
	for _, eng := range co.engines {
		total += eng.Seen()
	}
	return total
}

// Batches returns the total number of mini-batches processed across shards.
func (co *Coordinator) Batches() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	total := 0
	for _, eng := range co.engines {
		total += eng.Batches()
	}
	return total
}

// ResidentBytes returns the summed high-water resident footprint of the
// shard engines' moment windows.
func (co *Coordinator) ResidentBytes() int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.residentLocked()
}

func (co *Coordinator) residentLocked() int64 {
	var total int64
	for _, eng := range co.engines {
		total += eng.ResidentBytes()
	}
	return total
}
