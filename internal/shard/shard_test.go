package shard

import (
	"context"
	"errors"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/stream"
	"ucpc/internal/uncertain"
)

// blobs builds n uncertain objects around `centers` well-separated sites.
func blobs(n int, centers [][]float64, seed uint64) uncertain.Dataset {
	r := rng.New(seed)
	ds := make(uncertain.Dataset, n)
	for i := range ds {
		// Pick the site randomly: an index-striped pick would correlate
		// with round-robin sharding and starve shards of whole blobs.
		c := centers[r.Intn(len(centers))]
		ms := make([]dist.Distribution, len(c))
		for j := range ms {
			ms[j] = dist.NewTruncNormalCentral(c[j]+r.Normal(0, 0.5), 0.3, 0.95)
		}
		ds[i] = uncertain.NewObject(i, ms)
	}
	return ds
}

var testCenters = [][]float64{{0, 0}, {12, 0}, {0, 12}}

// TestOneShardMatchesSingleEngine: a 1-shard coordinator is the single
// stream engine — same seed, same chunking — so the merged read-out is
// bit-identical to the engine's snapshot.
func TestOneShardMatchesSingleEngine(t *testing.T) {
	ctx := context.Background()
	cfg := clustering.StreamConfig{BatchSize: 64, Seed: 7, Workers: 1}
	ds := blobs(640, testCenters, 3)

	co, err := New(3, 1, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := stream.New(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Observe(ctx, ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.Observe(ctx, ds); err != nil {
		t.Fatal(err)
	}
	merged, err := co.Merge()
	if err != nil {
		t.Fatal(err)
	}
	single, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := range single.Means {
		if merged.Means[i] != single.Means[i] {
			t.Fatalf("mean[%d]: 1-shard %v vs single engine %v", i, merged.Means[i], single.Means[i])
		}
	}
	for c := range single.Adds {
		if merged.Adds[c] != single.Adds[c] {
			t.Fatalf("add[%d]: 1-shard %v vs single engine %v", c, merged.Adds[c], single.Adds[c])
		}
	}
	if merged.Seen != single.Seen || merged.Batches != single.Batches {
		t.Fatalf("seen/batches %d/%d vs %d/%d", merged.Seen, merged.Batches, single.Seen, single.Batches)
	}
}

// TestMergeDeterministic: merging twice without new input produces the same
// bytes — the reduction is a pure function of the shard states.
func TestMergeDeterministic(t *testing.T) {
	ctx := context.Background()
	co, err := New(3, 4, clustering.StreamConfig{BatchSize: 32, Seed: 11, Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Observe(ctx, blobs(512, testCenters, 9)); err != nil {
		t.Fatal(err)
	}
	a, err := co.Merge()
	if err != nil {
		t.Fatal(err)
	}
	b, err := co.Merge()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Means {
		if a.Means[i] != b.Means[i] {
			t.Fatalf("re-merge moved mean[%d]: %v vs %v", i, a.Means[i], b.Means[i])
		}
	}
	for c := range a.Weights {
		if a.Weights[c] != b.Weights[c] || a.Adds[c] != b.Adds[c] {
			t.Fatalf("re-merge changed cluster %d state", c)
		}
	}
}

// TestMergeConservation: merged weights account for every routed object,
// and the merged means sit on the blob structure (each true center has a
// merged centroid within the blob's spread).
func TestMergeConservation(t *testing.T) {
	ctx := context.Background()
	n := 900
	co, err := New(3, 3, clustering.StreamConfig{BatchSize: 64, Seed: 5, Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Observe(ctx, blobs(n, testCenters, 21)); err != nil {
		t.Fatal(err)
	}
	fz, err := co.Merge()
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range fz.Weights {
		total += w
	}
	if math.Abs(total-float64(n)) > 1e-9 {
		t.Fatalf("merged weight %v, want %d", total, n)
	}
	for _, center := range testCenters {
		best := math.Inf(1)
		for c := 0; c < fz.K; c++ {
			var d float64
			for j := range center {
				diff := fz.Means[c*fz.Dims+j] - center[j]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		if best > 4 {
			t.Fatalf("no merged centroid within 2 of true center %v (closest² %v; means %v)", center, best, fz.Means)
		}
	}
}

// TestStragglerRemerge: a merge with a cold shard succeeds on the ready
// subset; once the straggler warms up, the next merge folds it in.
func TestStragglerRemerge(t *testing.T) {
	ctx := context.Background()
	// Shard 1 is the straggler: the partitioner sends it nothing at first.
	allToZero := func(_ *uncertain.Object, _ int64, _ int) int { return 0 }
	co, err := New(2, 2, clustering.StreamConfig{BatchSize: 32, Seed: 3, Workers: 1}, allToZero)
	if err != nil {
		t.Fatal(err)
	}
	// Repartition is not possible mid-run via the fixed func, so drive a
	// second coordinator phase through a closure flag instead.
	ds := blobs(256, testCenters[:2], 13)
	if err := co.Observe(ctx, ds); err != nil {
		t.Fatal(err)
	}
	early, err := co.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if early.Seen != 256 {
		t.Fatalf("early merge saw %d objects, want 256", early.Seen)
	}

	// The straggler arrives: feed shard 1 directly via a fresh coordinator
	// phase (the partitioner now routes everything to shard 1).
	co.part = func(_ *uncertain.Object, _ int64, _ int) int { return 1 }
	if err := co.Observe(ctx, blobs(256, testCenters[:2], 14)); err != nil {
		t.Fatal(err)
	}
	late, err := co.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if late.Seen != 512 {
		t.Fatalf("late merge saw %d objects, want 512", late.Seen)
	}
	var total float64
	for _, w := range late.Weights {
		total += w
	}
	if math.Abs(total-512) > 1e-9 {
		t.Fatalf("late merged weight %v, want 512", total)
	}
}

// TestMergeAllCold: merging before any shard has k objects fails with
// ErrStreamCold.
func TestMergeAllCold(t *testing.T) {
	co, err := New(5, 2, clustering.StreamConfig{BatchSize: 128, Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Observe(context.Background(), blobs(4, testCenters[:2], 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Merge(); !errors.Is(err, clustering.ErrStreamCold) {
		t.Fatalf("merge on cold shards: %v, want ErrStreamCold", err)
	}
}

// TestRemoteShard: an out-of-process shard ships its statistics through the
// wire format; the merge accounts for its weight exactly.
func TestRemoteShard(t *testing.T) {
	ctx := context.Background()
	cfg := clustering.StreamConfig{BatchSize: 64, Seed: 17, Workers: 1}

	// The "remote process": a standalone engine that serializes its stats.
	remote, err := stream.New(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Observe(ctx, blobs(300, testCenters, 31)); err != nil {
		t.Fatal(err)
	}
	st, err := remote.ExportStats()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := st.WS.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	co, err := New(3, 2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Observe(ctx, blobs(300, testCenters, 32)); err != nil {
		t.Fatal(err)
	}
	if err := co.AddRemote(payload); err != nil {
		t.Fatal(err)
	}
	fz, err := co.Merge()
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range fz.Weights {
		total += w
	}
	if math.Abs(total-600) > 1e-9 {
		t.Fatalf("merged weight %v, want 600 (local 300 + remote 300)", total)
	}

	// Malformed payloads are rejected with the typed sentinels.
	if err := co.AddRemote(payload[:10]); !errors.Is(err, clustering.ErrBadModelFormat) {
		t.Fatalf("truncated remote payload: %v, want ErrBadModelFormat", err)
	}
	wrongK := core.NewWStats(4, 2)
	wk, _ := wrongK.MarshalBinary()
	if err := co.AddRemote(wk); !errors.Is(err, clustering.ErrBadModelFormat) {
		t.Fatalf("wrong-k remote payload: %v, want ErrBadModelFormat", err)
	}
}

// TestMatchClustersPermutation: a node merged with a cluster-permuted copy
// of itself must align structure-to-structure — every cluster's weight
// exactly doubles, no cross-contamination.
func TestMatchClustersPermutation(t *testing.T) {
	ctx := context.Background()
	mkStats := func(seed uint64) *stream.Stats {
		eng, err := stream.New(3, clustering.StreamConfig{BatchSize: 64, Seed: seed, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Observe(ctx, blobs(300, testCenters, 41)); err != nil {
			t.Fatal(err)
		}
		st, err := eng.ExportStats()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a := mkStats(5) // different seeds discover the same three blobs
	b := mkStats(1009)

	// Permute b's cluster labels.
	perm := []int{2, 0, 1}
	k, m := 3, 2
	pws := core.NewWStats(k, m)
	pmeans := make([]float64, k*m)
	padds := make([]float64, k)
	pws.MergeMapped(b.WS, perm)
	for c := 0; c < k; c++ {
		copy(pmeans[perm[c]*m:(perm[c]+1)*m], b.Means[c*m:(c+1)*m])
		padds[perm[c]] = b.Adds[c]
	}

	direct := mergeNodes(nodeOf(cloneWS(a.WS), a.Means, a.Adds), nodeOf(cloneWS(b.WS), b.Means, b.Adds))
	permed := mergeNodes(nodeOf(cloneWS(a.WS), a.Means, a.Adds), nodeOf(pws, pmeans, padds))
	for c := 0; c < k; c++ {
		if direct.ws.Weight(c) != permed.ws.Weight(c) {
			t.Fatalf("cluster %d: weight %v under identity vs %v under permutation",
				c, direct.ws.Weight(c), permed.ws.Weight(c))
		}
	}
	for i := range direct.means {
		if direct.means[i] != permed.means[i] {
			t.Fatalf("mean[%d]: %v under identity vs %v under permutation", i, direct.means[i], permed.means[i])
		}
	}
}

func cloneWS(ws *core.WStats) *core.WStats {
	cp := core.NewWStats(ws.K(), ws.Dims())
	cp.CopyFrom(ws)
	return cp
}

// TestObserveCancellation: a cancelled context stops every shard's ingest
// with ctx.Err, tagged with a shard index.
func TestObserveCancellation(t *testing.T) {
	co, err := New(2, 2, clustering.StreamConfig{BatchSize: 8, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := blobs(64, testCenters[:2], 8)
	if err := co.Observe(context.Background(), ds); err != nil {
		t.Fatal(err) // seed both shards first so ingest reaches the ctx check
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := co.Observe(ctx, ds); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Observe: %v, want context.Canceled", err)
	}
}

// TestBadPartitioner: an out-of-range shard index is rejected as
// ErrBadConfig before anything is ingested.
func TestBadPartitioner(t *testing.T) {
	co, err := New(2, 2, clustering.StreamConfig{}, func(_ *uncertain.Object, _ int64, shards int) int {
		return shards // off by one
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Observe(context.Background(), blobs(4, testCenters[:2], 5)); !errors.Is(err, clustering.ErrBadConfig) {
		t.Fatalf("bad partitioner: %v, want ErrBadConfig", err)
	}
	if _, err := New(2, 0, clustering.StreamConfig{}, nil); !errors.Is(err, clustering.ErrBadConfig) {
		t.Fatalf("0 shards: %v, want ErrBadConfig", err)
	}
}

// TestSetRemoteReplaces: keyed remote statistics supersede the source's
// previous push instead of stacking — repeated pushes of the same
// cumulative export must count the edge's objects exactly once, and a
// bigger re-export must replace, not add.
func TestSetRemoteReplaces(t *testing.T) {
	ctx := context.Background()
	cfg := clustering.StreamConfig{BatchSize: 64, Seed: 17, Workers: 1}

	export := func(n int) []byte {
		eng, err := stream.New(3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Observe(ctx, blobs(n, testCenters, 31)); err != nil {
			t.Fatal(err)
		}
		st, err := eng.ExportStats()
		if err != nil {
			t.Fatal(err)
		}
		payload, err := st.WS.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return payload
	}

	co, err := New(3, 2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Observe(ctx, blobs(300, testCenters, 32)); err != nil {
		t.Fatal(err)
	}

	weight := func() float64 {
		fz, err := co.Merge()
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, w := range fz.Weights {
			total += w
		}
		return total
	}

	// Three pushes of the same 150-object export: counted once.
	p150 := export(150)
	for i := 0; i < 3; i++ {
		if err := co.SetRemote("edge0", p150); err != nil {
			t.Fatal(err)
		}
	}
	if got := weight(); math.Abs(got-450) > 1e-9 {
		t.Fatalf("after repeated pushes merged weight %v, want 450", got)
	}

	// The edge grows to 240 objects and re-exports: replaced, not added.
	if err := co.SetRemote("edge0", export(240)); err != nil {
		t.Fatal(err)
	}
	if got := weight(); math.Abs(got-540) > 1e-9 {
		t.Fatalf("after grown re-push merged weight %v, want 540", got)
	}

	// A second source is independent of the first.
	if err := co.SetRemote("edge1", p150); err != nil {
		t.Fatal(err)
	}
	if got := weight(); math.Abs(got-690) > 1e-9 {
		t.Fatalf("with two sources merged weight %v, want 690", got)
	}

	// Validation mirrors AddRemote; the empty key is rejected.
	if err := co.SetRemote("", p150); !errors.Is(err, clustering.ErrBadConfig) {
		t.Fatalf("empty source key: %v, want ErrBadConfig", err)
	}
	if err := co.SetRemote("edge2", p150[:10]); !errors.Is(err, clustering.ErrBadModelFormat) {
		t.Fatalf("truncated keyed payload: %v, want ErrBadModelFormat", err)
	}
}
