package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ucpc/internal/dist"
	"ucpc/internal/uncertain"
)

// ReadErrorCSV reads the most common real-world format for measured data:
// each attribute occupies two adjacent columns, value then standard error
// (v1, e1, v2, e2, …), optionally followed by one integer label column.
// Every measurement becomes a Normal marginal N(v, e²) truncated to its
// central `mass` (e.g. 0.95) probability; zero error yields a point mass.
//
// This turns instrument exports (sensor logs with per-channel error bars,
// probe-level microarray summaries, assay replicate means ± sd) directly
// into uncertain objects without the synthetic uncertainty generator.
// Malformed rows — unparseable numbers, non-finite or negative errors,
// value/error pairs whose moments overflow — return a wrapped ErrMalformed,
// never a panic.
func ReadErrorCSV(r io.Reader, hasLabels bool, mass float64) (uncertain.Dataset, error) {
	if mass <= 0 || mass >= 1 {
		return nil, fmt.Errorf("datasets: error-CSV mass %v out of (0,1): %w", mass, ErrMalformed)
	}
	// The half-width of the central-mass window is z·e; precompute z (it
	// depends only on mass) so each measurement can be checked for window
	// collapse before the truncated normal is constructed.
	z := dist.NewNormal(0, 1).Quantile((1 + mass) / 2)
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var ds uncertain.Dataset
	rowNum := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("datasets: error-CSV row %d: %v: %w", rowNum, err, ErrMalformed)
		}
		rowNum++
		fields := len(rec)
		label := -1
		if hasLabels {
			fields--
			label, err = strconv.Atoi(rec[fields])
			if err != nil {
				return nil, fmt.Errorf("datasets: error-CSV row %d label %q: %w", rowNum, rec[fields], ErrMalformed)
			}
		}
		if fields <= 0 || fields%2 != 0 {
			return nil, fmt.Errorf("datasets: error-CSV row %d has %d value/error fields, want a positive even count: %w",
				rowNum, fields, ErrMalformed)
		}
		m := fields / 2
		ms := make([]dist.Distribution, m)
		for j := 0; j < m; j++ {
			v, err := strconv.ParseFloat(rec[2*j], 64)
			if err != nil || !finite(v) {
				return nil, fmt.Errorf("datasets: error-CSV row %d value %q: %w", rowNum, rec[2*j], ErrMalformed)
			}
			e, err := strconv.ParseFloat(rec[2*j+1], 64)
			if err != nil || !finite(e) {
				return nil, fmt.Errorf("datasets: error-CSV row %d error %q: %w", rowNum, rec[2*j+1], ErrMalformed)
			}
			if e < 0 {
				return nil, fmt.Errorf("datasets: error-CSV row %d: negative error %v: %w", rowNum, e, ErrMalformed)
			}
			if w := z * e; e == 0 || v-w >= v+w {
				// Zero error, or an error below the float resolution at
				// |v| (the central window [v−z·e, v+z·e] collapses to a
				// point): the uncertainty is unrepresentable at this
				// magnitude, so read the measurement as exact. Blindly
				// constructing the truncated normal used to panic on the
				// empty window (found by FuzzReadErrorCSV).
				ms[j] = dist.NewPointMass(v)
			} else {
				d, err := checkMoments(dist.NewTruncNormalCentral(v, e, mass), rec[2*j]+"±"+rec[2*j+1])
				if err != nil {
					return nil, fmt.Errorf("datasets: error-CSV row %d: %w", rowNum, err)
				}
				ms[j] = d
			}
		}
		ds = append(ds, uncertain.NewObject(rowNum-1, ms).WithLabel(label))
	}
	if len(ds) == 0 {
		return nil, fmt.Errorf("datasets: empty error-CSV input: %w", ErrMalformed)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
