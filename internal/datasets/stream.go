package datasets

import (
	"math"

	"ucpc/internal/rng"
	"ucpc/internal/vec"
)

// KDDStream generates the KDD-Cup-'99-shaped records of GenerateKDD one at
// a time, in the exact sequence GenerateKDD materializes them — the
// out-of-core source for the streaming scalability experiment. Drawing
// record r costs O(Dims) and retains nothing but the class centers, so a
// million-object stream never holds more than one record's worth of fresh
// state; GenerateKDD itself is now a thin collect-n-records wrapper, which
// keeps the batch and streaming experiments on literally the same data.
type KDDStream struct {
	spec    KDDSpec
	r       *rng.RNG
	cum     []float64    // cumulative class priors
	centers []vec.Vector // per-class centers
	emitted int
}

// NewKDDStream returns a record stream for the given seed. The first
// Classes records cover every class once (the paper's scalability study
// "ensured that all 23 classes were covered"); subsequent records draw
// their class from the skewed prior.
func NewKDDStream(seed uint64) *KDDStream {
	spec := KDD()
	s := &KDDStream{
		spec: spec,
		r:    rng.New(seed).Split(hashName("KDDCup99")),
		cum:  make([]float64, spec.Classes),
	}
	// Class priors: geometric-style decay normalized to 1, approximating
	// the real 57%/22%/19%/... skew.
	priors := make([]float64, spec.Classes)
	total := 0.0
	for c := range priors {
		priors[c] = math.Pow(0.45, float64(c))
		total += priors[c]
	}
	acc := 0.0
	for c := range priors {
		acc += priors[c] / total
		s.cum[c] = acc
	}
	s.centers = make([]vec.Vector, spec.Classes)
	for c := range s.centers {
		s.centers[c] = make(vec.Vector, spec.Dims)
		for j := 0; j < spec.Dims; j++ {
			s.centers[c][j] = s.r.Normal(0, 3)
		}
	}
	return s
}

// Dims returns the record dimensionality (42).
func (s *KDDStream) Dims() int { return s.spec.Dims }

// Classes returns the class count (23).
func (s *KDDStream) Classes() int { return s.spec.Classes }

// Next fills p (length Dims) with the next record's attributes and returns
// its class label. The sequence is deterministic for a given seed.
func (s *KDDStream) Next(p vec.Vector) int {
	c := s.emitted
	if c >= s.spec.Classes {
		u := s.r.Float64()
		c = 0
		for c < s.spec.Classes-1 && u > s.cum[c] {
			c++
		}
	}
	for j := 0; j < s.spec.Dims; j++ {
		p[j] = s.centers[c][j] + s.r.Normal(0, 1)
	}
	s.emitted++
	return c
}
