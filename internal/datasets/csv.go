package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ucpc/internal/vec"
)

// WriteCSV writes a deterministic dataset as CSV rows of the form
// x1,…,xm,label.
func WriteCSV(w io.Writer, d *Deterministic) error {
	cw := csv.NewWriter(w)
	m := d.Dims()
	row := make([]string, m+1)
	for i, p := range d.Points {
		for j := 0; j < m; j++ {
			row[j] = strconv.FormatFloat(p[j], 'g', -1, 64)
		}
		row[m] = strconv.Itoa(d.Labels[i])
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("datasets: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads rows of the form x1,…,xm,label (the last column is the
// integer class label; pass hasLabels=false to treat every column as an
// attribute and label everything 0).
func ReadCSV(r io.Reader, name string, hasLabels bool) (*Deterministic, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	out := &Deterministic{Name: name}
	classes := map[int]bool{}
	rowNum := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("datasets: read row %d: %w", rowNum, err)
		}
		rowNum++
		nAttrs := len(rec)
		label := 0
		if hasLabels {
			nAttrs--
			label, err = strconv.Atoi(rec[nAttrs])
			if err != nil {
				return nil, fmt.Errorf("datasets: row %d label %q: %w", rowNum, rec[nAttrs], err)
			}
		}
		if out.Dims() != 0 && nAttrs != out.Dims() {
			return nil, fmt.Errorf("datasets: row %d has %d attributes, want %d", rowNum, nAttrs, out.Dims())
		}
		p := make(vec.Vector, nAttrs)
		for j := 0; j < nAttrs; j++ {
			p[j], err = strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("datasets: row %d field %d %q: %w", rowNum, j, rec[j], err)
			}
		}
		out.Points = append(out.Points, p)
		out.Labels = append(out.Labels, label)
		classes[label] = true
	}
	if len(out.Points) == 0 {
		return nil, fmt.Errorf("datasets: empty CSV input")
	}
	out.Classes = len(classes)
	return out, nil
}
