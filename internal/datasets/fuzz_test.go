package datasets

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"ucpc/internal/uncertain"
)

// The fuzz targets harden the untrusted-input surface of this package: the
// two CSV readers and the synthetic-spec generator. The invariant under
// test is uniform — malformed input returns a wrapped error (ErrMalformed
// or one of the uncertain sentinels), never a panic, and accepted input
// yields objects whose closed-form moments are finite. Seed corpora live
// under testdata/fuzz/<Target>/ and double as regression tests for inputs
// that used to panic (dist constructor panic domains reached through the
// parsers).

// checkParsed asserts the all-accepted-objects-have-finite-moments
// invariant shared by both CSV readers.
func checkParsed(t *testing.T, ds uncertain.Dataset) {
	t.Helper()
	for i, o := range ds {
		for j := 0; j < o.Dims(); j++ {
			mu, mu2, s2 := o.Mean()[j], o.SecondMoment()[j], o.VarVector()[j]
			if math.IsNaN(mu) || math.IsInf(mu, 0) ||
				math.IsNaN(mu2) || math.IsInf(mu2, 0) ||
				math.IsNaN(s2) || math.IsInf(s2, 0) || s2 < 0 {
				t.Fatalf("object %d dim %d: accepted with moments µ=%v µ₂=%v σ²=%v", i, j, mu, mu2, s2)
			}
		}
	}
}

func FuzzReadUncertainCSV(f *testing.F) {
	f.Add("P:1,U:0:1,0\n")
	f.Add("N:0:1:-inf:+inf,E:2:0:+inf,-1\nN:1:0.5:-2:2,E:1:0:3,4\n")
	f.Add("D:1:0.5:2:0.5,7\n")
	f.Add("U:5:1,0\n")       // inverted uniform bounds: used to panic
	f.Add("N:0:-1:-2:2,0\n") // negative sigma: used to panic
	f.Add("E:0:0:+inf,0\n")  // zero rate: used to panic
	f.Add("D:1:-3,0\n")      // negative discrete weight: used to panic
	f.Add("N:0:1:5:5,0\n")   // empty truncation window: used to panic
	f.Add("U:inf:inf,0\n")   // non-finite bounds: NaN moments
	f.Add("P:nan,0\n")
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		ds, err := ReadUncertainCSV(strings.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrMalformed) &&
				!errors.Is(err, uncertain.ErrDimMismatch) && !errors.Is(err, uncertain.ErrEmptyDataset) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		checkParsed(t, ds)
		// Round trip: everything the reader accepts, the writer can encode
		// and the reader accepts again with identical moments.
		var buf bytes.Buffer
		if err := WriteUncertainCSV(&buf, ds); err != nil {
			t.Fatalf("write-back of accepted input: %v", err)
		}
		ds2, err := ReadUncertainCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of written output: %v", err)
		}
		if len(ds2) != len(ds) {
			t.Fatalf("round trip: %d objects became %d", len(ds), len(ds2))
		}
	})
}

func FuzzReadErrorCSV(f *testing.F) {
	f.Add("1.5,0.1,2.5,0.2\n", false, 0.95)
	f.Add("1,0,2,0.5,3\n", true, 0.9)
	f.Add("1,-1\n", false, 0.95)    // negative error
	f.Add("1,1e308\n", false, 0.95) // variance overflow
	f.Add("1,nan\n", false, 0.95)   // non-finite error
	f.Add("1,0.1\n", false, 1.5)    // mass out of range
	f.Fuzz(func(t *testing.T, data string, hasLabels bool, mass float64) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		ds, err := ReadErrorCSV(strings.NewReader(data), hasLabels, mass)
		if err != nil {
			if !errors.Is(err, ErrMalformed) &&
				!errors.Is(err, uncertain.ErrDimMismatch) && !errors.Is(err, uncertain.ErrEmptyDataset) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		checkParsed(t, ds)
	})
}

func FuzzSpecGenerate(f *testing.F) {
	f.Add(150, 4, 3, 3.0, 0.0, 1.0, uint64(1))
	f.Add(64, 2, 8, 1.2, 0.5, 0.5, uint64(9))
	f.Add(3, 1, 3, 0.0, 0.99, 0.1, uint64(2))
	f.Add(0, 0, 0, math.NaN(), -1.0, 0.0, uint64(0)) // invalid on every axis
	f.Fuzz(func(t *testing.T, n, dims, classes int, sep, imb, frac float64, seed uint64) {
		// Bound the workload, not the validity: huge-but-valid specs are a
		// resource problem for the fuzzer, not a correctness one.
		if n > 2000 || dims > 16 || classes > 64 {
			t.Skip()
		}
		spec := Spec{Name: "fuzz", N: n, Dims: dims, Classes: classes, Separation: sep, Imbalance: imb}
		if err := spec.Validate(); err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("untyped validation error: %v", err)
			}
			return
		}
		d := Generate(spec, seed)
		if len(d.Points) != spec.N || len(d.Labels) != spec.N {
			t.Fatalf("generated %d points / %d labels, want %d", len(d.Points), len(d.Labels), spec.N)
		}
		for i, p := range d.Points {
			if len(p) != spec.Dims {
				t.Fatalf("point %d has dim %d", i, len(p))
			}
			for _, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("point %d has non-finite coordinate %v", i, v)
				}
			}
			if l := d.Labels[i]; l < 0 || l >= spec.Classes {
				t.Fatalf("point %d labeled %d (classes %d)", i, l, spec.Classes)
			}
		}
		// Scale preserves every class for any fraction in (0, 1].
		if math.IsNaN(frac) || frac <= 0 {
			frac = 0.5
		}
		if frac > 1 {
			frac = 1
		}
		scaled := d.Scale(frac)
		seen := map[int]bool{}
		for _, l := range scaled.Labels {
			seen[l] = true
		}
		if len(seen) != spec.Classes {
			t.Fatalf("Scale(%v) kept %d of %d classes", frac, len(seen), spec.Classes)
		}
	})
}
