package datasets

import (
	"math"
	"strings"
	"testing"
)

func TestReadErrorCSV(t *testing.T) {
	in := strings.NewReader(
		"1.5,0.2,3.0,0.5,0\n" +
			"8.0,0.1,9.0,0.0,1\n")
	ds, err := ReadErrorCSV(in, true, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds.Dims() != 2 {
		t.Fatalf("shape %dx%d", len(ds), ds.Dims())
	}
	if ds[0].Label != 0 || ds[1].Label != 1 {
		t.Error("labels wrong")
	}
	// Means pinned at the values (symmetric truncation).
	if math.Abs(ds[0].Mean()[0]-1.5) > 1e-9 || math.Abs(ds[0].Mean()[1]-3.0) > 1e-9 {
		t.Errorf("object 0 mean %v", ds[0].Mean())
	}
	// Variance scales with the stated error.
	if ds[0].VarVector()[1] <= ds[0].VarVector()[0] {
		t.Errorf("larger error did not give larger variance: %v", ds[0].VarVector())
	}
	// Zero error becomes a point mass.
	if ds[1].VarVector()[1] != 0 {
		t.Errorf("zero-error attribute has variance %v", ds[1].VarVector()[1])
	}
}

func TestReadErrorCSVNoLabels(t *testing.T) {
	ds, err := ReadErrorCSV(strings.NewReader("1,0.1,2,0.2\n"), false, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if ds[0].Label != -1 {
		t.Errorf("unlabeled object has label %d", ds[0].Label)
	}
	if ds.Dims() != 2 {
		t.Errorf("dims = %d", ds.Dims())
	}
}

func TestReadErrorCSVErrors(t *testing.T) {
	cases := map[string]struct {
		in        string
		hasLabels bool
		mass      float64
	}{
		"empty":          {"", false, 0.95},
		"odd fields":     {"1,0.1,2\n", false, 0.95},
		"bad value":      {"x,0.1\n", false, 0.95},
		"bad error":      {"1,y\n", false, 0.95},
		"negative error": {"1,-0.5\n", false, 0.95},
		"bad label":      {"1,0.1,zz\n", true, 0.95},
		"bad mass":       {"1,0.1\n", false, 1.5},
		"label only":     {"3\n", true, 0.95},
	}
	for name, c := range cases {
		if _, err := ReadErrorCSV(strings.NewReader(c.in), c.hasLabels, c.mass); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadErrorCSVClusterable(t *testing.T) {
	// Two separated noisy groups straight from an error-bar CSV.
	var b strings.Builder
	for i := 0; i < 10; i++ {
		b.WriteString("1.0,0.3,1.0,0.3,0\n")
		b.WriteString("9.0,0.4,9.0,0.4,1\n")
	}
	ds, err := ReadErrorCSV(strings.NewReader(b.String()), true, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 20 {
		t.Fatalf("%d objects", len(ds))
	}
	for _, o := range ds {
		if o.TotalVar() <= 0 {
			t.Fatal("object without uncertainty")
		}
	}
}
