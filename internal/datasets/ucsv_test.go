package datasets

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

func mixedDataset() uncertain.Dataset {
	return uncertain.Dataset{
		uncertain.NewObject(0, []dist.Distribution{
			dist.NewPointMass(1.5),
			dist.NewUniform(-1, 2),
			dist.NewTruncNormalCentral(3, 0.5, 0.95),
		}).WithLabel(0),
		uncertain.NewObject(1, []dist.Distribution{
			dist.NewTruncExponentialMass(4, 1.5, 0.95),
			dist.NewNormal(0, 2),
			dist.NewExponential(2, -1),
		}).WithLabel(1),
		uncertain.NewObject(2, []dist.Distribution{
			dist.NewDiscrete([]float64{1, 2, 3}, nil),
			dist.NewUniform(0, 0),
			dist.NewPointMass(-7),
		}).WithLabel(-1),
	}
}

func TestUCSVRoundTripMoments(t *testing.T) {
	ds := mixedDataset()
	var buf bytes.Buffer
	if err := WriteUncertainCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUncertainCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ds) {
		t.Fatalf("%d objects, want %d", len(back), len(ds))
	}
	for i, o := range ds {
		b := back[i]
		if b.Label != o.Label {
			t.Errorf("object %d label %d, want %d", i, b.Label, o.Label)
		}
		for j := 0; j < o.Dims(); j++ {
			if math.Abs(b.Mean()[j]-o.Mean()[j]) > 1e-9 {
				t.Errorf("object %d dim %d mean %v, want %v", i, j, b.Mean()[j], o.Mean()[j])
			}
			if math.Abs(b.VarVector()[j]-o.VarVector()[j]) > 1e-9*(1+o.VarVector()[j]) {
				t.Errorf("object %d dim %d var %v, want %v", i, j, b.VarVector()[j], o.VarVector()[j])
			}
			lo1, hi1 := o.Marginal(j).Support()
			lo2, hi2 := b.Marginal(j).Support()
			if lo1 != lo2 || hi1 != hi2 {
				t.Errorf("object %d dim %d support [%v,%v], want [%v,%v]", i, j, lo2, hi2, lo1, hi1)
			}
		}
	}
}

func TestUCSVRoundTripSampling(t *testing.T) {
	// Sampling from the decoded objects must match the original moments.
	ds := mixedDataset()
	var buf bytes.Buffer
	if err := WriteUncertainCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUncertainCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	o := back[1]
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += o.Sample(r)[0]
	}
	if mean := sum / n; math.Abs(mean-4) > 0.05 {
		t.Errorf("decoded TruncExponential sample mean %v, want 4", mean)
	}
}

func TestUCSVGeneratedDatasetRoundTrip(t *testing.T) {
	spec, _ := MicroarrayByName("Neuroblastoma")
	ds := GenerateMicroarray(spec, 0.005, 3)
	var buf bytes.Buffer
	if err := WriteUncertainCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUncertainCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if math.Abs(back[i].TotalVar()-ds[i].TotalVar()) > 1e-9*(1+ds[i].TotalVar()) {
			t.Fatalf("gene %d variance drifted: %v vs %v", i, back[i].TotalVar(), ds[i].TotalVar())
		}
	}
}

func TestUCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"one field":      "P:1\n",
		"bad label":      "P:1,xx\n",
		"unknown family": "Z:1,0\n",
		"bad params":     "U:1,0\n",
		"bad number":     "P:abc,0\n",
		"ragged dims":    "P:1,P:2,0\nP:1,0\n",
		"discrete odd":   "D:1:0.5:2,0\n",
	}
	for name, in := range cases {
		if _, err := ReadUncertainCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestUCSVUntruncatedFamilies(t *testing.T) {
	ds := uncertain.Dataset{
		uncertain.NewObject(0, []dist.Distribution{
			dist.NewNormal(5, 3),
			dist.NewExponential(0.5, 2),
		}).WithLabel(4),
	}
	var buf bytes.Buffer
	if err := WriteUncertainCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUncertainCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back[0].Marginal(0).(dist.Normal); !ok {
		t.Errorf("untruncated Normal decoded as %T", back[0].Marginal(0))
	}
	if _, ok := back[0].Marginal(1).(dist.Exponential); !ok {
		t.Errorf("untruncated Exponential decoded as %T", back[0].Marginal(1))
	}
}
