package datasets

import (
	"fmt"
	"math"

	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// MicroSpec describes a probe-level microarray collection standing in for
// the paper's real datasets (Table 1(b)): objects are genes, attributes are
// arrays (tissue samples), and every measurement carries an inherent Normal
// uncertainty whose magnitude mimics the multi-mgMOS probe-level error
// model (higher absolute expression → larger, signal-proportional error).
type MicroSpec struct {
	Name string
	// Genes and Arrays are the published object/attribute counts.
	Genes, Arrays int
	// LatentGroups is the number of latent co-expression groups used to
	// give the data clusterable structure (the real collections have no
	// reference classification; groups only shape the data).
	LatentGroups int
}

// Microarrays returns the specs mirroring Table 1(b).
func Microarrays() []MicroSpec {
	return []MicroSpec{
		{Name: "Neuroblastoma", Genes: 22282, Arrays: 14, LatentGroups: 8},
		{Name: "Leukaemia", Genes: 22690, Arrays: 21, LatentGroups: 10},
	}
}

// MicroarrayByName returns the spec with the given name.
func MicroarrayByName(name string) (MicroSpec, error) {
	for _, s := range Microarrays() {
		if s.Name == name {
			return s, nil
		}
	}
	return MicroSpec{}, fmt.Errorf("datasets: unknown microarray %q", name)
}

// GenerateMicroarray synthesizes a probe-level expression collection as an
// uncertain dataset: each gene's attribute j carries a Normal pdf (truncated
// to its central 95 % mass) whose mean is the latent expression level and
// whose standard deviation follows the signal-dependent error model
// σ = σ₀ + c·|expr|·u, u ~ U(0.5, 1.5).
//
// scale in (0,1] shrinks the gene count (22k genes make CI-scale
// experiments needlessly slow; the structure is preserved at any size).
func GenerateMicroarray(spec MicroSpec, scale float64, seed uint64) uncertain.Dataset {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("datasets: microarray scale %v out of (0,1]", scale))
	}
	genes := int(float64(spec.Genes) * scale)
	if genes < spec.LatentGroups*2 {
		genes = spec.LatentGroups * 2
	}
	r := rng.New(seed).Split(hashName(spec.Name))

	// Latent group profiles across arrays: log-expression prototypes.
	// Profile spread is deliberately modest relative to per-gene noise so
	// the groups overlap, as real co-expression structure does.
	profiles := make([]vec.Vector, spec.LatentGroups)
	for g := range profiles {
		profiles[g] = make(vec.Vector, spec.Arrays)
		for j := 0; j < spec.Arrays; j++ {
			profiles[g][j] = r.Normal(6, 1.3) // log2-like expression scale
		}
	}

	const (
		sigma0 = 0.15 // floor error
		cSig   = 0.06 // signal-proportional error coefficient
	)
	ds := make(uncertain.Dataset, 0, genes)
	for i := 0; i < genes; i++ {
		g := i % spec.LatentGroups
		ms := make([]dist.Distribution, spec.Arrays)
		for j := 0; j < spec.Arrays; j++ {
			expr := profiles[g][j] + r.Normal(0, 1.2)
			sigma := sigma0 + cSig*math.Abs(expr)*r.Uniform(0.5, 1.5)
			ms[j] = dist.NewTruncNormalCentral(expr, sigma, 0.95)
		}
		ds = append(ds, uncertain.NewObject(i, ms).WithLabel(g))
	}
	return ds
}
