package datasets

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestBenchmarksMatchTable1(t *testing.T) {
	want := map[string][3]int{ // name -> {n, attrs, classes}
		"Iris":    {150, 4, 3},
		"Wine":    {178, 13, 3},
		"Glass":   {214, 10, 6},
		"Ecoli":   {327, 7, 5},
		"Yeast":   {1484, 8, 10},
		"Image":   {2310, 19, 7},
		"Abalone": {4124, 7, 17},
		"Letter":  {7648, 16, 10},
	}
	specs := Benchmarks()
	if len(specs) != len(want) {
		t.Fatalf("%d specs, want %d", len(specs), len(want))
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected spec %q", s.Name)
			continue
		}
		if s.N != w[0] || s.Dims != w[1] || s.Classes != w[2] {
			t.Errorf("%s: (%d,%d,%d), want %v", s.Name, s.N, s.Dims, s.Classes, w)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	for _, spec := range Benchmarks() {
		d := Generate(spec, 42)
		if len(d.Points) != spec.N {
			t.Errorf("%s: %d points, want %d", spec.Name, len(d.Points), spec.N)
		}
		if d.Dims() != spec.Dims {
			t.Errorf("%s: dims %d, want %d", spec.Name, d.Dims(), spec.Dims)
		}
		seen := map[int]int{}
		for _, l := range d.Labels {
			seen[l]++
		}
		if len(seen) != spec.Classes {
			t.Errorf("%s: %d classes, want %d", spec.Name, len(seen), spec.Classes)
		}
		for c, cnt := range seen {
			if cnt < 1 {
				t.Errorf("%s: class %d empty", spec.Name, c)
			}
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	spec, _ := BenchmarkByName("Iris")
	a := Generate(spec, 7)
	b := Generate(spec, 7)
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				t.Fatal("same seed, different data")
			}
		}
	}
	c := Generate(spec, 8)
	if a.Points[0][0] == c.Points[0][0] {
		t.Error("different seeds produced identical first value")
	}
}

func TestImbalanceSkewsSizes(t *testing.T) {
	balanced := Generate(Spec{Name: "b", N: 1000, Dims: 2, Classes: 5, Separation: 2, Imbalance: 0}, 1)
	skewed := Generate(Spec{Name: "s", N: 1000, Dims: 2, Classes: 5, Imbalance: 0.8, Separation: 2}, 1)
	ratio := func(d *Deterministic) float64 {
		sizes := map[int]int{}
		for _, l := range d.Labels {
			sizes[l]++
		}
		min, max := 1<<30, 0
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return float64(max) / float64(min)
	}
	if ratio(skewed) <= ratio(balanced)*1.5 {
		t.Errorf("imbalance had no effect: skewed ratio %v vs balanced %v", ratio(skewed), ratio(balanced))
	}
}

func TestBenchmarkByNameUnknown(t *testing.T) {
	if _, err := BenchmarkByName("Nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestScalePreservesClasses(t *testing.T) {
	spec, _ := BenchmarkByName("Yeast")
	d := Generate(spec, 3)
	s := d.Scale(0.05)
	if len(s.Points) >= len(d.Points)/10 {
		t.Errorf("scaled size %d not much smaller than %d", len(s.Points), len(d.Points))
	}
	seen := map[int]bool{}
	for _, l := range s.Labels {
		seen[l] = true
	}
	if len(seen) != spec.Classes {
		t.Errorf("scaling lost classes: %d of %d", len(seen), spec.Classes)
	}
	if d.Scale(1.5) != d {
		t.Error("frac >= 1 must return the receiver")
	}
}

func TestPerDimStdPositive(t *testing.T) {
	spec, _ := BenchmarkByName("Iris")
	d := Generate(spec, 4)
	for j, s := range d.PerDimStd() {
		if s <= 0 || math.IsNaN(s) {
			t.Errorf("dim %d std = %v", j, s)
		}
	}
}

func TestMicroarraySpecs(t *testing.T) {
	specs := Microarrays()
	if len(specs) != 2 {
		t.Fatalf("%d microarray specs", len(specs))
	}
	if specs[0].Genes != 22282 || specs[0].Arrays != 14 {
		t.Errorf("Neuroblastoma spec wrong: %+v", specs[0])
	}
	if specs[1].Genes != 22690 || specs[1].Arrays != 21 {
		t.Errorf("Leukaemia spec wrong: %+v", specs[1])
	}
	if _, err := MicroarrayByName("Leukaemia"); err != nil {
		t.Error(err)
	}
	if _, err := MicroarrayByName("X"); err == nil {
		t.Error("unknown microarray accepted")
	}
}

func TestGenerateMicroarray(t *testing.T) {
	spec, _ := MicroarrayByName("Neuroblastoma")
	ds := GenerateMicroarray(spec, 0.01, 5)
	if len(ds) < 100 {
		t.Fatalf("only %d genes at 1%% scale", len(ds))
	}
	if ds.Dims() != 14 {
		t.Errorf("dims = %d", ds.Dims())
	}
	// Probe-level uncertainty must be present and heterogeneous.
	var minVar, maxVar = math.Inf(1), 0.0
	for _, o := range ds {
		v := o.TotalVar()
		if v <= 0 {
			t.Fatal("gene without uncertainty")
		}
		minVar = math.Min(minVar, v)
		maxVar = math.Max(maxVar, v)
	}
	if maxVar < 2*minVar {
		t.Errorf("variances suspiciously homogeneous: [%v, %v]", minVar, maxVar)
	}
}

func TestGenerateKDDShape(t *testing.T) {
	d := GenerateKDD(5000, 9)
	if len(d.Points) != 5000 || d.Dims() != 42 {
		t.Fatalf("shape %dx%d", len(d.Points), d.Dims())
	}
	sizes := map[int]int{}
	for _, l := range d.Labels {
		sizes[l]++
	}
	if len(sizes) != 23 {
		t.Fatalf("%d classes, want 23", len(sizes))
	}
	// The skew must be strong: the biggest class dwarfs the smallest.
	min, max := 1<<30, 0
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max < 50*min {
		t.Errorf("class skew too weak: min %d max %d", min, max)
	}
}

func TestKDDMinimumSize(t *testing.T) {
	d := GenerateKDD(1, 1)
	if len(d.Points) != 23 {
		t.Errorf("n below class count must clamp to 23, got %d", len(d.Points))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	spec, _ := BenchmarkByName("Iris")
	d := Generate(spec, 11).Scale(0.2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "Iris", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(d.Points) || back.Dims() != d.Dims() {
		t.Fatalf("round trip shape %dx%d vs %dx%d",
			len(back.Points), back.Dims(), len(d.Points), d.Dims())
	}
	for i := range d.Points {
		if back.Labels[i] != d.Labels[i] {
			t.Fatalf("label mismatch at %d", i)
		}
		for j := range d.Points[i] {
			if back.Points[i][j] != d.Points[i][j] {
				t.Fatalf("value mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestReadCSVNoLabels(t *testing.T) {
	in := strings.NewReader("1.5,2.5\n3.5,4.5\n")
	d, err := ReadCSV(in, "x", false)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dims() != 2 || len(d.Points) != 2 {
		t.Fatalf("shape %dx%d", len(d.Points), d.Dims())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x", true); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2,zz\n"), "x", true); err == nil {
		t.Error("bad label accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2,0\n1,0\n"), "x", true); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,0\n"), "x", true); err == nil {
		t.Error("non-numeric attribute accepted")
	}
}
