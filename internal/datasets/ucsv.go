package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"ucpc/internal/dist"
	"ucpc/internal/uncertain"
)

// Uncertain CSV ("ucsv") is a plain-CSV serialization of uncertain
// datasets: one row per object, one field per attribute, and a final
// integer label field (-1 = unlabeled). Each attribute field encodes its
// marginal distribution as colon-separated tokens:
//
//	P:x           point mass at x
//	U:lo:hi       Uniform on [lo, hi]
//	N:mu:sigma:lo:hi   Normal(mu, sigma²) truncated to [lo, hi]
//	E:rate:shift:T     shifted Exponential truncated to [shift, shift+T]
//
// The format loses nothing for the four closed-form families used by the
// uncertainty generator; Discrete marginals are serialized as their
// supporting points: D:x1:w1:x2:w2:…

// WriteUncertainCSV serializes ds to w.
func WriteUncertainCSV(w io.Writer, ds uncertain.Dataset) error {
	cw := csv.NewWriter(w)
	for i, o := range ds {
		row := make([]string, o.Dims()+1)
		for j := 0; j < o.Dims(); j++ {
			tok, err := encodeDist(o.Marginal(j))
			if err != nil {
				return fmt.Errorf("datasets: object %d dim %d: %w", i, j, err)
			}
			row[j] = tok
		}
		row[o.Dims()] = strconv.Itoa(o.Label)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("datasets: write object %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadUncertainCSV parses a dataset serialized by WriteUncertainCSV.
func ReadUncertainCSV(r io.Reader) (uncertain.Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var ds uncertain.Dataset
	rowNum := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("datasets: ucsv row %d: %w", rowNum, err)
		}
		rowNum++
		if len(rec) < 2 {
			return nil, fmt.Errorf("datasets: ucsv row %d has %d fields, want >= 2", rowNum, len(rec))
		}
		label, err := strconv.Atoi(rec[len(rec)-1])
		if err != nil {
			return nil, fmt.Errorf("datasets: ucsv row %d label %q: %w", rowNum, rec[len(rec)-1], err)
		}
		ms := make([]dist.Distribution, len(rec)-1)
		for j := 0; j < len(rec)-1; j++ {
			d, err := decodeDist(rec[j])
			if err != nil {
				return nil, fmt.Errorf("datasets: ucsv row %d dim %d: %w", rowNum, j, err)
			}
			ms[j] = d
		}
		ds = append(ds, uncertain.NewObject(rowNum-1, ms).WithLabel(label))
	}
	if len(ds) == 0 {
		return nil, fmt.Errorf("datasets: empty ucsv input")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

func encodeDist(d dist.Distribution) (string, error) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	switch t := d.(type) {
	case dist.PointMass:
		return "P:" + f(t.X), nil
	case dist.Uniform:
		return "U:" + f(t.Lo) + ":" + f(t.Hi), nil
	case dist.Normal:
		// Untruncated Normals have no finite region; store their exact
		// parameters with infinite bounds spelled out.
		return "N:" + f(t.Mu) + ":" + f(t.Sigma) + ":-inf:+inf", nil
	case dist.TruncNormal:
		return "N:" + f(t.Mu) + ":" + f(t.Sigma) + ":" + f(t.Lo) + ":" + f(t.Hi), nil
	case dist.Exponential:
		return "E:" + f(t.Rate) + ":" + f(t.Shift) + ":+inf", nil
	case dist.TruncExponential:
		return "E:" + f(t.Rate) + ":" + f(t.Shift) + ":" + f(t.T), nil
	case dist.Discrete:
		var b strings.Builder
		b.WriteString("D")
		for p := 0.0; p < 1; p += 1 / float64(t.N()) {
			x := t.Quantile(p + 0.5/float64(t.N()))
			b.WriteString(":" + f(x) + ":" + f(1/float64(t.N())))
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("unsupported marginal type %T", d)
	}
}

func decodeDist(tok string) (dist.Distribution, error) {
	parts := strings.Split(tok, ":")
	nums := func(want int) ([]float64, error) {
		if len(parts)-1 != want {
			return nil, fmt.Errorf("token %q: %d params, want %d", tok, len(parts)-1, want)
		}
		out := make([]float64, want)
		for i := 0; i < want; i++ {
			s := parts[i+1]
			switch s {
			case "-inf":
				out[i] = negInf
				continue
			case "+inf", "inf":
				out[i] = posInf
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("token %q: bad number %q", tok, s)
			}
			out[i] = v
		}
		return out, nil
	}
	switch parts[0] {
	case "P":
		v, err := nums(1)
		if err != nil {
			return nil, err
		}
		return dist.NewPointMass(v[0]), nil
	case "U":
		v, err := nums(2)
		if err != nil {
			return nil, err
		}
		return dist.NewUniform(v[0], v[1]), nil
	case "N":
		v, err := nums(4)
		if err != nil {
			return nil, err
		}
		if v[2] == negInf && v[3] == posInf {
			return dist.NewNormal(v[0], v[1]), nil
		}
		return dist.NewTruncNormal(v[0], v[1], v[2], v[3]), nil
	case "E":
		if len(parts)-1 == 3 {
			v, err := nums(3)
			if err != nil {
				return nil, err
			}
			if v[2] == posInf {
				return dist.NewExponential(v[0], v[1]), nil
			}
			return dist.NewTruncExponential(v[0], v[1], v[2]), nil
		}
		v, err := nums(2)
		if err != nil {
			return nil, err
		}
		return dist.NewExponential(v[0], v[1]), nil
	case "D":
		if (len(parts)-1)%2 != 0 || len(parts) == 1 {
			return nil, fmt.Errorf("token %q: discrete needs x:w pairs", tok)
		}
		n := (len(parts) - 1) / 2
		xs := make([]float64, n)
		ws := make([]float64, n)
		for i := 0; i < n; i++ {
			x, err := strconv.ParseFloat(parts[1+2*i], 64)
			if err != nil {
				return nil, fmt.Errorf("token %q: bad number", tok)
			}
			w, err := strconv.ParseFloat(parts[2+2*i], 64)
			if err != nil {
				return nil, fmt.Errorf("token %q: bad number", tok)
			}
			xs[i], ws[i] = x, w
		}
		return dist.NewDiscrete(xs, ws), nil
	default:
		return nil, fmt.Errorf("unknown marginal family %q in token %q", parts[0], tok)
	}
}

var (
	posInf = math.Inf(1)
	negInf = math.Inf(-1)
)
