package datasets

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"ucpc/internal/dist"
	"ucpc/internal/uncertain"
)

// ErrMalformed marks unparseable or semantically invalid dataset input
// (bad CSV structure, unknown marginal families, non-finite or
// out-of-domain distribution parameters). Every parser in this package
// wraps it, so callers can test errors.Is(err, ErrMalformed) regardless of
// which reader produced the failure. Malformed rows always surface as
// errors, never as panics — the dist constructors' panic domains are
// validated away before construction.
var ErrMalformed = errors.New("malformed dataset input")

// Uncertain CSV ("ucsv") is a plain-CSV serialization of uncertain
// datasets: one row per object, one field per attribute, and a final
// integer label field (-1 = unlabeled). Each attribute field encodes its
// marginal distribution as colon-separated tokens:
//
//	P:x           point mass at x
//	U:lo:hi       Uniform on [lo, hi]
//	N:mu:sigma:lo:hi   Normal(mu, sigma²) truncated to [lo, hi]
//	E:rate:shift:T     shifted Exponential truncated to [shift, shift+T]
//
// The format loses nothing for the four closed-form families used by the
// uncertainty generator; Discrete marginals are serialized as their
// supporting points: D:x1:w1:x2:w2:…

// WriteUncertainCSV serializes ds to w.
func WriteUncertainCSV(w io.Writer, ds uncertain.Dataset) error {
	cw := csv.NewWriter(w)
	for i, o := range ds {
		row := make([]string, o.Dims()+1)
		for j := 0; j < o.Dims(); j++ {
			tok, err := encodeDist(o.Marginal(j))
			if err != nil {
				return fmt.Errorf("datasets: object %d dim %d: %w", i, j, err)
			}
			row[j] = tok
		}
		row[o.Dims()] = strconv.Itoa(o.Label)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("datasets: write object %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadUncertainCSV parses a dataset serialized by WriteUncertainCSV.
func ReadUncertainCSV(r io.Reader) (uncertain.Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var ds uncertain.Dataset
	rowNum := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("datasets: ucsv row %d: %v: %w", rowNum, err, ErrMalformed)
		}
		rowNum++
		if len(rec) < 2 {
			return nil, fmt.Errorf("datasets: ucsv row %d has %d fields, want >= 2: %w", rowNum, len(rec), ErrMalformed)
		}
		label, err := strconv.Atoi(rec[len(rec)-1])
		if err != nil {
			return nil, fmt.Errorf("datasets: ucsv row %d label %q: %w", rowNum, rec[len(rec)-1], ErrMalformed)
		}
		ms := make([]dist.Distribution, len(rec)-1)
		for j := 0; j < len(rec)-1; j++ {
			d, err := decodeDist(rec[j])
			if err != nil {
				return nil, fmt.Errorf("datasets: ucsv row %d dim %d: %w", rowNum, j, err)
			}
			ms[j] = d
		}
		ds = append(ds, uncertain.NewObject(rowNum-1, ms).WithLabel(label))
	}
	if len(ds) == 0 {
		return nil, fmt.Errorf("datasets: empty ucsv input: %w", ErrMalformed)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// ParseMarginal decodes one ucsv marginal token (see the format comment
// above) into a distribution, applying the same validation as
// ReadUncertainCSV: malformed tokens, unknown families, and parameters
// yielding non-finite moments return a wrapped ErrMalformed, never a panic.
// This is the object wire format of the serving daemon's JSON payloads,
// shared with the CSV reader so there is exactly one hardened parser.
func ParseMarginal(tok string) (dist.Distribution, error) {
	return decodeDist(tok)
}

// FormatMarginal encodes a distribution as its ucsv marginal token, the
// inverse of ParseMarginal for the closed-form families.
func FormatMarginal(d dist.Distribution) (string, error) {
	return encodeDist(d)
}

func encodeDist(d dist.Distribution) (string, error) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	switch t := d.(type) {
	case dist.PointMass:
		return "P:" + f(t.X), nil
	case dist.Uniform:
		return "U:" + f(t.Lo) + ":" + f(t.Hi), nil
	case dist.Normal:
		// Untruncated Normals have no finite region; store their exact
		// parameters with infinite bounds spelled out.
		return "N:" + f(t.Mu) + ":" + f(t.Sigma) + ":-inf:+inf", nil
	case dist.TruncNormal:
		return "N:" + f(t.Mu) + ":" + f(t.Sigma) + ":" + f(t.Lo) + ":" + f(t.Hi), nil
	case dist.Exponential:
		return "E:" + f(t.Rate) + ":" + f(t.Shift) + ":+inf", nil
	case dist.TruncExponential:
		return "E:" + f(t.Rate) + ":" + f(t.Shift) + ":" + f(t.T), nil
	case dist.Discrete:
		var b strings.Builder
		b.WriteString("D")
		for p := 0.0; p < 1; p += 1 / float64(t.N()) {
			x := t.Quantile(p + 0.5/float64(t.N()))
			b.WriteString(":" + f(x) + ":" + f(1/float64(t.N())))
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("unsupported marginal type %T", d)
	}
}

// finite reports whether v is a usable parameter value (not NaN, not ±Inf).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// checkMoments rejects a decoded marginal whose closed-form moments are not
// finite numbers — parameters can be individually finite yet combine into
// overflow (e.g. a Uniform spanning the whole float range) or an empty
// truncation region (NaN moments). Letting such objects through would make
// every downstream distance NaN without any error.
func checkMoments(d dist.Distribution, tok string) (dist.Distribution, error) {
	if !finite(d.Mean()) || !finite(d.SecondMoment()) || !finite(d.Var()) || d.Var() < 0 {
		return nil, fmt.Errorf("token %q: parameters yield non-finite moments: %w", tok, ErrMalformed)
	}
	return d, nil
}

// decodeDist parses one marginal token. Every panic domain of the dist
// constructors is validated away first, so malformed tokens always return a
// wrapped ErrMalformed.
func decodeDist(tok string) (dist.Distribution, error) {
	parts := strings.Split(tok, ":")
	bad := func(format string, args ...any) error {
		return fmt.Errorf("token %q: "+format+": %w", append(append([]any{tok}, args...), ErrMalformed)...)
	}
	nums := func(want int) ([]float64, error) {
		if len(parts)-1 != want {
			return nil, bad("%d params, want %d", len(parts)-1, want)
		}
		out := make([]float64, want)
		for i := 0; i < want; i++ {
			s := parts[i+1]
			switch s {
			case "-inf":
				out[i] = negInf
				continue
			case "+inf", "inf":
				out[i] = posInf
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || math.IsNaN(v) {
				return nil, bad("bad number %q", s)
			}
			out[i] = v
		}
		return out, nil
	}
	switch parts[0] {
	case "P":
		v, err := nums(1)
		if err != nil {
			return nil, err
		}
		if !finite(v[0]) {
			return nil, bad("non-finite point mass %v", v[0])
		}
		return dist.NewPointMass(v[0]), nil
	case "U":
		v, err := nums(2)
		if err != nil {
			return nil, err
		}
		if !finite(v[0]) || !finite(v[1]) || v[1] < v[0] {
			return nil, bad("invalid uniform bounds [%v, %v]", v[0], v[1])
		}
		return checkMoments(dist.NewUniform(v[0], v[1]), tok)
	case "N":
		v, err := nums(4)
		if err != nil {
			return nil, err
		}
		if !finite(v[0]) || !finite(v[1]) || v[1] < 0 {
			return nil, bad("invalid normal location/scale (%v, %v)", v[0], v[1])
		}
		if v[2] == negInf && v[3] == posInf {
			return checkMoments(dist.NewNormal(v[0], v[1]), tok)
		}
		if !finite(v[2]) || !finite(v[3]) || v[3] <= v[2] || v[1] == 0 {
			return nil, bad("invalid truncation [%v, %v] for sigma %v", v[2], v[3], v[1])
		}
		return checkMoments(dist.NewTruncNormal(v[0], v[1], v[2], v[3]), tok)
	case "E":
		if len(parts)-1 == 3 {
			v, err := nums(3)
			if err != nil {
				return nil, err
			}
			if !finite(v[0]) || v[0] <= 0 || !finite(v[1]) {
				return nil, bad("invalid exponential rate/shift (%v, %v)", v[0], v[1])
			}
			if v[2] == posInf {
				return checkMoments(dist.NewExponential(v[0], v[1]), tok)
			}
			if !finite(v[2]) || v[2] <= 0 {
				return nil, bad("invalid exponential window %v", v[2])
			}
			return checkMoments(dist.NewTruncExponential(v[0], v[1], v[2]), tok)
		}
		v, err := nums(2)
		if err != nil {
			return nil, err
		}
		if !finite(v[0]) || v[0] <= 0 || !finite(v[1]) {
			return nil, bad("invalid exponential rate/shift (%v, %v)", v[0], v[1])
		}
		return checkMoments(dist.NewExponential(v[0], v[1]), tok)
	case "D":
		if (len(parts)-1)%2 != 0 || len(parts) == 1 {
			return nil, bad("discrete needs x:w pairs")
		}
		n := (len(parts) - 1) / 2
		xs := make([]float64, n)
		ws := make([]float64, n)
		var total float64
		for i := 0; i < n; i++ {
			x, err := strconv.ParseFloat(parts[1+2*i], 64)
			if err != nil || !finite(x) {
				return nil, bad("bad support point %q", parts[1+2*i])
			}
			w, err := strconv.ParseFloat(parts[2+2*i], 64)
			if err != nil || !finite(w) || w < 0 {
				return nil, bad("bad weight %q", parts[2+2*i])
			}
			xs[i], ws[i] = x, w
			total += w
		}
		if total <= 0 || !finite(total) {
			return nil, bad("discrete weights sum to %v", total)
		}
		return checkMoments(dist.NewDiscrete(xs, ws), tok)
	default:
		return nil, bad("unknown marginal family %q", parts[0])
	}
}

var (
	posInf = math.Inf(1)
	negInf = math.Inf(-1)
)
