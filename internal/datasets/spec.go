// Package datasets provides the data substrate for the experiments: seeded
// synthetic generators shaped like the paper's benchmark datasets (Table
// 1(a)), a probe-level microarray generator standing in for the real
// Neuroblastoma/Leukaemia collections (Table 1(b)), a KDD-Cup-'99-like
// stream for the scalability study, and CSV I/O.
//
// Substitution note (see DESIGN.md): the module is offline, so the UCI and
// Broad-Institute files are unavailable; each generator reproduces the
// published object count, dimensionality, class count, and the qualitative
// difficulty knobs (class overlap and imbalance) that drive the relative
// ranking of the clustering algorithms.
package datasets

import (
	"fmt"
	"math"

	"ucpc/internal/rng"
	"ucpc/internal/vec"
)

// Spec describes one benchmark-shaped synthetic dataset.
type Spec struct {
	// Name matches the paper's Table 1(a).
	Name string
	// N, Dims, Classes are the published object/attribute/class counts.
	N, Dims, Classes int
	// Separation scales the distance between class centers relative to
	// the within-class spread; lower values mean more overlap (harder).
	Separation float64
	// Imbalance in [0,1) skews the class-size distribution: 0 is
	// balanced, values near 1 are strongly Zipf-like.
	Imbalance float64
}

// Validate checks that the spec describes a generatable dataset: at least
// one class, at least as many objects as classes, at least one dimension,
// a finite non-negative Separation of sane magnitude (huge separations
// overflow the class-center random walk into non-finite coordinates), and
// an Imbalance in [0, 1). Generate requires a valid spec; fuzzed or
// user-assembled specs should be validated first. Failures wrap
// ErrMalformed.
func (s Spec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("datasets: spec %q: "+format+": %w", append(append([]any{s.Name}, args...), ErrMalformed)...)
	}
	switch {
	case s.Classes < 1:
		return bad("%d classes", s.Classes)
	case s.N < s.Classes:
		return bad("%d objects for %d classes", s.N, s.Classes)
	case s.Dims < 1:
		return bad("%d dims", s.Dims)
	case math.IsNaN(s.Separation) || s.Separation < 0 || s.Separation > 1e6:
		return bad("separation %v outside [0, 1e6]", s.Separation)
	case math.IsNaN(s.Imbalance) || s.Imbalance < 0 || s.Imbalance >= 1:
		return bad("imbalance %v outside [0, 1)", s.Imbalance)
	}
	return nil
}

// Benchmarks returns the specs mirroring Table 1(a) (KDDCup99 excluded;
// see KDDSpec). Separation/imbalance are tuned per dataset to reflect the
// qualitative difficulty visible in the paper's Table 2 (e.g. Iris is easy,
// Glass/Yeast are hard and skewed).
func Benchmarks() []Spec {
	return []Spec{
		{Name: "Iris", N: 150, Dims: 4, Classes: 3, Separation: 3.0, Imbalance: 0},
		{Name: "Wine", N: 178, Dims: 13, Classes: 3, Separation: 2.2, Imbalance: 0.1},
		{Name: "Glass", N: 214, Dims: 10, Classes: 6, Separation: 1.4, Imbalance: 0.45},
		{Name: "Ecoli", N: 327, Dims: 7, Classes: 5, Separation: 1.8, Imbalance: 0.4},
		{Name: "Yeast", N: 1484, Dims: 8, Classes: 10, Separation: 1.2, Imbalance: 0.5},
		{Name: "Image", N: 2310, Dims: 19, Classes: 7, Separation: 2.0, Imbalance: 0},
		{Name: "Abalone", N: 4124, Dims: 7, Classes: 17, Separation: 1.1, Imbalance: 0.35},
		{Name: "Letter", N: 7648, Dims: 16, Classes: 10, Separation: 1.6, Imbalance: 0.05},
	}
}

// BenchmarkByName returns the spec with the given name.
func BenchmarkByName(name string) (Spec, error) {
	for _, s := range Benchmarks() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown benchmark %q", name)
}

// Deterministic is a labeled deterministic dataset: the input of the
// uncertainty-generation pipeline (paper §5.1).
type Deterministic struct {
	Name   string
	Points []vec.Vector
	Labels []int
	// Classes is the number of reference classes.
	Classes int
}

// Scale returns a down-sampled copy keeping ceil(frac·N) points while
// preserving every class (stratified head sampling). frac > 1 is clamped.
func (d *Deterministic) Scale(frac float64) *Deterministic {
	if frac >= 1 {
		return d
	}
	if frac <= 0 {
		panic("datasets: non-positive scale fraction")
	}
	keep := int(float64(len(d.Points)) * frac)
	if keep < d.Classes {
		keep = d.Classes
	}
	// First pass: one representative per class, in input order.
	out := &Deterministic{Name: d.Name, Classes: d.Classes}
	seen := map[int]bool{}
	chosen := make([]bool, len(d.Points))
	for i, l := range d.Labels {
		if !seen[l] {
			seen[l] = true
			chosen[i] = true
		}
	}
	// Second pass: fill up with an even stride so all regions are covered.
	need := keep - len(seen)
	if need > 0 {
		stride := float64(len(d.Points)) / float64(need)
		for t := 0; t < need; t++ {
			i := int(float64(t) * stride)
			for i < len(chosen) && chosen[i] {
				i++
			}
			if i < len(chosen) {
				chosen[i] = true
			}
		}
	}
	for i := range d.Points {
		if chosen[i] {
			out.Points = append(out.Points, d.Points[i])
			out.Labels = append(out.Labels, d.Labels[i])
		}
	}
	return out
}

// Dims returns the attribute count.
func (d *Deterministic) Dims() int {
	if len(d.Points) == 0 {
		return 0
	}
	return len(d.Points[0])
}

// PerDimStd returns the per-dimension standard deviation of the points,
// used to scale uncertainty parameters relative to the data spread.
func (d *Deterministic) PerDimStd() vec.Vector {
	m := d.Dims()
	n := float64(len(d.Points))
	mean := vec.New(m)
	for _, p := range d.Points {
		vec.AddInPlace(mean, p)
	}
	vec.ScaleInPlace(mean, 1/n)
	std := vec.New(m)
	for _, p := range d.Points {
		for j := 0; j < m; j++ {
			dlt := p[j] - mean[j]
			std[j] += dlt * dlt
		}
	}
	for j := 0; j < m; j++ {
		std[j] = math.Sqrt(std[j] / n)
		if std[j] == 0 {
			std[j] = 1
		}
	}
	return std
}

// Generate builds the deterministic dataset for a spec: a Gaussian mixture
// with Spec.Classes components in Spec.Dims dimensions, class centers
// placed by a seeded random walk at Spec.Separation times the within-class
// spread, and class sizes skewed by Spec.Imbalance.
func Generate(spec Spec, seed uint64) *Deterministic {
	r := rng.New(seed).Split(hashName(spec.Name))
	centers := make([]vec.Vector, spec.Classes)
	spreads := make([]vec.Vector, spec.Classes)
	for c := range centers {
		centers[c] = make(vec.Vector, spec.Dims)
		spreads[c] = make(vec.Vector, spec.Dims)
		for j := 0; j < spec.Dims; j++ {
			centers[c][j] = r.Normal(0, spec.Separation)
			spreads[c][j] = 0.5 + r.Float64() // within-class σ in [0.5, 1.5)
		}
	}
	sizes := classSizes(spec.N, spec.Classes, spec.Imbalance, r)

	out := &Deterministic{Name: spec.Name, Classes: spec.Classes}
	for c := 0; c < spec.Classes; c++ {
		for i := 0; i < sizes[c]; i++ {
			p := make(vec.Vector, spec.Dims)
			for j := 0; j < spec.Dims; j++ {
				p[j] = centers[c][j] + r.Normal(0, spreads[c][j])
			}
			out.Points = append(out.Points, p)
			out.Labels = append(out.Labels, c)
		}
	}
	return out
}

// classSizes splits n into k parts with a Zipf-like skew controlled by
// imbalance in [0,1); every class receives at least one object.
func classSizes(n, k int, imbalance float64, r *rng.RNG) []int {
	weights := make([]float64, k)
	var total float64
	for c := range weights {
		// weight ∝ 1/(c+1)^s with s grown from imbalance; jitter breaks ties.
		s := 2 * imbalance
		weights[c] = (1 + 0.1*r.Float64()) / math.Pow(float64(c+1), s)
		total += weights[c]
	}
	sizes := make([]int, k)
	assigned := 0
	for c := range sizes {
		sizes[c] = int(float64(n) * weights[c] / total)
		if sizes[c] < 1 {
			sizes[c] = 1
		}
		assigned += sizes[c]
	}
	// Distribute the rounding remainder (or trim overflow) on class 0.
	sizes[0] += n - assigned
	if sizes[0] < 1 {
		// The min-1 clamps overshot n (k close to n with heavy skew): pay
		// the deficit back from the largest classes, never taking any class
		// below 1. Σ sizes = n + deficit and every class holds ≥ 1 except
		// class 0 (reset to 1 here), so n ≥ k guarantees the loop drains
		// the deficit. A single unbounded borrow used to leave a *negative*
		// class size here, silently generating more than n objects (found
		// by FuzzSpecGenerate).
		deficit := 1 - sizes[0]
		sizes[0] = 1
		for deficit > 0 {
			largest := 0
			for c := range sizes {
				if sizes[c] > sizes[largest] {
					largest = c
				}
			}
			take := sizes[largest] - 1
			if take <= 0 {
				panic("datasets: classSizes cannot satisfy n >= k")
			}
			if take > deficit {
				take = deficit
			}
			sizes[largest] -= take
			deficit -= take
		}
	}
	return sizes
}

func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
