package datasets

import (
	"ucpc/internal/vec"
)

// KDDSpec mirrors the KDD Cup '99 row of Table 1(a): 4 million connection
// records, 42 attributes, 23 classes with an extremely skewed class
// distribution (three classes — smurf, neptune, normal — cover ~98 % of the
// real collection).
type KDDSpec struct {
	N, Dims, Classes int
}

// KDD returns the full-size spec.
func KDD() KDDSpec { return KDDSpec{N: 4_000_000, Dims: 42, Classes: 23} }

// GenerateKDD synthesizes n records shaped like the KDD Cup '99 data: 23
// Gaussian classes in 42 dimensions whose prior follows the published heavy
// skew, with every class guaranteed at least one record (the paper's
// scalability study "ensured that all 23 classes were covered"). It
// collects n records from a KDDStream, so the batch experiments and the
// out-of-core streaming experiment (-exp scale) consume the exact same
// record sequence for a given seed; use NewKDDStream directly when the
// records should not all be resident at once.
func GenerateKDD(n int, seed uint64) *Deterministic {
	spec := KDD()
	if n < spec.Classes {
		n = spec.Classes
	}
	s := NewKDDStream(seed)
	out := &Deterministic{Name: "KDDCup99", Classes: spec.Classes}
	out.Points = make([]vec.Vector, 0, n)
	out.Labels = make([]int, 0, n)
	for i := 0; i < n; i++ {
		p := make(vec.Vector, spec.Dims)
		out.Labels = append(out.Labels, s.Next(p))
		out.Points = append(out.Points, p)
	}
	return out
}
