package datasets

import (
	"math"

	"ucpc/internal/rng"
	"ucpc/internal/vec"
)

// KDDSpec mirrors the KDD Cup '99 row of Table 1(a): 4 million connection
// records, 42 attributes, 23 classes with an extremely skewed class
// distribution (three classes — smurf, neptune, normal — cover ~98 % of the
// real collection).
type KDDSpec struct {
	N, Dims, Classes int
}

// KDD returns the full-size spec.
func KDD() KDDSpec { return KDDSpec{N: 4_000_000, Dims: 42, Classes: 23} }

// GenerateKDD synthesizes n records shaped like the KDD Cup '99 data: 23
// Gaussian classes in 42 dimensions whose prior follows the published heavy
// skew, with every class guaranteed at least one record (the paper's
// scalability study "ensured that all 23 classes were covered"). The
// generator is O(n) and streams record-by-record, so the full 4 M size is
// reachable when desired.
func GenerateKDD(n int, seed uint64) *Deterministic {
	spec := KDD()
	if n < spec.Classes {
		n = spec.Classes
	}
	r := rng.New(seed).Split(hashName("KDDCup99"))

	// Class priors: geometric-style decay normalized to 1, approximating
	// the real 57%/22%/19%/... skew.
	priors := make([]float64, spec.Classes)
	total := 0.0
	for c := range priors {
		priors[c] = math.Pow(0.45, float64(c))
		total += priors[c]
	}
	cum := make([]float64, spec.Classes)
	acc := 0.0
	for c := range priors {
		acc += priors[c] / total
		cum[c] = acc
	}

	centers := make([]vec.Vector, spec.Classes)
	for c := range centers {
		centers[c] = make(vec.Vector, spec.Dims)
		for j := 0; j < spec.Dims; j++ {
			centers[c][j] = r.Normal(0, 3)
		}
	}

	out := &Deterministic{Name: "KDDCup99", Classes: spec.Classes}
	out.Points = make([]vec.Vector, 0, n)
	out.Labels = make([]int, 0, n)
	// One guaranteed record per class first.
	emit := func(c int) {
		p := make(vec.Vector, spec.Dims)
		for j := 0; j < spec.Dims; j++ {
			p[j] = centers[c][j] + r.Normal(0, 1)
		}
		out.Points = append(out.Points, p)
		out.Labels = append(out.Labels, c)
	}
	for c := 0; c < spec.Classes; c++ {
		emit(c)
	}
	for i := spec.Classes; i < n; i++ {
		u := r.Float64()
		c := 0
		for c < spec.Classes-1 && u > cum[c] {
			c++
		}
		emit(c)
	}
	return out
}
