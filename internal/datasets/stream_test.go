package datasets

import "testing"

// TestKDDStreamMatchesGenerate: the record stream and the batch generator
// must produce the identical sequence for a seed — the contract that puts
// the batch and streaming experiments on the same data.
func TestKDDStreamMatchesGenerate(t *testing.T) {
	const n = 200
	d := GenerateKDD(n, 42)
	s := NewKDDStream(42)
	if s.Dims() != KDD().Dims || s.Classes() != KDD().Classes {
		t.Fatalf("stream shape %d/%d", s.Dims(), s.Classes())
	}
	p := make([]float64, s.Dims())
	for i := 0; i < n; i++ {
		label := s.Next(p)
		if label != d.Labels[i] {
			t.Fatalf("record %d: stream label %d, batch label %d", i, label, d.Labels[i])
		}
		for j := range p {
			if p[j] != d.Points[i][j] {
				t.Fatalf("record %d dim %d: stream %v, batch %v", i, j, p[j], d.Points[i][j])
			}
		}
	}
	// Every class covered within the first Classes records.
	seen := map[int]bool{}
	for _, l := range d.Labels[:s.Classes()] {
		seen[l] = true
	}
	if len(seen) != s.Classes() {
		t.Fatalf("first %d records cover %d classes", s.Classes(), len(seen))
	}
}
