package experiments

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ucpc"
	"ucpc/internal/eval"
	"ucpc/internal/serve"
	"ucpc/internal/uncertain"
)

// Durable is the daemon durability + federation fault-injection experiment
// behind `cmd/uncbench -exp durable` (DURABLE_PR9.json). It exercises the
// two robustness contracts the daemon makes:
//
// Phase A (kill-recover): a daemon with a -state-dir ingests an uncertain
// stream, persists a snapshot mid-stream, keeps ingesting, and is then
// killed without warning — kill -9 when a daemon binary is supplied, the
// in-process crash hook otherwise. A second daemon booted on the same state
// directory must resume serving assigns from the recovered model with zero
// 5xx, resume the stream from the manifest's ingested offset, and end
// within KillTolerance of a clean single-engine fit over the same objects.
//
// Phase B (flaky federation): three edge daemons push their UCWS statistics
// to one coordinator through a fault injector that first black-holes every
// push (until the circuit breaker opens) and then keeps mixing 500s,
// dropped connections, and latency into the path. Despite the faults, the
// coordinator's merged model must converge within FedTolerance of the same
// single-engine reference — keyed source replacement makes re-pushed
// cumulative statistics idempotent, so the flaky path costs retries, not
// correctness.

// DurableConfig sizes the durability experiment. The zero value selects the
// CI workload; smoke tests shrink N.
type DurableConfig struct {
	// N is the total number of uncertain objects in the stream
	// (default 6000).
	N int
	// K is the number of clusters (default 4).
	K int
	// BatchSize is the streaming mini-batch size (default 512).
	BatchSize int
	// Subsample is the evaluation subsample size (default 2000).
	Subsample int
	// Seed drives the object stream and the fits (0 = 1).
	Seed uint64
	// Edges is the number of edge daemons in phase B (default 3).
	Edges int
	// PushInterval is the edges' steady push cadence (default 20ms).
	PushInterval time.Duration
	// DaemonBin is a built ucpcd binary; when set, phase A runs it as a
	// child process and crashes it with SIGKILL. Empty selects the
	// in-process crash hook (serve.Server.Abort) — same recovery path,
	// no process isolation.
	DaemonBin string
	// KillTolerance and FedTolerance are the one-sided quality gates for
	// the recovered and federated models against the single-engine
	// reference (defaults 0.05 and 0.02).
	KillTolerance float64
	FedTolerance  float64
	// Progress, when non-nil, receives one line per phase.
	Progress func(format string, args ...any)
}

func (c DurableConfig) withDefaults() DurableConfig {
	if c.N == 0 {
		c.N = 6000
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 512
	}
	if c.Subsample == 0 {
		c.Subsample = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Edges == 0 {
		c.Edges = 3
	}
	if c.PushInterval == 0 {
		c.PushInterval = 20 * time.Millisecond
	}
	if c.KillTolerance == 0 {
		c.KillTolerance = 0.05
	}
	if c.FedTolerance == 0 {
		c.FedTolerance = 0.02
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
	return c
}

// DurableResult is the JSON payload of the durability experiment
// (DURABLE_PR9.json).
type DurableResult struct {
	N         int    `json:"n"`
	K         int    `json:"k"`
	BatchSize int    `json:"batch_size"`
	Subsample int    `json:"subsample"`
	Edges     int    `json:"edges"`
	Mode      string `json:"mode"` // "process" (kill -9) or "in-process" (Abort)

	// SingleQuality is the clean single-engine reference both phases are
	// gated against (eval.Quality on the regenerated subsample).
	SingleQuality float64 `json:"single_quality"`

	// Phase A: the kill-recover ledger.
	PersistedAtKill   int64   `json:"persisted_at_kill"`
	RecoveredIngested int64   `json:"recovered_ingested"`
	RecoveryAssigns   int     `json:"recovery_assigns"`
	RecoveryAssign5xx int     `json:"recovery_assign_5xx"`
	RecoveredQuality  float64 `json:"recovered_quality"`
	KillTolerance     float64 `json:"kill_tolerance"`

	// Phase B: the flaky-federation ledger.
	FaultsInjected   int64   `json:"faults_injected"`
	PushFailures     int64   `json:"push_failures"`
	BreakerOpened    bool    `json:"breaker_opened"`
	FederatedQuality float64 `json:"federated_quality"`
	FedTolerance     float64 `json:"fed_tolerance"`
}

// durableDaemon abstracts "a running daemon" over the two phase-A modes: a
// ucpcd child process (crash = SIGKILL) or an in-process serve.Server
// (crash = Abort). Both leave the state directory exactly as a power cut
// would: nothing persisted after the last completed snapshot.
type durableDaemon interface {
	base() string // http://host:port
	crash() error // die without any cleanup
	stop() error  // graceful SIGTERM-path shutdown (final snapshot)
}

type inProcDaemon struct {
	srv  *serve.Server
	addr string
	done chan error
}

func (d *inProcDaemon) base() string { return "http://" + d.addr }

func (d *inProcDaemon) crash() error {
	d.srv.Abort()
	<-d.done
	return nil
}

func (d *inProcDaemon) stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		return err
	}
	return <-d.done
}

func startInProc(cfg serve.Config) (*inProcDaemon, error) {
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	d := &inProcDaemon{srv: srv, addr: l.Addr().String(), done: make(chan error, 1)}
	go func() { d.done <- srv.Serve(l) }()
	return d, nil
}

type procDaemon struct {
	cmd  *exec.Cmd
	addr string
}

func (d *procDaemon) base() string { return "http://" + d.addr }

func (d *procDaemon) crash() error {
	// SIGKILL: the daemon gets no chance to flush anything.
	if err := d.cmd.Process.Kill(); err != nil {
		return err
	}
	_ = d.cmd.Wait()
	return nil
}

func (d *procDaemon) stop() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	return d.cmd.Wait()
}

// startProc execs the ucpcd binary on an ephemeral port and parses the
// listen address from its startup line.
func startProc(bin, stateDir string) (*procDaemon, error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-state-dir", stateDir,
		"-snapshot-interval", "1h",
		"-grace", "30s",
		"-quiet")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("durable: start %s: %w", bin, err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "ucpcd: listening on "); ok {
			// Keep draining stdout so the child never blocks on the pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return &procDaemon{cmd: cmd, addr: strings.TrimSpace(rest)}, nil
		}
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	return nil, fmt.Errorf("durable: %s exited before announcing its listen address", bin)
}

// waitTenant polls the tenant until cond is satisfied (or ctx/deadline
// expires), returning the last info read.
func (c *serveClient) waitTenant(ctx context.Context, tenant string, what string,
	cond func(map[string]any) bool) (map[string]any, error) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		status, raw, err := c.get(ctx, "/v1/tenants/"+tenant)
		if err != nil {
			return nil, err
		}
		var info map[string]any
		if status != 200 || json.Unmarshal(raw, &info) != nil {
			return nil, fmt.Errorf("durable: tenant %s info: status %d (%s)", tenant, status, raw)
		}
		if cond(info) {
			return info, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("durable: tenant %s: timed out waiting for %s (info %s)", tenant, what, raw)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// num reads a numeric field from a decoded tenant info map (absent = 0).
func num(info map[string]any, key string) int64 {
	v, _ := info[key].(float64)
	return int64(v)
}

// streamTo posts objects [from, to) of the deterministic source to the
// tenant's observe path, retrying 429 backpressure.
func (c *serveClient) streamTo(ctx context.Context, tenant string, src *scaleSource, from, to int) error {
	// The source is positional: skip to the offset by discarding.
	for skipped := 0; skipped < from; {
		n := 1000
		if rest := from - skipped; n > rest {
			n = rest
		}
		src.take(nil, n)
		skipped += n
	}
	chunk := make(uncertain.Dataset, 0, 500)
	for streamed := from; streamed < to; {
		n := 500
		if rest := to - streamed; n > rest {
			n = rest
		}
		chunk = src.take(chunk[:0], n)
		body, err := encodeObjects(chunk)
		if err != nil {
			return err
		}
		for {
			status, raw, err := c.post(ctx, "/v1/tenants/"+tenant+"/observe", body)
			if err != nil {
				return fmt.Errorf("durable: observe: %w", err)
			}
			if status == http.StatusAccepted {
				break
			}
			if status != http.StatusTooManyRequests {
				return fmt.Errorf("durable: observe: status %d (%s)", status, raw)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
		}
		streamed += n
	}
	return nil
}

// assignQuality assigns the evaluation subsample over HTTP in chunks and
// scores the partition with eval.Quality.
func (c *serveClient) assignQuality(ctx context.Context, tenant string, k int, sub uncertain.Dataset) (float64, error) {
	labels := make([]int, 0, len(sub))
	for lo := 0; lo < len(sub); lo += 500 {
		hi := lo + 500
		if hi > len(sub) {
			hi = len(sub)
		}
		body, err := encodeObjects(sub[lo:hi])
		if err != nil {
			return 0, err
		}
		raw, err := c.mustPost(ctx, "/v1/tenants/"+tenant+"/assign", body, 200)
		if err != nil {
			return 0, err
		}
		var resp struct {
			Assign []int `json:"assign"`
		}
		if err := json.Unmarshal(raw, &resp); err != nil {
			return 0, err
		}
		labels = append(labels, resp.Assign...)
	}
	if len(labels) != len(sub) {
		return 0, fmt.Errorf("durable: assigned %d of %d subsample objects", len(labels), len(sub))
	}
	return eval.Quality(sub, ucpc.Partition{K: k, Assign: labels}), nil
}

// singleReference fits a clean single stream engine over the same N objects
// and scores it — the baseline both fault phases are gated against.
func singleReference(ctx context.Context, cfg DurableConfig, sub uncertain.Dataset) (float64, error) {
	fit, err := (&ucpc.StreamClusterer{Config: ucpc.StreamConfig{
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
	}}).Begin(ctx, cfg.K)
	if err != nil {
		return 0, err
	}
	src := newScaleSource(cfg.Seed)
	chunk := make(uncertain.Dataset, 0, cfg.BatchSize)
	for streamed := 0; streamed < cfg.N; {
		n := cfg.BatchSize
		if rest := cfg.N - streamed; n > rest {
			n = rest
		}
		chunk = src.take(chunk[:0], n)
		if err := fit.Observe(ctx, chunk); err != nil {
			return 0, err
		}
		streamed += n
	}
	snap, err := fit.Snapshot()
	if err != nil {
		return 0, err
	}
	assign, err := snap.Assign(ctx, sub)
	if err != nil {
		return 0, err
	}
	return eval.Quality(sub, ucpc.Partition{K: snap.K(), Assign: assign}), nil
}

// Durable runs the durability + federation fault-injection experiment.
func Durable(ctx context.Context, cfg DurableConfig) (*DurableResult, error) {
	cfg = cfg.withDefaults()
	res := &DurableResult{
		N: cfg.N, K: cfg.K, BatchSize: cfg.BatchSize, Subsample: cfg.Subsample,
		Edges: cfg.Edges, Mode: "in-process",
		KillTolerance: cfg.KillTolerance, FedTolerance: cfg.FedTolerance,
	}
	if cfg.DaemonBin != "" {
		res.Mode = "process"
	}
	sub := newScaleSource(cfg.Seed).take(make(uncertain.Dataset, 0, cfg.Subsample), cfg.Subsample)

	cfg.Progress("durable: single-engine reference fit over %d objects", cfg.N)
	var err error
	if res.SingleQuality, err = singleReference(ctx, cfg, sub); err != nil {
		return nil, err
	}

	if err := durableKillRecover(ctx, cfg, sub, res); err != nil {
		return nil, err
	}
	if err := durableFederation(ctx, cfg, sub, res); err != nil {
		return nil, err
	}
	return res, nil
}

// durableKillRecover is phase A.
func durableKillRecover(ctx context.Context, cfg DurableConfig, sub uncertain.Dataset, res *DurableResult) error {
	dir, err := os.MkdirTemp("", "ucpc-durable-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	start := func() (durableDaemon, error) {
		if cfg.DaemonBin != "" {
			return startProc(cfg.DaemonBin, dir)
		}
		return startInProc(serve.Config{StateDir: dir, SnapshotInterval: time.Hour})
	}
	d1, err := start()
	if err != nil {
		return err
	}
	cl := &serveClient{base: d1.base(), client: &http.Client{}}

	spec := fmt.Sprintf(`{"id":"dur","k":%d,"seed":%d,"batch_size":%d}`, cfg.K, cfg.Seed, cfg.BatchSize)
	if _, err := cl.mustPost(ctx, "/v1/tenants", spec, 201); err != nil {
		d1.crash()
		return err
	}

	// Ingest 60%, install + persist a snapshot, then keep streaming to 80%
	// and pull the plug mid-stream: everything after the snapshot is the
	// data-loss window this phase proves is survivable.
	milestone, killPoint := cfg.N*3/5, cfg.N*4/5
	if err := cl.streamTo(ctx, "dur", newScaleSource(cfg.Seed), 0, milestone); err != nil {
		d1.crash()
		return err
	}
	if err := cl.waitIngested(ctx, "dur", int64(milestone)); err != nil {
		d1.crash()
		return err
	}
	if _, err := cl.mustPost(ctx, "/v1/tenants/dur/snapshot", "", 200); err != nil {
		d1.crash()
		return err
	}
	info, err := cl.waitTenant(ctx, "dur", "durable snapshot", func(m map[string]any) bool {
		return num(m, "persisted_seen") >= int64(milestone)
	})
	if err != nil {
		d1.crash()
		return err
	}
	res.PersistedAtKill = num(info, "persisted_seen")
	if err := cl.streamTo(ctx, "dur", newScaleSource(cfg.Seed), milestone, killPoint); err != nil {
		d1.crash()
		return err
	}
	cfg.Progress("durable: killing daemon at %d/%d objects (last snapshot covers %d)",
		killPoint, cfg.N, res.PersistedAtKill)
	if err := d1.crash(); err != nil {
		return fmt.Errorf("durable: crash: %w", err)
	}

	// Restart on the same state directory: the tenant must be back, serving
	// from the recovered model, with the ingested offset resumed from the
	// manifest.
	d2, err := start()
	if err != nil {
		return fmt.Errorf("durable: restart after kill: %w", err)
	}
	cl = &serveClient{base: d2.base(), client: &http.Client{}}
	info, err = cl.waitTenant(ctx, "dur", "recovered model", func(m map[string]any) bool {
		has, _ := m["has_model"].(bool)
		return has
	})
	if err != nil {
		d2.crash()
		return err
	}
	res.RecoveredIngested = num(info, "ingested_objects")

	// The zero-5xx gate: post-recovery assigns must be served from the
	// recovered model immediately.
	probe, err := encodeObjects(newScaleSource(cfg.Seed^0x9e37).take(nil, 16))
	if err != nil {
		d2.crash()
		return err
	}
	for i := 0; i < 40; i++ {
		status, raw, err := cl.post(ctx, "/v1/tenants/dur/assign", probe)
		if err != nil {
			d2.crash()
			return fmt.Errorf("durable: post-recovery assign: %w", err)
		}
		res.RecoveryAssigns++
		if status >= 500 {
			res.RecoveryAssign5xx++
		} else if status != 200 {
			d2.crash()
			return fmt.Errorf("durable: post-recovery assign: status %d (%s)", status, raw)
		}
	}
	cfg.Progress("durable: recovered tenant served %d assigns (%d 5xx), resuming stream from %d",
		res.RecoveryAssigns, res.RecoveryAssign5xx, res.RecoveredIngested)

	// Resume the stream from the manifest offset (the deterministic source
	// regenerates exactly the objects the crash threw away) and finish.
	if err := cl.streamTo(ctx, "dur", newScaleSource(cfg.Seed), int(res.RecoveredIngested), cfg.N); err != nil {
		d2.crash()
		return err
	}
	if err := cl.waitIngested(ctx, "dur", int64(cfg.N)); err != nil {
		d2.crash()
		return err
	}
	if _, err := cl.mustPost(ctx, "/v1/tenants/dur/snapshot", "", 200); err != nil {
		d2.crash()
		return err
	}
	if res.RecoveredQuality, err = cl.assignQuality(ctx, "dur", cfg.K, sub); err != nil {
		d2.crash()
		return err
	}
	cfg.Progress("durable: recovered quality %.4f vs single-engine %.4f",
		res.RecoveredQuality, res.SingleQuality)
	return d2.stop()
}

// durableFederation is phase B: Edges edge daemons push through a fault
// injector to one coordinator; the merged model must converge anyway.
func durableFederation(ctx context.Context, cfg DurableConfig, sub uncertain.Dataset, res *DurableResult) error {
	coord, err := startInProc(serve.Config{})
	if err != nil {
		return err
	}
	defer coord.stop()
	coordCl := &serveClient{base: coord.base(), client: &http.Client{}}
	spec := fmt.Sprintf(`{"id":"fed","k":%d,"seed":%d,"shards":1,"batch_size":%d}`, cfg.K, cfg.Seed, cfg.BatchSize)
	if _, err := coordCl.mustPost(ctx, "/v1/tenants", spec, 201); err != nil {
		return err
	}

	// The fault injector sits between the edges and the coordinator. Mode 0
	// is a full outage (every push fails — drives the breaker open); mode 1
	// is flaky: a rotating mix of 500s, dropped connections, and injected
	// latency, with enough clean forwards that steady pushing converges.
	var (
		mode    atomic.Int32 // 0 = outage, 1 = flaky
		counter atomic.Int64
		faults  atomic.Int64
	)
	coordHandler := coord.srv.Handler()
	proxy := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mode.Load() == 0 {
			faults.Add(1)
			http.Error(w, "injected outage", http.StatusInternalServerError)
			return
		}
		switch counter.Add(1) % 4 {
		case 0:
			faults.Add(1)
			http.Error(w, "injected 500", http.StatusInternalServerError)
		case 1:
			faults.Add(1)
			panic(http.ErrAbortHandler) // injected dropped connection
		case 2:
			faults.Add(1)
			time.Sleep(5 * time.Millisecond) // injected latency, then forward
			coordHandler.ServeHTTP(w, r)
		default:
			coordHandler.ServeHTTP(w, r)
		}
	})}
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go proxy.Serve(pl)
	defer proxy.Close()
	proxyURL := "http://" + pl.Addr().String()

	// Edges: one stream tenant each, all pushing through the injector under
	// distinct source keys. Every edge first observes the same bootstrap
	// window (the stream's first mini-batch) with the same seed, so all
	// engines derive identical initial centroids — cluster indices then
	// correspond across edges, which is what makes the coordinator's keyed
	// merge principled: it sums per-cluster statistics that describe the
	// same cluster. The rest of the stream is partitioned round-robin.
	edges := make([]*inProcDaemon, cfg.Edges)
	clients := make([]*serveClient, cfg.Edges)
	counts := make([]int, cfg.Edges)
	for i := range edges {
		edges[i], err = startInProc(serve.Config{
			PushTo:       proxyURL,
			PushInterval: cfg.PushInterval,
			PushTimeout:  2 * time.Second,
			PushSource:   fmt.Sprintf("edge%d", i),
		})
		if err != nil {
			return err
		}
		defer edges[i].stop()
		clients[i] = &serveClient{base: edges[i].base(), client: &http.Client{}}
		espec := fmt.Sprintf(`{"id":"fed","k":%d,"seed":%d,"batch_size":%d}`, cfg.K, cfg.Seed, cfg.BatchSize)
		if _, err := clients[i].mustPost(ctx, "/v1/tenants", espec, 201); err != nil {
			return err
		}
	}
	src := newScaleSource(cfg.Seed)
	// The bootstrap must cover a full seeding window (one mini-batch), or
	// the engines seed from diverged windows and alignment is lost.
	bootstrap := cfg.BatchSize
	if bootstrap > cfg.N {
		bootstrap = cfg.N
	}
	boot := src.take(make(uncertain.Dataset, 0, bootstrap), bootstrap)
	bootBody, err := encodeObjects(boot)
	if err != nil {
		return err
	}
	for i := range edges {
		if _, err := clients[i].mustPost(ctx, "/v1/tenants/fed/observe", bootBody, 202); err != nil {
			return err
		}
		counts[i] = bootstrap
	}
	portion := make(uncertain.Dataset, 0, 500)
	for streamed := bootstrap; streamed < cfg.N; {
		n := 500
		if rest := cfg.N - streamed; n > rest {
			n = rest
		}
		portion = src.take(portion[:0], n)
		for i := range edges {
			var slice uncertain.Dataset
			for j, o := range portion {
				if (streamed+j)%cfg.Edges == i {
					slice = append(slice, o)
				}
			}
			body, err := encodeObjects(slice)
			if err != nil {
				return err
			}
			if _, err := clients[i].mustPost(ctx, "/v1/tenants/fed/observe", body, 202); err != nil {
				return err
			}
			counts[i] += len(slice)
		}
		streamed += n
	}
	for i := range edges {
		if err := clients[i].waitIngested(ctx, "fed", int64(counts[i])); err != nil {
			return err
		}
	}

	// Outage: every push fails until edge0's breaker opens — proof the
	// degraded-to-local-only path engaged while ingestion kept running.
	if _, err := clients[0].waitTenant(ctx, "fed", "push breaker open", func(m map[string]any) bool {
		open, _ := m["push_breaker_open"].(bool)
		return open
	}); err != nil {
		return err
	}
	res.BreakerOpened = true
	cfg.Progress("durable: coordinator outage opened edge0's breaker after %d faults", faults.Load())

	// Heal to flaky: pushes keep failing intermittently, but each edge's
	// cumulative statistics land eventually — lastPushSeen reaching the
	// edge's full portion means the coordinator holds its complete view.
	mode.Store(1)
	for i := range edges {
		info, err := clients[i].waitTenant(ctx, "fed", "full view pushed", func(m map[string]any) bool {
			return num(m, "last_push_seen") >= int64(counts[i])
		})
		if err != nil {
			return err
		}
		res.PushFailures += num(info, "push_failures")
	}
	res.FaultsInjected = faults.Load()
	cfg.Progress("durable: all %d edges converged through the flaky path (%d faults, %d push failures)",
		cfg.Edges, res.FaultsInjected, res.PushFailures)

	if _, err := coordCl.mustPost(ctx, "/v1/tenants/fed/snapshot", "", 200); err != nil {
		return err
	}
	if res.FederatedQuality, err = coordCl.assignQuality(ctx, "fed", cfg.K, sub); err != nil {
		return err
	}
	cfg.Progress("durable: federated quality %.4f vs single-engine %.4f",
		res.FederatedQuality, res.SingleQuality)
	return nil
}

// RenderDurable formats the result for terminal output.
func RenderDurable(r *DurableResult) string {
	breaker := "opened and closed"
	if !r.BreakerOpened {
		breaker = "NEVER OPENED"
	}
	return fmt.Sprintf(`daemon durability (-exp durable)
  kill-recover (%s): snapshot at %d/%d objects, killed at ~%d, restart resumed from %d
  recovery serving:  %d assigns, %d with 5xx
  quality:           recovered %.4f, federated %.4f vs single-engine %.4f (tolerances %.0f%% / %.0f%%)
  federation:        %d edges through fault injector — %d faults, %d push failures, breaker %s
`,
		r.Mode, r.PersistedAtKill, r.N, r.N*4/5, r.RecoveredIngested,
		r.RecoveryAssigns, r.RecoveryAssign5xx,
		r.RecoveredQuality, r.FederatedQuality, r.SingleQuality,
		100*r.KillTolerance, 100*r.FedTolerance,
		r.Edges, r.FaultsInjected, r.PushFailures, breaker)
}

// Check applies the durability acceptance gates: a real snapshot existed
// before the kill, recovery served with zero 5xx from an offset no older
// than that snapshot, both fault phases actually injected faults, and the
// recovered and federated models hold their quality tolerances against the
// clean single-engine reference (one-sided — better passes).
func (r *DurableResult) Check() error {
	if r.PersistedAtKill <= 0 {
		return fmt.Errorf("durable: no snapshot was persisted before the kill")
	}
	if r.RecoveredIngested < r.PersistedAtKill {
		return fmt.Errorf("durable: restart resumed from %d, older than the %d-object snapshot",
			r.RecoveredIngested, r.PersistedAtKill)
	}
	if r.RecoveryAssigns == 0 || r.RecoveryAssign5xx != 0 {
		return fmt.Errorf("durable: post-recovery serving: %d assigns, %d answered 5xx",
			r.RecoveryAssigns, r.RecoveryAssign5xx)
	}
	if r.RecoveredQuality < r.SingleQuality-r.KillTolerance*math.Abs(r.SingleQuality) {
		return fmt.Errorf("durable: recovered quality %.4f more than %.0f%% below single-engine %.4f",
			r.RecoveredQuality, 100*r.KillTolerance, r.SingleQuality)
	}
	if !r.BreakerOpened {
		return fmt.Errorf("durable: the coordinator outage never opened the circuit breaker")
	}
	if r.FaultsInjected == 0 || r.PushFailures == 0 {
		return fmt.Errorf("durable: fault injector unexercised (%d faults, %d push failures)",
			r.FaultsInjected, r.PushFailures)
	}
	if r.FederatedQuality < r.SingleQuality-r.FedTolerance*math.Abs(r.SingleQuality) {
		return fmt.Errorf("durable: federated quality %.4f more than %.0f%% below single-engine %.4f",
			r.FederatedQuality, 100*r.FedTolerance, r.SingleQuality)
	}
	return nil
}
