package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"ucpc"
	"ucpc/internal/datasets"
	"ucpc/internal/eval"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/uncgen"
	"ucpc/internal/vec"
)

// Scale is the out-of-core streaming experiment behind `cmd/uncbench -exp
// scale`: synthesize a KDD-Cup-'99-shaped stream of uncertain objects (the
// record sequence of datasets.KDDStream with §5.1 Normal uncertainty
// attached record by record), fit it through ucpc.StreamClusterer in
// mini-batches — no more than one batch of moment rows resident at a time —
// and compare the final frozen model against a batch UCPC-Lloyd fit on a
// subsample both can hold in memory. It reports ingest throughput, the
// resident moment-store footprint (and its growth per 100k-object window:
// the out-of-core contract is that this growth is ~0), a peak-heap proxy,
// and the internal quality (eval.Quality) of both fits on the subsample.

// ScaleConfig sizes the streaming scalability experiment. The zero value
// selects the full 1M-object workload; CI smoke runs pass a small N.
type ScaleConfig struct {
	// N is the number of objects streamed (default 1,000,000).
	N int
	// K is the number of clusters (default 23, the KDD class count).
	K int
	// BatchSize is the streaming mini-batch size (default 8192).
	BatchSize int
	// Subsample is the comparison subsample size (default 50,000, clamped
	// to N): the stream's first Subsample objects, regenerated
	// deterministically, on which both models are scored and the batch
	// reference is fitted.
	Subsample int
	// Workers sizes both fits' worker pools (0 = one per CPU).
	Workers int
	// Seed drives the record stream, the uncertainty generator, and both
	// fits (0 = 1).
	Seed uint64
	// Progress, when non-nil, receives one line per reporting interval.
	Progress func(format string, args ...any)
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.N == 0 {
		c.N = 1_000_000
	}
	if c.K == 0 {
		c.K = datasets.KDD().Classes
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8192
	}
	if c.Subsample == 0 {
		c.Subsample = 50_000
	}
	if c.Subsample > c.N {
		c.Subsample = c.N
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
	return c
}

// ScaleResult is the JSON payload of the streaming scalability experiment.
type ScaleResult struct {
	N         int `json:"n"`
	K         int `json:"k"`
	BatchSize int `json:"batch_size"`
	Subsample int `json:"subsample"`
	Workers   int `json:"workers"`
	Batches   int `json:"batches"`

	// StreamSeconds is the time spent inside Observe (scoring + statistics
	// updates), excluding object synthesis; ObjectsPerSec = N/StreamSeconds.
	StreamSeconds float64 `json:"stream_seconds"`
	ObjectsPerSec float64 `json:"objects_per_sec"`

	// ResidentMomentBytes is the high-water footprint of the streaming
	// moment store; ResidentGrowthPer100K is how much it grew per
	// 100k-object window after the first window (the out-of-core gate:
	// ≤ 64 MB, in practice ~0 because the window is recycled).
	ResidentMomentBytes   int64 `json:"resident_moment_bytes"`
	ResidentGrowthPer100K int64 `json:"resident_growth_per_100k"`
	// PeakHeapBytes is the largest live-heap size sampled between batches
	// (whole process, so it includes the chunk objects being synthesized).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`

	// StreamQuality and BatchQuality are eval.Quality (inter − intra, in
	// [−1, 1]) of the stream fit's and the batch UCPC-Lloyd fit's
	// partitions of the subsample; BatchSeconds is the batch fit time.
	StreamQuality float64 `json:"stream_quality"`
	BatchQuality  float64 `json:"batch_quality"`
	BatchSeconds  float64 `json:"batch_seconds"`
}

// scaleSource generates the uncertain-object stream: KDD records with §5.1
// Normal uncertainty attached point by point. Per-dimension spread of the
// record distribution is √(3²+1²) (class centers N(0,3), within-class
// N(0,1)), the quantity Assign would derive from a materialized dataset.
type scaleSource struct {
	src  *datasets.KDDStream
	gen  *uncgen.Generator
	r    *rng.RNG
	std  vec.Vector
	next int
}

func newScaleSource(seed uint64) *scaleSource {
	src := datasets.NewKDDStream(seed)
	std := make(vec.Vector, src.Dims())
	for j := range std {
		std[j] = math.Sqrt(10)
	}
	return &scaleSource{
		src: src,
		gen: &uncgen.Generator{Model: uncgen.Normal},
		r:   rng.New(seed ^ 0xdead),
		std: std,
	}
}

// take appends n fresh uncertain objects to dst and returns it.
func (s *scaleSource) take(dst uncertain.Dataset, n int) uncertain.Dataset {
	for i := 0; i < n; i++ {
		p := make(vec.Vector, s.src.Dims())
		label := s.src.Next(p)
		dst = append(dst, uncertain.NewObject(s.next, s.gen.AssignPoint(p, s.std, s.r)).WithLabel(label))
		s.next++
	}
	return dst
}

// Scale runs the streaming scalability experiment.
func Scale(ctx context.Context, cfg ScaleConfig) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	res := &ScaleResult{
		N: cfg.N, K: cfg.K, BatchSize: cfg.BatchSize,
		Subsample: cfg.Subsample, Workers: cfg.Workers,
	}

	sf, err := (&ucpc.StreamClusterer{Config: ucpc.StreamConfig{
		BatchSize: cfg.BatchSize,
		Workers:   cfg.Workers,
		Seed:      cfg.Seed,
	}}).Begin(ctx, cfg.K)
	if err != nil {
		return nil, err
	}

	src := newScaleSource(cfg.Seed)
	chunk := make(uncertain.Dataset, 0, cfg.BatchSize)
	var (
		streamed       int
		observe        time.Duration
		residentAt100K int64
		ms             runtime.MemStats
	)
	for streamed < cfg.N {
		n := cfg.BatchSize
		if rest := cfg.N - streamed; n > rest {
			n = rest
		}
		chunk = src.take(chunk[:0], n)
		t0 := time.Now()
		if err := sf.Observe(ctx, chunk); err != nil {
			return nil, err
		}
		observe += time.Since(t0)
		streamed += n
		if residentAt100K == 0 && streamed >= 100_000 {
			residentAt100K = sf.ResidentBytes()
		}
		if sf.Batches()%16 == 1 || streamed == cfg.N {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > res.PeakHeapBytes {
				res.PeakHeapBytes = ms.HeapAlloc
			}
			cfg.Progress("scale: %d/%d objects, %d batches, resident %d B, heap %d B",
				streamed, cfg.N, sf.Batches(), sf.ResidentBytes(), ms.HeapAlloc)
		}
	}
	res.Batches = sf.Batches()
	res.StreamSeconds = observe.Seconds()
	if res.StreamSeconds > 0 {
		res.ObjectsPerSec = float64(cfg.N) / res.StreamSeconds
	}
	res.ResidentMomentBytes = sf.ResidentBytes()
	if windows := (cfg.N - 100_000) / 100_000; windows > 0 && residentAt100K > 0 {
		res.ResidentGrowthPer100K = (res.ResidentMomentBytes - residentAt100K) / int64(windows)
	}

	snap, err := sf.Snapshot()
	if err != nil {
		return nil, err
	}

	// Regenerate the stream's first Subsample objects (the source is
	// deterministic) and score both models on them.
	sub := newScaleSource(cfg.Seed).take(make(uncertain.Dataset, 0, cfg.Subsample), cfg.Subsample)
	assign, err := snap.Assign(ctx, sub)
	if err != nil {
		return nil, err
	}
	res.StreamQuality = eval.Quality(sub, ucpc.Partition{K: snap.K(), Assign: assign})

	cfg.Progress("scale: batch UCPC-Lloyd reference fit on %d objects", len(sub))
	t0 := time.Now()
	batch, err := (&ucpc.Clusterer{Algorithm: "UCPC-Lloyd", Config: ucpc.Config{
		Workers: cfg.Workers, Seed: cfg.Seed,
	}}).Fit(ctx, sub, cfg.K)
	if err != nil {
		return nil, err
	}
	res.BatchSeconds = time.Since(t0).Seconds()
	res.BatchQuality = eval.Quality(sub, batch.Partition())
	return res, nil
}

// RenderScale formats the result for terminal output.
func RenderScale(r *ScaleResult) string {
	return fmt.Sprintf(`streaming scalability (-exp scale)
  stream:     n=%d k=%d batch=%d workers=%d (%d mini-batches)
  throughput: %.0f objects/sec (%.2fs inside Observe)
  footprint:  resident moment store %d B (growth %d B per 100k objects), peak heap %d B
  quality:    stream %.4f vs batch UCPC-Lloyd %.4f on %d-object subsample (batch fit %.2fs)
`,
		r.N, r.K, r.BatchSize, r.Workers, r.Batches,
		r.ObjectsPerSec, r.StreamSeconds,
		r.ResidentMomentBytes, r.ResidentGrowthPer100K, r.PeakHeapBytes,
		r.StreamQuality, r.BatchQuality, r.Subsample, r.BatchSeconds)
}

// Check applies the streaming acceptance gates: the stream fit's subsample
// quality must be within 5% of the batch fit's (one-sided — landing in a
// *better* optimum passes), and the resident moment store must grow by at
// most 64 MB per 100k-object window (in practice it does not grow at all:
// the window is recycled).
func (r *ScaleResult) Check() error {
	if r.StreamQuality < r.BatchQuality-0.05*math.Abs(r.BatchQuality) {
		return fmt.Errorf("scale: stream quality %.4f more than 5%% below batch quality %.4f",
			r.StreamQuality, r.BatchQuality)
	}
	const limit = 64 << 20
	if r.ResidentGrowthPer100K > limit {
		return fmt.Errorf("scale: resident moment store grows %d B per 100k objects (limit %d)",
			r.ResidentGrowthPer100K, int64(limit))
	}
	return nil
}
