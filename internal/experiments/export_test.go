package experiments

import (
	"context"
	"strings"
	"testing"

	"ucpc/internal/uncgen"
)

func TestTable2CSV(t *testing.T) {
	res, err := Table2(context.Background(), tinyConfig(), []string{"Iris"}, []uncgen.Model{uncgen.Normal})
	if err != nil {
		t.Fatal(err)
	}
	csv := Table2CSV(res)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	header := strings.Split(lines[0], ",")
	data := strings.Split(lines[1], ",")
	if len(header) != len(data) {
		t.Fatalf("header %d fields vs data %d", len(header), len(data))
	}
	if header[0] != "dataset" || !strings.Contains(lines[0], "theta_ucpc") || !strings.Contains(lines[0], "q_ucpc") {
		t.Errorf("header: %q", lines[0])
	}
	if data[0] != "Iris" || data[1] != "N" {
		t.Errorf("data row: %q", lines[1])
	}
}

func TestTable3CSV(t *testing.T) {
	res, err := Table3(context.Background(), tinyConfig(), []string{"Neuroblastoma"}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	csv := Table3CSV(res)
	if !strings.HasPrefix(csv, "dataset,k,") {
		t.Errorf("header: %q", csv)
	}
	if !strings.Contains(csv, "Neuroblastoma,2,") {
		t.Errorf("missing data row: %q", csv)
	}
}

func TestFig4CSV(t *testing.T) {
	res, err := Fig4(context.Background(), tinyConfig(), []string{"Letter"})
	if err != nil {
		t.Fatal(err)
	}
	csv := Fig4CSV(res)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	// Union of the two lineups: UCPC must appear exactly once.
	if strings.Count(lines[0], "ms_ucpc") != 1 {
		t.Errorf("UCPC column duplicated or missing: %q", lines[0])
	}
	if !strings.Contains(lines[0], "ms_minmax_bb") {
		t.Errorf("pruning column missing: %q", lines[0])
	}
}

func TestFig5CSV(t *testing.T) {
	cfg := Config{Seed: 7, Runs: 1, Scale: 0.0002}
	res, err := Fig5(context.Background(), cfg, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	csv := Fig5CSV(res)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0.50,") || !strings.HasPrefix(lines[2], "1.00,") {
		t.Errorf("fraction rows: %q / %q", lines[1], lines[2])
	}
}
