// Package experiments reproduces the paper's evaluation (§5): the accuracy
// study on benchmark datasets (Table 2), the accuracy study on real
// microarray data (Table 3), the efficiency comparison (Figure 4), and the
// scalability study on the KDD Cup '99 workload (Figure 5).
//
// Every experiment is deterministic for a fixed Config (seed, scale, runs)
// and emits both a structured result and a rendered text table whose rows
// mirror the paper's layout.
package experiments

import (
	"context"
	"fmt"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/fdbscan"
	"ucpc/internal/foptics"
	"ucpc/internal/mmvar"
	"ucpc/internal/rng"
	"ucpc/internal/uahc"
	"ucpc/internal/ukmeans"
	"ucpc/internal/ukmedoids"
	"ucpc/internal/uncertain"
)

// Config controls experiment scaling. The zero value is usable: it selects
// a CI-friendly configuration (small scale, few runs).
type Config struct {
	// Seed drives all randomness (dataset synthesis, uncertainty
	// generation, algorithm initialization).
	Seed uint64
	// Runs is the number of repetitions averaged per measurement
	// (paper: 50; default 3).
	Runs int
	// Scale is the fraction of each dataset's published size to use
	// (default 0.08). Figure 5 interprets Scale against the 4M-row KDD
	// collection, so its default is much smaller (see Fig5).
	Scale float64
	// MinObjects is the smallest dataset size after scaling (default 60).
	MinObjects int
	// Intensity scales the synthetic uncertainty relative to the
	// per-dimension data spread (default 1.0). The paper randomizes the
	// pdf parameters without stating their range; 1.0 makes uncertainty
	// material, which is where the algorithms differentiate.
	Intensity float64
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Scale == 0 {
		c.Scale = 0.08
	}
	if c.MinObjects == 0 {
		c.MinObjects = 60
	}
	if c.Intensity == 0 {
		c.Intensity = 1.0
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
	return c
}

// scaleFor returns the scaling fraction that respects MinObjects.
func (c Config) scaleFor(n int) float64 {
	frac := c.Scale
	if min := float64(c.MinObjects) / float64(n); frac < min {
		frac = min
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// AlgorithmID names one competing method with the paper's abbreviation.
type AlgorithmID string

// The methods compared in the paper's tables and figures.
const (
	AlgFDB      AlgorithmID = "FDB"
	AlgFOPT     AlgorithmID = "FOPT"
	AlgUAHC     AlgorithmID = "UAHC"
	AlgUKmed    AlgorithmID = "UKmed"
	AlgUKM      AlgorithmID = "UKM"
	AlgMMV      AlgorithmID = "MMV"
	AlgUCPC     AlgorithmID = "UCPC"
	AlgBasicUKM AlgorithmID = "bUKM"
	AlgMinMaxBB AlgorithmID = "MinMax-BB"
	AlgVDBiP    AlgorithmID = "VDBiP"
)

// New instantiates a fresh algorithm by id. Fresh instances per run keep
// the methods stateless across measurements.
func New(id AlgorithmID) clustering.Algorithm {
	switch id {
	case AlgFDB:
		return &fdbscan.FDBSCAN{}
	case AlgFOPT:
		return &foptics.FOPTICS{}
	case AlgUAHC:
		return &uahc.UAHC{}
	case AlgUKmed:
		return &ukmedoids.UKMedoids{}
	case AlgUKM:
		return &ukmeans.UKMeans{}
	case AlgMMV:
		return &mmvar.MMVar{}
	case AlgUCPC:
		return &core.UCPC{}
	case AlgBasicUKM:
		return &ukmeans.Basic{Prune: ukmeans.PruneNone}
	case AlgMinMaxBB:
		return &ukmeans.Basic{Prune: ukmeans.PruneMinMaxBB, ClusterShift: true}
	case AlgVDBiP:
		return &ukmeans.Basic{Prune: ukmeans.PruneVDBiP, ClusterShift: true}
	default:
		panic(fmt.Sprintf("experiments: unknown algorithm %q", id))
	}
}

// AccuracyAlgorithms is the Table 2 / Table 3 lineup, in paper column order.
func AccuracyAlgorithms() []AlgorithmID {
	return []AlgorithmID{AlgFDB, AlgFOPT, AlgUAHC, AlgUKmed, AlgUKM, AlgMMV, AlgUCPC}
}

// SlowAlgorithms is the left-hand Figure 4 lineup (plus UCPC for
// comparison, as in the paper's plots).
func SlowAlgorithms() []AlgorithmID {
	return []AlgorithmID{AlgUKmed, AlgBasicUKM, AlgUAHC, AlgFOPT, AlgFDB, AlgUCPC}
}

// FastAlgorithms is the right-hand Figure 4 lineup.
func FastAlgorithms() []AlgorithmID {
	return []AlgorithmID{AlgMMV, AlgUKM, AlgMinMaxBB, AlgVDBiP, AlgUCPC}
}

// ScalabilityAlgorithms is the Figure 5 lineup.
func ScalabilityAlgorithms() []AlgorithmID {
	return []AlgorithmID{AlgMMV, AlgUKM, AlgMinMaxBB, AlgVDBiP, AlgUCPC}
}

// runClock runs an algorithm and returns the report; failures in an
// individual run surface as errors to the caller (experiments fail loudly,
// never silently skip a cell).
func runClock(ctx context.Context, id AlgorithmID, ds uncertain.Dataset, k int, seed uint64) (*clustering.Report, error) {
	alg := New(id)
	r := rng.New(seed)
	start := time.Now()
	rep, err := alg.Cluster(ctx, ds, k, r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	// Defensive: some algorithms time the online phase themselves; fall
	// back to wall clock if a zero duration slipped through.
	if rep.Online <= 0 {
		rep.Online = time.Since(start)
	}
	return rep, nil
}
