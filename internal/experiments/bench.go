package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"ucpc"
	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/datasets"
	"ucpc/internal/mmvar"
	"ucpc/internal/rng"
	"ucpc/internal/ukmeans"
	"ucpc/internal/ukmedoids"
	"ucpc/internal/uncertain"
	"ucpc/internal/uncgen"
)

// PruneBench measures the exact bound-based pruning engine against the
// bound-free baseline: every algorithm wired into the engine is run with
// pruning on and off on the same seeded workload, and the minimum online
// time over the repetitions is reported per mode. Because pruning is exact,
// both modes walk the identical iteration sequence — the ratio isolates the
// arithmetic saved by the bounds. It also measures the steady-state
// allocations of every sweep pass (gated at zero) and the context-aware
// serving path (Model.Assign, which checks ctx between chunks) against a
// raw engine pass with no context checks, gating the check overhead in the
// assignment hot loop. `cmd/uncbench -exp bench` serializes the result as
// BENCH_PR4.json so CI can regress against it and against the committed
// BENCH_PR3.json baseline.

// PruneBenchConfig sizes the pruning benchmark. The zero value selects a
// CI-friendly workload.
type PruneBenchConfig struct {
	// N is the number of objects (default 2000), drawn from the KDD-Cup-
	// '99-shaped generator with Normal uncertainty so every class is
	// represented.
	N int
	// K is the number of clusters (default 16; pruning leverage grows
	// with k).
	K int
	// Runs is the number of repetitions per (algorithm, mode); the
	// minimum time is kept (default 3).
	Runs int
	// Workers sizes the assignment worker pools (default 1, the most
	// stable configuration for CI measurement).
	Workers int
	// Seed drives dataset synthesis and every clustering run (default 1).
	Seed uint64
	// Progress, when non-nil, receives one line per measured cell.
	Progress func(format string, args ...any)
}

func (c PruneBenchConfig) withDefaults() PruneBenchConfig {
	if c.N == 0 {
		c.N = 2000
	}
	if c.K == 0 {
		c.K = 16
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
	return c
}

// PruneBenchRow is one algorithm's pruned-vs-unpruned measurement.
type PruneBenchRow struct {
	Algorithm       string  `json:"algorithm"`
	PrunedNsPerOp   int64   `json:"pruned_ns_per_op"`
	UnprunedNsPerOp int64   `json:"unpruned_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	PrunedFraction  float64 `json:"pruned_fraction"`
	Iterations      int     `json:"iterations"`
	// AllocsPerOp is the number of heap allocations one steady-state sweep
	// pass performs at convergence (assignment pass and, where the
	// algorithm has one, relocation/medoid-update pass combined), measured
	// with GOMAXPROCS(1) over the pruned configuration. The sweep loops
	// preallocate all scratch, so Check gates this at exactly zero.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Gate marks the rows whose speedup the CI regression check enforces
	// (the assignment-engine algorithms plus UK-medoids, whose closed-form
	// medoid filter replaced the PR3 early-abandon that ran at 0.95×).
	Gate bool `json:"gate"`
}

// CtxOverheadRow measures the context-plumbing cost in the assignment hot
// loop. Two views:
//
//   - The wall-clock A/B: the public serving path (Model.Assign, which
//     runs the pruned engine in chunks with a ctx check between chunks)
//     against an otherwise identical raw engine pass with no context
//     anywhere, per-side minima over alternated back-to-back pairs. This
//     is informational: on shared CI hardware the A/B noise floor (several
//     percent) dwarfs the nanosecond-scale effect being measured.
//   - The gated fraction: the measured cost of one ctx.Err() check (a
//     dedicated micro-benchmark over a cancellable context) times the
//     number of checks one serving pass performs, divided by the pass
//     floor. This resolves the true overhead far below the noise floor
//     and is what Check enforces against Budget.
type CtxOverheadRow struct {
	Algorithm string `json:"algorithm"`
	// ServingNsPerOp is the floor of one Model.Assign pass (informational).
	ServingNsPerOp int64 `json:"serving_ns_per_op"`
	// BaselineNsPerOp is the floor of the equivalent context-free engine
	// pass (informational).
	BaselineNsPerOp int64 `json:"baseline_ns_per_op"`
	// CtxChecksPerPass is how many context checks one serving pass makes.
	CtxChecksPerPass int64 `json:"ctx_checks_per_pass"`
	// CtxCheckNs is the micro-benchmarked cost of a single ctx.Err() call
	// on a cancellable context, in nanoseconds.
	CtxCheckNs float64 `json:"ctx_check_ns"`
	// OverheadFraction is CtxChecksPerPass·CtxCheckNs over the faster of
	// the two pass floors — the context-check share of the hot loop.
	OverheadFraction float64 `json:"overhead_fraction"`
	// Budget is the gate: Check fails when OverheadFraction exceeds it.
	Budget float64 `json:"budget"`
}

// PruneBenchResult is the machine-readable payload of BENCH_PR4.json
// (PR2 carried the same rows without the ctx_overhead section; PR3 added
// it; PR4 added allocs_per_op and gated UK-medoids).
type PruneBenchResult struct {
	Bench       string          `json:"bench"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	N           int             `json:"n"`
	M           int             `json:"m"`
	K           int             `json:"k"`
	Runs        int             `json:"runs"`
	Workers     int             `json:"workers"`
	Seed        uint64          `json:"seed"`
	Rows        []PruneBenchRow `json:"rows"`
	CtxOverhead *CtxOverheadRow `json:"ctx_overhead,omitempty"`
}

// ctxOverheadBudget is the gated ceiling on the serving path's context-
// check overhead in the assignment hot loop.
const ctxOverheadBudget = 0.02

// pruneBenchAlgorithms is the measured lineup: name, constructor per mode,
// and whether the row gates CI. Gated: the assignment-engine rows and
// UK-medoids (its closed-form medoid filter saves ~3×). Ungated: the
// relocation rows (UCPC, MMV), whose dot cache — always on — absorbed the
// arithmetic the bounds used to save, leaving a pruned-vs-unpruned ratio
// of ~1.0 that sits inside the measurement noise of shared runners.
func pruneBenchAlgorithms(workers int, mode clustering.PruneMode) []struct {
	name string
	alg  clustering.Algorithm
	gate bool
} {
	return []struct {
		name string
		alg  clustering.Algorithm
		gate bool
	}{
		{"UCPC-Lloyd", &core.UCPCLloyd{Workers: workers, Pruning: mode}, true},
		{"UKM", &ukmeans.UKMeans{Workers: workers, Pruning: mode}, true},
		{"UCPC", &core.UCPC{Workers: workers, Pruning: mode}, false},
		{"MMV", &mmvar.MMVar{Pruning: mode}, false},
		{"UKmed", &ukmedoids.UKMedoids{Workers: workers, Pruning: mode}, true},
	}
}

// PruneBench runs the pruned-vs-unpruned comparison plus the ctx-overhead
// measurement of the serving path.
func PruneBench(ctx context.Context, cfg PruneBenchConfig) (*PruneBenchResult, error) {
	ctx = clustering.Ctx(ctx)
	cfg = cfg.withDefaults()
	d := datasets.GenerateKDD(cfg.N, cfg.Seed)
	set := (&uncgen.Generator{Model: uncgen.Normal, Intensity: 1.0}).Assign(d, rng.New(cfg.Seed^0xbe))
	ds := set.Objects(d)

	res := &PruneBenchResult{
		Bench:   "PrunedAssign",
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		N:       len(ds),
		M:       ds.Dims(),
		K:       cfg.K,
		Runs:    cfg.Runs,
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
	}

	type cell struct {
		best            time.Duration // fastest run (the reported ns/op)
		pruned, scanned int64         // accumulated over all runs
		iters           []int         // per run index (seeded identically per mode)
		name            string
		gate            bool
	}
	measure := func(mode clustering.PruneMode) ([]cell, error) {
		algs := pruneBenchAlgorithms(cfg.Workers, mode)
		cells := make([]cell, len(algs))
		for ai, a := range algs {
			c := &cells[ai]
			c.name, c.gate = a.name, a.gate
			for run := 0; run < cfg.Runs; run++ {
				rep, err := a.alg.Cluster(ctx, ds, cfg.K, rng.New(cfg.Seed+uint64(run)))
				if err != nil {
					return nil, fmt.Errorf("%s (pruning %s): %w", a.name, mode, err)
				}
				if run == 0 || rep.Online < c.best {
					c.best = rep.Online
				}
				c.pruned += rep.PrunedCandidates
				c.scanned += rep.ScannedCandidates
				c.iters = append(c.iters, rep.Iterations)
			}
			cfg.Progress("bench %s pruning=%s: %v", a.name, mode, c.best)
		}
		return cells, nil
	}

	on, err := measure(clustering.PruneOn)
	if err != nil {
		return nil, err
	}
	off, err := measure(clustering.PruneOff)
	if err != nil {
		return nil, err
	}
	for i := range on {
		// Exactness check per seeded run: run r of both modes uses the
		// same seed, so the iteration sequences must match exactly. Fail
		// loudly rather than report a meaningless ratio.
		for r := range on[i].iters {
			if on[i].iters[r] != off[i].iters[r] {
				return nil, fmt.Errorf("%s run %d: pruned took %d iterations, unpruned %d (exactness violated)",
					on[i].name, r, on[i].iters[r], off[i].iters[r])
			}
		}
		row := PruneBenchRow{
			Algorithm:       on[i].name,
			PrunedNsPerOp:   on[i].best.Nanoseconds(),
			UnprunedNsPerOp: off[i].best.Nanoseconds(),
			Iterations:      on[i].iters[0],
			Gate:            on[i].gate,
		}
		if total := on[i].pruned + on[i].scanned; total > 0 {
			row.PrunedFraction = float64(on[i].pruned) / float64(total)
		}
		if on[i].best > 0 {
			row.Speedup = float64(off[i].best) / float64(on[i].best)
		}
		res.Rows = append(res.Rows, row)
	}

	allocs, err := measureSteadyAllocs(ctx, cfg, ds)
	if err != nil {
		return nil, err
	}
	for i := range res.Rows {
		a, ok := allocs[res.Rows[i].Algorithm]
		if !ok {
			// A missing measurement must not read as "0 allocs": the gate
			// would pass vacuously for an algorithm that was never measured.
			return nil, fmt.Errorf("no steady-state allocs measurement for %s (extend measureSteadyAllocs)", res.Rows[i].Algorithm)
		}
		res.Rows[i].AllocsPerOp = a
		cfg.Progress("bench %s steady-state allocs/op: %g", res.Rows[i].Algorithm, a)
	}

	ctxRow, err := measureCtxOverhead(ctx, cfg, ds)
	if err != nil {
		return nil, err
	}
	res.CtxOverhead = ctxRow
	cfg.Progress("bench ctx-overhead: serving %dns vs baseline %dns (%.2f%%)",
		ctxRow.ServingNsPerOp, ctxRow.BaselineNsPerOp, 100*ctxRow.OverheadFraction)
	return res, nil
}

// measureCtxOverhead times the public serving path against the raw engine.
// Each sample aggregates ctxBenchReps passes so the measured interval is
// well above timer and scheduler noise; the minimum sample per side is
// compared.
func measureCtxOverhead(ctx context.Context, cfg PruneBenchConfig, ds uncertain.Dataset) (*CtxOverheadRow, error) {
	const reps = 8
	clusterer := &ucpc.Clusterer{Algorithm: "UKM", Config: ucpc.Config{Workers: cfg.Workers, Seed: cfg.Seed}}
	model, err := clusterer.Fit(ctx, ds, cfg.K)
	if err != nil {
		return nil, fmt.Errorf("ctx-overhead fit: %w", err)
	}
	// Flatten the frozen prototypes for the baseline engine.
	k, m := model.K(), model.Dims()
	flat := make([]float64, k*m)
	adds := make([]float64, k)
	for c, cent := range model.Centroids() {
		copy(flat[c*m:(c+1)*m], cent.Mean)
		adds[c] = cent.Var
	}

	servingPass := func() error {
		_, err := model.Assign(ctx, ds)
		return err
	}
	baselinePass := func() {
		mom := uncertain.MomentsOf(ds)
		eng := core.NewAssigner(mom, k, clusterer.Config.Pruning.Enabled())
		eng.SetCenters(flat, adds)
		assign := make([]int, len(ds))
		for i := range assign {
			assign[i] = -1
		}
		eng.Assign(assign, cfg.Workers)
	}

	// Warm both paths (allocator, caches) before any timed sample. Then
	// time back-to-back (serving, baseline) pairs — alternating which side
	// of the pair runs first so neither systematically inherits the
	// other's cache/GC state — and compare the per-side minima: both
	// passes do identical scoring work, so each minimum converges to the
	// true noise-free floor of its side and the floors differ only by the
	// context plumbing. Single samples (and even medians) swing by several
	// percent under sustained CPU-frequency drift; the minima do not.
	if err := servingPass(); err != nil {
		return nil, fmt.Errorf("ctx-overhead assign: %w", err)
	}
	baselinePass()
	var serving, baseline time.Duration
	for run := 0; run < cfg.Runs*reps; run++ {
		var s, b time.Duration
		timeServing := func() error {
			start := time.Now()
			err := servingPass()
			s = time.Since(start)
			return err
		}
		timeBaseline := func() {
			start := time.Now()
			baselinePass()
			b = time.Since(start)
		}
		if run%2 == 0 {
			if err := timeServing(); err != nil {
				return nil, err
			}
			timeBaseline()
		} else {
			timeBaseline()
			if err := timeServing(); err != nil {
				return nil, err
			}
		}
		if run == 0 || s < serving {
			serving = s
		}
		if run == 0 || b < baseline {
			baseline = b
		}
	}
	// One serving pass checks ctx once per chunk (Model.Assign's loop).
	checks := int64((len(ds) + ucpc.AssignChunk - 1) / ucpc.AssignChunk)
	row := &CtxOverheadRow{
		Algorithm:        "UKM",
		ServingNsPerOp:   serving.Nanoseconds(),
		BaselineNsPerOp:  baseline.Nanoseconds(),
		CtxChecksPerPass: checks,
		CtxCheckNs:       ctxCheckCost(),
		Budget:           ctxOverheadBudget,
	}
	floor := serving
	if baseline > 0 && baseline < floor {
		floor = baseline
	}
	if floor > 0 {
		row.OverheadFraction = float64(checks) * row.CtxCheckNs / float64(floor.Nanoseconds())
	}
	return row, nil
}

// ctxCheckCost micro-benchmarks one ctx.Err() call on a cancellable
// context (the representative case: WithTimeout/WithCancel wrap the
// background context in real servers), amortized over enough iterations
// that timer resolution is irrelevant.
func ctxCheckCost() float64 {
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const iters = 1 << 20
	var sink error
	start := time.Now()
	for i := 0; i < iters; i++ {
		sink = cctx.Err()
	}
	elapsed := time.Since(start)
	_ = sink
	return float64(elapsed.Nanoseconds()) / iters
}

// Check enforces the CI regression gate: every gate row must have pruned
// work (pruned_fraction > 0) and must not be slower than the unpruned
// baseline of the same run, every row's steady-state sweep pass must
// perform zero heap allocations, and the serving path's context-check
// overhead must stay within its budget. It returns nil when the gate holds.
func (r *PruneBenchResult) Check() error {
	var failures []string
	for _, row := range r.Rows {
		if row.AllocsPerOp > 0 {
			failures = append(failures, fmt.Sprintf("%s: %g allocs per steady-state pass (want 0)", row.Algorithm, row.AllocsPerOp))
		}
		if !row.Gate {
			continue
		}
		if row.PrunedFraction <= 0 {
			failures = append(failures, fmt.Sprintf("%s: pruned fraction is 0", row.Algorithm))
		}
		if row.Speedup < 1.0 {
			failures = append(failures, fmt.Sprintf("%s: pruned %.3fx vs unpruned (slower)", row.Algorithm, row.Speedup))
		}
	}
	if c := r.CtxOverhead; c != nil && c.OverheadFraction > c.Budget {
		failures = append(failures, fmt.Sprintf("ctx overhead %.2f%% exceeds %.0f%% budget (%s serving %dns vs baseline %dns)",
			100*c.OverheadFraction, 100*c.Budget, c.Algorithm, c.ServingNsPerOp, c.BaselineNsPerOp))
	}
	if len(failures) > 0 {
		return fmt.Errorf("pruning bench regression: %s", strings.Join(failures, "; "))
	}
	return nil
}

// CompareBaseline enforces the cross-PR trajectory gate: for every
// algorithm present in both results, the new pruned_ns_per_op must not
// exceed the baseline's by more than maxRegress (e.g. 0.10 for 10%).
// Algorithms absent from the baseline are skipped, so the lineup can grow.
func (r *PruneBenchResult) CompareBaseline(base *PruneBenchResult, maxRegress float64) error {
	old := make(map[string]int64, len(base.Rows))
	for _, row := range base.Rows {
		old[row.Algorithm] = row.PrunedNsPerOp
	}
	var failures []string
	for _, row := range r.Rows {
		prev, ok := old[row.Algorithm]
		if !ok || prev <= 0 {
			continue
		}
		limit := float64(prev) * (1 + maxRegress)
		if float64(row.PrunedNsPerOp) > limit {
			failures = append(failures, fmt.Sprintf("%s: pruned %dns/op vs baseline %dns/op (>%.0f%% regression)",
				row.Algorithm, row.PrunedNsPerOp, prev, 100*maxRegress))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench baseline regression: %s", strings.Join(failures, "; "))
	}
	return nil
}

// RenderPruneBench formats the result as a human-readable table.
func RenderPruneBench(r *PruneBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pruning engine benchmark (n=%d, m=%d, k=%d, workers=%d, min of %d runs)\n\n",
		r.N, r.M, r.K, r.Workers, r.Runs)
	fmt.Fprintf(&b, "%-12s %14s %14s %8s %12s %10s %6s\n",
		"algorithm", "pruned ns/op", "unpruned ns/op", "speedup", "pruned-frac", "allocs/op", "gate")
	fmt.Fprintln(&b, strings.Repeat("-", 83))
	for _, row := range r.Rows {
		gate := ""
		if row.Gate {
			gate = "yes"
		}
		fmt.Fprintf(&b, "%-12s %14d %14d %7.2fx %11.1f%% %10g %6s\n",
			row.Algorithm, row.PrunedNsPerOp, row.UnprunedNsPerOp,
			row.Speedup, 100*row.PrunedFraction, row.AllocsPerOp, gate)
	}
	if c := r.CtxOverhead; c != nil {
		fmt.Fprintf(&b, "\nctx-check overhead (%s serving path): %dns vs %dns baseline = %+.2f%% (budget %.0f%%)\n",
			c.Algorithm, c.ServingNsPerOp, c.BaselineNsPerOp, 100*c.OverheadFraction, 100*c.Budget)
	}
	return b.String()
}
