package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"ucpc"
	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/datasets"
	"ucpc/internal/mmvar"
	"ucpc/internal/rng"
	"ucpc/internal/ukmeans"
	"ucpc/internal/ukmedoids"
	"ucpc/internal/uncertain"
	"ucpc/internal/uncgen"
	"ucpc/internal/vec"
)

// PruneBench measures the exact bound-based pruning engine against the
// bound-free baseline: every algorithm wired into the engine is run with
// pruning on and off on the same seeded workload, and the minimum online
// time over the repetitions is reported per mode. Because pruning is exact,
// both modes walk the identical iteration sequence — the ratio isolates the
// arithmetic saved by the bounds. It also measures the steady-state
// allocations of every sweep pass (gated at zero) and the context-aware
// serving path (Model.Assign, which checks ctx between chunks) against a
// raw engine pass with no context checks, gating the check overhead in the
// assignment hot loop. `cmd/uncbench -exp bench` serializes the result as
// BENCH_PR6.json so CI can regress against it and against the committed
// BENCH_PR5.json baseline.

// PruneBenchConfig sizes the pruning benchmark. The zero value selects a
// CI-friendly workload.
type PruneBenchConfig struct {
	// N is the number of objects (default 2000), drawn from the KDD-Cup-
	// '99-shaped generator with Normal uncertainty so every class is
	// represented.
	N int
	// K is the number of clusters (default 16; pruning leverage grows
	// with k).
	K int
	// Runs is the number of repetitions per (algorithm, mode); the
	// minimum time is kept (default 3).
	Runs int
	// Workers sizes the assignment worker pools (default 1, the most
	// stable configuration for CI measurement).
	Workers int
	// Seed drives dataset synthesis and every clustering run (default 1).
	Seed uint64
	// Progress, when non-nil, receives one line per measured cell.
	Progress func(format string, args ...any)
}

func (c PruneBenchConfig) withDefaults() PruneBenchConfig {
	if c.N == 0 {
		c.N = 2000
	}
	if c.K == 0 {
		c.K = 16
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
	return c
}

// PruneBenchRow is one algorithm's pruned-vs-unpruned measurement.
type PruneBenchRow struct {
	Algorithm       string  `json:"algorithm"`
	PrunedNsPerOp   int64   `json:"pruned_ns_per_op"`
	UnprunedNsPerOp int64   `json:"unpruned_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	PrunedFraction  float64 `json:"pruned_fraction"`
	Iterations      int     `json:"iterations"`
	// AllocsPerOp is the number of heap allocations one steady-state sweep
	// pass performs at convergence (assignment pass and, where the
	// algorithm has one, relocation/medoid-update pass combined), measured
	// with GOMAXPROCS(1) over the pruned configuration. The sweep loops
	// preallocate all scratch, so Check gates this at exactly zero.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Gate marks the rows whose speedup the CI regression check enforces
	// (since PR6: every row).
	Gate bool `json:"gate"`
	// MinSpeedup is the gated floor on Speedup — the level the current
	// implementation sustains on the reference workload, enforced by
	// Check. 0 (older baselines) reads as the no-regression floor of 1.0.
	MinSpeedup float64 `json:"min_speedup,omitempty"`
	// TargetSpeedup, where set, records the aspirational speedup the PR
	// that introduced the row's optimization aimed for. It is reported,
	// not enforced: the relocation rows (UCPC, MMV) carry the PR6 target
	// of 1.5, which the settled-object filter does not reach at whole-run
	// granularity — the unprunable early passes (movers must be scored in
	// full by construction) and the shared move-application cost put an
	// Amdahl ceiling of ~1.2× (UCPC) / ~1.1× (MMV) on the end-to-end
	// ratio even though the filter eliminates >5× of the distance
	// arithmetic. See README's Performance section for the accounting.
	TargetSpeedup float64 `json:"target_speedup,omitempty"`
}

// CtxOverheadRow measures the context-plumbing cost in the assignment hot
// loop. Two views:
//
//   - The wall-clock A/B: the public serving path (Model.Assign, which
//     runs the pruned engine in chunks with a ctx check between chunks)
//     against an otherwise identical raw engine pass with no context
//     anywhere, per-side minima over alternated back-to-back pairs. This
//     is informational: on shared CI hardware the A/B noise floor (several
//     percent) dwarfs the nanosecond-scale effect being measured.
//   - The gated fraction: the measured cost of one ctx.Err() check (a
//     dedicated micro-benchmark over a cancellable context) times the
//     number of checks one serving pass performs, divided by the pass
//     floor. This resolves the true overhead far below the noise floor
//     and is what Check enforces against Budget.
type CtxOverheadRow struct {
	Algorithm string `json:"algorithm"`
	// ServingNsPerOp is the floor of one Model.Assign pass (informational).
	ServingNsPerOp int64 `json:"serving_ns_per_op"`
	// BaselineNsPerOp is the floor of the equivalent context-free engine
	// pass (informational).
	BaselineNsPerOp int64 `json:"baseline_ns_per_op"`
	// CtxChecksPerPass is how many context checks one serving pass makes.
	CtxChecksPerPass int64 `json:"ctx_checks_per_pass"`
	// CtxCheckNs is the micro-benchmarked cost of a single ctx.Err() call
	// on a cancellable context, in nanoseconds.
	CtxCheckNs float64 `json:"ctx_check_ns"`
	// OverheadFraction is CtxChecksPerPass·CtxCheckNs over the faster of
	// the two pass floors — the context-check share of the hot loop.
	OverheadFraction float64 `json:"overhead_fraction"`
	// Budget is the gate: Check fails when OverheadFraction exceeds it.
	Budget float64 `json:"budget"`
}

// PruneBenchResult is the machine-readable payload of BENCH_PR6.json
// (PR2 carried the rows alone; PR3 added ctx_overhead; PR4 added
// allocs_per_op and gated UK-medoids; PR6 added min_speedup, the paired
// interleaved measurement, and the build/CPU provenance fields).
type PruneBenchResult struct {
	Bench string `json:"bench"`
	// Protocol names the measurement discipline the numbers were taken
	// under. Artifacts with different protocols are not ns/op-comparable:
	// the PR2–PR5 protocol ("" in those files) timed one whole mode block
	// and then the other, so its absolute numbers carry whatever sustained
	// clock state each block happened to run at. CompareBaseline therefore
	// only enforces the regression rule between same-protocol artifacts
	// and reports a re-baseline notice otherwise.
	Protocol string `json:"protocol,omitempty"`
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	// GOAMD64 is the amd64 microarchitecture level the binary was compiled
	// for ("v1".."v4"; empty on other architectures) — it decides which
	// SIMD classes the compiler may emit for the vec kernels, so two
	// artifacts are only comparable at equal levels.
	GOAMD64 string `json:"goamd64,omitempty"`
	// CPUModel is the host CPU's self-reported model string (Linux
	// /proc/cpuinfo; empty elsewhere), recorded so cross-machine artifact
	// diffs are recognizable as such.
	CPUModel string `json:"cpu_model,omitempty"`
	// KernelVariant names the vec kernel implementation measured
	// (vec.KernelVariant), tying the artifact to the code generation
	// strategy it timed.
	KernelVariant string          `json:"kernel_variant,omitempty"`
	N             int             `json:"n"`
	M             int             `json:"m"`
	K             int             `json:"k"`
	Runs          int             `json:"runs"`
	Workers       int             `json:"workers"`
	Seed          uint64          `json:"seed"`
	Rows          []PruneBenchRow `json:"rows"`
	CtxOverhead   *CtxOverheadRow `json:"ctx_overhead,omitempty"`
}

// ctxOverheadBudget is the gated ceiling on the serving path's context-
// check overhead in the assignment hot loop.
const ctxOverheadBudget = 0.02

// benchProtocol identifies the current measurement discipline: pruned and
// unpruned runs timed as back-to-back pairs with alternating order, minima
// kept per side (PR6). Bump this whenever the timing methodology changes
// in a way that shifts absolute ns/op, so CompareBaseline re-baselines
// instead of flagging protocol drift as a code regression.
const benchProtocol = "interleaved-pairs-v2"

// buildGOAMD64 reports the GOAMD64 microarchitecture level baked into this
// binary, from the build-info settings. Empty off amd64; "v1" when the
// toolchain predates the setting or stripped it.
func buildGOAMD64() string {
	if runtime.GOARCH != "amd64" {
		return ""
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "GOAMD64" {
				return s.Value
			}
		}
	}
	return "v1"
}

// hostCPUModel reports the CPU's self-identification ("model name" in
// /proc/cpuinfo). Empty on non-Linux hosts or unreadable procfs — the
// field is provenance, not a measurement, so there is no fallback probing.
func hostCPUModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// pruneBenchAlgorithms is the measured lineup: name, constructor per mode,
// whether the row gates CI, the gated speedup floor, and the (reported,
// unenforced) target. Every row is now gated. The relocation rows carry
// the PR6 settled-object filter (full Elkan-style bounds over the
// α + β·σ² + γ·r² decomposition), which cracked the dead zone the
// always-on dot cache left behind: the pruned fraction went from ~1% to
// 85% (UCPC) / 66% (MMV) and the filter eliminates >5× of the distance
// arithmetic. The whole-run floors are set at what that buys end to end —
// 1.10× for UCPC, no-regression for MMV — because the early passes, where
// most objects still move, are unprunable by construction (a mover's
// candidates must be scored in full) and the move-application cost is
// shared by both modes; the original 1.5× aim is recorded as the row's
// target_speedup so the shortfall stays visible in the artifact.
func pruneBenchAlgorithms(workers int, mode clustering.PruneMode) []struct {
	name          string
	alg           clustering.Algorithm
	gate          bool
	minSpeedup    float64
	targetSpeedup float64
} {
	return []struct {
		name          string
		alg           clustering.Algorithm
		gate          bool
		minSpeedup    float64
		targetSpeedup float64
	}{
		{"UCPC-Lloyd", &core.UCPCLloyd{Workers: workers, Pruning: mode}, true, 1.0, 0},
		{"UKM", &ukmeans.UKMeans{Workers: workers, Pruning: mode}, true, 1.0, 0},
		{"UCPC", &core.UCPC{Workers: workers, Pruning: mode}, true, 1.10, 1.5},
		{"MMV", &mmvar.MMVar{Pruning: mode}, true, 1.0, 1.5},
		{"UKmed", &ukmedoids.UKMedoids{Workers: workers, Pruning: mode}, true, 1.0, 0},
	}
}

// PruneBench runs the pruned-vs-unpruned comparison plus the ctx-overhead
// measurement of the serving path.
func PruneBench(ctx context.Context, cfg PruneBenchConfig) (*PruneBenchResult, error) {
	ctx = clustering.Ctx(ctx)
	cfg = cfg.withDefaults()
	d := datasets.GenerateKDD(cfg.N, cfg.Seed)
	set := (&uncgen.Generator{Model: uncgen.Normal, Intensity: 1.0}).Assign(d, rng.New(cfg.Seed^0xbe))
	ds := set.Objects(d)

	res := &PruneBenchResult{
		Bench:         "PrunedAssign",
		Protocol:      benchProtocol,
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOAMD64:       buildGOAMD64(),
		CPUModel:      hostCPUModel(),
		KernelVariant: vec.KernelVariant,
		N:             len(ds),
		M:             ds.Dims(),
		K:             cfg.K,
		Runs:          cfg.Runs,
		Workers:       cfg.Workers,
		Seed:          cfg.Seed,
	}

	// Time pruned and unpruned as back-to-back pairs, alternating which
	// side of the pair runs first, and keep the per-side minima. Running
	// one whole mode and then the other (the PR2–PR5 protocol) let
	// sustained CPU-frequency drift land entirely on one side — on shared
	// runners single-mode blocks measured on this code base have swung by
	// ±40% minutes apart, drowning real 2× effects. Paired minima cancel
	// the drift: each side's minimum converges to its true floor under the
	// same thermal trajectory.
	onAlgs := pruneBenchAlgorithms(cfg.Workers, clustering.PruneOn)
	offAlgs := pruneBenchAlgorithms(cfg.Workers, clustering.PruneOff)
	for ai := range onAlgs {
		name, gate, minSpeedup, targetSpeedup := onAlgs[ai].name, onAlgs[ai].gate, onAlgs[ai].minSpeedup, onAlgs[ai].targetSpeedup
		var onBest, offBest time.Duration
		var pruned, scanned int64
		var onIter int
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + uint64(run)
			runMode := func(alg clustering.Algorithm, mode clustering.PruneMode) (*clustering.Report, error) {
				rep, err := alg.Cluster(ctx, ds, cfg.K, rng.New(seed))
				if err != nil {
					return nil, fmt.Errorf("%s (pruning %s): %w", name, mode, err)
				}
				return rep, nil
			}
			var onRep, offRep *clustering.Report
			var err error
			if run%2 == 0 {
				if onRep, err = runMode(onAlgs[ai].alg, clustering.PruneOn); err == nil {
					offRep, err = runMode(offAlgs[ai].alg, clustering.PruneOff)
				}
			} else {
				if offRep, err = runMode(offAlgs[ai].alg, clustering.PruneOff); err == nil {
					onRep, err = runMode(onAlgs[ai].alg, clustering.PruneOn)
				}
			}
			if err != nil {
				return nil, err
			}
			// Exactness check per seeded run: both modes use the same seed,
			// so the iteration sequences must match exactly. Fail loudly
			// rather than report a meaningless ratio.
			if onRep.Iterations != offRep.Iterations {
				return nil, fmt.Errorf("%s run %d: pruned took %d iterations, unpruned %d (exactness violated)",
					name, run, onRep.Iterations, offRep.Iterations)
			}
			if run == 0 || onRep.Online < onBest {
				onBest = onRep.Online
			}
			if run == 0 || offRep.Online < offBest {
				offBest = offRep.Online
			}
			pruned += onRep.PrunedCandidates
			scanned += onRep.ScannedCandidates
			onIter = onRep.Iterations
		}
		cfg.Progress("bench %s: pruned %v vs unpruned %v", name, onBest, offBest)
		row := PruneBenchRow{
			Algorithm:       name,
			PrunedNsPerOp:   onBest.Nanoseconds(),
			UnprunedNsPerOp: offBest.Nanoseconds(),
			Iterations:      onIter,
			Gate:            gate,
			MinSpeedup:      minSpeedup,
			TargetSpeedup:   targetSpeedup,
		}
		if total := pruned + scanned; total > 0 {
			row.PrunedFraction = float64(pruned) / float64(total)
		}
		if onBest > 0 {
			row.Speedup = float64(offBest) / float64(onBest)
		}
		res.Rows = append(res.Rows, row)
	}

	allocs, err := measureSteadyAllocs(ctx, cfg, ds)
	if err != nil {
		return nil, err
	}
	for i := range res.Rows {
		a, ok := allocs[res.Rows[i].Algorithm]
		if !ok {
			// A missing measurement must not read as "0 allocs": the gate
			// would pass vacuously for an algorithm that was never measured.
			return nil, fmt.Errorf("no steady-state allocs measurement for %s (extend measureSteadyAllocs)", res.Rows[i].Algorithm)
		}
		res.Rows[i].AllocsPerOp = a
		cfg.Progress("bench %s steady-state allocs/op: %g", res.Rows[i].Algorithm, a)
	}

	ctxRow, err := measureCtxOverhead(ctx, cfg, ds)
	if err != nil {
		return nil, err
	}
	res.CtxOverhead = ctxRow
	cfg.Progress("bench ctx-overhead: serving %dns vs baseline %dns (%.2f%%)",
		ctxRow.ServingNsPerOp, ctxRow.BaselineNsPerOp, 100*ctxRow.OverheadFraction)
	return res, nil
}

// measureCtxOverhead times the public serving path against the raw engine.
// Each sample aggregates ctxBenchReps passes so the measured interval is
// well above timer and scheduler noise; the minimum sample per side is
// compared.
func measureCtxOverhead(ctx context.Context, cfg PruneBenchConfig, ds uncertain.Dataset) (*CtxOverheadRow, error) {
	const reps = 8
	clusterer := &ucpc.Clusterer{Algorithm: "UKM", Config: ucpc.Config{Workers: cfg.Workers, Seed: cfg.Seed}}
	model, err := clusterer.Fit(ctx, ds, cfg.K)
	if err != nil {
		return nil, fmt.Errorf("ctx-overhead fit: %w", err)
	}
	// Flatten the frozen prototypes for the baseline engine.
	k, m := model.K(), model.Dims()
	flat := make([]float64, k*m)
	adds := make([]float64, k)
	for c, cent := range model.Centroids() {
		copy(flat[c*m:(c+1)*m], cent.Mean)
		adds[c] = cent.Var
	}

	servingPass := func() error {
		_, err := model.Assign(ctx, ds)
		return err
	}
	baselinePass := func() {
		mom := uncertain.MomentsOf(ds)
		eng := core.NewAssigner(mom, k, clusterer.Config.Pruning.Enabled())
		eng.SetCenters(flat, adds)
		assign := make([]int, len(ds))
		for i := range assign {
			assign[i] = -1
		}
		eng.Assign(assign, cfg.Workers)
	}

	// Warm both paths (allocator, caches) before any timed sample. Then
	// time back-to-back (serving, baseline) pairs — alternating which side
	// of the pair runs first so neither systematically inherits the
	// other's cache/GC state — and compare the per-side minima: both
	// passes do identical scoring work, so each minimum converges to the
	// true noise-free floor of its side and the floors differ only by the
	// context plumbing. Single samples (and even medians) swing by several
	// percent under sustained CPU-frequency drift; the minima do not.
	if err := servingPass(); err != nil {
		return nil, fmt.Errorf("ctx-overhead assign: %w", err)
	}
	baselinePass()
	var serving, baseline time.Duration
	for run := 0; run < cfg.Runs*reps; run++ {
		var s, b time.Duration
		timeServing := func() error {
			start := time.Now()
			err := servingPass()
			s = time.Since(start)
			return err
		}
		timeBaseline := func() {
			start := time.Now()
			baselinePass()
			b = time.Since(start)
		}
		if run%2 == 0 {
			if err := timeServing(); err != nil {
				return nil, err
			}
			timeBaseline()
		} else {
			timeBaseline()
			if err := timeServing(); err != nil {
				return nil, err
			}
		}
		if run == 0 || s < serving {
			serving = s
		}
		if run == 0 || b < baseline {
			baseline = b
		}
	}
	// One serving pass checks ctx once per chunk (Model.Assign's loop).
	checks := int64((len(ds) + ucpc.AssignChunk - 1) / ucpc.AssignChunk)
	row := &CtxOverheadRow{
		Algorithm:        "UKM",
		ServingNsPerOp:   serving.Nanoseconds(),
		BaselineNsPerOp:  baseline.Nanoseconds(),
		CtxChecksPerPass: checks,
		CtxCheckNs:       ctxCheckCost(),
		Budget:           ctxOverheadBudget,
	}
	floor := serving
	if baseline > 0 && baseline < floor {
		floor = baseline
	}
	if floor > 0 {
		row.OverheadFraction = float64(checks) * row.CtxCheckNs / float64(floor.Nanoseconds())
	}
	return row, nil
}

// ctxCheckCost micro-benchmarks one ctx.Err() call on a cancellable
// context (the representative case: WithTimeout/WithCancel wrap the
// background context in real servers), amortized over enough iterations
// that timer resolution is irrelevant.
func ctxCheckCost() float64 {
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const iters = 1 << 20
	var sink error
	start := time.Now()
	for i := 0; i < iters; i++ {
		sink = cctx.Err()
	}
	elapsed := time.Since(start)
	_ = sink
	return float64(elapsed.Nanoseconds()) / iters
}

// Check enforces the CI regression gate: every gate row must have pruned
// work (pruned_fraction > 0) and must not be slower than the unpruned
// baseline of the same run, every row's steady-state sweep pass must
// perform zero heap allocations, and the serving path's context-check
// overhead must stay within its budget. It returns nil when the gate holds.
func (r *PruneBenchResult) Check() error {
	var failures []string
	for _, row := range r.Rows {
		if row.AllocsPerOp > 0 {
			failures = append(failures, fmt.Sprintf("%s: %g allocs per steady-state pass (want 0)", row.Algorithm, row.AllocsPerOp))
		}
		if !row.Gate {
			continue
		}
		if row.PrunedFraction <= 0 {
			failures = append(failures, fmt.Sprintf("%s: pruned fraction is 0", row.Algorithm))
		}
		floor := row.MinSpeedup
		if floor == 0 {
			floor = 1.0
		}
		if row.Speedup < floor {
			failures = append(failures, fmt.Sprintf("%s: pruned %.3fx vs unpruned (gated floor %.2fx)", row.Algorithm, row.Speedup, floor))
		}
	}
	if c := r.CtxOverhead; c != nil && c.OverheadFraction > c.Budget {
		failures = append(failures, fmt.Sprintf("ctx overhead %.2f%% exceeds %.0f%% budget (%s serving %dns vs baseline %dns)",
			100*c.OverheadFraction, 100*c.Budget, c.Algorithm, c.ServingNsPerOp, c.BaselineNsPerOp))
	}
	if len(failures) > 0 {
		return fmt.Errorf("pruning bench regression: %s", strings.Join(failures, "; "))
	}
	return nil
}

// CompareBaseline enforces the cross-PR trajectory gate: for every
// algorithm present in both results, the new pruned_ns_per_op must not
// exceed the baseline's by more than maxRegress (e.g. 0.10 for 10%).
// Algorithms absent from the baseline are skipped, so the lineup can grow.
//
// The rule only applies between artifacts measured under the same
// Protocol: raw ns/op from the PR2–PR5 single-block protocol embed the
// sustained clock state of whichever block they ran in (observed swings of
// ±40% between invocations on this code base), so comparing them against
// paired-minimum numbers reports clock drift, not code. On a protocol
// mismatch the comparison is skipped and the returned notice says so; it
// is empty when the rule was actually enforced.
func (r *PruneBenchResult) CompareBaseline(base *PruneBenchResult, maxRegress float64) (notice string, err error) {
	if base.Protocol != r.Protocol {
		return fmt.Sprintf("baseline protocol %q differs from %q; ns/op regression rule re-baselined at this artifact",
			protoName(base.Protocol), protoName(r.Protocol)), nil
	}
	old := make(map[string]int64, len(base.Rows))
	for _, row := range base.Rows {
		old[row.Algorithm] = row.PrunedNsPerOp
	}
	var failures []string
	for _, row := range r.Rows {
		prev, ok := old[row.Algorithm]
		if !ok || prev <= 0 {
			continue
		}
		limit := float64(prev) * (1 + maxRegress)
		if float64(row.PrunedNsPerOp) > limit {
			failures = append(failures, fmt.Sprintf("%s: pruned %dns/op vs baseline %dns/op (>%.0f%% regression)",
				row.Algorithm, row.PrunedNsPerOp, prev, 100*maxRegress))
		}
	}
	if len(failures) > 0 {
		return "", fmt.Errorf("bench baseline regression: %s", strings.Join(failures, "; "))
	}
	return "", nil
}

// protoName renders a Protocol value for messages; the PR2–PR5 artifacts
// predate the field and carry the empty string.
func protoName(p string) string {
	if p == "" {
		return "single-block-v1 (pre-PR6)"
	}
	return p
}

// RenderPruneBench formats the result as a human-readable table.
func RenderPruneBench(r *PruneBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pruning engine benchmark (n=%d, m=%d, k=%d, workers=%d, min over %d interleaved run pairs)\n",
		r.N, r.M, r.K, r.Workers, r.Runs)
	if r.GOAMD64 != "" || r.CPUModel != "" || r.KernelVariant != "" {
		fmt.Fprintf(&b, "host: %s/%s GOAMD64=%s kernels=%s cpu=%q\n",
			r.GOOS, r.GOARCH, r.GOAMD64, r.KernelVariant, r.CPUModel)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %8s %12s %10s %6s\n",
		"algorithm", "pruned ns/op", "unpruned ns/op", "speedup", "pruned-frac", "allocs/op", "gate")
	fmt.Fprintln(&b, strings.Repeat("-", 83))
	for _, row := range r.Rows {
		gate := ""
		if row.Gate {
			gate = "yes"
			if row.MinSpeedup > 1 {
				gate = fmt.Sprintf("%.1fx", row.MinSpeedup)
			}
		}
		fmt.Fprintf(&b, "%-12s %14d %14d %7.2fx %11.1f%% %10g %6s\n",
			row.Algorithm, row.PrunedNsPerOp, row.UnprunedNsPerOp,
			row.Speedup, 100*row.PrunedFraction, row.AllocsPerOp, gate)
	}
	for _, row := range r.Rows {
		if row.TargetSpeedup > 0 {
			fmt.Fprintf(&b, "%s target: %.1fx (unenforced), measured %.2fx\n",
				row.Algorithm, row.TargetSpeedup, row.Speedup)
		}
	}
	if c := r.CtxOverhead; c != nil {
		fmt.Fprintf(&b, "\nctx-check overhead (%s serving path): %dns vs %dns baseline = %+.2f%% (budget %.0f%%)\n",
			c.Algorithm, c.ServingNsPerOp, c.BaselineNsPerOp, 100*c.OverheadFraction, 100*c.Budget)
	}
	return b.String()
}
