package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderTable2 formats the benchmark accuracy study in the paper's Table 2
// layout: one row per dataset × pdf, Θ columns then Q columns, followed by
// the overall average scores and UCPC's overall average gains.
func RenderTable2(t *Table2Result) string {
	var b strings.Builder
	algs := t.Algorithms
	fmt.Fprintf(&b, "Table 2: accuracy on benchmark datasets — Θ = F(case2) − F(case1), Q = inter − intra\n\n")
	fmt.Fprintf(&b, "%-10s %-3s |", "data", "pdf")
	for _, id := range algs {
		fmt.Fprintf(&b, " Θ:%-9s", id)
	}
	fmt.Fprint(&b, "|")
	for _, id := range algs {
		fmt.Fprintf(&b, " Q:%-9s", id)
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, strings.Repeat("-", 16+24*len(algs)))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-10s %-3s |", row.Dataset, row.Model)
		for _, id := range algs {
			fmt.Fprintf(&b, " %+.3f     ", row.Cells[id].Theta)
		}
		fmt.Fprint(&b, "|")
		for _, id := range algs {
			fmt.Fprintf(&b, " %+.3f     ", row.Cells[id].Q)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintln(&b, strings.Repeat("-", 16+24*len(algs)))
	fmt.Fprintf(&b, "%-14s |", "overall avg")
	for _, id := range algs {
		fmt.Fprintf(&b, " %+.3f     ", t.AverageTheta(id))
	}
	fmt.Fprint(&b, "|")
	for _, id := range algs {
		fmt.Fprintf(&b, " %+.3f     ", t.AverageQ(id))
	}
	fmt.Fprintln(&b)
	gains := t.Gains()
	fmt.Fprintf(&b, "%-14s |", "UCPC gain")
	for _, id := range algs {
		if id == AlgUCPC {
			fmt.Fprintf(&b, " %-10s", "—")
			continue
		}
		fmt.Fprintf(&b, " %+.3f     ", gains[id][0])
	}
	fmt.Fprint(&b, "|")
	for _, id := range algs {
		if id == AlgUCPC {
			fmt.Fprintf(&b, " %-10s", "—")
			continue
		}
		fmt.Fprintf(&b, " %+.3f     ", gains[id][1])
	}
	fmt.Fprintln(&b)
	return b.String()
}

// RenderTable3 formats the real-data accuracy study in the paper's Table 3
// layout: one row per dataset × cluster count, Q per algorithm, then
// per-dataset averages, overall averages, and UCPC gains.
func RenderTable3(t *Table3Result) string {
	var b strings.Builder
	algs := t.Algorithms
	fmt.Fprintf(&b, "Table 3: accuracy (Quality Q) on real microarray datasets\n\n")
	fmt.Fprintf(&b, "%-14s %4s |", "data", "k")
	for _, id := range algs {
		fmt.Fprintf(&b, " %-9s", id)
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, strings.Repeat("-", 22+10*len(algs)))
	perDataset := map[string][]Table3Row{}
	var order []string
	for _, row := range t.Rows {
		if _, seen := perDataset[row.Dataset]; !seen {
			order = append(order, row.Dataset)
		}
		perDataset[row.Dataset] = append(perDataset[row.Dataset], row)
		fmt.Fprintf(&b, "%-14s %4d |", row.Dataset, row.K)
		for _, id := range algs {
			fmt.Fprintf(&b, " %+.3f   ", row.Q[id])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintln(&b, strings.Repeat("-", 22+10*len(algs)))
	for _, name := range order {
		fmt.Fprintf(&b, "%-19s |", name+" avg")
		rows := perDataset[name]
		for _, id := range algs {
			var s float64
			for _, row := range rows {
				s += row.Q[id]
			}
			fmt.Fprintf(&b, " %+.3f   ", s/float64(len(rows)))
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-19s |", "overall avg")
	for _, id := range algs {
		fmt.Fprintf(&b, " %+.3f   ", t.AverageQ(id))
	}
	fmt.Fprintln(&b)
	gains := t.Gains()
	fmt.Fprintf(&b, "%-19s |", "UCPC gain")
	for _, id := range algs {
		if id == AlgUCPC {
			fmt.Fprintf(&b, " %-8s", "—")
			continue
		}
		fmt.Fprintf(&b, " %+.3f   ", gains[id])
	}
	fmt.Fprintln(&b)
	return b.String()
}

// RenderFig4 formats the efficiency study as the paper's two plot groups
// (slower vs faster algorithms) with runtimes in milliseconds.
func RenderFig4(f *Fig4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: clustering runtimes (ms, online phase; off-line pre-computation excluded)\n")
	group := func(title string, ids []AlgorithmID) {
		fmt.Fprintf(&b, "\n[%s]\n%-16s %8s %4s |", title, "dataset", "n", "k")
		for _, id := range ids {
			fmt.Fprintf(&b, " %10s", id)
		}
		fmt.Fprintln(&b)
		fmt.Fprintln(&b, strings.Repeat("-", 33+11*len(ids)))
		for _, row := range f.Rows {
			fmt.Fprintf(&b, "%-16s %8d %4d |", row.Dataset, row.N, row.K)
			for _, id := range ids {
				fmt.Fprintf(&b, " %10.2f", ms(row.Cells[id].Online))
			}
			fmt.Fprintln(&b)
		}
	}
	group("slower algorithms (+ UCPC)", f.Slow)
	group("faster algorithms (+ UCPC)", f.Fast)

	// Auxiliary view: expected-distance computation counts, which explain
	// the pruning variants' standing.
	fmt.Fprintf(&b, "\n[expected-distance integrals per run]\n%-16s |", "dataset")
	edIDs := []AlgorithmID{AlgBasicUKM, AlgMinMaxBB, AlgVDBiP}
	for _, id := range edIDs {
		fmt.Fprintf(&b, " %10s", id)
	}
	fmt.Fprintln(&b)
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-16s |", row.Dataset)
		for _, id := range edIDs {
			fmt.Fprintf(&b, " %10.0f", row.Cells[id].EDComputations)
		}
		fmt.Fprintln(&b)
	}

	// Second auxiliary view: the exact pruning engine's hit rate (fraction
	// of candidate pairs skipped by bounds) for the algorithms wired into
	// it.
	fmt.Fprintf(&b, "\n[pruned candidate fraction]\n%-16s |", "dataset")
	prIDs := []AlgorithmID{AlgUKmed, AlgUKM, AlgMMV, AlgUCPC}
	for _, id := range prIDs {
		fmt.Fprintf(&b, " %10s", id)
	}
	fmt.Fprintln(&b)
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-16s |", row.Dataset)
		for _, id := range prIDs {
			fmt.Fprintf(&b, " %9.1f%%", 100*row.Cells[id].PrunedFrac)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderFig5 formats the scalability series: one row per dataset fraction,
// one column per fast algorithm, runtimes in milliseconds.
func RenderFig5(f *Fig5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: scalability on the KDD Cup '99 workload (base n = %d, k = 23)\n\n", f.BaseN)
	fmt.Fprintf(&b, "%6s %9s |", "frac", "n")
	for _, id := range f.Algorithms {
		fmt.Fprintf(&b, " %10s", id)
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, strings.Repeat("-", 19+11*len(f.Algorithms)))
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%5.0f%% %9d |", p.Fraction*100, p.N)
		for _, id := range f.Algorithms {
			fmt.Fprintf(&b, " %10.2f", ms(p.Times[id]))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// SummarizeOrdering lists algorithms from fastest to slowest on a Fig4 row
// (a compact check of the paper's "orders of magnitude" claims).
func SummarizeOrdering(row Fig4Row) string {
	type pair struct {
		id AlgorithmID
		t  time.Duration
	}
	var ps []pair
	for id, cell := range row.Cells {
		ps = append(ps, pair{id, cell.Online})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].t < ps[j].t })
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%s(%.2fms)", p.id, ms(p.t))
	}
	return row.Dataset + ": " + strings.Join(parts, " < ")
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
