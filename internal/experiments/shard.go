package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"ucpc"
	"ucpc/internal/datasets"
	"ucpc/internal/eval"
	"ucpc/internal/uncertain"
)

// Shard is the shard-parallel fit experiment behind `cmd/uncbench -exp
// shard`: stream the KDD-shaped uncertain workload of the scale experiment
// through ucpc.ShardedClusterer twice — once with 1 shard (the
// single-engine reference, bit-identical to StreamClusterer) and once with
// P shards ingesting concurrently — and compare ingest throughput and
// final quality. The merged statistics describe the same objects either
// way, so the quality gate is tight (within 2% of the single-engine fit);
// the throughput gate scales with the cores actually available, reaching
// the headline ≥2.5× at 4 shards only on machines with ≥4 cores.

// ShardConfig sizes the shard-parallel fit experiment. The zero value
// selects the full 1M-object × 4-shard workload; CI smoke runs pass a
// small N.
type ShardConfig struct {
	// N is the number of objects streamed through each fit (default
	// 1,000,000).
	N int
	// K is the number of clusters (default 23, the KDD class count).
	K int
	// Shards is the parallel shard count P (default 4).
	Shards int
	// BatchSize is the per-shard mini-batch size (default 8192).
	BatchSize int
	// Subsample is the comparison subsample size (default 50,000, clamped
	// to N) on which both models are scored.
	Subsample int
	// Seed drives the record stream, the uncertainty generator, and both
	// fits (0 = 1).
	Seed uint64
	// Progress, when non-nil, receives one line per reporting interval.
	Progress func(format string, args ...any)
}

func (c ShardConfig) withDefaults() ShardConfig {
	if c.N == 0 {
		c.N = 1_000_000
	}
	if c.K == 0 {
		c.K = datasets.KDD().Classes
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8192
	}
	if c.Subsample == 0 {
		c.Subsample = 50_000
	}
	if c.Subsample > c.N {
		c.Subsample = c.N
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
	return c
}

// ShardResult is the JSON payload of the shard-parallel fit experiment
// (SHARD_PR7.json).
type ShardResult struct {
	N         int `json:"n"`
	K         int `json:"k"`
	Shards    int `json:"shards"`
	BatchSize int `json:"batch_size"`
	Subsample int `json:"subsample"`
	// EffectiveCores is GOMAXPROCS at run time — the parallelism actually
	// available to the shards, and the scale for the throughput gate.
	EffectiveCores int `json:"effective_cores"`

	// SingleSeconds/ShardSeconds are the times spent inside Observe
	// (scoring + statistics updates, object synthesis excluded) for the
	// 1-shard and P-shard fits; the ObjectsPerSec figures are N over them.
	SingleSeconds       float64 `json:"single_seconds"`
	SingleObjectsPerSec float64 `json:"single_objects_per_sec"`
	ShardSeconds        float64 `json:"shard_seconds"`
	ShardObjectsPerSec  float64 `json:"shard_objects_per_sec"`
	// Speedup is ShardObjectsPerSec / SingleObjectsPerSec.
	Speedup float64 `json:"speedup"`

	// SingleQuality/ShardQuality are eval.Quality (inter − intra, in
	// [−1, 1]) of each fit's assignment of the subsample.
	SingleQuality float64 `json:"single_quality"`
	ShardQuality  float64 `json:"shard_quality"`
}

// shardFit streams n objects through a fit with the given shard count and
// returns the snapshot, the time spent inside Observe, and the quality on
// the regenerated subsample.
func shardFit(ctx context.Context, cfg ShardConfig, shards int) (float64, float64, error) {
	// Workers: 1 per shard — ingest parallelism is the shard fan-out, so
	// the 1-shard reference is a genuinely single-threaded baseline.
	sc := ucpc.ShardedClusterer{
		Config: ucpc.StreamConfig{BatchSize: cfg.BatchSize, Workers: 1, Seed: cfg.Seed},
		Shards: shards,
	}
	fit, err := sc.Begin(ctx, cfg.K)
	if err != nil {
		return 0, 0, err
	}
	// Feed in portions of Shards×BatchSize regardless of the shard count,
	// so both fits see identical Observe call boundaries and every shard
	// of the P-shard fit receives one full mini-batch per call.
	portion := cfg.BatchSize * cfg.Shards
	src := newScaleSource(cfg.Seed)
	chunk := make(uncertain.Dataset, 0, portion)
	var (
		streamed int
		observe  time.Duration
	)
	for streamed < cfg.N {
		n := portion
		if rest := cfg.N - streamed; n > rest {
			n = rest
		}
		chunk = src.take(chunk[:0], n)
		t0 := time.Now()
		if err := fit.Observe(ctx, chunk); err != nil {
			return 0, 0, err
		}
		observe += time.Since(t0)
		streamed += n
		if fit.Batches()%64 == shards || streamed == cfg.N {
			cfg.Progress("shard: P=%d: %d/%d objects, %d batches", shards, streamed, cfg.N, fit.Batches())
		}
	}
	snap, err := fit.Snapshot()
	if err != nil {
		return 0, 0, err
	}
	sub := newScaleSource(cfg.Seed).take(make(uncertain.Dataset, 0, cfg.Subsample), cfg.Subsample)
	assign, err := snap.Assign(ctx, sub)
	if err != nil {
		return 0, 0, err
	}
	q := eval.Quality(sub, ucpc.Partition{K: snap.K(), Assign: assign})
	return observe.Seconds(), q, nil
}

// Shard runs the shard-parallel fit experiment.
func Shard(ctx context.Context, cfg ShardConfig) (*ShardResult, error) {
	cfg = cfg.withDefaults()
	res := &ShardResult{
		N: cfg.N, K: cfg.K, Shards: cfg.Shards, BatchSize: cfg.BatchSize,
		Subsample: cfg.Subsample, EffectiveCores: runtime.GOMAXPROCS(0),
	}
	cfg.Progress("shard: single-engine reference fit (P=1)")
	var err error
	if res.SingleSeconds, res.SingleQuality, err = shardFit(ctx, cfg, 1); err != nil {
		return nil, err
	}
	cfg.Progress("shard: sharded fit (P=%d)", cfg.Shards)
	if res.ShardSeconds, res.ShardQuality, err = shardFit(ctx, cfg, cfg.Shards); err != nil {
		return nil, err
	}
	if res.SingleSeconds > 0 {
		res.SingleObjectsPerSec = float64(cfg.N) / res.SingleSeconds
	}
	if res.ShardSeconds > 0 {
		res.ShardObjectsPerSec = float64(cfg.N) / res.ShardSeconds
	}
	if res.SingleObjectsPerSec > 0 {
		res.Speedup = res.ShardObjectsPerSec / res.SingleObjectsPerSec
	}
	return res, nil
}

// RenderShard formats the result for terminal output.
func RenderShard(r *ShardResult) string {
	return fmt.Sprintf(`shard-parallel fit (-exp shard)
  stream:     n=%d k=%d batch=%d, P=%d shards on %d cores
  throughput: 1 shard %.0f objects/sec (%.2fs), %d shards %.0f objects/sec (%.2fs) — %.2fx
  quality:    sharded %.4f vs single-engine %.4f on %d-object subsample
`,
		r.N, r.K, r.BatchSize, r.Shards, r.EffectiveCores,
		r.SingleObjectsPerSec, r.SingleSeconds,
		r.Shards, r.ShardObjectsPerSec, r.ShardSeconds, r.Speedup,
		r.ShardQuality, r.SingleQuality, r.Subsample)
}

// RequiredSpeedup is the core-aware throughput floor: the headline 2.5×
// (for 4 shards) is demanded only when the machine has at least 4 cores to
// run them on; with fewer cores the floor scales as 0.625× per effective
// core, bottoming out at 0.5× on a single core (sharding must never cost
// more than half the single-engine throughput, even with all shards
// time-slicing one core).
func (r *ShardResult) RequiredSpeedup() float64 {
	cores := r.EffectiveCores
	if cores > r.Shards {
		cores = r.Shards
	}
	req := 0.625 * float64(cores)
	if req < 0.5 {
		req = 0.5
	}
	return req
}

// Check applies the shard acceptance gates: quality within 2% of the
// single-engine fit (one-sided — landing in a *better* optimum passes),
// and throughput at least RequiredSpeedup times the single-engine fit.
func (r *ShardResult) Check() error {
	if r.ShardQuality < r.SingleQuality-0.02*math.Abs(r.SingleQuality) {
		return fmt.Errorf("shard: sharded quality %.4f more than 2%% below single-engine quality %.4f",
			r.ShardQuality, r.SingleQuality)
	}
	if req := r.RequiredSpeedup(); r.Speedup < req {
		return fmt.Errorf("shard: %d-shard speedup %.2fx below the %.2fx floor for %d effective cores",
			r.Shards, r.Speedup, req, r.EffectiveCores)
	}
	return nil
}
