package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"ucpc/internal/rng"
	"ucpc/internal/vec"
)

// This file implements the `-exp kernel` microbench: the blocked flat
// kernels of internal/vec (DotBlock, SqDistBlock, SqNormBlock, DotRows)
// against the scalar vec.Dot/SqDist/SqNorm baselines they replaced in the
// hot loops, reported as ns per moment-store row. The measurement follows
// the same discipline as the pruning bench: blocked and scalar passes are
// interleaved rep by rep within one process and each side keeps its
// minimum, so slow-clock drift between invocations cannot land on one side
// of a ratio.

// KernelBenchConfig parameterizes the kernel microbench.
type KernelBenchConfig struct {
	// M is the row dimensionality (default 42, the standard bench's m).
	M int
	// Rows is the number of rows per timed pass (default 4096).
	Rows int
	// Reps is the number of interleaved measurement pairs (default 9).
	Reps int
	// Seed drives the deterministic row contents (default 1).
	Seed uint64
}

// KernelBenchRow is one kernel's blocked-vs-scalar measurement.
type KernelBenchRow struct {
	// Kernel names the blocked entry point measured.
	Kernel string `json:"kernel"`
	// BlockedNsPerRow is the blocked kernel's cost per row (min over reps).
	BlockedNsPerRow float64 `json:"blocked_ns_per_row"`
	// ScalarNsPerRow is the scalar baseline's cost per row (min over reps).
	ScalarNsPerRow float64 `json:"scalar_ns_per_row"`
	// Speedup is ScalarNsPerRow / BlockedNsPerRow.
	Speedup float64 `json:"speedup"`
}

// KernelBenchResult is the `-exp kernel` artifact CI archives next to the
// pruning bench JSON; the host header fields make cross-run comparisons
// interpretable.
type KernelBenchResult struct {
	M    int `json:"m"`
	Rows int `json:"rows"`
	Reps int `json:"reps"`

	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOAMD64       string `json:"goamd64,omitempty"`
	CPUModel      string `json:"cpu_model,omitempty"`
	KernelVariant string `json:"kernel_variant"`

	Table []KernelBenchRow `json:"kernels"`
}

// kernelSink keeps the timed loops' results observable so the compiler
// cannot discard them.
var kernelSink float64

// KernelBench measures the blocked vec kernels against their scalar
// baselines on row-major slabs shaped like the standard bench's moment
// store.
func KernelBench(cfg KernelBenchConfig) *KernelBenchResult {
	m := cfg.M
	if m <= 0 {
		m = 42
	}
	rows := cfg.Rows
	if rows <= 0 {
		rows = 4096
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 9
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	r := rng.New(seed)
	a := make([]float64, rows*m)
	b := make([]float64, rows*m)
	for i := range a {
		a[i] = r.Normal(0, 1)
		b[i] = r.Normal(0, 1)
	}
	// DotRows streams one x row against k contiguous rows; use the standard
	// bench's k=16 and report per scored row.
	const k = 16
	dst := make([]float64, k)

	type pair struct {
		name            string
		blocked, scalar func() float64
	}
	pairs := []pair{
		{"DotBlock", func() float64 {
			var s float64
			for i := 0; i < rows; i++ {
				s += vec.DotBlock(a[i*m:(i+1)*m], b[i*m:(i+1)*m])
			}
			return s
		}, func() float64 {
			var s float64
			for i := 0; i < rows; i++ {
				s += vec.Dot(a[i*m:(i+1)*m], b[i*m:(i+1)*m])
			}
			return s
		}},
		{"SqDistBlock", func() float64 {
			var s float64
			for i := 0; i < rows; i++ {
				s += vec.SqDistBlock(a[i*m:(i+1)*m], b[i*m:(i+1)*m])
			}
			return s
		}, func() float64 {
			var s float64
			for i := 0; i < rows; i++ {
				s += vec.SqDist(a[i*m:(i+1)*m], b[i*m:(i+1)*m])
			}
			return s
		}},
		{"SqNormBlock", func() float64 {
			var s float64
			for i := 0; i < rows; i++ {
				s += vec.SqNormBlock(a[i*m : (i+1)*m])
			}
			return s
		}, func() float64 {
			var s float64
			for i := 0; i < rows; i++ {
				s += vec.SqNorm(a[i*m : (i+1)*m])
			}
			return s
		}},
		{"DotRows", func() float64 {
			var s float64
			for i := 0; i+k <= rows; i += k {
				vec.DotRows(dst, a[i*m:(i+1)*m], b[i*m:(i+k)*m], m)
				s += dst[0] + dst[k-1]
			}
			return s
		}, func() float64 {
			var s float64
			for i := 0; i+k <= rows; i += k {
				x := a[i*m : (i+1)*m]
				for c := 0; c < k; c++ {
					dst[c] = vec.Dot(x, b[(i+c)*m:(i+c+1)*m])
				}
				s += dst[0] + dst[k-1]
			}
			return s
		}},
	}

	res := &KernelBenchResult{
		M: m, Rows: rows, Reps: reps,
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOAMD64:       buildGOAMD64(),
		CPUModel:      hostCPUModel(),
		KernelVariant: vec.KernelVariant,
	}
	for _, p := range pairs {
		// Warm both paths once so first-touch effects hit neither side.
		kernelSink += p.blocked() + p.scalar()
		var bBest, sBest time.Duration
		for rep := 0; rep < reps; rep++ {
			order := []func() float64{p.blocked, p.scalar}
			first := &bBest
			second := &sBest
			if rep%2 == 1 {
				order[0], order[1] = order[1], order[0]
				first, second = second, first
			}
			t0 := time.Now()
			kernelSink += order[0]()
			d0 := time.Since(t0)
			t1 := time.Now()
			kernelSink += order[1]()
			d1 := time.Since(t1)
			if *first == 0 || d0 < *first {
				*first = d0
			}
			if *second == 0 || d1 < *second {
				*second = d1
			}
		}
		bNs := float64(bBest.Nanoseconds()) / float64(rows)
		sNs := float64(sBest.Nanoseconds()) / float64(rows)
		res.Table = append(res.Table, KernelBenchRow{
			Kernel:          p.name,
			BlockedNsPerRow: bNs,
			ScalarNsPerRow:  sNs,
			Speedup:         sNs / bNs,
		})
	}
	return res
}

// RenderKernelBench formats the microbench as an aligned text table.
func RenderKernelBench(r *KernelBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Flat-kernel microbench (m=%d, %d rows/pass, min over %d interleaved pairs)\n",
		r.M, r.Rows, r.Reps)
	fmt.Fprintf(&b, "host: %s/%s GOAMD64=%s kernels=%s cpu=%q\n\n",
		r.GOOS, r.GOARCH, r.GOAMD64, r.KernelVariant, r.CPUModel)
	fmt.Fprintf(&b, "%-14s %14s %14s %9s\n", "kernel", "blocked ns/row", "scalar ns/row", "speedup")
	b.WriteString(strings.Repeat("-", 55) + "\n")
	for _, row := range r.Table {
		fmt.Fprintf(&b, "%-14s %14.1f %14.1f %8.2fx\n",
			row.Kernel, row.BlockedNsPerRow, row.ScalarNsPerRow, row.Speedup)
	}
	return b.String()
}
