package experiments

import (
	"context"
	"fmt"

	"ucpc/internal/clustering"
	"ucpc/internal/datasets"
	"ucpc/internal/eval"
)

// Table3ClusterCounts is the paper's sweep of cluster numbers for the real
// datasets.
var Table3ClusterCounts = []int{2, 3, 5, 10, 15, 20, 25, 30}

// Table3Row is one (dataset, #clusters) configuration with the mean Q of
// every algorithm.
type Table3Row struct {
	Dataset string
	K       int
	Q       map[AlgorithmID]float64
}

// Table3Result is the accuracy study on the microarray datasets.
type Table3Result struct {
	Rows       []Table3Row
	Algorithms []AlgorithmID
}

// Table3 reproduces the paper's Table 3: the two real microarray
// collections are clustered with every algorithm for each cluster count,
// and assessed with the internal criterion Q only (no reference
// classification exists for these data).
func Table3(ctx context.Context, cfg Config, datasetNames []string, ks []int) (*Table3Result, error) {
	ctx = clustering.Ctx(ctx)
	cfg = cfg.withDefaults()
	if datasetNames == nil {
		for _, s := range datasets.Microarrays() {
			datasetNames = append(datasetNames, s.Name)
		}
	}
	if ks == nil {
		ks = Table3ClusterCounts
	}
	algs := AccuracyAlgorithms()
	res := &Table3Result{Algorithms: algs}

	for di, name := range datasetNames {
		spec, err := datasets.MicroarrayByName(name)
		if err != nil {
			return nil, err
		}
		ds := datasets.GenerateMicroarray(spec, cfg.scaleFor(spec.Genes), cfg.Seed)
		for _, k := range ks {
			if k > len(ds) {
				continue
			}
			row := Table3Row{Dataset: name, K: k, Q: map[AlgorithmID]float64{}}
			for ai, id := range algs {
				var q float64
				for run := 0; run < cfg.Runs; run++ {
					seed := cfg.Seed ^ (uint64(di+1) << 40) ^ (uint64(k) << 24) ^
						(uint64(ai+1) << 16) ^ uint64(run+1)
					rep, err := runClock(ctx, id, ds, k, seed)
					if err != nil {
						return nil, fmt.Errorf("table3 %s k=%d: %w", name, k, err)
					}
					q += eval.Quality(ds, rep.Partition)
				}
				row.Q[id] = q / float64(cfg.Runs)
				cfg.Progress("table3 %s k=%d %s: Q=%+.3f", name, k, id, row.Q[id])
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// AverageQ returns the mean Q of an algorithm over all rows (the paper's
// "overall average score").
func (t *Table3Result) AverageQ(id AlgorithmID) float64 {
	var s float64
	for _, r := range t.Rows {
		s += r.Q[id]
	}
	return s / float64(len(t.Rows))
}

// Gains returns the overall average gain of UCPC against each competitor.
func (t *Table3Result) Gains() map[AlgorithmID]float64 {
	out := map[AlgorithmID]float64{}
	ucpc := t.AverageQ(AlgUCPC)
	for _, id := range t.Algorithms {
		if id != AlgUCPC {
			out[id] = ucpc - t.AverageQ(id)
		}
	}
	return out
}
