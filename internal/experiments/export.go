package experiments

import (
	"fmt"
	"strings"
)

// CSV exports of the experiment results, for plotting with external tools.
// Every export emits one header row and plain numeric cells.

// Table2CSV renders the accuracy study as CSV: dataset, pdf, then Θ and Q
// per algorithm.
func Table2CSV(t *Table2Result) string {
	var b strings.Builder
	b.WriteString("dataset,pdf")
	for _, id := range t.Algorithms {
		fmt.Fprintf(&b, ",theta_%s", csvID(id))
	}
	for _, id := range t.Algorithms {
		fmt.Fprintf(&b, ",q_%s", csvID(id))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%s,%s", row.Dataset, row.Model)
		for _, id := range t.Algorithms {
			fmt.Fprintf(&b, ",%.6f", row.Cells[id].Theta)
		}
		for _, id := range t.Algorithms {
			fmt.Fprintf(&b, ",%.6f", row.Cells[id].Q)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table3CSV renders the real-data study as CSV: dataset, k, Q per algorithm.
func Table3CSV(t *Table3Result) string {
	var b strings.Builder
	b.WriteString("dataset,k")
	for _, id := range t.Algorithms {
		fmt.Fprintf(&b, ",q_%s", csvID(id))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%s,%d", row.Dataset, row.K)
		for _, id := range t.Algorithms {
			fmt.Fprintf(&b, ",%.6f", row.Q[id])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig4CSV renders the efficiency study as CSV: dataset, n, k, then the
// online milliseconds and the pruning engine's hit rate of every measured
// algorithm (slow ∪ fast).
func Fig4CSV(f *Fig4Result) string {
	ids := unionIDs(f.Slow, f.Fast)
	var b strings.Builder
	b.WriteString("dataset,n,k")
	for _, id := range ids {
		fmt.Fprintf(&b, ",ms_%s", csvID(id))
	}
	for _, id := range ids {
		fmt.Fprintf(&b, ",prunedfrac_%s", csvID(id))
	}
	b.WriteString("\n")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%s,%d,%d", row.Dataset, row.N, row.K)
		for _, id := range ids {
			fmt.Fprintf(&b, ",%.3f", ms(row.Cells[id].Online))
		}
		for _, id := range ids {
			fmt.Fprintf(&b, ",%.4f", row.Cells[id].PrunedFrac)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig5CSV renders the scalability series as CSV: fraction, n, then the
// online milliseconds per algorithm — one line per size step, ready for a
// line plot matching the paper's Figure 5.
func Fig5CSV(f *Fig5Result) string {
	var b strings.Builder
	b.WriteString("fraction,n")
	for _, id := range f.Algorithms {
		fmt.Fprintf(&b, ",ms_%s", csvID(id))
	}
	b.WriteString("\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%.2f,%d", p.Fraction, p.N)
		for _, id := range f.Algorithms {
			fmt.Fprintf(&b, ",%.3f", ms(p.Times[id]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// csvID lowercases an algorithm id and strips characters awkward in column
// names.
func csvID(id AlgorithmID) string {
	s := strings.ToLower(string(id))
	return strings.ReplaceAll(s, "-", "_")
}

// unionIDs concatenates two lineups preserving order, without duplicates.
func unionIDs(a, b []AlgorithmID) []AlgorithmID {
	seen := map[AlgorithmID]bool{}
	var out []AlgorithmID
	for _, list := range [][]AlgorithmID{a, b} {
		for _, id := range list {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}
