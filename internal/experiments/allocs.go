package experiments

import (
	"context"
	"fmt"
	"runtime"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/mmvar"
	"ucpc/internal/rng"
	"ucpc/internal/ukmeans"
	"ucpc/internal/ukmedoids"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// This file measures the steady-state allocation behavior of every sweep
// loop in the benchmark lineup: each algorithm is run to convergence, its
// converged state is loaded into the corresponding engine, and one more
// sweep pass — the pass every further iteration would repeat — is timed
// for heap allocations with GOMAXPROCS(1), the same discipline as
// testing.AllocsPerRun. All engines preallocate their scratch, so the
// bench gate (PruneBenchResult.Check) requires exactly zero.

// steadyAllocs reports the average heap allocations of pass() over several
// repetitions, after warm() has populated caches and bounds.
func steadyAllocs(warm, pass func()) float64 {
	warm()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	const passes = 10
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < passes; i++ {
		pass()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / passes
}

// statsOf builds per-cluster statistics for an assignment over the store.
func statsOf(mom *uncertain.Moments, assign []int, k int) []*core.Stats {
	stats := make([]*core.Stats, k)
	for c := range stats {
		stats[c] = core.NewStats(mom.Dims())
	}
	for i := 0; i < mom.Len(); i++ {
		stats[assign[i]].AddRow(mom.Mu(i), mom.Mu2(i), mom.Sigma2(i))
	}
	return stats
}

// measureSteadyAllocs returns allocations per steady-state sweep pass for
// every algorithm in the bench lineup, measured on the pruned (default)
// configuration.
func measureSteadyAllocs(ctx context.Context, cfg PruneBenchConfig, ds uncertain.Dataset) (map[string]float64, error) {
	k := cfg.K
	res := make(map[string]float64, 5)
	bg := context.Background()

	converged := func(alg clustering.Algorithm) ([]int, error) {
		rep, err := alg.Cluster(ctx, ds, k, rng.New(cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("allocs warmup %s: %w", alg.Name(), err)
		}
		return append([]int(nil), rep.Partition.Assign...), nil
	}

	// Relocation sweeps (UCPC, MMV): one RelocEngine.Pass at the fixed
	// point. The warm pass populates the dot cache; the measured passes
	// apply no moves, the steady state of a converged local search.
	for _, tc := range []struct {
		name string
		alg  clustering.Algorithm
		kind core.RelocKind
	}{
		{"UCPC", &core.UCPC{Workers: cfg.Workers}, core.RelocUCPC},
		{"MMV", &mmvar.MMVar{}, core.RelocMMVar},
	} {
		assign, err := converged(tc.alg)
		if err != nil {
			return nil, err
		}
		mom := uncertain.MomentsOf(ds)
		eng := core.NewRelocEngine(tc.kind, mom, statsOf(mom, assign, k), true)
		pass := func() {
			if _, err := eng.Pass(bg, assign, 1e-12); err != nil {
				panic(err)
			}
		}
		res[tc.name] = steadyAllocs(pass, pass)
	}

	// Assignment sweeps (UKM, UCPC-Lloyd): SetCenters + Assign against the
	// converged centroids, workers=1 (the measurement configuration; extra
	// workers add goroutine-spawn allocations by design). The warm call
	// runs the box-filtered first pass; the measured passes take the
	// steady-state Hamerly-style bounded path.
	{
		assign, err := converged(&ukmeans.UKMeans{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		mom := uncertain.MomentsOf(ds)
		centers := make([]vec.Vector, k)
		for c := range centers {
			centers[c] = vec.New(mom.Dims())
		}
		clustering.MeansOfMoments(mom, assign, centers)
		eng := core.NewAssigner(mom, k, true)
		pass := func() {
			eng.SetCenterVecs(centers, nil)
			eng.Assign(assign, 1)
		}
		res["UKM"] = steadyAllocs(pass, pass)
	}
	{
		assign, err := converged(&core.UCPCLloyd{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		mom := uncertain.MomentsOf(ds)
		centers := make([]float64, k*mom.Dims())
		adds := make([]float64, k)
		core.UCentroidAssignState(mom, assign, k, centers, adds)
		eng := core.NewAssigner(mom, k, true)
		pass := func() {
			eng.SetCenters(centers, adds)
			eng.Assign(assign, 1)
		}
		res["UCPC-Lloyd"] = steadyAllocs(pass, pass)
	}

	// Medoid sweep (UKmed): assignment pass plus medoid update over the
	// converged partition, both through the preallocated engines.
	{
		alg := &ukmedoids.UKMedoids{Workers: cfg.Workers}
		rep, err := alg.Cluster(ctx, ds, k, rng.New(cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("allocs warmup UKmed: %w", err)
		}
		assign := append([]int(nil), rep.Partition.Assign...)
		medoids := append([]int(nil), rep.Medoids...)
		lastEval := append([]int(nil), rep.Medoids...)
		members := rep.Partition.Members()
		dm := ukmedoids.MatrixWorkers(ds, cfg.Workers)
		upd := ukmedoids.NewUpdater(dm)
		var ctr ukmedoids.Counters
		pass := func() {
			if _, err := ukmedoids.AssignPass(bg, dm, medoids, lastEval, assign, true, &ctr); err != nil {
				panic(err)
			}
			upd.Update(members, medoids, true, &ctr)
		}
		res["UKmed"] = steadyAllocs(pass, pass)
	}
	return res, nil
}
