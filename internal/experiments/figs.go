package experiments

import (
	"context"
	"fmt"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/datasets"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/uncgen"
)

// Fig4Datasets are the efficiency-study datasets: the two largest
// benchmarks (excluding KDDCup99) plus the two real collections, exactly as
// in the paper's Figure 4.
var Fig4Datasets = []string{"Abalone", "Letter", "Neuroblastoma", "Leukaemia"}

// TimingCell is one (dataset, algorithm) efficiency measurement.
type TimingCell struct {
	// Online is the mean clustering time (the paper's reported quantity;
	// off-line pruning/pre-computation time is excluded).
	Online time.Duration
	// Offline is the mean excluded pre-computation time, reported for
	// transparency.
	Offline time.Duration
	// EDComputations is the mean number of expensive expected-distance
	// integrals (meaningful for bUKM and the pruning variants).
	EDComputations float64
	// Iterations is the mean outer-iteration count.
	Iterations float64
	// PrunedFrac is the bound-based pruning engine's hit rate: the
	// fraction of candidate (object, centroid) pairs skipped by exact
	// bounds, aggregated over the runs (0 for algorithms without pruned
	// loops or with pruning disabled).
	PrunedFrac float64
}

// Fig4Row holds all algorithm timings for one dataset.
type Fig4Row struct {
	Dataset string
	N       int // objects actually clustered (after scaling)
	K       int
	Cells   map[AlgorithmID]TimingCell
}

// Fig4Result is the efficiency study.
type Fig4Result struct {
	Rows []Fig4Row
	Slow []AlgorithmID
	Fast []AlgorithmID
}

// fig4Dataset materializes one of the Figure 4 datasets as an uncertain
// dataset plus its cluster count.
func fig4Dataset(cfg Config, name string) (uncertain.Dataset, int, error) {
	if spec, err := datasets.BenchmarkByName(name); err == nil {
		d := datasets.Generate(spec, cfg.Seed).Scale(cfg.scaleFor(spec.N))
		set := (&uncgen.Generator{Model: uncgen.Normal, Intensity: cfg.Intensity}).Assign(d, rng.New(cfg.Seed^0xf16))
		return set.Objects(d), spec.Classes, nil
	}
	spec, err := datasets.MicroarrayByName(name)
	if err != nil {
		return nil, 0, fmt.Errorf("fig4: unknown dataset %q", name)
	}
	ds := datasets.GenerateMicroarray(spec, cfg.scaleFor(spec.Genes), cfg.Seed)
	return ds, 5, nil // the paper's real-data plots use a small fixed k
}

// Fig4 reproduces the paper's Figure 4: mean clustering runtimes of the
// "slower" algorithms (UK-medoids, basic UK-means, UAHC, FOPTICS, FDBSCAN)
// and the "faster" ones (MMVar, UK-means, MinMax-BB, VDBiP), each compared
// against UCPC, on the two largest benchmarks and the two real datasets.
func Fig4(ctx context.Context, cfg Config, names []string) (*Fig4Result, error) {
	ctx = clustering.Ctx(ctx)
	cfg = cfg.withDefaults()
	if names == nil {
		names = Fig4Datasets
	}
	res := &Fig4Result{Slow: SlowAlgorithms(), Fast: FastAlgorithms()}

	// The union, measured once per dataset.
	ids := map[AlgorithmID]bool{}
	for _, id := range res.Slow {
		ids[id] = true
	}
	for _, id := range res.Fast {
		ids[id] = true
	}

	for di, name := range names {
		ds, k, err := fig4Dataset(cfg, name)
		if err != nil {
			return nil, err
		}
		row := Fig4Row{Dataset: name, N: len(ds), K: k, Cells: map[AlgorithmID]TimingCell{}}
		for id := range ids {
			var cell TimingCell
			var pruned, scanned int64
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed ^ (uint64(di+1) << 32) ^ hashID(id) ^ uint64(run+1)
				rep, err := runClock(ctx, id, ds, k, seed)
				if err != nil {
					return nil, fmt.Errorf("fig4 %s: %w", name, err)
				}
				cell.Online += rep.Online
				cell.Offline += rep.Offline
				cell.EDComputations += float64(rep.EDComputations)
				cell.Iterations += float64(rep.Iterations)
				pruned += rep.PrunedCandidates
				scanned += rep.ScannedCandidates
			}
			cell.Online /= time.Duration(cfg.Runs)
			cell.Offline /= time.Duration(cfg.Runs)
			cell.EDComputations /= float64(cfg.Runs)
			cell.Iterations /= float64(cfg.Runs)
			if total := pruned + scanned; total > 0 {
				cell.PrunedFrac = float64(pruned) / float64(total)
			}
			row.Cells[id] = cell
			cfg.Progress("fig4 %s %s: %v online", name, id, cell.Online)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig5Fractions are the paper's dataset-size steps for the scalability
// study (5 % to 100 %).
var Fig5Fractions = []float64{0.05, 0.10, 0.25, 0.50, 0.75, 1.00}

// Fig5Point is one (fraction, algorithm) scalability measurement.
type Fig5Point struct {
	Fraction float64
	N        int
	Times    map[AlgorithmID]time.Duration
}

// Fig5Result is the scalability study on the KDD-Cup-'99-shaped workload.
type Fig5Result struct {
	BaseN      int
	Points     []Fig5Point
	Algorithms []AlgorithmID
}

// Fig5 reproduces the paper's Figure 5: the KDD Cup '99 collection is
// clustered at increasing size fractions (k fixed to 23, every class
// covered at every fraction) by the fast algorithms, and the mean
// clustering time is reported per fraction.
//
// The base size is Config.Scale × 4M (default Scale 0.08 → 320k objects is
// still heavy for CI, so Fig5 halves the default to 0.005 → 20k; pass an
// explicit Scale for larger studies, up to 1.0 = the full 4M).
func Fig5(ctx context.Context, cfg Config, fractions []float64) (*Fig5Result, error) {
	ctx = clustering.Ctx(ctx)
	if cfg.Scale == 0 {
		cfg.Scale = 0.005
	}
	cfg = cfg.withDefaults()
	if fractions == nil {
		fractions = Fig5Fractions
	}
	spec := datasets.KDD()
	baseN := int(float64(spec.N) * cfg.Scale)
	if baseN < spec.Classes*10 {
		baseN = spec.Classes * 10
	}
	full := datasets.GenerateKDD(baseN, cfg.Seed)
	set := (&uncgen.Generator{Model: uncgen.Normal, Intensity: cfg.Intensity}).Assign(full, rng.New(cfg.Seed^0xf5))
	fullObjs := set.Objects(full)

	res := &Fig5Result{BaseN: baseN, Algorithms: ScalabilityAlgorithms()}
	for _, frac := range fractions {
		n := int(float64(baseN) * frac)
		if n < spec.Classes {
			n = spec.Classes
		}
		// GenerateKDD emits one object of every class first, so prefixes
		// keep all 23 classes covered — mirroring the paper's setup.
		ds := fullObjs[:n]
		point := Fig5Point{Fraction: frac, N: n, Times: map[AlgorithmID]time.Duration{}}
		for _, id := range res.Algorithms {
			var total time.Duration
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed ^ (uint64(frac*1000) << 20) ^ hashID(id) ^ uint64(run+1)
				rep, err := runClock(ctx, id, ds, spec.Classes, seed)
				if err != nil {
					return nil, fmt.Errorf("fig5 %.0f%%: %w", frac*100, err)
				}
				total += rep.Online
			}
			point.Times[id] = total / time.Duration(cfg.Runs)
			cfg.Progress("fig5 %3.0f%% (n=%d) %s: %v", frac*100, n, id, point.Times[id])
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

func hashID(id AlgorithmID) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}
