package experiments

import (
	"context"
	"fmt"

	"ucpc/internal/clustering"
	"ucpc/internal/datasets"
	"ucpc/internal/eval"
	"ucpc/internal/rng"
	"ucpc/internal/uncgen"
)

// Table2Cell is one (dataset, pdf, algorithm) measurement: the paper's Θ
// (F-measure gain of clustering with the uncertainty model over clustering
// the perturbed deterministic data) and Q (internal quality of the Case-2
// clustering), both averaged over Config.Runs.
type Table2Cell struct {
	Theta float64
	Q     float64
	// FCase1/FCase2 are the underlying mean F-measures.
	FCase1, FCase2 float64
}

// Table2Row is one dataset × pdf configuration.
type Table2Row struct {
	Dataset string
	Model   uncgen.Model
	Cells   map[AlgorithmID]Table2Cell
}

// Table2Result is the full accuracy study on benchmark datasets.
type Table2Result struct {
	Rows       []Table2Row
	Algorithms []AlgorithmID
}

// Table2 reproduces the paper's Table 2: for every benchmark dataset and
// every pdf family, it builds the perturbed dataset D′ (Case 1) and the
// uncertain dataset D″ (Case 2), clusters both with every algorithm, and
// reports Θ = F(C″) − F(C′) and Q(C″), averaged over Config.Runs runs.
//
// datasetNames selects a subset of the benchmarks (nil = all 8), and
// models a subset of pdf families (nil = U, N, E).
func Table2(ctx context.Context, cfg Config, datasetNames []string, models []uncgen.Model) (*Table2Result, error) {
	ctx = clustering.Ctx(ctx)
	cfg = cfg.withDefaults()
	if datasetNames == nil {
		for _, s := range datasets.Benchmarks() {
			datasetNames = append(datasetNames, s.Name)
		}
	}
	if models == nil {
		models = uncgen.Models()
	}
	algs := AccuracyAlgorithms()
	res := &Table2Result{Algorithms: algs}

	root := rng.New(cfg.Seed)
	for di, name := range datasetNames {
		spec, err := datasets.BenchmarkByName(name)
		if err != nil {
			return nil, err
		}
		full := datasets.Generate(spec, cfg.Seed)
		d := full.Scale(cfg.scaleFor(spec.N))
		for mi, model := range models {
			row := Table2Row{Dataset: name, Model: model, Cells: map[AlgorithmID]Table2Cell{}}
			genRNG := root.Split(uint64(di)<<8 | uint64(mi))
			set := (&uncgen.Generator{Model: model, Intensity: cfg.Intensity}).Assign(d, genRNG)
			case2 := set.Objects(d)
			for ai, id := range algs {
				var cell Table2Cell
				for run := 0; run < cfg.Runs; run++ {
					seed := cfg.Seed ^ (uint64(di+1) << 40) ^ (uint64(mi+1) << 32) ^
						(uint64(ai+1) << 16) ^ uint64(run+1)
					// Case 1: cluster the perturbed deterministic data.
					perturbed := set.Perturb(d, genRNG.Split(uint64(run)))
					case1 := uncgen.AsPointObjects(perturbed)
					rep1, err := runClock(ctx, id, case1, spec.Classes, seed)
					if err != nil {
						return nil, fmt.Errorf("table2 %s/%v case1: %w", name, model, err)
					}
					f1 := eval.FMeasure(rep1.Partition, d.Labels)

					// Case 2: cluster the uncertain objects.
					rep2, err := runClock(ctx, id, case2, spec.Classes, seed)
					if err != nil {
						return nil, fmt.Errorf("table2 %s/%v case2: %w", name, model, err)
					}
					f2 := eval.FMeasure(rep2.Partition, d.Labels)

					cell.FCase1 += f1
					cell.FCase2 += f2
					cell.Theta += eval.Theta(f2, f1)
					cell.Q += eval.Quality(case2, rep2.Partition)
				}
				inv := 1 / float64(cfg.Runs)
				cell.FCase1 *= inv
				cell.FCase2 *= inv
				cell.Theta *= inv
				cell.Q *= inv
				row.Cells[id] = cell
				cfg.Progress("table2 %s/%v %s: Θ=%+.3f Q=%+.3f", name, model, id, cell.Theta, cell.Q)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// AverageTheta returns the mean Θ of an algorithm over all rows (the
// paper's "overall average score").
func (t *Table2Result) AverageTheta(id AlgorithmID) float64 {
	var s float64
	for _, r := range t.Rows {
		s += r.Cells[id].Theta
	}
	return s / float64(len(t.Rows))
}

// AverageQ returns the mean Q of an algorithm over all rows.
func (t *Table2Result) AverageQ(id AlgorithmID) float64 {
	var s float64
	for _, r := range t.Rows {
		s += r.Cells[id].Q
	}
	return s / float64(len(t.Rows))
}

// Gains returns the paper's "overall average gain" of UCPC against each
// competing algorithm, for the Θ and Q criteria.
func (t *Table2Result) Gains() map[AlgorithmID][2]float64 {
	out := map[AlgorithmID][2]float64{}
	ucpcTheta := t.AverageTheta(AlgUCPC)
	ucpcQ := t.AverageQ(AlgUCPC)
	for _, id := range t.Algorithms {
		if id == AlgUCPC {
			continue
		}
		out[id] = [2]float64{ucpcTheta - t.AverageTheta(id), ucpcQ - t.AverageQ(id)}
	}
	return out
}
