package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucpc/internal/datasets"
	"ucpc/internal/serve"
	"ucpc/internal/uncertain"
)

// Serve is the daemon load experiment behind `cmd/uncbench -exp serve`: it
// boots the clustering daemon of internal/serve on a loopback listener,
// ingests a KDD-shaped uncertain stream over the HTTP observe path, freezes
// a serving model, and then drives concurrent assign load against it while a
// hot model swap lands mid-flight. The gates are the daemon's contracts, not
// micro-numbers: zero failed assigns across the swap, at least two model
// versions observed by the load workers, explicit 429 backpressure that
// matches the server's own rejection counter, the requests == Σ responses
// conservation law on the quiesced /metrics, and modest absolute floors on
// serving QPS and client-observed p99 latency.

// ServeConfig sizes the daemon load experiment. The zero value selects the
// full CI workload (SERVE_PR8.json); smoke tests pass a small N and a short
// Duration.
type ServeConfig struct {
	// N is the number of uncertain objects ingested before serving starts
	// (default 10,000).
	N int
	// K is the number of clusters (default 8).
	K int
	// Workers is the number of concurrent assign load workers (default 4).
	Workers int
	// AssignBatch is the number of objects per assign request (default 16).
	AssignBatch int
	// Duration is the assign load window (default 3s). The window stretches
	// if needed until the mid-load hot swap has landed and been observed.
	Duration time.Duration
	// BatchSize is the tenant's streaming mini-batch size (default 2048).
	BatchSize int
	// Seed drives the object stream and the fits (0 = 1).
	Seed uint64
	// P99BudgetMs and MinQPS are the serving-floor gates Check enforces
	// (defaults 250 ms and 100 requests/sec — deliberately modest so a
	// 1-core CI box passes with a wide margin; regressions that matter are
	// order-of-magnitude, not percent).
	P99BudgetMs float64
	MinQPS      float64
	// Progress, when non-nil, receives one line per phase.
	Progress func(format string, args ...any)
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.N == 0 {
		c.N = 10_000
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.AssignBatch == 0 {
		c.AssignBatch = 16
	}
	if c.Duration == 0 {
		c.Duration = 3 * time.Second
	}
	if c.BatchSize == 0 {
		c.BatchSize = 2048
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.P99BudgetMs == 0 {
		c.P99BudgetMs = 250
	}
	if c.MinQPS == 0 {
		c.MinQPS = 100
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
	return c
}

// ServeResult is the JSON payload of the daemon load experiment
// (SERVE_PR8.json).
type ServeResult struct {
	N           int     `json:"n"`
	K           int     `json:"k"`
	Workers     int     `json:"workers"`
	AssignBatch int     `json:"assign_batch"`
	Duration    float64 `json:"duration_seconds"`

	// Ingest throughput over the HTTP observe path (wall time from first
	// POST until the tenant reports everything folded in).
	IngestSeconds       float64 `json:"ingest_seconds"`
	IngestObjectsPerSec float64 `json:"ingest_objects_per_sec"`

	// The assign load window: client-observed request counts, failures,
	// sustained QPS, and latency percentiles in milliseconds.
	AssignRequests  int64   `json:"assign_requests"`
	FailedAssigns   int64   `json:"failed_assigns"`
	AssignedObjects int64   `json:"assigned_objects"`
	QPS             float64 `json:"qps"`
	P50Ms           float64 `json:"p50_ms"`
	P95Ms           float64 `json:"p95_ms"`
	P99Ms           float64 `json:"p99_ms"`

	// VersionsObserved counts the distinct model versions assign responses
	// reported — >= 2 proves the hot swap landed under live load.
	VersionsObserved int   `json:"versions_observed"`
	SwapsTotal       int64 `json:"swaps_total"`

	// Rejected429 counts client-observed backpressure rejections on the
	// flood tenant; QueueRejectedTotal is the server's own counter — the
	// two must agree exactly.
	Rejected429        int64 `json:"rejected_429"`
	QueueRejectedTotal int64 `json:"queue_rejected_total"`

	// RequestsTotal and ResponsesTotal come from the quiesced /metrics
	// scrape; ConservationOK records requests == Σ responses-by-class.
	RequestsTotal  int64 `json:"requests_total"`
	ResponsesTotal int64 `json:"responses_total"`
	ConservationOK bool  `json:"conservation_ok"`

	// Overload is the admission-control phase: a dedicated tenant under
	// cost-model admission driven at 3× its admitted capacity.
	Overload *OverloadResult `json:"overload,omitempty"`

	// The floors this run was held to, recorded so the committed artifact
	// is self-describing.
	P99BudgetMs float64 `json:"p99_budget_ms"`
	MinQPS      float64 `json:"min_qps"`
}

// OverloadResult is the admission-control overload phase of the serve
// experiment: the client offers 3× the tenant's admitted capacity and
// verifies the daemon's degradation contract — admitted traffic stays
// within the latency budget, everything else sheds as 429 (with a priced
// Retry-After) or 413, and nothing becomes 5xx.
type OverloadResult struct {
	Batch         int     `json:"batch"`
	WindowSeconds float64 `json:"window_seconds"`
	// Clamped records that the tenant's auto-sized capacity exceeded what
	// the loopback client can offer at 3×, so the drive ran under manual
	// limits derived from the same cost measurements.
	Clamped bool `json:"clamped,omitempty"`

	CapacityReqPerSec float64 `json:"capacity_req_per_sec"`
	OfferedRequests   int64   `json:"offered_requests"`
	OfferedPerSec     float64 `json:"offered_per_sec"`

	Admitted      int64 `json:"admitted"`
	Shed429       int64 `json:"shed_429"`
	Shed413       int64 `json:"shed_413"`
	Got5xx        int64 `json:"got_5xx"`
	OtherFailures int64 `json:"other_failures"`

	// AdmittedP50Ms/AdmittedP99Ms are client-observed end-to-end latencies
	// of admitted requests — informational, since on a co-located 1-core
	// driver they fold the load generator's own scheduling congestion into
	// the number. ServeP99BoundMs is the gated figure: the daemon's own
	// assign-latency histogram over the drive window (delta of the
	// /metrics histogram), reported as the upper bucket bound that covers
	// 99% of admitted serving — what the admission layer actually defends.
	AdmittedP50Ms   float64 `json:"admitted_p50_ms"`
	AdmittedP99Ms   float64 `json:"admitted_p99_ms"`
	ServeP99BoundMs float64 `json:"serve_p99_bound_ms"`
	// RetryAfterOK: every 429 in the window carried a well-formed integer
	// Retry-After >= 1.
	RetryAfterOK bool `json:"retry_after_ok"`

	// The cost-model accuracy probe: the tenant's EWMA ns/object against
	// the exact mean of a fresh sequential request window (within 30%).
	CostEwmaNsPerObject   float64 `json:"cost_ewma_ns_per_object"`
	CostWindowNsPerObject float64 `json:"cost_window_ns_per_object"`
	CostAccuracyOK        bool    `json:"cost_accuracy_ok"`

	// ManualShed413OK: the limits control surface round trip — manual
	// limits with a small burst provoke a 413 that names the admissible
	// batch, then auto mode is restored.
	ManualShed413OK bool `json:"manual_shed_413_ok"`
	// AdmissionConservationOK: per route, the tenant's attempts counter
	// equals admitted + shed(429) + shed(413), and the daemon-wide
	// admission counters agree.
	AdmissionConservationOK bool `json:"admission_conservation_ok"`
}

// encodeObjects renders a chunk of uncertain objects as the daemon's JSON
// observe/assign payload, marginals as ucsv tokens.
func encodeObjects(objs uncertain.Dataset) (string, error) {
	type objJSON struct {
		Marginals []string `json:"marginals"`
	}
	payload := struct {
		Objects []objJSON `json:"objects"`
	}{Objects: make([]objJSON, len(objs))}
	for i, o := range objs {
		toks := make([]string, o.Dims())
		for j := range toks {
			tok, err := datasets.FormatMarginal(o.Marginal(j))
			if err != nil {
				return "", err
			}
			toks[j] = tok
		}
		payload.Objects[i].Marginals = toks
	}
	raw, err := json.Marshal(payload)
	return string(raw), err
}

// serveClient is the experiment's HTTP client state.
type serveClient struct {
	base   string
	client *http.Client
}

func (c *serveClient) post(ctx context.Context, path, body string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", c.base+path, strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

func (c *serveClient) put(ctx context.Context, path, body string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, "PUT", c.base+path, strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

func (c *serveClient) get(ctx context.Context, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+path, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

// mustPost posts and fails unless the status matches.
func (c *serveClient) mustPost(ctx context.Context, path, body string, want int) ([]byte, error) {
	status, raw, err := c.post(ctx, path, body)
	if err != nil {
		return nil, fmt.Errorf("POST %s: %w", path, err)
	}
	if status != want {
		return nil, fmt.Errorf("POST %s: status %d, want %d (%s)", path, status, want, bytes.TrimSpace(raw))
	}
	return raw, nil
}

// waitIngested polls the tenant until n objects are folded in.
func (c *serveClient) waitIngested(ctx context.Context, tenant string, n int64) error {
	for {
		status, raw, err := c.get(ctx, "/v1/tenants/"+tenant)
		if err != nil {
			return err
		}
		var info struct {
			Ingested    int64  `json:"ingested_objects"`
			IngestError string `json:"last_ingest_error"`
		}
		if status != 200 || json.Unmarshal(raw, &info) != nil {
			return fmt.Errorf("tenant %s info: status %d (%s)", tenant, status, bytes.TrimSpace(raw))
		}
		if info.IngestError != "" {
			return fmt.Errorf("tenant %s ingest error: %s", tenant, info.IngestError)
		}
		if info.Ingested >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Serve runs the daemon load experiment.
func Serve(ctx context.Context, cfg ServeConfig) (*ServeResult, error) {
	cfg = cfg.withDefaults()
	res := &ServeResult{
		N: cfg.N, K: cfg.K, Workers: cfg.Workers, AssignBatch: cfg.AssignBatch,
		P99BudgetMs: cfg.P99BudgetMs, MinQPS: cfg.MinQPS,
	}

	srv, err := serve.New(serve.Config{})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("serve: listen: %w", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
		<-serveDone
	}()

	cl := &serveClient{
		base: "http://" + l.Addr().String(),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers + 64,
			MaxIdleConnsPerHost: cfg.Workers + 64,
		}},
	}

	// Phase 1: tenant + streaming ingestion over HTTP.
	spec := fmt.Sprintf(`{"id":"load","k":%d,"seed":%d,"batch_size":%d}`, cfg.K, cfg.Seed, cfg.BatchSize)
	if _, err := cl.mustPost(ctx, "/v1/tenants", spec, 201); err != nil {
		return nil, err
	}
	src := newScaleSource(cfg.Seed)
	const chunkObjs = 1000
	chunk := make(uncertain.Dataset, 0, chunkObjs)
	ingestStart := time.Now()
	for streamed := 0; streamed < cfg.N; {
		n := chunkObjs
		if rest := cfg.N - streamed; n > rest {
			n = rest
		}
		chunk = src.take(chunk[:0], n)
		body, err := encodeObjects(chunk)
		if err != nil {
			return nil, err
		}
		for {
			status, raw, err := cl.post(ctx, "/v1/tenants/load/observe", body)
			if err != nil {
				return nil, fmt.Errorf("observe: %w", err)
			}
			if status == http.StatusAccepted {
				break
			}
			if status != http.StatusTooManyRequests {
				return nil, fmt.Errorf("observe: status %d (%s)", status, bytes.TrimSpace(raw))
			}
			// Backpressure on the ingest path: count it (the 429 gate checks
			// the client total against the server counter) and retry.
			atomic.AddInt64(&res.Rejected429, 1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
		}
		streamed += n
	}
	if err := cl.waitIngested(ctx, "load", int64(cfg.N)); err != nil {
		return nil, err
	}
	res.IngestSeconds = time.Since(ingestStart).Seconds()
	if res.IngestSeconds > 0 {
		res.IngestObjectsPerSec = float64(cfg.N) / res.IngestSeconds
	}
	cfg.Progress("serve: ingested %d objects over HTTP in %.2fs (%.0f objects/sec)",
		cfg.N, res.IngestSeconds, res.IngestObjectsPerSec)

	// Phase 2: freeze the first serving model.
	if _, err := cl.mustPost(ctx, "/v1/tenants/load/snapshot", "", 200); err != nil {
		return nil, err
	}

	// Phase 3: concurrent assign load with a hot swap landing mid-flight.
	// Workers run until the window has elapsed AND the swap has been
	// observed, so the zero-failures gate always covers a live swap.
	assignBody, err := encodeObjects(newScaleSource(cfg.Seed^0xbeef).take(nil, cfg.AssignBatch))
	if err != nil {
		return nil, err
	}
	var (
		stop        = make(chan struct{})
		swapLanded  atomic.Bool
		failed      atomic.Int64
		requests    atomic.Int64
		objects     atomic.Int64
		mu          sync.Mutex
		latencies   []float64 // milliseconds
		versionsSet = map[int64]bool{}
	)
	var wg sync.WaitGroup
	loadStart := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]float64, 0, 4096)
			versions := map[int64]bool{}
			for {
				select {
				case <-stop:
					mu.Lock()
					latencies = append(latencies, local...)
					for v := range versions {
						versionsSet[v] = true
					}
					mu.Unlock()
					return
				default:
				}
				t0 := time.Now()
				status, raw, err := cl.post(ctx, "/v1/tenants/load/assign", assignBody)
				dt := time.Since(t0)
				requests.Add(1)
				if err != nil || status != 200 {
					failed.Add(1)
					continue
				}
				local = append(local, float64(dt.Nanoseconds())/1e6)
				objects.Add(int64(cfg.AssignBatch))
				var resp struct {
					ModelVersion int64 `json:"model_version"`
				}
				if json.Unmarshal(raw, &resp) == nil {
					versions[resp.ModelVersion] = true
				}
			}
		}()
	}

	// The mid-load swap: stream another slice of objects in and freeze a new
	// model while the workers hammer the old one.
	swapErr := make(chan error, 1)
	go func() {
		time.Sleep(cfg.Duration / 3)
		extra := src.take(make(uncertain.Dataset, 0, cfg.BatchSize), cfg.BatchSize)
		body, err := encodeObjects(extra)
		if err != nil {
			swapErr <- err
			return
		}
		for {
			status, _, err := cl.post(ctx, "/v1/tenants/load/observe", body)
			if err != nil {
				swapErr <- err
				return
			}
			if status == http.StatusAccepted {
				break
			}
			if status == http.StatusTooManyRequests {
				atomic.AddInt64(&res.Rejected429, 1)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err := cl.waitIngested(ctx, "load", int64(cfg.N+len(extra))); err != nil {
			swapErr <- err
			return
		}
		if _, err := cl.mustPost(ctx, "/v1/tenants/load/snapshot", "", 200); err != nil {
			swapErr <- err
			return
		}
		swapLanded.Store(true)
		swapErr <- nil
		cfg.Progress("serve: hot swap landed under load")
	}()

	deadline := time.After(cfg.Duration)
	<-deadline
	if err := <-swapErr; err != nil {
		close(stop)
		wg.Wait()
		return nil, fmt.Errorf("serve: mid-load swap: %w", err)
	}
	// Give the workers a moment to observe the new version before stopping.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	res.Duration = time.Since(loadStart).Seconds()

	res.AssignRequests = requests.Load()
	res.FailedAssigns = failed.Load()
	res.AssignedObjects = objects.Load()
	if res.Duration > 0 {
		res.QPS = float64(res.AssignRequests) / res.Duration
	}
	res.VersionsObserved = len(versionsSet)
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	res.P50Ms, res.P95Ms, res.P99Ms = pct(0.50), pct(0.95), pct(0.99)
	cfg.Progress("serve: %d assigns in %.2fs (%.0f req/sec), p50 %.2fms p99 %.2fms, %d versions, %d failed",
		res.AssignRequests, res.Duration, res.QPS, res.P50Ms, res.P99Ms, res.VersionsObserved, res.FailedAssigns)

	// Phase 4: provoke explicit backpressure on a capacity-1 flood tenant —
	// concurrent observes against a single-slot queue must bounce with 429.
	floodSpec := fmt.Sprintf(`{"id":"flood","k":2,"seed":%d,"batch_size":256,"queue_chunks":1}`, cfg.Seed)
	if _, err := cl.mustPost(ctx, "/v1/tenants", floodSpec, 201); err != nil {
		return nil, err
	}
	floodBody, err := encodeObjects(newScaleSource(cfg.Seed^0xf10d).take(nil, 2000))
	if err != nil {
		return nil, err
	}
	for attempt := 0; res.Rejected429 == 0 && attempt < 50; attempt++ {
		var fwg sync.WaitGroup
		for w := 0; w < 8; w++ {
			fwg.Add(1)
			go func() {
				defer fwg.Done()
				status, _, err := cl.post(ctx, "/v1/tenants/flood/observe", floodBody)
				if err == nil && status == http.StatusTooManyRequests {
					atomic.AddInt64(&res.Rejected429, 1)
				}
			}()
		}
		fwg.Wait()
	}
	cfg.Progress("serve: flood tenant bounced %d observes with 429", res.Rejected429)

	// Phase 4b: cost-model admission control under 3× overload on a
	// dedicated tenant. Its sheds use the admission counters, never the
	// queue_rejected counter, so the flood-tenant 429 gate above is
	// untouched.
	overload, err := runOverload(ctx, cl, cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: overload phase: %w", err)
	}
	res.Overload = overload
	cfg.Progress("serve: overload offered %.0f req/sec against %.0f admitted capacity — %d admitted (serving p99 ≤ %.1fms), %d shed 429, %d shed 413, %d 5xx",
		overload.OfferedPerSec, overload.CapacityReqPerSec, overload.Admitted,
		overload.ServeP99BoundMs, overload.Shed429, overload.Shed413, overload.Got5xx)

	// Phase 5: quiesce (everything above has returned) and scrape /metrics.
	// The flood tenant may still be folding accepted payloads, but that does
	// not touch the request counters.
	status, raw, err := cl.get(ctx, "/metrics")
	if err != nil || status != 200 {
		return nil, fmt.Errorf("serve: metrics scrape: status %d, err %v", status, err)
	}
	text := string(raw)
	scan := func(name string) (int64, bool) {
		for _, line := range strings.Split(text, "\n") {
			var v int64
			if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil && strings.HasPrefix(line, name+" ") {
				return v, true
			}
		}
		return 0, false
	}
	if v, ok := scan("ucpcd_requests_total"); ok {
		res.RequestsTotal = v
	}
	for _, class := range []string{"2xx", "3xx", "4xx", "5xx"} {
		if v, ok := scan(fmt.Sprintf("ucpcd_responses_total{class=%q}", class)); ok {
			res.ResponsesTotal += v
		}
	}
	if v, ok := scan("ucpcd_queue_rejected_total"); ok {
		res.QueueRejectedTotal = v
	}
	if v, ok := scan("ucpcd_swaps_total"); ok {
		res.SwapsTotal = v
	}
	res.ConservationOK = res.RequestsTotal > 0 && res.RequestsTotal == res.ResponsesTotal
	if res.Overload != nil {
		// Cross-check the daemon-wide admission conservation law on the same
		// quiesced scrape: per route, attempts == admitted + shed.
		for _, route := range []string{"assign", "observe"} {
			att, ok1 := scan(fmt.Sprintf("ucpcd_admission_attempts_total{route=%q}", route))
			adm, ok2 := scan(fmt.Sprintf("ucpcd_admitted_total{route=%q}", route))
			s429, ok3 := scan(fmt.Sprintf("ucpcd_shed_total{route=%q,code=\"429\"}", route))
			s413, ok4 := scan(fmt.Sprintf("ucpcd_shed_total{route=%q,code=\"413\"}", route))
			if !(ok1 && ok2 && ok3 && ok4) || att != adm+s429+s413 {
				res.Overload.AdmissionConservationOK = false
			}
		}
	}
	return res, nil
}

// limitsJSON mirrors the daemon's GET /v1/tenants/{id}/limits shape (the
// fields the overload phase reads).
type limitsJSON struct {
	Mode        string  `json:"mode"`
	P99BudgetMs float64 `json:"p99_budget_ms"`
	Assign      struct {
		RateObjectsPerSec float64 `json:"rate_objects_per_sec"`
		BurstObjects      float64 `json:"burst_objects"`
		CostNsPerObject   float64 `json:"cost_ns_per_object"`
		CostTotalNs       float64 `json:"cost_total_ns"`
		CostTotalObjects  int64   `json:"cost_total_objects"`
		AttemptsTotal     int64   `json:"attempts_total"`
		AdmittedTotal     int64   `json:"admitted_total"`
		Shed429Total      int64   `json:"shed_429_total"`
		Shed413Total      int64   `json:"shed_413_total"`
	} `json:"assign"`
	Observe struct {
		AttemptsTotal int64 `json:"attempts_total"`
		AdmittedTotal int64 `json:"admitted_total"`
		Shed429Total  int64 `json:"shed_429_total"`
		Shed413Total  int64 `json:"shed_413_total"`
	} `json:"observe"`
}

// assignHist scrapes /metrics and returns the daemon's cumulative
// ucpcd_assign_latency_seconds bucket counts keyed by the le label. Two
// scrapes bracketing a drive window give the latency distribution of exactly
// the requests served in between.
func (c *serveClient) assignHist(ctx context.Context) (map[string]int64, error) {
	status, raw, err := c.get(ctx, "/metrics")
	if err != nil {
		return nil, err
	}
	if status != 200 {
		return nil, fmt.Errorf("metrics scrape: status %d", status)
	}
	h := make(map[string]int64)
	const prefix = `ucpcd_assign_latency_seconds_bucket{le="`
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		i := strings.Index(rest, `"} `)
		if i < 0 {
			continue
		}
		v, err := strconv.ParseInt(rest[i+3:], 10, 64)
		if err != nil {
			continue
		}
		h[rest[:i]] = v
	}
	return h, nil
}

func (c *serveClient) limits(ctx context.Context, tenant string) (*limitsJSON, error) {
	status, raw, err := c.get(ctx, "/v1/tenants/"+tenant+"/limits")
	if err != nil {
		return nil, err
	}
	if status != 200 {
		return nil, fmt.Errorf("GET limits: status %d (%s)", status, bytes.TrimSpace(raw))
	}
	var lim limitsJSON
	if err := json.Unmarshal(raw, &lim); err != nil {
		return nil, fmt.Errorf("GET limits: %w", err)
	}
	return &lim, nil
}

// runOverload is the admission-control phase of the serve experiment: a
// dedicated tenant under auto admission is warmed until its cost model
// converges, probed for cost accuracy and the manual-limits 413 contract,
// and then driven open-loop at 3× its admitted capacity for a window —
// gating that admitted traffic stays within the latency budget while the
// excess sheds as 429 (priced Retry-After) and nothing becomes 5xx.
func runOverload(ctx context.Context, cl *serveClient, cfg ServeConfig) (*OverloadResult, error) {
	const tenant = "overload"
	batch := 4 * cfg.AssignBatch
	ov := &OverloadResult{Batch: batch}

	// Tenant with admission on, fed by one synchronous fit so a model (and
	// its scanned-candidate counters) is installed before any serving.
	spec := fmt.Sprintf(`{"id":%q,"k":%d,"seed":%d,"admission":"on"}`, tenant, cfg.K, cfg.Seed)
	if _, err := cl.mustPost(ctx, "/v1/tenants", spec, 201); err != nil {
		return nil, err
	}
	fitN := cfg.N / 10
	if fitN < 100 {
		fitN = 100
	}
	if fitN > 1000 {
		fitN = 1000
	}
	fitBody, err := encodeObjects(newScaleSource(cfg.Seed^0x0ad1).take(nil, fitN))
	if err != nil {
		return nil, err
	}
	if _, err := cl.mustPost(ctx, "/v1/tenants/"+tenant+"/fit", fitBody, 200); err != nil {
		return nil, err
	}
	assignBody, err := encodeObjects(newScaleSource(cfg.Seed^0x0ad2).take(nil, batch))
	if err != nil {
		return nil, err
	}

	// assignOnce drives one admitted assign, napping briefly through 429s
	// (sequential phases run closed-loop at the bucket's own pace).
	assignOnce := func() error {
		for attempt := 0; attempt < 500; attempt++ {
			status, raw, err := cl.post(ctx, "/v1/tenants/"+tenant+"/assign", assignBody)
			if err != nil {
				return fmt.Errorf("assign: %w", err)
			}
			switch status {
			case 200:
				return nil
			case http.StatusTooManyRequests:
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(3 * time.Millisecond):
				}
			default:
				return fmt.Errorf("assign: status %d (%s)", status, bytes.TrimSpace(raw))
			}
		}
		return fmt.Errorf("assign: starved behind the %s bucket for 500 attempts", tenant)
	}

	// Warm the cost model, then probe its accuracy: the EWMA against the
	// exact mean of a fresh sequential window (Δ of the limits totals). Up
	// to three windows — one GC pause can skew a single window on a small
	// box, but a converged EWMA must match some fresh window within 30%.
	for i := 0; i < 10; i++ {
		if err := assignOnce(); err != nil {
			return nil, fmt.Errorf("warmup %w", err)
		}
	}
	const probeRequests = 20
	for round := 0; round < 3 && !ov.CostAccuracyOK; round++ {
		before, err := cl.limits(ctx, tenant)
		if err != nil {
			return nil, err
		}
		for i := 0; i < probeRequests; i++ {
			if err := assignOnce(); err != nil {
				return nil, fmt.Errorf("probe %w", err)
			}
		}
		after, err := cl.limits(ctx, tenant)
		if err != nil {
			return nil, err
		}
		dN := after.Assign.CostTotalObjects - before.Assign.CostTotalObjects
		dNs := after.Assign.CostTotalNs - before.Assign.CostTotalNs
		if dN <= 0 {
			continue
		}
		ov.CostWindowNsPerObject = dNs / float64(dN)
		ov.CostEwmaNsPerObject = after.Assign.CostNsPerObject
		if ov.CostWindowNsPerObject > 0 {
			ratio := ov.CostEwmaNsPerObject / ov.CostWindowNsPerObject
			ov.CostAccuracyOK = ratio >= 0.7 && ratio <= 1.3
		}
	}

	// The limits control surface + 413 contract: manual limits with a burst
	// below the batch size must bounce the batch with 413 naming the
	// admissible maximum, and auto mode must restore cleanly.
	smallBurst := batch / 2
	manual := fmt.Sprintf(`{"mode":"manual","assign_rate_objects_per_sec":1e6,"assign_burst_objects":%d}`, smallBurst)
	if status, raw, err := cl.put(ctx, "/v1/tenants/"+tenant+"/limits", manual); err != nil || status != 200 {
		return nil, fmt.Errorf("PUT limits: status %d, err %v (%s)", status, err, bytes.TrimSpace(raw))
	}
	status, raw, err := cl.post(ctx, "/v1/tenants/"+tenant+"/assign", assignBody)
	if err != nil {
		return nil, err
	}
	var tooLarge struct {
		MaxBatch int `json:"max_batch_objects"`
	}
	ov.ManualShed413OK = status == http.StatusRequestEntityTooLarge &&
		json.Unmarshal(raw, &tooLarge) == nil && tooLarge.MaxBatch == smallBurst
	if status, raw, err := cl.put(ctx, "/v1/tenants/"+tenant+"/limits", `{"mode":"auto"}`); err != nil || status != 200 {
		return nil, fmt.Errorf("PUT limits (auto): status %d, err %v (%s)", status, err, bytes.TrimSpace(raw))
	}

	// Size the drive: 3× the admitted capacity. A fast model on a fast box
	// can out-rate what a loopback client can offer at 3×, in which case the
	// drive pins capacity with manual limits derived from the same cost
	// measurements — the shedding contract under test is identical.
	lim, err := cl.limits(ctx, tenant)
	if err != nil {
		return nil, err
	}
	capacity := lim.Assign.RateObjectsPerSec / float64(batch)
	const maxOfferedPerSec = 400.0
	if 3*capacity > maxOfferedPerSec {
		ov.Clamped = true
		capacity = maxOfferedPerSec / 3
		pin := fmt.Sprintf(`{"mode":"manual","assign_rate_objects_per_sec":%g,"assign_burst_objects":%d}`,
			capacity*float64(batch), 2*batch)
		if status, raw, err := cl.put(ctx, "/v1/tenants/"+tenant+"/limits", pin); err != nil || status != 200 {
			return nil, fmt.Errorf("PUT limits (pin): status %d, err %v (%s)", status, err, bytes.TrimSpace(raw))
		}
	}
	ov.CapacityReqPerSec = capacity

	window := cfg.Duration
	if window < time.Second {
		window = time.Second
	}
	ov.WindowSeconds = window.Seconds()
	interval := time.Duration(float64(time.Second) / (3 * capacity))
	if interval <= 0 {
		interval = time.Millisecond
	}

	var (
		inflight      atomic.Int64
		admitted      atomic.Int64
		sShed429      atomic.Int64
		sShed413      atomic.Int64
		got5xx        atomic.Int64
		otherFailures atomic.Int64
		badRetryAfter atomic.Int64
		latMu         sync.Mutex
		admittedLat   []float64
	)
	histBefore, err := cl.assignHist(ctx)
	if err != nil {
		return nil, err
	}
	var owg sync.WaitGroup
	ticker := time.NewTicker(interval)
	driveStart := time.Now()
	driveEnd := time.After(window)
	fire := func() {
		inflight.Add(1)
		owg.Add(1)
		go func() {
			defer owg.Done()
			defer inflight.Add(-1)
			t0 := time.Now()
			req, err := http.NewRequestWithContext(ctx, "POST", cl.base+"/v1/tenants/"+tenant+"/assign",
				strings.NewReader(assignBody))
			if err != nil {
				otherFailures.Add(1)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := cl.client.Do(req)
			if err != nil {
				otherFailures.Add(1)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == 200:
				admitted.Add(1)
				ms := float64(time.Since(t0).Nanoseconds()) / 1e6
				latMu.Lock()
				admittedLat = append(admittedLat, ms)
				latMu.Unlock()
			case resp.StatusCode == http.StatusTooManyRequests:
				sShed429.Add(1)
				if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
					badRetryAfter.Add(1)
				}
			case resp.StatusCode == http.StatusRequestEntityTooLarge:
				sShed413.Add(1)
			case resp.StatusCode >= 500:
				got5xx.Add(1)
			default:
				otherFailures.Add(1)
			}
		}()
		ov.OfferedRequests++
	}
drive:
	for {
		select {
		case <-driveEnd:
			break drive
		case <-ctx.Done():
			break drive
		case <-ticker.C:
		}
		// Open-loop pacing with catch-up: fire however many requests the
		// 3×-capacity schedule owes by now (coalesced ticker ticks included),
		// under a hard in-flight cap so a degraded server cannot stack
		// unbounded goroutines on the client side.
		due := int64(time.Since(driveStart)/interval) - ov.OfferedRequests
		for ; due > 0 && inflight.Load() < 32; due-- {
			fire()
		}
	}
	ticker.Stop()
	owg.Wait()
	elapsed := time.Since(driveStart).Seconds()
	if elapsed > 0 {
		ov.OfferedPerSec = float64(ov.OfferedRequests) / elapsed
	}
	ov.Admitted = admitted.Load()
	ov.Shed429 = sShed429.Load()
	ov.Shed413 = sShed413.Load()
	ov.Got5xx = got5xx.Load()
	ov.OtherFailures = otherFailures.Load()
	ov.RetryAfterOK = ov.Shed429 >= 1 && badRetryAfter.Load() == 0
	sort.Float64s(admittedLat)
	if n := len(admittedLat); n > 0 {
		ov.AdmittedP50Ms = admittedLat[int(0.50*float64(n-1))]
		ov.AdmittedP99Ms = admittedLat[int(0.99*float64(n-1))]
	}
	// The gated latency figure comes from the daemon's own histogram delta
	// over the drive window: the serving path (parse through Assign) of every
	// admitted request, free of the co-located load generator's scheduling
	// noise. ServeP99BoundMs is the smallest bucket bound covering 99% of the
	// window, or -1 when the tail escapes every finite bucket.
	histAfter, err := cl.assignHist(ctx)
	if err != nil {
		return nil, err
	}
	ov.ServeP99BoundMs = -1
	type histBkt struct {
		le  float64
		cum int64
	}
	var bkts []histBkt
	var total int64
	for le, after := range histAfter {
		d := after - histBefore[le]
		if le == "+Inf" {
			total = d
			continue
		}
		if b, perr := strconv.ParseFloat(le, 64); perr == nil {
			bkts = append(bkts, histBkt{b, d})
		}
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	if total > 0 {
		for _, b := range bkts {
			if float64(b.cum) >= 0.99*float64(total) {
				ov.ServeP99BoundMs = b.le * 1000
				break
			}
		}
	}
	if ov.Clamped {
		if status, raw, err := cl.put(ctx, "/v1/tenants/"+tenant+"/limits", `{"mode":"auto"}`); err != nil || status != 200 {
			return nil, fmt.Errorf("PUT limits (unpin): status %d, err %v (%s)", status, err, bytes.TrimSpace(raw))
		}
	}

	// The tenant-level admission conservation law: per route, every attempt
	// was admitted or shed — nothing lost, nothing double-counted. (The
	// daemon-wide counters are cross-checked on the final /metrics scrape.)
	final, err := cl.limits(ctx, tenant)
	if err != nil {
		return nil, err
	}
	ov.AdmissionConservationOK =
		final.Assign.AttemptsTotal == final.Assign.AdmittedTotal+final.Assign.Shed429Total+final.Assign.Shed413Total &&
			final.Observe.AttemptsTotal == final.Observe.AdmittedTotal+final.Observe.Shed429Total+final.Observe.Shed413Total
	return ov, nil
}

// RenderServe formats the result for terminal output.
func RenderServe(r *ServeResult) string {
	conservation := "holds"
	if !r.ConservationOK {
		conservation = "VIOLATED"
	}
	out := fmt.Sprintf(`daemon load (-exp serve)
  ingest:  %d objects over HTTP in %.2fs (%.0f objects/sec)
  serving: %d workers x %d-object assigns for %.2fs — %.0f req/sec, %d failed
  latency: p50 %.2fms  p95 %.2fms  p99 %.2fms (budget %.0fms)
  hot swap: %d model versions observed under load, %d swaps total
  backpressure: %d client 429s == %d server queue rejections
  conservation: %d requests vs %d responses — %s
`,
		r.N, r.IngestSeconds, r.IngestObjectsPerSec,
		r.Workers, r.AssignBatch, r.Duration, r.QPS, r.FailedAssigns,
		r.P50Ms, r.P95Ms, r.P99Ms, r.P99BudgetMs,
		r.VersionsObserved, r.SwapsTotal,
		r.Rejected429, r.QueueRejectedTotal,
		r.RequestsTotal, r.ResponsesTotal, conservation)
	if ov := r.Overload; ov != nil {
		admConservation := "holds"
		if !ov.AdmissionConservationOK {
			admConservation = "VIOLATED"
		}
		out += fmt.Sprintf(`  overload: offered %.0f req/sec (3x the %.0f admitted capacity) for %.1fs, batch %d
    admitted %d (serving p99 ≤ %.1fms; client-observed p50 %.2fms, p99 %.2fms), shed %d as 429 + %d as 413, %d 5xx, %d other failures
    cost model: EWMA %.0f ns/object vs %.0f measured (accurate: %v); 413 contract: %v
    admission conservation: %s
`,
			ov.OfferedPerSec, ov.CapacityReqPerSec, ov.WindowSeconds, ov.Batch,
			ov.Admitted, ov.ServeP99BoundMs, ov.AdmittedP50Ms, ov.AdmittedP99Ms, ov.Shed429, ov.Shed413, ov.Got5xx, ov.OtherFailures,
			ov.CostEwmaNsPerObject, ov.CostWindowNsPerObject, ov.CostAccuracyOK, ov.ManualShed413OK,
			admConservation)
	}
	return out
}

// Check applies the serve acceptance gates: zero failed assigns across the
// hot swap, the swap actually observed by the load workers, backpressure
// surfaced as 429s and conserved against the server's counter, the
// request/response conservation law, and the QPS / p99 serving floors.
func (r *ServeResult) Check() error {
	if r.FailedAssigns != 0 {
		return fmt.Errorf("serve: %d of %d assigns failed during the load window",
			r.FailedAssigns, r.AssignRequests)
	}
	if r.VersionsObserved < 2 {
		return fmt.Errorf("serve: load workers observed %d model version(s); the hot swap never surfaced",
			r.VersionsObserved)
	}
	if r.Rejected429 < 1 {
		return fmt.Errorf("serve: flood tenant produced no 429s; backpressure untested")
	}
	if r.Rejected429 != r.QueueRejectedTotal {
		return fmt.Errorf("serve: client saw %d 429s but the server counted %d queue rejections",
			r.Rejected429, r.QueueRejectedTotal)
	}
	if !r.ConservationOK {
		return fmt.Errorf("serve: conservation violated: %d requests vs %d responses",
			r.RequestsTotal, r.ResponsesTotal)
	}
	if r.P99Ms > r.P99BudgetMs {
		return fmt.Errorf("serve: assign p99 %.2fms exceeds the %.0fms budget", r.P99Ms, r.P99BudgetMs)
	}
	if r.QPS < r.MinQPS {
		return fmt.Errorf("serve: %.0f req/sec below the %.0f floor", r.QPS, r.MinQPS)
	}
	if ov := r.Overload; ov != nil {
		if ov.Got5xx != 0 || ov.OtherFailures != 0 {
			return fmt.Errorf("serve: overload produced %d 5xx and %d other failures; shedding must stay 429/413",
				ov.Got5xx, ov.OtherFailures)
		}
		if ov.Admitted < 1 || ov.Shed429 < 1 {
			return fmt.Errorf("serve: overload admitted %d and shed %d — the 3x drive never overloaded the bucket",
				ov.Admitted, ov.Shed429)
		}
		if !ov.RetryAfterOK {
			return fmt.Errorf("serve: overload 429s carried malformed Retry-After headers")
		}
		if ov.ServeP99BoundMs <= 0 || ov.ServeP99BoundMs > r.P99BudgetMs {
			return fmt.Errorf("serve: admitted-traffic serving p99 bound %.2fms exceeds the %.0fms budget under 3x overload",
				ov.ServeP99BoundMs, r.P99BudgetMs)
		}
		if !ov.CostAccuracyOK {
			return fmt.Errorf("serve: cost model EWMA %.0f ns/object strayed beyond 30%% of the measured %.0f",
				ov.CostEwmaNsPerObject, ov.CostWindowNsPerObject)
		}
		if !ov.ManualShed413OK {
			return fmt.Errorf("serve: manual-limits 413 contract failed (oversized batch not bounced with max_batch_objects)")
		}
		if !ov.AdmissionConservationOK {
			return fmt.Errorf("serve: admission conservation violated: attempts != admitted + shed")
		}
	}
	return nil
}
