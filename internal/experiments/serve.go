package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucpc/internal/datasets"
	"ucpc/internal/serve"
	"ucpc/internal/uncertain"
)

// Serve is the daemon load experiment behind `cmd/uncbench -exp serve`: it
// boots the clustering daemon of internal/serve on a loopback listener,
// ingests a KDD-shaped uncertain stream over the HTTP observe path, freezes
// a serving model, and then drives concurrent assign load against it while a
// hot model swap lands mid-flight. The gates are the daemon's contracts, not
// micro-numbers: zero failed assigns across the swap, at least two model
// versions observed by the load workers, explicit 429 backpressure that
// matches the server's own rejection counter, the requests == Σ responses
// conservation law on the quiesced /metrics, and modest absolute floors on
// serving QPS and client-observed p99 latency.

// ServeConfig sizes the daemon load experiment. The zero value selects the
// full CI workload (SERVE_PR8.json); smoke tests pass a small N and a short
// Duration.
type ServeConfig struct {
	// N is the number of uncertain objects ingested before serving starts
	// (default 10,000).
	N int
	// K is the number of clusters (default 8).
	K int
	// Workers is the number of concurrent assign load workers (default 4).
	Workers int
	// AssignBatch is the number of objects per assign request (default 16).
	AssignBatch int
	// Duration is the assign load window (default 3s). The window stretches
	// if needed until the mid-load hot swap has landed and been observed.
	Duration time.Duration
	// BatchSize is the tenant's streaming mini-batch size (default 2048).
	BatchSize int
	// Seed drives the object stream and the fits (0 = 1).
	Seed uint64
	// P99BudgetMs and MinQPS are the serving-floor gates Check enforces
	// (defaults 250 ms and 100 requests/sec — deliberately modest so a
	// 1-core CI box passes with a wide margin; regressions that matter are
	// order-of-magnitude, not percent).
	P99BudgetMs float64
	MinQPS      float64
	// Progress, when non-nil, receives one line per phase.
	Progress func(format string, args ...any)
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.N == 0 {
		c.N = 10_000
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.AssignBatch == 0 {
		c.AssignBatch = 16
	}
	if c.Duration == 0 {
		c.Duration = 3 * time.Second
	}
	if c.BatchSize == 0 {
		c.BatchSize = 2048
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.P99BudgetMs == 0 {
		c.P99BudgetMs = 250
	}
	if c.MinQPS == 0 {
		c.MinQPS = 100
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
	return c
}

// ServeResult is the JSON payload of the daemon load experiment
// (SERVE_PR8.json).
type ServeResult struct {
	N           int     `json:"n"`
	K           int     `json:"k"`
	Workers     int     `json:"workers"`
	AssignBatch int     `json:"assign_batch"`
	Duration    float64 `json:"duration_seconds"`

	// Ingest throughput over the HTTP observe path (wall time from first
	// POST until the tenant reports everything folded in).
	IngestSeconds       float64 `json:"ingest_seconds"`
	IngestObjectsPerSec float64 `json:"ingest_objects_per_sec"`

	// The assign load window: client-observed request counts, failures,
	// sustained QPS, and latency percentiles in milliseconds.
	AssignRequests  int64   `json:"assign_requests"`
	FailedAssigns   int64   `json:"failed_assigns"`
	AssignedObjects int64   `json:"assigned_objects"`
	QPS             float64 `json:"qps"`
	P50Ms           float64 `json:"p50_ms"`
	P95Ms           float64 `json:"p95_ms"`
	P99Ms           float64 `json:"p99_ms"`

	// VersionsObserved counts the distinct model versions assign responses
	// reported — >= 2 proves the hot swap landed under live load.
	VersionsObserved int   `json:"versions_observed"`
	SwapsTotal       int64 `json:"swaps_total"`

	// Rejected429 counts client-observed backpressure rejections on the
	// flood tenant; QueueRejectedTotal is the server's own counter — the
	// two must agree exactly.
	Rejected429        int64 `json:"rejected_429"`
	QueueRejectedTotal int64 `json:"queue_rejected_total"`

	// RequestsTotal and ResponsesTotal come from the quiesced /metrics
	// scrape; ConservationOK records requests == Σ responses-by-class.
	RequestsTotal  int64 `json:"requests_total"`
	ResponsesTotal int64 `json:"responses_total"`
	ConservationOK bool  `json:"conservation_ok"`

	// The floors this run was held to, recorded so the committed artifact
	// is self-describing.
	P99BudgetMs float64 `json:"p99_budget_ms"`
	MinQPS      float64 `json:"min_qps"`
}

// encodeObjects renders a chunk of uncertain objects as the daemon's JSON
// observe/assign payload, marginals as ucsv tokens.
func encodeObjects(objs uncertain.Dataset) (string, error) {
	type objJSON struct {
		Marginals []string `json:"marginals"`
	}
	payload := struct {
		Objects []objJSON `json:"objects"`
	}{Objects: make([]objJSON, len(objs))}
	for i, o := range objs {
		toks := make([]string, o.Dims())
		for j := range toks {
			tok, err := datasets.FormatMarginal(o.Marginal(j))
			if err != nil {
				return "", err
			}
			toks[j] = tok
		}
		payload.Objects[i].Marginals = toks
	}
	raw, err := json.Marshal(payload)
	return string(raw), err
}

// serveClient is the experiment's HTTP client state.
type serveClient struct {
	base   string
	client *http.Client
}

func (c *serveClient) post(ctx context.Context, path, body string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", c.base+path, strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

func (c *serveClient) get(ctx context.Context, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+path, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

// mustPost posts and fails unless the status matches.
func (c *serveClient) mustPost(ctx context.Context, path, body string, want int) ([]byte, error) {
	status, raw, err := c.post(ctx, path, body)
	if err != nil {
		return nil, fmt.Errorf("POST %s: %w", path, err)
	}
	if status != want {
		return nil, fmt.Errorf("POST %s: status %d, want %d (%s)", path, status, want, bytes.TrimSpace(raw))
	}
	return raw, nil
}

// waitIngested polls the tenant until n objects are folded in.
func (c *serveClient) waitIngested(ctx context.Context, tenant string, n int64) error {
	for {
		status, raw, err := c.get(ctx, "/v1/tenants/"+tenant)
		if err != nil {
			return err
		}
		var info struct {
			Ingested    int64  `json:"ingested_objects"`
			IngestError string `json:"last_ingest_error"`
		}
		if status != 200 || json.Unmarshal(raw, &info) != nil {
			return fmt.Errorf("tenant %s info: status %d (%s)", tenant, status, bytes.TrimSpace(raw))
		}
		if info.IngestError != "" {
			return fmt.Errorf("tenant %s ingest error: %s", tenant, info.IngestError)
		}
		if info.Ingested >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Serve runs the daemon load experiment.
func Serve(ctx context.Context, cfg ServeConfig) (*ServeResult, error) {
	cfg = cfg.withDefaults()
	res := &ServeResult{
		N: cfg.N, K: cfg.K, Workers: cfg.Workers, AssignBatch: cfg.AssignBatch,
		P99BudgetMs: cfg.P99BudgetMs, MinQPS: cfg.MinQPS,
	}

	srv, err := serve.New(serve.Config{})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("serve: listen: %w", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
		<-serveDone
	}()

	cl := &serveClient{
		base: "http://" + l.Addr().String(),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers + 8,
			MaxIdleConnsPerHost: cfg.Workers + 8,
		}},
	}

	// Phase 1: tenant + streaming ingestion over HTTP.
	spec := fmt.Sprintf(`{"id":"load","k":%d,"seed":%d,"batch_size":%d}`, cfg.K, cfg.Seed, cfg.BatchSize)
	if _, err := cl.mustPost(ctx, "/v1/tenants", spec, 201); err != nil {
		return nil, err
	}
	src := newScaleSource(cfg.Seed)
	const chunkObjs = 1000
	chunk := make(uncertain.Dataset, 0, chunkObjs)
	ingestStart := time.Now()
	for streamed := 0; streamed < cfg.N; {
		n := chunkObjs
		if rest := cfg.N - streamed; n > rest {
			n = rest
		}
		chunk = src.take(chunk[:0], n)
		body, err := encodeObjects(chunk)
		if err != nil {
			return nil, err
		}
		for {
			status, raw, err := cl.post(ctx, "/v1/tenants/load/observe", body)
			if err != nil {
				return nil, fmt.Errorf("observe: %w", err)
			}
			if status == http.StatusAccepted {
				break
			}
			if status != http.StatusTooManyRequests {
				return nil, fmt.Errorf("observe: status %d (%s)", status, bytes.TrimSpace(raw))
			}
			// Backpressure on the ingest path: count it (the 429 gate checks
			// the client total against the server counter) and retry.
			atomic.AddInt64(&res.Rejected429, 1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
		}
		streamed += n
	}
	if err := cl.waitIngested(ctx, "load", int64(cfg.N)); err != nil {
		return nil, err
	}
	res.IngestSeconds = time.Since(ingestStart).Seconds()
	if res.IngestSeconds > 0 {
		res.IngestObjectsPerSec = float64(cfg.N) / res.IngestSeconds
	}
	cfg.Progress("serve: ingested %d objects over HTTP in %.2fs (%.0f objects/sec)",
		cfg.N, res.IngestSeconds, res.IngestObjectsPerSec)

	// Phase 2: freeze the first serving model.
	if _, err := cl.mustPost(ctx, "/v1/tenants/load/snapshot", "", 200); err != nil {
		return nil, err
	}

	// Phase 3: concurrent assign load with a hot swap landing mid-flight.
	// Workers run until the window has elapsed AND the swap has been
	// observed, so the zero-failures gate always covers a live swap.
	assignBody, err := encodeObjects(newScaleSource(cfg.Seed^0xbeef).take(nil, cfg.AssignBatch))
	if err != nil {
		return nil, err
	}
	var (
		stop        = make(chan struct{})
		swapLanded  atomic.Bool
		failed      atomic.Int64
		requests    atomic.Int64
		objects     atomic.Int64
		mu          sync.Mutex
		latencies   []float64 // milliseconds
		versionsSet = map[int64]bool{}
	)
	var wg sync.WaitGroup
	loadStart := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]float64, 0, 4096)
			versions := map[int64]bool{}
			for {
				select {
				case <-stop:
					mu.Lock()
					latencies = append(latencies, local...)
					for v := range versions {
						versionsSet[v] = true
					}
					mu.Unlock()
					return
				default:
				}
				t0 := time.Now()
				status, raw, err := cl.post(ctx, "/v1/tenants/load/assign", assignBody)
				dt := time.Since(t0)
				requests.Add(1)
				if err != nil || status != 200 {
					failed.Add(1)
					continue
				}
				local = append(local, float64(dt.Nanoseconds())/1e6)
				objects.Add(int64(cfg.AssignBatch))
				var resp struct {
					ModelVersion int64 `json:"model_version"`
				}
				if json.Unmarshal(raw, &resp) == nil {
					versions[resp.ModelVersion] = true
				}
			}
		}()
	}

	// The mid-load swap: stream another slice of objects in and freeze a new
	// model while the workers hammer the old one.
	swapErr := make(chan error, 1)
	go func() {
		time.Sleep(cfg.Duration / 3)
		extra := src.take(make(uncertain.Dataset, 0, cfg.BatchSize), cfg.BatchSize)
		body, err := encodeObjects(extra)
		if err != nil {
			swapErr <- err
			return
		}
		for {
			status, _, err := cl.post(ctx, "/v1/tenants/load/observe", body)
			if err != nil {
				swapErr <- err
				return
			}
			if status == http.StatusAccepted {
				break
			}
			if status == http.StatusTooManyRequests {
				atomic.AddInt64(&res.Rejected429, 1)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err := cl.waitIngested(ctx, "load", int64(cfg.N+len(extra))); err != nil {
			swapErr <- err
			return
		}
		if _, err := cl.mustPost(ctx, "/v1/tenants/load/snapshot", "", 200); err != nil {
			swapErr <- err
			return
		}
		swapLanded.Store(true)
		swapErr <- nil
		cfg.Progress("serve: hot swap landed under load")
	}()

	deadline := time.After(cfg.Duration)
	<-deadline
	if err := <-swapErr; err != nil {
		close(stop)
		wg.Wait()
		return nil, fmt.Errorf("serve: mid-load swap: %w", err)
	}
	// Give the workers a moment to observe the new version before stopping.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	res.Duration = time.Since(loadStart).Seconds()

	res.AssignRequests = requests.Load()
	res.FailedAssigns = failed.Load()
	res.AssignedObjects = objects.Load()
	if res.Duration > 0 {
		res.QPS = float64(res.AssignRequests) / res.Duration
	}
	res.VersionsObserved = len(versionsSet)
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	res.P50Ms, res.P95Ms, res.P99Ms = pct(0.50), pct(0.95), pct(0.99)
	cfg.Progress("serve: %d assigns in %.2fs (%.0f req/sec), p50 %.2fms p99 %.2fms, %d versions, %d failed",
		res.AssignRequests, res.Duration, res.QPS, res.P50Ms, res.P99Ms, res.VersionsObserved, res.FailedAssigns)

	// Phase 4: provoke explicit backpressure on a capacity-1 flood tenant —
	// concurrent observes against a single-slot queue must bounce with 429.
	floodSpec := fmt.Sprintf(`{"id":"flood","k":2,"seed":%d,"batch_size":256,"queue_chunks":1}`, cfg.Seed)
	if _, err := cl.mustPost(ctx, "/v1/tenants", floodSpec, 201); err != nil {
		return nil, err
	}
	floodBody, err := encodeObjects(newScaleSource(cfg.Seed^0xf10d).take(nil, 2000))
	if err != nil {
		return nil, err
	}
	for attempt := 0; res.Rejected429 == 0 && attempt < 50; attempt++ {
		var fwg sync.WaitGroup
		for w := 0; w < 8; w++ {
			fwg.Add(1)
			go func() {
				defer fwg.Done()
				status, _, err := cl.post(ctx, "/v1/tenants/flood/observe", floodBody)
				if err == nil && status == http.StatusTooManyRequests {
					atomic.AddInt64(&res.Rejected429, 1)
				}
			}()
		}
		fwg.Wait()
	}
	cfg.Progress("serve: flood tenant bounced %d observes with 429", res.Rejected429)

	// Phase 5: quiesce (everything above has returned) and scrape /metrics.
	// The flood tenant may still be folding accepted payloads, but that does
	// not touch the request counters.
	status, raw, err := cl.get(ctx, "/metrics")
	if err != nil || status != 200 {
		return nil, fmt.Errorf("serve: metrics scrape: status %d, err %v", status, err)
	}
	text := string(raw)
	scan := func(name string) (int64, bool) {
		for _, line := range strings.Split(text, "\n") {
			var v int64
			if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil && strings.HasPrefix(line, name+" ") {
				return v, true
			}
		}
		return 0, false
	}
	if v, ok := scan("ucpcd_requests_total"); ok {
		res.RequestsTotal = v
	}
	for _, class := range []string{"2xx", "3xx", "4xx", "5xx"} {
		if v, ok := scan(fmt.Sprintf("ucpcd_responses_total{class=%q}", class)); ok {
			res.ResponsesTotal += v
		}
	}
	if v, ok := scan("ucpcd_queue_rejected_total"); ok {
		res.QueueRejectedTotal = v
	}
	if v, ok := scan("ucpcd_swaps_total"); ok {
		res.SwapsTotal = v
	}
	res.ConservationOK = res.RequestsTotal > 0 && res.RequestsTotal == res.ResponsesTotal
	return res, nil
}

// RenderServe formats the result for terminal output.
func RenderServe(r *ServeResult) string {
	conservation := "holds"
	if !r.ConservationOK {
		conservation = "VIOLATED"
	}
	return fmt.Sprintf(`daemon load (-exp serve)
  ingest:  %d objects over HTTP in %.2fs (%.0f objects/sec)
  serving: %d workers x %d-object assigns for %.2fs — %.0f req/sec, %d failed
  latency: p50 %.2fms  p95 %.2fms  p99 %.2fms (budget %.0fms)
  hot swap: %d model versions observed under load, %d swaps total
  backpressure: %d client 429s == %d server queue rejections
  conservation: %d requests vs %d responses — %s
`,
		r.N, r.IngestSeconds, r.IngestObjectsPerSec,
		r.Workers, r.AssignBatch, r.Duration, r.QPS, r.FailedAssigns,
		r.P50Ms, r.P95Ms, r.P99Ms, r.P99BudgetMs,
		r.VersionsObserved, r.SwapsTotal,
		r.Rejected429, r.QueueRejectedTotal,
		r.RequestsTotal, r.ResponsesTotal, conservation)
}

// Check applies the serve acceptance gates: zero failed assigns across the
// hot swap, the swap actually observed by the load workers, backpressure
// surfaced as 429s and conserved against the server's counter, the
// request/response conservation law, and the QPS / p99 serving floors.
func (r *ServeResult) Check() error {
	if r.FailedAssigns != 0 {
		return fmt.Errorf("serve: %d of %d assigns failed during the load window",
			r.FailedAssigns, r.AssignRequests)
	}
	if r.VersionsObserved < 2 {
		return fmt.Errorf("serve: load workers observed %d model version(s); the hot swap never surfaced",
			r.VersionsObserved)
	}
	if r.Rejected429 < 1 {
		return fmt.Errorf("serve: flood tenant produced no 429s; backpressure untested")
	}
	if r.Rejected429 != r.QueueRejectedTotal {
		return fmt.Errorf("serve: client saw %d 429s but the server counted %d queue rejections",
			r.Rejected429, r.QueueRejectedTotal)
	}
	if !r.ConservationOK {
		return fmt.Errorf("serve: conservation violated: %d requests vs %d responses",
			r.RequestsTotal, r.ResponsesTotal)
	}
	if r.P99Ms > r.P99BudgetMs {
		return fmt.Errorf("serve: assign p99 %.2fms exceeds the %.0fms budget", r.P99Ms, r.P99BudgetMs)
	}
	if r.QPS < r.MinQPS {
		return fmt.Errorf("serve: %.0f req/sec below the %.0f floor", r.QPS, r.MinQPS)
	}
	return nil
}
