package experiments

import (
	"context"
	"strings"
	"testing"

	"ucpc/internal/uncgen"
)

// tinyConfig keeps experiment tests CI-fast.
func tinyConfig() Config {
	return Config{Seed: 7, Runs: 1, Scale: 0.01, MinObjects: 60}
}

func TestNewKnowsEveryAlgorithm(t *testing.T) {
	ids := append(append([]AlgorithmID{}, AccuracyAlgorithms()...),
		AlgBasicUKM, AlgMinMaxBB, AlgVDBiP)
	for _, id := range ids {
		alg := New(id)
		if alg == nil {
			t.Fatalf("New(%q) = nil", id)
		}
		// Pruning variants report the matching paper name.
		switch id {
		case AlgMinMaxBB, AlgVDBiP, AlgBasicUKM:
			if AlgorithmID(alg.Name()) != id {
				t.Errorf("New(%q).Name() = %q", id, alg.Name())
			}
		}
	}
}

func TestNewUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown algorithm")
		}
	}()
	New("nope")
}

func TestTable2SmallRun(t *testing.T) {
	res, err := Table2(context.Background(), tinyConfig(), []string{"Iris"}, []uncgen.Model{uncgen.Uniform})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	row := res.Rows[0]
	if row.Dataset != "Iris" || row.Model != uncgen.Uniform {
		t.Errorf("row header %+v", row)
	}
	for _, id := range res.Algorithms {
		cell, ok := row.Cells[id]
		if !ok {
			t.Fatalf("missing cell for %s", id)
		}
		if cell.Theta < -1 || cell.Theta > 1 {
			t.Errorf("%s: Θ = %v out of range", id, cell.Theta)
		}
		if cell.Q < -1 || cell.Q > 1 {
			t.Errorf("%s: Q = %v out of range", id, cell.Q)
		}
		if cell.FCase1 < 0 || cell.FCase1 > 1 || cell.FCase2 < 0 || cell.FCase2 > 1 {
			t.Errorf("%s: F values out of range: %+v", id, cell)
		}
	}
	out := RenderTable2(res)
	for _, want := range []string{"Iris", "UCPC", "overall avg", "UCPC gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestTable2Deterministic(t *testing.T) {
	a, err := Table2(context.Background(), tinyConfig(), []string{"Wine"}, []uncgen.Model{uncgen.Normal})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table2(context.Background(), tinyConfig(), []string{"Wine"}, []uncgen.Model{uncgen.Normal})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range a.Algorithms {
		ca, cb := a.Rows[0].Cells[id], b.Rows[0].Cells[id]
		if ca != cb {
			t.Errorf("%s: non-deterministic cell %+v vs %+v", id, ca, cb)
		}
	}
}

func TestTable2UnknownDataset(t *testing.T) {
	if _, err := Table2(context.Background(), tinyConfig(), []string{"Nope"}, nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestTable3SmallRun(t *testing.T) {
	res, err := Table3(context.Background(), tinyConfig(), []string{"Leukaemia"}, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, id := range res.Algorithms {
			q, ok := row.Q[id]
			if !ok {
				t.Fatalf("missing Q for %s", id)
			}
			if q < -1 || q > 1 {
				t.Errorf("%s k=%d: Q = %v out of range", id, row.K, q)
			}
		}
	}
	out := RenderTable3(res)
	for _, want := range []string{"Leukaemia", "overall avg", "UCPC gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestFig4SmallRun(t *testing.T) {
	res, err := Fig4(context.Background(), tinyConfig(), []string{"Abalone"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	row := res.Rows[0]
	for id, cell := range row.Cells {
		if cell.Online <= 0 {
			t.Errorf("%s: no online time recorded", id)
		}
	}
	// The basic UK-means must do more expensive integrals than the
	// pruning variants.
	if row.Cells[AlgBasicUKM].EDComputations <= row.Cells[AlgMinMaxBB].EDComputations {
		t.Errorf("MinMax-BB did not reduce ED computations: %v vs %v",
			row.Cells[AlgMinMaxBB].EDComputations, row.Cells[AlgBasicUKM].EDComputations)
	}
	out := RenderFig4(res)
	for _, want := range []string{"Abalone", "slower algorithms", "faster algorithms", "UCPC"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q", want)
		}
	}
	if s := SummarizeOrdering(row); !strings.Contains(s, "Abalone") {
		t.Errorf("ordering summary: %q", s)
	}
}

func TestFig5SmallRun(t *testing.T) {
	cfg := Config{Seed: 7, Runs: 1, Scale: 0.0002} // 800 objects base
	res, err := Fig5(context.Background(), cfg, []float64{0.25, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	if res.Points[0].N >= res.Points[1].N {
		t.Errorf("fractions not increasing: %d vs %d", res.Points[0].N, res.Points[1].N)
	}
	for _, p := range res.Points {
		for _, id := range res.Algorithms {
			if p.Times[id] <= 0 {
				t.Errorf("%s at %v%%: no time", id, p.Fraction*100)
			}
		}
	}
	out := RenderFig5(res)
	if !strings.Contains(out, "KDD") || !strings.Contains(out, "100%") {
		t.Errorf("rendered figure incomplete:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Runs != 3 || c.Scale != 0.08 || c.MinObjects != 60 || c.Progress == nil {
		t.Errorf("defaults: %+v", c)
	}
	if f := c.scaleFor(100); f != 0.6 {
		t.Errorf("scaleFor(100) = %v, want 0.6 (min-objects floor)", f)
	}
	if f := c.scaleFor(1_000_000); f != 0.08 {
		t.Errorf("scaleFor(1e6) = %v", f)
	}
	if f := (Config{Scale: 5, MinObjects: 1, Runs: 1}).withDefaults().scaleFor(10); f != 1 {
		t.Errorf("scale must clamp to 1, got %v", f)
	}
}
