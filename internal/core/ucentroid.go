package core

import (
	"fmt"

	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// UCentroid is the paper's uncertain cluster centroid C̄ = (R̄, f̄)
// (Theorem 1): an uncertain object whose random variable X_C̄ realizes, for
// every joint draw (x₁,…,x_{|C|}) of the cluster members, the point
// minimizing the sum of squared Euclidean distances to the draw — i.e. the
// member average x̄ = |C|⁻¹ Σ_i x_i.
//
// The pdf f̄ is in general not analytically computable (§4.2), but its
// domain region (Theorem 1), mean and second moment (Lemma 5), and variance
// (Theorem 2) are; realizations can be sampled exactly.
type UCentroid struct {
	members []*uncertain.Object
	region  vec.Box
	mu      vec.Vector
	mu2     vec.Vector
	sigma2  vec.Vector
}

// NewUCentroid builds the U-centroid of a non-empty cluster of
// m-dimensional uncertain objects.
func NewUCentroid(members []*uncertain.Object) *UCentroid {
	if len(members) == 0 {
		panic("core: U-centroid of empty cluster")
	}
	m := members[0].Dims()
	n := float64(len(members))

	lo := vec.New(m)
	hi := vec.New(m)
	sumMu := vec.New(m)
	sumM2 := vec.New(m)
	sumMuSq := vec.New(m)
	sumVar := vec.New(m)
	for _, o := range members {
		if o.Dims() != m {
			panic("core: mixed dimensionality in cluster")
		}
		r := o.Region()
		mu, m2, sig := o.Mean(), o.SecondMoment(), o.VarVector()
		for j := 0; j < m; j++ {
			lo[j] += r.Lo[j]
			hi[j] += r.Hi[j]
			sumMu[j] += mu[j]
			sumM2[j] += m2[j]
			sumMuSq[j] += mu[j] * mu[j]
			sumVar[j] += sig[j]
		}
	}

	u := &UCentroid{
		members: members,
		mu:      vec.New(m),
		mu2:     vec.New(m),
		sigma2:  vec.New(m),
	}
	// Theorem 1: R̄ = [ |C|⁻¹Σℓ_i , |C|⁻¹Σu_i ] per dimension.
	vec.ScaleInPlace(lo, 1/n)
	vec.ScaleInPlace(hi, 1/n)
	u.region = vec.Box{Lo: lo, Hi: hi}

	for j := 0; j < m; j++ {
		// Lemma 5: µ(C̄) = |C|⁻¹ Σ µ(o_i).
		u.mu[j] = sumMu[j] / n
		// Lemma 5 (rearranged via 2Σ_{i<i'}µµ' = (Σµ)² − Σµ²):
		// µ₂(C̄) = |C|⁻²[ Σµ₂(o_i) + (Σµ)² − Σµ² ].
		u.mu2[j] = (sumM2[j] + sumMu[j]*sumMu[j] - sumMuSq[j]) / (n * n)
		// Theorem 2 (component form): (σ²)_j(C̄) = |C|⁻² Σ (σ²)_j(o_i).
		u.sigma2[j] = sumVar[j] / (n * n)
	}
	return u
}

// Size returns the cluster cardinality |C|.
func (u *UCentroid) Size() int { return len(u.members) }

// Dims returns the dimensionality m.
func (u *UCentroid) Dims() int { return len(u.mu) }

// Region returns the domain region R̄ of Theorem 1.
func (u *UCentroid) Region() vec.Box { return u.region }

// Mean returns µ(C̄) (Lemma 5). Shared slice; do not modify.
func (u *UCentroid) Mean() vec.Vector { return u.mu }

// SecondMoment returns µ₂(C̄) (Lemma 5). Shared slice; do not modify.
func (u *UCentroid) SecondMoment() vec.Vector { return u.mu2 }

// VarVector returns the per-dimension variance of C̄.
func (u *UCentroid) VarVector() vec.Vector { return u.sigma2 }

// TotalVar returns σ²(C̄) = |C|⁻² Σ_i σ²(o_i) (Theorem 2).
func (u *UCentroid) TotalVar() float64 { return vec.Sum(u.sigma2) }

// SampleRealization draws one realization of X_C̄ exactly: it samples one
// deterministic representation per member and returns their average (the
// arg-min of the summed squared Euclidean distances, per Theorem 1's proof).
func (u *UCentroid) SampleRealization(r *rng.RNG) vec.Vector {
	m := u.Dims()
	acc := vec.New(m)
	for _, o := range u.members {
		vec.AddInPlace(acc, o.Sample(r))
	}
	return vec.ScaleInPlace(acc, 1/float64(len(u.members)))
}

// RealizationCloud draws n realizations of X_C̄ (an empirical image of the
// analytically intractable pdf f̄).
func (u *UCentroid) RealizationCloud(r *rng.RNG, n int) []vec.Vector {
	out := make([]vec.Vector, n)
	for i := range out {
		out[i] = u.SampleRealization(r)
	}
	return out
}

// EED returns the squared expected distance ÊD(o, C̄) between an uncertain
// object and this U-centroid, via the Lemma 3 component form using the
// centroid's exact moments. Summing over the members of C reproduces the
// objective J(C) of Theorem 3 (verified in tests).
func (u *UCentroid) EED(o *uncertain.Object) float64 {
	if o.Dims() != u.Dims() {
		panic(fmt.Sprintf("core: EED dim mismatch %d vs %d", o.Dims(), u.Dims()))
	}
	mu, m2 := o.Mean(), o.SecondMoment()
	var s float64
	for j := 0; j < u.Dims(); j++ {
		s += m2[j] - 2*mu[j]*u.mu[j] + u.mu2[j]
	}
	return s
}

// MarginalHistogram estimates the marginal density of f̄ along dimension j
// with the given number of bins over the centroid's region, from n sampled
// realizations. Returned values are (bin centers, normalized densities).
// This is an illustrative tool (the paper's Figure 3); the clustering
// algorithm never needs f̄ explicitly.
func (u *UCentroid) MarginalHistogram(r *rng.RNG, j, bins, n int) (centers, density []float64) {
	if j < 0 || j >= u.Dims() {
		panic("core: histogram dimension out of range")
	}
	if bins <= 0 || n <= 0 {
		panic("core: histogram needs positive bins and samples")
	}
	lo, hi := u.region.Lo[j], u.region.Hi[j]
	if hi <= lo {
		hi = lo + 1e-9
	}
	w := (hi - lo) / float64(bins)
	counts := make([]float64, bins)
	for i := 0; i < n; i++ {
		x := u.SampleRealization(r)[j]
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	centers = make([]float64, bins)
	density = make([]float64, bins)
	for b := 0; b < bins; b++ {
		centers[b] = lo + (float64(b)+0.5)*w
		density[b] = counts[b] / (float64(n) * w)
	}
	return centers, density
}
