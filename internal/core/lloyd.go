package core

import (
	"fmt"
	"sync"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// UCPCLloyd is a batch (Lloyd-style) variant of UCPC: instead of relocating
// one object at a time (Algorithm 1), it alternates a full assignment step
// — every object moves to the cluster whose *current* U-centroid minimizes
// ÊD(o, C̄) — with a centroid refresh. It serves as an ablation of the
// paper's relocation design choice (see DESIGN.md): batch steps are
// embarrassingly parallel but, unlike Algorithm 1, the objective is not
// guaranteed to decrease monotonically because ÊD is measured against the
// centroid of the *previous* assignment.
type UCPCLloyd struct {
	// MaxIter caps the assignment/update rounds (0 = default 100).
	MaxIter int
	// Workers parallelizes the assignment step with this many goroutines
	// (0 or 1 = sequential).
	Workers int
}

// Name implements clustering.Algorithm.
func (u *UCPCLloyd) Name() string { return "UCPC-Lloyd" }

// centroidScore holds the per-cluster constants of the ÊD(o, C̄) argmin:
// score(o, c) = bias_c − 2 µ(o)·mean_c, with bias_c = Σ_j (µ₂)_j(C̄_c).
type centroidScore struct {
	mean vec.Vector
	bias float64
}

// Cluster runs the batch variant.
func (u *UCPCLloyd) Cluster(ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := len(ds)
	if k <= 0 || k > n {
		return nil, fmt.Errorf("ucpc-lloyd: k=%d out of range for n=%d", k, n)
	}
	maxIter := u.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	workers := u.Workers
	if workers <= 0 {
		workers = 1
	}
	start := time.Now()

	assign := clustering.RandomPartition(n, k, r)
	scores := make([]centroidScore, k)
	refresh := func() {
		members := (clustering.Partition{K: k, Assign: assign}).Members()
		for c, ms := range members {
			if len(ms) == 0 {
				// Reseed an empty cluster on the object farthest from
				// its current centroid.
				far, farD := 0, -1.0
				for i, o := range ds {
					if d := vec.SqDist(o.Mean(), scores[assign[i]].mean); d > farD {
						far, farD = i, d
					}
				}
				ms = []int{far}
				assign[far] = c
			}
			objs := make([]*uncertain.Object, len(ms))
			for i, idx := range ms {
				objs[i] = ds[idx]
			}
			uc := NewUCentroid(objs)
			scores[c] = centroidScore{mean: uc.Mean(), bias: vec.Sum(uc.SecondMoment())}
		}
	}
	// Initial centroids from the random partition.
	for c := range scores {
		scores[c] = centroidScore{mean: vec.New(ds.Dims())}
	}
	refresh()

	assignOne := func(i int) bool {
		o := ds[i]
		mu := o.Mean()
		best, bestScore := 0, scores[0].bias-2*vec.Dot(mu, scores[0].mean)
		for c := 1; c < k; c++ {
			if s := scores[c].bias - 2*vec.Dot(mu, scores[c].mean); s < bestScore {
				best, bestScore = c, s
			}
		}
		if assign[i] != best {
			assign[i] = best
			return true
		}
		return false
	}

	iterations, converged := 0, false
	for iterations < maxIter {
		iterations++
		changed := false
		if workers == 1 {
			for i := range ds {
				if assignOne(i) {
					changed = true
				}
			}
		} else {
			var wg sync.WaitGroup
			changes := make([]bool, workers)
			chunk := (n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						if assignOne(i) {
							changes[w] = true
						}
					}
				}(w, lo, hi)
			}
			wg.Wait()
			for _, c := range changes {
				changed = changed || c
			}
		}
		if !changed {
			converged = true
			break
		}
		refresh()
	}

	return &clustering.Report{
		Partition:  clustering.Partition{K: k, Assign: assign},
		Objective:  Objective(ds, assign, k),
		Iterations: iterations,
		Converged:  converged,
		Online:     time.Since(start),
	}, nil
}
