package core

import (
	"context"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// UCPCLloyd is a batch (Lloyd-style) variant of UCPC: instead of relocating
// one object at a time (Algorithm 1), it alternates a full assignment step
// — every object moves to the cluster whose *current* U-centroid minimizes
// ÊD(o, C̄) — with a centroid refresh. It serves as an ablation of the
// paper's relocation design choice (see DESIGN.md): batch steps are
// embarrassingly parallel but, unlike Algorithm 1, the objective is not
// guaranteed to decrease monotonically because ÊD is measured against the
// centroid of the *previous* assignment.
//
// The assignment step runs on the flat Moments store across a worker pool
// through the exact pruning engine (Assigner): ÊD(o, C̄_c) decomposes as
// ‖µ(o) − µ(C̄_c)‖² + σ²(o) + σ²(C̄_c), i.e. a Euclidean distance plus a
// per-centroid additive term, so Hamerly-style bounds skip most candidate
// centroids without changing any decision. Each worker scans a contiguous
// row range, and because every object's decision is independent of the
// others, the resulting partition is bit-identical for every worker count
// (the engine's determinism contract) and for pruning on vs. off.
type UCPCLloyd struct {
	// MaxIter caps the assignment/update rounds (0 = default 100).
	MaxIter int
	// Workers sizes the assignment worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Pruning toggles the exact bound-based assignment pruning (default
	// on). Results are identical either way; only the arithmetic differs.
	Pruning clustering.PruneMode
	// Progress, when non-nil, observes every round with the objective
	// Σ_C J(C) and the number of objects that changed cluster. Both are
	// computed only when the callback is set (the objective recompute and
	// the pre-round assignment snapshot are not free).
	Progress clustering.ProgressFunc
}

// Name implements clustering.Algorithm.
func (u *UCPCLloyd) Name() string { return "UCPC-Lloyd" }

// centroidScores holds the per-cluster constants of the ÊD(o, C̄) argmin in
// flat form: score(o, c) = bias[c] − 2·µ(o)·mean[c·m:(c+1)·m], with
// bias[c] = Σ_j (µ₂)_j(C̄_c). Minimizing the score over c is equivalent to
// minimizing ÊD(o, C̄_c) because the µ₂(o) term is constant in c (Lemma 3).
//
// The per-cluster running sums are incremental statistics maintained across
// refreshes: a refresh rebuilds only the *dirty* clusters — those whose
// membership changed since the previous refresh — by re-accumulating their
// members in dataset order, exactly as a from-scratch build would. Clean
// clusters keep their previous sums, which were produced by the same
// in-order accumulation over the same membership, so the resulting state is
// bit-identical to a full rebuild while costing O(n + Σ_dirty |C|·m)
// instead of O(n·m). All scratch is allocated once, so steady-state
// iterations perform no heap allocations.
type centroidScores struct {
	k, m int
	mean []float64 // k*m, row-major U-centroid means
	bias []float64 // k

	counts   []int
	sumMu    []float64 // k*m, Σ µ per cluster
	sumMu2   []float64 // k*m, Σ µ₂ per cluster
	sumMuSq  []float64 // k*m, Σ µ² per cluster
	prev     []int     // n, assignment as of the previous refresh (post-reseed)
	dirty    []bool    // k, scratch: clusters to rebuild this refresh
	stale    []bool    // k, clusters reseed-adjusted since their last rebuild
	reseeded []int     // scratch for the return value
	moves    int       // objects that changed cluster since the last refresh
	built    bool
	// forceFull disables the dirty-cluster optimization so tests can prove
	// the incremental path bit-identical to a full rebuild.
	forceFull bool
}

func newCentroidScores(k, m, n int) *centroidScores {
	return &centroidScores{
		k:       k,
		m:       m,
		mean:    make([]float64, k*m),
		bias:    make([]float64, k),
		counts:  make([]int, k),
		sumMu:   make([]float64, k*m),
		sumMu2:  make([]float64, k*m),
		sumMuSq: make([]float64, k*m),
		prev:    make([]int, n),
		dirty:   make([]bool, k),
		stale:   make([]bool, k),
	}
}

// refresh recomputes every cluster's U-centroid mean and bias from the
// moment store and the current assignment (Lemma 5 closed forms),
// rebuilding only dirty clusters' sums (see the type comment). Empty
// clusters are reseeded on the object farthest from its own cluster's
// current mean; the running sums are updated incrementally after each
// reseed so every decision sees fresh state (the touched clusters are
// marked stale and rebuilt from scratch on the next refresh), and donors
// are restricted to clusters with at least two members so a reseed can
// never create a new empty cluster (or steal a just-reseeded object). It
// returns the indexes of reseeded objects so the caller can invalidate
// their pruning bounds.
func (cs *centroidScores) refresh(mom *uncertain.Moments, assign []int) (reseeded []int) {
	n, m, k := mom.Len(), cs.m, cs.k
	counts, sumMu, sumMu2, sumMuSq := cs.counts, cs.sumMu, cs.sumMu2, cs.sumMuSq
	cs.moves = 0
	for c := 0; c < k; c++ {
		cs.dirty[c] = !cs.built || cs.stale[c] || cs.forceFull
		cs.stale[c] = false
	}
	if cs.built {
		for i := 0; i < n; i++ {
			if c := assign[i]; c != cs.prev[i] {
				cs.dirty[c] = true
				cs.dirty[cs.prev[i]] = true
				cs.moves++
			}
		}
	}
	for c := 0; c < k; c++ {
		if !cs.dirty[c] {
			continue
		}
		counts[c] = 0
		row := c * m
		for j := 0; j < m; j++ {
			sumMu[row+j], sumMu2[row+j], sumMuSq[row+j] = 0, 0, 0
		}
	}
	for i := 0; i < n; i++ {
		c := assign[i]
		if !cs.dirty[c] {
			continue
		}
		counts[c]++
		mu, mu2 := mom.Mu(i), mom.Mu2(i)
		row := c * m
		for j := 0; j < m; j++ {
			sumMu[row+j] += mu[j]
			sumMu2[row+j] += mu2[j]
			sumMuSq[row+j] += mu[j] * mu[j]
		}
	}
	cs.built = true
	cs.reseeded = cs.reseeded[:0]
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			continue
		}
		// Farthest object from its own cluster's mean (computed from the
		// live sums), among clusters that can afford to lose a member.
		// n >= k guarantees such a donor exists while any cluster is empty.
		far, farD := -1, -1.0
		for i := 0; i < n; i++ {
			co := assign[i]
			if counts[co] < 2 {
				continue
			}
			row := co * m
			mu := mom.Mu(i)
			inv := 1 / float64(counts[co])
			var d float64
			for j := 0; j < m; j++ {
				diff := mu[j] - sumMu[row+j]*inv
				d += diff * diff
			}
			if d > farD {
				far, farD = i, d
			}
		}
		if far < 0 {
			continue // unreachable for k <= n; keep the sums finite anyway
		}
		// Move the object from its donor cluster to c, updating the sums.
		// The incremental -=/+= adjustment leaves different low-order bits
		// than an in-order rebuild would, so both touched clusters are
		// marked stale and rebuilt from scratch on the next refresh.
		from := assign[far]
		assign[far] = c
		cs.reseeded = append(cs.reseeded, far)
		cs.stale[from], cs.stale[c] = true, true
		counts[from]--
		counts[c]++
		mu, mu2 := mom.Mu(far), mom.Mu2(far)
		fromRow, toRow := from*m, c*m
		for j := 0; j < m; j++ {
			sumMu[fromRow+j] -= mu[j]
			sumMu2[fromRow+j] -= mu2[j]
			sumMuSq[fromRow+j] -= mu[j] * mu[j]
			sumMu[toRow+j] += mu[j]
			sumMu2[toRow+j] += mu2[j]
			sumMuSq[toRow+j] += mu[j] * mu[j]
		}
	}
	copy(cs.prev, assign)
	for c := 0; c < k; c++ {
		inv := 1 / float64(counts[c])
		row := c * m
		var bias float64
		for j := 0; j < m; j++ {
			// Lemma 5: µ(C̄) = |C|⁻¹ Σ µ(o_i);
			// µ₂(C̄) = |C|⁻²[ Σµ₂ + (Σµ)² − Σµ² ].
			cs.mean[row+j] = sumMu[row+j] * inv
			bias += (sumMu2[row+j] + sumMu[row+j]*sumMu[row+j] - sumMuSq[row+j]) * inv * inv
		}
		cs.bias[c] = bias
	}
	return cs.reseeded
}

// objective returns Σ_C J(C) of the assignment the sums describe, computed
// from the maintained per-cluster statistics in O(k·m) instead of a full
// O(n·m) re-accumulation: Ψ^{(j)} = Σµ₂ − Σµ², Φ^{(j)} = Σµ₂, S^{(j)} = Σµ
// (Theorem 3).
func (cs *centroidScores) objective() float64 {
	var total float64
	for c := 0; c < cs.k; c++ {
		if cs.counts[c] == 0 {
			continue
		}
		inv := 1 / float64(cs.counts[c])
		row := c * cs.m
		for j := 0; j < cs.m; j++ {
			psi := cs.sumMu2[row+j] - cs.sumMuSq[row+j]
			total += psi*inv + cs.sumMu2[row+j] - cs.sumMu[row+j]*cs.sumMu[row+j]*inv
		}
	}
	return total
}

// addTerms fills adds (k, reused across calls) with the per-centroid
// additive terms of ÊD(o, C̄_c): the centroid's total variance σ²(C̄_c) =
// Σ_j µ₂(C̄_c)_j − ‖µ(C̄_c)‖² = bias_c − ‖mean_c‖².
func (cs *centroidScores) addTerms(adds []float64) {
	for c := 0; c < cs.k; c++ {
		row := cs.mean[c*cs.m : (c+1)*cs.m]
		var dot float64
		for _, v := range row {
			dot += v * v
		}
		adds[c] = cs.bias[c] - dot
	}
}

// install pushes the current U-centroid state into the pruning engine: the
// centroid means are the Euclidean part of ÊD(o, C̄_c) plus the addTerms
// additive parts.
func (cs *centroidScores) install(eng *Assigner, adds []float64) {
	cs.addTerms(adds)
	eng.SetCenters(cs.mean, adds)
}

// UCentroidAssignState fills centers (flat k*m, row-major) and adds (k)
// with the U-centroid means and total variances σ²(C̄) of the given
// partition — the ÊD scoring state UCPC-Lloyd's assignment step installs
// into the pruning engine each round. Exported for the bench harness's
// steady-state measurements; assign must describe k non-empty clusters.
func UCentroidAssignState(mom *uncertain.Moments, assign []int, k int, centers, adds []float64) {
	cs := newCentroidScores(k, mom.Dims(), mom.Len())
	cs.refresh(mom, append([]int(nil), assign...))
	copy(centers, cs.mean)
	cs.addTerms(adds)
}

// Cluster runs the batch variant.
func (u *UCPCLloyd) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	return u.cluster(ctx, ds, k, nil, r)
}

// ClusterFrom implements clustering.WarmStarter: the first centroid refresh
// reads the given assignment instead of a random partition.
func (u *UCPCLloyd) ClusterFrom(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	if err := clustering.ValidateInit("ucpc-lloyd", init, len(ds), k); err != nil {
		return nil, err
	}
	return u.cluster(ctx, ds, k, init, r)
}

func (u *UCPCLloyd) cluster(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	ctx = clustering.Ctx(ctx)
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := len(ds)
	if err := clustering.ValidateK("ucpc-lloyd", k, n); err != nil {
		return nil, err
	}
	maxIter := u.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	workers := clustering.Workers(u.Workers)
	start := time.Now()

	mom := uncertain.MomentsOf(ds)
	m := mom.Dims()
	var assign []int
	if init != nil {
		// WarmStarter contract: empty init clusters are repaired from r
		// (the same rule as every other warm-startable method) rather
		// than left to the refresh step's farthest-object reseed.
		assign = clustering.RepairEmpty(append([]int(nil), init...), k, r)
	} else {
		assign = clustering.RandomPartition(n, k, r)
	}
	cs := newCentroidScores(k, m, n)
	cs.refresh(mom, assign)

	eng := NewAssigner(mom, k, u.Pruning.Enabled())
	adds := make([]float64, k)
	cs.install(eng, adds)

	iterations, converged := 0, false
	for iterations < maxIter {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iterations++
		changed := eng.Assign(assign, workers)
		// The refresh diffs the assignment against its previous snapshot,
		// rebuilding only the clusters whose membership changed; it is a
		// no-op on the final (converged) round.
		for _, i := range cs.refresh(mom, assign) {
			// A reseed moved the object behind the engine's back; its
			// bounds no longer describe its assigned centroid.
			eng.Invalidate(i)
		}
		if u.Progress != nil {
			u.Progress.Emit(u.Name(), iterations, cs.objective(), cs.moves)
		}
		if !changed {
			converged = true
			break
		}
		cs.install(eng, adds)
	}

	pruned, scanned := eng.Counters()
	return &clustering.Report{
		Partition:         clustering.Partition{K: k, Assign: assign},
		Objective:         cs.objective(),
		Iterations:        iterations,
		Converged:         converged,
		Online:            time.Since(start),
		PrunedCandidates:  pruned,
		ScannedCandidates: scanned,
	}, nil
}
