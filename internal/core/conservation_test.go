package core

import (
	"context"
	"testing"

	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// TestAssignerCounterConservation asserts the Assigner's accounting
// invariant on every code path: each (object, centroid) pair of each pass
// is counted exactly once, as pruned or scanned, so
//
//	pruned + scanned == n·k·Passes()
//
// regardless of the bound regime (first-pass boxes, Elkan full bounds, the
// Hamerly fallback, the bound-free exhaustive reference) and of whether the
// reduced-form pre-filter is active. Whole-object and whole-block skips must
// credit every pair they cover for the identity to hold.
func TestAssignerCounterConservation(t *testing.T) {
	k, m := 5, 3
	mom := pruneTestMoments(3, k, 40, m)
	n := mom.Len()

	cases := []struct {
		name    string
		enabled bool
		reduced bool
		hamerly bool // force the shared-lower-bound fallback regime
	}{
		{"exhaustive", false, false, false},
		{"elkan+reduced", true, true, false},
		{"elkan-direct", true, false, false},
		{"hamerly+reduced", true, true, true},
		{"hamerly-direct", true, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAssigner(mom, k, tc.enabled)
			a.SetReduced(tc.reduced)
			if tc.hamerly {
				a.full = false
			}
			r := rng.New(17)
			centers := make([]float64, k*m)
			for c := 0; c < k; c++ {
				for j := 0; j < m; j++ {
					centers[c*m+j] = 10*float64(c) + r.Normal(0, 1)
				}
			}
			assign := make([]int, n)
			for i := range assign {
				assign[i] = -1
			}
			for pass := 0; pass < 7; pass++ {
				a.SetCenters(centers, nil)
				a.Assign(assign, 3)
				driftCenters(r, centers, 0.15)
			}
			pruned, scanned := a.Counters()
			want := int64(n) * int64(k) * int64(a.Passes())
			if pruned+scanned != want {
				t.Fatalf("pruned %d + scanned %d = %d, want n·k·passes = %d",
					pruned, scanned, pruned+scanned, want)
			}
			if tc.enabled && pruned == 0 {
				t.Error("pruning-enabled regime never pruned")
			}
			if !tc.enabled && pruned != 0 {
				t.Errorf("exhaustive reference pruned %d pairs", pruned)
			}
		})
	}
}

// TestRelocCounterConservation asserts the relocation engine's accounting
// invariant: each pass offers every eligible object k−1 relocation
// candidates (its own cluster is not a candidate), and each candidate is
// counted exactly once as pruned or scanned, so across a whole run
//
//	pruned + scanned == eligible·(k−1) summed over passes.
//
// Objects whose cluster has a single member are guarded out of the sweep
// entirely (Algorithm 1 keeps k clusters) and contribute to neither
// counter; the engine counts those visits separately (Guarded), which
// closes the identity exactly even when a cluster transiently shrinks to
// one member mid-run.
func TestRelocCounterConservation(t *testing.T) {
	r := rng.New(13)
	ds := separableDataset(r, 4, 30, 3)
	mom := uncertain.MomentsOf(ds)
	n, m, k := mom.Len(), mom.Dims(), 4

	for _, kind := range []RelocKind{RelocUCPC, RelocMMVar} {
		for _, pruning := range []bool{true, false} {
			assign := make([]int, n)
			rr := rng.New(29)
			for i := range assign {
				assign[i] = rr.Intn(k)
			}
			stats := make([]*Stats, k)
			for c := range stats {
				stats[c] = NewStats(m)
			}
			AccumulateStats(mom, assign, stats)
			for c := range stats {
				if stats[c].Size() < 2 {
					t.Fatalf("kind %d: initial cluster %d has size %d", kind, c, stats[c].Size())
				}
			}
			e := NewRelocEngine(kind, mom, stats, pruning)
			passes := 0
			for {
				moves, err := e.Pass(context.Background(), assign, 1e-12)
				if err != nil {
					t.Fatal(err)
				}
				passes++
				if moves == 0 {
					break
				}
			}
			pruned, scanned := e.Counters()
			want := int64(n) * int64(k-1) * int64(passes)
			got := pruned + scanned + e.Guarded()*int64(k-1)
			if got != want {
				t.Fatalf("kind %d pruning %v: pruned %d + scanned %d + guarded %d·(k−1) = %d, want n·(k−1)·passes = %d",
					kind, pruning, pruned, scanned, e.Guarded(), got, want)
			}
			if pruning && pruned == 0 {
				t.Errorf("kind %d: pruning run never pruned", kind)
			}
			if !pruning && pruned != 0 {
				t.Errorf("kind %d: unpruned run pruned %d candidates", kind, pruned)
			}
		}
	}
}
