package core

import (
	"context"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the O(m)
// incremental scoring of Corollary 1 versus from-scratch recomputation, and
// the relocation search of Algorithm 1 versus the batch (Lloyd) variant.

func benchCluster(n, m int) []*uncertain.Object {
	return randomCluster(rng.New(42), n, m)
}

// BenchmarkJIncremental measures Corollary 1's O(m) JIfAdd.
func BenchmarkJIncremental(b *testing.B) {
	objs := benchCluster(256, 16)
	s := NewStatsOf(objs[:255])
	o := objs[255]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.JIfAdd(o)
	}
}

// BenchmarkJRecompute measures the naive O(|C|·m) alternative that
// Corollary 1 avoids: rebuilding the statistics to score one candidate.
func BenchmarkJRecompute(b *testing.B) {
	objs := benchCluster(256, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewStatsOf(objs).J()
	}
}

// BenchmarkUCPCRelocation measures Algorithm 1 end to end.
func BenchmarkUCPCRelocation(b *testing.B) {
	ds := uncertain.Dataset(benchCluster(512, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&UCPC{}).Cluster(context.Background(), ds, 6, rng.New(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUCPCLloyd measures the batch ablation on the same workload.
func BenchmarkUCPCLloyd(b *testing.B) {
	ds := uncertain.Dataset(benchCluster(512, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&UCPCLloyd{}).Cluster(context.Background(), ds, 6, rng.New(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUCPCLloydParallel measures the batch variant with 4 workers.
func BenchmarkUCPCLloydParallel(b *testing.B) {
	ds := uncertain.Dataset(benchCluster(512, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&UCPCLloyd{Workers: 4}).Cluster(context.Background(), ds, 6, rng.New(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssignStep isolates one UCPC-Lloyd assignment pass (the
// embarrassingly parallel inner step) at several pool sizes over the flat
// moment store: n=20000, m=8, k=8. Pruning is off so the benchmark
// measures the raw exhaustive scan; BenchmarkPrunedAssign (root package)
// measures the bound-based engine against this baseline.
func benchAssignStep(b *testing.B, workers int) {
	b.Helper()
	ds := uncertain.Dataset(benchCluster(20000, 8))
	mom := uncertain.MomentsOf(ds)
	assign := clustering.RandomPartition(len(ds), 8, rng.New(3))
	cs := &centroidScores{k: 8, m: 8, mean: make([]float64, 8*8), bias: make([]float64, 8)}
	cs.refresh(mom, assign)
	eng := NewAssigner(mom, 8, false)
	adds := make([]float64, 8)
	cs.install(eng, adds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.Assign(assign, workers)
	}
}

func BenchmarkAssignStepSerial(b *testing.B)   { benchAssignStep(b, 1) }
func BenchmarkAssignStepParallel(b *testing.B) { benchAssignStep(b, 0) }

// BenchmarkUCentroidRealization measures one exact draw of X_C̄.
func BenchmarkUCentroidRealization(b *testing.B) {
	u := NewUCentroid(benchCluster(64, 8))
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.SampleRealization(r)
	}
}
