package core

import (
	"math"
	"sync/atomic"

	"ucpc/internal/clustering"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// This file implements the exact bound-based pruning engine for the
// nearest-centroid assignment hot loops (the relocation-sweep counterpart —
// O(1) bound tests on stale dot-cache entries — lives in the RelocEngine of
// reloc.go):
//
//   - Assigner prunes nearest-centroid assignment steps (UK-means,
//     UCPC-Lloyd, the UCPC k-means++ initial assignment). All of those
//     minimize a distance of the form
//
//         D(o, c) = ‖µ(o) − y_c‖² + v_c
//
//     over centroids c, where y_c is a point and v_c an additive
//     per-centroid variance term (Lemma 3 / eq. 8 decompose ÊD and ED this
//     way). Because the µ-part is a genuine Euclidean distance, triangle-
//     inequality bounds on ‖µ(o) − y_c‖ remain *exact*. Two bound regimes
//     are layered on that observation:
//
//     Elkan mode (the default; requires an n×k bound table within
//     elkanPairsMax entries): one upper bound per object plus one lower
//     bound per (object, centroid) pair, each relaxed by that centroid's
//     cumulative drift, combined with the Hamerly global half-gap test and
//     the moving inter-centroid filter. Per-pair bounds survive centroid
//     moves individually, so a centroid that drifted far cannot wipe out
//     the bounds against the k−1 centroids that barely moved — which is
//     precisely what the previous single-lower-bound filter did, and why
//     it pruned ~1% on algorithms whose centroids jump early.
//
//     Hamerly fallback (tables larger than elkanPairsMax): the previous
//     scheme — per-object upper/lower bounds with the lower bound shared
//     across all non-assigned centroids, relaxed by the maximum drift.
//
//     Both regimes bootstrap from a per-block bounding-box (vec.Box)
//     min/max filter on the first pass, when no bounds exist yet.
//
//   - On top of the bounds, candidates that still need O(m) work are first
//     scored through the reduced (CK-means) form of the distance,
//     ‖µ(o)‖² − 2·µ(o)·y_c + ‖y_c‖², using the moment store's precomputed
//     ‖µ‖² row norms and the per-iteration ‖y_c‖² Gram diagonal (the
//     König–Huygens decomposition: the per-object spread constant is the
//     same for every centroid, so it cannot change the argmin). The
//     reduced value equals the direct kernel distance up to a rounding
//     margin proportional to the moment scale; candidates that lose by
//     more than that margin are discarded — and still refresh their Elkan
//     bound — without ever running the subtract-square scan. Decisions are
//     only ever made from the direct vec.SqDistBlock value, so the reduced
//     filter can disable a skip but never flip a comparison.
//
// Every skip test subtracts a relative slack (pruneSlack) so that the few-
// ulp rounding of the bound arithmetic can never flip a comparison that the
// exhaustive scan would decide the other way; the slack only *disables*
// borderline skips, so pruned and unpruned runs produce byte-identical
// partitions (asserted by the cross-check tests for every algorithm).
//
// Counter conservation: every (object, centroid) pair of every pass is
// counted exactly once, as either pruned (decided without an O(m) row scan)
// or scanned (an O(m) row evaluation ran, direct or reduced), so
// pruned + scanned == n·k·passes on every code path. Block-level box skips
// and whole-object bound skips credit every pair they cover.

const (
	// pruneBlock is the number of consecutive moment-store rows covered by
	// one bounding box in the Assigner's first pass. Blocks follow the
	// store's row order, so box construction and the filtered scans stream
	// through contiguous memory.
	pruneBlock = 64
	// pruneSlack is the relative safety margin applied to every bound
	// comparison. It is ~10⁷ coarser than double rounding error and ~10⁹
	// finer than any distance contrast that matters, so it costs
	// essentially no pruning while making skips robust to the bound
	// arithmetic's own rounding.
	pruneSlack = 1e-9
	// elkanPairsMax caps the per-(object, centroid) lower-bound table at
	// 512 MiB of float64 (mirroring the relocation engine's dot-cache
	// budget). Larger problems fall back to the shared-lower-bound Hamerly
	// pass, which needs only O(n) state.
	elkanPairsMax = 1 << 26
)

// Assigner performs exact pruned nearest-centroid assignment over a flat
// moment store for distances D(o,c) = ‖µ(o) − y_c‖² + v_c.
//
// Usage per iteration: SetCenters(...) once, then Assign(...) once. The
// assignment rule is "sticky": an object keeps its current cluster unless
// some other cluster is strictly closer (ties by lower index among strict
// improvements); the first pass, where no assignment is trusted, picks the
// lowest-index argmin. Both the pruned and the unpruned code paths apply
// the same rule, so PruneOff runs reproduce PruneOn runs exactly.
//
// Assign is safe to fan over a worker pool: every object's decision is
// independent, and the counters are order-independent sums.
type Assigner struct {
	mom     *uncertain.Moments
	k, m    int
	enabled bool

	centers []float64 // k*m, row-major current centroid positions
	add     []float64 // k, additive per-centroid terms v_c
	prev    []float64 // k*m, positions at the previous SetCenters
	hasPrev bool

	drift    []float64 // k, per-centroid movement at the last SetCenters
	maxDrift float64
	half     []float64 // k, half distance to the nearest other centroid
	cdist    []float64 // k*k, inter-centroid Euclidean distances
	cNorm2   []float64 // k, ‖y_c‖² Gram diagonal for the reduced form

	addMin, addMin2 float64 // smallest and second-smallest v_c
	addMinIdx       int

	upper, lower []float64 // n, per-object Euclidean bounds
	ready        bool      // bounds initialized by a first pass

	// Elkan state: lb[i*k+c] stores a lower bound on ‖µ(o_i) − y_c‖ in
	// "absolute decay" form — the bound plus driftTot[c] at write time, so
	// the current bound is lb[i*k+c] − driftTot[c] with no per-entry
	// timestamps. driftTot[c] is centroid c's cumulative drift since the
	// bounds were (re)seeded; it is reset only on Rebind, when the next
	// first pass rewrites every entry anyway.
	full     bool // per-pair bound table in use (n*k within elkanPairsMax)
	lb       []float64
	driftTot []float64
	reduced  bool // score survivors through the König–Huygens form first

	boxes        []vec.Box // per-block bounding boxes over the µ rows
	boxLo, boxHi []float64 // flat nb*m backing for the box corners, reused
	// across Rebind calls so per-batch rebuilds do
	// not allocate once capacity has warmed up

	// First-pass scratch pool: firstChunk needs a few k-sized slices per
	// concurrent chunk body. ParallelAny runs at most `workers` chunk
	// bodies per pass, so Assign sizes the pool to the worker count and
	// each body claims a distinct slot through scratchNext — allocation-
	// free after the pool has warmed up, which is what lets the streaming
	// engine run a box-filtered first pass on every mini-batch without
	// breaking its zero-allocation Observe gate.
	scratchPool []firstScratch
	scratchNext int32

	passes          int
	pruned, scanned int64

	// Per-pass state threaded to the prebuilt chunk bodies below instead
	// of being captured by fresh closures: creating a capturing closure per
	// Assign call heap-allocates it, and the steady-state sweep loops are
	// gated at zero allocations per pass.
	curAssign []int
	fresh     bool

	exhaustBody func(lo, hi int) bool
	firstBody   func(lo, hi int) bool
	boundedBody func(lo, hi int) bool
	elkanBody   func(lo, hi int) bool
}

// NewAssigner builds an assignment engine for k centroids over mom. When
// enabled is false every bound test is bypassed and Assign degenerates to
// the exhaustive scan (used as the exactness reference).
func NewAssigner(mom *uncertain.Moments, k int, enabled bool) *Assigner {
	n, m := mom.Len(), mom.Dims()
	a := &Assigner{
		mom:     mom,
		k:       k,
		m:       m,
		enabled: enabled,
		centers: make([]float64, k*m),
		add:     make([]float64, k),
		prev:    make([]float64, k*m),
	}
	if enabled {
		a.drift = make([]float64, k)
		a.half = make([]float64, k)
		a.cdist = make([]float64, k*k)
		a.cNorm2 = make([]float64, k)
		a.driftTot = make([]float64, k)
		a.upper = make([]float64, n)
		a.lower = make([]float64, n)
		a.full = k > 0 && n <= elkanPairsMax/k
		if a.full {
			a.lb = make([]float64, n*k)
		}
		a.reduced = reducedDefault
		a.rebuildBoxes()
	}
	// Bind the chunk bodies once; each bind allocates a method value here
	// so that no Assign call allocates later.
	a.exhaustBody = a.exhaustChunk
	a.firstBody = a.firstChunk
	a.boundedBody = a.boundedChunk
	a.elkanBody = a.elkanChunk
	return a
}

// firstScratch is one chunk body's worth of first-pass scratch (all slices
// k-sized); see Assigner.scratchPool.
type firstScratch struct {
	minD  []float64 // block lower bound on D per centroid
	eMin  []float64 // block lower bound on ‖µ(o)−y_c‖²
	eMinR []float64 // √eMin for the box-pruned centroids (Elkan seeds)
	cand  []int     // surviving centroids
	candR []float64 // Euclidean distance (or lower bound) per candidate
}

// growFloats returns s resliced to length n, reusing capacity and
// zero-extending only when the backing array must grow.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return append(s[:cap(s)], make([]float64, n-cap(s))...)
}

// rebuildBoxes covers the µ rows of mom with one bounding box per
// pruneBlock consecutive objects, reusing the flat corner backing across
// calls.
func (a *Assigner) rebuildBoxes() {
	n, m := a.mom.Len(), a.m
	nb := (n + pruneBlock - 1) / pruneBlock
	a.boxLo = growFloats(a.boxLo, nb*m)
	a.boxHi = growFloats(a.boxHi, nb*m)
	if cap(a.boxes) >= nb {
		a.boxes = a.boxes[:nb]
	} else {
		a.boxes = append(a.boxes[:cap(a.boxes)], make([]vec.Box, nb-cap(a.boxes))...)
	}
	for b := 0; b < nb; b++ {
		lo, hi := b*pruneBlock, (b+1)*pruneBlock
		if hi > n {
			hi = n
		}
		bl := a.boxLo[b*m : (b+1)*m : (b+1)*m]
		bh := a.boxHi[b*m : (b+1)*m : (b+1)*m]
		copy(bl, a.mom.Mu(lo))
		copy(bh, a.mom.Mu(lo))
		for i := lo + 1; i < hi; i++ {
			mu := a.mom.Mu(i)
			for j := 0; j < m; j++ {
				if mu[j] < bl[j] {
					bl[j] = mu[j]
				}
				if mu[j] > bh[j] {
					bh[j] = mu[j]
				}
			}
		}
		a.boxes[b] = vec.Box{Lo: bl, Hi: bh}
	}
}

// Rebind re-derives the engine's per-object state after the underlying
// Moments store changed — grew, shrank, or was refilled with a fresh
// window of rows (the streaming mini-batch path recycles one resident
// store across batches). All cross-pass memory is discarded: the next
// Assign is a first pass again, with bounds, Elkan tables, and first-pass
// boxes rebuilt over the current rows. Every backing array is reused, so a
// steady-state Rebind+SetCenters+Assign cycle performs no heap allocations
// once capacities have warmed up to the largest window seen.
func (a *Assigner) Rebind() {
	a.hasPrev = false
	a.passes = 0
	a.maxDrift = 0
	if !a.enabled {
		return
	}
	n := a.mom.Len()
	a.upper = growFloats(a.upper, n)
	a.lower = growFloats(a.lower, n)
	a.full = a.k > 0 && n <= elkanPairsMax/a.k
	if a.full {
		// No zeroing needed: the next first pass rewrites every (i,c)
		// entry, and driftTot restarts with it.
		a.lb = growFloats(a.lb, n*a.k)
	}
	for c := range a.driftTot {
		a.driftTot[c] = 0
	}
	a.ready = false
	a.rebuildBoxes()
}

// ensureScratch sizes the first-pass scratch pool to at least `need` slots.
func (a *Assigner) ensureScratch(need int) {
	for len(a.scratchPool) < need {
		a.scratchPool = append(a.scratchPool, firstScratch{
			minD:  make([]float64, a.k),
			eMin:  make([]float64, a.k),
			eMinR: make([]float64, a.k),
			cand:  make([]int, 0, a.k),
			candR: make([]float64, a.k),
		})
	}
}

// SetCenters installs the centroid positions (flat k*m row-major) and the
// additive terms v_c (nil means all zero), recording per-centroid drift and
// refreshing the inter-centroid geometry used by the bound tests.
func (a *Assigner) SetCenters(flat, add []float64) {
	a.setCenters(func(dst []float64) { copy(dst, flat) }, add)
}

// SetCenterVecs is SetCenters for per-centroid vector slices.
func (a *Assigner) SetCenterVecs(centers []vec.Vector, add []float64) {
	a.setCenters(func(dst []float64) {
		for c, y := range centers {
			copy(dst[c*a.m:(c+1)*a.m], y)
		}
	}, add)
}

func (a *Assigner) setCenters(fill func(dst []float64), add []float64) {
	a.prev, a.centers = a.centers, a.prev
	fill(a.centers)
	if add == nil {
		for c := range a.add {
			a.add[c] = 0
		}
	} else {
		copy(a.add, add)
	}
	if !a.enabled {
		return
	}
	// Per-centroid drift since the previous positions (upper bounds grow by
	// the own centroid's drift, per-pair lower bounds shrink by that
	// centroid's cumulative drift, the shared fallback lower bound by the
	// largest drift). cNorm2 feeds the reduced-form scoring.
	a.maxDrift = 0
	for c := 0; c < a.k; c++ {
		d := 0.0
		if a.hasPrev {
			d = math.Sqrt(rowDist2(a.prev, a.centers, c, a.m))
		}
		a.drift[c] = d
		if d > a.maxDrift {
			a.maxDrift = d
		}
		a.driftTot[c] += d
		a.cNorm2[c] = vec.SqNormBlock(a.centers[c*a.m : (c+1)*a.m])
	}
	a.hasPrev = true
	// Inter-centroid distances and half-gaps (O(k²m); k ≪ n).
	for c := 0; c < a.k; c++ {
		a.cdist[c*a.k+c] = 0
		for o := c + 1; o < a.k; o++ {
			dd := math.Sqrt(centerDist2(a.centers, c, o, a.m))
			a.cdist[c*a.k+o] = dd
			a.cdist[o*a.k+c] = dd
		}
	}
	for c := 0; c < a.k; c++ {
		s := math.Inf(1)
		for o := 0; o < a.k; o++ {
			if o != c && a.cdist[c*a.k+o] < s {
				s = a.cdist[c*a.k+o]
			}
		}
		a.half[c] = s / 2
	}
	// Smallest and second-smallest additive term, for min_{c≠a} v_c in O(1).
	a.addMin, a.addMin2, a.addMinIdx = math.Inf(1), math.Inf(1), -1
	for c, v := range a.add {
		switch {
		case v < a.addMin:
			a.addMin2 = a.addMin
			a.addMin, a.addMinIdx = v, c
		case v < a.addMin2:
			a.addMin2 = v
		}
	}
}

// rowDist2 returns the squared Euclidean distance between row c of two flat
// k*m stores.
func rowDist2(x, y []float64, c, m int) float64 {
	return vec.SqDistBlock(x[c*m:(c+1)*m], y[c*m:(c+1)*m])
}

// centerDist2 returns the squared Euclidean distance between rows c and o
// of one flat store.
func centerDist2(x []float64, c, o, m int) float64 {
	return vec.SqDistBlock(x[c*m:(c+1)*m], x[o*m:(o+1)*m])
}

// dist2 returns ‖µ(o_i) − y_c‖². All decision paths — exhaustive, first
// pass, Hamerly, Elkan — funnel through the same blocked kernel, so its
// reassociated rounding is identical everywhere and cannot break the
// byte-identity between pruned and unpruned runs.
func (a *Assigner) dist2(i, c int) float64 {
	return vec.SqDistBlock(a.mom.Mu(i), a.centers[c*a.m:(c+1)*a.m])
}

// Invalidate discards object i's bounds after an external reassignment
// (e.g. an empty-cluster reseed moved the object), forcing the next pass to
// evaluate it from scratch. The per-pair Elkan bounds stay: they bound
// ‖µ(o_i) − y_c‖ regardless of which cluster the object sits in.
func (a *Assigner) Invalidate(i int) {
	if a.enabled && a.ready {
		a.upper[i] = math.Inf(1)
		a.lower[i] = 0
	}
}

// Counters returns the cumulative (pruned, scanned) candidate-pair counts.
func (a *Assigner) Counters() (pruned, scanned int64) {
	return atomic.LoadInt64(&a.pruned), atomic.LoadInt64(&a.scanned)
}

// Passes returns the number of Assign passes run since construction (or the
// last Rebind), for counter-conservation checks: pruned + scanned always
// equals n·k·Passes().
func (a *Assigner) Passes() int { return a.passes }

// reducedDefault is the package-wide default for the König–Huygens
// reduced-form pre-filter of newly built Assigners. It exists so the
// exactness suite can run entire algorithms — which construct their
// Assigners internally — with the filter disabled and prove the filter is
// decision-neutral.
var reducedDefault = true

// SetReducedDefault sets whether new Assigners start with the reduced-form
// pre-filter active and returns the previous default. Not safe to flip
// concurrently with running algorithms; intended for tests and ablation
// harnesses.
func SetReducedDefault(on bool) (prev bool) {
	prev = reducedDefault
	reducedDefault = on
	return prev
}

// SetReduced toggles the König–Huygens reduced-form pre-filter (on by
// default when pruning is enabled); the exactness tests flip it to prove
// reduced-on and reduced-off runs are byte-identical.
func (a *Assigner) SetReduced(on bool) { a.reduced = on && a.enabled }

// Assign reassigns every object to its nearest centroid under the current
// SetCenters state, fanning over the worker pool, and reports whether any
// assignment changed. assign entries may be -1 (unassigned) only on the
// first pass.
func (a *Assigner) Assign(assign []int, workers int) bool {
	a.passes++
	a.curAssign = assign
	var changed bool
	switch {
	case !a.enabled:
		a.fresh = a.passes == 1
		changed = clustering.ParallelAny(a.mom.Len(), workers, a.exhaustBody)
	case !a.ready:
		a.ensureScratch(clustering.Workers(workers))
		atomic.StoreInt32(&a.scratchNext, 0)
		changed = clustering.ParallelAny(len(a.boxes), workers, a.firstBody)
		a.ready = true
	case a.full:
		changed = clustering.ParallelAny(a.mom.Len(), workers, a.elkanBody)
	default:
		changed = clustering.ParallelAny(a.mom.Len(), workers, a.boundedBody)
	}
	a.curAssign = nil
	if a.enabled {
		// Drift is consumed by exactly one relaxation; a second Assign
		// without SetCenters must not relax again.
		for c := range a.drift {
			a.drift[c] = 0
		}
		a.maxDrift = 0
	}
	return changed
}

// exhaustChunk is the bound-free reference: evaluate every centroid. It
// applies the same sticky tie rule as the pruned passes so that PruneOff
// reproduces PruneOn bit for bit.
func (a *Assigner) exhaustChunk(lo, hi int) bool {
	assign, fresh := a.curAssign, a.fresh
	ch := false
	var scanned int64
	for i := lo; i < hi; i++ {
		cur := assign[i]
		var best int
		var bestD float64
		if fresh || cur < 0 {
			best, bestD = 0, a.dist2(i, 0)+a.add[0]
			for c := 1; c < a.k; c++ {
				if d := a.dist2(i, c) + a.add[c]; d < bestD {
					best, bestD = c, d
				}
			}
		} else {
			best, bestD = cur, a.dist2(i, cur)+a.add[cur]
			for c := 0; c < a.k; c++ {
				if c == cur {
					continue
				}
				if d := a.dist2(i, c) + a.add[c]; d < bestD {
					best, bestD = c, d
				}
			}
		}
		scanned += int64(a.k)
		if assign[i] != best {
			assign[i] = best
			ch = true
		}
	}
	atomic.AddInt64(&a.scanned, scanned)
	return ch
}

// firstChunk initializes the per-object bounds with a per-block bounding-
// box filter: centroids whose minimum possible D over the whole block
// exceeds the block's best guaranteed D cannot win for any member and are
// skipped (their pairs are counted as pruned for every member). Surviving
// candidates are scored through the reduced form first when it applies;
// candidates that clearly lose keep the reduced-form value as their
// Euclidean lower bound instead of an exact distance — sufficient for
// bound seeding, and never consulted for the argmin. In Elkan mode the
// full lb row of every object is seeded here: box-pruned centroids get the
// block's box bound, survivors their per-object value. Its per-chunk
// scratch (needed for worker independence) comes from the preallocated
// pool: ParallelAny runs at most Workers(workers) chunk bodies per pass,
// so claiming slots through an atomic counter hands every body a distinct
// slot without allocating.
func (a *Assigner) firstChunk(blo, bhi int) bool {
	assign := a.curAssign
	n, k, m := a.mom.Len(), a.k, a.m
	ch := false
	var pruned, scanned int64
	sc := &a.scratchPool[atomic.AddInt32(&a.scratchNext, 1)-1]
	minD, eMin, eMinR, candR := sc.minD, sc.eMin, sc.eMinR, sc.candR
	cand := sc.cand[:0]
	for b := blo; b < bhi; b++ {
		box := a.boxes[b]
		bestMax := math.Inf(1)
		for c := 0; c < k; c++ {
			row := vec.Vector(a.centers[c*m : (c+1)*m])
			e := box.MinSqDist(row)
			eMin[c] = e
			minD[c] = e + a.add[c]
			if hi := box.MaxSqDist(row) + a.add[c]; hi < bestMax {
				bestMax = hi
			}
		}
		thresh := bestMax + pruneSlack*(math.Abs(bestMax)+1)
		cand = cand[:0]
		prunedLB := math.Inf(1)
		for c := 0; c < k; c++ {
			if minD[c] <= thresh {
				cand = append(cand, c)
				eMinR[c] = 0
			} else {
				s := math.Sqrt(eMin[c])
				eMinR[c] = s
				if s < prunedLB {
					prunedLB = s
				}
			}
		}
		lo, hi := b*pruneBlock, (b+1)*pruneBlock
		if hi > n {
			hi = n
		}
		pruned += int64(hi-lo) * int64(k-len(cand))
		scanned += int64(hi-lo) * int64(len(cand))
		for i := lo; i < hi; i++ {
			mu := a.mom.Mu(i)
			mun2 := a.mom.MuNorm2(i)
			bestCi := 0
			bestD := math.Inf(1)
			for ci, c := range cand {
				row := a.centers[c*m : (c+1)*m]
				if a.reduced && !math.IsInf(bestD, 1) {
					// Reduced-form pre-filter; see elkanChunk for the
					// soundness margin.
					dred := mun2 - 2*vec.DotBlock(mu, row) + a.cNorm2[c]
					margin := pruneSlack * (mun2 + a.cNorm2[c] + math.Abs(bestD) + 1)
					if dred+a.add[c]-margin >= bestD {
						if r2 := dred - margin; r2 > 0 {
							candR[ci] = math.Sqrt(r2)
						} else {
							candR[ci] = 0
						}
						continue
					}
				}
				r2 := vec.SqDistBlock(mu, row)
				candR[ci] = math.Sqrt(r2)
				if d := r2 + a.add[c]; d < bestD {
					bestCi, bestD = ci, d
				}
			}
			lower := prunedLB
			for ci := range cand {
				if ci != bestCi && candR[ci] < lower {
					lower = candR[ci]
				}
			}
			a.upper[i] = candR[bestCi]
			a.lower[i] = lower
			if a.full {
				base := i * k
				for c := 0; c < k; c++ {
					a.lb[base+c] = eMinR[c] + a.driftTot[c]
				}
				for ci, c := range cand {
					a.lb[base+c] = candR[ci] + a.driftTot[c]
				}
			}
			if best := cand[bestCi]; assign[i] != best {
				assign[i] = best
				ch = true
			}
		}
	}
	atomic.AddInt64(&a.pruned, pruned)
	atomic.AddInt64(&a.scanned, scanned)
	return ch
}

// elkanChunk is the steady-state full-bound pass: per-object upper bound,
// per-(object, centroid) lower bounds decayed by each centroid's own
// cumulative drift, the Hamerly global half-gap test for whole-object
// skips, the moving inter-centroid filter, and the reduced-form pre-filter
// on whatever survives. Every exact or reduced evaluation refreshes the
// corresponding lb entry, so bounds tighten as a side effect of the scans
// the bounds failed to prevent.
func (a *Assigner) elkanChunk(lo, hi int) bool {
	assign := a.curAssign
	k, m := a.k, a.m
	ch := false
	var pruned, scanned int64
	for i := lo; i < hi; i++ {
		cur := assign[i]
		u := a.upper[i] + a.drift[cur]
		l := a.lower[i] - a.maxDrift
		if l < 0 {
			l = 0
		}
		a.upper[i], a.lower[i] = u, l
		va := a.add[cur]
		vOther := a.addMin
		if cur == a.addMinIdx {
			vOther = a.addMin2
		}
		// Whole-object skip from the cached upper bound: z lower-bounds
		// every other centroid's Euclidean distance via the relaxed shared
		// lower bound or the half-gap bound r_c ≥ 2·half[cur] − r_cur.
		z := l
		if hg := 2*a.half[cur] - u; hg > z {
			z = hg
		}
		da := u*u + va
		do := z*z + vOther
		if da+pruneSlack*(math.Abs(da)+math.Abs(do)+1) <= do {
			pruned += int64(k)
			continue
		}
		// Tighten the upper bound to the exact distance (refreshing the
		// assigned centroid's own lb entry) and re-test.
		base := i * k
		mu := a.mom.Mu(i)
		ra := math.Sqrt(vec.SqDistBlock(mu, a.centers[cur*m:(cur+1)*m]))
		u = ra
		a.upper[i] = u
		a.lb[base+cur] = ra + a.driftTot[cur]
		scanned++
		if hg := 2*a.half[cur] - u; hg > z {
			z = hg
		}
		da = u*u + va
		do = z*z + vOther
		if da+pruneSlack*(math.Abs(da)+math.Abs(do)+1) <= do {
			pruned += int64(k - 1)
			continue
		}
		// Per-candidate Elkan pass (sticky rule: strict improvement only).
		// Each candidate's lower bound is the better of its decayed lb
		// entry and the moving inter-centroid bound cdist(best, c) − r_best.
		best, bestD, bestR := cur, u*u+va, u
		mun2 := a.mom.MuNorm2(i)
		minOther := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == cur {
				continue
			}
			lbc := a.lb[base+c] - a.driftTot[c]
			if hg := a.cdist[best*k+c] - bestR; hg > lbc {
				lbc = hg
			}
			if lbc > 0 {
				if d := lbc*lbc + a.add[c]; d-pruneSlack*(math.Abs(d)+math.Abs(bestD)+1) >= bestD {
					if lbc < minOther {
						minOther = lbc
					}
					pruned++
					continue
				}
			}
			row := a.centers[c*m : (c+1)*m]
			scanned++
			if a.reduced {
				// Reduced (König–Huygens) form as a pre-filter. The margin
				// dominates the ‖µ‖²−2µ·y+‖y‖² cancellation error (a few
				// hundred ulps of the moment scale for any realistic m), so
				// a candidate it discards can never beat bestD under the
				// direct kernel — and dred − margin under-estimates r², so
				// its root is a sound Elkan bound refresh.
				dred := mun2 - 2*vec.DotBlock(mu, row) + a.cNorm2[c]
				margin := pruneSlack * (mun2 + a.cNorm2[c] + math.Abs(bestD) + 1)
				if dred+a.add[c]-margin >= bestD {
					lbr := 0.0
					if r2 := dred - margin; r2 > 0 {
						lbr = math.Sqrt(r2)
					}
					if lbr+a.driftTot[c] > a.lb[base+c] {
						a.lb[base+c] = lbr + a.driftTot[c]
					}
					if lbr < minOther {
						minOther = lbr
					}
					continue
				}
			}
			r2 := vec.SqDistBlock(mu, row)
			r := math.Sqrt(r2)
			a.lb[base+c] = r + a.driftTot[c]
			if d := r2 + a.add[c]; d < bestD {
				if bestR < minOther {
					minOther = bestR
				}
				best, bestD, bestR = c, d, r
			} else if r < minOther {
				minOther = r
			}
		}
		a.upper[i] = bestR
		a.lower[i] = minOther
		if assign[i] != best {
			assign[i] = best
			ch = true
		}
	}
	atomic.AddInt64(&a.pruned, pruned)
	atomic.AddInt64(&a.scanned, scanned)
	return ch
}

// boundedChunk is the Hamerly-style fallback for problems whose n×k bound
// table would exceed elkanPairsMax: relax the stored per-object bounds by
// the centroid drift, skip objects whose assigned centroid provably still
// wins, and fall back to a filtered exhaustive scan otherwise.
func (a *Assigner) boundedChunk(lo, hi int) bool {
	assign := a.curAssign
	k := a.k
	ch := false
	var pruned, scanned int64
	for i := lo; i < hi; i++ {
		cur := assign[i]
		u := a.upper[i] + a.drift[cur]
		l := a.lower[i] - a.maxDrift
		if l < 0 {
			l = 0
		}
		a.upper[i], a.lower[i] = u, l
		va := a.add[cur]
		vOther := a.addMin
		if cur == a.addMinIdx {
			vOther = a.addMin2
		}
		// z lower-bounds every other centroid's Euclidean distance:
		// the relaxed lower bound, or the half-gap bound
		// r_c ≥ 2·half[cur] − r_cur ≥ 2·half[cur] − u.
		z := l
		if hg := 2*a.half[cur] - u; hg > z {
			z = hg
		}
		da := u*u + va
		do := z*z + vOther
		if da+pruneSlack*(math.Abs(da)+math.Abs(do)+1) <= do {
			// The whole object is decided without any row scan: all k
			// pairs — the assigned centroid's included — count as pruned.
			pruned += int64(k)
			continue
		}
		// Tighten the upper bound to the exact distance and re-test.
		ra := math.Sqrt(a.dist2(i, cur))
		u = ra
		a.upper[i] = u
		scanned++
		if hg := 2*a.half[cur] - u; hg > z {
			z = hg
		}
		da = u*u + va
		do = z*z + vOther
		if da+pruneSlack*(math.Abs(da)+math.Abs(do)+1) <= do {
			pruned += int64(k - 1)
			continue
		}
		// Filtered exhaustive scan (sticky rule: strict improvement
		// only). The inter-centroid filter lower-bounds r_c by
		// cdist(best, c) − r_best via the triangle inequality.
		best, bestD, bestR := cur, u*u+va, u
		minOther := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == cur {
				continue
			}
			if lb := a.cdist[best*k+c] - bestR; lb > 0 {
				if d := lb*lb + a.add[c]; d-pruneSlack*(math.Abs(d)+math.Abs(bestD)+1) >= bestD {
					if lb < minOther {
						minOther = lb
					}
					pruned++
					continue
				}
			}
			r2 := a.dist2(i, c)
			scanned++
			r := math.Sqrt(r2)
			if d := r2 + a.add[c]; d < bestD {
				if bestR < minOther {
					minOther = bestR
				}
				best, bestD, bestR = c, d, r
			} else if r < minOther {
				minOther = r
			}
		}
		a.upper[i] = bestR
		a.lower[i] = minOther
		if assign[i] != best {
			assign[i] = best
			ch = true
		}
	}
	atomic.AddInt64(&a.pruned, pruned)
	atomic.AddInt64(&a.scanned, scanned)
	return ch
}
