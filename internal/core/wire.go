package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"ucpc/internal/clustering"
)

// Wire format for weighted sufficient statistics (WStats), the payload a
// shard ships to its coordinator. The encoding is deterministic — one valid
// byte string per state, fixed field order, fixed-width little-endian
// scalars, float64 values written bit-exactly — so round-tripping is
// byte-identical and coordinators can compare or deduplicate payloads by
// hash.
//
//	offset  size        field
//	0       4           magic "UCWS"
//	4       1           format version (1)
//	5       4           k   (uint32, number of clusters)
//	9       4           m   (uint32, dimensionality)
//	13      8·k         W_c   effective member weights
//	·       8·k·m       S_c   weighted mean sums, row-major
//	·       8·k         Ψ_c   weighted total-variance sums
//	·       8·k         Φ_c   weighted second-moment sums
//
// Total length: 13 + 8·k·(m+3) bytes, enforced exactly (no trailing bytes).
// Decoding rejects unknown magic, unknown versions, shape fields outside
// [1, wireMaxSide] or products beyond wireMaxFloats, and non-finite or
// negative-where-impossible values, all without panicking and without
// allocating more than the input's own size implies.

// wstatsMagic identifies a WStats payload; wstatsVersion is the current
// format version. Bump the version — never reuse it — on any layout change.
const (
	wstatsVersion = 1

	// wireMaxSide caps each shape field (k, m) and wireMaxFloats caps the
	// total float64 payload (128 MiB) — sanity limits far above any real
	// configuration that bound what a hostile length prefix can make a
	// decoder allocate.
	wireMaxSide   = 1 << 20
	wireMaxFloats = 1 << 24
)

var wstatsMagic = [4]byte{'U', 'C', 'W', 'S'}

// wstatsWireLen returns the exact encoded size for shape (k, m).
func wstatsWireLen(k, m int) int { return 13 + 8*k*(m+3) }

// MarshalBinary encodes the statistics in the versioned deterministic wire
// format above. It never fails for a live WStats; the error return exists
// to satisfy encoding.BinaryMarshaler.
func (ws *WStats) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, wstatsWireLen(ws.k, ws.m))
	buf = append(buf, wstatsMagic[:]...)
	buf = append(buf, wstatsVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ws.k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ws.m))
	for _, s := range [][]float64{ws.w, ws.sum, ws.psi, ws.phi} {
		for _, v := range s {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf, nil
}

// UnmarshalWStats decodes a payload produced by WStats.MarshalBinary,
// validating shape, length, and value ranges. Errors wrap
// clustering.ErrBadModelFormat (malformed input) or clustering.
// ErrModelVersion (well-formed magic, unknown version).
func UnmarshalWStats(data []byte) (*WStats, error) {
	k, m, err := wireHeader(data, wstatsMagic, wstatsVersion, "WStats")
	if err != nil {
		return nil, err
	}
	if want := wstatsWireLen(k, m); len(data) != want {
		return nil, fmt.Errorf("core: WStats payload is %d bytes, shape k=%d m=%d needs %d: %w",
			len(data), k, m, want, clustering.ErrBadModelFormat)
	}
	ws := NewWStats(k, m)
	off := 13
	for _, dst := range [][]float64{ws.w, ws.sum, ws.psi, ws.phi} {
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
	}
	// Value validation: weights and the scalar sums are sums of nonnegative
	// terms, so they must be finite and ≥ 0; mean sums must be finite.
	for c := 0; c < k; c++ {
		if !nonNegFinite(ws.w[c]) || !nonNegFinite(ws.psi[c]) || !nonNegFinite(ws.phi[c]) {
			return nil, fmt.Errorf("core: WStats cluster %d carries non-finite or negative scalars (W=%v Ψ=%v Φ=%v): %w",
				c, ws.w[c], ws.psi[c], ws.phi[c], clustering.ErrBadModelFormat)
		}
	}
	for i, v := range ws.sum {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("core: WStats mean sum entry %d is %v: %w", i, v, clustering.ErrBadModelFormat)
		}
	}
	return ws, nil
}

// wireHeader validates the shared 13-byte header (magic, version, k, m) of
// a wire payload and returns the decoded shape.
func wireHeader(data []byte, magic [4]byte, version byte, kind string) (k, m int, err error) {
	if len(data) < 13 {
		return 0, 0, fmt.Errorf("core: %s payload truncated at %d bytes (header is 13): %w",
			kind, len(data), clustering.ErrBadModelFormat)
	}
	if [4]byte(data[:4]) != magic {
		return 0, 0, fmt.Errorf("core: %s payload has magic %q, want %q: %w",
			kind, data[:4], magic[:], clustering.ErrBadModelFormat)
	}
	if data[4] != version {
		return 0, 0, fmt.Errorf("core: %s payload has format version %d, this build reads %d: %w",
			kind, data[4], version, clustering.ErrModelVersion)
	}
	ku := binary.LittleEndian.Uint32(data[5:])
	mu := binary.LittleEndian.Uint32(data[9:])
	if ku < 1 || ku > wireMaxSide || mu < 1 || mu > wireMaxSide ||
		uint64(ku)*uint64(mu+3) > wireMaxFloats {
		return 0, 0, fmt.Errorf("core: %s payload declares shape k=%d m=%d outside format limits: %w",
			kind, ku, mu, clustering.ErrBadModelFormat)
	}
	return int(ku), int(mu), nil
}

// nonNegFinite reports whether v is a finite value ≥ 0.
func nonNegFinite(v float64) bool {
	return v >= 0 && !math.IsInf(v, 1) && !math.IsNaN(v)
}
