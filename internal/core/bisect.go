package core

import (
	"context"
	"fmt"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// BisectingUCPC is a divisive hierarchical extension of UCPC: starting from
// one cluster holding the whole dataset, it repeatedly picks the cluster
// with the largest J(C) and splits it with a 2-way UCPC run, until k
// clusters exist. It produces a top-down hierarchy at partitional cost
// (k−1 small UCPC runs) — the divisive counterpart of the U-AHC baseline
// and a natural "future work"-style extension of the paper's algorithm.
type BisectingUCPC struct {
	// MaxIter caps each 2-way UCPC run (0 = default 100).
	MaxIter int
	// Restarts is the number of seeded restarts per split, keeping the
	// best (0 = default 3).
	Restarts int
	// Workers is forwarded to the 2-way UCPC sub-runs (<= 0 = GOMAXPROCS).
	Workers int
	// Pruning is forwarded to the 2-way UCPC sub-runs (default on).
	Pruning clustering.PruneMode
	// Progress, when non-nil, observes every completed split with the
	// running total objective Σ_C J(C) and the size of the newly created
	// cluster as the move count.
	Progress clustering.ProgressFunc
}

// Name implements clustering.Algorithm.
func (b *BisectingUCPC) Name() string { return "UCPC-Bisect" }

// Split records one divisive step: cluster Parent was split into itself
// (reused id) and NewCluster at the given pre-split cost J(Parent).
type Split struct {
	Parent, NewCluster int
	ParentJ            float64
}

// Cluster divisively partitions ds into k clusters.
func (b *BisectingUCPC) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	rep, _, err := b.ClusterWithSplits(ctx, ds, k, r)
	return rep, err
}

// ClusterWithSplits is Cluster plus the split history.
func (b *BisectingUCPC) ClusterWithSplits(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, []Split, error) {
	ctx = clustering.Ctx(ctx)
	if err := ds.Validate(); err != nil {
		return nil, nil, err
	}
	n := len(ds)
	if err := clustering.ValidateK("ucpc-bisect", k, n); err != nil {
		return nil, nil, err
	}
	restarts := b.Restarts
	if restarts <= 0 {
		restarts = 3
	}
	start := time.Now()

	assign := make([]int, n) // everything starts in cluster 0
	jOf := make([]float64, 1, k)
	jOf[0] = Objective(ds, assign, 1)
	splits := make([]Split, 0, k-1)
	iterations := 0
	var pruned, scanned int64

	// Per-split scratch, reused across the k−1 splits.
	sizes := make([]int, k)
	memberIdx := make([]int, 0, n)
	members := make(uncertain.Dataset, 0, n)
	sub := &UCPC{MaxIter: b.MaxIter, Workers: b.Workers, Pruning: b.Pruning}

	for clusters := 1; clusters < k; clusters++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		// Pick the cluster with the largest J; ties by size so singleton
		// clusters (J = 2σ² but unsplittable) are never chosen over
		// splittable ones.
		worst, worstJ, worstSize := -1, -1.0, 0
		for c := 0; c < clusters; c++ {
			sizes[c] = 0
		}
		for _, c := range assign {
			sizes[c]++
		}
		for c := 0; c < clusters; c++ {
			if sizes[c] < 2 {
				continue
			}
			if jOf[c] > worstJ || (jOf[c] == worstJ && sizes[c] > worstSize) {
				worst, worstJ, worstSize = c, jOf[c], sizes[c]
			}
		}
		if worst < 0 {
			return nil, nil, fmt.Errorf("ucpc-bisect: no splittable cluster left at %d clusters", clusters)
		}

		// Collect the members of the victim cluster.
		memberIdx = memberIdx[:0]
		members = members[:0]
		for i, c := range assign {
			if c == worst {
				memberIdx = append(memberIdx, i)
				members = append(members, ds[i])
			}
		}

		// Best-of-restarts 2-way UCPC split.
		var bestAssign []int
		bestJ := 0.0
		for rep := 0; rep < restarts; rep++ {
			report, err := sub.Cluster(ctx, members, 2, r.Split(uint64(clusters)<<8|uint64(rep)))
			if err != nil {
				return nil, nil, err
			}
			iterations += report.Iterations
			pruned += report.PrunedCandidates
			scanned += report.ScannedCandidates
			if bestAssign == nil || report.Objective < bestJ {
				bestJ = report.Objective
				bestAssign = append(bestAssign[:0], report.Partition.Assign...)
			}
		}

		// Apply: side 0 keeps the parent id, side 1 becomes a new cluster.
		newID := clusters
		for j, i := range memberIdx {
			if bestAssign[j] == 1 {
				assign[i] = newID
			}
		}
		splits = append(splits, Split{Parent: worst, NewCluster: newID, ParentJ: worstJ})

		// Refresh the two touched cluster costs.
		jOf = append(jOf, 0)
		jOf[worst] = objectiveOf(ds, assign, worst)
		jOf[newID] = objectiveOf(ds, assign, newID)
		if b.Progress != nil {
			var total float64
			for _, j := range jOf {
				total += j
			}
			newSize := 0
			for _, c := range assign {
				if c == newID {
					newSize++
				}
			}
			b.Progress.Emit(b.Name(), clusters, total, newSize)
		}
	}

	var total float64
	for _, j := range jOf {
		total += j
	}
	return &clustering.Report{
		Partition:         clustering.Partition{K: k, Assign: assign},
		Objective:         total,
		Iterations:        iterations,
		Converged:         true,
		Online:            time.Since(start),
		PrunedCandidates:  pruned,
		ScannedCandidates: scanned,
	}, splits, nil
}

// objectiveOf returns J of the single cluster c under the assignment.
func objectiveOf(ds uncertain.Dataset, assign []int, c int) float64 {
	s := NewStats(ds.Dims())
	for i, o := range ds {
		if assign[i] == c {
			s.Add(o)
		}
	}
	return s.J()
}
